package eewa_test

import (
	"fmt"

	eewa "repro"
)

// ExampleSimulate runs one benchmark under EEWA and prints the
// steady-state frequency census — the paper's Fig. 8 in four lines.
func ExampleSimulate() {
	cfg := eewa.Opteron16()
	w := eewa.MustBenchmark("sha1").Workload(1)
	res, err := eewa.Simulate(cfg, w, eewa.PolicyEEWA)
	if err != nil {
		panic(err)
	}
	fmt.Println("first batch:", res.BatchCensus[0])
	fmt.Println("steady state:", res.BatchCensus[9])
	// Output:
	// first batch: [16 0 0 0]
	// steady state: [5 0 0 11]
}

// ExampleCompare reproduces the headline Fig. 6 comparison for one
// benchmark.
func ExampleCompare() {
	cmp, err := eewa.Compare(eewa.Opteron16(), eewa.MustBenchmark("md5").Workload(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("energy ordering holds: %v\n",
		cmp.EEWA.Energy < cmp.CilkD.Energy && cmp.CilkD.Energy < cmp.Cilk.Energy)
	fmt.Printf("EEWA saves more than 20%%: %v\n", cmp.EnergySaving() > 0.20)
	// Output:
	// energy ordering holds: true
	// EEWA saves more than 20%: true
}

// ExampleGenerateWorkload builds a synthetic two-class workload and
// checks the adjuster finds headroom on it.
func ExampleGenerateWorkload() {
	w, err := eewa.GenerateWorkload("demo", 6, []eewa.ClassSpec{
		{Name: "chunky", Count: 6, MeanWork: 0.15, JitterFrac: 0.05},
		{Name: "fine", Count: 122, MeanWork: 0.006, JitterFrac: 0.05},
	}, 42)
	if err != nil {
		panic(err)
	}
	res, err := eewa.Simulate(eewa.Opteron16(), w, eewa.PolicyEEWA)
	if err != nil {
		panic(err)
	}
	slow := 0
	for lvl := 1; lvl < 4; lvl++ {
		slow += res.BatchCensus[5][lvl]
	}
	fmt.Println("cores below F0 in steady state:", slow > 0)
	// Output:
	// cores below F0 in steady state: true
}
