package eewa

import (
	"testing"
)

func TestSimulatePolicies(t *testing.T) {
	cfg := Opteron16()
	w, err := GenerateWorkload("facade", 3, []ClassSpec{
		{Name: "h", Count: 8, MeanWork: 0.05, JitterFrac: 0.05},
		{Name: "l", Count: 24, MeanWork: 0.01, JitterFrac: 0.05},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{PolicyCilk, PolicyCilkD, PolicyEEWA} {
		res, err := Simulate(cfg, w, policy)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Makespan <= 0 || res.Energy <= 0 {
			t.Errorf("%s: degenerate result %v", policy, res)
		}
	}
}

func TestSimulateUnknownPolicy(t *testing.T) {
	w, _ := GenerateWorkload("x", 1, []ClassSpec{{Name: "a", Count: 1, MeanWork: 1}}, 1)
	if _, err := Simulate(Opteron16(), w, "magic"); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestCompareShape(t *testing.T) {
	w := MustBenchmark("md5").Workload(1)
	cmp, err := Compare(Opteron16(), w)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EnergySaving() <= 0 {
		t.Errorf("EEWA should save energy on md5, got %.1f%%", 100*cmp.EnergySaving())
	}
	if s := cmp.Slowdown(); s > 0.06 {
		t.Errorf("EEWA slowdown %.1f%% exceeds 6%%", 100*s)
	}
	if !(cmp.EEWA.Energy < cmp.CilkD.Energy && cmp.CilkD.Energy < cmp.Cilk.Energy) {
		t.Error("energy ordering EEWA < Cilk-D < Cilk violated")
	}
}

func TestBenchmarksFacade(t *testing.T) {
	if got := len(Benchmarks()); got != 7 {
		t.Errorf("Benchmarks() returned %d, want 7", got)
	}
	if _, err := BenchmarkByName("sha1"); err != nil {
		t.Errorf("sha1 lookup failed: %v", err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBenchmark should panic on unknown name")
		}
	}()
	MustBenchmark("nope")
}

func TestMachinePresets(t *testing.T) {
	if cfg := Opteron16(); cfg.Cores != 16 {
		t.Errorf("Opteron16 has %d cores", cfg.Cores)
	}
	if cfg := GenericMachine(8); cfg.Cores != 8 {
		t.Errorf("GenericMachine(8) has %d cores", cfg.Cores)
	}
}

func TestLiveRuntimeFacade(t *testing.T) {
	r, err := NewRuntime(LiveConfig{
		Workers: 2,
		Machine: Opteron16(),
		Policy:  LivePolicyEEWA,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	tasks := []LiveTask{
		{Class: "t", Run: func() { done++ }},
		{Class: "t", Run: func() { done++ }},
	}
	// Single-threaded closure mutation is fine with 2 workers only if
	// synchronized; use per-task closures writing distinct slots.
	results := make([]int, 4)
	tasks = tasks[:0]
	for i := 0; i < 4; i++ {
		i := i
		tasks = append(tasks, LiveTask{Class: "t", Run: func() { results[i] = 1 }})
	}
	bs := r.RunBatch(tasks)
	if bs.Tasks != 4 {
		t.Errorf("ran %d tasks, want 4", bs.Tasks)
	}
	for i, v := range results {
		if v != 1 {
			t.Errorf("task %d did not run", i)
		}
	}
}
