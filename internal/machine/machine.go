// Package machine models a multi-core processor with per-core Dynamic
// Voltage and Frequency Scaling (DVFS), the hardware substrate the EEWA
// paper evaluates on (four quad-core AMD Opteron 8380 packages: 16
// cores, each able to run at 2.5, 1.8, 1.3 or 0.8 GHz).
//
// The model has four ingredients:
//
//   - a frequency ladder F0 > F1 > … > F(r-1) (GHz);
//   - a power model P = Static + k·f·V², with a per-level voltage
//     table and a whole-machine base draw (the paper measures wall
//     power, so uncore/memory/fan power is part of every reading);
//   - package-level voltage coupling: on the Opteron 8380, frequency
//     is per-core but the voltage plane is per-package, so a package's
//     voltage is set by its fastest member. This is why merely
//     down-clocking idle cores scattered among busy ones (Cilk-D)
//     saves only f-linear power, while EEWA's c-groups — which this
//     runtime lays out contiguously, aligning them with packages —
//     unlock the full f·V² saving;
//   - per-core activity states that integrate energy exactly as the
//     simulated clock advances.
//
// Core states distinguish *busy* (executing a task), *spinning*
// (actively hunting for work — in classic work stealing an idle core
// polls victim queues at full power, which is precisely the waste EEWA
// attacks) and *halted* (parked at low power).
package machine

import (
	"fmt"
	"math"
)

// CoreState is the activity state of a simulated core.
type CoreState int

const (
	// Busy means the core is executing a task: full active power.
	Busy CoreState = iota
	// Spinning means the core is executing the steal loop: it burns
	// active power but performs no useful work.
	Spinning
	// Halted means the core is parked (monitor/mwait or deep C-state):
	// leakage plus a small fraction of dynamic power.
	Halted
)

// String implements fmt.Stringer for diagnostics.
func (s CoreState) String() string {
	switch s {
	case Busy:
		return "busy"
	case Spinning:
		return "spinning"
	case Halted:
		return "halted"
	default:
		return fmt.Sprintf("CoreState(%d)", int(s))
	}
}

// FreqLadder is the list of available core frequencies in GHz, in
// strictly descending order: index 0 is F0, the fastest.
type FreqLadder []float64

// Validate checks the ladder is non-empty, positive and strictly
// descending (the paper's F_i > F_j for i < j).
func (f FreqLadder) Validate() error {
	if len(f) == 0 {
		return fmt.Errorf("machine: empty frequency ladder")
	}
	for i, v := range f {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("machine: invalid frequency %g at index %d", v, i)
		}
		if i > 0 && v >= f[i-1] {
			return fmt.Errorf("machine: ladder not strictly descending at index %d (%g >= %g)", i, v, f[i-1])
		}
	}
	return nil
}

// Slowest returns the index of the lowest frequency, r-1.
func (f FreqLadder) Slowest() int { return len(f) - 1 }

// Ratio returns F0/Fj, the slowdown factor of level j relative to the
// fastest level — the factor used both in Eq. 1 normalization and in
// the CC table (Table I).
func (f FreqLadder) Ratio(j int) float64 { return f[0] / f[j] }

// PowerModel parameterizes per-core power as Static + DynCoeff·f·V².
type PowerModel struct {
	// Static is per-core leakage in watts, paid in every state.
	Static float64
	// DynCoeff is k in the dynamic power term k·f·V² (watts per
	// GHz·V²).
	DynCoeff float64
	// Volt is the per-frequency-level supply voltage in volts; it must
	// be non-increasing down the ladder.
	Volt []float64
	// HaltFrac is the fraction of the dynamic term a Halted core still
	// draws (clock gating is imperfect).
	HaltFrac float64
	// Base is the whole-machine constant draw (uncore, DRAM, fans,
	// PSU losses) that a wall power meter sees regardless of load.
	Base float64
}

// Validate checks the model is consistent with an r-level ladder.
func (p PowerModel) Validate(r int) error {
	if len(p.Volt) != r {
		return fmt.Errorf("machine: voltage table has %d entries, want %d", len(p.Volt), r)
	}
	for j, v := range p.Volt {
		if v <= 0 {
			return fmt.Errorf("machine: non-positive voltage at level %d", j)
		}
		if j > 0 && v > p.Volt[j-1] {
			return fmt.Errorf("machine: voltage not non-increasing at level %d", j)
		}
	}
	if p.Static <= 0 || p.DynCoeff <= 0 {
		return fmt.Errorf("machine: static and dynamic coefficients must be positive")
	}
	if p.HaltFrac < 0 || p.HaltFrac > 1 {
		return fmt.Errorf("machine: HaltFrac %g outside [0,1]", p.HaltFrac)
	}
	if p.Base < 0 {
		return fmt.Errorf("machine: negative base power")
	}
	return nil
}

// CorePower returns the draw of a core in `state` clocked at frequency
// level fLevel while its voltage plane sits at voltage level vLevel
// (vLevel ≤ fLevel when a package peer demands a higher voltage).
func (p PowerModel) CorePower(state CoreState, fLevel, vLevel int, freqs FreqLadder) float64 {
	v := p.Volt[vLevel]
	dyn := p.DynCoeff * freqs[fLevel] * v * v
	if state == Halted {
		return p.Static + p.HaltFrac*dyn
	}
	return p.Static + dyn
}

// Config describes a machine to simulate.
type Config struct {
	Name string
	// Cores is the number of cores (m in the paper).
	Cores int
	// Freqs is the ladder F0..F(r-1) in GHz.
	Freqs FreqLadder
	// Power is the power model.
	Power PowerModel
	// PackageSize is the number of cores sharing a voltage plane.
	// 1 disables coupling (fully independent per-core voltage).
	PackageSize int
	// DVFSLatency is the time (seconds) a core is unavailable while
	// switching frequency. Real parts take tens of microseconds.
	DVFSLatency float64
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: need at least one core, got %d", c.Cores)
	}
	if err := c.Freqs.Validate(); err != nil {
		return err
	}
	if err := c.Power.Validate(len(c.Freqs)); err != nil {
		return err
	}
	if c.PackageSize <= 0 {
		return fmt.Errorf("machine: package size must be positive, got %d", c.PackageSize)
	}
	if c.DVFSLatency < 0 {
		return fmt.Errorf("machine: negative DVFS latency")
	}
	return nil
}

// Opteron16 returns the paper's evaluation platform: 16 cores in four
// 4-core packages at 2.5/1.8/1.3/0.8 GHz. The wattages are calibrated
// so the *relative* behaviour (Cilk-D saves ~7–13 % over Cilk, EEWA up
// to ~30 %) matches the published curves; see DESIGN.md §2.
func Opteron16() Config {
	freqs := FreqLadder{2.5, 1.8, 1.3, 0.8}
	return Config{
		Name:  "opteron16",
		Cores: 16,
		Freqs: freqs,
		Power: PowerModel{
			Static:   2.0,
			DynCoeff: 12.0 / (2.5 * 1.30 * 1.30), // 12 W dynamic at F0
			Volt:     []float64{1.30, 1.20, 1.10, 1.00},
			HaltFrac: 0.15,
			Base:     120.0,
		},
		PackageSize: 4,
		DVFSLatency: 50e-6,
	}
}

// Generic returns an Opteron-like machine with an arbitrary core count,
// used by the Fig. 9 scalability sweep (4/8/12/16 cores).
func Generic(cores int) Config {
	c := Opteron16()
	c.Name = fmt.Sprintf("generic%d", cores)
	c.Cores = cores
	return c
}

// Uncoupled returns the same machine with per-core voltage planes
// (PackageSize 1) — the ablation knob for quantifying how much of
// EEWA's advantage comes from package-aligned c-groups.
func Uncoupled(cfg Config) Config {
	cfg.Name = cfg.Name + "-uncoupled"
	cfg.PackageSize = 1
	return cfg
}

// Tiered returns shard `shard`'s machine in a tiered cluster built
// from base: shard 0 keeps the full ladder, and each later shard drops
// one more rung off the top (never below two rungs), so the cluster is
// ladder-heterogeneous — the shape the router's "unknown class →
// fastest ladder" rule exists for. The voltage table is truncated in
// step with the ladder; cores, power coefficients and packaging are
// untouched.
func Tiered(base Config, shard int) Config {
	if shard <= 0 || len(base.Freqs) <= 2 {
		return base
	}
	drop := shard
	if max := len(base.Freqs) - 2; drop > max {
		drop = max
	}
	c := base
	c.Name = fmt.Sprintf("%s-tier%d", base.Name, drop)
	c.Freqs = append(FreqLadder(nil), base.Freqs[drop:]...)
	c.Power.Volt = append([]float64(nil), base.Power.Volt[drop:]...)
	return c
}

// Machine is the runtime state of the simulated hardware: per-core
// frequency levels and activity states, with exact lazy energy
// integration. All mutation goes through SetState/SetFreq so that every
// interval is charged at the correct package-coupled power.
//
// A Machine is not safe for concurrent use; the discrete-event
// simulator is single-threaded by design.
type Machine struct {
	Config Config

	freqs  []int
	states []CoreState
	// power caches each core's current draw (= PowerOf) so charge —
	// which runs on every state or frequency change — is a pure
	// multiply-accumulate. It is recomputed only when an input moves:
	// the core's own state, its frequency, or its package's voltage
	// plane (any package peer's frequency).
	power []float64

	lastChange float64
	coreEnergy []float64
	busyTime   []float64
	spinTime   []float64
	haltTime   []float64

	// DVFSTransitions counts frequency switches, for overhead
	// reporting.
	DVFSTransitions int
}

// New builds a machine in its initial state: every core Halted at F0 at
// time 0. New panics on an invalid config, since an invalid machine
// makes every downstream number meaningless.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic("machine: " + err.Error())
	}
	n := cfg.Cores
	m := &Machine{
		Config:     cfg,
		freqs:      make([]int, n),
		states:     make([]CoreState, n),
		power:      make([]float64, n),
		coreEnergy: make([]float64, n),
		busyTime:   make([]float64, n),
		spinTime:   make([]float64, n),
		haltTime:   make([]float64, n),
	}
	for i := range m.states {
		m.states[i] = Halted
		m.power[i] = m.Config.Power.CorePower(Halted, 0, 0, m.Config.Freqs)
	}
	return m
}

// Freq returns core id's current frequency level.
func (m *Machine) Freq(id int) int { return m.freqs[id] }

// State returns core id's current activity state.
func (m *Machine) State(id int) CoreState { return m.states[id] }

// voltLevel returns the voltage level core id's plane sits at: the
// minimum (fastest) frequency level among its package peers when
// coupling is on, its own level otherwise.
func (m *Machine) voltLevel(id int) int {
	ps := m.Config.PackageSize
	if ps <= 1 {
		return m.freqs[id]
	}
	start := (id / ps) * ps
	end := start + ps
	if end > m.Config.Cores {
		end = m.Config.Cores
	}
	lvl := m.freqs[start]
	for c := start + 1; c < end; c++ {
		if m.freqs[c] < lvl {
			lvl = m.freqs[c]
		}
	}
	return lvl
}

// PowerOf returns core id's current draw in watts.
func (m *Machine) PowerOf(id int) float64 { return m.power[id] }

// recomputePower refreshes core id's cached draw.
func (m *Machine) recomputePower(id int) {
	m.power[id] = m.Config.Power.CorePower(m.states[id], m.freqs[id], m.voltLevel(id), m.Config.Freqs)
}

// recomputePackagePower refreshes the cached draw of every core on
// id's voltage plane — required after a frequency change, which can
// move the whole plane's voltage.
func (m *Machine) recomputePackagePower(id int) {
	ps := m.Config.PackageSize
	if ps <= 1 {
		m.recomputePower(id)
		return
	}
	start := (id / ps) * ps
	end := start + ps
	if end > m.Config.Cores {
		end = m.Config.Cores
	}
	for c := start; c < end; c++ {
		m.recomputePower(c)
	}
}

// charge integrates every core's energy from lastChange to now at the
// current powers and advances the timestamp. Whole-machine charging is
// necessary because one core's frequency change can move its package
// peers' voltage, hence their power.
func (m *Machine) charge(now float64) {
	dt := now - m.lastChange
	if dt < 0 {
		panic(fmt.Sprintf("machine: time went backwards (%g -> %g)", m.lastChange, now))
	}
	if dt == 0 {
		return
	}
	for id := range m.freqs {
		m.coreEnergy[id] += dt * m.power[id]
		switch m.states[id] {
		case Busy:
			m.busyTime[id] += dt
		case Spinning:
			m.spinTime[id] += dt
		case Halted:
			m.haltTime[id] += dt
		}
	}
	m.lastChange = now
}

// SetState moves core id to a new activity state at simulated time now.
func (m *Machine) SetState(now float64, id int, s CoreState) {
	m.charge(now)
	m.states[id] = s
	m.recomputePower(id)
}

// SetFreq switches core id to frequency level j at time now, counting
// the transition (no-op transitions are skipped, as real governors
// do). The caller accounts for DVFS latency.
func (m *Machine) SetFreq(now float64, id, j int) {
	if j < 0 || j >= len(m.Config.Freqs) {
		panic(fmt.Sprintf("machine: core %d set to invalid frequency level %d", id, j))
	}
	if m.freqs[id] == j {
		return
	}
	m.charge(now)
	m.freqs[id] = j
	m.recomputePackagePower(id)
	m.DVFSTransitions++
}

// EnergyAt returns whole-machine energy (joules) consumed up to
// simulated time now: all cores plus the base draw — exactly what the
// paper's wall power meter integrates.
func (m *Machine) EnergyAt(now float64) float64 {
	total := m.Config.Power.Base * now
	total += m.CoreEnergyAt(now)
	return total
}

// CoreEnergyAt returns the sum of per-core energies only (no base),
// which isolates the CPU-side effect of a scheduling policy.
func (m *Machine) CoreEnergyAt(now float64) float64 {
	dt := now - m.lastChange
	if dt < 0 {
		panic(fmt.Sprintf("machine: energy queried in the past (%g < %g)", now, m.lastChange))
	}
	total := 0.0
	for id := range m.freqs {
		total += m.coreEnergy[id] + dt*m.power[id]
	}
	return total
}

// BusyTime returns the seconds core id has spent executing tasks, as of
// the machine's last charge point.
func (m *Machine) BusyTime(id int) float64 { return m.busyTime[id] }

// SpinTime returns the seconds core id has spent in the steal loop.
func (m *Machine) SpinTime(id int) float64 { return m.spinTime[id] }

// HaltTime returns the seconds core id has spent parked.
func (m *Machine) HaltTime(id int) float64 { return m.haltTime[id] }

// TotalBusyTime sums BusyTime across cores.
func (m *Machine) TotalBusyTime() float64 { return sum(m.busyTime) }

// TotalSpinTime sums SpinTime across cores.
func (m *Machine) TotalSpinTime() float64 { return sum(m.spinTime) }

// TotalHaltTime sums HaltTime across cores.
func (m *Machine) TotalHaltTime() float64 { return sum(m.haltTime) }

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Sync charges the open interval so that the per-state time counters
// are exact as of now (energy queries do this implicitly; time-counter
// queries need an explicit sync).
func (m *Machine) Sync(now float64) { m.charge(now) }

// ReclassifyBusyAsSpin retroactively moves dt already-integrated
// seconds of core id's time from the Busy counter to the Spinning
// counter. Busy and Spinning draw identical power (only Halted gates
// the dynamic term), so the reclassification cannot change any energy
// figure — it exists so a scheduler that only learns an interval was
// overhead (probe/steal lead) after charging it as Busy can keep the
// busy/spin split truthful without rewinding the clock. The caller
// must Sync (or otherwise charge) through the interval first; moving
// more time than the core has accumulated as Busy panics.
func (m *Machine) ReclassifyBusyAsSpin(id int, dt float64) {
	if dt == 0 {
		return
	}
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("machine: reclassify negative interval %g", dt))
	}
	if dt > m.busyTime[id]+1e-9 {
		panic(fmt.Sprintf("machine: reclassify %g s busy->spin but core %d has only %g s busy",
			dt, id, m.busyTime[id]))
	}
	m.busyTime[id] -= dt
	m.spinTime[id] += dt
}

// FreqCensus returns how many cores currently sit at each frequency
// level — the quantity plotted per batch in the paper's Fig. 8.
func (m *Machine) FreqCensus() []int {
	census := make([]int, len(m.Config.Freqs))
	for _, f := range m.freqs {
		census[f]++
	}
	return census
}
