package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFreqLadderValidate(t *testing.T) {
	cases := []struct {
		name    string
		ladder  FreqLadder
		wantErr bool
	}{
		{"valid", FreqLadder{2.5, 1.8, 1.3, 0.8}, false},
		{"single", FreqLadder{2.0}, false},
		{"empty", FreqLadder{}, true},
		{"ascending", FreqLadder{1.0, 2.0}, true},
		{"duplicate", FreqLadder{2.0, 2.0}, true},
		{"zero", FreqLadder{2.0, 0}, true},
		{"negative", FreqLadder{2.0, -1}, true},
		{"nan", FreqLadder{math.NaN()}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.ladder.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestFreqLadderRatio(t *testing.T) {
	f := FreqLadder{2.5, 1.8, 1.3, 0.8}
	if got := f.Ratio(0); got != 1 {
		t.Errorf("Ratio(0) = %g, want 1", got)
	}
	if got, want := f.Ratio(3), 2.5/0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("Ratio(3) = %g, want %g", got, want)
	}
	if f.Slowest() != 3 {
		t.Errorf("Slowest = %d, want 3", f.Slowest())
	}
}

func TestOpteron16Valid(t *testing.T) {
	cfg := Opteron16()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Opteron16 preset invalid: %v", err)
	}
	if cfg.Cores != 16 || len(cfg.Freqs) != 4 || cfg.PackageSize != 4 {
		t.Errorf("Opteron16 = %d cores × %d freqs, pkg %d; want 16 × 4, pkg 4",
			cfg.Cores, len(cfg.Freqs), cfg.PackageSize)
	}
	// Dynamic power at F0 is calibrated to 12 W: active = static + 12.
	pm := cfg.Power
	if got := pm.CorePower(Busy, 0, 0, cfg.Freqs); math.Abs(got-14.0) > 1e-9 {
		t.Errorf("active power at F0 = %g, want 14", got)
	}
}

func TestGeneric(t *testing.T) {
	for _, n := range []int{4, 8, 12} {
		cfg := Generic(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Generic(%d) invalid: %v", n, err)
		}
		if cfg.Cores != n {
			t.Errorf("Generic(%d).Cores = %d", n, cfg.Cores)
		}
	}
}

func TestUncoupled(t *testing.T) {
	cfg := Uncoupled(Opteron16())
	if cfg.PackageSize != 1 {
		t.Errorf("Uncoupled PackageSize = %d, want 1", cfg.PackageSize)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Uncoupled invalid: %v", err)
	}
}

func TestPowerModelValidate(t *testing.T) {
	good := Opteron16().Power
	if err := good.Validate(4); err != nil {
		t.Fatalf("preset power model rejected: %v", err)
	}
	bad := good
	bad.Volt = []float64{1.0, 1.3, 1.1, 1.0} // increasing at level 1
	if err := bad.Validate(4); err == nil {
		t.Error("non-monotone voltage should be rejected")
	}
	bad = good
	bad.Volt = good.Volt[:2]
	if err := bad.Validate(4); err == nil {
		t.Error("short voltage table should be rejected")
	}
	bad = good
	bad.HaltFrac = 1.5
	if err := bad.Validate(4); err == nil {
		t.Error("HaltFrac > 1 should be rejected")
	}
	bad = good
	bad.Base = -1
	if err := bad.Validate(4); err == nil {
		t.Error("negative base should be rejected")
	}
	bad = good
	bad.Static = 0
	if err := bad.Validate(4); err == nil {
		t.Error("zero static should be rejected")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := Opteron16()
	cfg.Cores = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero cores should be rejected")
	}
	cfg = Opteron16()
	cfg.DVFSLatency = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative DVFS latency should be rejected")
	}
	cfg = Opteron16()
	cfg.PackageSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero package size should be rejected")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{})
}

func TestInitialStateHaltedAtF0(t *testing.T) {
	m := New(Opteron16())
	for id := 0; id < 16; id++ {
		if m.State(id) != Halted {
			t.Errorf("core %d starts %v, want halted", id, m.State(id))
		}
		if m.Freq(id) != 0 {
			t.Errorf("core %d starts at level %d, want 0", id, m.Freq(id))
		}
	}
}

func TestEnergyIntegrationPiecewise(t *testing.T) {
	cfg := Opteron16()
	m := New(cfg)
	pm := cfg.Power

	// Core 0: halted at F0 for 10 s, busy at F0 for 5 s, busy at F3 for 8 s.
	m.SetState(10, 0, Busy)
	m.SetFreq(15, 0, 3)
	m.SetState(23, 0, Halted)
	m.Sync(23)

	// Core 0's package peers stay at F0, so its voltage stays at level 0
	// throughout (package coupling).
	want := 10*pm.CorePower(Halted, 0, 0, cfg.Freqs) +
		5*pm.CorePower(Busy, 0, 0, cfg.Freqs) +
		8*pm.CorePower(Busy, 3, 0, cfg.Freqs)
	// Isolate core 0 by subtracting the other 15 halted-at-F0 cores.
	others := 23 * 15 * pm.CorePower(Halted, 0, 0, cfg.Freqs)
	if got := m.CoreEnergyAt(23) - others; math.Abs(got-want) > 1e-9 {
		t.Errorf("core-0 energy = %g J, want %g J", got, want)
	}
	if got := m.BusyTime(0); math.Abs(got-13) > 1e-9 {
		t.Errorf("busy time = %g, want 13", got)
	}
	if got := m.HaltTime(0); math.Abs(got-10) > 1e-9 {
		t.Errorf("halt time = %g, want 10", got)
	}
}

func TestPackageVoltageCoupling(t *testing.T) {
	cfg := Opteron16()
	m := New(cfg)
	pm := cfg.Power

	// Core 1 down-clocked to F3 while package peer core 0 stays at F0:
	// core 1 pays F3 frequency at F0 *voltage*.
	m.SetFreq(0, 1, 3)
	m.SetState(0, 1, Busy)
	wantCoupled := pm.CorePower(Busy, 3, 0, cfg.Freqs)
	if got := m.PowerOf(1); math.Abs(got-wantCoupled) > 1e-9 {
		t.Errorf("coupled power = %g, want %g (F3 freq at F0 voltage)", got, wantCoupled)
	}

	// Down-clock the whole package: now the plane drops to F3 voltage.
	for id := 0; id < 4; id++ {
		m.SetFreq(1, id, 3)
	}
	wantUncoupled := pm.CorePower(Busy, 3, 3, cfg.Freqs)
	if got := m.PowerOf(1); math.Abs(got-wantUncoupled) > 1e-9 {
		t.Errorf("package-slow power = %g, want %g", got, wantUncoupled)
	}
	if wantUncoupled >= wantCoupled {
		t.Error("dropping the plane voltage must reduce power")
	}
}

func TestUncoupledMachineIgnoresPeers(t *testing.T) {
	cfg := Uncoupled(Opteron16())
	m := New(cfg)
	m.SetFreq(0, 1, 3)
	m.SetState(0, 1, Busy)
	want := cfg.Power.CorePower(Busy, 3, 3, cfg.Freqs)
	if got := m.PowerOf(1); math.Abs(got-want) > 1e-9 {
		t.Errorf("uncoupled power = %g, want %g", got, want)
	}
}

func TestMachineEnergyIncludesBase(t *testing.T) {
	cfg := Opteron16()
	m := New(cfg)
	haltP := cfg.Power.CorePower(Halted, 0, 0, cfg.Freqs)
	want := 100 * (cfg.Power.Base + 16*haltP)
	if got := m.EnergyAt(100); math.Abs(got-want) > 1e-6 {
		t.Errorf("machine energy = %g, want %g", got, want)
	}
	wantCore := 100 * 16 * haltP
	if got := m.CoreEnergyAt(100); math.Abs(got-wantCore) > 1e-6 {
		t.Errorf("core-only energy = %g, want %g", got, wantCore)
	}
}

func TestSpinCostsActivePower(t *testing.T) {
	cfg := Opteron16()
	m := New(cfg)
	m.SetState(0, 0, Spinning)
	if got, want := m.PowerOf(0), cfg.Power.CorePower(Busy, 0, 0, cfg.Freqs); math.Abs(got-want) > 1e-9 {
		t.Errorf("spinning power = %g, want active power %g (the inefficiency EEWA attacks)", got, want)
	}
	m.Sync(10)
	if got := m.SpinTime(0); math.Abs(got-10) > 1e-9 {
		t.Errorf("spin time = %g, want 10", got)
	}
}

func TestHaltCheaperThanSpin(t *testing.T) {
	cfg := Opteron16()
	m := New(cfg)
	if !(m.Config.Power.CorePower(Halted, 3, 3, cfg.Freqs) <
		m.Config.Power.CorePower(Spinning, 3, 3, cfg.Freqs)) {
		t.Error("halting must be cheaper than spinning at the same level")
	}
}

func TestSetFreqCountsTransitions(t *testing.T) {
	m := New(Opteron16())
	m.SetFreq(0, 0, 2)
	m.SetFreq(1, 0, 2) // no-op: same level
	m.SetFreq(2, 0, 0)
	if m.DVFSTransitions != 2 {
		t.Errorf("DVFSTransitions = %d, want 2", m.DVFSTransitions)
	}
}

func TestFreqCensus(t *testing.T) {
	m := New(Opteron16())
	for i := 0; i < 5; i++ {
		m.SetFreq(0, i, 0)
	}
	for i := 5; i < 16; i++ {
		m.SetFreq(0, i, 3)
	}
	census := m.FreqCensus()
	want := []int{5, 0, 0, 11}
	for j := range want {
		if census[j] != want[j] {
			t.Errorf("census[%d] = %d, want %d", j, census[j], want[j])
		}
	}
}

func TestTotalTimes(t *testing.T) {
	m := New(Opteron16())
	m.SetState(0, 0, Busy)
	m.SetState(0, 1, Spinning)
	m.Sync(5)
	if got := m.TotalBusyTime(); math.Abs(got-5) > 1e-9 {
		t.Errorf("TotalBusyTime = %g, want 5", got)
	}
	if got := m.TotalSpinTime(); math.Abs(got-5) > 1e-9 {
		t.Errorf("TotalSpinTime = %g, want 5", got)
	}
	if got := m.TotalHaltTime(); math.Abs(got-5*14) > 1e-9 {
		t.Errorf("TotalHaltTime = %g, want 70", got)
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	m := New(Opteron16())
	m.SetState(10, 0, Busy)
	defer func() {
		if recover() == nil {
			t.Error("going back in time should panic")
		}
	}()
	m.SetState(5, 0, Halted)
}

func TestInvalidFreqPanics(t *testing.T) {
	m := New(Opteron16())
	defer func() {
		if recover() == nil {
			t.Error("invalid frequency level should panic")
		}
	}()
	m.SetFreq(0, 0, 9)
}

// Property: running a whole package busy at a lower frequency for
// proportionally longer time (same work) never costs more core energy
// than the fast level — the premise behind Fig. 1(b).
func TestSlowAndLongSavesEnergyProperty(t *testing.T) {
	cfg := Opteron16()
	f := func(workRaw uint16, levelRaw uint8) bool {
		work := float64(workRaw%1000+1) / 100.0 // seconds at F0
		level := int(levelRaw) % len(cfg.Freqs)

		fast := New(cfg)
		for id := 0; id < 4; id++ {
			fast.SetState(0, id, Busy)
		}
		eFast := fast.CoreEnergyAt(work)

		slow := New(cfg)
		for id := 0; id < 4; id++ {
			slow.SetFreq(0, id, level)
			slow.SetState(0, id, Busy)
		}
		eSlow := slow.CoreEnergyAt(work * cfg.Freqs.Ratio(level))
		// Compare only the active package's four cores; the idle 12
		// halted cores contribute more in the slow run purely from its
		// longer duration, which is a real effect but not the one under
		// test — so measure with the idle cores' contribution removed.
		idleP := cfg.Power.CorePower(Halted, 0, 0, cfg.Freqs)
		eFast -= 12 * idleP * work
		eSlow -= 12 * idleP * work * cfg.Freqs.Ratio(level)
		return eSlow <= eFast+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy integration is additive — charging in two steps
// equals charging in one.
func TestEnergyAdditivityProperty(t *testing.T) {
	cfg := Opteron16()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%1000) / 10
		b := float64(bRaw%1000) / 10
		one := New(cfg)
		one.SetState(0, 0, Busy)
		eOne := one.CoreEnergyAt(a + b)

		two := New(cfg)
		two.SetState(0, 0, Busy)
		two.Sync(a) // forces a charge at t=a
		eTwo := two.CoreEnergyAt(a + b)
		return math.Abs(eOne-eTwo) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreStateString(t *testing.T) {
	if Busy.String() != "busy" || Spinning.String() != "spinning" || Halted.String() != "halted" {
		t.Error("CoreState String() labels wrong")
	}
	if CoreState(42).String() == "" {
		t.Error("unknown state should still stringify")
	}
}

// Tiered builds the heterogeneous cluster ladders: shard i loses the
// top i rungs but always keeps at least two, the voltage table stays
// in step with the ladder, and the result still validates.
func TestTiered(t *testing.T) {
	base := Opteron16()
	if got := Tiered(base, 0); got.Name != base.Name || len(got.Freqs) != len(base.Freqs) {
		t.Errorf("shard 0 must keep the full ladder: %+v", got)
	}
	for shard := 1; shard < len(base.Freqs)+3; shard++ {
		c := Tiered(base, shard)
		if err := c.Validate(); err != nil {
			t.Fatalf("shard %d: tiered config invalid: %v", shard, err)
		}
		wantDrop := shard
		if max := len(base.Freqs) - 2; wantDrop > max {
			wantDrop = max
		}
		if len(c.Freqs) != len(base.Freqs)-wantDrop {
			t.Errorf("shard %d: %d rungs, want %d", shard, len(c.Freqs), len(base.Freqs)-wantDrop)
		}
		if len(c.Freqs) < 2 {
			t.Errorf("shard %d: ladder shrank below 2 rungs (no DVFS left)", shard)
		}
		if c.Freqs[0] != base.Freqs[wantDrop] {
			t.Errorf("shard %d: fastest rung %g, want %g", shard, c.Freqs[0], base.Freqs[wantDrop])
		}
		if len(c.Power.Volt) != len(c.Freqs) {
			t.Errorf("shard %d: %d voltages for %d rungs", shard, len(c.Power.Volt), len(c.Freqs))
		}
	}
	// The base config is never mutated through the returned copies.
	c := Tiered(base, 1)
	c.Freqs[0] = 99
	c.Power.Volt[0] = 99
	if base.Freqs[1] == 99 || base.Power.Volt[1] == 99 {
		t.Error("Tiered aliases the base ladder")
	}
}
