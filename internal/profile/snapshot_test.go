package profile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/xrand"
)

// Regression for the MaxWork ingestion hole: a snapshot whose classes
// carry MaxWork == 0 (e.g. hand-edited JSON, or a file written by a
// tool that dropped the field) must fail Validate — before this check
// such a snapshot sailed through to cctable.BuildGranular, where
// MaxWork 0 means "unknown" and silently disables the
// task-indivisibility bound.
func TestSnapshotValidateRejectsZeroMaxWork(t *testing.T) {
	s := &Snapshot{
		Freqs: []float64(ladder),
		T:     0.25,
		Classes: []Class{
			{Name: "heavy", Count: 4, AvgWork: 0.2, MaxWork: 0},
		},
	}
	err := s.Validate(ladder)
	if err == nil {
		t.Fatal("MaxWork == 0 should be rejected")
	}
	if !strings.Contains(err.Error(), "max work") {
		t.Errorf("error should name max work, got: %v", err)
	}
}

func TestSnapshotValidateRejectsMaxBelowAvg(t *testing.T) {
	s := &Snapshot{
		Freqs: []float64(ladder),
		T:     0.25,
		Classes: []Class{
			{Name: "heavy", Count: 4, AvgWork: 0.2, MaxWork: 0.1},
		},
	}
	if err := s.Validate(ladder); err == nil {
		t.Fatal("MaxWork < AvgWork should be rejected")
	}
	// Equality up to float noise is fine: a single-sample class has
	// MaxWork == AvgWork exactly.
	s.Classes[0].MaxWork = s.Classes[0].AvgWork
	if err := s.Validate(ladder); err != nil {
		t.Fatalf("MaxWork == AvgWork should validate, got: %v", err)
	}
}

// A decoded hand-edited snapshot missing the max_work_s field entirely
// must be rejected, not defaulted.
func TestDecodeSnapshotMissingMaxWork(t *testing.T) {
	raw := `{
	  "freqs": [2.5, 1.8, 1.3, 0.8],
	  "ideal_time_s": 0.25,
	  "classes": [{"name": "heavy", "count": 4, "avg_work_s": 0.2}]
	}`
	s, err := DecodeSnapshot(bytes.NewBufferString(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(ladder); err == nil {
		t.Error("snapshot without max_work_s should fail Validate")
	}
}

// Profiler.Snapshot and the JSON round trip must preserve MaxWork
// bit-exactly — the indivisibility bound depends on the precise value.
func TestSnapshotPreservesMaxWorkExactly(t *testing.T) {
	p := New(ladder)
	p.Record("heavy", 0.2, 0, 0)
	p.Record("heavy", 0.217348915, 0, 0)
	p.Record("light", 0.0113, 1, 0)
	snap := p.Snapshot(0.25)

	want := map[string]float64{}
	for _, c := range p.Classes() {
		want[c.Name] = c.MaxWork
	}
	for _, c := range snap.Classes {
		if c.MaxWork != want[c.Name] {
			t.Errorf("Snapshot dropped MaxWork for %s: %g != %g", c.Name, c.MaxWork, want[c.Name])
		}
	}

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range got.Classes {
		if c.MaxWork != snap.Classes[i].MaxWork {
			t.Errorf("decode changed MaxWork for %s: %g != %g", c.Name, c.MaxWork, snap.Classes[i].MaxWork)
		}
	}
	if err := got.Validate(ladder); err != nil {
		t.Errorf("round-tripped snapshot invalid: %v", err)
	}
}

// randomLadder builds a valid descending frequency ladder of 2–6
// levels.
func randomLadder(rng *xrand.RNG) machine.FreqLadder {
	n := 2 + rng.Intn(5)
	out := make(machine.FreqLadder, n)
	f := 1.0 + rng.Float64()*3.0
	for i := range out {
		out[i] = f
		f *= 0.5 + rng.Float64()*0.4 // strictly decreasing
	}
	return out
}

// Property: a snapshot produced by a real profiler on a random ladder
// with random classes survives encode→decode→Validate, and the decoded
// struct equals the original field-for-field.
func TestSnapshotRoundTripProperty(t *testing.T) {
	rng := xrand.New(0xEE44)
	for iter := 0; iter < 200; iter++ {
		lad := randomLadder(rng)
		p := New(lad)
		classes := 1 + rng.Intn(6)
		for c := 0; c < classes; c++ {
			name := string(rune('a' + c))
			samples := 1 + rng.Intn(8)
			for s := 0; s < samples; s++ {
				dur := 1e-4 + rng.Float64()*0.3
				level := rng.Intn(len(lad))
				p.Record(name, dur, level, 0)
			}
		}
		snap := p.Snapshot(0.05 + rng.Float64())

		if err := snap.Validate(lad); err != nil {
			t.Fatalf("iter %d: fresh snapshot invalid: %v", iter, err)
		}
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			t.Fatalf("iter %d: encode: %v", iter, err)
		}
		got, err := DecodeSnapshot(&buf)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if err := got.Validate(lad); err != nil {
			t.Fatalf("iter %d: decoded snapshot invalid: %v", iter, err)
		}
		if got.T != snap.T || len(got.Freqs) != len(snap.Freqs) || len(got.Classes) != len(snap.Classes) {
			t.Fatalf("iter %d: shape changed: %+v vs %+v", iter, got, snap)
		}
		for i := range got.Freqs {
			if got.Freqs[i] != snap.Freqs[i] {
				t.Fatalf("iter %d: freq %d changed: %g != %g", iter, i, got.Freqs[i], snap.Freqs[i])
			}
		}
		for i := range got.Classes {
			a, b := got.Classes[i], snap.Classes[i]
			if a != b {
				t.Fatalf("iter %d: class %d changed: %+v != %+v", iter, i, a, b)
			}
		}
	}
}
