package profile

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/xrand"
)

var ladder = machine.FreqLadder{2.5, 1.8, 1.3, 0.8}

func TestNormalizeEq1(t *testing.T) {
	p := New(ladder)
	// A task that ran 10 s at F0 has workload 10.
	if got := p.Normalize(10, 0); got != 10 {
		t.Errorf("Normalize at F0 = %g, want 10", got)
	}
	// Eq. 1: w = t · Fi/F0. 10 s at 0.8 GHz ≡ 3.2 s at 2.5 GHz.
	if got, want := p.Normalize(10, 3), 10*0.8/2.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Normalize at F3 = %g, want %g", got, want)
	}
}

func TestNormalizePanicsOnBadLevel(t *testing.T) {
	p := New(ladder)
	defer func() {
		if recover() == nil {
			t.Error("invalid level should panic")
		}
	}()
	p.Normalize(1, 4)
}

func TestRecordRunningAverage(t *testing.T) {
	p := New(ladder)
	p.Record("md5", 2, 0, 0)
	p.Record("md5", 4, 0, 0)
	p.Record("md5", 6, 0, 0)
	c, ok := p.Lookup("md5")
	if !ok {
		t.Fatal("class md5 missing")
	}
	if c.Count != 3 {
		t.Errorf("Count = %d, want 3", c.Count)
	}
	if math.Abs(c.AvgWork-4) > 1e-12 {
		t.Errorf("AvgWork = %g, want 4", c.AvgWork)
	}
	if math.Abs(c.TotalWork()-12) > 1e-12 {
		t.Errorf("TotalWork = %g, want 12", c.TotalWork())
	}
}

func TestRecordNormalizesAcrossFrequencies(t *testing.T) {
	p := New(ladder)
	// Same task observed on a slow core: longer wall time, same workload.
	p.Record("f", 2.5, 0, 0)         // w = 2.5
	p.Record("f", 2.5*2.5/0.8, 3, 0) // wall time stretched by F0/F3 → w = 2.5
	c, _ := p.Lookup("f")
	if math.Abs(c.AvgWork-2.5) > 1e-9 {
		t.Errorf("AvgWork = %g, want 2.5 (Eq. 1 should cancel core speed)", c.AvgWork)
	}
}

func TestClassesSortedByDescendingWork(t *testing.T) {
	p := New(ladder)
	p.Record("light", 1, 0, 0)
	p.Record("heavy", 9, 0, 0)
	p.Record("mid", 5, 0, 0)
	cs := p.Classes()
	if len(cs) != 3 {
		t.Fatalf("classes = %d, want 3", len(cs))
	}
	if cs[0].Name != "heavy" || cs[1].Name != "mid" || cs[2].Name != "light" {
		t.Errorf("order = %s,%s,%s want heavy,mid,light", cs[0].Name, cs[1].Name, cs[2].Name)
	}
}

func TestClassesTieBreakDeterministic(t *testing.T) {
	p := New(ladder)
	p.Record("b", 3, 0, 0)
	p.Record("a", 3, 0, 0)
	cs := p.Classes()
	// Equal workloads: first-seen ("b") wins, every time.
	if cs[0].Name != "b" {
		t.Errorf("tie-break order changed: got %s first", cs[0].Name)
	}
}

func TestLookupMissing(t *testing.T) {
	p := New(ladder)
	if _, ok := p.Lookup("ghost"); ok {
		t.Error("Lookup of unseen class should report false")
	}
}

func TestMemoryBoundMajorityRule(t *testing.T) {
	p := New(ladder)
	p.SetMemBoundThreshold(0.01)
	// 2 of 4 memory-bound: not a strict majority.
	p.Record("a", 1, 0, 0.5)
	p.Record("a", 1, 0, 0.5)
	p.Record("a", 1, 0, 0.001)
	p.Record("a", 1, 0, 0.001)
	if p.MemoryBound() {
		t.Error("exactly half memory-bound must not classify the app as memory-bound")
	}
	p.Record("a", 1, 0, 0.5)
	if !p.MemoryBound() {
		t.Error("3 of 5 memory-bound should classify the app as memory-bound")
	}
	if got, want := p.MemoryBoundFraction(), 3.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("fraction = %g, want %g", got, want)
	}
}

func TestMemoryBoundEmptyProfiler(t *testing.T) {
	p := New(ladder)
	if p.MemoryBound() {
		t.Error("empty profiler must not be memory-bound")
	}
	if p.MemoryBoundFraction() != 0 {
		t.Error("empty profiler fraction should be 0")
	}
}

func TestResetClearsClassesKeepsMemCounters(t *testing.T) {
	p := New(ladder)
	p.Record("a", 1, 0, 0.5)
	p.Reset()
	if p.NumClasses() != 0 {
		t.Error("Reset should clear classes")
	}
	if len(p.Classes()) != 0 {
		t.Error("Classes after Reset should be empty")
	}
	// Memory-bound classification persists (it is decided once).
	if !p.MemoryBound() {
		t.Error("memory-bound counters must survive Reset")
	}
	if p.TotalTasks() != 1 {
		t.Errorf("TotalTasks = %d, want 1 (persists)", p.TotalTasks())
	}
}

func TestRecordNegativeTimePanics(t *testing.T) {
	p := New(ladder)
	defer func() {
		if recover() == nil {
			t.Error("negative time should panic")
		}
	}()
	p.Record("a", -1, 0, 0)
}

func TestNewPanicsOnBadLadder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid ladder should panic")
		}
	}()
	New(machine.FreqLadder{})
}

// Property: the running average equals the true mean of the normalized
// samples, regardless of arrival order or core speeds.
func TestRunningAverageProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := xrand.New(seed)
		p := New(ladder)
		sum := 0.0
		for i := 0; i < n; i++ {
			level := rng.Intn(len(ladder))
			w := rng.Range(0.01, 10)
			wall := w * ladder[0] / ladder[level] // invert Eq. 1
			p.Record("c", wall, level, 0)
			sum += w
		}
		c, _ := p.Lookup("c")
		return c.Count == n && math.Abs(c.AvgWork-sum/float64(n)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Classes() is always sorted by non-increasing AvgWork.
func TestClassesSortedProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		rng := xrand.New(seed)
		p := New(ladder)
		names := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < n; i++ {
			p.Record(names[rng.Intn(len(names))], rng.Range(0.1, 5), rng.Intn(len(ladder)), 0)
		}
		cs := p.Classes()
		for i := 1; i < len(cs); i++ {
			if cs[i].AvgWork > cs[i-1].AvgWork+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := New(ladder)
	p.Record("heavy", 0.2, 0, 0)
	p.Record("heavy", 0.22, 0, 0)
	p.Record("light", 0.01, 0, 0)
	snap := p.Snapshot(0.25)
	if err := snap.Validate(ladder); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.T != snap.T || len(got.Classes) != 2 {
		t.Errorf("round-trip = %+v", got)
	}
	if got.Classes[0].Name != "heavy" || got.Classes[0].Count != 2 {
		t.Errorf("classes corrupted: %+v", got.Classes)
	}
	if math.Abs(got.Classes[0].AvgWork-0.21) > 1e-12 {
		t.Errorf("AvgWork = %g, want 0.21", got.Classes[0].AvgWork)
	}
}

func TestSnapshotValidateRejects(t *testing.T) {
	p := New(ladder)
	p.Record("a", 0.1, 0, 0)
	snap := p.Snapshot(0.2)
	if err := snap.Validate(machine.FreqLadder{3.0, 1.0, 0.5, 0.2}); err == nil {
		t.Error("ladder mismatch should be rejected")
	}
	bad := *snap
	bad.T = 0
	if err := bad.Validate(nil); err == nil {
		t.Error("zero T should be rejected")
	}
	bad = *snap
	bad.Classes = nil
	if err := bad.Validate(nil); err == nil {
		t.Error("empty classes should be rejected")
	}
	unsorted := *snap
	unsorted.Classes = []Class{
		{Name: "x", Count: 1, AvgWork: 1, MaxWork: 1},
		{Name: "y", Count: 1, AvgWork: 2, MaxWork: 2},
	}
	if err := unsorted.Validate(nil); err == nil {
		t.Error("unsorted classes should be rejected")
	}
}

func TestDecodeSnapshotGarbage(t *testing.T) {
	if _, err := DecodeSnapshot(bytes.NewBufferString("{oops")); err == nil {
		t.Error("garbage JSON should error")
	}
}

func TestRawAvgAndLevels(t *testing.T) {
	p := New(ladder)
	p.Record("c", 0.10, 0, 0)
	p.Record("c", 0.20, 0, 0)
	p.Record("c", 0.30, 3, 0)
	if avg, ok := p.RawAvg("c", 0); !ok || math.Abs(avg-0.15) > 1e-12 {
		t.Errorf("RawAvg level 0 = %g,%v want 0.15,true", avg, ok)
	}
	if avg, ok := p.RawAvg("c", 3); !ok || math.Abs(avg-0.30) > 1e-12 {
		t.Errorf("RawAvg level 3 = %g,%v", avg, ok)
	}
	if _, ok := p.RawAvg("c", 1); ok {
		t.Error("unsampled level should report false")
	}
	if _, ok := p.RawAvg("ghost", 0); ok {
		t.Error("unknown class should report false")
	}
	levels := p.RawLevels("c")
	if len(levels) != 2 || levels[0] != 0 || levels[1] != 3 {
		t.Errorf("RawLevels = %v, want [0 3]", levels)
	}
	// Raw data persists across Reset (the memmodel contract).
	p.Reset()
	if _, ok := p.RawAvg("c", 0); !ok {
		t.Error("raw observations must survive Reset")
	}
}
