// Package profile implements EEWA's online profiler (paper §III-A-1).
//
// During each batch the scheduler reports every completed task's
// execution time together with the frequency level of the core that ran
// it. The profiler normalizes the time against the fastest frequency
// (Eq. 1: w = t · Fi/F0), then folds the task into its *task class*
// TC(f, n, w), keyed by function name, maintaining the running average
// workload exactly as the paper specifies:
//
//	TC(f, n, w)  +  task with workload wγ  →  TC(f, n+1, (n·w + wγ)/(n+1))
//
// The profiler also mirrors the paper's §IV-D memory-boundness test: it
// accumulates a modeled cache-miss-per-instruction counter for each
// task and labels a task memory-bound when the intensity exceeds a
// threshold; an application is memory-bound when most of its first-batch
// tasks are.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// DefaultMemBoundThreshold is the cache-miss-intensity above which a
// task counts as memory-bound. The paper leaves the constant to the
// implementation ("larger than a given threshold"); 0.01
// misses/instruction ≈ an LLC-miss-dominated task on the modeled parts.
const DefaultMemBoundThreshold = 0.01

// Class is a task class TC(f, n, w): function name, task count and
// average normalized workload (seconds at F0). MaxWork additionally
// tracks the largest single normalized workload seen — the quantity
// that bounds how far the class can be down-clocked before one task no
// longer fits in the ideal iteration time (task indivisibility; see
// cctable.BuildGranular).
type Class struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	AvgWork float64 `json:"avg_work_s"`
	MaxWork float64 `json:"max_work_s"`
}

// TotalWork returns n·w, the class's aggregate workload — the numerator
// of every CC-table entry.
func (c Class) TotalWork() float64 { return float64(c.Count) * c.AvgWork }

// rawStats accumulates un-normalized execution times per frequency
// level for one class — the inputs of the memory-bound frequency-
// response model (§IV-D future work, implemented in internal/memmodel).
type rawStats struct {
	sum   []float64
	count []int
}

// Profiler collects per-batch workload information. It is not
// concurrency-safe by itself; the simulator is single-threaded and the
// live runtime wraps it in a mutex at its sync point.
type Profiler struct {
	ladder  machine.FreqLadder
	classes map[string]*Class
	order   []string // first-seen order, for deterministic iteration
	raw     map[string]*rawStats
	gen     uint64 // bumped by Reset; invalidates ClassRef caches

	// memory-boundness bookkeeping
	memBoundThreshold float64
	memBoundTasks     int
	totalTasks        int
}

// New creates a profiler for a machine with the given frequency ladder.
func New(ladder machine.FreqLadder) *Profiler {
	if err := ladder.Validate(); err != nil {
		panic("profile: " + err.Error())
	}
	return &Profiler{
		ladder:            ladder,
		classes:           make(map[string]*Class),
		raw:               make(map[string]*rawStats),
		memBoundThreshold: DefaultMemBoundThreshold,
	}
}

// SetMemBoundThreshold overrides the memory-bound cutoff (for tests and
// sensitivity studies).
func (p *Profiler) SetMemBoundThreshold(v float64) { p.memBoundThreshold = v }

// Normalize applies Eq. 1: a task that took t seconds on a core at
// frequency level j has workload t · Fj/F0 (its hypothetical time on
// the fastest core, assuming CPU-bound behaviour).
func (p *Profiler) Normalize(t float64, level int) float64 {
	if level < 0 || level >= len(p.ladder) {
		panic(fmt.Sprintf("profile: invalid frequency level %d", level))
	}
	return t * p.ladder[level] / p.ladder[0]
}

// Record folds one completed task into its class. execTime is the
// observed wall time on a core at frequency level `level`;
// missIntensity is the modeled cache-misses-per-instruction counter.
func (p *Profiler) Record(name string, execTime float64, level int, missIntensity float64) {
	c, rs := p.entries(name)
	p.recordInto(c, rs, execTime, level, missIntensity)
}

// entries returns (creating on first use) the class and raw-stats
// records for name. Creation order is first-record order — the
// deterministic tie-break Classes() sorts by.
func (p *Profiler) entries(name string) (*Class, *rawStats) {
	c, ok := p.classes[name]
	if !ok {
		c = &Class{Name: name}
		p.classes[name] = c
		p.order = append(p.order, name)
	}
	rs, ok := p.raw[name]
	if !ok {
		rs = &rawStats{sum: make([]float64, len(p.ladder)), count: make([]int, len(p.ladder))}
		p.raw[name] = rs
	}
	return c, rs
}

// recordInto folds one completed task into pre-resolved entries.
func (p *Profiler) recordInto(c *Class, rs *rawStats, execTime float64, level int, missIntensity float64) {
	if execTime < 0 {
		panic(fmt.Sprintf("profile: negative execution time %g", execTime))
	}
	w := p.Normalize(execTime, level)
	// Running-average update, exactly TC(f, n+1, (n·w + wγ)/(n+1)).
	c.AvgWork = (float64(c.Count)*c.AvgWork + w) / float64(c.Count+1)
	c.Count++
	if w > c.MaxWork {
		c.MaxWork = w
	}

	rs.sum[level] += execTime
	rs.count[level]++

	p.totalTasks++
	if missIntensity > p.memBoundThreshold {
		p.memBoundTasks++
	}
}

// ClassRef is a per-class recording handle that skips the two map
// lookups Record pays per task. A ref survives Reset: it lazily
// re-resolves its entries on first use in each profiling generation,
// so classes are still registered in first-*completion* order per
// batch (the order Classes() tie-breaks by) — holding a ref does not
// by itself create the class.
type ClassRef struct {
	p     *Profiler
	name  string
	gen   uint64
	class *Class
	raw   *rawStats
}

// Ref returns a recording handle for class name. The handle is owned
// by the profiler's thread (the sim event loop); it is not
// concurrency-safe.
func (p *Profiler) Ref(name string) *ClassRef {
	return &ClassRef{p: p, name: name, gen: p.gen - 1}
}

// Record folds one completed task into the ref's class, exactly as
// Profiler.Record(name, ...) would.
func (r *ClassRef) Record(execTime float64, level int, missIntensity float64) {
	p := r.p
	if r.gen != p.gen {
		r.class, r.raw = p.entries(r.name)
		r.gen = p.gen
	}
	p.recordInto(r.class, r.raw, execTime, level, missIntensity)
}

// Classes returns the current task classes sorted by descending average
// workload (the order the CC table requires: w_i descending), breaking
// ties by first-seen order so results are deterministic.
func (p *Profiler) Classes() []Class {
	out := make([]Class, 0, len(p.classes))
	seen := map[string]int{}
	for i, name := range p.order {
		seen[name] = i
		out = append(out, *p.classes[name])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AvgWork != out[j].AvgWork {
			return out[i].AvgWork > out[j].AvgWork
		}
		return seen[out[i].Name] < seen[out[j].Name]
	})
	return out
}

// Lookup returns the class for a function name, if the profiler has
// seen it.
func (p *Profiler) Lookup(name string) (Class, bool) {
	c, ok := p.classes[name]
	if !ok {
		return Class{}, false
	}
	return *c, true
}

// NumClasses returns k, the number of distinct task classes seen.
func (p *Profiler) NumClasses() int { return len(p.classes) }

// TotalTasks returns how many task completions have been recorded.
func (p *Profiler) TotalTasks() int { return p.totalTasks }

// MemoryBound reports whether the application should be treated as
// memory-bound: the paper's rule is "if most tasks of an application
// are memory-bound" — we use a strict majority.
func (p *Profiler) MemoryBound() bool {
	return p.totalTasks > 0 && p.memBoundTasks*2 > p.totalTasks
}

// MemoryBoundFraction returns the fraction of recorded tasks labelled
// memory-bound, for reporting.
func (p *Profiler) MemoryBoundFraction() float64 {
	if p.totalTasks == 0 {
		return 0
	}
	return float64(p.memBoundTasks) / float64(p.totalTasks)
}

// Reset clears per-batch state. EEWA re-profiles every batch (workloads
// drift between iterations), so the scheduler calls Reset at each batch
// barrier after the adjuster has consumed the classes. Memory-bound
// counters persist: the paper classifies the application once, from the
// first batch.
func (p *Profiler) Reset() {
	p.classes = make(map[string]*Class)
	p.order = p.order[:0]
	p.gen++ // stale ClassRefs re-resolve on next Record
	// Raw per-level observations persist across batches: the memory-
	// bound frequency-response model needs samples from *different*
	// batches (each run at different levels) to fit its two
	// coefficients.
}

// RawAvg returns the average un-normalized execution time of class
// `name` on cores at frequency level `level`, and whether any sample
// exists. Unlike Classes, raw observations accumulate across batches.
func (p *Profiler) RawAvg(name string, level int) (float64, bool) {
	rs, ok := p.raw[name]
	if !ok || level < 0 || level >= len(p.ladder) || rs.count[level] == 0 {
		return 0, false
	}
	return rs.sum[level] / float64(rs.count[level]), true
}

// RawLevels returns the frequency levels at which class `name` has
// been observed, in ascending order.
func (p *Profiler) RawLevels(name string) []int {
	rs, ok := p.raw[name]
	if !ok {
		return nil
	}
	var out []int
	for lvl, n := range rs.count {
		if n > 0 {
			out = append(out, lvl)
		}
	}
	return out
}
