package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/machine"
)

// Snapshot is a serializable workload profile — the paper's §IV-D
// offline-profiling mode: "for a parallel application that does not
// launch tasks in batches, we can collect the workload information of
// the tasks by profiling the application offline. Once the information
// is collected, we can use the workload-aware frequency adjuster and
// the preference-based task scheduler to improve the energy efficiency
// of the application in the later executions."
//
// A Snapshot carries everything the adjuster needs to decide a
// configuration before the first task runs: the frequency ladder it
// was measured on, the ideal iteration time, and the task classes.
type Snapshot struct {
	// Freqs is the ladder the profile was collected on (GHz,
	// descending). A snapshot only transfers to machines with the
	// same ladder.
	Freqs []float64 `json:"freqs"`
	// T is the ideal iteration time in seconds (the all-fast batch
	// duration the profile was normalized against).
	T float64 `json:"ideal_time_s"`
	// Classes are the profiled task classes, descending AvgWork.
	Classes []Class `json:"classes"`
}

// Snapshot captures the profiler's current classes together with the
// ideal time T.
func (p *Profiler) Snapshot(T float64) *Snapshot {
	return &Snapshot{
		Freqs:   append([]float64(nil), p.ladder...),
		T:       T,
		Classes: p.Classes(),
	}
}

// Validate checks internal consistency and, when ladder is non-nil,
// compatibility with the target machine.
func (s *Snapshot) Validate(ladder machine.FreqLadder) error {
	if s.T <= 0 {
		return fmt.Errorf("profile: snapshot has non-positive ideal time %g", s.T)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("profile: snapshot has no classes")
	}
	for i, c := range s.Classes {
		if c.Count <= 0 || c.AvgWork <= 0 {
			return fmt.Errorf("profile: snapshot class %d (%s) degenerate", i, c.Name)
		}
		// MaxWork bounds how far a class can be down-clocked before a
		// single task overruns T (task indivisibility — see
		// cctable.BuildGranular). A zero or missing MaxWork in a
		// hand-edited or truncated snapshot would silently disable that
		// bound; a MaxWork below AvgWork is arithmetically impossible
		// for a max over the samples that produced the average.
		if c.MaxWork <= 0 {
			return fmt.Errorf("profile: snapshot class %d (%s) has non-positive max work %g", i, c.Name, c.MaxWork)
		}
		if c.MaxWork < c.AvgWork-1e-12 {
			return fmt.Errorf("profile: snapshot class %d (%s) has max work %g below average %g", i, c.Name, c.MaxWork, c.AvgWork)
		}
		if i > 0 && c.AvgWork > s.Classes[i-1].AvgWork+1e-12 {
			return fmt.Errorf("profile: snapshot classes not sorted at %d", i)
		}
	}
	if ladder != nil {
		if len(ladder) != len(s.Freqs) {
			return fmt.Errorf("profile: snapshot ladder has %d levels, machine has %d", len(s.Freqs), len(ladder))
		}
		for i, f := range s.Freqs {
			if f != ladder[i] {
				return fmt.Errorf("profile: snapshot frequency %g != machine %g at level %d", f, ladder[i], i)
			}
		}
	}
	return nil
}

// Encode writes the snapshot as indented JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("profile: decoding snapshot: %w", err)
	}
	return &s, nil
}
