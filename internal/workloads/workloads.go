// Package workloads defines the seven benchmarks of the paper's
// Table II as batched task-class mixes for the simulator, plus
// synthetic generators used by tests and sweeps.
//
// The paper runs real compression/crypto codes (BWC, Bzip-2, DMC, JPEG
// encoding, LZW, MD5, SHA-1) under MIT Cilk, launching ~128 tasks per
// batch. We cannot run the authors' exact binaries, so each benchmark
// is modeled as its task-class structure: the classes (pipeline stages
// or input-size strata, named like "sha1/file"), the per-batch task
// count of each class, and per-task CPU-bound work with a small
// iteration-to-iteration jitter — the precise information EEWA's
// profiler consumes. The class mixes are calibrated so that the Cilk
// baseline exhibits each benchmark's published utilization headroom,
// which is the quantity that determines every number in Figs. 6–9
// (see DESIGN.md §2 and EXPERIMENTS.md for measured-vs-paper values).
//
// internal/kernels contains real from-scratch implementations of the
// same algorithm families; the live-runtime example executes those as
// task payloads, while the simulator uses the calibrated class mixes.
package workloads

import (
	"fmt"

	"repro/internal/task"
)

// DefaultBatches is the number of batches per benchmark run, matching
// the 10-batch traces of the paper's Fig. 8.
const DefaultBatches = 10

// Benchmark is one entry of the paper's Table II.
type Benchmark struct {
	// Name is the paper's benchmark name (lower-cased).
	Name string
	// Desc is the paper's one-line description.
	Desc string
	// Specs is the per-batch task-class mix.
	Specs []task.ClassSpec
	// Batches is the number of iterations in a run.
	Batches int
}

// Workload instantiates the benchmark's batches deterministically from
// a seed.
func (b Benchmark) Workload(seed uint64) *task.Workload {
	return task.MustGenerate(b.Name, b.Batches, b.Specs, seed)
}

// All returns the seven benchmarks of Table II. The mixes are frozen:
// every experiment and test in this repository derives from them, so
// changing a number here changes EXPERIMENTS.md.
func All() []Benchmark {
	return []Benchmark{
		{
			Name: "bwc",
			Desc: "Burrows-Wheeler Transforming Compression",
			Specs: []task.ClassSpec{
				{Name: "bwc/bwt", Count: 14, MeanWork: 0.095, JitterFrac: 0.05},
				{Name: "bwc/mtf", Count: 50, MeanWork: 0.016, JitterFrac: 0.05},
				{Name: "bwc/huff", Count: 64, MeanWork: 0.008, JitterFrac: 0.05},
			},
			Batches: DefaultBatches,
		},
		{
			Name: "bzip2",
			Desc: "Bzip2 file compression algorithm",
			Specs: []task.ClassSpec{
				{Name: "bz2/block", Count: 24, MeanWork: 0.070, JitterFrac: 0.05},
				{Name: "bz2/entropy", Count: 104, MeanWork: 0.012, JitterFrac: 0.05},
			},
			Batches: DefaultBatches,
		},
		{
			Name: "dmc",
			Desc: "Dynamic Markov Coding",
			Specs: []task.ClassSpec{
				{Name: "dmc/model", Count: 8, MeanWork: 0.085, JitterFrac: 0.05},
				{Name: "dmc/encode", Count: 56, MeanWork: 0.018, JitterFrac: 0.05},
				{Name: "dmc/flush", Count: 64, MeanWork: 0.006, JitterFrac: 0.05},
			},
			Batches: DefaultBatches,
		},
		{
			Name: "je",
			Desc: "JPEG Encoding Algorithm",
			Specs: []task.ClassSpec{
				{Name: "je/head", Count: 2, MeanWork: 0.100, JitterFrac: 0.05},
				{Name: "je/dct", Count: 48, MeanWork: 0.036, JitterFrac: 0.05},
				{Name: "je/huff", Count: 78, MeanWork: 0.007, JitterFrac: 0.05},
			},
			Batches: DefaultBatches,
		},
		{
			Name: "lzw",
			Desc: "Lempel-Ziv-Welch data compression",
			Specs: []task.ClassSpec{
				{Name: "lzw/dict", Count: 16, MeanWork: 0.085, JitterFrac: 0.05},
				{Name: "lzw/emit", Count: 112, MeanWork: 0.010, JitterFrac: 0.05},
			},
			Batches: DefaultBatches,
		},
		{
			Name: "md5",
			Desc: "Message Digest Algorithm",
			Specs: []task.ClassSpec{
				{Name: "md5/file", Count: 7, MeanWork: 0.120, JitterFrac: 0.03},
				{Name: "md5/chunk", Count: 121, MeanWork: 0.0055, JitterFrac: 0.05},
			},
			Batches: DefaultBatches,
		},
		{
			Name: "sha1",
			Desc: "SHA-1 cryptographic hash function",
			Specs: []task.ClassSpec{
				{Name: "sha1/file", Count: 5, MeanWork: 0.170, JitterFrac: 0.03},
				{Name: "sha1/chunk", Count: 123, MeanWork: 0.0046, JitterFrac: 0.05},
			},
			Batches: DefaultBatches,
		},
	}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns the benchmark names in table order.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// MemoryBound returns a synthetic memory-bound application: every task
// has a cache-miss intensity far above the profiler threshold and a
// large frequency-insensitive share. EEWA must detect it after the
// first batch and fall back to classic work stealing (§IV-D); the
// MemAware extension instead calibrates and schedules from the fitted
// frequency-response models. Shaped like the CPU-bound mixes — a
// chunky straggler class plus a fine class — so there is headroom for
// the extension to exploit.
func MemoryBound() Benchmark {
	return Benchmark{
		Name: "membound",
		Desc: "synthetic memory-bound workload (EEWA §IV-D fallback and MemAware extension)",
		Specs: []task.ClassSpec{
			{Name: "mb/stream", Count: 8, MeanWork: 0.100, JitterFrac: 0.04, MemFrac: 0.7, CacheMissIntensity: 0.05},
			{Name: "mb/gather", Count: 120, MeanWork: 0.008, JitterFrac: 0.05, MemFrac: 0.6, CacheMissIntensity: 0.08},
		},
		Batches: DefaultBatches,
	}
}

// Synthetic builds a two-class workload with a tunable utilization
// headroom: heavyFrac of the total work sits in a chunky straggler
// class. Used by sweeps and property tests.
func Synthetic(name string, heavyCount int, heavyWork float64, lightCount int, lightWork float64, batches int) Benchmark {
	return Benchmark{
		Name: name,
		Desc: "synthetic two-class workload",
		Specs: []task.ClassSpec{
			{Name: name + "/heavy", Count: heavyCount, MeanWork: heavyWork, JitterFrac: 0.05},
			{Name: name + "/light", Count: lightCount, MeanWork: lightWork, JitterFrac: 0.05},
		},
		Batches: batches,
	}
}
