package workloads

import (
	"testing"

	"repro/internal/profile"
)

func TestAllSevenBenchmarks(t *testing.T) {
	bs := All()
	if len(bs) != 7 {
		t.Fatalf("got %d benchmarks, want 7 (Table II)", len(bs))
	}
	wantNames := map[string]bool{
		"bwc": true, "bzip2": true, "dmc": true, "je": true,
		"lzw": true, "md5": true, "sha1": true,
	}
	for _, b := range bs {
		if !wantNames[b.Name] {
			t.Errorf("unexpected benchmark %q", b.Name)
		}
		delete(wantNames, b.Name)
		if b.Desc == "" {
			t.Errorf("%s: missing description", b.Name)
		}
		if b.Batches != DefaultBatches {
			t.Errorf("%s: %d batches, want %d", b.Name, b.Batches, DefaultBatches)
		}
	}
	for name := range wantNames {
		t.Errorf("missing benchmark %q", name)
	}
}

func TestWorkloadsValidateAndBatchSize(t *testing.T) {
	for _, b := range All() {
		w := b.Workload(1)
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		// The paper launches ~128 tasks per batch.
		for bi := range w.Batches {
			n := len(w.Batches[bi].Tasks)
			if n < 120 || n > 136 {
				t.Errorf("%s batch %d: %d tasks, want ≈128", b.Name, bi, n)
			}
		}
	}
}

func TestWorkloadDeterministicPerSeed(t *testing.T) {
	b, err := ByName("md5")
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := b.Workload(9), b.Workload(9)
	if w1.TotalWork() != w2.TotalWork() {
		t.Error("same seed must give identical workloads")
	}
	w3 := b.Workload(10)
	if w1.TotalWork() == w3.TotalWork() {
		t.Error("different seeds should differ")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 7 || names[0] != "bwc" || names[6] != "sha1" {
		t.Errorf("Names() = %v", names)
	}
}

func TestMemoryBoundWorkload(t *testing.T) {
	b := MemoryBound()
	w := b.Workload(1)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every task must exceed the profiler's memory-bound threshold.
	for _, tk := range w.Batches[0].Tasks {
		if tk.CacheMissIntensity <= profile.DefaultMemBoundThreshold {
			t.Errorf("task %s intensity %g not above threshold", tk.Class, tk.CacheMissIntensity)
		}
		if tk.MemFrac <= 0 {
			t.Errorf("task %s should be partially frequency-insensitive", tk.Class)
		}
	}
}

func TestSynthetic(t *testing.T) {
	b := Synthetic("syn", 8, 0.1, 120, 0.01, 5)
	w := b.Workload(3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Batches) != 5 {
		t.Errorf("batches = %d, want 5", len(w.Batches))
	}
	if got := len(w.Batches[0].Tasks); got != 128 {
		t.Errorf("tasks per batch = %d, want 128", got)
	}
}

func TestClassStructureHasHeavyAndLight(t *testing.T) {
	// Every benchmark needs workload heterogeneity for EEWA to exploit:
	// the heaviest class's mean work must be well above the lightest's.
	for _, b := range All() {
		var maxW, minW float64
		for i, s := range b.Specs {
			if i == 0 || s.MeanWork > maxW {
				maxW = s.MeanWork
			}
			if i == 0 || s.MeanWork < minW {
				minW = s.MeanWork
			}
		}
		if maxW < 5*minW {
			t.Errorf("%s: class spread %.1f×, want ≥ 5× (workload heterogeneity)", b.Name, maxW/minW)
		}
	}
}
