package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/task"
)

func sample() *Recorder {
	r := &Recorder{}
	r.Record(0, 0, 1.0, "a", 0)
	r.Record(0, 1.2, 2.0, "b", 0)
	r.Record(1, 0, 0.5, "b", 3)
	return r
}

func TestMakespan(t *testing.T) {
	r := sample()
	if got := r.Makespan(); got != 2.0 {
		t.Errorf("Makespan = %g, want 2", got)
	}
	empty := &Recorder{}
	if empty.Makespan() != 0 {
		t.Error("empty recorder makespan should be 0")
	}
}

func TestGantt(t *testing.T) {
	out := sample().Gantt(40)
	if !strings.Contains(out, "core  0") || !strings.Contains(out, "core  1") {
		t.Errorf("gantt missing core rows:\n%s", out)
	}
	// Core 0 runs at F0 ('#'), core 1 at F3 ('.').
	lines := strings.Split(out, "\n")
	var row0, row1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "core  0") {
			row0 = l
		}
		if strings.HasPrefix(l, "core  1") {
			row1 = l
		}
	}
	if !strings.Contains(row0, "#") {
		t.Errorf("core 0 row missing F0 glyph: %s", row0)
	}
	if !strings.Contains(row1, ".") {
		t.Errorf("core 1 row missing F3 glyph: %s", row1)
	}
	// Idle gap on core 0 between 1.0 and 1.2 leaves blanks.
	if !strings.Contains(row0, " ") {
		t.Errorf("core 0 row has no idle gap: %s", row0)
	}
}

func TestGanttDegenerate(t *testing.T) {
	empty := &Recorder{}
	if out := empty.Gantt(40); !strings.Contains(out, "no spans") {
		t.Errorf("empty gantt = %q", out)
	}
	if out := sample().Gantt(0); !strings.Contains(out, "no spans") && out == "" {
		t.Error("zero width should degrade gracefully")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4 (header + 3 spans)", len(lines))
	}
	if lines[0] != "core,start,end,label,level,kind" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",exec") {
		t.Errorf("exec span row missing kind column: %q", lines[1])
	}
}

func TestBusyAndClassTime(t *testing.T) {
	r := sample()
	busy := r.BusyTime()
	if math.Abs(busy[0]-1.8) > 1e-9 || math.Abs(busy[1]-0.5) > 1e-9 {
		t.Errorf("BusyTime = %v", busy)
	}
	class := r.ClassTime()
	if math.Abs(class["a"]-1.0) > 1e-9 || math.Abs(class["b"]-1.3) > 1e-9 {
		t.Errorf("ClassTime = %v", class)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "222222"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "222222") {
		t.Errorf("table output:\n%s", out)
	}
}

// TestRecorderWithScheduler wires the recorder into a real simulation
// and checks the spans reconstruct the machine's busy time.
func TestRecorderWithScheduler(t *testing.T) {
	cfg := machine.Opteron16()
	w := task.MustGenerate("traced", 2, []task.ClassSpec{
		{Name: "a", Count: 16, MeanWork: 0.01, JitterFrac: 0.05},
	}, 3)
	rec := &Recorder{}
	params := sched.DefaultParams()
	params.Recorder = rec
	res, err := sched.Run(cfg, w, sched.NewCilk(), params)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.ExecSpans()); got != 32 {
		t.Fatalf("recorded %d exec spans, want 32 tasks", got)
	}
	// The recorder also captures steal lead-ins and terminal idle waits
	// (the engine saw steals on this workload, and cores must wait at
	// the barrier), so the raw span list is strictly larger.
	if rec.Len() <= 32 {
		t.Errorf("recorded %d total spans, want steal/idle intervals beyond the 32 exec spans", rec.Len())
	}
	total := 0.0
	for _, busy := range rec.BusyTime() {
		total += busy
	}
	// Machine busy time additionally includes probe/steal lead-in
	// (≈ a microsecond per task), so allow that much slack.
	if math.Abs(total-res.BusyTime) > 1e-4 {
		t.Errorf("span time %g != machine busy time %g", total, res.BusyTime)
	}
	if rec.Makespan() > res.Makespan+1e-9 {
		t.Error("span end beyond makespan")
	}
	out := rec.Gantt(60)
	if !strings.Contains(out, "32 spans") {
		t.Errorf("gantt header wrong:\n%s", out)
	}
}

// TestRecorderMaxSpans exercises the drop-oldest bound: retained spans
// never exceed the cap, evictions are counted, order stays
// chronological, and every consumer sees only the retained window.
func TestRecorderMaxSpans(t *testing.T) {
	r := &Recorder{MaxSpans: 8}
	for i := 0; i < 20; i++ {
		r.Record(i%2, float64(i), float64(i)+0.5, "cls", 0)
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Errorf("Dropped = %d, want 12", r.Dropped())
	}
	all := r.All()
	if len(all) != 8 {
		t.Fatalf("All returned %d spans", len(all))
	}
	for i, s := range all {
		if want := float64(12 + i); s.Start != want {
			t.Errorf("All[%d].Start = %g, want %g (oldest dropped, order kept)", i, s.Start, want)
		}
	}
	if got := r.Makespan(); got != 19.5 {
		t.Errorf("Makespan = %g, want 19.5 (latest span retained)", got)
	}
	if got := len(r.ExecSpans()); got != 8 {
		t.Errorf("ExecSpans = %d, want 8", got)
	}
	// CSV rows follow the same window.
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 { // header + 8 spans
		t.Errorf("CSV has %d lines, want 9", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,12.0") {
		t.Errorf("first CSV row = %q, want the oldest retained span (start 12)", lines[1])
	}

	// Unbounded recorder (zero value) keeps everything.
	u := &Recorder{}
	for i := 0; i < 20; i++ {
		u.Record(0, float64(i), float64(i)+1, "cls", 0)
	}
	if u.Len() != 20 || u.Dropped() != 0 {
		t.Errorf("unbounded recorder: Len = %d, Dropped = %d", u.Len(), u.Dropped())
	}
}
