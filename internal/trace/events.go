package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file renders a Recorder as Chrome trace-event JSON — the legacy
// format Perfetto (https://ui.perfetto.dev) and chrome://tracing both
// ingest. The mapping:
//
//   - one thread track per core (pid 0, tid = core id), named via "M"
//     metadata events;
//   - every span becomes a ph "X" complete event (ts/dur in
//     microseconds); exec spans are named by task class, steal and idle
//     intervals by their kind, with the kind as the event category so
//     Perfetto can color and filter them;
//   - each core's frequency level becomes a counter track ("C" events
//     named "freq level core N"), sampled at every exec-span start and
//     closed at the makespan — the per-core view of the paper's Fig. 8
//     census.

// TraceEvent is one record of the Chrome trace-event format. Fields
// are a subset of the spec, sufficient for Perfetto's legacy JSON
// importer.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level JSON object container.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

const usPerSec = 1e6

// TraceEvents converts the recorded spans into Chrome trace events.
// Events are ordered by timestamp (metadata first), which keeps the
// output deterministic and importers happy.
func (r *Recorder) TraceEvents() []TraceEvent {
	var out []TraceEvent
	cores := r.cores()
	for _, c := range cores {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)},
		})
		out = append(out, TraceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: c,
			Args: map[string]any{"sort_index": c},
		})
	}

	var spans []TraceEvent
	counterTimes := map[int][]TraceEvent{} // per core, freq samples
	r.forEach(func(s Span) {
		ev := TraceEvent{
			Name: s.Label,
			Ph:   "X",
			Ts:   s.Start * usPerSec,
			Dur:  (s.End - s.Start) * usPerSec,
			Pid:  0,
			Tid:  s.Core,
			Cat:  s.Kind.String(),
		}
		if s.Kind == KindExec {
			ev.Args = map[string]any{"level": s.Level}
			counterTimes[s.Core] = append(counterTimes[s.Core], TraceEvent{
				Name: fmt.Sprintf("freq level core %d", s.Core),
				Ph:   "C", Ts: s.Start * usPerSec, Pid: 0, Tid: s.Core,
				Args: map[string]any{"level": s.Level},
			})
		}
		spans = append(spans, ev)
	})
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Ts < spans[j].Ts })
	out = append(out, spans...)

	// Counter tracks: chronological per core, deduplicated to level
	// changes, closed with a final sample at the makespan.
	makespanUS := r.Makespan() * usPerSec
	for _, c := range cores {
		samples := counterTimes[c]
		if len(samples) == 0 {
			continue
		}
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].Ts < samples[j].Ts })
		last := -1
		for _, s := range samples {
			lvl := s.Args["level"].(int)
			if lvl == last {
				continue
			}
			last = lvl
			out = append(out, s)
		}
		out = append(out, TraceEvent{
			Name: fmt.Sprintf("freq level core %d", c),
			Ph:   "C", Ts: makespanUS, Pid: 0, Tid: c,
			Args: map[string]any{"level": last},
		})
	}
	return out
}

// WriteTraceEvents writes the spans as a Chrome trace-event JSON file
// that Perfetto and chrome://tracing can open directly.
func (r *Recorder) WriteTraceEvents(w io.Writer) error {
	f := TraceFile{TraceEvents: r.TraceEvents(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
