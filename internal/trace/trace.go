// Package trace records per-core execution spans from a simulation and
// renders them as an ASCII Gantt chart or CSV — the visual counterpart
// of the paper's schedule diagrams (Fig. 1) for arbitrary runs.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind classifies a span: task execution, steal/search overhead, or
// terminal idle time before the batch barrier.
type Kind int

const (
	// KindExec is a task execution (the only kind before the recorder
	// grew steal/idle capture; the zero value keeps old spans valid).
	KindExec Kind = iota
	// KindSteal is work-search overhead: the probe/steal lead-in before
	// a remotely acquired task starts executing.
	KindSteal
	// KindIdle is the terminal wait at the batch barrier after a core
	// has exhausted every pool it may take from.
	KindIdle
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindExec:
		return "exec"
	case KindSteal:
		return "steal"
	case KindIdle:
		return "idle"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Span is one interval on one core.
type Span struct {
	Core       int
	Start, End float64 // simulated seconds
	Label      string  // task class (exec), or "steal"/"idle"
	Level      int     // frequency level during the span
	Kind       Kind
}

// Recorder accumulates spans. It satisfies the sched.Recorder hook (and
// the extended sched.SpanRecorder hook, so the engine also hands it
// steal and idle intervals). The zero value is ready to use and retains
// every span; set MaxSpans before recording to bound memory.
type Recorder struct {
	// MaxSpans, when > 0, caps the retained spans. Once the cap is
	// reached each new span evicts the oldest (drop-oldest), so a
	// long-running recording keeps the most recent window at a fixed
	// ~56 bytes per span; evictions are counted in Dropped. 0 keeps
	// everything (the historical behavior).
	MaxSpans int

	spans   []Span
	head    int // ring start once the cap is reached
	dropped uint64
}

// add appends a span, evicting the oldest when the cap is reached.
func (r *Recorder) add(s Span) {
	if r.MaxSpans > 0 && len(r.spans) >= r.MaxSpans {
		r.spans[r.head] = s
		r.head = (r.head + 1) % len(r.spans)
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// forEach visits every retained span in recording (chronological)
// order.
func (r *Recorder) forEach(fn func(Span)) {
	for i := r.head; i < len(r.spans); i++ {
		fn(r.spans[i])
	}
	for i := 0; i < r.head; i++ {
		fn(r.spans[i])
	}
}

// Len returns the number of retained spans.
func (r *Recorder) Len() int { return len(r.spans) }

// Dropped returns how many spans the MaxSpans cap has evicted.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// All returns the retained spans in recording order (a copy).
func (r *Recorder) All() []Span {
	out := make([]Span, 0, len(r.spans))
	r.forEach(func(s Span) { out = append(out, s) })
	return out
}

// Record implements the scheduler's trace hook: one task execution.
func (r *Recorder) Record(core int, start, end float64, label string, level int) {
	r.add(Span{Core: core, Start: start, End: end, Label: label, Level: level, Kind: KindExec})
}

// RecordSteal implements sched.SpanRecorder: the probe/steal lead-in
// interval before a stolen task runs. label carries the victim c-group.
func (r *Recorder) RecordSteal(core int, start, end float64, victimGroup int) {
	r.add(Span{Core: core, Start: start, End: end, Label: "steal", Level: victimGroup, Kind: KindSteal})
}

// RecordIdle implements sched.SpanRecorder: the terminal wait at the
// batch barrier.
func (r *Recorder) RecordIdle(core int, start, end float64) {
	r.add(Span{Core: core, Start: start, End: end, Label: "idle", Kind: KindIdle})
}

// ExecSpans returns only the task-execution spans.
func (r *Recorder) ExecSpans() []Span {
	out := make([]Span, 0, len(r.spans))
	r.forEach(func(s Span) {
		if s.Kind == KindExec {
			out = append(out, s)
		}
	})
	return out
}

// Makespan returns the latest span end (0 when empty).
func (r *Recorder) Makespan() float64 {
	m := 0.0
	r.forEach(func(s Span) {
		if s.End > m {
			m = s.End
		}
	})
	return m
}

// cores returns the sorted distinct core IDs seen.
func (r *Recorder) cores() []int {
	seen := map[int]bool{}
	r.forEach(func(s Span) { seen[s.Core] = true })
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// levelGlyphs maps frequency levels to bar glyphs: faster = denser.
var levelGlyphs = []byte{'#', '=', '-', '.', ':', '~', '_', '\''}

// Gantt renders one row per core, `width` characters across the full
// makespan. Busy time is drawn with a glyph encoding the frequency
// level ('#' fastest, then '=', '-', '.'); idle time is blank.
func (r *Recorder) Gantt(width int) string {
	exec := r.ExecSpans()
	if len(exec) == 0 || width <= 0 {
		return "(no spans)\n"
	}
	makespan := r.Makespan()
	if makespan <= 0 {
		return "(zero-length trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt: %d spans over %.4fs ('#'=F0, '='=F1, '-'=F2, '.'=F3)\n", len(exec), makespan)
	for _, c := range r.cores() {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range exec {
			if s.Core != c {
				continue
			}
			lo := int(s.Start / makespan * float64(width))
			hi := int(s.End / makespan * float64(width))
			if hi >= width {
				hi = width - 1
			}
			glyph := levelGlyphs[s.Level%len(levelGlyphs)]
			for i := lo; i <= hi; i++ {
				row[i] = glyph
			}
		}
		fmt.Fprintf(&b, "core %2d |%s|\n", c, row)
	}
	return b.String()
}

// CSV writes every span (all kinds) as core,start,end,label,level,kind
// rows.
func (r *Recorder) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "core,start,end,label,level,kind"); err != nil {
		return err
	}
	var werr error
	r.forEach(func(s Span) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(w, "%d,%.9f,%.9f,%s,%d,%s\n", s.Core, s.Start, s.End, s.Label, s.Level, s.Kind)
	})
	return werr
}

// BusyTime returns the summed execution-span durations per core (steal
// and idle intervals are excluded).
func (r *Recorder) BusyTime() map[int]float64 {
	out := map[int]float64{}
	r.forEach(func(s Span) {
		if s.Kind == KindExec {
			out[s.Core] += s.End - s.Start
		}
	})
	return out
}

// ClassTime returns the summed execution-span durations per task class.
func (r *Recorder) ClassTime() map[string]float64 {
	out := map[string]float64{}
	r.forEach(func(s Span) {
		if s.Kind == KindExec {
			out[s.Label] += s.End - s.Start
		}
	})
	return out
}

// WriteTable renders a generic aligned text table (helper shared by the
// CLIs).
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
