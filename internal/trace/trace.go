// Package trace records per-core execution spans from a simulation and
// renders them as an ASCII Gantt chart or CSV — the visual counterpart
// of the paper's schedule diagrams (Fig. 1) for arbitrary runs.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Span is one task execution on one core.
type Span struct {
	Core       int
	Start, End float64 // simulated seconds
	Label      string  // task class
	Level      int     // frequency level while executing
}

// Recorder accumulates spans. It satisfies the sched.Recorder hook.
// The zero value is ready to use.
type Recorder struct {
	Spans []Span
}

// Record implements the scheduler's trace hook.
func (r *Recorder) Record(core int, start, end float64, label string, level int) {
	r.Spans = append(r.Spans, Span{Core: core, Start: start, End: end, Label: label, Level: level})
}

// Makespan returns the latest span end (0 when empty).
func (r *Recorder) Makespan() float64 {
	m := 0.0
	for _, s := range r.Spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// cores returns the sorted distinct core IDs seen.
func (r *Recorder) cores() []int {
	seen := map[int]bool{}
	for _, s := range r.Spans {
		seen[s.Core] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// levelGlyphs maps frequency levels to bar glyphs: faster = denser.
var levelGlyphs = []byte{'#', '=', '-', '.', ':', '~', '_', '\''}

// Gantt renders one row per core, `width` characters across the full
// makespan. Busy time is drawn with a glyph encoding the frequency
// level ('#' fastest, then '=', '-', '.'); idle time is blank.
func (r *Recorder) Gantt(width int) string {
	if len(r.Spans) == 0 || width <= 0 {
		return "(no spans)\n"
	}
	makespan := r.Makespan()
	if makespan <= 0 {
		return "(zero-length trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt: %d spans over %.4fs ('#'=F0, '='=F1, '-'=F2, '.'=F3)\n", len(r.Spans), makespan)
	for _, c := range r.cores() {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range r.Spans {
			if s.Core != c {
				continue
			}
			lo := int(s.Start / makespan * float64(width))
			hi := int(s.End / makespan * float64(width))
			if hi >= width {
				hi = width - 1
			}
			glyph := levelGlyphs[s.Level%len(levelGlyphs)]
			for i := lo; i <= hi; i++ {
				row[i] = glyph
			}
		}
		fmt.Fprintf(&b, "core %2d |%s|\n", c, row)
	}
	return b.String()
}

// CSV writes the spans as core,start,end,label,level rows.
func (r *Recorder) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "core,start,end,label,level"); err != nil {
		return err
	}
	for _, s := range r.Spans {
		if _, err := fmt.Fprintf(w, "%d,%.9f,%.9f,%s,%d\n", s.Core, s.Start, s.End, s.Label, s.Level); err != nil {
			return err
		}
	}
	return nil
}

// BusyTime returns the summed span durations per core.
func (r *Recorder) BusyTime() map[int]float64 {
	out := map[int]float64{}
	for _, s := range r.Spans {
		out[s.Core] += s.End - s.Start
	}
	return out
}

// ClassTime returns the summed span durations per task class.
func (r *Recorder) ClassTime() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Spans {
		out[s.Label] += s.End - s.Start
	}
	return out
}

// WriteTable renders a generic aligned text table (helper shared by the
// CLIs).
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
