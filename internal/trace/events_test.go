package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceEventsEmptyRecorder(t *testing.T) {
	r := &Recorder{}
	if evs := r.TraceEvents(); len(evs) != 0 {
		t.Errorf("empty recorder produced %d events, want 0", len(evs))
	}
	var buf bytes.Buffer
	if err := r.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	// The file must still be a valid trace: traceEvents must be an
	// empty array, not null, or importers reject it.
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace file = %s", buf.String())
	}
	var f TraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("empty trace file does not parse: %v", err)
	}
}

// TestTraceEventsOverlapping checks that overlapping spans on one core
// (an exec span with its steal lead-in and a bracketing idle wait) all
// survive conversion with the right categories and timestamps in
// microseconds, sorted by start time.
func TestTraceEventsOverlapping(t *testing.T) {
	r := &Recorder{}
	r.RecordIdle(0, 0, 2e-6)
	r.RecordSteal(0, 1e-6, 2e-6, 3)
	r.Record(0, 2e-6, 5e-6, "a", 1)
	evs := r.TraceEvents()

	var meta, spans []TraceEvent
	counters := 0
	for _, ev := range evs {
		switch ev.Ph {
		case "M":
			meta = append(meta, ev)
		case "X":
			spans = append(spans, ev)
		case "C":
			counters++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if len(meta) != 2 {
		t.Errorf("got %d metadata events for one core, want 2 (name + sort index)", len(meta))
	}
	if len(spans) != 3 {
		t.Fatalf("got %d X events, want 3", len(spans))
	}
	// Sorted by Ts: idle(0) then steal(1us) then exec(2us).
	wantCat := []string{"idle", "steal", "exec"}
	wantTs := []float64{0, 1, 2}
	for i, ev := range spans {
		if ev.Cat != wantCat[i] {
			t.Errorf("span %d cat = %q, want %q", i, ev.Cat, wantCat[i])
		}
		if ev.Ts != wantTs[i] {
			t.Errorf("span %d ts = %g us, want %g", i, ev.Ts, wantTs[i])
		}
		if ev.Tid != 0 {
			t.Errorf("span %d tid = %d, want 0", i, ev.Tid)
		}
	}
	if d := spans[2].Dur; d < 3-1e-9 || d > 3+1e-9 {
		t.Errorf("exec dur = %g us, want 3", d)
	}
	// One exec level → one counter sample plus the closing makespan
	// sample.
	if counters != 2 {
		t.Errorf("got %d counter events, want 2", counters)
	}
}

func TestCSVSingleSpan(t *testing.T) {
	r := &Recorder{}
	r.Record(2, 0.5, 1.5, "solo", 3)
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 span:\n%s", len(lines), buf.String())
	}
	if lines[1] != "2,0.500000000,1.500000000,solo,3,exec" {
		t.Errorf("span row = %q", lines[1])
	}
}

// TestTraceEventsRoundTrip writes a mixed recorder as trace-event JSON
// and reads it back, checking the document structure Perfetto relies
// on survives encoding.
func TestTraceEventsRoundTrip(t *testing.T) {
	r := &Recorder{}
	r.Record(0, 0, 1e-3, "a", 0)
	r.Record(1, 0, 2e-3, "b", 2)
	r.RecordSteal(1, 2e-3, 2.1e-3, 0)
	r.Record(1, 2.1e-3, 3e-3, "a", 2)
	r.RecordIdle(0, 1e-3, 3e-3)

	var buf bytes.Buffer
	if err := r.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var f TraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != len(r.TraceEvents()) {
		t.Errorf("round trip lost events: %d != %d", len(f.TraceEvents), len(r.TraceEvents()))
	}
	names := map[string]bool{}
	execs := 0
	for _, ev := range f.TraceEvents {
		names[ev.Name] = true
		if ev.Ph == "X" && ev.Cat == "exec" {
			execs++
			lvl, ok := ev.Args["level"]
			if !ok {
				t.Errorf("exec event %q lost its level arg", ev.Name)
			} else if _, isNum := lvl.(float64); !isNum {
				t.Errorf("level arg decoded as %T, want number", lvl)
			}
		}
	}
	if execs != 3 {
		t.Errorf("round trip has %d exec events, want 3", execs)
	}
	for _, want := range []string{"thread_name", "freq level core 0", "freq level core 1", "steal", "idle", "a", "b"} {
		if !names[want] {
			t.Errorf("round trip missing event name %q", want)
		}
	}
}
