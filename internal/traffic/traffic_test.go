package traffic

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
)

// testSpec is a small two-cohort spec covering all three arrival
// kinds' parameters: an interactive cohort with tight deadlines and a
// batch cohort with heavy hinted work.
func testSpec() Spec {
	return Spec{
		Name:      "test",
		DurationS: 3,
		Seed:      42,
		Cohorts: []Cohort{
			{
				Tenant:  "interactive",
				Arrival: Arrival{Kind: ArrivalPoisson, RateJPS: 40},
				Mix: []ClassMix{
					{Class: "sha1", Weight: 3, Count: 2, SizeBytes: 1024},
					{Class: "md5", Weight: 1, Count: 1, SizeBytes: 2048},
				},
				DeadlineMeanS:   0.5,
				DeadlineStddevS: 0.1,
			},
			{
				Tenant: "batch",
				Arrival: Arrival{
					Kind: ArrivalDiurnal, RateJPS: 20,
					Periods: []Period{{PeriodS: 2, Amp: 0.8}, {PeriodS: 0.5, Amp: 0.3, Phase: 1}},
				},
				Mix: []ClassMix{
					{Class: "lzw", Weight: 1, Count: 4, SizeBytes: 4096,
						MeanWorkS: 200e-6, StddevWorkS: 100e-6},
				},
			},
		},
	}
}

func mustGenerate(t *testing.T, spec Spec) *Trace {
	t.Helper()
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGenerateDeterministic(t *testing.T) {
	a := encode(t, mustGenerate(t, testSpec()))
	b := encode(t, mustGenerate(t, testSpec()))
	if !bytes.Equal(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
}

// TestGenerateParallelDeterminism: the trace is identical for every
// cohort-generation worker count — the -j discipline.
func TestGenerateParallelDeterminism(t *testing.T) {
	spec := testSpec()
	ref, err := GenerateWith(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := encode(t, ref)
	for _, j := range []int{2, 4, 8} {
		tr, err := GenerateWith(spec, j)
		if err != nil {
			t.Fatal(err)
		}
		if got := encode(t, tr); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d produced a different trace than workers=1", j)
		}
	}
}

// TestCohortIndependence: adding a tenant leaves every other cohort's
// event stream bit-identical, and reordering cohorts changes nothing.
func TestCohortIndependence(t *testing.T) {
	base := testSpec()
	ref := mustGenerate(t, base)

	grown := testSpec()
	grown.Cohorts = append([]Cohort{{
		Tenant:  "newcomer",
		Arrival: Arrival{Kind: ArrivalBursty, RateJPS: 15, BurstFactor: 5, MeanBurstS: 0.2, MeanCalmS: 0.8},
		Mix:     []ClassMix{{Class: "md5", Weight: 1}},
	}}, grown.Cohorts...) // prepended, so positions shift too
	tr2 := mustGenerate(t, grown)

	byTenant := func(tr *Trace, tenant string) []Event {
		var out []Event
		for _, ev := range tr.Events {
			if ev.Tenant == tenant {
				out = append(out, ev)
			}
		}
		return out
	}
	for _, tenant := range []string{"interactive", "batch"} {
		a, b := byTenant(ref, tenant), byTenant(tr2, tenant)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("cohort %q stream changed when a tenant was added (%d vs %d events)",
				tenant, len(a), len(b))
		}
	}
	if n := len(byTenant(tr2, "newcomer")); n == 0 {
		t.Error("newcomer cohort generated no events")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	first := encode(t, tr)
	dec, err := Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatal("decoded trace differs from the generated one")
	}
	if second := encode(t, dec); !bytes.Equal(first, second) {
		t.Fatal("re-encoding the decoded trace changed its bytes")
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte(`{"schema_version":99,"duration_s":1,"events":[]}`))); err == nil {
		t.Fatal("want error for unknown schema version")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []Trace{
		{SchemaVersion: SchemaVersion, DurationS: 0},
		{SchemaVersion: SchemaVersion, DurationS: 1,
			Events: []Event{{OffsetS: 2, Class: "sha1", Count: 1}}},
		{SchemaVersion: SchemaVersion, DurationS: 1,
			Events: []Event{{OffsetS: 0.5, Class: "sha1", Count: 1}, {OffsetS: 0.1, Class: "sha1", Count: 1}}},
		{SchemaVersion: SchemaVersion, DurationS: 1,
			Events: []Event{{OffsetS: 0.5, Class: "", Count: 1}}},
		{SchemaVersion: SchemaVersion, DurationS: 1,
			Events: []Event{{OffsetS: 0.5, Class: "sha1", Count: 0}}},
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

// TestGeneratedWorkHintsPositive: the NormPos discipline — no
// generated trace ever carries a zero or negative work hint, even with
// a stddev that dwarfs the mean.
func TestGeneratedWorkHintsPositive(t *testing.T) {
	spec := Spec{
		Name: "hints", DurationS: 5, Seed: 7,
		Cohorts: []Cohort{{
			Tenant:  "t",
			Arrival: Arrival{Kind: ArrivalPoisson, RateJPS: 200},
			Mix: []ClassMix{{Class: "sha1", Weight: 1,
				MeanWorkS: 1e-6, StddevWorkS: 1e-3}}, // stddev ≫ mean
			DeadlineMeanS: 1e-6, DeadlineStddevS: 1, // likewise for deadlines
		}},
	}
	tr := mustGenerate(t, spec)
	if len(tr.Events) == 0 {
		t.Fatal("no events")
	}
	for i, ev := range tr.Events {
		if ev.WorkHintS <= 0 {
			t.Fatalf("event %d has non-positive work hint %g", i, ev.WorkHintS)
		}
		if ev.DeadlineMS < 1 {
			t.Fatalf("event %d has deadline %d < 1ms", i, ev.DeadlineMS)
		}
	}
}

func TestReplaySimDeterministic(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	opt := SimReplay{Cores: 4, Seed: 3}
	lg1, res1, err := ReplaySim(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	lg2, res2, err := ReplaySim(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := lg1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := lg2.Canonical()
	if !bytes.Equal(c1, c2) {
		t.Fatalf("sim replay logs differ:\n%s\nvs\n%s", c1, c2)
	}
	// Modeled roll-ups are bit-exact, not merely close.
	if math.Float64bits(res1.Energy) != math.Float64bits(res2.Energy) {
		t.Errorf("energy not bit-identical: %v vs %v", res1.Energy, res2.Energy)
	}
	if math.Float64bits(res1.Makespan) != math.Float64bits(res2.Makespan) {
		t.Errorf("makespan not bit-identical: %v vs %v", res1.Makespan, res2.Makespan)
	}
	if lg1.EnergyJ <= 0 || lg1.Batches == 0 {
		t.Errorf("implausible sim log: %+v", lg1)
	}
}

func serveReplayOpt() ServeReplay {
	return ServeReplay{
		Config: serve.Config{
			Workers: 2,
			Machine: machine.Generic(2),
			Policy:  "eewa",
			Seed:    7,
			Obs:     obs.NewRegistry(),
		},
		FlushEveryS: 0.025,
	}
}

// TestReplayServeDeterministic is the acceptance gate: the same trace
// replayed twice through the real serve pipeline produces identical
// per-tenant outcome counts and batch composition (Canonical bytes).
func TestReplayServeDeterministic(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	lg1, err := ReplayServe(tr, serveReplayOpt())
	if err != nil {
		t.Fatal(err)
	}
	lg2, err := ReplayServe(tr, serveReplayOpt())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := lg1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := lg2.Canonical()
	if !bytes.Equal(c1, c2) {
		t.Fatalf("serve replay logs differ:\n%s\nvs\n%s", c1, c2)
	}

	// Outcome conservation: every event resolved to exactly one status.
	perTenant := map[string]int{}
	for _, ev := range tr.Events {
		perTenant[ev.Tenant]++
	}
	for tenant, want := range perTenant {
		tc := lg1.Tenants[tenant]
		if tc == nil {
			t.Fatalf("tenant %q missing from log", tenant)
		}
		got := tc.OK + tc.Rejected + tc.Unavailable + tc.Invalid + tc.Dropped
		if got != uint64(want) {
			t.Errorf("tenant %q: %d outcomes for %d events (%+v)", tenant, got, want, *tc)
		}
	}
	if lg1.MeasuredEnergyJ <= 0 {
		t.Errorf("no measured energy: %+v", lg1)
	}
}

// TestReplayServeMatchesSimOutcomes: with no admission pressure, the
// serve pipeline's queued-deadline drops agree with the sim replay's
// model of them — same per-tenant 200/504 split, same batch count.
func TestReplayServeMatchesSimOutcomes(t *testing.T) {
	spec := testSpec()
	// Tighten interactive deadlines below the flush interval so a
	// deterministic subset drops.
	spec.Cohorts[0].DeadlineMeanS = 0.02
	spec.Cohorts[0].DeadlineStddevS = 0.01
	tr := mustGenerate(t, spec)

	sv, err := ReplayServe(tr, serveReplayOpt())
	if err != nil {
		t.Fatal(err)
	}
	sm, _, err := ReplaySim(tr, SimReplay{Cores: 2, FlushEveryS: 0.025})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for tenant, tc := range sv.Tenants {
		st := sm.Tenants[tenant]
		if st == nil {
			t.Fatalf("tenant %q missing from sim log", tenant)
		}
		if tc.OK != st.OK || tc.Dropped != st.Dropped {
			t.Errorf("tenant %q: serve ok/drop %d/%d vs sim %d/%d",
				tenant, tc.OK, tc.Dropped, st.OK, st.Dropped)
		}
		drops += int(tc.Dropped)
	}
	if drops == 0 {
		t.Error("expected some deadline drops with 20ms deadlines and a 25ms flush")
	}
	if sv.Batches != sm.Batches {
		t.Errorf("batch counts disagree: serve %d vs sim %d", sv.Batches, sm.Batches)
	}
}

// TestGoldenTrace pins the generated bytes of the golden fixture: the
// trace schema, the generators and the RNG streams cannot drift
// without an explicit fixture update.
func TestGoldenTrace(t *testing.T) {
	tr := mustGenerate(t, GoldenSpec())
	got := encode(t, tr)
	path := filepath.Join("testdata", "golden.json")
	if os.Getenv("EEWA_REGEN_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skipf("regenerated %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate with EEWA_REGEN_GOLDEN=1 go test ./internal/traffic -run TestGoldenTrace): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("generated golden trace diverged from %s; if the change is intended, regenerate the fixture", path)
	}
}

func TestCaptureRecordsSubmissions(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Config{
		Workers: 2, Machine: machine.Generic(2), Policy: "eewa", Seed: 7, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cap := NewCapture(srv.Handler())

	tr := mustGenerate(t, testSpec())
	small := &Trace{SchemaVersion: SchemaVersion, Name: "small", DurationS: tr.DurationS}
	for _, ev := range tr.Events {
		ev.DeadlineMS = 0 // keep wall replay outcome-independent
		small.Events = append(small.Events, ev)
		if len(small.Events) == 12 {
			break
		}
	}
	st, err := ReplayWall(t.Context(), cap, small, 100 /* compress 3s to 30ms */)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 12 {
		t.Fatalf("submitted %d, want 12", st.Submitted)
	}
	if cap.Len() != 12 {
		t.Fatalf("captured %d events, want 12", cap.Len())
	}
	rec := cap.Trace("captured")
	if err := rec.Validate(); err != nil {
		t.Fatalf("captured trace invalid: %v", err)
	}
	// The capture must preserve each event's identity (class, count,
	// tenant multiset) even though offsets are re-measured.
	count := func(evs []Event) map[string]int {
		m := map[string]int{}
		for _, ev := range evs {
			m[fmt.Sprintf("%s/%s/%d", ev.Tenant, ev.Class, ev.Count)]++
		}
		return m
	}
	if !reflect.DeepEqual(count(small.Events), count(rec.Events)) {
		t.Errorf("captured identity multiset differs:\n%v\nvs\n%v",
			count(small.Events), count(rec.Events))
	}
	drain := func() {
		ctx := t.Context()
		if err := srv.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	drain()
}
