// Package traffic is the production traffic layer for the serve tier
// and the simulator: open-loop arrival generation (Poisson, bursty
// MMPP, diurnal multi-period envelopes) over per-tenant cohorts, a
// versioned JSON trace schema, and bit-exact trace replay.
//
// The design splits load realism from determinism:
//
//   - Generation is open-loop: arrivals are a function of the trace
//     spec and seed alone, never of service completions — the regime
//     where 429/504 knees are honest (a closed-loop driver throttles
//     itself exactly when the system saturates). Every cohort draws
//     from its own stream seeded via xrand.Split(seed, hash(tenant)),
//     so adding a tenant never perturbs another tenant's arrivals —
//     the same discipline the sweep driver uses for grid cells.
//   - Replay is bit-exact where the engine allows it: ReplaySim is
//     fully deterministic (outcomes, energy, makespan), and
//     ReplayServe runs the real admission/batching pipeline under a
//     virtual clock in lockstep, making per-tenant outcome counts
//     (200/429/504) and batch composition a function of the trace
//     alone. ReplayWall trades that determinism back for wall-clock
//     load fidelity — it is the mode density sweeps use.
//
// A trace is a flat, offset-sorted event list. Offsets are seconds
// from trace start; deadlines are relative milliseconds (replay
// converts them to absolute deadlines against its own clock). The
// schema is versioned so capture artifacts stay replayable: readers
// reject versions they do not understand instead of misreading them.
package traffic

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the trace schema version. Bump it when a field
// changes meaning; Decode rejects versions it does not understand.
const SchemaVersion = 1

// Event is one job arrival.
type Event struct {
	// OffsetS is the arrival time in seconds from trace start. Events
	// in a trace are sorted by offset.
	OffsetS float64 `json:"offset_s"`
	// Tenant scopes the admission queue (the cohort identity).
	Tenant string `json:"tenant"`
	// Class is the task class — for serve replay, a servable kernel
	// name; for sim replay, any class label.
	Class string `json:"class"`
	// Count is the number of tasks in the job.
	Count int `json:"count"`
	// SizeBytes is the per-task corpus size (serve replay; 0 = server
	// default).
	SizeBytes int `json:"size_bytes,omitempty"`
	// Seed makes the job's corpus deterministic.
	Seed uint64 `json:"seed"`
	// WorkHintS is the per-task workload hint in seconds at F0. The
	// generator samples it with xrand.NormPos, so it is always
	// strictly positive in generated traces; replay falls back to a
	// default for hint-less (live-captured) events rather than ever
	// emitting a zero-work task.
	WorkHintS float64 `json:"work_hint_s,omitempty"`
	// DeadlineMS, when > 0, bounds the job's latency relative to its
	// arrival: offset + deadline is the absolute expiry in trace time.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Trace is the versioned artifact: a named, offset-sorted event list.
type Trace struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	// Seed records the generator seed (0 for captured traces).
	Seed uint64 `json:"seed,omitempty"`
	// DurationS is the trace horizon in seconds; every offset is
	// within [0, DurationS].
	DurationS float64 `json:"duration_s"`
	Events    []Event `json:"events"`
}

// Validate checks the trace is well-formed: a known schema version, a
// positive horizon, offsets sorted and in range, and every event with
// a class, a positive count and non-negative hints.
func (t *Trace) Validate() error {
	if t.SchemaVersion != SchemaVersion {
		return fmt.Errorf("traffic: trace schema version %d, want %d", t.SchemaVersion, SchemaVersion)
	}
	if t.DurationS <= 0 {
		return fmt.Errorf("traffic: trace %q has non-positive duration %g", t.Name, t.DurationS)
	}
	prev := 0.0
	for i := range t.Events {
		ev := &t.Events[i]
		switch {
		case ev.OffsetS < 0 || ev.OffsetS > t.DurationS:
			return fmt.Errorf("traffic: event %d offset %g outside [0, %g]", i, ev.OffsetS, t.DurationS)
		case ev.OffsetS < prev:
			return fmt.Errorf("traffic: event %d offset %g before predecessor %g (events must be sorted)", i, ev.OffsetS, prev)
		case ev.Class == "":
			return fmt.Errorf("traffic: event %d has empty class", i)
		case ev.Count <= 0:
			return fmt.Errorf("traffic: event %d has non-positive count %d", i, ev.Count)
		case ev.SizeBytes < 0:
			return fmt.Errorf("traffic: event %d has negative size_bytes %d", i, ev.SizeBytes)
		case ev.WorkHintS < 0:
			return fmt.Errorf("traffic: event %d has negative work hint %g", i, ev.WorkHintS)
		case ev.DeadlineMS < 0:
			return fmt.Errorf("traffic: event %d has negative deadline %d", i, ev.DeadlineMS)
		}
		prev = ev.OffsetS
	}
	return nil
}

// TotalTasks returns the summed task count across events.
func (t *Trace) TotalTasks() int {
	n := 0
	for i := range t.Events {
		n += t.Events[i].Count
	}
	return n
}

// Encode writes the trace as indented JSON with a trailing newline.
// The encoding is deterministic (struct fields in declaration order,
// shortest float representation), so the same trace always produces
// the same bytes — the property the golden-fixture gate relies on.
func Encode(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("traffic: encoding trace: %w", err)
	}
	return nil
}

// Decode parses and validates a trace, rejecting unknown schema
// versions and malformed events.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("traffic: decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
