package traffic

// GoldenSpec is the checked-in fixture spec: a 5-second diurnal trace
// with three cohorts exercising all three arrival kinds, tight and
// loose deadlines, and hinted work. The golden test pins its generated
// bytes; `make traffic-smoke` replays it through serve and checks
// conservation and determinism. Change it only together with the
// fixture (eewa-traffic generate -golden).
func GoldenSpec() Spec {
	return Spec{
		Name:      "golden-diurnal-5s",
		DurationS: 5,
		Seed:      20260808,
		Cohorts: []Cohort{
			{
				Tenant: "interactive",
				Arrival: Arrival{
					Kind: ArrivalDiurnal, RateJPS: 24,
					Periods: []Period{
						{PeriodS: 5, Amp: 0.6},               // the "day"
						{PeriodS: 1.25, Amp: 0.25, Phase: 1}, // intraday wave
					},
				},
				Mix: []ClassMix{
					{Class: "sha1", Weight: 3, Count: 2, SizeBytes: 1024},
					{Class: "md5", Weight: 1, Count: 1, SizeBytes: 2048},
				},
				DeadlineMeanS:   0.25,
				DeadlineStddevS: 0.08,
			},
			{
				Tenant: "bursty",
				Arrival: Arrival{
					Kind: ArrivalBursty, RateJPS: 8,
					BurstFactor: 6, MeanBurstS: 0.3, MeanCalmS: 1.2,
				},
				Mix: []ClassMix{
					{Class: "lzw", Weight: 2, Count: 3, SizeBytes: 4096,
						MeanWorkS: 150e-6, StddevWorkS: 75e-6},
					{Class: "bwc", Weight: 1, Count: 1, SizeBytes: 8192,
						MeanWorkS: 400e-6, StddevWorkS: 200e-6},
				},
				DeadlineMeanS:   1.5,
				DeadlineStddevS: 0.5,
			},
			{
				Tenant:  "batch",
				Arrival: Arrival{Kind: ArrivalPoisson, RateJPS: 6},
				Mix: []ClassMix{
					{Class: "dmc", Weight: 1, Count: 4, SizeBytes: 4096,
						MeanWorkS: 1e-3, StddevWorkS: 400e-6},
				},
			},
		},
	}
}
