package traffic

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/xrand"
)

// Arrival-process identifiers for Arrival.Kind.
const (
	// ArrivalPoisson is a homogeneous Poisson process at RateJPS.
	ArrivalPoisson = "poisson"
	// ArrivalBursty is a two-state Markov-modulated Poisson process:
	// calm periods at RateJPS, burst periods at RateJPS×BurstFactor,
	// with exponential state holding times.
	ArrivalBursty = "bursty"
	// ArrivalDiurnal is a non-homogeneous Poisson process whose rate
	// follows a multi-period envelope:
	//
	//	rate(t) = RateJPS · max(0, 1 + Σᵢ Ampᵢ·sin(2π·t/Periodᵢ + Phaseᵢ))
	//
	// sampled by thinning. One long period models the diurnal cycle;
	// additional shorter periods model intraday waves.
	ArrivalDiurnal = "diurnal"
)

// Period is one sinusoidal component of a diurnal rate envelope.
type Period struct {
	PeriodS float64 `json:"period_s"`
	// Amp is the relative amplitude (0.5 swings the rate ±50%).
	Amp   float64 `json:"amp"`
	Phase float64 `json:"phase,omitempty"` // radians
}

// Arrival describes a cohort's arrival process.
type Arrival struct {
	Kind string `json:"kind"`
	// RateJPS is the base job arrival rate (jobs per second).
	RateJPS float64 `json:"rate_jps"`
	// Bursty parameters (ArrivalBursty).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	MeanBurstS  float64 `json:"mean_burst_s,omitempty"`
	MeanCalmS   float64 `json:"mean_calm_s,omitempty"`
	// Periods is the diurnal envelope (ArrivalDiurnal).
	Periods []Period `json:"periods,omitempty"`
}

func (a *Arrival) validate() error {
	if a.RateJPS <= 0 {
		return fmt.Errorf("rate_jps must be positive, got %g", a.RateJPS)
	}
	switch a.Kind {
	case ArrivalPoisson:
	case ArrivalBursty:
		if a.BurstFactor <= 1 {
			return fmt.Errorf("bursty needs burst_factor > 1, got %g", a.BurstFactor)
		}
		if a.MeanBurstS <= 0 || a.MeanCalmS <= 0 {
			return fmt.Errorf("bursty needs positive mean_burst_s and mean_calm_s")
		}
	case ArrivalDiurnal:
		if len(a.Periods) == 0 {
			return fmt.Errorf("diurnal needs at least one period")
		}
		for _, p := range a.Periods {
			if p.PeriodS <= 0 {
				return fmt.Errorf("diurnal period must be positive, got %g", p.PeriodS)
			}
			if p.Amp < 0 {
				return fmt.Errorf("diurnal amplitude must be non-negative, got %g", p.Amp)
			}
		}
	default:
		return fmt.Errorf("unknown arrival kind %q (want %s, %s or %s)",
			a.Kind, ArrivalPoisson, ArrivalBursty, ArrivalDiurnal)
	}
	return nil
}

// ClassMix is one task class inside a cohort's job mix.
type ClassMix struct {
	Class  string  `json:"class"`
	Weight float64 `json:"weight"` // relative pick probability
	// Count is the tasks per job of this class (default 1).
	Count     int `json:"count,omitempty"`
	SizeBytes int `json:"size_bytes,omitempty"`
	// MeanWorkS/StddevWorkS parameterize the per-task work hint,
	// sampled with xrand.NormPos so it is always strictly positive.
	// Zero mean means no hint.
	MeanWorkS   float64 `json:"mean_work_s,omitempty"`
	StddevWorkS float64 `json:"stddev_work_s,omitempty"`
}

// Cohort is one tenant's traffic: an arrival process, a class mix and
// a deadline distribution. Each cohort samples from an independent
// stream derived from the spec seed and the tenant name, so cohorts
// can be added, removed or reordered without perturbing each other.
type Cohort struct {
	Tenant  string     `json:"tenant"`
	Arrival Arrival    `json:"arrival"`
	Mix     []ClassMix `json:"mix"`
	// DeadlineMeanS/DeadlineStddevS parameterize per-job deadlines
	// (NormPos-sampled, floored at 1 ms). Zero mean means no deadlines.
	DeadlineMeanS   float64 `json:"deadline_mean_s,omitempty"`
	DeadlineStddevS float64 `json:"deadline_stddev_s,omitempty"`
}

func (c *Cohort) validate() error {
	if c.Tenant == "" {
		return fmt.Errorf("traffic: cohort with empty tenant")
	}
	if err := c.Arrival.validate(); err != nil {
		return fmt.Errorf("traffic: cohort %q: %w", c.Tenant, err)
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("traffic: cohort %q has an empty class mix", c.Tenant)
	}
	total := 0.0
	for _, m := range c.Mix {
		if m.Class == "" {
			return fmt.Errorf("traffic: cohort %q has a mix entry with empty class", c.Tenant)
		}
		if m.Weight <= 0 {
			return fmt.Errorf("traffic: cohort %q class %q needs positive weight", c.Tenant, m.Class)
		}
		if m.Count < 0 || m.SizeBytes < 0 || m.MeanWorkS < 0 || m.StddevWorkS < 0 {
			return fmt.Errorf("traffic: cohort %q class %q has negative parameters", c.Tenant, m.Class)
		}
		total += m.Weight
	}
	if total <= 0 {
		return fmt.Errorf("traffic: cohort %q mix weights sum to %g", c.Tenant, total)
	}
	if c.DeadlineMeanS < 0 || c.DeadlineStddevS < 0 {
		return fmt.Errorf("traffic: cohort %q has negative deadline parameters", c.Tenant)
	}
	return nil
}

// Spec describes a whole trace to generate.
type Spec struct {
	Name      string   `json:"name"`
	DurationS float64  `json:"duration_s"`
	Seed      uint64   `json:"seed"`
	Cohorts   []Cohort `json:"cohorts"`
}

// cohortSeed derives the cohort's independent stream seed from the
// spec seed and the tenant *name* (FNV-1a), not its position — so
// appending, removing or reordering cohorts leaves every other
// cohort's stream bit-identical.
func cohortSeed(seed uint64, tenant string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return xrand.Split(seed, h)
}

// Generate builds the trace described by spec: every cohort's arrival
// stream is generated from its own xrand.Split-derived seed and the
// streams are merged in offset order (ties broken by tenant, then by
// per-cohort sequence). The result is a pure function of spec.
func Generate(spec Spec) (*Trace, error) {
	return GenerateWith(spec, runtime.GOMAXPROCS(0))
}

// GenerateWith is Generate with an explicit cohort-generation worker
// count. Cohort streams are independent, so any worker count produces
// the identical trace — the property TestGenerateParallelDeterminism
// pins, mirroring the sweep driver's -j discipline.
func GenerateWith(spec Spec, workers int) (*Trace, error) {
	if spec.DurationS <= 0 {
		return nil, fmt.Errorf("traffic: spec %q needs a positive duration, got %g", spec.Name, spec.DurationS)
	}
	if len(spec.Cohorts) == 0 {
		return nil, fmt.Errorf("traffic: spec %q has no cohorts", spec.Name)
	}
	seen := map[string]bool{}
	for i := range spec.Cohorts {
		if err := spec.Cohorts[i].validate(); err != nil {
			return nil, err
		}
		if seen[spec.Cohorts[i].Tenant] {
			return nil, fmt.Errorf("traffic: duplicate cohort tenant %q", spec.Cohorts[i].Tenant)
		}
		seen[spec.Cohorts[i].Tenant] = true
	}
	if workers < 1 {
		workers = 1
	}

	perCohort := make([][]Event, len(spec.Cohorts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range spec.Cohorts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			perCohort[i] = generateCohort(&spec.Cohorts[i], spec.Seed, spec.DurationS)
		}(i)
	}
	wg.Wait()

	// Stable merge: offset, then tenant, then per-cohort sequence. The
	// per-cohort slices are already offset-sorted, so a sort over the
	// concatenation with the tenant tie-break is deterministic
	// regardless of generation order.
	var events []Event
	for _, evs := range perCohort {
		events = append(events, evs...)
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].OffsetS != events[b].OffsetS {
			return events[a].OffsetS < events[b].OffsetS
		}
		return events[a].Tenant < events[b].Tenant
	})
	tr := &Trace{
		SchemaVersion: SchemaVersion,
		Name:          spec.Name,
		Seed:          spec.Seed,
		DurationS:     spec.DurationS,
		Events:        events,
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// generateCohort produces one cohort's offset-sorted events from its
// independent stream. Arrival times are drawn first, then per-event
// attributes, so the arrival process of an existing trace is stable
// under changes to the class mix parameters' *order of use* — every
// event consumes a fixed draw pattern.
func generateCohort(c *Cohort, seed uint64, duration float64) []Event {
	rng := xrand.New(cohortSeed(seed, c.Tenant))
	arrivals := c.Arrival.sample(rng, duration)
	totalW := 0.0
	for _, m := range c.Mix {
		totalW += m.Weight
	}
	events := make([]Event, 0, len(arrivals))
	for _, at := range arrivals {
		// Class pick: cumulative-weight walk.
		pick := rng.Float64() * totalW
		mi := 0
		for ; mi < len(c.Mix)-1; mi++ {
			if pick < c.Mix[mi].Weight {
				break
			}
			pick -= c.Mix[mi].Weight
		}
		m := &c.Mix[mi]
		ev := Event{
			OffsetS:   at,
			Tenant:    c.Tenant,
			Class:     m.Class,
			Count:     m.Count,
			SizeBytes: m.SizeBytes,
			Seed:      rng.Uint64(),
		}
		if ev.Count <= 0 {
			ev.Count = 1
		}
		if m.MeanWorkS > 0 {
			ev.WorkHintS = rng.NormPos(m.MeanWorkS, m.StddevWorkS)
		}
		if c.DeadlineMeanS > 0 {
			d := rng.NormPos(c.DeadlineMeanS, c.DeadlineStddevS)
			ms := int64(math.Round(d * 1e3))
			if ms < 1 {
				ms = 1
			}
			ev.DeadlineMS = ms
		}
		events = append(events, ev)
	}
	return events
}

// exp draws an exponential interarrival gap at the given rate.
func expGap(rng *xrand.RNG, rate float64) float64 {
	// 1-Float64() is in (0, 1], so the log is finite.
	return -math.Log(1-rng.Float64()) / rate
}

// sample draws the cohort's arrival offsets over [0, duration).
func (a *Arrival) sample(rng *xrand.RNG, duration float64) []float64 {
	var out []float64
	switch a.Kind {
	case ArrivalPoisson:
		for t := expGap(rng, a.RateJPS); t < duration; t += expGap(rng, a.RateJPS) {
			out = append(out, t)
		}
	case ArrivalBursty:
		// MMPP-2. Exponential holding times make the discard-on-switch
		// construction exact: conditional on an interarrival extending
		// past the state boundary, memorylessness lets the next state
		// restart the draw fresh.
		t, burst := 0.0, false
		stateEnd := expGap(rng, 1/a.MeanCalmS)
		for t < duration {
			rate := a.RateJPS
			if burst {
				rate *= a.BurstFactor
			}
			next := t + expGap(rng, rate)
			if next >= stateEnd {
				t = stateEnd
				burst = !burst
				hold := a.MeanCalmS
				if burst {
					hold = a.MeanBurstS
				}
				stateEnd = t + expGap(rng, 1/hold)
				continue
			}
			t = next
			if t < duration {
				out = append(out, t)
			}
		}
	case ArrivalDiurnal:
		// Non-homogeneous Poisson by thinning: candidates at the
		// envelope's peak rate, accepted with probability rate(t)/peak.
		peak := 1.0
		for _, p := range a.Periods {
			peak += p.Amp
		}
		peakRate := a.RateJPS * peak
		for t := expGap(rng, peakRate); t < duration; t += expGap(rng, peakRate) {
			if rng.Float64()*peakRate < a.rateAt(t) {
				out = append(out, t)
			}
		}
	}
	return out
}

// rateAt evaluates the diurnal envelope at trace time t.
func (a *Arrival) rateAt(t float64) float64 {
	f := 1.0
	for _, p := range a.Periods {
		f += p.Amp * math.Sin(2*math.Pi*t/p.PeriodS+p.Phase)
	}
	if f < 0 {
		f = 0
	}
	return a.RateJPS * f
}
