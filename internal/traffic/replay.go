package traffic

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/task"
)

// TenantCounts is one tenant's slice of a replay outcome log.
type TenantCounts struct {
	OK          uint64 `json:"ok_200"`
	Rejected    uint64 `json:"rejected_429"`
	Unavailable uint64 `json:"unavailable_503,omitempty"`
	Invalid     uint64 `json:"invalid_400,omitempty"`
	Dropped     uint64 `json:"dropped_504"`
	TasksRun    uint64 `json:"tasks_run"`
}

// Log is the replay decision/outcome log: per-tenant admission
// outcomes plus the engine's deterministic roll-ups. Everything in it
// is a pure function of (trace, replay options) except the Measured*
// fields, which are host-wall-derived and therefore excluded from
// Canonical — ReplaySim's modeled EnergyJ/MakespanS are bit-exact,
// ReplayServe's measured energy is reported but never compared.
type Log struct {
	SchemaVersion int                      `json:"schema_version"`
	Engine        string                   `json:"engine"` // "sim" or "serve"
	Trace         string                   `json:"trace"`
	Events        int                      `json:"events"`
	Batches       uint64                   `json:"batches"`
	Tenants       map[string]*TenantCounts `json:"tenants"`

	// Modeled roll-ups (sim replay; bit-exact).
	EnergyJ   float64 `json:"energy_j,omitempty"`
	MakespanS float64 `json:"makespan_s,omitempty"`

	// Measured roll-ups (serve replay; wall-derived, not comparable).
	MeasuredEnergyJ float64 `json:"measured_energy_j,omitempty"`
	MeasuredWallS   float64 `json:"measured_wall_s,omitempty"`
}

func newLog(engine string, tr *Trace) *Log {
	return &Log{
		SchemaVersion: SchemaVersion,
		Engine:        engine,
		Trace:         tr.Name,
		Events:        len(tr.Events),
		Tenants:       map[string]*TenantCounts{},
	}
}

func (l *Log) tenant(name string) *TenantCounts {
	tc := l.Tenants[name]
	if tc == nil {
		tc = &TenantCounts{}
		l.Tenants[name] = tc
	}
	return tc
}

// count records one job outcome.
func (l *Log) count(tenant string, status int, tasksRun int) {
	tc := l.tenant(tenant)
	switch status {
	case 200:
		tc.OK++
	case 429:
		tc.Rejected++
	case 503:
		tc.Unavailable++
	case 400:
		tc.Invalid++
	default: // 504, queued-drop or mid-batch partial
		tc.Dropped++
	}
	tc.TasksRun += uint64(tasksRun)
}

// Canonical returns the log's deterministic byte form: indented JSON
// with the measured (wall-derived) fields zeroed. Two replays of the
// same trace with the same options must produce identical Canonical
// bytes — the property the determinism gates compare.
func (l *Log) Canonical() ([]byte, error) {
	c := *l
	c.MeasuredEnergyJ = 0
	c.MeasuredWallS = 0
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&c); err != nil {
		return nil, fmt.Errorf("traffic: encoding log: %w", err)
	}
	return buf.Bytes(), nil
}

// ServeReplay configures a lockstep replay through internal/serve.
type ServeReplay struct {
	// Config is the server configuration (workers, policy, shards,
	// admission bounds…). Clock and ManualFlush are overridden — the
	// replay owns the batch boundary and the clock.
	Config serve.Config
	// FlushEveryS is the virtual batching interval (default 0.025s,
	// mirroring serve's default FlushEvery).
	FlushEveryS float64
}

// ReplayServe replays tr through the real admission/batching pipeline
// of internal/serve in lockstep virtual time: events are submitted at
// their trace offsets on a virtual clock, batches form exactly at
// FlushEveryS boundaries on the replay goroutine, and queued-deadline
// expiry is evaluated against the virtual clock. Admission decisions
// (429/503), queued 504 drops, batch composition and per-tenant
// outcome counts are therefore a pure function of (trace, options) —
// replaying the same trace twice produces identical Canonical logs —
// while the task payloads still execute for real on the runtime
// shards. Host-wall quantities (measured energy, batch wall times)
// remain nondeterministic and are reported via the Measured* fields
// only.
func ReplayServe(tr *Trace, opt ServeReplay) (*Log, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	flushEvery := opt.FlushEveryS
	if flushEvery <= 0 {
		flushEvery = 0.025
	}
	var vnow atomic.Int64 // virtual nanoseconds since the Unix epoch
	cfg := opt.Config
	cfg.Clock = func() time.Time { return time.Unix(0, vnow.Load()) }
	cfg.ManualFlush = true
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}

	lg := newLog("serve", tr)
	hostStart := time.Now()
	type waiting struct {
		tenant string
		p      *serve.Pending
	}
	var outstanding []waiting
	// settle collects the outcome of every job the last Flush ran.
	// Flush drains the whole backlog, so none of these Waits blocks.
	settle := func() {
		for _, w := range outstanding {
			st, res, _ := w.p.Wait()
			ran := 0
			if res != nil {
				ran = res.TasksRun
			}
			lg.count(w.tenant, st, ran)
		}
		outstanding = outstanding[:0]
	}

	boundary := 1 // next flush boundary is flushEvery·boundary
	for i := range tr.Events {
		ev := &tr.Events[i]
		for ev.OffsetS >= flushEvery*float64(boundary) {
			vnow.Store(int64(flushEvery * float64(boundary) * 1e9))
			srv.Flush()
			settle()
			boundary++
		}
		vnow.Store(int64(ev.OffsetS * 1e9))
		p, rej := srv.Submit(serve.JobRequest{
			Tenant:     ev.Tenant,
			Func:       ev.Class,
			SizeBytes:  ev.SizeBytes,
			Count:      ev.Count,
			Seed:       ev.Seed,
			DeadlineMS: ev.DeadlineMS,
			WorkHintS:  ev.WorkHintS,
		})
		if rej != nil {
			lg.count(ev.Tenant, rej.Status, 0)
			continue
		}
		outstanding = append(outstanding, waiting{ev.Tenant, p})
	}
	// Run out the clock: one boundary past the horizon flushes the
	// tail, then Drain stops the shards (their backlogs are empty, so
	// it returns immediately; the context is a formality).
	end := math.Max(tr.DurationS, flushEvery*float64(boundary))
	vnow.Store(int64(end * 1e9))
	srv.Flush()
	settle()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return nil, fmt.Errorf("traffic: drain after replay: %w", err)
	}
	settle()

	lg.Batches = srv.Stats().Batches
	lg.MeasuredEnergyJ = srv.EnergyRollup().TotalJ
	lg.MeasuredWallS = time.Since(hostStart).Seconds()
	if n := len(srv.Violations()); n > 0 {
		return lg, fmt.Errorf("traffic: replay raised %d runtime invariant violations", n)
	}
	return lg, nil
}

// SimReplay configures a replay through the discrete-event simulator.
type SimReplay struct {
	Cores  int    // simulated cores (default 8)
	Policy string // canonical policy id (default eewa)
	Seed   uint64 // victim-selection seed (default 1)
	// FlushEveryS buckets arrivals into batches, mirroring serve's
	// interval batcher (default 0.025s).
	FlushEveryS float64
	// DefaultWorkS is the per-task work for events without a hint
	// (live-captured traces); default 150µs. Generated traces always
	// carry NormPos-sampled hints, so replay never fabricates work for
	// them.
	DefaultWorkS float64
}

// ReplaySim replays tr through the simulator: arrivals are bucketed
// into batches at FlushEveryS boundaries (the virtual image of serve's
// interval batcher), jobs whose deadline falls before their batch
// forms are dropped 504 exactly as serve's queued-expiry check drops
// them, and the surviving batches run through sched.Run. The entire
// log — outcome counts, batch count, modeled energy and makespan — is
// bit-exact for a given (trace, options): replaying twice, on any
// host, yields identical Canonical bytes. The simulator has no
// admission bounds, so 429/503 never appear here; compare against
// ReplayServe to see what backpressure subtracts.
func ReplaySim(tr *Trace, opt SimReplay) (*Log, *sched.Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, err
	}
	if opt.Cores <= 0 {
		opt.Cores = 8
	}
	if opt.Policy == "" {
		opt.Policy = policy.IDEEWA
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	flushEvery := opt.FlushEveryS
	if flushEvery <= 0 {
		flushEvery = 0.025
	}
	defaultWork := opt.DefaultWorkS
	if defaultWork <= 0 {
		defaultWork = 150e-6
	}

	lg := newLog("sim", tr)
	var batches []task.Batch
	curWindow := -1
	id := 0
	for i := range tr.Events {
		ev := &tr.Events[i]
		window := int(ev.OffsetS / flushEvery)
		// The batch containing this arrival forms at the next flush
		// boundary; a deadline earlier than that is a queued drop.
		formAt := flushEvery * float64(window+1)
		if ev.DeadlineMS > 0 && ev.OffsetS+float64(ev.DeadlineMS)/1e3 <= formAt {
			lg.count(ev.Tenant, 504, 0)
			continue
		}
		if window != curWindow {
			batches = append(batches, task.Batch{})
			curWindow = window
		}
		b := &batches[len(batches)-1]
		work := ev.WorkHintS
		if work <= 0 {
			work = defaultWork
		}
		for k := 0; k < ev.Count; k++ {
			b.Tasks = append(b.Tasks, task.Task{ID: id, Class: ev.Class, Work: work})
			id++
		}
		lg.count(ev.Tenant, 200, ev.Count)
	}
	if len(batches) == 0 {
		return nil, nil, fmt.Errorf("traffic: trace %q has no replayable events (all dropped or empty)", tr.Name)
	}
	lg.Batches = uint64(len(batches))

	cfg := machine.Generic(opt.Cores)
	pol, err := policy.New(opt.Policy, cfg)
	if err != nil {
		return nil, nil, err
	}
	w := &task.Workload{Name: "trace:" + tr.Name, Batches: batches}
	params := sched.DefaultParams()
	params.Seed = opt.Seed
	res, err := sched.Run(cfg, w, pol, params)
	if err != nil {
		return nil, nil, err
	}
	lg.EnergyJ = res.Energy
	lg.MakespanS = res.Makespan
	return lg, res, nil
}

// WallStats summarizes an open-loop wall-clock replay.
type WallStats struct {
	Submitted int64
	OK        int64
	Rejected  int64 // 429
	Dropped   int64 // 504
	Other     int64
	// Late counts events fired more than one flush interval behind
	// their scheduled time — the driver falling behind the trace.
	Late  int64
	WallS float64
}

// ReplayWall drives tr against an HTTP handler open-loop in wall
// time: each event fires at offset/speed seconds after start,
// regardless of completions, with the event's relative deadline
// translated to an absolute deadline_at on the same scaled timeline
// (so a driver that falls behind produces honest admission fast-fails
// instead of silently relaxed deadlines). speed > 1 compresses the
// trace, the load axis density sweeps use. Not deterministic — use
// ReplayServe for bit-exact outcome logs.
func ReplayWall(ctx context.Context, h http.Handler, tr *Trace, speed float64) (*WallStats, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if speed <= 0 {
		speed = 1
	}
	var st WallStats
	var wg sync.WaitGroup
	start := time.Now()
	for i := range tr.Events {
		ev := &tr.Events[i]
		due := start.Add(time.Duration(ev.OffsetS / speed * 1e9))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				st.WallS = time.Since(start).Seconds()
				return &st, ctx.Err()
			}
		} else if -d > 100*time.Millisecond {
			atomic.AddInt64(&st.Late, 1)
		}
		req := serve.JobRequest{
			Tenant:    ev.Tenant,
			Func:      ev.Class,
			SizeBytes: ev.SizeBytes,
			Count:     ev.Count,
			Seed:      ev.Seed,
			WorkHintS: ev.WorkHintS,
		}
		if ev.DeadlineMS > 0 {
			expiry := ev.OffsetS + float64(ev.DeadlineMS)/1e3
			req.DeadlineAtMS = start.Add(time.Duration(expiry / speed * 1e9)).UnixMilli()
		}
		atomic.AddInt64(&st.Submitted, 1)
		wg.Add(1)
		go func(req serve.JobRequest) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			r := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			switch w.Code {
			case 200:
				atomic.AddInt64(&st.OK, 1)
			case 429:
				atomic.AddInt64(&st.Rejected, 1)
			case 504:
				atomic.AddInt64(&st.Dropped, 1)
			default:
				atomic.AddInt64(&st.Other, 1)
			}
		}(req)
	}
	wg.Wait()
	st.WallS = time.Since(start).Seconds()
	return &st, nil
}

// ReplayWallBatch is ReplayWall with client-side coalescing: trace
// order is kept, but every `batch` consecutive events go out as one
// POST /v1/jobs:batch. A group fires when its last member comes due,
// so no event ever fires early; per-event lateness is still judged
// against each event's own scheduled time. Per-job outcomes come from
// the batch response's status array, so WallStats counts jobs, not
// requests. batch <= 1 degenerates to ReplayWall.
func ReplayWallBatch(ctx context.Context, h http.Handler, tr *Trace, speed float64, batch int) (*WallStats, error) {
	if batch <= 1 {
		return ReplayWall(ctx, h, tr, speed)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if speed <= 0 {
		speed = 1
	}
	var st WallStats
	var wg sync.WaitGroup
	start := time.Now()
	for base := 0; base < len(tr.Events); base += batch {
		end := base + batch
		if end > len(tr.Events) {
			end = len(tr.Events)
		}
		group := tr.Events[base:end]
		due := start.Add(time.Duration(group[len(group)-1].OffsetS / speed * 1e9))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				st.WallS = time.Since(start).Seconds()
				return &st, ctx.Err()
			}
		}
		now := time.Now()
		breq := serve.BatchRequest{Jobs: make([]serve.JobRequest, len(group))}
		for i := range group {
			ev := &group[i]
			if now.Sub(start.Add(time.Duration(ev.OffsetS/speed*1e9))) > 100*time.Millisecond {
				atomic.AddInt64(&st.Late, 1)
			}
			req := serve.JobRequest{
				Tenant:    ev.Tenant,
				Func:      ev.Class,
				SizeBytes: ev.SizeBytes,
				Count:     ev.Count,
				Seed:      ev.Seed,
				WorkHintS: ev.WorkHintS,
			}
			if ev.DeadlineMS > 0 {
				expiry := ev.OffsetS + float64(ev.DeadlineMS)/1e3
				req.DeadlineAtMS = start.Add(time.Duration(expiry / speed * 1e9)).UnixMilli()
			}
			breq.Jobs[i] = req
		}
		atomic.AddInt64(&st.Submitted, int64(len(group)))
		wg.Add(1)
		go func(breq serve.BatchRequest) {
			defer wg.Done()
			body, _ := json.Marshal(breq)
			r := httptest.NewRequest(http.MethodPost, "/v1/jobs:batch", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			var bres serve.BatchResponse
			if err := json.Unmarshal(w.Body.Bytes(), &bres); err != nil || len(bres.Jobs) != len(breq.Jobs) {
				atomic.AddInt64(&st.Other, int64(len(breq.Jobs)))
				return
			}
			for i := range bres.Jobs {
				switch bres.Jobs[i].Status {
				case 200:
					atomic.AddInt64(&st.OK, 1)
				case 429:
					atomic.AddInt64(&st.Rejected, 1)
				case 504:
					atomic.AddInt64(&st.Dropped, 1)
				default:
					atomic.AddInt64(&st.Other, 1)
				}
			}
		}(breq)
	}
	wg.Wait()
	st.WallS = time.Since(start).Seconds()
	return &st, nil
}
