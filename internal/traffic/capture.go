package traffic

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// Capture is HTTP middleware that records live job submissions as a
// replayable trace. It wraps the serve handler from the outside —
// traffic imports serve, never the reverse — decoding each POST
// /v1/jobs body on its way in and appending one event with the offset
// measured from the first captured request. Capture observes
// submissions, not outcomes: a 429'd job is still an arrival, which is
// exactly what an open-loop replay needs to reproduce the load that
// caused the 429.
type Capture struct {
	next http.Handler

	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewCapture wraps next, recording every well-formed job submission.
func NewCapture(next http.Handler) *Capture {
	return &Capture{next: next}
}

func (c *Capture) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && r.Body != nil {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
		if err != nil {
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		c.record(body)
	}
	c.next.ServeHTTP(w, r)
}

func (c *Capture) record(body []byte) {
	var req serve.JobRequest
	if json.Unmarshal(body, &req) != nil || req.Func == "" {
		return // malformed; serve will 400 it, nothing to replay
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.start.IsZero() {
		c.start = now
	}
	ev := Event{
		OffsetS:   now.Sub(c.start).Seconds(),
		Tenant:    req.Tenant,
		Class:     req.Func,
		Count:     req.Count,
		SizeBytes: req.SizeBytes,
		Seed:      req.Seed,
		WorkHintS: req.WorkHintS,
	}
	if ev.Count <= 0 {
		ev.Count = 1 // serve's default for an omitted count
	}
	switch {
	case req.DeadlineMS > 0:
		ev.DeadlineMS = req.DeadlineMS
	case req.DeadlineAtMS > 0:
		// Re-relativize the absolute deadline against the arrival so
		// the captured trace replays on any clock.
		if d := req.DeadlineAtMS - now.UnixMilli(); d > 0 {
			ev.DeadlineMS = d
		} else {
			ev.DeadlineMS = 1 // already expired: keep the fast-fail replayable
		}
	}
	c.events = append(c.events, ev)
}

// Trace snapshots the capture as a validated trace. Events are sorted
// by offset (concurrent submissions can record slightly out of order)
// and the horizon extends to the last arrival.
func (c *Capture) Trace(name string) *Trace {
	c.mu.Lock()
	events := make([]Event, len(c.events))
	copy(events, c.events)
	c.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.OffsetS != b.OffsetS {
			return a.OffsetS < b.OffsetS
		}
		return a.Tenant < b.Tenant
	})
	dur := 1e-3
	if n := len(events); n > 0 && events[n-1].OffsetS > dur {
		dur = events[n-1].OffsetS
	}
	return &Trace{
		SchemaVersion: SchemaVersion,
		Name:          name,
		DurationS:     dur,
		Events:        events,
	}
}

// Len reports the number of captured events.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}
