package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs run.").Add(3)
	r.Gauge("depth", "Queue depth.").Set(7)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)
	v := r.CounterVec("steals_total", "Steals by victim.", "victim")
	v.With("0").Add(4)
	v.With("1").Add(1)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs run.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE depth gauge\ndepth 7\n",
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 10.55\nlatency_seconds_count 3\n",
		`steals_total{victim="0"} 4`,
		`steals_total{victim="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Registration order must be stable: jobs before depth before
	// latency before steals.
	idx := func(s string) int { return strings.Index(out, "# TYPE "+s) }
	if !(idx("jobs_total") < idx("depth") && idx("depth") < idx("latency_seconds") && idx("latency_seconds") < idx("steals_total")) {
		t.Errorf("families out of registration order:\n%s", out)
	}

	// A second export must be byte-identical (determinism).
	var buf2 bytes.Buffer
	r := buildSample()
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("identical registries exported different text")
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := buildSample()
	snap := r.Snapshot()
	if snap["jobs_total"] != 3.0 {
		t.Errorf("jobs_total = %v", snap["jobs_total"])
	}
	kids, ok := snap["steals_total"].(map[string]any)
	if !ok || kids["victim=0"] != 4.0 {
		t.Errorf("steals_total = %v", snap["steals_total"])
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	hist, ok := decoded["latency_seconds"].(map[string]any)
	if !ok || hist["count"] != 3.0 {
		t.Errorf("latency snapshot = %v", decoded["latency_seconds"])
	}
}
