package obs

import (
	"math"
	"sync/atomic"
)

// LogHistogram is a lock-free log-bucketed distribution: bucket
// boundaries are spaced geometrically (lhSub sub-buckets per power of
// two), so one fixed ~4 KiB bucket array covers every latency from
// sub-nanosecond to decades with a bounded relative error of
// 1/lhSub = 12.5% per bucket (half that in expectation, since quantile
// reads interpolate linearly inside the bucket).
//
// Unlike the fixed-bucket Histogram, a LogHistogram needs no bucket
// choice at registration time and supports quantile estimation and
// merging — it is the distribution type behind every latency span
// metric (queue wait, batch wait, execution, end-to-end) and the
// percentile summaries of cmd/eewa-density.
//
// Observe is a single atomic add per call plus the shared sum/count
// words; all methods are safe for concurrent use, and a nil
// *LogHistogram no-ops like every other obs metric.
type LogHistogram struct {
	counts  [lhBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Bucket layout: bucket 0 is the underflow bucket (v ≤ 2^lhMinExp,
// including zero and negatives), bucket lhBuckets-1 the overflow bucket
// (v ≥ 2^lhMaxExp). In between, each power-of-two octave [2^o, 2^(o+1))
// is split into lhSub equal-width sub-buckets.
const (
	lhSubBits = 3
	lhSub     = 1 << lhSubBits // sub-buckets per octave
	lhMinExp  = -31            // 2^-31 s ≈ 0.47 ns
	lhMaxExp  = 33             // 2^33 s ≈ 272 years
	lhOctaves = lhMaxExp - lhMinExp
	lhBuckets = lhOctaves*lhSub + 2
)

// lhIndex maps a value to its bucket index.
func lhIndex(v float64) int {
	if !(v > 0) || math.IsNaN(v) { // ≤0 and NaN both underflow
		return 0
	}
	if math.IsInf(v, 1) { // Frexp(+Inf) = (+Inf, 0): handle explicitly
		return lhBuckets - 1
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	o := exp - 1               // v ∈ [2^o, 2^(o+1))
	if o < lhMinExp {
		return 0
	}
	if o >= lhMaxExp {
		return lhBuckets - 1
	}
	sub := int((frac - 0.5) * 2 * lhSub)
	if sub >= lhSub { // frac == nextafter(1, 0) rounding guard
		sub = lhSub - 1
	}
	return 1 + (o-lhMinExp)*lhSub + sub
}

// lhBounds returns the [lo, hi) value range of bucket i.
func lhBounds(i int) (lo, hi float64) {
	switch {
	case i <= 0:
		return 0, math.Ldexp(1, lhMinExp)
	case i >= lhBuckets-1:
		return math.Ldexp(1, lhMaxExp), math.Inf(1)
	}
	i--
	o := lhMinExp + i/lhSub
	s := i % lhSub
	base := math.Ldexp(1, o)
	step := base / lhSub
	return base + float64(s)*step, base + float64(s+1)*step
}

// Observe records one sample. Non-positive and NaN values land in the
// underflow bucket and contribute 0 to the sum.
func (h *LogHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[lhIndex(v)].Add(1)
	h.count.Add(1)
	if v > 0 && !math.IsInf(v, 1) {
		for {
			old := h.sumBits.Load()
			neu := math.Float64bits(math.Float64frombits(old) + v)
			if h.sumBits.CompareAndSwap(old, neu) {
				return
			}
		}
	}
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all positive finite observations.
func (h *LogHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count (0 when empty).
func (h *LogHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q ∈ [0, 1]) of the recorded
// distribution, interpolating linearly within the target bucket. It
// cumulates over the bucket array itself, so a concurrent Observe can
// shift the estimate by at most one in rank — there is no torn state.
// An empty histogram returns 0.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [lhBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		lo, hi := lhBounds(i)
		if math.IsInf(hi, 1) {
			return lo
		}
		// Position of the target rank inside this bucket.
		pos := float64(rank-(cum-c)) / float64(c)
		return lo + pos*(hi-lo)
	}
	return 0 // unreachable: cum == total ≥ rank
}

// Merge adds every bucket of o into h (h += o). Shapes are fixed at
// compile time, so any two LogHistograms merge. Nil receivers and nil
// arguments no-op.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	if s := o.Sum(); s != 0 {
		for {
			old := h.sumBits.Load()
			neu := math.Float64bits(math.Float64frombits(old) + s)
			if h.sumBits.CompareAndSwap(old, neu) {
				break
			}
		}
	}
}

// forEachBucket calls fn for every non-empty bucket in ascending value
// order with the bucket's upper bound and count.
func (h *LogHistogram) forEachBucket(fn func(upper float64, count uint64)) {
	if h == nil {
		return
	}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			_, hi := lhBounds(i)
			fn(hi, c)
		}
	}
}

// LogHistogramVec is a labeled log-histogram family.
type LogHistogramVec struct{ f *family }

// With returns the child for the given label values; nil-safe.
func (v *LogHistogramVec) With(values ...string) *LogHistogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*LogHistogram)
}

// LogHistogram registers (or fetches) an unlabeled log-bucketed
// histogram.
func (r *Registry) LogHistogram(name, help string) *LogHistogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindLogHistogram, nil, nil).plain.(*LogHistogram)
}

// LogHistogramVec registers (or fetches) a labeled log-bucketed
// histogram family.
func (r *Registry) LogHistogramVec(name, help string, labelNames ...string) *LogHistogramVec {
	if r == nil {
		return nil
	}
	return &LogHistogramVec{f: r.lookup(name, help, kindLogHistogram, nil, labelNames)}
}

// At returns the registered metric for name — the unlabeled metric when
// called without label values, otherwise the child with exactly those
// values — or nil when the family or child does not exist. The result
// is one of *Counter, *Gauge, *Histogram or *LogHistogram. It lets a
// harness read metrics registered by a layer it did not instrument
// (e.g. cmd/eewa-density pulling the simulator's latency quantiles).
func (r *Registry) At(name string, labelValues ...string) any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	f, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	if len(f.labels) == 0 {
		if len(labelValues) != 0 {
			return nil
		}
		return f.plain
	}
	if len(labelValues) != len(f.labels) {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.children[joinLabelValues(labelValues)]
}
