package obs

import (
	"strings"
	"sync"
	"testing"
)

// Striped counters/gauges must agree with their plain equivalents
// under concurrent hammering: every Add lands on exactly one cell, so
// the cell sum is exact, not approximate.
func TestStripedCounterConcurrentSum(t *testing.T) {
	c := NewStripedCounter(8)
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), float64(workers*per); got != want {
		t.Fatalf("striped counter = %g, want %g", got, want)
	}
	c.Add(-5) // counters are monotone: negative adds ignored
	if got := c.Value(); got != float64(workers*per) {
		t.Fatalf("negative Add changed counter to %g", got)
	}
}

func TestStripedGaugeSignedDeltas(t *testing.T) {
	g := NewStripedGauge(4)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(3)
				g.Add(-2)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per); got != want {
		t.Fatalf("striped gauge = %g, want %g", got, want)
	}
}

func TestStripeCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {64, 64}, {100, 64},
	} {
		sc := NewStripedCounter(tc.in)
		if len(sc.cells) != tc.want {
			t.Errorf("stripes(%d) = %d cells, want %d", tc.in, len(sc.cells), tc.want)
		}
	}
	if def := NewStripedCounter(0); len(def.cells) == 0 {
		t.Error("default stripe count must be positive")
	}
}

// The sharded log-histogram must report exactly the distribution an
// unsharded histogram would: same count, same sum, same quantiles
// (shards share the bucket layout, and Merged unions the buckets).
func TestShardedLogHistogramMatchesPlain(t *testing.T) {
	sh := NewShardedLogHistogram(8)
	var plain LogHistogram
	for i := 1; i <= 10000; i++ {
		v := float64(i) * 1e-5
		sh.Observe(v)
		plain.Observe(v)
	}
	if sh.Count() != plain.Count() {
		t.Fatalf("count %d != plain %d", sh.Count(), plain.Count())
	}
	m := sh.Merged()
	// Shard sums accumulate in a different order, so allow float
	// rounding in the last ulps; bucket counts (and therefore
	// quantiles) are integers and must match exactly.
	if got, want := m.Sum(), plain.Sum(); relErr(got, want) > 1e-12 {
		t.Fatalf("sum %g != plain %g", got, want)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := sh.Quantile(q), plain.Quantile(q); got != want {
			t.Errorf("q%.2f = %g, want %g", q, got, want)
		}
	}
	if got, want := sh.Mean(), plain.Mean(); relErr(got, want) > 1e-12 {
		t.Errorf("mean %g != %g", got, want)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	return d / b
}

// Nil receivers no-op like every other obs metric, and a nil registry
// returns nil handles.
func TestStripedNilSafety(t *testing.T) {
	var c *StripedCounter
	var g *StripedGauge
	var h *ShardedLogHistogram
	c.Add(1)
	c.Inc()
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("nil striped metrics must read zero")
	}
	if h.Merged() == nil {
		t.Error("nil ShardedLogHistogram.Merged() must return an empty histogram")
	}
	var r *Registry
	if r.StripedCounter("x", "") != nil || r.StripedGauge("y", "") != nil || r.ShardedLogHistogram("z", "") != nil {
		t.Error("nil registry must hand out nil striped handles")
	}
}

// Registered striped metrics export through the plain Prometheus and
// JSON surfaces: counter/gauge TYPE lines, merged histogram series.
func TestStripedRegistryExport(t *testing.T) {
	reg := NewRegistry()
	c := reg.StripedCounter("striped_total", "striped counter")
	g := reg.StripedGauge("striped_now", "striped gauge")
	h := reg.ShardedLogHistogram("striped_seconds", "sharded histogram")
	c.Add(41)
	c.Inc()
	g.Add(7)
	g.Add(-2)
	h.Observe(0.25)
	h.Observe(0.5)

	// Re-registration returns the same handles; mismatched kinds panic
	// exactly like plain metrics (checked via the distinct kind).
	if reg.StripedCounter("striped_total", "") != c {
		t.Error("re-registration returned a different striped counter")
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE striped_total counter",
		"striped_total 42",
		"# TYPE striped_now gauge",
		"striped_now 5",
		"# TYPE striped_seconds histogram",
		"striped_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, out)
		}
	}

	snap := reg.Snapshot()
	if v, ok := snap["striped_total"].(float64); !ok || v != 42 {
		t.Errorf("snapshot striped_total = %v, want 42", snap["striped_total"])
	}
	if v, ok := snap["striped_now"].(float64); !ok || v != 5 {
		t.Errorf("snapshot striped_now = %v, want 5", snap["striped_now"])
	}
	hv, ok := snap["striped_seconds"].(map[string]any)
	if !ok || hv["count"].(uint64) != 2 {
		t.Errorf("snapshot striped_seconds = %v", snap["striped_seconds"])
	}
}
