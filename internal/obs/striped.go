package obs

import (
	"math"
	rand "math/rand/v2"
	"runtime"
	"sync/atomic"
)

// Striped metric variants for write-hot shared words. A plain Counter
// or Gauge is one atomic word: every Add from every core lands on the
// same cache line, so under multi-core ingest storms the line
// ping-pongs and the CAS loop retries. The striped variants spread the
// value over cacheLine-padded cells — writers pick a cell with the
// runtime's per-thread fast random source (math/rand/v2's global
// functions, no lock, no shared state) and only readers pay the
// sum-over-cells cost. Reads are snapshot-consistent per cell, not
// across cells, exactly like every multi-shard aggregate in this
// package.
//
// The serve ingest path uses these for its hottest cluster-total
// families (admissions, in-flight tasks); the density harness's
// closed-loop driver records client-observed latency through the
// sharded log-histogram. Everything merges back to the plain types at
// export time, so the Prometheus/JSON surface is unchanged.

// cacheLine is the assumed coherence-granule size. 64 bytes covers
// x86-64 and most arm64 parts; on 128-byte-line hosts two cells share a
// line, which halves the striping benefit but stays correct.
const cacheLine = 64

// paddedWord is one atomic float64 cell padded to a full cache line so
// neighboring cells never share one.
type paddedWord struct {
	bits atomic.Uint64
	_    [cacheLine - 8]byte
}

func (w *paddedWord) add(v float64) {
	for {
		old := w.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if w.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// stripeCount returns the stripe count for n (0 means "pick for this
// host"): a power of two so stripe selection is a mask, capped to keep
// the read-side sum and the per-metric footprint small.
func stripeCount(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// StripedCounter is a monotone counter striped over cache-line-padded
// cells. Add/Inc are lock-free and contention-free across cores;
// Value sums the cells. A nil *StripedCounter no-ops.
type StripedCounter struct {
	cells []paddedWord
	mask  uint64
}

// NewStripedCounter returns a counter with the given stripe count
// (rounded up to a power of two; 0 picks one per GOMAXPROCS).
func NewStripedCounter(stripes int) *StripedCounter {
	n := stripeCount(stripes)
	return &StripedCounter{cells: make([]paddedWord, n), mask: uint64(n - 1)}
}

// Add increases the counter by v (v < 0 is ignored — counters are
// monotone).
func (c *StripedCounter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.cells[rand.Uint64()&c.mask].add(v)
}

// Inc adds one.
func (c *StripedCounter) Inc() { c.Add(1) }

// Value returns the summed count across stripes.
func (c *StripedCounter) Value() float64 {
	if c == nil {
		return 0
	}
	var sum float64
	for i := range c.cells {
		sum += math.Float64frombits(c.cells[i].bits.Load())
	}
	return sum
}

// StripedGauge is a delta-maintained gauge striped over
// cache-line-padded cells: writers Add signed deltas (never Set — a
// striped value has no single word to replace), readers sum. The
// serve layer maintains its in-flight task gauge this way: +n at
// admission, −n as tasks leave, cluster total at read time. A nil
// *StripedGauge no-ops.
type StripedGauge struct {
	cells []paddedWord
	mask  uint64
}

// NewStripedGauge returns a gauge with the given stripe count (rounded
// up to a power of two; 0 picks one per GOMAXPROCS).
func NewStripedGauge(stripes int) *StripedGauge {
	n := stripeCount(stripes)
	return &StripedGauge{cells: make([]paddedWord, n), mask: uint64(n - 1)}
}

// Add shifts the value by v (may be negative).
func (g *StripedGauge) Add(v float64) {
	if g == nil {
		return
	}
	g.cells[rand.Uint64()&g.mask].add(v)
}

// Value returns the summed value across stripes.
func (g *StripedGauge) Value() float64 {
	if g == nil {
		return 0
	}
	var sum float64
	for i := range g.cells {
		sum += math.Float64frombits(g.cells[i].bits.Load())
	}
	return sum
}

// ShardedLogHistogram stripes LogHistogram observation over per-P
// sub-histograms: Observe picks a shard with the per-thread fast
// random source, so the shared count/sum words of one LogHistogram —
// the words every core's CAS loop fights over — are split P ways.
// Reads merge the shards into one LogHistogram snapshot; quantile
// error is identical to the unsharded type (the bucket layout is
// shared).
type ShardedLogHistogram struct {
	shards []LogHistogram
	mask   uint64
}

// NewShardedLogHistogram returns a histogram with the given shard
// count (rounded up to a power of two; 0 picks one per GOMAXPROCS).
func NewShardedLogHistogram(shards int) *ShardedLogHistogram {
	n := stripeCount(shards)
	return &ShardedLogHistogram{shards: make([]LogHistogram, n), mask: uint64(n - 1)}
}

// Observe records one sample on one shard.
func (h *ShardedLogHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.shards[rand.Uint64()&h.mask].Observe(v)
}

// Merged returns a fresh LogHistogram holding the union of every
// shard — the snapshot the export paths and quantile reads use.
func (h *ShardedLogHistogram) Merged() *LogHistogram {
	out := &LogHistogram{}
	if h == nil {
		return out
	}
	for i := range h.shards {
		out.Merge(&h.shards[i])
	}
	return out
}

// Count returns the total number of observations across shards.
func (h *ShardedLogHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.shards {
		n += h.shards[i].Count()
	}
	return n
}

// Quantile estimates the q-quantile over the merged shards.
func (h *ShardedLogHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Merged().Quantile(q)
}

// Mean returns the mean over the merged shards.
func (h *ShardedLogHistogram) Mean() float64 {
	if h == nil {
		return 0
	}
	return h.Merged().Mean()
}

// StripedCounter registers (or fetches) an unlabeled striped counter.
// It exports as an ordinary counter family.
func (r *Registry) StripedCounter(name, help string) *StripedCounter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindStripedCounter, nil, nil).plain.(*StripedCounter)
}

// StripedGauge registers (or fetches) an unlabeled striped gauge. It
// exports as an ordinary gauge family.
func (r *Registry) StripedGauge(name, help string) *StripedGauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindStripedGauge, nil, nil).plain.(*StripedGauge)
}

// ShardedLogHistogram registers (or fetches) an unlabeled sharded
// log-histogram. It exports as an ordinary histogram family, merged at
// snapshot time.
func (r *Registry) ShardedLogHistogram(name, help string) *ShardedLogHistogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindShardedLogHistogram, nil, nil).plain.(*ShardedLogHistogram)
}
