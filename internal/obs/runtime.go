package obs

import (
	"runtime/metrics"
	"strings"
)

// goSample maps one runtime/metrics sample onto registry metrics. The
// runtime's own histograms (GC pauses, scheduling latency) are exposed
// as p50/p99/max gauges rather than raw bucket series: the runtime owns
// the distribution, we only need its shape at scrape time.
type goSample struct {
	name string
	g    *Gauge // scalar metrics
	p50  *Gauge // histogram metrics
	p99  *Gauge
	max  *Gauge
}

// GoRuntimeMetrics bridges runtime/metrics into a Registry under the
// eewa_go_* namespace: goroutine count, heap bytes, GC cycles, GC pause
// and goroutine scheduling-latency quantiles. Build one with
// NewGoRuntimeMetrics and call Sample before each export — the HTTP
// handler does this automatically when HandlerOptions.GoRuntime is set.
type GoRuntimeMetrics struct {
	samples []metrics.Sample
	binds   []goSample
}

// runtimeMetricNames lists the bridged metrics with the registry name
// each maps to. Names absent from the running toolchain are skipped at
// construction, so the bridge degrades gracefully across Go versions.
var runtimeMetricNames = []struct {
	src, dst, help string
}{
	{"/sched/goroutines:goroutines", "eewa_go_goroutines", "Live goroutines."},
	{"/memory/classes/heap/objects:bytes", "eewa_go_heap_objects_bytes", "Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "eewa_go_memory_total_bytes", "Total bytes mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "eewa_go_gc_cycles_total", "Completed GC cycles."},
	{"/gc/heap/allocs:bytes", "eewa_go_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap."},
	{"/sched/pauses/total/gc:seconds", "eewa_go_gc_pause_seconds", "Stop-the-world GC pause latency."},
	{"/gc/pauses:seconds", "eewa_go_gc_pause_seconds", "Stop-the-world GC pause latency."}, // pre-1.22 fallback
	{"/sched/latencies:seconds", "eewa_go_sched_latency_seconds", "Goroutine scheduling latency (runnable to running)."},
}

// NewGoRuntimeMetrics registers the eewa_go_* families on reg and
// resolves which runtime/metrics names this toolchain supports. A nil
// registry returns a no-op bridge.
func NewGoRuntimeMetrics(reg *Registry) *GoRuntimeMetrics {
	b := &GoRuntimeMetrics{}
	if reg == nil {
		return b
	}
	seen := map[string]bool{}
	for _, m := range runtimeMetricNames {
		if seen[m.dst] {
			continue // first supported source name wins (GC pause fallback)
		}
		probe := []metrics.Sample{{Name: m.src}}
		metrics.Read(probe)
		var bind goSample
		bind.name = m.src
		switch probe[0].Value.Kind() {
		case metrics.KindUint64, metrics.KindFloat64:
			bind.g = reg.Gauge(m.dst, m.help)
		case metrics.KindFloat64Histogram:
			bind.p50 = reg.Gauge(m.dst+"_p50", m.help+" (p50, sampled at scrape).")
			bind.p99 = reg.Gauge(m.dst+"_p99", m.help+" (p99, sampled at scrape).")
			bind.max = reg.Gauge(m.dst+"_max", m.help+" (max bucket seen, sampled at scrape).")
		default:
			continue // KindBad: not supported by this toolchain
		}
		seen[m.dst] = true
		b.samples = append(b.samples, metrics.Sample{Name: m.src})
		b.binds = append(b.binds, bind)
	}
	return b
}

// Sample reads the bridged runtime metrics and updates the gauges. It
// is cheap (one metrics.Read) and safe to call concurrently with
// exports, but callers normally let the HTTP handler invoke it.
func (b *GoRuntimeMetrics) Sample() {
	if b == nil || len(b.samples) == 0 {
		return
	}
	metrics.Read(b.samples)
	for i, s := range b.samples {
		bind := b.binds[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			bind.g.Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			bind.g.Set(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			bind.p50.Set(runtimeHistQuantile(h, 0.50))
			bind.p99.Set(runtimeHistQuantile(h, 0.99))
			bind.max.Set(runtimeHistMax(h))
		}
	}
}

// runtimeHistQuantile estimates a quantile of a runtime/metrics
// histogram: the upper bound of the bucket holding the q-th sample.
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Buckets[i+1] is the bucket's upper bound; the last bucket
			// may be +Inf, in which case report its lower bound.
			ub := h.Buckets[i+1]
			if ub > h.Buckets[i] && !isInf(ub) {
				return ub
			}
			return h.Buckets[i]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// runtimeHistMax returns the upper bound of the highest occupied bucket.
func runtimeHistMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			ub := h.Buckets[i+1]
			if isInf(ub) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	return 0
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }

// Names returns the bridged runtime/metrics source names (for tests and
// diagnostics).
func (b *GoRuntimeMetrics) Names() []string {
	if b == nil {
		return nil
	}
	out := make([]string, len(b.samples))
	for i, s := range b.samples {
		out[i] = s.Name
	}
	return out
}

// String summarizes the bridge (diagnostics).
func (b *GoRuntimeMetrics) String() string {
	return "go-runtime-metrics{" + strings.Join(b.Names(), ",") + "}"
}
