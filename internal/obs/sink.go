package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured scheduler event. Time is in the emitting
// layer's clock — simulated seconds for internal/sched, wall seconds
// since run start for internal/rt. Core is -1 for machine-wide events.
type Event struct {
	Time  float64 `json:"t"`
	Name  string  `json:"name"`
	Core  int     `json:"core"`
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
}

// Sink receives structured events. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	Emit(Event)
}

// Ring is a fixed-capacity event sink that keeps the most recent
// events — bounded memory no matter how long a run is.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRing returns a sink holding the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// WriteJSONL writes the retained events as JSON lines.
func (r *Ring) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
