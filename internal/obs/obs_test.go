package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %g, want 3.5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("Value = %g, want 6", got)
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Errorf("Sum = %g, want 105", h.Sum())
	}
	want := []uint64{1, 1, 1, 1} // ≤1, ≤2, ≤4, +Inf (non-cumulative)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if len(exp) != 4 || exp[0] != 1 || exp[3] != 8 {
		t.Errorf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(0, 5, 3)
	if len(lin) != 3 || lin[1] != 5 || lin[2] != 10 {
		t.Errorf("LinearBuckets = %v", lin)
	}
}

// TestNilSafety is the contract the instrumentation sites rely on: a
// nil registry hands out nil handles, and every method on them no-ops.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Counter("c", "").Add(1)
	r.Gauge("g", "").Set(1)
	r.Gauge("g", "").Add(1)
	r.Histogram("h", "", nil).Observe(1)
	r.CounterVec("cv", "", "l").With("x").Inc()
	r.GaugeVec("gv", "", "l").With("x").Set(1)
	r.HistogramVec("hv", "", nil, "l").With("x").Observe(1)
	r.Emit(Event{Name: "e"})
	if r.HasEvents() {
		t.Error("nil registry claims to have events")
	}
	if r.Counter("c", "").Value() != 0 || r.Histogram("h", "", nil).Count() != 0 {
		t.Error("nil metrics should read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

func TestRegistryReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("steals_total", "", "victim")
	v.With("0").Add(2)
	v.With("1").Inc()
	if v.With("0") != v.With("0") {
		t.Error("same label values should return the same child")
	}
	if got := v.With("0").Value(); got != 2 {
		t.Errorf("child value = %g, want 2", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %g, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestRing(t *testing.T) {
	ring := NewRing(3)
	for i := 0; i < 5; i++ {
		ring.Emit(Event{Time: float64(i), Name: "e"})
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Time != float64(i+2) {
			t.Errorf("event %d time = %g, want %d (oldest-first)", i, e.Time, i+2)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{2.5, "2.5"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
