package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentScrapeDuringRecording drives the Prometheus and JSON
// handlers while writer goroutines hammer counters, gauges, fixed and
// log histograms, labeled families and the event ring. Under -race this
// is the proof that a scrape never tears concurrent recording; the
// final scrape must also see exact counter totals.
func TestConcurrentScrapeDuringRecording(t *testing.T) {
	reg := NewRegistry()
	ring := NewRing(256)
	reg.Events = ring
	srv := httptest.NewServer(HandlerWith(reg, HandlerOptions{Pprof: true, GoRuntime: true}))
	defer srv.Close()

	ctr := reg.Counter("scrape_test_total", "writes")
	vec := reg.CounterVec("scrape_test_by_class_total", "writes by class", "class")
	g := reg.Gauge("scrape_test_gauge", "last value")
	fh := reg.Histogram("scrape_test_hist", "fixed", ExpBuckets(1e-6, 2, 20))
	lh := reg.LogHistogramVec("scrape_test_lat_seconds", "log-bucketed", "class", "tenant")

	const writers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: alternate /metrics and /debug/vars until writers finish.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			paths := []string{"/metrics", "/debug/vars"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := srv.Client().Get(srv.URL + paths[(s+i)%2])
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("scrape status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(s)
	}

	classes := []string{"sha1", "lzw", "dmc"}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				ctr.Inc()
				vec.With(classes[i%len(classes)]).Inc()
				g.Set(float64(i))
				fh.Observe(float64(i) * 1e-6)
				lh.With(classes[i%len(classes)], "t0").Observe(float64(i+1) * 1e-5)
				reg.Emit(Event{Name: "w", Core: w, Value: float64(i)})
				if i%256 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	// Quiesced: the final scrape must be exact.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if want := "scrape_test_total 16000"; !strings.Contains(out, want) {
		t.Errorf("final scrape missing %q", want)
	}
	if want := `scrape_test_lat_seconds_count{class="sha1",tenant="t0"}`; !strings.Contains(out, want) {
		t.Errorf("final scrape missing %q", want)
	}
	// The GoRuntime bridge must have produced eewa_go_* gauges.
	if !strings.Contains(out, "eewa_go_goroutines") {
		t.Errorf("GoRuntime bridge produced no eewa_go_goroutines:\n%s", out[:min(len(out), 2000)])
	}

	// JSON view decodes and carries quantiles for the log histogram.
	resp, err = srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	kids, ok := snap["scrape_test_lat_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("vars scrape_test_lat_seconds = %T", snap["scrape_test_lat_seconds"])
	}
	child, ok := kids["class=sha1,tenant=t0"].(map[string]any)
	if !ok {
		t.Fatalf("vars missing sha1/t0 child: %v", kids)
	}
	if child["p99"].(float64) <= 0 {
		t.Errorf("child p99 = %v, want > 0", child["p99"])
	}
}

func TestGoRuntimeMetricsBridge(t *testing.T) {
	reg := NewRegistry()
	b := NewGoRuntimeMetrics(reg)
	if len(b.Names()) == 0 {
		t.Fatal("no runtime metrics supported by this toolchain")
	}
	// Force some allocation and a GC so the gauges have signal.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	runtime.GC()
	runtime.KeepAlive(sink)
	b.Sample()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"eewa_go_goroutines", "eewa_go_heap_objects_bytes", "eewa_go_gc_cycles_total"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("bridge export missing %s\n%s", name, out)
		}
	}
	if v, ok := reg.At("eewa_go_goroutines").(*Gauge); !ok || v.Value() < 1 {
		t.Errorf("eewa_go_goroutines = %v, want ≥ 1", v.Value())
	}
	// Nil bridge and nil registry no-op.
	var nb *GoRuntimeMetrics
	nb.Sample()
	NewGoRuntimeMetrics(nil).Sample()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
