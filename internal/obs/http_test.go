package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler(buildSample()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "jobs_total 3") {
		t.Errorf("/metrics body:\n%s", body)
	}
}

func TestHandlerDebugVars(t *testing.T) {
	reg := buildSample()
	ring := NewRing(8)
	reg.Events = ring
	ring.Emit(Event{Time: 1, Name: "batch", Core: -1, Value: 0.5})

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/debug/vars does not parse: %v", err)
	}
	if snap["jobs_total"] != 3.0 {
		t.Errorf("jobs_total = %v", snap["jobs_total"])
	}
	evs, ok := snap["events"].([]any)
	if !ok || len(evs) != 1 {
		t.Errorf("events = %v", snap["events"])
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", buildSample())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "depth 7") {
		t.Errorf("served metrics:\n%s", body)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Error("server still reachable after stop")
	}
}

// The exposition endpoints must declare their media types — Prometheus
// scrapers key the parser off text/plain; version=0.0.4 — and render
// into a buffer so an export error becomes a 500 rather than a
// truncated 200.
func TestHandlerContentTypes(t *testing.T) {
	srv := httptest.NewServer(Handler(buildSample()))
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":    "text/plain; version=0.0.4; charset=utf-8",
		"/debug/vars": "application/json; charset=utf-8",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != want {
			t.Errorf("%s Content-Type = %q, want %q", path, ct, want)
		}
	}
}

// A nil registry is the documented no-op mode; the handler must still
// serve well-formed (empty) responses, including the events path.
func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d with nil registry", path, resp.StatusCode)
		}
	}
}
