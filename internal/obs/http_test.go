package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler(buildSample()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "jobs_total 3") {
		t.Errorf("/metrics body:\n%s", body)
	}
}

func TestHandlerDebugVars(t *testing.T) {
	reg := buildSample()
	ring := NewRing(8)
	reg.Events = ring
	ring.Emit(Event{Time: 1, Name: "batch", Core: -1, Value: 0.5})

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/debug/vars does not parse: %v", err)
	}
	if snap["jobs_total"] != 3.0 {
		t.Errorf("jobs_total = %v", snap["jobs_total"])
	}
	evs, ok := snap["events"].([]any)
	if !ok || len(evs) != 1 {
		t.Errorf("events = %v", snap["events"])
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", buildSample())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "depth 7") {
		t.Errorf("served metrics:\n%s", body)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Error("server still reachable after stop")
	}
}
