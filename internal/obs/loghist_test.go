package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// oracleQuantile is the sorted-sample definition the estimator is
// checked against: the ceil(q·n)-th smallest sample.
func oracleQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestLogHistogramQuantileAccuracy pins the estimator to a sorted-sample
// oracle across distributions with very different shapes. The bucket
// scheme guarantees ≤ 1/lhSub relative width per bucket, so 15% is a
// conservative relative-error ceiling.
func TestLogHistogramQuantileAccuracy(t *testing.T) {
	rng := xrand.New(7)
	uniform := func() float64 { return 1e-4 + 0.1*rng.Float64() }
	exponential := func() float64 { return -1e-3 * math.Log(1-rng.Float64()) }
	lognormal := func() float64 {
		// Box-Muller from two uniform draws.
		u1, u2 := rng.Float64(), rng.Float64()
		z := math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
		return math.Exp(-7 + 2*z) // median ≈ 0.9 ms, heavy tail
	}
	dists := map[string]func() float64{
		"uniform": uniform, "exponential": exponential, "lognormal": lognormal,
	}
	for name, draw := range dists {
		h := &LogHistogram{}
		samples := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw()
			samples = append(samples, v)
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.10, 0.50, 0.90, 0.95, 0.99, 0.999} {
			want := oracleQuantile(samples, q)
			got := h.Quantile(q)
			if want <= 0 {
				t.Fatalf("%s: oracle q%.3f = %g, want > 0", name, q, want)
			}
			if rel := math.Abs(got-want) / want; rel > 0.15 {
				t.Errorf("%s: q%.3f = %g, oracle %g (rel err %.1f%%)", name, q, got, want, 100*rel)
			}
		}
		if h.Count() != 20000 {
			t.Errorf("%s: count = %d, want 20000", name, h.Count())
		}
	}
}

func TestLogHistogramBounds(t *testing.T) {
	h := &LogHistogram{}
	for _, v := range []float64{0, -1, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3 (underflow values still count)", h.Count())
	}
	if h.Sum() != 0 {
		t.Fatalf("sum = %g, want 0 (non-positive values don't contribute)", h.Sum())
	}
	if q := h.Quantile(0.99); q > math.Ldexp(1, lhMinExp) {
		t.Fatalf("all-underflow q99 = %g, want ≤ 2^%d", q, lhMinExp)
	}
	h.Observe(math.Inf(1))
	if got := h.Quantile(1); got < math.Ldexp(1, lhMaxExp) {
		t.Fatalf("overflow quantile = %g, want ≥ 2^%d", got, lhMaxExp)
	}
	// Every bucket's bounds must tile the positive axis: hi(i) == lo(i+1).
	for i := 0; i < lhBuckets-1; i++ {
		_, hi := lhBounds(i)
		lo, _ := lhBounds(i + 1)
		if hi != lo {
			t.Fatalf("bucket %d hi %g != bucket %d lo %g", i, hi, i+1, lo)
		}
	}
	// And the index function must agree with the bounds.
	rng := xrand.New(3)
	for i := 0; i < 10000; i++ {
		v := math.Ldexp(rng.Float64()+0.5, int(rng.Uint64()%60)-30)
		idx := lhIndex(v)
		lo, hi := lhBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %g indexed to bucket %d [%g, %g)", v, idx, lo, hi)
		}
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a, b, both := &LogHistogram{}, &LogHistogram{}, &LogHistogram{}
	rng := xrand.New(11)
	for i := 0; i < 5000; i++ {
		v := rng.Float64() * 0.01
		a.Observe(v)
		both.Observe(v)
		w := 1 + rng.Float64()
		b.Observe(w)
		both.Observe(w)
	}
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), both.Count())
	}
	if math.Abs(a.Sum()-both.Sum()) > 1e-9*both.Sum() {
		t.Fatalf("merged sum = %g, want %g", a.Sum(), both.Sum())
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
		if got, want := a.Quantile(q), both.Quantile(q); got != want {
			t.Errorf("merged q%.2f = %g, want %g", q, got, want)
		}
	}
}

func TestLogHistogramNilSafe(t *testing.T) {
	var h *LogHistogram
	h.Observe(1)
	h.Merge(&LogHistogram{})
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil LogHistogram must read as zero")
	}
	var v *LogHistogramVec
	v.With("x").Observe(1) // must not panic
	var r *Registry
	if r.LogHistogram("x", "") != nil || r.LogHistogramVec("y", "", "l") != nil || r.At("x") != nil {
		t.Fatal("nil registry constructors must return nil")
	}
}

func TestLogHistogramRegistryExport(t *testing.T) {
	reg := NewRegistry()
	h := reg.LogHistogram("lat_seconds", "End-to-end latency.")
	vec := reg.LogHistogramVec("span_seconds", "Span latency.", "class", "tenant")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-3)
		vec.With("sha1", "t0").Observe(float64(i) * 1e-4)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		"# TYPE span_seconds histogram",
		"lat_seconds_count 100",
		`lat_seconds_bucket{le="+Inf"} 100`,
		`span_seconds_bucket{class="sha1",tenant="t0",le="+Inf"} 100`,
		`span_seconds_count{class="sha1",tenant="t0"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q\n%s", want, out)
		}
	}
	// Cumulative-bucket monotonicity over the emitted lines.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("non-cumulative bucket series: %q after %d", line, last)
		}
		last = n
	}

	// JSON snapshot carries quantiles.
	snap := reg.Snapshot()
	hv, ok := snap["lat_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot lat_seconds = %T, want map", snap["lat_seconds"])
	}
	p50 := hv["p50"].(float64)
	if p50 < 0.040 || p50 > 0.060 {
		t.Errorf("snapshot p50 = %g, want ≈ 0.05", p50)
	}
	// At() reaches both the plain metric and the labeled child.
	if reg.At("lat_seconds") != h {
		t.Error("At(lat_seconds) did not return the registered histogram")
	}
	if reg.At("span_seconds", "sha1", "t0") == nil {
		t.Error("At(span_seconds, sha1, t0) = nil")
	}
	if reg.At("span_seconds", "nope") != nil || reg.At("absent") != nil {
		t.Error("At() must return nil for unknown families/children")
	}
}

// fmtSscan pulls the trailing integer off a "name{labels} N" line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = parseInt(line[i+1:])
	return 1, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotInt
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

var errNotInt = errInt("not an integer")

type errInt string

func (e errInt) Error() string { return string(e) }

// TestLogHistogramConcurrent hammers one histogram from many writers
// while a reader keeps estimating quantiles; run under -race this pins
// the lock-free claim, and the final count must be exact.
func TestLogHistogramConcurrent(t *testing.T) {
	h := &LogHistogram{}
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Quantile(0.99)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			rng := xrand.New(uint64(w + 1))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64())
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count = %d, want %d", h.Count(), writers*per)
	}
}
