// Package obs is the repository's unified observability layer: a
// low-overhead metrics registry (atomic counters, gauges, fixed-bucket
// histograms and labeled families), a structured event sink, a
// Prometheus text-exposition writer and an opt-in net/http endpoint.
//
// Both execution layers — the discrete-event simulator (internal/sched)
// and the live goroutine runtime (internal/rt) — publish into the same
// registry shape, so a sweep, a single simulation and a live run can be
// scraped, diffed and plotted with the same tooling.
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every metric type is nil-safe: methods on
//     a nil *Counter/*Gauge/*Histogram (and Emit on a nil *Registry)
//     are no-ops that neither allocate nor touch shared memory, so an
//     uninstrumented run pays only a nil check per call site.
//  2. Hot-path updates are lock-free. Counters and gauges are single
//     atomic words; histograms are an atomic word per bucket. Locks
//     appear only at registration and export time.
//  3. Export is deterministic: families in registration order, children
//     in first-use order, so text output is diffable across runs.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64. The zero value is
// ready to use; a nil *Counter is a valid no-op.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v (v < 0 is ignored — counters are
// monotone).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous float64 value. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics. Buckets are upper bounds in ascending order; an implicit
// +Inf bucket is always present. A nil *Histogram no-ops.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // len(upper)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n upper bounds starting at start, each factor×
// the previous — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, … .
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// metricKind discriminates family types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindLogHistogram
	// Striped variants (striped.go) are distinct kinds so a name cannot
	// be registered once plain and once striped, but they advertise the
	// plain TYPE — the export surface is identical.
	kindStripedCounter
	kindStripedGauge
	kindShardedLogHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindStripedCounter:
		return "counter"
	case kindGauge, kindStripedGauge:
		return "gauge"
	default:
		// Log-bucketed histograms expose the same cumulative-bucket
		// series as fixed-bucket ones, so both advertise "histogram".
		return "histogram"
	}
}

// family is one named metric family: either a single unlabeled metric
// or a set of labeled children.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string  // empty ⇒ unlabeled
	buckets []float64 // histograms only

	mu       sync.Mutex
	plain    any            // *Counter / *Gauge / *Histogram
	order    []string       // child keys in first-use order
	children map[string]any // label-values key → metric
	values   map[string][]string
}

const labelSep = "\x1f"

// joinLabelValues builds the child map key for a label-value list.
func joinLabelValues(values []string) string { return strings.Join(values, labelSep) }

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := joinLabelValues(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindLogHistogram:
		m = &LogHistogram{}
	default:
		m = newHistogram(f.buckets)
	}
	f.children[key] = m
	f.values[key] = append([]string(nil), values...)
	f.order = append(f.order, key)
	return m
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child for the given label values, creating it on
// first use. A nil *CounterVec returns nil (which no-ops).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values; nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label values; nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Histogram)
}

// Registry holds metric families and an optional event sink. A nil
// *Registry is valid: every constructor returns nil and Emit no-ops,
// which is how instrumented code runs un-observed for free.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family

	// Events, when non-nil, receives structured scheduler events (see
	// Event). Set it before handing the registry to an execution layer;
	// it is read without synchronization on the emit path.
	Events Sink
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// lookup returns the family, creating it on first registration. Kind or
// label mismatches on re-registration panic: they are programming
// errors that would silently corrupt the export otherwise.
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labelNames []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s with %d labels (was %s/%d)",
				name, kind, len(labelNames), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labelNames...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]any{},
		values:   map[string][]string{},
	}
	switch {
	case len(labelNames) > 0:
		// children created on demand
	case kind == kindHistogram:
		f.plain = newHistogram(buckets)
	case kind == kindLogHistogram:
		f.plain = &LogHistogram{}
	case kind == kindGauge:
		f.plain = &Gauge{}
	case kind == kindStripedCounter:
		f.plain = NewStripedCounter(0)
	case kind == kindStripedGauge:
		f.plain = NewStripedGauge(0)
	case kind == kindShardedLogHistogram:
		f.plain = NewShardedLogHistogram(0)
	default:
		f.plain = &Counter{}
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).plain.(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).plain.(*Gauge)
}

// Histogram registers (or fetches) an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, buckets, nil).plain.(*Histogram)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, nil, labelNames)}
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, nil, labelNames)}
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, buckets, labelNames)}
}

// Emit forwards e to the registry's event sink, if any. Nil-safe.
func (r *Registry) Emit(e Event) {
	if r == nil || r.Events == nil {
		return
	}
	r.Events.Emit(e)
}

// HasEvents reports whether an event sink is attached — use it to skip
// building expensive event payloads when nobody is listening.
func (r *Registry) HasEvents() bool { return r != nil && r.Events != nil }
