package obs

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HandlerOptions selects the optional debug surfaces mounted next to
// the metrics endpoints.
type HandlerOptions struct {
	// Pprof mounts the standard net/http/pprof endpoints under
	// /debug/pprof/ — the profile taps the density harness points at a
	// hot run (CPU, heap, block, goroutine).
	Pprof bool
	// GoRuntime bridges runtime/metrics (goroutines, heap bytes, GC
	// cycles/pauses, scheduling latency) into the registry as eewa_go_*
	// gauges, re-sampled immediately before every /metrics and
	// /debug/vars render.
	GoRuntime bool
}

// Handler returns an http.Handler exposing the registry:
//
//	/metrics      — Prometheus text exposition
//	/debug/vars   — JSON snapshot of every family (plus events when the
//	                registry's sink is a *Ring, under "events")
//	/debug/pprof  — the standard Go profiling endpoints
//
// The handler is safe to serve while the registry is being written.
// Handler keeps the historical surface (pprof on, runtime bridge off);
// use HandlerWith to choose.
func Handler(r *Registry) http.Handler {
	return HandlerWith(r, HandlerOptions{Pprof: true})
}

// HandlerWith returns an http.Handler for the registry with the given
// debug surfaces enabled.
func HandlerWith(r *Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	var goMetrics *GoRuntimeMetrics
	if opts.GoRuntime {
		goMetrics = NewGoRuntimeMetrics(r)
	}
	// Both exports render into a buffer first: a render error can then
	// still become a 500 instead of a silently truncated 200 (once body
	// bytes are on the wire the status is committed).
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		goMetrics.Sample()
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		goMetrics.Sample()
		snap := r.Snapshot()
		if r != nil {
			if ring, ok := r.Events.(*Ring); ok {
				snap["events"] = ring.Events()
			}
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, "encoding vars: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts an HTTP server for Handler(r) on addr (":0" picks a free
// port). It returns the bound address and a shutdown function. The
// server runs until the shutdown function is called.
func Serve(addr string, r *Registry) (net.Addr, func() error, error) {
	return ServeWith(addr, r, HandlerOptions{Pprof: true})
}

// ServeWith is Serve with explicit HandlerOptions.
func ServeWith(addr string, r *Registry, opts HandlerOptions) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: HandlerWith(r, opts), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}
