package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one sample line per child,
// histograms as cumulative _bucket/_sum/_count series. Families appear
// in registration order and children in first-use order, so output is
// deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeProm(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	if len(f.labels) == 0 {
		return writeMetricProm(w, f.name, "", f.plain)
	}
	f.mu.Lock()
	type kv struct {
		key string
		m   any
	}
	kids := make([]kv, 0, len(f.order))
	for _, key := range f.order {
		kids = append(kids, kv{key, f.children[key]})
	}
	values := f.values
	f.mu.Unlock()
	for _, kid := range kids {
		if err := writeMetricProm(w, f.name, labelString(f.labels, values[kid.key], ""), kid.m); err != nil {
			return err
		}
	}
	return nil
}

// labelString renders {a="x",b="y"} with an optional extra pair
// appended (used for histogram le labels). Empty input returns "".
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(values[i]))
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func writeMetricProm(w io.Writer, name, labels string, m any) error {
	switch m := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(m.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(m.Value()))
		return err
	case *StripedCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(m.Value()))
		return err
	case *StripedGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(m.Value()))
		return err
	case *ShardedLogHistogram:
		// Merge once, emit as a plain log-histogram series.
		return writeMetricProm(w, name, labels, m.Merged())
	case *Histogram:
		cum := uint64(0)
		// labels here is already rendered "{...}" or ""; rebuild with le.
		base := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		pair := func(le string) string {
			if base == "" {
				return fmt.Sprintf(`{le=%q}`, le)
			}
			return fmt.Sprintf(`{%s,le=%q}`, base, le)
		}
		for i, ub := range m.upper {
			cum += m.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, pair(formatFloat(ub)), cum); err != nil {
				return err
			}
		}
		cum += m.counts[len(m.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, pair("+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, m.Count())
		return err
	case *LogHistogram:
		// Log-bucketed histograms have ~500 fixed buckets; only the
		// occupied ones are emitted (cumulatively, so the series is
		// still a valid Prometheus histogram) to keep scrapes small.
		base := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		pair := func(le string) string {
			if base == "" {
				return fmt.Sprintf(`{le=%q}`, le)
			}
			return fmt.Sprintf(`{%s,le=%q}`, base, le)
		}
		cum := uint64(0)
		var werr error
		m.forEachBucket(func(upper float64, count uint64) {
			cum += count
			if werr != nil || math.IsInf(upper, 1) {
				return // the +Inf series is closed once, below
			}
			_, werr = fmt.Fprintf(w, "%s_bucket%s %d\n", name, pair(formatFloat(upper)), cum)
		})
		if werr != nil {
			return werr
		}
		// Close with the mandatory +Inf bucket. A racing Observe bumps
		// the bucket word before the count word, so take the larger of
		// the two views to keep the series cumulative.
		total := m.Count()
		if cum > total {
			total = cum
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, pair("+Inf"), total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
		return err
	default:
		return fmt.Errorf("obs: unknown metric type %T", m)
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// Snapshot returns every family's current values as a JSON-marshalable
// tree — the payload of the /debug/vars endpoint. Unlabeled metrics map
// name → value; labeled families map name → {"a=x,b=y": value};
// histograms report count, sum and cumulative bucket counts.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if len(f.labels) == 0 {
			out[f.name] = metricValue(f.plain)
			continue
		}
		f.mu.Lock()
		kids := map[string]any{}
		for key, m := range f.children {
			parts := f.values[key]
			pairs := make([]string, len(parts))
			for i, v := range parts {
				pairs[i] = f.labels[i] + "=" + v
			}
			kids[strings.Join(pairs, ",")] = metricValue(m)
		}
		f.mu.Unlock()
		out[f.name] = kids
	}
	return out
}

func metricValue(m any) any {
	switch m := m.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return m.Value()
	case *StripedCounter:
		return m.Value()
	case *StripedGauge:
		return m.Value()
	case *ShardedLogHistogram:
		return metricValue(m.Merged())
	case *Histogram:
		buckets := map[string]uint64{}
		cum := uint64(0)
		for i, ub := range m.upper {
			cum += m.counts[i].Load()
			buckets[formatFloat(ub)] = cum
		}
		buckets["+Inf"] = m.Count()
		return map[string]any{"count": m.Count(), "sum": m.Sum(), "buckets": buckets}
	case *LogHistogram:
		// The JSON view reports the estimated quantiles directly — the
		// payload a CLI summary or the density harness wants — instead
		// of ~500 bucket lines.
		return map[string]any{
			"count": m.Count(),
			"sum":   m.Sum(),
			"p50":   m.Quantile(0.50),
			"p90":   m.Quantile(0.90),
			"p95":   m.Quantile(0.95),
			"p99":   m.Quantile(0.99),
		}
	default:
		return nil
	}
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
