package sweep

import (
	"bytes"
	"strings"
	"testing"
)

func smallGrid() Grid {
	return Grid{
		Benchmarks: []string{"md5"},
		Policies:   []string{"cilk", "eewa"},
		Cores:      []int{8, 16},
		Seeds:      []uint64{1},
	}
}

func TestRunSmallGrid(t *testing.T) {
	recs, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (2 policies × 2 sizes)", len(recs))
	}
	for _, r := range recs {
		if r.Makespan <= 0 || r.Energy <= 0 {
			t.Errorf("%+v degenerate", r)
		}
		if r.Policy == "cilk" && (r.NormTime != 1 || r.NormEnergy != 1) {
			t.Errorf("cilk cell must normalize to 1: %+v", r)
		}
		if r.Policy == "eewa" && r.NormEnergy >= 1 {
			t.Errorf("eewa at %d cores should save energy, got %.3f", r.Cores, r.NormEnergy)
		}
		if r.Runs != 1 {
			t.Errorf("runs = %d, want 1", r.Runs)
		}
	}
	// Sorted by (benchmark, cores, policy).
	if recs[0].Cores != 8 || recs[2].Cores != 16 {
		t.Errorf("records not sorted by cores: %+v", recs)
	}
}

func TestRunDefaults(t *testing.T) {
	g := Grid{Benchmarks: []string{"je"}, Cores: []int{4}, Seeds: []uint64{1}}.withDefaults()
	if len(g.Policies) != 3 {
		t.Errorf("default policies = %v", g.Policies)
	}
	full := Grid{}.withDefaults()
	if len(full.Benchmarks) != 7 || len(full.Seeds) != 3 || full.Cores[0] != 16 {
		t.Errorf("defaults = %+v", full)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Grid{Benchmarks: []string{"nope"}, Seeds: []uint64{1}}); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := Run(Grid{Benchmarks: []string{"md5"}, Policies: []string{"magic"}, Seeds: []uint64{1}}); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestCI95PopulatedWithMultipleSeeds(t *testing.T) {
	recs, err := Run(Grid{
		Benchmarks: []string{"lzw"},
		Policies:   []string{"cilk"},
		Cores:      []int{16},
		Seeds:      []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].MakespanCI <= 0 {
		t.Error("CI should be positive with 3 differing seeds")
	}
}

func TestWriteCSV(t *testing.T) {
	recs, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,policy,cores") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != 11 {
			t.Errorf("row %q has %d commas, want 11", l, n)
		}
	}
}

func TestWriteTable(t *testing.T) {
	recs, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "md5") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

func TestParallelParity(t *testing.T) {
	// The parity contract of the parallel driver: any worker count
	// produces byte-for-byte the cells of the sequential run, modulo
	// the host wall-clock field.
	g := Grid{
		Benchmarks: []string{"md5", "lzw"},
		Policies:   []string{"cilk", "cilk-d", "eewa"},
		Cores:      []int{8},
		Seeds:      []uint64{1, 2},
	}
	seq, err := RunCells(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{2, 8} {
		par, err := RunCells(g, j)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cellsJSON(t, par), cellsJSON(t, seq); got != want {
			t.Errorf("-j %d diverged from -j 1:\n%s\nvs\n%s", j, got, want)
		}
	}
}

// cellsJSON renders cells for parity comparison, zeroing the
// wall-clock field (the only legitimately nondeterministic one).
func cellsJSON(t *testing.T, cells []Cell) string {
	t.Helper()
	c2 := append([]Cell(nil), cells...)
	for i := range c2 {
		c2[i].WallNS = 0
	}
	var buf bytes.Buffer
	if err := WriteCellsJSON(&buf, c2); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunParallelMatchesRun(t *testing.T) {
	g := smallGrid()
	seq, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("record counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("record %d differs:\n%+v\n%+v", i, seq[i], par[i])
		}
	}
}

func TestCellSeedGridShapeIndependent(t *testing.T) {
	// Adding a policy to the grid must not reseed anyone else's cells:
	// the same (benchmark, policy, cores, seed) must produce the same
	// outcome in any grid that contains it.
	small, err := RunCells(Grid{
		Benchmarks: []string{"md5"}, Policies: []string{"eewa"},
		Cores: []int{8}, Seeds: []uint64{1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunCells(Grid{
		Benchmarks: []string{"lzw", "md5"}, Policies: []string{"cilk", "wats", "eewa"},
		Cores: []int{4, 8}, Seeds: []uint64{3, 1},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := small[0]
	for _, c := range big {
		if c.Benchmark == want.Benchmark && c.Policy == want.Policy && c.Cores == want.Cores && c.Seed == want.Seed {
			c.WallNS, want.WallNS = 0, 0
			if c != want {
				t.Errorf("cell outcome depends on grid shape:\n%+v\n%+v", c, want)
			}
			return
		}
	}
	t.Fatal("shared cell not found in the bigger grid")
}

func TestRunCellsErrorDeterministic(t *testing.T) {
	g := Grid{
		Benchmarks: []string{"md5", "nope"},
		Policies:   []string{"cilk"},
		Cores:      []int{4},
		Seeds:      []uint64{1},
	}
	e1, err1 := RunCells(g, 1)
	e8, err8 := RunCells(g, 8)
	if err1 == nil || err8 == nil {
		t.Fatalf("unknown benchmark must error (got %v, %v)", err1, err8)
	}
	if err1.Error() != err8.Error() {
		t.Errorf("error depends on worker count: %q vs %q", err1, err8)
	}
	if e1 != nil || e8 != nil {
		t.Error("failed sweeps must not return cells")
	}
}
