package sweep

import (
	"bytes"
	"strings"
	"testing"
)

func smallGrid() Grid {
	return Grid{
		Benchmarks: []string{"md5"},
		Policies:   []string{"cilk", "eewa"},
		Cores:      []int{8, 16},
		Seeds:      []uint64{1},
	}
}

func TestRunSmallGrid(t *testing.T) {
	recs, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (2 policies × 2 sizes)", len(recs))
	}
	for _, r := range recs {
		if r.Makespan <= 0 || r.Energy <= 0 {
			t.Errorf("%+v degenerate", r)
		}
		if r.Policy == "cilk" && (r.NormTime != 1 || r.NormEnergy != 1) {
			t.Errorf("cilk cell must normalize to 1: %+v", r)
		}
		if r.Policy == "eewa" && r.NormEnergy >= 1 {
			t.Errorf("eewa at %d cores should save energy, got %.3f", r.Cores, r.NormEnergy)
		}
		if r.Runs != 1 {
			t.Errorf("runs = %d, want 1", r.Runs)
		}
	}
	// Sorted by (benchmark, cores, policy).
	if recs[0].Cores != 8 || recs[2].Cores != 16 {
		t.Errorf("records not sorted by cores: %+v", recs)
	}
}

func TestRunDefaults(t *testing.T) {
	g := Grid{Benchmarks: []string{"je"}, Cores: []int{4}, Seeds: []uint64{1}}.withDefaults()
	if len(g.Policies) != 3 {
		t.Errorf("default policies = %v", g.Policies)
	}
	full := Grid{}.withDefaults()
	if len(full.Benchmarks) != 7 || len(full.Seeds) != 3 || full.Cores[0] != 16 {
		t.Errorf("defaults = %+v", full)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Grid{Benchmarks: []string{"nope"}, Seeds: []uint64{1}}); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := Run(Grid{Benchmarks: []string{"md5"}, Policies: []string{"magic"}, Seeds: []uint64{1}}); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestCI95PopulatedWithMultipleSeeds(t *testing.T) {
	recs, err := Run(Grid{
		Benchmarks: []string{"lzw"},
		Policies:   []string{"cilk"},
		Cores:      []int{16},
		Seeds:      []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].MakespanCI <= 0 {
		t.Error("CI should be positive with 3 differing seeds")
	}
}

func TestWriteCSV(t *testing.T) {
	recs, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,policy,cores") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != 11 {
			t.Errorf("row %q has %d commas, want 11", l, n)
		}
	}
}

func TestWriteTable(t *testing.T) {
	recs, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "md5") {
		t.Errorf("table output:\n%s", buf.String())
	}
}
