package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/task"
	"repro/internal/workloads"
)

func smallClusterGrid() ClusterGrid {
	return ClusterGrid{
		Benchmarks:   []string{"md5"},
		Policies:     []string{"cilk", "eewa"},
		Shards:       []int{1, 2},
		Routings:     []string{ClusterRouteClass, ClusterRouteRR},
		LadderSplits: []string{SplitUniform},
		Cores:        []int{8},
		Seeds:        []uint64{1},
	}
}

func TestRunClusterSmallGrid(t *testing.T) {
	cells, err := RunClusterCells(smallClusterGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8 (2 policies × 2 shards × 2 routings)", len(cells))
	}
	for _, c := range cells {
		if c.Makespan <= 0 || c.Energy <= 0 || c.ActiveShards == 0 {
			t.Errorf("degenerate cell %+v", c)
		}
		if c.ActiveShards > c.Shards {
			t.Errorf("more active shards than shards: %+v", c)
		}
		if c.Imbalance < 1 {
			t.Errorf("imbalance %g < 1 (max/mean cannot undercut the mean): %+v", c.Imbalance, c)
		}
		var sum float64
		for _, e := range c.ShardEnergies {
			sum += e
		}
		if diff := sum - c.Energy; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("shard energies sum %g ≠ cell energy %g", sum, c.Energy)
		}
	}
}

// The parity contract the -cluster acceptance clause demands: any
// worker count yields byte-for-byte the sequential cells, modulo wall
// clock.
func TestClusterParallelParity(t *testing.T) {
	g := smallClusterGrid()
	seq, err := RunClusterCells(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{2, 8} {
		par, err := RunClusterCells(g, j)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := clusterJSON(t, par), clusterJSON(t, seq); got != want {
			t.Errorf("-j %d diverged from -j 1:\n%s\nvs\n%s", j, got, want)
		}
	}
}

func clusterJSON(t *testing.T, cells []ClusterCell) string {
	t.Helper()
	c2 := append([]ClusterCell(nil), cells...)
	for i := range c2 {
		c2[i].WallNS = 0
	}
	var buf bytes.Buffer
	if err := WriteClusterCellsJSON(&buf, c2); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// Adding a routing or width to the grid must not reseed anyone else's
// cells — the cluster cell seed derives from identity, not grid shape.
func TestClusterCellSeedGridShapeIndependent(t *testing.T) {
	small, err := RunClusterCells(ClusterGrid{
		Benchmarks: []string{"md5"}, Policies: []string{"eewa"},
		Shards: []int{2}, Routings: []string{ClusterRouteClass},
		LadderSplits: []string{SplitUniform}, Cores: []int{8}, Seeds: []uint64{1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunClusterCells(ClusterGrid{
		Benchmarks: []string{"lzw", "md5"}, Policies: []string{"cilk", "eewa"},
		Shards: []int{1, 2, 4}, Routings: ClusterRoutings(),
		LadderSplits: LadderSplits(), Cores: []int{8}, Seeds: []uint64{3, 1},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := small[0]
	for _, c := range big {
		if c.Benchmark == want.Benchmark && c.Policy == want.Policy &&
			c.Routing == want.Routing && c.LadderSplit == want.LadderSplit &&
			c.Shards == want.Shards && c.Cores == want.Cores && c.Seed == want.Seed {
			c.WallNS, want.WallNS = 0, 0
			if clusterJSON(t, []ClusterCell{c}) != clusterJSON(t, []ClusterCell{want}) {
				t.Errorf("cell outcome depends on grid shape:\n%+v\n%+v", c, want)
			}
			return
		}
	}
	t.Fatal("shared cell not found in the bigger grid")
}

func TestClusterGridValidate(t *testing.T) {
	bad := []ClusterGrid{
		{Shards: []int{0}},
		{Shards: []int{-2}},
		{Cores: []int{0}},
		{Routings: []string{"teleport"}},
		{LadderSplits: []string{"diagonal"}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid grid accepted: %+v", i, g)
		}
	}
	if err := (ClusterGrid{}.withDefaults()).Validate(); err != nil {
		t.Errorf("default grid invalid: %v", err)
	}
	if _, err := RunClusterCells(ClusterGrid{Benchmarks: []string{"md5"}, Shards: []int{0}}, 1); err == nil {
		t.Error("RunClusterCells must validate the grid")
	}
}

// splitWorkload invariants per routing: task conservation within each
// batch, no empty batches, and the policy-specific placement shapes.
func TestSplitWorkload(t *testing.T) {
	b, err := workloads.ByName("md5")
	if err != nil {
		t.Fatal(err)
	}
	w := b.Workload(1)
	total := 0
	for _, batch := range w.Batches {
		total += len(batch.Tasks)
	}
	base := machine.Generic(8)
	mcs := []machine.Config{base, base, base}

	for _, routing := range ClusterRoutings() {
		parts := splitWorkload(w, mcs, routing)
		if len(parts) != 3 {
			t.Fatalf("%s: %d parts", routing, len(parts))
		}
		got := 0
		for i, part := range parts {
			if part == nil {
				continue
			}
			if err := part.Validate(); err != nil {
				t.Errorf("%s shard %d: split produced an invalid workload: %v", routing, i, err)
			}
			for _, batch := range part.Batches {
				if len(batch.Tasks) == 0 {
					t.Errorf("%s shard %d: empty batch survived the split", routing, i)
				}
				got += len(batch.Tasks)
			}
		}
		if got != total {
			t.Errorf("%s: split lost tasks: %d of %d", routing, got, total)
		}
	}

	// Round-robin on a single synthetic batch spreads tasks evenly.
	syn := &task.Workload{Name: "syn", Batches: []task.Batch{{Tasks: make([]task.Task, 9)}}}
	for i := range syn.Batches[0].Tasks {
		syn.Batches[0].Tasks[i] = task.Task{Class: "a", Work: 1e-3}
	}
	parts := splitWorkload(syn, mcs, ClusterRouteRR)
	for i, part := range parts {
		if part == nil || len(part.Batches[0].Tasks) != 3 {
			t.Errorf("rr shard %d got %+v, want 3 tasks", i, part)
		}
	}

	// Class routing keeps a class's tasks on one shard per batch.
	syn2 := &task.Workload{Name: "syn2", Batches: []task.Batch{{Tasks: []task.Task{
		{Class: "a", Work: 4e-3}, {Class: "a", Work: 4e-3},
		{Class: "b", Work: 1e-3}, {Class: "b", Work: 1e-3},
	}}}}
	parts = splitWorkload(syn2, mcs, ClusterRouteClass)
	seen := map[string]int{}
	for i, part := range parts {
		if part == nil {
			continue
		}
		for _, tk := range part.Batches[0].Tasks {
			if prev, ok := seen[tk.Class]; ok && prev != i {
				t.Errorf("class %q split across shards %d and %d", tk.Class, prev, i)
			}
			seen[tk.Class] = i
		}
	}
	if seen["a"] == seen["b"] {
		t.Error("class routing put both classes on one shard with two idle")
	}
}

// A single-shard cluster cell must agree with the flat sweep's grid on
// outcome shape: one active shard holding the whole workload.
func TestClusterSingleShardDegenerates(t *testing.T) {
	cells, err := RunClusterCells(ClusterGrid{
		Benchmarks: []string{"md5"}, Policies: []string{"eewa"},
		Shards: []int{1}, Routings: ClusterRoutings(),
		LadderSplits: []string{SplitUniform}, Cores: []int{8}, Seeds: []uint64{1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All three routings degenerate to the same single-shard placement.
	a := cells[0]
	for _, c := range cells[1:] {
		if c.Makespan != a.Makespan || c.Energy != a.Energy || c.Steals != a.Steals {
			t.Errorf("1-shard outcomes differ across routings:\n%+v\n%+v", a, c)
		}
	}
	if a.ActiveShards != 1 || a.Imbalance != 1 {
		t.Errorf("single-shard cell %+v", a)
	}
}

func TestAggregateClusterNormalization(t *testing.T) {
	// "least" spreads tasks regardless of class mix, so two shards must
	// strictly beat one on makespan even for a single-class benchmark.
	cells, err := RunClusterCells(ClusterGrid{
		Benchmarks: []string{"md5"}, Policies: []string{"eewa"},
		Shards: []int{1, 2}, Routings: []string{ClusterRouteLeast},
		LadderSplits: []string{SplitUniform}, Cores: []int{8}, Seeds: []uint64{1, 2},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := AggregateCluster(cells)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Runs != 2 {
			t.Errorf("runs = %d, want 2 seeds folded: %+v", r.Runs, r)
		}
		switch r.Shards {
		case 1:
			if r.NormTime != 1 || r.NormEnergy != 1 {
				t.Errorf("1-shard row must normalize to itself: %+v", r)
			}
		case 2:
			if r.NormTime <= 0 || r.NormTime >= 1 {
				t.Errorf("2 shards should beat 1 on makespan: norm_time %g", r.NormTime)
			}
			if r.NormEnergy <= 0 {
				t.Errorf("norm energy unset: %+v", r)
			}
		}
	}
}

func TestWriteClusterCSVAndTable(t *testing.T) {
	cells, err := RunClusterCells(smallClusterGrid(), 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := AggregateCluster(cells)
	var csv bytes.Buffer
	if err := WriteClusterCSV(&csv, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(recs)+1 {
		t.Fatalf("CSV lines = %d, want %d", len(lines), len(recs)+1)
	}
	if !strings.HasPrefix(lines[0], "benchmark,policy,routing,ladder_split,shards") {
		t.Errorf("header = %q", lines[0])
	}
	wantCommas := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != wantCommas {
			t.Errorf("row %q has %d commas, want %d", l, n, wantCommas)
		}
	}
	var tbl bytes.Buffer
	if err := WriteClusterTable(&tbl, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "md5") || !strings.Contains(tbl.String(), "shards") {
		t.Errorf("table output:\n%s", tbl.String())
	}
}
