// Package sweep runs policy × benchmark × machine grids and collects
// tidy records — the generalization of the paper's figures into an
// arbitrary design-space exploration (core counts, seeds, policies,
// benchmarks), with CSV export for external plotting.
package sweep

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Grid declares the sweep space. Zero-valued fields get defaults.
type Grid struct {
	// Benchmarks are Table II names; empty = all seven.
	Benchmarks []string
	// Policies are "cilk", "cilk-d", "wats", "eewa"; empty defaults to
	// the Fig. 6 trio (cilk, cilk-d, eewa).
	Policies []string
	// Cores are machine sizes; empty = {16}.
	Cores []int
	// Seeds are per-cell repetitions; empty = {1, 2, 3}.
	Seeds []uint64
}

func (g Grid) withDefaults() Grid {
	if len(g.Benchmarks) == 0 {
		g.Benchmarks = workloads.Names()
	}
	if len(g.Policies) == 0 {
		g.Policies = []string{"cilk", "cilk-d", "eewa"}
	}
	if len(g.Cores) == 0 {
		g.Cores = []int{16}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1, 2, 3}
	}
	return g
}

// Record is one cell of the sweep (seed-averaged).
type Record struct {
	Benchmark string
	Policy    string
	Cores     int
	Runs      int

	// Seed-averaged outcomes.
	Makespan    float64
	MakespanCI  float64 // 95 % half-width
	Energy      float64
	EnergyCI    float64
	Utilization float64
	Steals      float64

	// Normalized against the same-cell Cilk baseline (1.0 for Cilk).
	NormTime   float64
	NormEnergy float64
}

// Run executes the grid. Cells are deterministic per seed; rows come
// back sorted by (benchmark, cores, policy).
func Run(g Grid) ([]Record, error) {
	g = g.withDefaults()
	type cellKey struct {
		bench  string
		cores  int
		policy string
	}
	cells := map[cellKey]*Record{}

	for _, benchName := range g.Benchmarks {
		b, err := workloads.ByName(benchName)
		if err != nil {
			return nil, err
		}
		for _, cores := range g.Cores {
			cfg := machine.Generic(cores)
			for _, policy := range g.Policies {
				var times, energies, utils, steals []float64
				for _, seed := range g.Seeds {
					p, err := newPolicy(policy, cfg)
					if err != nil {
						return nil, err
					}
					params := sched.DefaultParams()
					params.Seed = seed
					res, err := sched.Run(cfg, b.Workload(seed), p, params)
					if err != nil {
						return nil, fmt.Errorf("sweep: %s/%s/%d seed %d: %w", benchName, policy, cores, seed, err)
					}
					times = append(times, res.Makespan)
					energies = append(energies, res.Energy)
					utils = append(utils, res.Utilization())
					steals = append(steals, float64(res.Steals))
				}
				cells[cellKey{benchName, cores, policy}] = &Record{
					Benchmark:   benchName,
					Policy:      policy,
					Cores:       cores,
					Runs:        len(g.Seeds),
					Makespan:    stats.Mean(times),
					MakespanCI:  stats.CI95(times),
					Energy:      stats.Mean(energies),
					EnergyCI:    stats.CI95(energies),
					Utilization: stats.Mean(utils),
					Steals:      stats.Mean(steals),
				}
			}
		}
	}

	// Normalize each (benchmark, cores) against its Cilk cell when one
	// exists.
	var out []Record
	for key, rec := range cells {
		base, ok := cells[cellKey{key.bench, key.cores, "cilk"}]
		if ok && base.Makespan > 0 {
			rec.NormTime = rec.Makespan / base.Makespan
			rec.NormEnergy = rec.Energy / base.Energy
		}
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		if out[i].Cores != out[j].Cores {
			return out[i].Cores < out[j].Cores
		}
		return out[i].Policy < out[j].Policy
	})
	return out, nil
}

func newPolicy(name string, cfg machine.Config) (sched.Policy, error) {
	return policy.New(name, cfg)
}

// WriteCSV emits the records with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	if _, err := fmt.Fprintln(w, "benchmark,policy,cores,runs,makespan_s,makespan_ci95,energy_j,energy_ci95,utilization,steals,norm_time,norm_energy"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.6f,%.6f,%.2f,%.2f,%.4f,%.1f,%.4f,%.4f\n",
			r.Benchmark, r.Policy, r.Cores, r.Runs,
			r.Makespan, r.MakespanCI, r.Energy, r.EnergyCI,
			r.Utilization, r.Steals, r.NormTime, r.NormEnergy); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders an aligned text table of the records.
func WriteTable(w io.Writer, records []Record) error {
	if _, err := fmt.Fprintf(w, "%-8s %-7s %6s %12s %12s %8s %8s %8s\n",
		"bench", "policy", "cores", "time (s)", "energy (J)", "util", "norm t", "norm E"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(w, "%-8s %-7s %6d %12.4f %12.1f %8.2f %8.3f %8.3f\n",
			r.Benchmark, r.Policy, r.Cores, r.Makespan, r.Energy,
			r.Utilization, r.NormTime, r.NormEnergy); err != nil {
			return err
		}
	}
	return nil
}
