// Package sweep runs policy × benchmark × machine grids and collects
// tidy records — the generalization of the paper's figures into an
// arbitrary design-space exploration (core counts, seeds, policies,
// benchmarks), with CSV export for external plotting.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// Grid declares the sweep space. Zero-valued fields get defaults.
type Grid struct {
	// Benchmarks are Table II names; empty = all seven.
	Benchmarks []string
	// Policies are "cilk", "cilk-d", "wats", "eewa"; empty defaults to
	// the Fig. 6 trio (cilk, cilk-d, eewa).
	Policies []string
	// Cores are machine sizes; empty = {16}.
	Cores []int
	// Seeds are per-cell repetitions; empty = {1, 2, 3}.
	Seeds []uint64
}

func (g Grid) withDefaults() Grid {
	if len(g.Benchmarks) == 0 {
		g.Benchmarks = workloads.Names()
	}
	if len(g.Policies) == 0 {
		g.Policies = []string{"cilk", "cilk-d", "eewa"}
	}
	if len(g.Cores) == 0 {
		g.Cores = []int{16}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1, 2, 3}
	}
	return g
}

// Record is one cell of the sweep (seed-averaged).
type Record struct {
	Benchmark string
	Policy    string
	Cores     int
	Runs      int

	// Seed-averaged outcomes.
	Makespan    float64
	MakespanCI  float64 // 95 % half-width
	Energy      float64
	EnergyCI    float64
	Utilization float64
	Steals      float64

	// Normalized against the same-cell Cilk baseline (1.0 for Cilk).
	NormTime   float64
	NormEnergy float64
}

// Cell is one (benchmark, policy, cores, seed) simulation: the unit the
// parallel driver fans out. Outcomes are deterministic functions of the
// identity fields alone — every RNG a cell consumes is derived from
// (Seed, identity), never from shared mutable state — so a sweep's
// cells are bit-identical no matter how many workers run them or in
// what order they are scheduled. WallNS is the one exception: it is
// host wall time, reported for profiling and excluded from parity
// comparisons.
type Cell struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	Cores     int    `json:"cores"`
	Seed      uint64 `json:"seed"`

	Makespan    float64 `json:"makespan_s"`
	Energy      float64 `json:"energy_j"`
	Utilization float64 `json:"utilization"`
	Steals      int     `json:"steals"`
	// WallNS is the host wall-clock the cell's simulation took, in
	// nanoseconds (not deterministic; zero it before parity diffs).
	WallNS int64 `json:"wall_ns"`
}

// id hashes the cell's identity — benchmark, policy and core count, but
// deliberately not its position in any particular grid — so the engine
// seed below does not depend on how the enumeration happened to be
// shaped (adding a policy to the grid must not reseed everyone else's
// cells).
func (c *Cell) id() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(c.Benchmark); i++ {
		h = (h ^ uint64(c.Benchmark[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(c.Policy); i++ {
		h = (h ^ uint64(c.Policy[i])) * prime
	}
	h = (h ^ 0xff) * prime
	return (h ^ uint64(c.Cores)) * prime
}

// enumerate lists the grid's cells in canonical order: benchmark, then
// cores, then policy, then seed — the historical sequential loop nest.
func enumerate(g Grid) []Cell {
	cells := make([]Cell, 0, len(g.Benchmarks)*len(g.Cores)*len(g.Policies)*len(g.Seeds))
	for _, bench := range g.Benchmarks {
		for _, cores := range g.Cores {
			for _, pol := range g.Policies {
				for _, seed := range g.Seeds {
					cells = append(cells, Cell{Benchmark: bench, Policy: pol, Cores: cores, Seed: seed})
				}
			}
		}
	}
	return cells
}

// run executes one cell. The workload is generated from the raw grid
// seed — every policy in a (benchmark, cores, seed) comparison must
// face the byte-identical task stream or the normalized columns compare
// different workloads — while the engine's victim-selection stream is
// split per cell identity, so no two cells share an RNG stream.
func (c Cell) run() (Cell, error) {
	b, err := workloads.ByName(c.Benchmark)
	if err != nil {
		return c, err
	}
	cfg := machine.Generic(c.Cores)
	p, err := policy.New(c.Policy, cfg)
	if err != nil {
		return c, err
	}
	params := sched.DefaultParams()
	params.Seed = xrand.Split(c.Seed, c.id())
	start := time.Now()
	res, err := sched.Run(cfg, b.Workload(c.Seed), p, params)
	if err != nil {
		return c, fmt.Errorf("sweep: %s/%s/%d seed %d: %w", c.Benchmark, c.Policy, c.Cores, c.Seed, err)
	}
	c.WallNS = time.Since(start).Nanoseconds()
	c.Makespan = res.Makespan
	c.Energy = res.Energy
	c.Utilization = res.Utilization()
	c.Steals = res.Steals
	return c, nil
}

// runPool executes run over items on a pool of `workers` goroutines
// (0 or less means GOMAXPROCS) and returns results in input order.
// Each worker claims the next unstarted item off a shared atomic
// cursor and writes its result into the item's own slot, so the merge
// is a no-op and the output is identical for every worker count,
// including 1. On error the first failing item in input order wins
// (also independent of scheduling). Both the flat policy sweep and the
// cluster topology sweep fan out through here.
func runPool[T any](items []T, workers int, run func(T) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]T, len(items))
	errs := make([]error, len(items))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i], errs[i] = run(items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunCells executes the grid's cells on a pool of `workers` goroutines
// (0 or less means GOMAXPROCS) and returns them in canonical
// enumeration order, bit-identical — modulo WallNS — for every worker
// count.
func RunCells(g Grid, workers int) ([]Cell, error) {
	g = g.withDefaults()
	return runPool(enumerate(g), workers, Cell.run)
}

// Run executes the grid sequentially. Cells are deterministic per seed;
// rows come back sorted by (benchmark, cores, policy).
func Run(g Grid) ([]Record, error) { return RunParallel(g, 1) }

// RunParallel executes the grid on `workers` goroutines (see RunCells)
// and aggregates the cells into seed-averaged Records. The records are
// bit-identical for every worker count.
func RunParallel(g Grid, workers int) ([]Record, error) {
	cells, err := RunCells(g, workers)
	if err != nil {
		return nil, err
	}
	return Aggregate(cells), nil
}

// Aggregate folds per-seed cells into seed-averaged records, normalized
// against the same-(benchmark, cores) Cilk record when one exists, and
// sorted by (benchmark, cores, policy). Aggregation order follows the
// cells' order, so canonical cell input yields canonical records.
func Aggregate(cells []Cell) []Record {
	type cellKey struct {
		bench  string
		cores  int
		policy string
	}
	groups := map[cellKey]*Record{}
	samples := map[cellKey]*struct{ times, energies, utils, steals []float64 }{}
	for _, c := range cells {
		key := cellKey{c.Benchmark, c.Cores, c.Policy}
		s := samples[key]
		if s == nil {
			s = &struct{ times, energies, utils, steals []float64 }{}
			samples[key] = s
			groups[key] = &Record{Benchmark: c.Benchmark, Policy: c.Policy, Cores: c.Cores}
		}
		s.times = append(s.times, c.Makespan)
		s.energies = append(s.energies, c.Energy)
		s.utils = append(s.utils, c.Utilization)
		s.steals = append(s.steals, float64(c.Steals))
	}
	for key, rec := range groups {
		s := samples[key]
		rec.Runs = len(s.times)
		rec.Makespan = stats.Mean(s.times)
		rec.MakespanCI = stats.CI95(s.times)
		rec.Energy = stats.Mean(s.energies)
		rec.EnergyCI = stats.CI95(s.energies)
		rec.Utilization = stats.Mean(s.utils)
		rec.Steals = stats.Mean(s.steals)
	}

	// Normalize each (benchmark, cores) against its Cilk cell when one
	// exists.
	var out []Record
	for key, rec := range groups {
		base, ok := groups[cellKey{key.bench, key.cores, "cilk"}]
		if ok && base.Makespan > 0 {
			rec.NormTime = rec.Makespan / base.Makespan
			rec.NormEnergy = rec.Energy / base.Energy
		}
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		if out[i].Cores != out[j].Cores {
			return out[i].Cores < out[j].Cores
		}
		return out[i].Policy < out[j].Policy
	})
	return out
}

// WriteCellsJSON emits the per-cell results as an indented JSON array —
// the machine-readable sweep output, including each cell's host wall
// time for profiling the parallel driver.
func WriteCellsJSON(w io.Writer, cells []Cell) error {
	return writeJSONArray(w, cells)
}

func writeJSONArray[T any](w io.Writer, items []T) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(items)
}

// WriteCSV emits the records with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	if _, err := fmt.Fprintln(w, "benchmark,policy,cores,runs,makespan_s,makespan_ci95,energy_j,energy_ci95,utilization,steals,norm_time,norm_energy"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.6f,%.6f,%.2f,%.2f,%.4f,%.1f,%.4f,%.4f\n",
			r.Benchmark, r.Policy, r.Cores, r.Runs,
			r.Makespan, r.MakespanCI, r.Energy, r.EnergyCI,
			r.Utilization, r.Steals, r.NormTime, r.NormEnergy); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders an aligned text table of the records.
func WriteTable(w io.Writer, records []Record) error {
	if _, err := fmt.Fprintf(w, "%-8s %-7s %6s %12s %12s %8s %8s %8s\n",
		"bench", "policy", "cores", "time (s)", "energy (J)", "util", "norm t", "norm E"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(w, "%-8s %-7s %6d %12.4f %12.1f %8.2f %8.3f %8.3f\n",
			r.Benchmark, r.Policy, r.Cores, r.Makespan, r.Energy,
			r.Utilization, r.NormTime, r.NormEnergy); err != nil {
			return err
		}
	}
	return nil
}
