// Cluster topology sweep: the paper's policy × benchmark grid lifted
// to cluster scope. A cluster cell simulates N runtime shards fed by a
// routing policy — the same class/rr/least rules internal/serve's
// router applies to live jobs — so routing policies are compared
// cell-for-cell exactly like scheduling policies already are. Every
// cell is a deterministic function of its identity fields: the
// workload comes from the raw grid seed (all topologies face the
// byte-identical task stream) and each shard's engine stream is split
// from the cell identity via xrand.Split, so sweeps are byte-identical
// for every worker count.
package sweep

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// Routing-policy and ladder-split identifiers for the topology axes.
// The routing names deliberately match internal/serve's RouteClass /
// RouteRR / RouteLeast so a sweep row names the policy a live router
// would run.
const (
	ClusterRouteClass = "class"
	ClusterRouteRR    = "rr"
	ClusterRouteLeast = "least"

	// SplitUniform gives every shard the base machine's full ladder;
	// SplitTiered hands shard i a ladder with the top i rungs dropped
	// (machine.Tiered), making the cluster heterogeneous.
	SplitUniform = "uniform"
	SplitTiered  = "tiered"
)

// ClusterRoutings returns the canonical routing-policy names.
func ClusterRoutings() []string {
	return []string{ClusterRouteClass, ClusterRouteRR, ClusterRouteLeast}
}

// LadderSplits returns the canonical ladder-split names.
func LadderSplits() []string { return []string{SplitUniform, SplitTiered} }

// ClusterGrid declares the cluster topology sweep space. Zero-valued
// fields get defaults.
type ClusterGrid struct {
	// Benchmarks are Table II names; empty = all seven.
	Benchmarks []string
	// Policies are the per-shard scheduling policies; empty = {cilk,
	// eewa}.
	Policies []string
	// Shards are the cluster widths to sweep; empty = {1, 2, 4}.
	Shards []int
	// Routings are ClusterRoutings() names; empty = all three.
	Routings []string
	// LadderSplits are LadderSplits() names; empty = {uniform}.
	LadderSplits []string
	// Cores are per-shard machine sizes; empty = {16}.
	Cores []int
	// Seeds are per-cell repetitions; empty = {1, 2, 3}.
	Seeds []uint64
}

func (g ClusterGrid) withDefaults() ClusterGrid {
	if len(g.Benchmarks) == 0 {
		g.Benchmarks = workloads.Names()
	}
	if len(g.Policies) == 0 {
		g.Policies = []string{"cilk", "eewa"}
	}
	if len(g.Shards) == 0 {
		g.Shards = []int{1, 2, 4}
	}
	if len(g.Routings) == 0 {
		g.Routings = ClusterRoutings()
	}
	if len(g.LadderSplits) == 0 {
		g.LadderSplits = []string{SplitUniform}
	}
	if len(g.Cores) == 0 {
		g.Cores = []int{16}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1, 2, 3}
	}
	return g
}

// Validate rejects topology axes the sweep cannot run: non-positive
// shard counts or core counts, and unknown routing or ladder-split
// names. The CLIs call this before spawning workers so a typo is a
// usage error, not a mid-sweep failure.
func (g ClusterGrid) Validate() error {
	for _, n := range g.Shards {
		if n <= 0 {
			return fmt.Errorf("sweep: shard count must be positive, got %d", n)
		}
	}
	for _, n := range g.Cores {
		if n <= 0 {
			return fmt.Errorf("sweep: cores must be positive, got %d", n)
		}
	}
	for _, r := range g.Routings {
		if !contains(ClusterRoutings(), r) {
			return fmt.Errorf("sweep: unknown routing %q (want one of %v)", r, ClusterRoutings())
		}
	}
	for _, s := range g.LadderSplits {
		if !contains(LadderSplits(), s) {
			return fmt.Errorf("sweep: unknown ladder split %q (want one of %v)", s, LadderSplits())
		}
	}
	return nil
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// ClusterCell is one (benchmark, policy, topology, seed) cluster
// simulation. Like Cell, every outcome is a deterministic function of
// the identity fields alone; WallNS is host wall time and excluded
// from parity comparisons.
type ClusterCell struct {
	Benchmark   string `json:"benchmark"`
	Policy      string `json:"policy"`
	Routing     string `json:"routing"`
	LadderSplit string `json:"ladder_split"`
	Shards      int    `json:"shards"`
	Cores       int    `json:"cores"` // per shard
	Seed        uint64 `json:"seed"`

	// Makespan is the slowest shard's execution time: shards run their
	// batch sequences independently (the router imposes no cluster-wide
	// barrier), so the cluster finishes when the last shard does.
	Makespan float64 `json:"makespan_s"`
	// Energy is summed over the shards that received work; a shard
	// routed nothing runs nothing and draws nothing.
	Energy      float64 `json:"energy_j"`
	Utilization float64 `json:"utilization"` // core-second weighted
	Steals      int     `json:"steals"`
	// Imbalance is max/mean shard makespan over active shards (1.0 =
	// perfectly balanced) — the routing quality signal.
	Imbalance float64 `json:"imbalance"`
	// ActiveShards counts shards that received at least one task.
	ActiveShards int `json:"active_shards"`

	ShardMakespans []float64 `json:"shard_makespans_s"`
	ShardEnergies  []float64 `json:"shard_energies_j"`

	WallNS int64 `json:"wall_ns"`
}

// id hashes the cell's topology identity — everything but the seed and
// its position in any particular grid, for the same reason Cell.id
// omits grid shape: adding a routing to the grid must not reseed
// everyone else's cells. Routing and ladder split only enter the hash
// when they can matter (more than one shard); at one shard every
// routing degenerates to the same placement, and hashing the name
// would fork their RNG streams and break the shared 1-shard baseline
// the aggregation normalizes against.
func (c *ClusterCell) id() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
		h = (h ^ 0xff) * prime
	}
	mix(c.Benchmark)
	mix(c.Policy)
	if c.Shards > 1 {
		mix(c.Routing)
		mix(c.LadderSplit)
	}
	h = (h ^ uint64(c.Shards)) * prime
	return (h ^ uint64(c.Cores)) * prime
}

// enumerateCluster lists the grid's cells in canonical order:
// benchmark, cores, shards, ladder split, routing, policy, seed.
func enumerateCluster(g ClusterGrid) []ClusterCell {
	var cells []ClusterCell
	for _, bench := range g.Benchmarks {
		for _, cores := range g.Cores {
			for _, shards := range g.Shards {
				for _, split := range g.LadderSplits {
					for _, routing := range g.Routings {
						for _, pol := range g.Policies {
							for _, seed := range g.Seeds {
								cells = append(cells, ClusterCell{
									Benchmark: bench, Policy: pol, Routing: routing,
									LadderSplit: split, Shards: shards, Cores: cores, Seed: seed,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// shardMachines builds each shard's machine config for the split.
func shardMachines(split string, shards, cores int) []machine.Config {
	base := machine.Generic(cores)
	mcs := make([]machine.Config, shards)
	for i := range mcs {
		if split == SplitTiered {
			mcs[i] = machine.Tiered(base, i)
		} else {
			mcs[i] = base
		}
	}
	return mcs
}

// splitWorkload routes w's tasks across shards batch by batch,
// mirroring the serve router's policies on a known (offline) task
// stream:
//
//   - class: class groups go whole to the shard that minimizes its
//     speed-weighted load, heaviest group first — the placement a
//     plan-aware router converges to when every shard knows the class
//     mix (LPT over class groups, weighted by each shard's fastest
//     frequency);
//   - rr: tasks round-robin over shards, blind to class and load;
//   - least: each task to the shard with the least speed-weighted
//     load.
//
// Batches are barriers within a shard but not across shards, so each
// batch's tasks are balanced independently. Shards routed no task in a
// batch simply skip it; a shard routed nothing at all stays idle.
func splitWorkload(w *task.Workload, mcs []machine.Config, routing string) []*task.Workload {
	shards := len(mcs)
	if shards == 1 {
		// One shard takes the stream as-is. The class split below would
		// regroup tasks by class (harmless balance-wise, but it reorders
		// the batch), and the 1-shard cell must be the routing-independent
		// baseline.
		return []*task.Workload{w}
	}
	speeds := make([]float64, shards)
	for i, mc := range mcs {
		speeds[i] = mc.Freqs[0]
	}
	parts := make([][]task.Batch, shards)

	for _, b := range w.Batches {
		assigned := make([][]task.Task, shards)
		loads := make([]float64, shards)
		cheapest := func(extra float64) int {
			best, bestCost := 0, 0.0
			for i := 0; i < shards; i++ {
				cost := (loads[i] + extra) / speeds[i]
				if i == 0 || cost < bestCost {
					best, bestCost = i, cost
				}
			}
			return best
		}
		switch routing {
		case ClusterRouteRR:
			for ti, t := range b.Tasks {
				assigned[ti%shards] = append(assigned[ti%shards], t)
			}
		case ClusterRouteLeast:
			for _, t := range b.Tasks {
				i := cheapest(t.Work)
				assigned[i] = append(assigned[i], t)
				loads[i] += t.Work
			}
		default: // ClusterRouteClass
			type group struct {
				class string
				work  float64
				tasks []task.Task
			}
			byClass := map[string]*group{}
			var order []*group
			for _, t := range b.Tasks {
				g := byClass[t.Class]
				if g == nil {
					g = &group{class: t.Class}
					byClass[t.Class] = g
					order = append(order, g)
				}
				g.work += t.Work
				g.tasks = append(g.tasks, t)
			}
			sort.SliceStable(order, func(a, b int) bool {
				if order[a].work != order[b].work {
					return order[a].work > order[b].work
				}
				return order[a].class < order[b].class
			})
			for _, g := range order {
				i := cheapest(g.work)
				assigned[i] = append(assigned[i], g.tasks...)
				loads[i] += g.work
			}
		}
		for i := 0; i < shards; i++ {
			if len(assigned[i]) > 0 {
				parts[i] = append(parts[i], task.Batch{Tasks: assigned[i]})
			}
		}
	}

	out := make([]*task.Workload, shards)
	for i := 0; i < shards; i++ {
		if len(parts[i]) == 0 {
			continue
		}
		out[i] = &task.Workload{
			Name:    fmt.Sprintf("%s/shard%d", w.Name, i),
			Batches: parts[i],
		}
	}
	return out
}

// run executes one cluster cell: split the workload, simulate every
// active shard on its own machine with its own split RNG stream, and
// roll the shard results up.
func (c ClusterCell) run() (ClusterCell, error) {
	b, err := workloads.ByName(c.Benchmark)
	if err != nil {
		return c, err
	}
	mcs := shardMachines(c.LadderSplit, c.Shards, c.Cores)
	// The workload comes from the raw grid seed so every topology in a
	// (benchmark, cores, seed) comparison faces the byte-identical task
	// stream; only the split differs.
	parts := splitWorkload(b.Workload(c.Seed), mcs, c.Routing)

	cellSeed := xrand.Split(c.Seed, c.id())
	c.ShardMakespans = make([]float64, c.Shards)
	c.ShardEnergies = make([]float64, c.Shards)
	var busy, denom float64
	start := time.Now()
	for i, part := range parts {
		if part == nil {
			continue
		}
		p, err := policy.New(c.Policy, mcs[i])
		if err != nil {
			return c, err
		}
		params := sched.DefaultParams()
		// Same derivation the serve router uses for shard runtimes:
		// shard 0 keeps the cell stream, shard i>0 splits off it.
		params.Seed = cellSeed
		if i > 0 {
			params.Seed = xrand.Split(cellSeed, uint64(i))
		}
		res, err := sched.Run(mcs[i], part, p, params)
		if err != nil {
			return c, fmt.Errorf("sweep: %s/%s %s/%s shard %d/%d seed %d: %w",
				c.Benchmark, c.Policy, c.Routing, c.LadderSplit, i, c.Shards, c.Seed, err)
		}
		c.ActiveShards++
		c.ShardMakespans[i] = res.Makespan
		c.ShardEnergies[i] = res.Energy
		if res.Makespan > c.Makespan {
			c.Makespan = res.Makespan
		}
		c.Energy += res.Energy
		c.Steals += res.Steals
		busy += res.BusyTime
		denom += res.BusyTime + res.SpinTime + res.HaltTime
	}
	c.WallNS = time.Since(start).Nanoseconds()
	if denom > 0 {
		c.Utilization = busy / denom
	}
	if c.ActiveShards > 0 {
		mean := 0.0
		for _, m := range c.ShardMakespans {
			mean += m
		}
		mean /= float64(c.ActiveShards)
		if mean > 0 {
			c.Imbalance = c.Makespan / mean
		}
	}
	return c, nil
}

// RunClusterCells executes the grid's cells on a pool of `workers`
// goroutines (0 or less means GOMAXPROCS) through the same
// atomic-cursor pool the flat sweep uses, so the output is
// byte-identical — modulo WallNS — for every worker count. The grid is
// validated first.
func RunClusterCells(g ClusterGrid, workers int) ([]ClusterCell, error) {
	g = g.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return runPool(enumerateCluster(g), workers, ClusterCell.run)
}

// ClusterRecord is one seed-averaged topology row, normalized against
// the same-(benchmark, policy, cores) single-shard cell when the grid
// has one — the scaling question ("what did adding shards buy?") the
// cluster sweep exists to answer.
type ClusterRecord struct {
	Benchmark   string
	Policy      string
	Routing     string
	LadderSplit string
	Shards      int
	Cores       int
	Runs        int

	Makespan    float64
	Energy      float64
	Utilization float64
	Imbalance   float64

	// Normalized against the shards=1 row of the same (benchmark,
	// policy, cores, ladder split); 0 when the grid has no such row.
	NormTime   float64
	NormEnergy float64
}

// AggregateCluster folds per-seed cluster cells into seed-averaged
// records, sorted by (benchmark, cores, shards, ladder split, routing,
// policy).
func AggregateCluster(cells []ClusterCell) []ClusterRecord {
	type key struct {
		bench, pol, routing, split string
		shards, cores              int
	}
	type acc struct {
		rec                         ClusterRecord
		time, energy, util, imbalance float64
	}
	accs := map[key]*acc{}
	var order []key
	for _, c := range cells {
		k := key{c.Benchmark, c.Policy, c.Routing, c.LadderSplit, c.Shards, c.Cores}
		a := accs[k]
		if a == nil {
			a = &acc{rec: ClusterRecord{
				Benchmark: c.Benchmark, Policy: c.Policy, Routing: c.Routing,
				LadderSplit: c.LadderSplit, Shards: c.Shards, Cores: c.Cores,
			}}
			accs[k] = a
			order = append(order, k)
		}
		a.rec.Runs++
		a.time += c.Makespan
		a.energy += c.Energy
		a.util += c.Utilization
		a.imbalance += c.Imbalance
	}
	for _, a := range accs {
		n := float64(a.rec.Runs)
		a.rec.Makespan = a.time / n
		a.rec.Energy = a.energy / n
		a.rec.Utilization = a.util / n
		a.rec.Imbalance = a.imbalance / n
	}
	out := make([]ClusterRecord, 0, len(order))
	for _, k := range order {
		rec := accs[k].rec
		// With one shard every routing degenerates to the same placement;
		// normalize against this topology's own routing row so the
		// baseline always exists when shards=1 is in the grid.
		if base, ok := accs[key{k.bench, k.pol, k.routing, k.split, 1, k.cores}]; ok && base.rec.Makespan > 0 {
			rec.NormTime = rec.Makespan / base.rec.Makespan
			rec.NormEnergy = rec.Energy / base.rec.Energy
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		if a.Shards != b.Shards {
			return a.Shards < b.Shards
		}
		if a.LadderSplit != b.LadderSplit {
			return a.LadderSplit < b.LadderSplit
		}
		if a.Routing != b.Routing {
			return a.Routing < b.Routing
		}
		return a.Policy < b.Policy
	})
	return out
}

// WriteClusterCSV emits the records with a header row.
func WriteClusterCSV(w io.Writer, records []ClusterRecord) error {
	if _, err := fmt.Fprintln(w, "benchmark,policy,routing,ladder_split,shards,cores,runs,makespan_s,energy_j,utilization,imbalance,norm_time,norm_energy"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%d,%.6f,%.2f,%.4f,%.4f,%.4f,%.4f\n",
			r.Benchmark, r.Policy, r.Routing, r.LadderSplit, r.Shards, r.Cores, r.Runs,
			r.Makespan, r.Energy, r.Utilization, r.Imbalance, r.NormTime, r.NormEnergy); err != nil {
			return err
		}
	}
	return nil
}

// WriteClusterTable renders an aligned text table of the records.
func WriteClusterTable(w io.Writer, records []ClusterRecord) error {
	if _, err := fmt.Fprintf(w, "%-8s %-7s %-6s %-8s %6s %6s %12s %12s %8s %8s %8s\n",
		"bench", "policy", "route", "split", "shards", "cores", "time (s)", "energy (J)", "imbal", "norm t", "norm E"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(w, "%-8s %-7s %-6s %-8s %6d %6d %12.4f %12.1f %8.3f %8.3f %8.3f\n",
			r.Benchmark, r.Policy, r.Routing, r.LadderSplit, r.Shards, r.Cores,
			r.Makespan, r.Energy, r.Imbalance, r.NormTime, r.NormEnergy); err != nil {
			return err
		}
	}
	return nil
}

// WriteClusterCellsJSON emits the per-cell results as an indented JSON
// array, the machine-readable cluster sweep output.
func WriteClusterCellsJSON(w io.Writer, cells []ClusterCell) error {
	return writeJSONArray(w, cells)
}
