// Package stats provides the small set of statistics helpers used by the
// EEWA experiment harness: means, variance, confidence intervals,
// normalization against a baseline, and fixed-width histograms.
//
// All functions are pure and operate on float64 slices; none of them
// mutate their arguments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when xs has fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on an empty slice because a
// minimum of nothing is a caller bug, not a recoverable condition.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the median of xs (average of the two central elements
// for even lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Normalize returns xs scaled so that base maps to 1.0. A zero base
// yields a slice of zeros rather than Inf, because the experiment tables
// treat an absent baseline as "no data".
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean of xs, using the normal approximation (z = 1.96). The paper
// averages 100 runs per benchmark, so the normal approximation is the
// appropriate model here.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// GeoMean returns the geometric mean of xs. Non-positive inputs panic:
// the harness only ever geo-means normalized times/energies, which are
// strictly positive by construction.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Histogram bins xs into nbins equal-width buckets over [lo, hi].
// Values outside the range are clamped into the first/last bucket so a
// histogram always accounts for every sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with nbins buckets spanning
// [lo, hi]. nbins must be positive and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: nbins must be positive, got %d", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: invalid range [%g, %g]", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Total returns the number of samples accounted for by the histogram.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// ArgMax returns the index of the fullest bucket (first one on ties).
func (h *Histogram) ArgMax() int {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}
