package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEq(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %g, want %g", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic dataset is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEq(got, want, 1e-12) {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g, want 7", got)
	}
	if got := Sum(xs); got != 9 {
		t.Errorf("Sum = %g, want 9", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) should panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Max(nil) should panic")
		}
	}()
	Max(nil)
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %g, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %g, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty Median = %g, want 0", got)
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 4)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	zero := Normalize([]float64{1, 2}, 0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize with zero base should yield zeros, got %v", zero)
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of singleton should be 0")
	}
	xs := []float64{10, 12, 9, 11, 10, 12, 9, 11}
	ci := CI95(xs)
	if ci <= 0 {
		t.Errorf("CI95 = %g, want > 0", ci)
	}
	// Wider data → wider interval.
	wide := []float64{0, 22, -2, 24, 0, 22, -2, 24}
	if CI95(wide) <= ci {
		t.Error("CI95 should grow with spread")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEq(got, 4, 1e-12) {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with non-positive input should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -5, 42}
	h, err := NewHistogram(xs, 0, 1, 4)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if h.Total() != len(xs) {
		t.Errorf("Total = %d, want %d (clamping must not drop samples)", h.Total(), len(xs))
	}
	// -5 clamps into bucket 0; 42 clamps into bucket 3.
	if h.Counts[0] != 3 { // 0.1, 0.2, -5
		t.Errorf("bucket 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[3] != 2 { // 0.9, 42
		t.Errorf("bucket 3 = %d, want 2", h.Counts[3])
	}
	if h.ArgMax() != 0 {
		t.Errorf("ArgMax = %d, want 0", h.ArgMax())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("nbins=0 should error")
	}
	if _, err := NewHistogram(nil, 1, 1, 4); err == nil {
		t.Error("hi<=lo should error")
	}
}

// Property: the mean lies within [min, max] for any non-empty input.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: normalizing by the slice's own mean gives mean 1.
func TestNormalizeSelfMeanProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if x > 0.001 && x < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return almostEq(Mean(Normalize(clean, m)), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
