//go:build eewa_check

package serve

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// Cluster-wide energy closure under the invariant build: for every
// shard attributed + overhead equals that shard's total (the batchEnd
// accumulation is exact, not approximate), the shard totals sum to the
// cluster TotalJ, and the roll-up agrees with each shard runtime's own
// energy account.
func TestEnergyRollupCloses(t *testing.T) {
	s, ts := testServer(t, func(c *Config) {
		c.Shards = 3
		c.Workers = 2
		c.Invariants = true
		c.FlushEvery = 5 * time.Millisecond
		c.QueueDepth = 4096
		c.MaxInFlight = 4096
	})

	funcs := []string{"sha1", "md5", "lzw", "dmc"}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				resp, body := submit(t, ts.URL, JobRequest{
					Tenant: fmt.Sprintf("t%d", g), Func: funcs[(g+i)%len(funcs)],
					Count: 3, SizeBytes: 8 << 10, Seed: uint64(g*100 + i),
				})
				if resp.StatusCode != 200 {
					t.Errorf("status %d: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	wg.Wait()
	drain(t, s)

	roll := s.EnergyRollup()
	if roll.TotalJ <= 0 {
		t.Fatalf("cluster ran work but TotalJ = %g", roll.TotalJ)
	}
	const relTol = 1e-9
	closeEnough := func(a, b float64) bool {
		return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
	}
	var sumTotal, sumAttr, sumOver float64
	for _, se := range roll.Shards {
		if !closeEnough(se.AttributedJ+se.OverheadJ, se.TotalJ) {
			t.Errorf("shard %d: attributed %g + overhead %g ≠ total %g",
				se.Shard, se.AttributedJ, se.OverheadJ, se.TotalJ)
		}
		// The roll-up is accumulated at batch barriers from the same
		// BatchStats the runtime folds into its own account.
		if rtE := s.shards[se.Shard].rt.Stats().Energy; !closeEnough(se.TotalJ, rtE) {
			t.Errorf("shard %d: roll-up total %g ≠ runtime energy %g", se.Shard, se.TotalJ, rtE)
		}
		sumTotal += se.TotalJ
		sumAttr += se.AttributedJ
		sumOver += se.OverheadJ
	}
	if !closeEnough(sumTotal, roll.TotalJ) || !closeEnough(sumAttr, roll.AttributedJ) || !closeEnough(sumOver, roll.OverheadJ) {
		t.Errorf("cluster sums don't close: shards (%g, %g, %g) vs roll-up (%g, %g, %g)",
			sumTotal, sumAttr, sumOver, roll.TotalJ, roll.AttributedJ, roll.OverheadJ)
	}
	if !closeEnough(roll.AttributedJ+roll.OverheadJ, roll.TotalJ) {
		t.Errorf("cluster closure broken: attributed %g + overhead %g ≠ total %g",
			roll.AttributedJ, roll.OverheadJ, roll.TotalJ)
	}
	for i, sh := range s.shards {
		if vs := sh.rt.Violations(); len(vs) != 0 {
			t.Errorf("shard %d invariant violations: %v", i, vs)
		}
	}
}
