// Package serve turns the live runtime (internal/rt) into a
// long-running, request-driven service: an HTTP/JSON front end that
// accepts job submissions, batches them into iterations, and executes
// them under any of the four policies of internal/policy.
//
// The paper's execution model is batch-synchronous: "programs launch
// tasks in batches ... and wait for all tasks to complete before the
// next batch". A serving workload arrives one request at a time, so
// this package supplies the missing admission layer:
//
//   - per-tenant bounded queues — a tenant can hold at most
//     Config.QueueDepth queued tasks; overflow is rejected immediately
//     with HTTP 429 and a Retry-After hint (backpressure, never
//     unbounded buffering);
//   - a per-shard in-flight budget (Config.MaxInFlight) across all
//     tenants, bounding queued + running tasks and therefore memory;
//   - an interval batcher per shard: admitted jobs accumulate for
//     Config.FlushEvery (or until Config.MaxBatch tasks are waiting,
//     whichever is first) and then run as one rt.RunBatch iteration —
//     exactly the batch boundary at which EEWA's frequency adjuster
//     plans;
//   - per-request deadlines: a job whose deadline passes while it is
//     still queued is dropped at batch formation (never started), and
//     tasks already placed into a batch are withdrawn through the
//     runtime's Task.Cancelled hook;
//   - graceful drain: Drain stops admission (503 for new submissions),
//     flushes every queued job into final batches, waits for the
//     barrier, and returns — no admitted task is lost or duplicated
//     (the internal/check task-conservation invariant is enforceable
//     via Config.Invariants).
//
// Since the routing-tier refactor the Server is a router over
// Config.Shards runtime shards. Each shard is the full pipeline above
// — its own runtime, frequency ladder, profile, batcher and energy
// account — and the router places each admitted job with the paper's
// class rule lifted to cluster scope: a class goes to the shard whose
// current plan has headroom for it, an unknown class to the shard with
// the fastest ladder, with backpressure-aware spillover across the
// remaining healthy shards. The default single-shard configuration is
// decision- and wire-identical to the pre-router server. See
// router.go for placement and DESIGN.md §11 for semantics.
//
// Everything observable is exported through internal/obs under the
// eewa_serve_* namespace alongside the runtime's eewa_rt_* metrics, so
// one scrape shows the queue and the machine it feeds. Families are
// cluster totals; the multi-shard extras live under
// eewa_serve_router_*.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/rt"
	"repro/internal/xrand"
)

// Config configures a Server.
type Config struct {
	// Workers is the number of runtime worker goroutines ("cores") per
	// shard.
	Workers int
	// Machine supplies the frequency ladder and power model (core count
	// is overridden by Workers). The zero value defaults to
	// machine.Opteron16(). With Shards > 1 every shard uses this machine
	// unless ShardMachines overrides it.
	Machine machine.Config
	// Policy is the canonical scheduling-policy identifier
	// (policy.IDs: cilk, cilk-d, wats, eewa). Empty defaults to eewa.
	Policy string
	// Offline, when non-nil, is an offline workload profile (paper
	// §IV-D) handed to the EEWA policy so the first batch already runs
	// downscaled. It is validated against the machine's ladder at New
	// time; an invalid snapshot is a construction error, never a silent
	// no-op. With Shards > 1 it applies to every shard unless
	// ShardOfflines overrides it.
	Offline *profile.Snapshot
	// Seed drives the runtime's victim selection. Shard 0 uses it
	// verbatim (single-shard parity); shard i>0 derives its stream with
	// xrand.Split(Seed, i).
	Seed uint64

	// Shards is the number of runtime shards behind the router
	// (default 1). Each shard has its own runtime, batcher, admission
	// bounds and energy account.
	Shards int
	// Routing picks the placement policy over shards: RouteClass
	// (default — the paper's class rule at cluster scope), RouteRR, or
	// RouteLeast. Irrelevant with one shard.
	Routing string
	// ShardMachines, when non-empty, gives each shard its own machine
	// (ladder heterogeneity — e.g. a tiered cluster where shard 0 keeps
	// the full ladder and later shards run truncated ones). Length must
	// equal Shards.
	ShardMachines []machine.Config
	// ShardOfflines, when non-empty, gives each shard its own offline
	// profile (nil entries mean "none"). Length must equal Shards.
	ShardOfflines []*profile.Snapshot

	// MaxBatch is the most tasks packed into one iteration (default
	// 64). A single job may not exceed it.
	MaxBatch int
	// FlushEvery is the batching interval (default 25ms): queued jobs
	// wait at most this long before an iteration starts.
	FlushEvery time.Duration
	// QueueDepth is the per-tenant, per-shard bound on queued tasks
	// (default 128).
	QueueDepth int
	// MaxInFlight is the per-shard bound on admitted-but-unfinished
	// tasks across all tenants (default 512).
	MaxInFlight int
	// AdmissionStripes is the number of independently locked admission
	// stripes per shard (default GOMAXPROCS rounded up to a power of
	// two, capped at 16). Tenants hash onto stripes, so concurrent
	// submitters of different tenants admit without sharing a lock; the
	// batcher merges stripes by admission sequence number, so batch
	// composition is identical to a single global FIFO. 1 restores the
	// single-lock layout.
	AdmissionStripes int
	// RetryAfter is the hint returned with 429/503 responses (default
	// 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration

	// Clock overrides the service's time source: admission timestamps,
	// deadline arithmetic in newJob, and the queued-expiry and
	// mid-batch-cancellation checks all read it. Nil means time.Now.
	// Trace replay (internal/traffic) injects a virtual clock here so
	// deadline outcomes are a function of the trace alone, not of host
	// scheduling. With a non-nil Clock the HTTP handler's wall-clock
	// early-504 timer is disabled — queued expiry is then decided only
	// at batch formation, in virtual time.
	Clock func() time.Time
	// ManualFlush disables the interval batcher: no ticker goroutine
	// runs, and batches form only when Flush is called, on the caller's
	// goroutine. This is the lockstep discipline trace replay uses for
	// bit-exact outcome logs; Drain still flushes the backlog.
	ManualFlush bool

	// Obs, when non-nil, receives the eewa_serve_* metrics and is also
	// wired into the runtime (eewa_rt_*).
	Obs *obs.Registry
	// GoMetrics additionally bridges runtime/metrics (goroutines, heap,
	// GC pauses, scheduling latency) into the /metrics and /debug/vars
	// endpoints as eewa_go_* gauges. Off by default; it only matters
	// when Obs is set.
	GoMetrics bool
	// Invariants enables the runtime's internal/check batch invariants
	// (task conservation, energy identity, plan feasibility).
	Invariants bool
}

func (c *Config) setDefaults() {
	if c.Policy == "" {
		c.Policy = policy.IDEEWA
	}
	if c.Machine.Cores == 0 && c.Machine.Freqs == nil {
		c.Machine = machine.Opteron16()
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Routing == "" {
		c.Routing = RouteClass
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 25 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.AdmissionStripes <= 0 {
		n := runtime.GOMAXPROCS(0)
		stripes := 1
		for stripes < n && stripes < 16 {
			stripes <<= 1
		}
		c.AdmissionStripes = stripes
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Stats is a point-in-time snapshot of the service counters, served at
// /v1/stats. Counts are cluster totals; per-shard slices are at
// /v1/shards.
type Stats struct {
	Policy    string `json:"policy"`
	Workers   int    `json:"workers"`
	Draining  bool   `json:"draining"`
	Queued    int    `json:"queued_tasks"`
	Inflight  int    `json:"inflight_tasks"`
	Admitted  uint64 `json:"admitted_jobs"`
	Completed uint64 `json:"completed_jobs"`
	Rejected  uint64 `json:"rejected_jobs"`
	Timeouts  uint64 `json:"timeout_jobs"`
	Batches   uint64 `json:"batches"`
	Tasks     uint64 `json:"tasks_run"`
	Cancelled uint64 `json:"tasks_cancelled"`
}

// Server is the job-submission service: the routing tier over the
// cluster's runtime shards. Build one with New, mount Handler on an
// http.Server, and call Drain before exiting.
type Server struct {
	cfg    Config
	shards []*shard
	so     *serveObs
	ro     *routerObs // nil with one shard: no router-only families

	mu       sync.Mutex
	rejected uint64 // jobs refused at admission (router-level counter)
	fastFail uint64 // jobs 504-fast-failed at admission (deadline already past)

	draining atomic.Bool // cluster-wide drain (Drain); shards drain individually too

	jobSeq  uint64
	rr      atomic.Uint64 // round-robin cursor for RouteRR
	jobPool sync.Pool     // *job — pooled submissions (see job.go)
	tenants tenantTable   // interned tenant strings for the fast decoder
	static  staticBodies  // precomputed canonical error responses (encode.go)
}

// New validates cfg, builds the shards and starts their batchers.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("serve: shards must be positive, got %d", cfg.Shards)
	}
	if !validRouting(cfg.Routing) {
		return nil, fmt.Errorf("serve: unknown routing policy %q (want one of %v)", cfg.Routing, RoutingPolicies())
	}
	if len(cfg.ShardMachines) != 0 && len(cfg.ShardMachines) != cfg.Shards {
		return nil, fmt.Errorf("serve: %d shard machines for %d shards", len(cfg.ShardMachines), cfg.Shards)
	}
	if len(cfg.ShardOfflines) != 0 && len(cfg.ShardOfflines) != cfg.Shards {
		return nil, fmt.Errorf("serve: %d shard profiles for %d shards", len(cfg.ShardOfflines), cfg.Shards)
	}
	s := &Server{cfg: cfg}
	so := newServeObs(cfg.Obs)
	s.so = &so
	s.static.init(cfg.RetryAfter)
	if cfg.Shards > 1 {
		s.ro = newRouterObs(cfg.Obs)
	}
	for i := 0; i < cfg.Shards; i++ {
		mc := cfg.Machine
		if len(cfg.ShardMachines) > 0 {
			mc = cfg.ShardMachines[i]
		}
		off := cfg.Offline
		if len(cfg.ShardOfflines) > 0 {
			off = cfg.ShardOfflines[i]
		}
		seed := cfg.Seed
		if i > 0 {
			// Independent victim-selection streams per shard, derived the
			// same way sweep cells derive theirs. Shard 0 keeps the raw
			// seed so one shard reproduces the pre-router server bit for
			// bit.
			seed = xrand.Split(cfg.Seed, uint64(i))
		}
		sh, err := newShard(shardConfig{
			index:       i,
			total:       cfg.Shards,
			workers:     cfg.Workers,
			mc:          mc,
			policy:      cfg.Policy,
			offline:     off,
			seed:        seed,
			maxBatch:    cfg.MaxBatch,
			flushEvery:  cfg.FlushEvery,
			queueDepth:  cfg.QueueDepth,
			maxInFlight: cfg.MaxInFlight,
			invariants:  cfg.Invariants,
			reg:         cfg.Obs,
			clock:       s.now,
			manualFlush: cfg.ManualFlush,
			stripes:     cfg.AdmissionStripes,
		}, s.so, s.ro)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// now is the service's time source (Config.Clock, default time.Now).
func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// Runtime exposes shard 0's live runtime (for Violations() and Stats()
// in tests and diagnostics; with one shard it is the cluster).
func (s *Server) Runtime() *rt.Runtime { return s.shards[0].rt }

// Violations collects the accumulated invariant violations across
// every shard runtime (empty unless Config.Invariants, or the
// eewa_check build tag, is on).
func (s *Server) Violations() []check.Violation {
	var out []check.Violation
	for _, sh := range s.shards {
		out = append(out, sh.rt.Violations()...)
	}
	return out
}

// Shards returns the cluster's shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Stats returns a cluster-total snapshot of the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Policy:   s.cfg.Policy,
		Workers:  s.cfg.Workers,
		Draining: s.draining.Load(),
		Rejected: s.rejected,
		// Admission fast-fails (deadline already past, 504 before
		// queuing) are timeouts that never reached a shard.
		Timeouts: s.fastFail,
	}
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.addTo(&st)
	}
	return st
}

// Rejection describes a submission refused without being queued: the
// HTTP status the handler reports (400 invalid, 429/503 backpressure,
// 504 deadline already expired at admission), the metrics reason
// label, and a human-readable message.
type Rejection struct {
	Status int    // HTTP status (400, 429, 503 or 504)
	Reason string // metrics label
	Msg    string
}

// noteRejection does the router-level bookkeeping for a refused
// submission (shared by the HTTP handler and Submit). A 504 fast-fail
// is accounted as a timeout — the job's deadline had already expired
// when it arrived — while everything else is a rejection.
func (s *Server) noteRejection(rej *Rejection) {
	if rej.Status == 504 {
		s.mu.Lock()
		s.fastFail++
		s.mu.Unlock()
		s.so.timeouts.Inc()
		s.so.cancelled.With("expired_at_admission").Inc()
		return
	}
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
	s.so.rejected.With(rej.Reason).Inc()
}

// Pending is a job Submit queued; Wait blocks until a batch delivers
// its outcome (with Config.ManualFlush that means a Flush or Drain
// call, so always Flush before Wait in lockstep replay).
type Pending struct{ j *job }

// Wait returns the job's final HTTP-equivalent status, the result body
// (non-nil on 200 and on mid-batch 504 partials), and the error
// message for non-200 outcomes. The result is copied out of the pooled
// job, which Wait releases — call it exactly once per Pending.
func (p *Pending) Wait() (status int, res *JobResult, errMsg string) {
	o := <-p.j.done
	if o.res != nil {
		cp := *o.res
		if o.res.Shard != nil {
			idx := *o.res.Shard
			cp.Shard = &idx
		}
		res = &cp
	}
	status, errMsg = o.status, o.err
	p.j.release()
	return status, res, errMsg
}

// Submit validates, admits and routes one job through exactly the
// admission pipeline the HTTP handler uses, without the HTTP layer —
// the programmatic seam trace replay drives. It never blocks on
// execution: a queued job is returned as a Pending, a refused one as a
// Rejection (400 invalid, 429/503 backpressure, 504 deadline already
// expired). Counters and metrics advance exactly as for POST /v1/jobs.
func (s *Server) Submit(req JobRequest) (*Pending, *Rejection) {
	j, err := s.newJob(req)
	if err != nil {
		s.so.rejected.With("invalid").Inc()
		return nil, &Rejection{Status: 400, Reason: "invalid", Msg: err.Error()}
	}
	if rej := s.route(j); rej != nil {
		s.noteRejection(rej)
		j.release()
		return nil, rej
	}
	return &Pending{j: j}, nil
}

// Flush forms and runs batches from every shard's current backlog, on
// the calling goroutine, until the backlog is empty. It is the batch
// boundary under Config.ManualFlush (without it the interval batcher
// already does this; calling Flush then would race the batchers, so
// Flush panics to make the misuse loud).
func (s *Server) Flush() {
	if !s.cfg.ManualFlush {
		panic("serve: Flush without Config.ManualFlush (the interval batcher owns the runtime)")
	}
	for _, sh := range s.shards {
		sh.flushAll()
	}
}

// LatencySummary is the point-in-time percentile view of the service's
// request latency, aggregated over every class, tenant and shard since
// start. All values are seconds.
type LatencySummary struct {
	Jobs     uint64  `json:"jobs"`
	E2EMean  float64 `json:"e2e_mean_s"`
	E2EP50   float64 `json:"e2e_p50_s"`
	E2EP95   float64 `json:"e2e_p95_s"`
	E2EP99   float64 `json:"e2e_p99_s"`
	QueueP50 float64 `json:"queue_p50_s"`
	QueueP95 float64 `json:"queue_p95_s"`
	QueueP99 float64 `json:"queue_p99_s"`
}

// LatencySummary snapshots the end-to-end and queue-wait distributions
// across all shards. It covers every job a batch processed (completed
// or timed out); jobs dropped unstarted are excluded. Safe to call
// concurrently with the batchers — the histograms are lock-free.
func (s *Server) LatencySummary() LatencySummary {
	if len(s.shards) == 1 {
		sh := s.shards[0]
		return latencySummaryFrom(&sh.latE2E, &sh.latQueue)
	}
	var e2e, queue obs.LogHistogram
	for _, sh := range s.shards {
		e2e.Merge(&sh.latE2E)
		queue.Merge(&sh.latQueue)
	}
	return latencySummaryFrom(&e2e, &queue)
}

func latencySummaryFrom(e2e, queue *obs.LogHistogram) LatencySummary {
	return LatencySummary{
		Jobs:     e2e.Count(),
		E2EMean:  e2e.Mean(),
		E2EP50:   e2e.Quantile(0.50),
		E2EP95:   e2e.Quantile(0.95),
		E2EP99:   e2e.Quantile(0.99),
		QueueP50: queue.Quantile(0.50),
		QueueP95: queue.Quantile(0.95),
		QueueP99: queue.Quantile(0.99),
	}
}

// Drain stops admission cluster-wide, flushes every queued job on
// every shard into final batches, waits for the last barriers and
// stops the batchers. It is what the SIGTERM path of cmd/eewa-serve
// calls; it is safe to call more than once. The context bounds the
// wait — on expiry the batchers keep draining in the background, but
// Drain returns the context error.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if len(s.shards) == 1 {
		return s.shards[0].drain(ctx)
	}
	errs := make(chan error, len(s.shards))
	for _, sh := range s.shards {
		go func(sh *shard) { errs <- sh.drain(ctx) }(sh)
	}
	var first error
	for range s.shards {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
