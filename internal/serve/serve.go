// Package serve turns the live runtime (internal/rt) into a
// long-running, request-driven service: an HTTP/JSON front end that
// accepts job submissions, batches them into iterations, and executes
// them under any of the four policies of internal/policy.
//
// The paper's execution model is batch-synchronous: "programs launch
// tasks in batches ... and wait for all tasks to complete before the
// next batch". A serving workload arrives one request at a time, so
// this package supplies the missing admission layer:
//
//   - per-tenant bounded queues — a tenant can hold at most
//     Config.QueueDepth queued tasks; overflow is rejected immediately
//     with HTTP 429 and a Retry-After hint (backpressure, never
//     unbounded buffering);
//   - a global in-flight budget (Config.MaxInFlight) across all
//     tenants, bounding queued + running tasks and therefore memory;
//   - an interval batcher: admitted jobs accumulate for
//     Config.FlushEvery (or until Config.MaxBatch tasks are waiting,
//     whichever is first) and then run as one rt.RunBatch iteration —
//     exactly the batch boundary at which EEWA's frequency adjuster
//     plans;
//   - per-request deadlines: a job whose deadline passes while it is
//     still queued is dropped at batch formation (never started), and
//     tasks already placed into a batch are withdrawn through the
//     runtime's Task.Cancelled hook;
//   - graceful drain: Drain stops admission (503 for new submissions),
//     flushes every queued job into final batches, waits for the
//     barrier, and returns — no admitted task is lost or duplicated
//     (the internal/check task-conservation invariant is enforceable
//     via Config.Invariants).
//
// Everything observable is exported through internal/obs under the
// eewa_serve_* namespace alongside the runtime's eewa_rt_* metrics, so
// one scrape shows the queue and the machine it feeds.
package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/rt"
)

// Config configures a Server.
type Config struct {
	// Workers is the number of runtime worker goroutines ("cores").
	Workers int
	// Machine supplies the frequency ladder and power model (core count
	// is overridden by Workers). The zero value defaults to
	// machine.Opteron16().
	Machine machine.Config
	// Policy is the canonical scheduling-policy identifier
	// (policy.IDs: cilk, cilk-d, wats, eewa). Empty defaults to eewa.
	Policy string
	// Offline, when non-nil, is an offline workload profile (paper
	// §IV-D) handed to the EEWA policy so the first batch already runs
	// downscaled. It is validated against the machine's ladder at New
	// time; an invalid snapshot is a construction error, never a silent
	// no-op.
	Offline *profile.Snapshot
	// Seed drives the runtime's victim selection.
	Seed uint64

	// MaxBatch is the most tasks packed into one iteration (default
	// 64). A single job may not exceed it.
	MaxBatch int
	// FlushEvery is the batching interval (default 25ms): queued jobs
	// wait at most this long before an iteration starts.
	FlushEvery time.Duration
	// QueueDepth is the per-tenant bound on queued tasks (default 128).
	QueueDepth int
	// MaxInFlight is the global bound on admitted-but-unfinished tasks
	// across all tenants (default 512).
	MaxInFlight int
	// RetryAfter is the hint returned with 429/503 responses (default
	// 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration

	// Obs, when non-nil, receives the eewa_serve_* metrics and is also
	// wired into the runtime (eewa_rt_*).
	Obs *obs.Registry
	// GoMetrics additionally bridges runtime/metrics (goroutines, heap,
	// GC pauses, scheduling latency) into the /metrics and /debug/vars
	// endpoints as eewa_go_* gauges. Off by default; it only matters
	// when Obs is set.
	GoMetrics bool
	// Invariants enables the runtime's internal/check batch invariants
	// (task conservation, energy identity, plan feasibility).
	Invariants bool
}

func (c *Config) setDefaults() {
	if c.Policy == "" {
		c.Policy = policy.IDEEWA
	}
	if c.Machine.Cores == 0 && c.Machine.Freqs == nil {
		c.Machine = machine.Opteron16()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 25 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Stats is a point-in-time snapshot of the service counters, served at
// /v1/stats.
type Stats struct {
	Policy    string `json:"policy"`
	Workers   int    `json:"workers"`
	Draining  bool   `json:"draining"`
	Queued    int    `json:"queued_tasks"`
	Inflight  int    `json:"inflight_tasks"`
	Admitted  uint64 `json:"admitted_jobs"`
	Completed uint64 `json:"completed_jobs"`
	Rejected  uint64 `json:"rejected_jobs"`
	Timeouts  uint64 `json:"timeout_jobs"`
	Batches   uint64 `json:"batches"`
	Tasks     uint64 `json:"tasks_run"`
	Cancelled uint64 `json:"tasks_cancelled"`
}

// Server is the job-submission service. Build one with New, mount
// Handler on an http.Server, and call Drain before exiting.
type Server struct {
	cfg Config
	rt  *rt.Runtime

	mu       sync.Mutex
	pending  []*job
	queued   map[string]int // tenant → queued task count
	queuedN  int            // total queued tasks
	inflight int            // queued + running tasks
	draining bool
	stats    Stats

	wake    chan struct{}
	drained chan struct{}

	jobSeq uint64
	so     serveObs

	// latE2E and latQueue aggregate end-to-end and queue-wait latency
	// across every class and tenant, for LatencySummary. They are plain
	// LogHistograms (not registry families), so they work — and cost
	// nothing extra — whether or not Obs is set.
	latE2E   obs.LogHistogram
	latQueue obs.LogHistogram

	// arena recycles the per-batch []rt.Task slab across flushes; only
	// the batcher goroutine leases from it, and the slab is returned
	// once the batch's outcomes have been delivered.
	arena rt.TaskArena
}

// New validates cfg, builds the runtime and starts the batcher.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	mc := cfg.Machine
	mc.Cores = cfg.Workers
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	pol, err := policy.New(cfg.Policy, mc)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Offline != nil {
		if cfg.Policy != policy.IDEEWA {
			return nil, fmt.Errorf("serve: offline profile only applies to the %s policy, not %s", policy.IDEEWA, cfg.Policy)
		}
		// Reject a corrupt snapshot loudly at startup: the EEWA policy
		// would otherwise quietly ignore it (or worse, pre-fix, build a
		// CC table without the indivisibility bound).
		if err := cfg.Offline.Validate(mc.Freqs); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		pol.(*policy.EEWA).Offline = cfg.Offline
	}
	s := &Server{
		cfg:     cfg,
		queued:  map[string]int{},
		wake:    make(chan struct{}, 1),
		drained: make(chan struct{}),
		so:      newServeObs(cfg.Obs),
	}
	rcfg := rt.Config{
		Workers:    cfg.Workers,
		Machine:    cfg.Machine,
		Impl:       pol,
		Seed:       cfg.Seed,
		Obs:        cfg.Obs,
		Invariants: cfg.Invariants,
		Hooks: rt.Hooks{
			BatchEnd: func(_ int, bs rt.BatchStats) {
				s.so.batches.Inc()
				s.so.batchSecs.Observe(bs.Wall.Seconds())
				s.so.batchTasks.Observe(float64(bs.Tasks))
			},
		},
	}
	s.rt, err = rt.New(rcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.stats.Policy = cfg.Policy
	s.stats.Workers = cfg.Workers
	go s.batcher()
	return s, nil
}

// Runtime exposes the underlying live runtime (for Violations() and
// Stats() in tests and diagnostics).
func (s *Server) Runtime() *rt.Runtime { return s.rt }

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queuedN
	st.Inflight = s.inflight
	st.Draining = s.draining
	return st
}

// rejection describes a refused submission.
type rejection struct {
	status int    // HTTP status (429 or 503)
	reason string // metrics label
	msg    string
}

// admit applies the admission policy to j: reject while draining,
// reject when the tenant's queue or the global in-flight budget is
// full, otherwise enqueue. Backpressure is immediate — nothing blocks.
func (s *Server) admit(j *job) *rejection {
	n := len(j.tasks)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		return &rejection{status: 503, reason: "draining",
			msg: "server is draining, not admitting new jobs"}
	case s.queued[j.tenant]+n > s.cfg.QueueDepth:
		return &rejection{status: 429, reason: "tenant_queue_full",
			msg: fmt.Sprintf("tenant %q queue full (%d/%d tasks)", j.tenant, s.queued[j.tenant], s.cfg.QueueDepth)}
	case s.inflight+n > s.cfg.MaxInFlight:
		return &rejection{status: 429, reason: "inflight_budget",
			msg: fmt.Sprintf("in-flight budget full (%d/%d tasks)", s.inflight, s.cfg.MaxInFlight)}
	}
	j.enqueued = time.Now()
	s.pending = append(s.pending, j)
	s.queued[j.tenant] += n
	s.queuedN += n
	s.inflight += n
	s.stats.Admitted++
	s.so.admitted.Inc()
	s.so.queueDepth.With(j.tenant).Set(float64(s.queued[j.tenant]))
	s.so.inflight.Set(float64(s.inflight))
	if s.queuedN >= s.cfg.MaxBatch {
		s.wakeBatcher()
	}
	return nil
}

func (s *Server) wakeBatcher() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// batcher is the single goroutine that forms and executes iterations.
// rt.Runtime is batch-structured and not concurrency-safe, so all
// RunBatch calls happen here.
func (s *Server) batcher() {
	tick := time.NewTicker(s.cfg.FlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.wake:
		case <-tick.C:
		}
		for s.flushOnce() {
		}
		s.mu.Lock()
		done := s.draining && len(s.pending) == 0
		s.mu.Unlock()
		if done {
			close(s.drained)
			return
		}
	}
}

// flushOnce forms one batch from the head of the queue and runs it.
// It reports whether any job left the queue (batched or expired), so
// the batcher can loop until the backlog is gone.
func (s *Server) flushOnce() bool {
	now := time.Now()
	var batch []*job
	var expired []*job
	tasks := 0

	s.mu.Lock()
	for len(s.pending) > 0 {
		j := s.pending[0]
		n := len(j.tasks)
		if len(batch) > 0 && tasks+n > s.cfg.MaxBatch {
			break
		}
		s.pending = s.pending[1:]
		s.queued[j.tenant] -= n
		s.queuedN -= n
		s.so.queueDepth.With(j.tenant).Set(float64(s.queued[j.tenant]))
		if j.expiredBy(now) {
			// Deadline passed while queued: the job is dropped before
			// any task starts.
			s.inflight -= n
			s.stats.Timeouts++
			expired = append(expired, j)
			continue
		}
		batch = append(batch, j)
		tasks += n
	}
	s.so.inflight.Set(float64(s.inflight))
	s.mu.Unlock()

	for _, j := range expired {
		s.so.timeouts.Inc()
		j.finish(outcome{status: 504, err: "deadline expired while queued"})
	}
	if len(batch) == 0 {
		return len(expired) > 0
	}

	// Workload-aware packing: heavier-hinted jobs first, so their
	// classes are placed before the fine-grained filler (mirrors the
	// descending-AvgWork order the CC table wants). Stable, so equal
	// hints keep FIFO fairness.
	sort.SliceStable(batch, func(i, k int) bool { return batch[i].req.WorkHintS > batch[k].req.WorkHintS })

	all := s.arena.Get(tasks)
	for _, j := range batch {
		j.started = time.Now()
		s.so.queueSecs.Observe(j.started.Sub(j.enqueued).Seconds())
		all = append(all, j.tasks...)
	}
	bs := s.rt.RunBatch(all)
	batchIdx := s.rt.Stats().Batches - 1

	s.mu.Lock()
	for _, j := range batch {
		s.inflight -= len(j.tasks)
	}
	s.stats.Batches++
	s.stats.Tasks += uint64(bs.Tasks - bs.Cancelled)
	s.stats.Cancelled += uint64(bs.Cancelled)
	s.so.inflight.Set(float64(s.inflight))
	s.mu.Unlock()
	s.so.tasksRun.Add(float64(bs.Tasks - bs.Cancelled))
	s.so.tasksCancelled.Add(float64(bs.Cancelled))

	// Per-tenant energy attribution: the runtime reports each class's
	// busy-state energy (rt.ClassStats); split every class's share
	// among the batch's jobs of that class, pro rata by executed
	// tasks. The barrier has passed, so j.ran is final.
	classRan := map[string]int{}
	for _, j := range batch {
		classRan[j.req.Func] += int(j.ran.Load())
	}

	done := time.Now()
	for _, j := range batch {
		ran := int(j.ran.Load())
		var attr float64
		if cs, ok := bs.Classes[j.req.Func]; ok && classRan[j.req.Func] > 0 {
			attr = cs.EnergyJ * float64(ran) / float64(classRan[j.req.Func])
		}
		s.so.tenantEnergy.With(j.tenant).Add(attr)

		// Close the request span: queue, batch-wait and execute phases,
		// then end to end. Jobs whose every task was withdrawn have no
		// payload timestamps and record only queue + e2e.
		queueWait := j.started.Sub(j.enqueued).Seconds()
		s.so.spanQueue.With(j.req.Func, j.tenant).Observe(queueWait)
		if fs := j.firstStart.Load(); fs > 0 {
			s.so.spanBatch.With(j.req.Func, j.tenant).Observe(float64(fs-j.started.UnixNano()) / 1e9)
			s.so.spanExec.With(j.req.Func, j.tenant).Observe(float64(j.lastEnd.Load()-fs) / 1e9)
		}
		e2e := done.Sub(j.enqueued).Seconds()
		s.so.spanE2E.With(j.req.Func, j.tenant).Observe(e2e)
		s.latE2E.Observe(e2e)
		s.latQueue.Observe(queueWait)

		res := JobResult{
			Job:         j.id,
			Tenant:      j.tenant,
			Func:        j.req.Func,
			Tasks:       len(j.tasks),
			TasksRun:    ran,
			Batch:       batchIdx,
			QueueMS:     queueWait * 1e3,
			BatchMS:     bs.Wall.Seconds() * 1e3,
			EnergyJ:     bs.Energy,
			EnergyAttrJ: attr,
			Steals:      bs.Steals,
			Policy:      s.cfg.Policy,
		}
		if ran < len(j.tasks) {
			// Some tasks were withdrawn mid-batch (deadline or client
			// disconnect); report the job as timed out, with partials.
			s.mu.Lock()
			s.stats.Timeouts++
			s.mu.Unlock()
			s.so.timeouts.Inc()
			j.finish(outcome{status: 504, err: "deadline expired mid-batch", res: &res})
			continue
		}
		s.mu.Lock()
		s.stats.Completed++
		s.mu.Unlock()
		s.so.completed.Inc()
		j.finish(outcome{status: 200, res: &res})
	}
	s.arena.Put(all)
	return true
}

// LatencySummary is the point-in-time percentile view of the service's
// request latency, aggregated over every class and tenant since start.
// All values are seconds.
type LatencySummary struct {
	Jobs     uint64  `json:"jobs"`
	E2EMean  float64 `json:"e2e_mean_s"`
	E2EP50   float64 `json:"e2e_p50_s"`
	E2EP95   float64 `json:"e2e_p95_s"`
	E2EP99   float64 `json:"e2e_p99_s"`
	QueueP50 float64 `json:"queue_p50_s"`
	QueueP95 float64 `json:"queue_p95_s"`
	QueueP99 float64 `json:"queue_p99_s"`
}

// LatencySummary snapshots the end-to-end and queue-wait distributions.
// It covers every job a batch processed (completed or timed out); jobs
// dropped unstarted are excluded. Safe to call concurrently with the
// batcher — the histograms are lock-free.
func (s *Server) LatencySummary() LatencySummary {
	return LatencySummary{
		Jobs:     s.latE2E.Count(),
		E2EMean:  s.latE2E.Mean(),
		E2EP50:   s.latE2E.Quantile(0.50),
		E2EP95:   s.latE2E.Quantile(0.95),
		E2EP99:   s.latE2E.Quantile(0.99),
		QueueP50: s.latQueue.Quantile(0.50),
		QueueP95: s.latQueue.Quantile(0.95),
		QueueP99: s.latQueue.Quantile(0.99),
	}
}

// Drain stops admission, flushes every queued job into final batches,
// waits for the last barrier and stops the batcher. It is what the
// SIGTERM path of cmd/eewa-serve calls; it is safe to call more than
// once. The context bounds the wait — on expiry the batcher keeps
// draining in the background, but Drain returns the context error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.wakeBatcher()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
