package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// API:
//
//	POST /v1/jobs       — submit a job (JobRequest), blocks until it
//	                      runs or its deadline expires; 200 JobResult,
//	                      400 invalid, 429/503 + Retry-After
//	                      backpressure, 504 deadline
//	POST /v1/jobs:batch — submit N jobs in one request (BatchRequest),
//	                      one admission pass, blocks until every
//	                      admitted job resolves; per-job status array
//	GET  /v1/stats      — Stats snapshot (JSON, cluster totals)
//	GET  /v1/shards     — RouterStats snapshot (JSON): routing policy,
//	                      per-shard counters, cluster energy roll-up
//	GET  /healthz       — 200 "ok", 503 "draining" + Retry-After
//
// When the server has a registry, the PR-1 observability endpoints
// (/metrics, /debug/vars, /debug/pprof) are mounted on the same mux.

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
}

// BatchRequest is the wire format of POST /v1/jobs:batch.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchItem is one job's slice of the batch response: the same status
// and body the job would have received from POST /v1/jobs.
type BatchItem struct {
	Status     int        `json:"status"`
	Result     *JobResult `json:"result,omitempty"` // 200, and 504 partials
	Error      string     `json:"error,omitempty"`
	RetryAfter int        `json:"retry_after_s,omitempty"`
}

// BatchResponse is the POST /v1/jobs:batch body, jobs in request
// order.
type BatchResponse struct {
	Jobs []BatchItem `json:"jobs"`
}

const (
	// maxBatchBodyBytes bounds a batch submission's body; roomier than
	// the single-job bound since it carries up to maxBatchJobs requests.
	maxBatchBodyBytes = 1 << 20
	// maxBatchJobs bounds the jobs one batch request may carry.
	maxBatchJobs = 256
)

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs:batch", s.handleJobsBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/shards", s.handleShards)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cfg.Obs != nil {
		oh := obs.HandlerWith(s.cfg.Obs, obs.HandlerOptions{Pprof: true, GoRuntime: s.cfg.GoMetrics})
		mux.Handle("/metrics", oh)
		mux.Handle("/debug/", oh)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are committed; nothing left to surface
}

// retryAfterSeconds rounds the configured hint up to whole seconds, as
// the Retry-After header requires.
func (s *Server) retryAfterSeconds() int {
	return s.static.retryAfterSecs
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	in := getIngest()
	defer putIngest(in)
	if err := in.readBody(r.Body); err != nil {
		s.so.rejected.With("invalid").Inc()
		s.writeError(w, http.StatusBadRequest, "decoding job: "+err.Error(), 0)
		return
	}
	if err := s.decodeJob(in); err != nil {
		s.so.rejected.With("invalid").Inc()
		s.writeError(w, http.StatusBadRequest, "decoding job: "+err.Error(), 0)
		return
	}
	j, err := s.newJob(in.req)
	if err != nil {
		s.so.rejected.With("invalid").Inc()
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if rej := s.route(j); rej != nil {
		s.noteRejection(rej)
		j.release()
		if rej.Status == http.StatusGatewayTimeout {
			// Admission fast-fail: the deadline had already passed, so
			// there is no point hinting a retry of the same request.
			s.writeError(w, rej.Status, rej.Msg, 0)
			return
		}
		ra := s.static.retryAfterSecs
		w.Header().Set("Retry-After", s.static.retryAfterStr)
		s.writeError(w, rej.Status, rej.Msg, ra)
		return
	}

	// The job is queued; wait for the batcher, the deadline, or the
	// client hanging up — whichever comes first. On deadline/disconnect
	// the job is cancelled: unstarted tasks are dropped at batch
	// formation or withdrawn mid-batch via the runtime hook, and the
	// batcher's eventual outcome goes to the buffered channel unheard.
	// Under a virtual clock (Config.Clock, trace replay) the wall-time
	// early-504 timer is meaningless and stays nil; queued expiry is
	// then decided at batch formation, in virtual time.
	var deadlineC <-chan time.Time
	if !j.deadline.IsZero() && s.cfg.Clock == nil {
		timer := time.NewTimer(time.Until(j.deadline))
		defer timer.Stop()
		deadlineC = timer.C
	}
	select {
	case o := <-j.done:
		switch {
		case o.status == 200:
			writeResult(w, 200, o.res)
		case o.res != nil:
			s.writePartial(w, o.status, o.err, o.res)
		default:
			s.writeError(w, o.status, o.err, 0)
		}
		j.release()
	case <-deadlineC:
		// Respond now; the batcher still owns the job and will count
		// the timeout exactly once when it processes (and drops) it.
		j.cancelled.Store(true)
		s.so.cancelled.With("deadline").Inc()
		s.writeError(w, http.StatusGatewayTimeout, "deadline expired", 0)
		j.release()
	case <-r.Context().Done():
		// Client hung up. Before this counter existed the disconnect
		// was invisible: `cancelled` was set and nothing else moved, so
		// disconnect-driven withdrawals were indistinguishable from
		// deadline drops in the eewa_serve_* families.
		j.cancelled.Store(true)
		s.so.cancelled.With("disconnect").Inc()
		j.release()
	}
}

// handleJobsBatch admits N jobs in one pass and waits for all of them.
// Each item resolves to the same status and body shape the single-job
// endpoint would have produced; the overall HTTP status is 200 only if
// every job completed, otherwise the severest admission signal (429
// for backpressure, then 504, then 400). Batch jobs have no per-job
// wall timer — queued expiry is still enforced at batch formation.
func (s *Server) handleJobsBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		s.so.rejected.With("invalid").Inc()
		s.writeError(w, http.StatusBadRequest, "decoding batch: "+err.Error(), 0)
		return
	}
	if len(breq.Jobs) == 0 {
		s.so.rejected.With("invalid").Inc()
		s.writeError(w, http.StatusBadRequest, "batch has no jobs", 0)
		return
	}
	if len(breq.Jobs) > maxBatchJobs {
		s.so.rejected.With("invalid").Inc()
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d jobs exceeds the limit %d", len(breq.Jobs), maxBatchJobs), 0)
		return
	}

	// One admission pass: every job validates and routes before any is
	// waited on, so a batch occupies its queue slots atomically enough
	// to be batched together by the next flush.
	items := make([]BatchItem, len(breq.Jobs))
	jobs := make([]*job, len(breq.Jobs))
	for i := range breq.Jobs {
		j, err := s.newJob(breq.Jobs[i])
		if err != nil {
			s.so.rejected.With("invalid").Inc()
			items[i] = BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		if rej := s.route(j); rej != nil {
			s.noteRejection(rej)
			j.release()
			it := BatchItem{Status: rej.Status, Error: rej.Msg}
			if rej.Status != http.StatusGatewayTimeout {
				it.RetryAfter = s.static.retryAfterSecs
			}
			items[i] = it
			continue
		}
		jobs[i] = j
	}

	for i, j := range jobs {
		if j == nil {
			continue
		}
		select {
		case o := <-j.done:
			items[i] = BatchItem{Status: o.status, Result: o.res, Error: o.err}
		case <-r.Context().Done():
			// Client hung up: cancel this job and everything still
			// pending, then bail without a response.
			for _, jj := range jobs[i:] {
				if jj == nil {
					continue
				}
				jj.cancelled.Store(true)
				s.so.cancelled.With("disconnect").Inc()
				jj.release()
			}
			return
		}
	}

	overall := http.StatusOK
	var rejected, expired, invalid bool
	for i := range items {
		switch items[i].Status {
		case http.StatusOK:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected = true
		case http.StatusGatewayTimeout:
			expired = true
		default:
			invalid = true
		}
	}
	switch {
	case rejected:
		overall = http.StatusTooManyRequests
		w.Header().Set("Retry-After", s.static.retryAfterStr)
	case expired:
		overall = http.StatusGatewayTimeout
	case invalid:
		overall = http.StatusBadRequest
	}
	writeJSON(w, overall, BatchResponse{Jobs: items})
	for _, j := range jobs {
		if j != nil {
			j.release()
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, 200, s.Stats())
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, 200, s.RouterStats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		// Same back-off hint the 429/503 job path sends, so probes and
		// clients behave uniformly during drain.
		w.Header().Set("Retry-After", s.static.retryAfterStr)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}
