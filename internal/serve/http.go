package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// API:
//
//	POST /v1/jobs    — submit a job (JobRequest), blocks until it runs
//	                   or its deadline expires; 200 JobResult,
//	                   400 invalid, 429/503 + Retry-After backpressure,
//	                   504 deadline
//	GET  /v1/stats   — Stats snapshot (JSON, cluster totals)
//	GET  /v1/shards  — RouterStats snapshot (JSON): routing policy,
//	                   per-shard counters, cluster energy roll-up
//	GET  /healthz    — 200 "ok", 503 "draining" + Retry-After
//
// When the server has a registry, the PR-1 observability endpoints
// (/metrics, /debug/vars, /debug/pprof) are mounted on the same mux.

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/shards", s.handleShards)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cfg.Obs != nil {
		oh := obs.HandlerWith(s.cfg.Obs, obs.HandlerOptions{Pprof: true, GoRuntime: s.cfg.GoMetrics})
		mux.Handle("/metrics", oh)
		mux.Handle("/debug/", oh)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are committed; nothing left to surface
}

// retryAfterSeconds rounds the configured hint up to whole seconds, as
// the Retry-After header requires.
func (s *Server) retryAfterSeconds() int {
	sec := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.so.rejected.With("invalid").Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding job: " + err.Error()})
		return
	}
	j, err := s.newJob(req)
	if err != nil {
		s.so.rejected.With("invalid").Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if rej := s.route(j); rej != nil {
		s.noteRejection(rej)
		if rej.Status == http.StatusGatewayTimeout {
			// Admission fast-fail: the deadline had already passed, so
			// there is no point hinting a retry of the same request.
			writeJSON(w, rej.Status, errorBody{Error: rej.Msg})
			return
		}
		ra := s.retryAfterSeconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", ra))
		writeJSON(w, rej.Status, errorBody{Error: rej.Msg, RetryAfter: ra})
		return
	}

	// The job is queued; wait for the batcher, the deadline, or the
	// client hanging up — whichever comes first. On deadline/disconnect
	// the job is cancelled: unstarted tasks are dropped at batch
	// formation or withdrawn mid-batch via the runtime hook, and the
	// batcher's eventual outcome goes to the buffered channel unheard.
	// Under a virtual clock (Config.Clock, trace replay) the wall-time
	// early-504 timer is meaningless and stays nil; queued expiry is
	// then decided at batch formation, in virtual time.
	var deadlineC <-chan time.Time
	if !j.deadline.IsZero() && s.cfg.Clock == nil {
		timer := time.NewTimer(time.Until(j.deadline))
		defer timer.Stop()
		deadlineC = timer.C
	}
	select {
	case o := <-j.done:
		if o.status == 200 {
			writeJSON(w, 200, o.res)
			return
		}
		body := errorBody{Error: o.err}
		if o.res != nil {
			writeJSON(w, o.status, struct {
				errorBody
				Partial *JobResult `json:"partial,omitempty"`
			}{body, o.res})
			return
		}
		writeJSON(w, o.status, body)
	case <-deadlineC:
		// Respond now; the batcher still owns the job and will count
		// the timeout exactly once when it processes (and drops) it.
		j.cancelled.Store(true)
		s.so.cancelled.With("deadline").Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline expired"})
	case <-r.Context().Done():
		// Client hung up. Before this counter existed the disconnect
		// was invisible: `cancelled` was set and nothing else moved, so
		// disconnect-driven withdrawals were indistinguishable from
		// deadline drops in the eewa_serve_* families.
		j.cancelled.Store(true)
		s.so.cancelled.With("disconnect").Inc()
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, 200, s.Stats())
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, 200, s.RouterStats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		// Same back-off hint the 429/503 job path sends, so probes and
		// clients behave uniformly during drain.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}
