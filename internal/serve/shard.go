package serve

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/rt"
)

// shardConfig is one shard's slice of the cluster configuration. Every
// bound (queue depth, in-flight budget, batch size) is per shard.
type shardConfig struct {
	index   int // shard index within the cluster
	total   int // cluster shard count
	workers int
	mc      machine.Config // per-shard machine (ladder heterogeneity)
	policy  string
	offline *profile.Snapshot
	seed    uint64

	maxBatch    int
	flushEvery  time.Duration
	queueDepth  int
	maxInFlight int
	invariants  bool
	reg         *obs.Registry

	// clock is the service time source (Server.now); admission stamps,
	// queued-expiry and cancellation checks all read it so a virtual
	// clock makes deadline outcomes deterministic under trace replay.
	clock func() time.Time
	// manualFlush skips the batcher goroutine: batches form only via
	// flushAll, on the caller's goroutine (Server.Flush / drain).
	manualFlush bool
	// stripes is the admission-stripe count (Config.AdmissionStripes),
	// rounded up to a power of two.
	stripes int
}

// tenantEntry is one tenant's admission state on one stripe: the
// queued-task count the depth bound checks, plus this tenant's metric
// handles, resolved once so the admission hot path never walks the
// labeled-family maps.
type tenantEntry struct {
	queued   int
	qd       *obs.Gauge   // eewa_serve_queue_depth child (cluster total, delta-maintained)
	admitted *obs.Counter // eewa_serve_admitted_tenant_total child
}

// admitStripe is an independently locked slice of a shard's admission
// queue. Tenants hash onto stripes, so a tenant's whole queue state
// lives on one stripe and the per-tenant depth bound stays exact;
// concurrent submitters of different tenants admit without sharing a
// lock. FIFO order across stripes is preserved by the per-shard
// admission sequence number stamped under the stripe lock — the
// batcher merges stripes by minimum sequence, reproducing the global
// arrival order bit for bit.
type admitStripe struct {
	mu      sync.Mutex
	pending []*job
	head    int // pending[head:] is the live queue; reset when drained
	tenants map[string]*tenantEntry
	_       [24]byte // keep neighboring stripe headers off one line
}

// shard is the unit the routing tier places work on: one live runtime
// with its own frequency ladder, profile and policy instance, fronted
// by the per-tenant bounded queue + interval batcher + graceful drain
// that used to be the whole of Server. A single-shard cluster routes
// every job here, making the routed server behave exactly like the
// pre-router JobServer.
type shard struct {
	cfg shardConfig
	rt  *rt.Runtime
	so  *serveObs // shared across the cluster: families aggregate
	ro  *routerObs

	stripes []admitStripe
	smask   uint64
	seq     atomic.Uint64 // admission order across stripes (merge key)

	// Hot counters, all atomic so admission and the batcher never share
	// a lock with the stats endpoints.
	queuedN   atomic.Int64 // queued (admitted, unbatched) tasks
	inflight  atomic.Int64 // queued + running tasks
	draining  atomic.Bool
	admitted  atomic.Uint64
	completed atomic.Uint64
	timeouts  atomic.Uint64
	batches   atomic.Uint64
	tasksRun  atomic.Uint64
	tasksCan  atomic.Uint64

	// mu guards the cold batch-boundary state only: the plan-class set
	// and the energy roll-up, both rewritten once per batch.
	mu sync.Mutex

	// planClasses are the task classes profiled in the shard's last
	// batch — exactly the classes its current plan allocated c-groups
	// for. The class-aware router reads this to find "the shard whose
	// current plan has headroom for this class".
	planClasses map[string]struct{}

	// Cluster energy roll-up, accumulated at each batch barrier:
	// attributed is the per-class busy energy, overhead the remainder
	// (search, dry spin, halt, base draw). attributed + overhead ==
	// total by construction — the invariant the eewa_check build
	// verifies cluster-wide.
	energyTotalJ    float64
	energyAttrJ     float64
	energyOverheadJ float64

	wake        chan struct{}
	drained     chan struct{}
	drainedOnce sync.Once // manual-flush mode: drain may be called repeatedly

	// latE2E and latQueue aggregate end-to-end and queue-wait latency
	// across every class and tenant; the cluster LatencySummary merges
	// the per-shard histograms.
	latE2E   obs.LogHistogram
	latQueue obs.LogHistogram

	// arena recycles the per-batch []rt.Task slab across flushes; only
	// the batcher goroutine leases from it, and the slab is returned
	// once the batch's outcomes have been delivered.
	arena rt.TaskArena

	// Batcher-goroutine scratch, reused across flushes so a steady-state
	// flush allocates nothing: the batch and expired job lists, the
	// per-class executed-task tally, and the span-histogram handles
	// resolved per (class, tenant).
	batchBuf   []*job
	expiredBuf []*job
	classRan   map[string]int
	spans      map[spanKey]*spanSet

	// testBatchEnd, when non-nil, observes every batch's stats after the
	// shard's own bookkeeping — the decision-parity tests record plans
	// through it.
	testBatchEnd func(batch int, bs rt.BatchStats)
}

// spanKey / spanSet cache the labeled span-histogram children per
// (class, tenant). Only the batcher goroutine touches the map, so it
// needs no lock; each With call it saves is a family-map lookup.
type spanKey struct{ class, tenant string }

type spanSet struct {
	queue, batch, exec, e2e *obs.LogHistogram
	energy                  *obs.Counter // eewa_serve_energy_tenant_joules_total child
}

// pow2 rounds n up to a power of two (minimum 1).
func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newShard builds the shard's policy and runtime and starts its
// batcher goroutine.
func newShard(cfg shardConfig, so *serveObs, ro *routerObs) (*shard, error) {
	mc := cfg.mc
	mc.Cores = cfg.workers
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", cfg.index, err)
	}
	pol, err := policy.New(cfg.policy, mc)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.offline != nil {
		if cfg.policy != policy.IDEEWA {
			return nil, fmt.Errorf("serve: offline profile only applies to the %s policy, not %s", policy.IDEEWA, cfg.policy)
		}
		// Reject a corrupt snapshot loudly at startup: the EEWA policy
		// would otherwise quietly ignore it (or worse, pre-fix, build a
		// CC table without the indivisibility bound).
		if err := cfg.offline.Validate(mc.Freqs); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		pol.(*policy.EEWA).Offline = cfg.offline
	}
	stripes := pow2(max(cfg.stripes, 1))
	sh := &shard{
		cfg:         cfg,
		so:          so,
		ro:          ro,
		stripes:     make([]admitStripe, stripes),
		smask:       uint64(stripes - 1),
		planClasses: map[string]struct{}{},
		classRan:    map[string]int{},
		spans:       map[spanKey]*spanSet{},
		wake:        make(chan struct{}, 1),
		drained:     make(chan struct{}),
	}
	for i := range sh.stripes {
		sh.stripes[i].tenants = map[string]*tenantEntry{}
	}
	rcfg := rt.Config{
		Workers:    cfg.workers,
		Machine:    cfg.mc,
		Impl:       pol,
		Seed:       cfg.seed,
		Obs:        cfg.reg,
		Invariants: cfg.invariants,
		Hooks: rt.Hooks{
			BatchEnd: sh.batchEnd,
		},
	}
	sh.rt, err = rt.New(rcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if !cfg.manualFlush {
		go sh.batcher()
	}
	return sh, nil
}

// batchEnd is the shard's runtime hook: cluster-family metrics, the
// plan-class set the router consults, and the energy roll-up.
func (sh *shard) batchEnd(batch int, bs rt.BatchStats) {
	sh.so.batches.Inc()
	sh.so.batchSecs.Observe(bs.Wall.Seconds())
	sh.so.batchTasks.Observe(float64(bs.Tasks))

	attr := 0.0
	for _, cs := range bs.Classes {
		attr += cs.EnergyJ
	}
	sh.mu.Lock()
	// The next plan derives from this batch's profile, so these classes
	// are the ones the shard's upcoming plan reserves c-groups for.
	sh.planClasses = make(map[string]struct{}, len(bs.Classes))
	for name := range bs.Classes {
		sh.planClasses[name] = struct{}{}
	}
	sh.energyTotalJ += bs.Energy
	sh.energyAttrJ += attr
	sh.energyOverheadJ += bs.Energy - attr
	sh.mu.Unlock()
	sh.ro.shardEnergy(sh.cfg.index, bs.Energy)
	if sh.testBatchEnd != nil {
		sh.testBatchEnd(batch, bs)
	}
}

// view is the router's snapshot of the shard for one placement
// decision.
type shardView struct {
	idx      int
	draining bool
	headroom int  // maxInFlight − inflight
	knows    bool // class is in the shard's current plan
	fastest  float64
}

func (sh *shard) view(class string) shardView {
	sh.mu.Lock()
	_, knows := sh.planClasses[class]
	sh.mu.Unlock()
	return shardView{
		idx:      sh.cfg.index,
		draining: sh.draining.Load(),
		headroom: sh.cfg.maxInFlight - int(sh.inflight.Load()),
		knows:    knows,
		fastest:  sh.cfg.mc.Freqs[0],
	}
}

// stripeFor hashes a tenant onto its admission stripe (FNV-1a — cheap,
// alloc-free, and stable so a tenant's state never moves).
func (sh *shard) stripeFor(tenant string) *admitStripe {
	if sh.smask == 0 {
		return &sh.stripes[0]
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= 1099511628211
	}
	return &sh.stripes[h&sh.smask]
}

// tenant returns the stripe's entry for the tenant, resolving the
// metric handles on first sight. Caller holds the stripe lock.
func (st *admitStripe) tenant(name string, so *serveObs) *tenantEntry {
	te := st.tenants[name]
	if te == nil {
		te = &tenantEntry{
			qd:       so.queueDepth.With(name),
			admitted: so.admittedTenant.With(name),
		}
		st.tenants[name] = te
	}
	return te
}

// admit applies the shard's admission policy to j: reject while
// draining, reject when the tenant's queue or the in-flight budget is
// full, otherwise enqueue on the tenant's stripe. Backpressure is
// immediate — nothing blocks, and submitters of different tenants
// contend only on their own stripe and two striped cluster counters.
func (sh *shard) admit(j *job) *Rejection {
	n := len(j.tasks)
	st := sh.stripeFor(j.tenant)
	st.mu.Lock()
	// The drain barrier (drain locks and releases every stripe after
	// setting the flag) makes this check authoritative: after the
	// barrier passes, no admit can be past it without seeing draining.
	if sh.draining.Load() {
		st.mu.Unlock()
		return &Rejection{Status: 503, Reason: "draining",
			Msg: "server is draining, not admitting new jobs"}
	}
	te := st.tenant(j.tenant, sh.so)
	if te.queued+n > sh.cfg.queueDepth {
		cur := te.queued
		st.mu.Unlock()
		return &Rejection{Status: 429, Reason: "tenant_queue_full",
			Msg: fmt.Sprintf("tenant %q queue full (%d/%d tasks)", j.tenant, cur, sh.cfg.queueDepth)}
	}
	// The in-flight budget spans tenants, so it cannot live under one
	// stripe's lock; reserve optimistically and roll back on overflow.
	if cur := sh.inflight.Add(int64(n)); cur > int64(sh.cfg.maxInFlight) {
		sh.inflight.Add(int64(-n))
		st.mu.Unlock()
		return &Rejection{Status: 429, Reason: "inflight_budget",
			Msg: fmt.Sprintf("in-flight budget full (%d/%d tasks)", cur-int64(n), sh.cfg.maxInFlight)}
	}
	j.enqueued = sh.cfg.clock()
	j.shard = sh.cfg.index
	j.retain() // admission reference, released by the batcher
	// The sequence number is stamped under the stripe lock, together
	// with the append: each stripe's queue is sequence-ordered, so the
	// batcher's min-sequence merge reproduces global FIFO order.
	j.seq = sh.seq.Add(1)
	st.pending = append(st.pending, j)
	te.queued += n
	te.admitted.Inc()
	te.qd.Add(float64(n))
	queued := sh.queuedN.Add(int64(n))
	st.mu.Unlock()

	sh.admitted.Add(1)
	sh.so.admitted.Inc()
	sh.so.inflight.Add(float64(n))
	sh.ro.shardInflight(sh.cfg.index, int(sh.inflight.Load()))
	if queued >= int64(sh.cfg.maxBatch) {
		sh.wakeBatcher()
	}
	return nil
}

func (sh *shard) wakeBatcher() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// backlogEmpty reports whether every stripe's queue is empty.
func (sh *shard) backlogEmpty() bool {
	for i := range sh.stripes {
		st := &sh.stripes[i]
		st.mu.Lock()
		n := len(st.pending) - st.head
		st.mu.Unlock()
		if n > 0 {
			return false
		}
	}
	return true
}

// batcher is the single goroutine that forms and executes iterations.
// rt.Runtime is batch-structured and not concurrency-safe, so all
// RunBatch calls happen here.
func (sh *shard) batcher() {
	tick := time.NewTicker(sh.cfg.flushEvery)
	defer tick.Stop()
	for {
		select {
		case <-sh.wake:
		case <-tick.C:
		}
		for sh.flushOnce() {
		}
		if sh.draining.Load() && sh.backlogEmpty() {
			close(sh.drained)
			return
		}
	}
}

// flushAll drains the current backlog into consecutive batches on the
// calling goroutine — the batch boundary of manual-flush mode.
func (sh *shard) flushAll() {
	for sh.flushOnce() {
	}
}

// popMin pops the job with the lowest admission sequence across all
// stripes without exceeding the batch budget. Caller holds every
// stripe lock. Returns nil when the backlog is empty or the head job
// would overflow a non-empty batch (head-of-line break, same as the
// single-queue batcher).
func (sh *shard) popMin(batched int, tasks int) *job {
	var best *admitStripe
	for i := range sh.stripes {
		st := &sh.stripes[i]
		if st.head < len(st.pending) &&
			(best == nil || st.pending[st.head].seq < best.pending[best.head].seq) {
			best = st
		}
	}
	if best == nil {
		return nil
	}
	j := best.pending[best.head]
	if batched > 0 && tasks+len(j.tasks) > sh.cfg.maxBatch {
		return nil
	}
	best.pending[best.head] = nil
	best.head++
	if best.head == len(best.pending) {
		// Queue drained: rewind so the backing array is reused from the
		// start instead of growing forever.
		best.pending = best.pending[:0]
		best.head = 0
	}
	n := len(j.tasks)
	te := best.tenants[j.tenant]
	te.queued -= n
	te.qd.Add(float64(-n))
	sh.queuedN.Add(int64(-n))
	return j
}

// flushOnce forms one batch from the merged head of the stripes and
// runs it. It reports whether any job left the queue (batched or
// expired), so the batcher can loop until the backlog is gone.
func (sh *shard) flushOnce() bool {
	now := sh.cfg.clock()
	batch := sh.batchBuf[:0]
	expired := sh.expiredBuf[:0]
	tasks, expiredTasks := 0, 0

	for i := range sh.stripes {
		sh.stripes[i].mu.Lock()
	}
	for {
		j := sh.popMin(len(batch), tasks)
		if j == nil {
			break
		}
		n := len(j.tasks)
		if j.expiredBy(now) {
			// Deadline passed while queued: the job is dropped before
			// any task starts.
			sh.inflight.Add(int64(-n))
			sh.timeouts.Add(1)
			expired = append(expired, j)
			expiredTasks += n
			continue
		}
		batch = append(batch, j)
		tasks += n
	}
	for i := range sh.stripes {
		sh.stripes[i].mu.Unlock()
	}
	sh.so.inflight.Add(float64(-expiredTasks))
	sh.ro.shardInflight(sh.cfg.index, int(sh.inflight.Load()))

	for _, j := range expired {
		sh.so.timeouts.Inc()
		j.finish(outcome{status: 504, err: "deadline expired while queued"})
		j.release()
	}
	if len(batch) == 0 {
		sh.batchBuf, sh.expiredBuf = batch, expired
		return len(expired) > 0
	}

	// Workload-aware packing: heavier-hinted jobs first, so their
	// classes are placed before the fine-grained filler (mirrors the
	// descending-AvgWork order the CC table wants). Stable, so equal
	// hints keep FIFO fairness.
	slices.SortStableFunc(batch, func(a, b *job) int {
		switch {
		case a.req.WorkHintS > b.req.WorkHintS:
			return -1
		case a.req.WorkHintS < b.req.WorkHintS:
			return 1
		}
		return 0
	})

	all := sh.arena.Get(tasks)
	for _, j := range batch {
		j.started = sh.cfg.clock()
		sh.so.queueSecs.Observe(j.started.Sub(j.enqueued).Seconds())
		all = append(all, j.tasks...)
	}
	bs := sh.rt.RunBatch(all)
	batchIdx := sh.rt.Stats().Batches - 1

	for _, j := range batch {
		sh.inflight.Add(int64(-len(j.tasks)))
	}
	sh.batches.Add(1)
	sh.tasksRun.Add(uint64(bs.Tasks - bs.Cancelled))
	sh.tasksCan.Add(uint64(bs.Cancelled))
	sh.so.inflight.Add(float64(-tasks))
	sh.ro.shardInflight(sh.cfg.index, int(sh.inflight.Load()))
	sh.so.tasksRun.Add(float64(bs.Tasks - bs.Cancelled))
	sh.so.tasksCancelled.Add(float64(bs.Cancelled))

	// Per-tenant energy attribution: the runtime reports each class's
	// busy-state energy (rt.ClassStats); split every class's share
	// among the batch's jobs of that class, pro rata by executed
	// tasks. The barrier has passed, so j.ran is final.
	clear(sh.classRan)
	for _, j := range batch {
		sh.classRan[j.req.Func] += int(j.ran.Load())
	}

	done := sh.cfg.clock()
	for _, j := range batch {
		ran := int(j.ran.Load())
		var attr float64
		if cs, ok := bs.Classes[j.req.Func]; ok && sh.classRan[j.req.Func] > 0 {
			attr = cs.EnergyJ * float64(ran) / float64(sh.classRan[j.req.Func])
		}
		sp := sh.spanSetFor(j.req.Func, j.tenant)
		sp.energy.Add(attr)

		// Close the request span: queue, batch-wait and execute phases,
		// then end to end. Jobs whose every task was withdrawn have no
		// payload timestamps and record only queue + e2e.
		queueWait := j.started.Sub(j.enqueued).Seconds()
		sp.queue.Observe(queueWait)
		if fs := j.firstStart.Load(); fs > 0 {
			sp.batch.Observe(float64(fs-j.started.UnixNano()) / 1e9)
			sp.exec.Observe(float64(j.lastEnd.Load()-fs) / 1e9)
		}
		e2e := done.Sub(j.enqueued).Seconds()
		sp.e2e.Observe(e2e)
		sh.latE2E.Observe(e2e)
		sh.latQueue.Observe(queueWait)

		j.res = JobResult{
			Job:         j.id,
			Tenant:      j.tenant,
			Func:        j.req.Func,
			Tasks:       len(j.tasks),
			TasksRun:    ran,
			Batch:       batchIdx,
			QueueMS:     queueWait * 1e3,
			BatchMS:     bs.Wall.Seconds() * 1e3,
			EnergyJ:     bs.Energy,
			EnergyAttrJ: attr,
			Steals:      bs.Steals,
			Policy:      sh.cfg.policy,
		}
		if sh.cfg.total > 1 {
			j.res.Shard = &j.shard
		}
		if ran < len(j.tasks) {
			// Some tasks were withdrawn mid-batch (deadline or client
			// disconnect); report the job as timed out, with partials.
			sh.timeouts.Add(1)
			sh.so.timeouts.Inc()
			j.finish(outcome{status: 504, err: "deadline expired mid-batch", res: &j.res})
			j.release()
			continue
		}
		sh.completed.Add(1)
		sh.so.completed.Inc()
		j.finish(outcome{status: 200, res: &j.res})
		j.release()
	}
	sh.arena.Put(all)
	sh.batchBuf, sh.expiredBuf = batch, expired
	return true
}

// spanSetFor resolves (and caches) the labeled metric children for one
// (class, tenant) pair. Batcher goroutine only.
func (sh *shard) spanSetFor(class, tenant string) *spanSet {
	k := spanKey{class, tenant}
	sp := sh.spans[k]
	if sp == nil {
		sp = &spanSet{
			queue:  sh.so.spanQueue.With(class, tenant),
			batch:  sh.so.spanBatch.With(class, tenant),
			exec:   sh.so.spanExec.With(class, tenant),
			e2e:    sh.so.spanE2E.With(class, tenant),
			energy: sh.so.tenantEnergy.With(tenant),
		}
		sh.spans[k] = sp
	}
	return sp
}

// drain stops admission on this shard, flushes every queued job into
// final batches, waits for the last barrier and stops the batcher. Safe
// to call more than once. The context bounds the wait — on expiry the
// batcher keeps draining in the background.
func (sh *shard) drain(ctx context.Context) error {
	sh.draining.Store(true)
	// Barrier: any admit that read draining=false holds its stripe lock
	// until its job is enqueued; taking and releasing every stripe lock
	// guarantees all such admissions are visible before the final flush.
	for i := range sh.stripes {
		st := &sh.stripes[i]
		st.mu.Lock()
		//lint:ignore SA2001 empty section is the barrier
		st.mu.Unlock()
	}
	sh.ro.shardDraining(sh.cfg.index, true)
	if sh.cfg.manualFlush {
		// No batcher goroutine: the backlog drains here, synchronously.
		sh.flushAll()
		sh.drainedOnce.Do(func() { close(sh.drained) })
		return nil
	}
	sh.wakeBatcher()
	select {
	case <-sh.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// snapshot returns the shard's point-in-time counters.
func (sh *shard) snapshot() ShardStats {
	sh.mu.Lock()
	classes := make([]string, 0, len(sh.planClasses))
	for c := range sh.planClasses {
		classes = append(classes, c)
	}
	energyTotal, energyAttr, overhead := sh.energyTotalJ, sh.energyAttrJ, sh.energyOverheadJ
	sh.mu.Unlock()
	sort.Strings(classes)
	return ShardStats{
		Shard:       sh.cfg.index,
		Workers:     sh.cfg.workers,
		FastestGHz:  sh.cfg.mc.Freqs[0],
		Draining:    sh.draining.Load(),
		Queued:      int(sh.queuedN.Load()),
		Inflight:    int(sh.inflight.Load()),
		Admitted:    sh.admitted.Load(),
		Completed:   sh.completed.Load(),
		Timeouts:    sh.timeouts.Load(),
		Batches:     sh.batches.Load(),
		Tasks:       sh.tasksRun.Load(),
		Cancelled:   sh.tasksCan.Load(),
		PlanClasses: classes,
		EnergyJ:     energyTotal,
		EnergyAttrJ: energyAttr,
		OverheadJ:   overhead,
	}
}

// addTo folds the shard's counters into the cluster Stats.
func (sh *shard) addTo(st *Stats) {
	st.Queued += int(sh.queuedN.Load())
	st.Inflight += int(sh.inflight.Load())
	st.Admitted += sh.admitted.Load()
	st.Completed += sh.completed.Load()
	st.Timeouts += sh.timeouts.Load()
	st.Batches += sh.batches.Load()
	st.Tasks += sh.tasksRun.Load()
	st.Cancelled += sh.tasksCan.Load()
}
