package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/rt"
)

// shardConfig is one shard's slice of the cluster configuration. Every
// bound (queue depth, in-flight budget, batch size) is per shard.
type shardConfig struct {
	index   int // shard index within the cluster
	total   int // cluster shard count
	workers int
	mc      machine.Config // per-shard machine (ladder heterogeneity)
	policy  string
	offline *profile.Snapshot
	seed    uint64

	maxBatch    int
	flushEvery  time.Duration
	queueDepth  int
	maxInFlight int
	invariants  bool
	reg         *obs.Registry

	// clock is the service time source (Server.now); admission stamps,
	// queued-expiry and cancellation checks all read it so a virtual
	// clock makes deadline outcomes deterministic under trace replay.
	clock func() time.Time
	// manualFlush skips the batcher goroutine: batches form only via
	// flushAll, on the caller's goroutine (Server.Flush / drain).
	manualFlush bool
}

// shard is the unit the routing tier places work on: one live runtime
// with its own frequency ladder, profile and policy instance, fronted
// by the per-tenant bounded queue + interval batcher + graceful drain
// that used to be the whole of Server. A single-shard cluster routes
// every job here, making the routed server behave exactly like the
// pre-router JobServer.
type shard struct {
	cfg shardConfig
	rt  *rt.Runtime
	so  *serveObs // shared across the cluster: families aggregate
	ga  *gaugeAgg // shared: cluster-total queue-depth/in-flight gauges
	ro  *routerObs

	mu       sync.Mutex
	pending  []*job
	queued   map[string]int // tenant → queued task count
	queuedN  int            // total queued tasks
	inflight int            // queued + running tasks
	draining bool
	stats    Stats

	// planClasses are the task classes profiled in the shard's last
	// batch — exactly the classes its current plan allocated c-groups
	// for. The class-aware router reads this to find "the shard whose
	// current plan has headroom for this class".
	planClasses map[string]struct{}

	// Cluster energy roll-up, accumulated at each batch barrier:
	// attributed is the per-class busy energy, overhead the remainder
	// (search, dry spin, halt, base draw). attributed + overhead ==
	// total by construction — the invariant the eewa_check build
	// verifies cluster-wide.
	energyTotalJ    float64
	energyAttrJ     float64
	energyOverheadJ float64

	wake        chan struct{}
	drained     chan struct{}
	drainedOnce sync.Once // manual-flush mode: drain may be called repeatedly

	// latE2E and latQueue aggregate end-to-end and queue-wait latency
	// across every class and tenant; the cluster LatencySummary merges
	// the per-shard histograms.
	latE2E   obs.LogHistogram
	latQueue obs.LogHistogram

	// arena recycles the per-batch []rt.Task slab across flushes; only
	// the batcher goroutine leases from it, and the slab is returned
	// once the batch's outcomes have been delivered.
	arena rt.TaskArena

	// testBatchEnd, when non-nil, observes every batch's stats after the
	// shard's own bookkeeping — the decision-parity tests record plans
	// through it.
	testBatchEnd func(batch int, bs rt.BatchStats)
}

// newShard builds the shard's policy and runtime and starts its
// batcher goroutine.
func newShard(cfg shardConfig, so *serveObs, ga *gaugeAgg, ro *routerObs) (*shard, error) {
	mc := cfg.mc
	mc.Cores = cfg.workers
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", cfg.index, err)
	}
	pol, err := policy.New(cfg.policy, mc)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.offline != nil {
		if cfg.policy != policy.IDEEWA {
			return nil, fmt.Errorf("serve: offline profile only applies to the %s policy, not %s", policy.IDEEWA, cfg.policy)
		}
		// Reject a corrupt snapshot loudly at startup: the EEWA policy
		// would otherwise quietly ignore it (or worse, pre-fix, build a
		// CC table without the indivisibility bound).
		if err := cfg.offline.Validate(mc.Freqs); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		pol.(*policy.EEWA).Offline = cfg.offline
	}
	sh := &shard{
		cfg:         cfg,
		so:          so,
		ga:          ga,
		ro:          ro,
		queued:      map[string]int{},
		planClasses: map[string]struct{}{},
		wake:        make(chan struct{}, 1),
		drained:     make(chan struct{}),
	}
	rcfg := rt.Config{
		Workers:    cfg.workers,
		Machine:    cfg.mc,
		Impl:       pol,
		Seed:       cfg.seed,
		Obs:        cfg.reg,
		Invariants: cfg.invariants,
		Hooks: rt.Hooks{
			BatchEnd: sh.batchEnd,
		},
	}
	sh.rt, err = rt.New(rcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if !cfg.manualFlush {
		go sh.batcher()
	}
	return sh, nil
}

// batchEnd is the shard's runtime hook: cluster-family metrics, the
// plan-class set the router consults, and the energy roll-up.
func (sh *shard) batchEnd(batch int, bs rt.BatchStats) {
	sh.so.batches.Inc()
	sh.so.batchSecs.Observe(bs.Wall.Seconds())
	sh.so.batchTasks.Observe(float64(bs.Tasks))

	attr := 0.0
	for _, cs := range bs.Classes {
		attr += cs.EnergyJ
	}
	sh.mu.Lock()
	// The next plan derives from this batch's profile, so these classes
	// are the ones the shard's upcoming plan reserves c-groups for.
	sh.planClasses = make(map[string]struct{}, len(bs.Classes))
	for name := range bs.Classes {
		sh.planClasses[name] = struct{}{}
	}
	sh.energyTotalJ += bs.Energy
	sh.energyAttrJ += attr
	sh.energyOverheadJ += bs.Energy - attr
	sh.mu.Unlock()
	sh.ro.shardEnergy(sh.cfg.index, bs.Energy)
	if sh.testBatchEnd != nil {
		sh.testBatchEnd(batch, bs)
	}
}

// view is the router's snapshot of the shard for one placement
// decision.
type shardView struct {
	idx      int
	draining bool
	headroom int  // maxInFlight − inflight
	knows    bool // class is in the shard's current plan
	fastest  float64
}

func (sh *shard) view(class string) shardView {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, knows := sh.planClasses[class]
	return shardView{
		idx:      sh.cfg.index,
		draining: sh.draining,
		headroom: sh.cfg.maxInFlight - sh.inflight,
		knows:    knows,
		fastest:  sh.cfg.mc.Freqs[0],
	}
}

// admit applies the shard's admission policy to j: reject while
// draining, reject when the tenant's queue or the in-flight budget is
// full, otherwise enqueue. Backpressure is immediate — nothing blocks.
func (sh *shard) admit(j *job) *Rejection {
	n := len(j.tasks)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch {
	case sh.draining:
		return &Rejection{Status: 503, Reason: "draining",
			Msg: "server is draining, not admitting new jobs"}
	case sh.queued[j.tenant]+n > sh.cfg.queueDepth:
		return &Rejection{Status: 429, Reason: "tenant_queue_full",
			Msg: fmt.Sprintf("tenant %q queue full (%d/%d tasks)", j.tenant, sh.queued[j.tenant], sh.cfg.queueDepth)}
	case sh.inflight+n > sh.cfg.maxInFlight:
		return &Rejection{Status: 429, Reason: "inflight_budget",
			Msg: fmt.Sprintf("in-flight budget full (%d/%d tasks)", sh.inflight, sh.cfg.maxInFlight)}
	}
	j.enqueued = sh.cfg.clock()
	j.shard = sh.cfg.index
	sh.pending = append(sh.pending, j)
	sh.queued[j.tenant] += n
	sh.queuedN += n
	sh.inflight += n
	sh.stats.Admitted++
	sh.so.admitted.Inc()
	sh.so.admittedTenant.With(j.tenant).Inc()
	sh.ga.queue(j.tenant, n)
	sh.ga.flight(n)
	sh.ro.shardInflight(sh.cfg.index, sh.inflight)
	if sh.queuedN >= sh.cfg.maxBatch {
		sh.wakeBatcher()
	}
	return nil
}

func (sh *shard) wakeBatcher() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// batcher is the single goroutine that forms and executes iterations.
// rt.Runtime is batch-structured and not concurrency-safe, so all
// RunBatch calls happen here.
func (sh *shard) batcher() {
	tick := time.NewTicker(sh.cfg.flushEvery)
	defer tick.Stop()
	for {
		select {
		case <-sh.wake:
		case <-tick.C:
		}
		for sh.flushOnce() {
		}
		sh.mu.Lock()
		done := sh.draining && len(sh.pending) == 0
		sh.mu.Unlock()
		if done {
			close(sh.drained)
			return
		}
	}
}

// flushAll drains the current backlog into consecutive batches on the
// calling goroutine — the batch boundary of manual-flush mode.
func (sh *shard) flushAll() {
	for sh.flushOnce() {
	}
}

// flushOnce forms one batch from the head of the queue and runs it.
// It reports whether any job left the queue (batched or expired), so
// the batcher can loop until the backlog is gone.
func (sh *shard) flushOnce() bool {
	now := sh.cfg.clock()
	var batch []*job
	var expired []*job
	tasks, expiredTasks := 0, 0

	sh.mu.Lock()
	for len(sh.pending) > 0 {
		j := sh.pending[0]
		n := len(j.tasks)
		if len(batch) > 0 && tasks+n > sh.cfg.maxBatch {
			break
		}
		sh.pending = sh.pending[1:]
		sh.queued[j.tenant] -= n
		sh.queuedN -= n
		sh.ga.queue(j.tenant, -n)
		if j.expiredBy(now) {
			// Deadline passed while queued: the job is dropped before
			// any task starts.
			sh.inflight -= n
			sh.stats.Timeouts++
			expired = append(expired, j)
			expiredTasks += n
			continue
		}
		batch = append(batch, j)
		tasks += n
	}
	sh.ga.flight(-expiredTasks)
	sh.ro.shardInflight(sh.cfg.index, sh.inflight)
	sh.mu.Unlock()

	for _, j := range expired {
		sh.so.timeouts.Inc()
		j.finish(outcome{status: 504, err: "deadline expired while queued"})
	}
	if len(batch) == 0 {
		return len(expired) > 0
	}

	// Workload-aware packing: heavier-hinted jobs first, so their
	// classes are placed before the fine-grained filler (mirrors the
	// descending-AvgWork order the CC table wants). Stable, so equal
	// hints keep FIFO fairness.
	sort.SliceStable(batch, func(i, k int) bool { return batch[i].req.WorkHintS > batch[k].req.WorkHintS })

	all := sh.arena.Get(tasks)
	for _, j := range batch {
		j.started = sh.cfg.clock()
		sh.so.queueSecs.Observe(j.started.Sub(j.enqueued).Seconds())
		all = append(all, j.tasks...)
	}
	bs := sh.rt.RunBatch(all)
	batchIdx := sh.rt.Stats().Batches - 1

	sh.mu.Lock()
	for _, j := range batch {
		sh.inflight -= len(j.tasks)
	}
	sh.stats.Batches++
	sh.stats.Tasks += uint64(bs.Tasks - bs.Cancelled)
	sh.stats.Cancelled += uint64(bs.Cancelled)
	sh.ga.flight(-tasks)
	sh.ro.shardInflight(sh.cfg.index, sh.inflight)
	sh.mu.Unlock()
	sh.so.tasksRun.Add(float64(bs.Tasks - bs.Cancelled))
	sh.so.tasksCancelled.Add(float64(bs.Cancelled))

	// Per-tenant energy attribution: the runtime reports each class's
	// busy-state energy (rt.ClassStats); split every class's share
	// among the batch's jobs of that class, pro rata by executed
	// tasks. The barrier has passed, so j.ran is final.
	classRan := map[string]int{}
	for _, j := range batch {
		classRan[j.req.Func] += int(j.ran.Load())
	}

	done := sh.cfg.clock()
	for _, j := range batch {
		ran := int(j.ran.Load())
		var attr float64
		if cs, ok := bs.Classes[j.req.Func]; ok && classRan[j.req.Func] > 0 {
			attr = cs.EnergyJ * float64(ran) / float64(classRan[j.req.Func])
		}
		sh.so.tenantEnergy.With(j.tenant).Add(attr)

		// Close the request span: queue, batch-wait and execute phases,
		// then end to end. Jobs whose every task was withdrawn have no
		// payload timestamps and record only queue + e2e.
		queueWait := j.started.Sub(j.enqueued).Seconds()
		sh.so.spanQueue.With(j.req.Func, j.tenant).Observe(queueWait)
		if fs := j.firstStart.Load(); fs > 0 {
			sh.so.spanBatch.With(j.req.Func, j.tenant).Observe(float64(fs-j.started.UnixNano()) / 1e9)
			sh.so.spanExec.With(j.req.Func, j.tenant).Observe(float64(j.lastEnd.Load()-fs) / 1e9)
		}
		e2e := done.Sub(j.enqueued).Seconds()
		sh.so.spanE2E.With(j.req.Func, j.tenant).Observe(e2e)
		sh.latE2E.Observe(e2e)
		sh.latQueue.Observe(queueWait)

		res := JobResult{
			Job:         j.id,
			Tenant:      j.tenant,
			Func:        j.req.Func,
			Tasks:       len(j.tasks),
			TasksRun:    ran,
			Batch:       batchIdx,
			QueueMS:     queueWait * 1e3,
			BatchMS:     bs.Wall.Seconds() * 1e3,
			EnergyJ:     bs.Energy,
			EnergyAttrJ: attr,
			Steals:      bs.Steals,
			Policy:      sh.cfg.policy,
		}
		if sh.cfg.total > 1 {
			idx := sh.cfg.index
			res.Shard = &idx
		}
		if ran < len(j.tasks) {
			// Some tasks were withdrawn mid-batch (deadline or client
			// disconnect); report the job as timed out, with partials.
			sh.mu.Lock()
			sh.stats.Timeouts++
			sh.mu.Unlock()
			sh.so.timeouts.Inc()
			j.finish(outcome{status: 504, err: "deadline expired mid-batch", res: &res})
			continue
		}
		sh.mu.Lock()
		sh.stats.Completed++
		sh.mu.Unlock()
		sh.so.completed.Inc()
		j.finish(outcome{status: 200, res: &res})
	}
	sh.arena.Put(all)
	return true
}

// drain stops admission on this shard, flushes every queued job into
// final batches, waits for the last barrier and stops the batcher. Safe
// to call more than once. The context bounds the wait — on expiry the
// batcher keeps draining in the background.
func (sh *shard) drain(ctx context.Context) error {
	sh.mu.Lock()
	sh.draining = true
	sh.mu.Unlock()
	sh.ro.shardDraining(sh.cfg.index, true)
	if sh.cfg.manualFlush {
		// No batcher goroutine: the backlog drains here, synchronously.
		sh.flushAll()
		sh.drainedOnce.Do(func() { close(sh.drained) })
		return nil
	}
	sh.wakeBatcher()
	select {
	case <-sh.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// snapshot returns the shard's point-in-time counters.
func (sh *shard) snapshot() ShardStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	classes := make([]string, 0, len(sh.planClasses))
	for c := range sh.planClasses {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return ShardStats{
		Shard:       sh.cfg.index,
		Workers:     sh.cfg.workers,
		FastestGHz:  sh.cfg.mc.Freqs[0],
		Draining:    sh.draining,
		Queued:      sh.queuedN,
		Inflight:    sh.inflight,
		Admitted:    sh.stats.Admitted,
		Completed:   sh.stats.Completed,
		Timeouts:    sh.stats.Timeouts,
		Batches:     sh.stats.Batches,
		Tasks:       sh.stats.Tasks,
		Cancelled:   sh.stats.Cancelled,
		PlanClasses: classes,
		EnergyJ:     sh.energyTotalJ,
		EnergyAttrJ: sh.energyAttrJ,
		OverheadJ:   sh.energyOverheadJ,
	}
}

// addTo folds the shard's counters into the cluster Stats.
func (sh *shard) addTo(st *Stats) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st.Queued += sh.queuedN
	st.Inflight += sh.inflight
	st.Admitted += sh.stats.Admitted
	st.Completed += sh.stats.Completed
	st.Timeouts += sh.stats.Timeouts
	st.Batches += sh.stats.Batches
	st.Tasks += sh.stats.Tasks
	st.Cancelled += sh.stats.Cancelled
}

// gaugeAgg maintains the cluster-total queue-depth and in-flight
// gauges. Shards hold their own counts under their own locks; the
// aggregate applies signed deltas so the exported values are cluster
// totals — and, for a single shard, exactly the pre-router values.
type gaugeAgg struct {
	mu       sync.Mutex
	queued   map[string]int
	inflight int
	qd       *obs.GaugeVec
	inf      *obs.Gauge
}

func newGaugeAgg(so *serveObs) *gaugeAgg {
	return &gaugeAgg{queued: map[string]int{}, qd: so.queueDepth, inf: so.inflight}
}

// queue applies a delta to the tenant's cluster queued-task count.
func (g *gaugeAgg) queue(tenant string, d int) {
	g.mu.Lock()
	g.queued[tenant] += d
	v := g.queued[tenant]
	g.mu.Unlock()
	g.qd.With(tenant).Set(float64(v))
}

// flight applies a delta to the cluster in-flight count (d may be 0:
// the batch-formation path re-publishes the gauge after expiries, as
// the pre-router server did).
func (g *gaugeAgg) flight(d int) {
	g.mu.Lock()
	g.inflight += d
	v := g.inflight
	g.mu.Unlock()
	g.inf.Set(float64(v))
}
