package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Pooled, allocation-free response encoding for the ingest hot path.
//
// The wire format is pinned by the replay suite: whatever
// json.NewEncoder(w).SetIndent("", "  ").Encode produced before must
// come out byte-identical now. The fast encoder therefore reproduces
// encoding/json's exact float formatting ('f' format, switching to 'e'
// below 1e-6 or at 1e21, with the two-digit exponent trim) and bails
// to the legacy encoder the moment a value falls outside its safe
// subset — a NaN/Inf, or a string containing anything beyond plain
// printable ASCII (encoding/json escapes <, >, & and control bytes;
// the fast path emits none of them). Fixed bodies (drain 503s, the
// handler-timer 504) are rendered once at server construction by the
// legacy encoder itself, so their bytes are identical by construction.

var respPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// staticBodies holds the canonical bytes of the fixed responses and
// the precomputed Retry-After header value.
type staticBodies struct {
	retryAfterSecs  int
	retryAfterStr   string
	drainCluster    []byte // 503, route(): cluster draining
	drainShards     []byte // 503, route(): every shard draining
	deadlineExpired []byte // 504, handler wall timer
	expiredAtAdm    []byte // 504, admission fast-fail
	expiredQueued   []byte // 504, dropped at batch formation
}

// canonicalJSON renders v exactly as writeJSON does (indented, with
// the encoder's trailing newline).
func canonicalJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return buf.Bytes()
}

func (sb *staticBodies) init(retryAfter time.Duration) {
	sec := int((retryAfter + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	sb.retryAfterSecs = sec
	sb.retryAfterStr = strconv.Itoa(sec)
	sb.drainCluster = canonicalJSON(errorBody{Error: "server is draining, not admitting new jobs", RetryAfter: sec})
	sb.drainShards = canonicalJSON(errorBody{Error: "every shard is draining, not admitting new jobs", RetryAfter: sec})
	sb.deadlineExpired = canonicalJSON(errorBody{Error: "deadline expired"})
	sb.expiredAtAdm = canonicalJSON(errorBody{Error: "deadline already expired at admission"})
	sb.expiredQueued = canonicalJSON(errorBody{Error: "deadline expired while queued"})
}

// static returns the precomputed body for a fixed message, or nil.
func (sb *staticBodies) static(status int, msg string) []byte {
	switch status {
	case 503:
		switch msg {
		case "server is draining, not admitting new jobs":
			return sb.drainCluster
		case "every shard is draining, not admitting new jobs":
			return sb.drainShards
		}
	case 504:
		switch msg {
		case "deadline expired":
			return sb.deadlineExpired
		case "deadline already expired at admission":
			return sb.expiredAtAdm
		case "deadline expired while queued":
			return sb.expiredQueued
		}
	}
	return nil
}

// writeBody commits status and writes a fully rendered body.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// appendJSONString appends s as a JSON string if it is plain printable
// ASCII with nothing encoding/json would escape (including the HTML
// set <, >, &).
func appendJSONString(b []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return b, false
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	b = append(b, '"')
	return b, true
}

// appendJSONFloat appends f exactly as encoding/json renders a
// float64.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims a two-digit exponent's leading zero:
		// 1e-09 → 1e-9.
		n := len(b)
		if n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// appendJobResult appends res in the indented layout of
// json.Encoder.SetIndent("", "  ") at nesting depth (0 = top level).
func appendJobResult(b []byte, res *JobResult, depth int) ([]byte, bool) {
	var pad, pad2 string
	switch depth {
	case 0:
		pad, pad2 = "", "  "
	default:
		pad, pad2 = "  ", "    "
	}
	var ok bool
	b = append(b, '{', '\n')
	b = append(b, pad2...)
	b = append(b, `"job": `...)
	b = strconv.AppendUint(b, res.Job, 10)
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"tenant": `...)
	if b, ok = appendJSONString(b, res.Tenant); !ok {
		return b, false
	}
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"func": `...)
	if b, ok = appendJSONString(b, res.Func); !ok {
		return b, false
	}
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"tasks": `...)
	b = strconv.AppendInt(b, int64(res.Tasks), 10)
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"tasks_run": `...)
	b = strconv.AppendInt(b, int64(res.TasksRun), 10)
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"batch": `...)
	b = strconv.AppendInt(b, int64(res.Batch), 10)
	b = append(b, ",\n"...)
	if res.Shard != nil {
		b = append(b, pad2...)
		b = append(b, `"shard": `...)
		b = strconv.AppendInt(b, int64(*res.Shard), 10)
		b = append(b, ",\n"...)
	}
	b = append(b, pad2...)
	b = append(b, `"queue_ms": `...)
	if b, ok = appendJSONFloat(b, res.QueueMS); !ok {
		return b, false
	}
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"batch_ms": `...)
	if b, ok = appendJSONFloat(b, res.BatchMS); !ok {
		return b, false
	}
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"energy_j": `...)
	if b, ok = appendJSONFloat(b, res.EnergyJ); !ok {
		return b, false
	}
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"energy_attr_j": `...)
	if b, ok = appendJSONFloat(b, res.EnergyAttrJ); !ok {
		return b, false
	}
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"steals": `...)
	b = strconv.AppendInt(b, int64(res.Steals), 10)
	b = append(b, ",\n"...)
	b = append(b, pad2...)
	b = append(b, `"policy": `...)
	if b, ok = appendJSONString(b, res.Policy); !ok {
		return b, false
	}
	b = append(b, '\n')
	b = append(b, pad...)
	b = append(b, '}')
	return b, true
}

// writeResult writes a JobResult response (200, or a bare-result
// shape), falling back to the legacy encoder outside the fast subset.
func writeResult(w http.ResponseWriter, status int, res *JobResult) {
	bp := respPool.Get().(*[]byte)
	b, ok := appendJobResult((*bp)[:0], res, 0)
	if !ok {
		*bp = b[:0]
		respPool.Put(bp)
		writeJSON(w, status, res)
		return
	}
	b = append(b, '\n')
	writeBody(w, status, b)
	*bp = b[:0]
	respPool.Put(bp)
}

// appendErrorBody appends the errorBody envelope.
func appendErrorBody(b []byte, msg string, retryAfter int) ([]byte, bool) {
	var ok bool
	b = append(b, "{\n  \"error\": "...)
	if b, ok = appendJSONString(b, msg); !ok {
		return b, false
	}
	if retryAfter > 0 {
		b = append(b, ",\n  \"retry_after_s\": "...)
		b = strconv.AppendInt(b, int64(retryAfter), 10)
	}
	b = append(b, "\n}"...)
	return b, true
}

// writeError writes the errorBody envelope (static bytes for the fixed
// messages, pooled fast encoding otherwise).
func (s *Server) writeError(w http.ResponseWriter, status int, msg string, retryAfter int) {
	if body := s.static.static(status, msg); body != nil {
		writeBody(w, status, body)
		return
	}
	bp := respPool.Get().(*[]byte)
	b, ok := appendErrorBody((*bp)[:0], msg, retryAfter)
	if !ok {
		*bp = b[:0]
		respPool.Put(bp)
		writeJSON(w, status, errorBody{Error: msg, RetryAfter: retryAfter})
		return
	}
	b = append(b, '\n')
	writeBody(w, status, b)
	*bp = b[:0]
	respPool.Put(bp)
}

// writePartial writes the 504 mid-batch envelope: the errorBody fields
// plus the partial result, nested one level deep.
func (s *Server) writePartial(w http.ResponseWriter, status int, msg string, res *JobResult) {
	bp := respPool.Get().(*[]byte)
	b := (*bp)[:0]
	var ok bool
	b = append(b, "{\n  \"error\": "...)
	if b, ok = appendJSONString(b, msg); !ok {
		ok = false
	} else {
		b = append(b, ",\n  \"partial\": "...)
		b, ok = appendJobResult(b, res, 1)
	}
	if !ok {
		*bp = b[:0]
		respPool.Put(bp)
		writeJSON(w, status, struct {
			errorBody
			Partial *JobResult `json:"partial,omitempty"`
		}{errorBody{Error: msg}, res})
		return
	}
	b = append(b, "\n}\n"...)
	writeBody(w, status, b)
	*bp = b[:0]
	respPool.Put(bp)
}
