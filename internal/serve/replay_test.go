package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// counterAt reads a labelled counter from the registry, 0 if unset.
func counterAt(t *testing.T, reg *obs.Registry, name string, labels ...string) float64 {
	t.Helper()
	c, ok := reg.At(name, labels...).(*obs.Counter)
	if !ok || c == nil {
		return 0
	}
	return c.Value()
}

// TestExpiredDeadlineFastFails is the regression test for the
// admission fast-fail: a job whose absolute deadline has already
// passed must be refused with 504 at route time and never reach the
// batcher — before the fix it was queued, burned a batch slot, and
// was only dropped at batch formation.
func TestExpiredDeadlineFastFails(t *testing.T) {
	s, ts := testServer(t, nil)
	resp, body := submit(t, ts.URL, JobRequest{
		Func:         "sha1",
		Count:        2,
		DeadlineAtMS: time.Now().Add(-time.Second).UnixMilli(),
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Errorf("fast-fail carried Retry-After %q; retrying an expired request is pointless", ra)
	}
	drain(t, s)
	st := s.Stats()
	if st.Admitted != 0 {
		t.Errorf("expired job was admitted (admitted=%d); it must never reach the batcher", st.Admitted)
	}
	if st.Batches != 0 || st.Tasks != 0 {
		t.Errorf("expired job consumed batch resources: batches=%d tasks=%d", st.Batches, st.Tasks)
	}
	if st.Timeouts != 1 {
		t.Errorf("timeouts=%d, want 1 (fast-fail counts as a timeout)", st.Timeouts)
	}
	if got := counterAt(t, s.cfg.Obs, "eewa_serve_cancelled_jobs_total", "expired_at_admission"); got != 1 {
		t.Errorf("expired_at_admission counter = %g, want 1", got)
	}
}

// TestDeadlineExclusivity: DeadlineMS and DeadlineAtMS are mutually
// exclusive; sending both is a 400, not a silent preference.
func TestDeadlineExclusivity(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, _ := submit(t, ts.URL, JobRequest{
		Func:         "sha1",
		DeadlineMS:   5000,
		DeadlineAtMS: time.Now().Add(5 * time.Second).UnixMilli(),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestDisconnectCountsCancellation is the regression test for the
// invisible-disconnect bug: a client hanging up mid-queue sets the
// job's cancelled flag but, before the fix, incremented no counter —
// disconnects were indistinguishable from deadline drops. The
// eewa_check conservation invariant must still close afterwards:
// every admitted task is either run or cancelled, never lost.
func TestDisconnectCountsCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, func(c *Config) {
		c.Obs = reg
		c.FlushEvery = 200 * time.Millisecond // window to disconnect in
		c.Workers = 2
		c.Machine = machine.Generic(2)
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs",
		jsonBody(t, JobRequest{Func: "sha1", Count: 4}))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the job is admitted (queued), then hang up before the
	// batcher's interval elapses.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected the client request to fail after disconnect")
	}

	// The batcher still owns the job; once it processes (and drops) it,
	// the disconnect counter and the cancelled-task count must move.
	for time.Now().Before(deadline) {
		if counterAt(t, reg, "eewa_serve_cancelled_jobs_total", "disconnect") >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := counterAt(t, reg, "eewa_serve_cancelled_jobs_total", "disconnect"); got != 1 {
		t.Fatalf("disconnect cancellation counter = %g, want 1", got)
	}
	drain(t, s)

	// Task conservation: the disconnected job's slots must be fully
	// returned — queue and inflight back to zero, the job resolved
	// exactly once (as a timeout), and any task that did reach the
	// runtime either ran or was withdrawn. Under -tags eewa_check the
	// runtime asserts its half of the identity internally; Violations
	// surfaces any breach either way.
	st := s.Stats()
	if st.Queued != 0 || st.Inflight != 0 {
		t.Errorf("conservation leak: queued=%d inflight=%d after drain, want 0/0", st.Queued, st.Inflight)
	}
	if st.Timeouts != 1 {
		t.Errorf("timeouts=%d, want exactly 1 (the cancelled job, counted once)", st.Timeouts)
	}
	if got := st.Tasks + st.Cancelled; got != 0 && got != 4 {
		t.Errorf("partial accounting: run=%d cancelled=%d, want all-or-none of 4", st.Tasks, st.Cancelled)
	}
	if v := s.Violations(); len(v) != 0 {
		t.Errorf("runtime violations after disconnect: %v", v)
	}
}

// TestSubmitFlushLockstep exercises the programmatic replay seam: a
// virtual clock, manual flushing, and Submit/Pending instead of HTTP.
// Outcomes must be a pure function of the submission sequence.
func TestSubmitFlushLockstep(t *testing.T) {
	var vnow atomic.Int64
	vnow.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	s, err := New(Config{
		Workers:     2,
		Machine:     machine.Generic(2),
		Policy:      "eewa",
		Seed:        7,
		Obs:         obs.NewRegistry(),
		Clock:       func() time.Time { return time.Unix(0, vnow.Load()) },
		ManualFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	ok, rej := s.Submit(JobRequest{Func: "sha1", Count: 2, Seed: 1})
	if rej != nil {
		t.Fatalf("submit rejected: %+v", rej)
	}
	// A job whose deadline expires before the flush boundary must be
	// dropped at batch formation — in virtual time, no wall timers.
	late, rej := s.Submit(JobRequest{Func: "sha1", Count: 1, Seed: 2, DeadlineMS: 10})
	if rej != nil {
		t.Fatalf("submit rejected: %+v", rej)
	}

	vnow.Add(int64(50 * time.Millisecond)) // past late's deadline
	s.Flush()

	if st, res, _ := ok.Wait(); st != 200 || res == nil || res.TasksRun != 2 {
		t.Errorf("ok job: status %d res %+v", st, res)
	}
	if st, _, _ := late.Wait(); st != http.StatusGatewayTimeout {
		t.Errorf("late job: status %d, want 504 queued-drop", st)
	}

	st := s.Stats()
	if st.Batches != 1 || st.Tasks != 2 || st.Timeouts != 1 {
		t.Errorf("stats %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
