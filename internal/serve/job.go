package serve

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/rt"
)

// JobRequest is the wire format of POST /v1/jobs. A job is Count tasks
// of the named kernel function over a deterministic corpus; the task
// class seen by the profiler (and therefore by EEWA's CC table) is the
// function name.
type JobRequest struct {
	// Tenant scopes the admission queue; empty means "default".
	Tenant string `json:"tenant"`
	// Func is the kernel to run — one of Funcs().
	Func string `json:"func"`
	// SizeBytes is the corpus size per task (default 4096, max 1 MiB).
	SizeBytes int `json:"size_bytes"`
	// Count is the number of tasks in the job (default 1; a job must
	// fit in one batch, so Count ≤ the server's MaxBatch).
	Count int `json:"count"`
	// Seed makes the corpus deterministic (task i uses Seed+i).
	Seed uint64 `json:"seed"`
	// DeadlineMS, when > 0, bounds the job's total latency: if it
	// expires while the job is queued the job is dropped unstarted
	// (504); tasks not yet started when it expires mid-batch are
	// withdrawn through the runtime's cancellation hook.
	DeadlineMS int64 `json:"deadline_ms"`
	// DeadlineAtMS, when > 0, is an absolute deadline in epoch
	// milliseconds (mutually exclusive with DeadlineMS). Client-side
	// timestamping and trace replay use it; a job whose absolute
	// deadline has already passed at admission is fast-failed with 504
	// before it can occupy a queue or batch slot.
	DeadlineAtMS int64 `json:"deadline_at_ms,omitempty"`
	// WorkHintS is an optional per-task workload hint in seconds at
	// F0 (the paper's offline-profiling spirit): the batcher packs
	// heavier-hinted jobs first. Zero is fine.
	WorkHintS float64 `json:"work_hint_s"`
}

// JobResult is the success (and partial-timeout) response body.
type JobResult struct {
	Job      uint64 `json:"job"`
	Tenant   string `json:"tenant"`
	Func     string `json:"func"`
	Tasks    int    `json:"tasks"`
	TasksRun int    `json:"tasks_run"`
	Batch    int    `json:"batch"`
	// Shard is the runtime shard the routing tier placed the job on.
	// Nil (omitted) in single-shard clusters, so those responses stay
	// byte-identical to the pre-router wire format; a pointer, not a
	// bare int, so shard 0 still serializes in a real cluster.
	Shard   *int    `json:"shard,omitempty"`
	QueueMS float64 `json:"queue_ms"`
	BatchMS float64 `json:"batch_ms"`
	// EnergyJ is the whole batch's modeled energy (the iteration this
	// job rode in); EnergyAttrJ is the slice attributed to this job:
	// its class's busy-state energy, split pro rata by executed tasks
	// among the batch's jobs of the same class.
	EnergyJ     float64 `json:"energy_j"`
	EnergyAttrJ float64 `json:"energy_attr_j"`
	Steals      int     `json:"steals"`
	Policy      string  `json:"policy"`
}

// outcome is what the batcher reports back to the waiting HTTP
// handler.
type outcome struct {
	status int
	err    string
	res    *JobResult
}

// job is one admitted submission.
type job struct {
	id       uint64
	tenant   string
	req      JobRequest
	tasks    []rt.Task
	shard    int       // set at admission by the shard that accepted it
	deadline time.Time // zero = none
	enqueued time.Time
	started  time.Time

	ran       atomic.Int64 // payloads actually executed
	cancelled atomic.Bool  // set by the handler on deadline/disconnect
	done      chan outcome // buffered; exactly one send, by the batcher

	// Span edges inside the batch, recorded by the task closures (unix
	// nanos; 0 = no payload ran). With enqueued and started above they
	// delimit the request span's phases:
	//
	//	admission ──queue──▶ batch formation ──batch wait──▶ first
	//	payload ──execute──▶ last payload ──▶ complete
	firstStart atomic.Int64
	lastEnd    atomic.Int64
}

func (j *job) expiredBy(now time.Time) bool {
	return j.cancelled.Load() || (!j.deadline.IsZero() && now.After(j.deadline))
}

// finish delivers the batcher's outcome. The handler may have stopped
// listening (its own deadline fired first); the buffered channel makes
// the send unconditional and non-blocking.
func (j *job) finish(o outcome) {
	j.done <- o
}

// Funcs returns the servable kernel names.
func Funcs() []string {
	return []string{"sha1", "md5", "lzw", "bwc", "bzip2", "dmc", "je"}
}

// maxSizeBytes bounds the per-task corpus so a single request cannot
// pin arbitrary memory.
const maxSizeBytes = 1 << 20

// payload builds the closure for one task of fn over a size-byte
// corpus. Corpora are generated up front (at submission, off the
// worker hot path) so the measured task time is the kernel itself.
func payload(fn string, seed uint64, size int) (func(), error) {
	switch fn {
	case "sha1":
		data := kernels.TextCorpus(seed, size)
		return func() { d := kernels.SHA1(data); kernels.KeepAlive(d[:]) }, nil
	case "md5":
		data := kernels.TextCorpus(seed, size)
		return func() { d := kernels.MD5(data); kernels.KeepAlive(d[:]) }, nil
	case "lzw":
		data := kernels.TextCorpus(seed, size)
		return func() { kernels.KeepAlive(kernels.LZWCompress(data)) }, nil
	case "bwc":
		data := kernels.TextCorpus(seed, size)
		return func() { kernels.KeepAlive(kernels.BWC(data)) }, nil
	case "bzip2":
		data := kernels.TextCorpus(seed, size)
		return func() {
			out, err := kernels.Bzip2Like(data, 16<<10)
			if err == nil {
				kernels.KeepAlive(out)
			}
		}, nil
	case "dmc":
		data := kernels.StructuredCorpus(seed, size)
		return func() { kernels.KeepAlive(kernels.DMCCompress(data)) }, nil
	case "je":
		// Interpret size as pixel count; clamp to a sane square.
		dim := int(math.Sqrt(float64(size)))
		if dim < 16 {
			dim = 16
		}
		if dim > 512 {
			dim = 512
		}
		im := kernels.GradientImage(seed, dim, dim)
		return func() {
			out, err := kernels.EncodeJPEGish(im, 75)
			if err == nil {
				kernels.KeepAlive(out)
			}
		}, nil
	default:
		return nil, fmt.Errorf("unknown func %q (want one of %v)", fn, Funcs())
	}
}

// newJob validates req and builds the job with its task closures. The
// returned error is a client error (HTTP 400).
func (s *Server) newJob(req JobRequest) (*job, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.SizeBytes == 0 {
		req.SizeBytes = 4096
	}
	if req.SizeBytes < 0 || req.SizeBytes > maxSizeBytes {
		return nil, fmt.Errorf("size_bytes %d outside (0, %d]", req.SizeBytes, maxSizeBytes)
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > s.cfg.MaxBatch {
		return nil, fmt.Errorf("count %d outside (0, %d] (a job must fit in one batch)", req.Count, s.cfg.MaxBatch)
	}
	if req.Count > s.cfg.QueueDepth {
		return nil, fmt.Errorf("count %d exceeds the tenant queue depth %d", req.Count, s.cfg.QueueDepth)
	}
	if req.DeadlineMS < 0 || req.DeadlineAtMS < 0 || req.WorkHintS < 0 {
		return nil, fmt.Errorf("deadline_ms, deadline_at_ms and work_hint_s must be non-negative")
	}
	if req.DeadlineMS > 0 && req.DeadlineAtMS > 0 {
		return nil, fmt.Errorf("deadline_ms and deadline_at_ms are mutually exclusive")
	}
	j := &job{
		id:     atomic.AddUint64(&s.jobSeq, 1),
		tenant: req.Tenant,
		req:    req,
		done:   make(chan outcome, 1),
	}
	if req.DeadlineMS > 0 {
		j.deadline = s.now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	if req.DeadlineAtMS > 0 {
		j.deadline = time.UnixMilli(req.DeadlineAtMS)
	}
	j.tasks = make([]rt.Task, 0, req.Count)
	for i := 0; i < req.Count; i++ {
		run, err := payload(req.Func, req.Seed+uint64(i), req.SizeBytes)
		if err != nil {
			return nil, err
		}
		j.tasks = append(j.tasks, rt.Task{
			Class: req.Func,
			Run: func() {
				j.firstStart.CompareAndSwap(0, time.Now().UnixNano())
				run()
				j.ran.Add(1)
				end := time.Now().UnixNano()
				for {
					old := j.lastEnd.Load()
					if end <= old || j.lastEnd.CompareAndSwap(old, end) {
						break
					}
				}
			},
			// Withdraw the task if the handler cancelled the job or its
			// deadline expired after the batch formed but before this
			// task started. Reads the service clock, so a frozen virtual
			// clock (trace replay) makes mid-batch expiry deterministic.
			Cancelled: func() bool { return j.expiredBy(s.now()) },
		})
	}
	return j, nil
}
