package serve

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/rt"
)

// JobRequest is the wire format of POST /v1/jobs. A job is Count tasks
// of the named kernel function over a deterministic corpus; the task
// class seen by the profiler (and therefore by EEWA's CC table) is the
// function name.
type JobRequest struct {
	// Tenant scopes the admission queue; empty means "default".
	Tenant string `json:"tenant"`
	// Func is the kernel to run — one of Funcs().
	Func string `json:"func"`
	// SizeBytes is the corpus size per task (default 4096, max 1 MiB).
	SizeBytes int `json:"size_bytes"`
	// Count is the number of tasks in the job (default 1; a job must
	// fit in one batch, so Count ≤ the server's MaxBatch).
	Count int `json:"count"`
	// Seed makes the corpus deterministic (task i uses Seed+i).
	Seed uint64 `json:"seed"`
	// DeadlineMS, when > 0, bounds the job's total latency: if it
	// expires while the job is queued the job is dropped unstarted
	// (504); tasks not yet started when it expires mid-batch are
	// withdrawn through the runtime's cancellation hook.
	DeadlineMS int64 `json:"deadline_ms"`
	// DeadlineAtMS, when > 0, is an absolute deadline in epoch
	// milliseconds (mutually exclusive with DeadlineMS). Client-side
	// timestamping and trace replay use it; a job whose absolute
	// deadline has already passed at admission is fast-failed with 504
	// before it can occupy a queue or batch slot.
	DeadlineAtMS int64 `json:"deadline_at_ms,omitempty"`
	// WorkHintS is an optional per-task workload hint in seconds at
	// F0 (the paper's offline-profiling spirit): the batcher packs
	// heavier-hinted jobs first. Zero is fine.
	WorkHintS float64 `json:"work_hint_s"`
}

// JobResult is the success (and partial-timeout) response body.
type JobResult struct {
	Job      uint64 `json:"job"`
	Tenant   string `json:"tenant"`
	Func     string `json:"func"`
	Tasks    int    `json:"tasks"`
	TasksRun int    `json:"tasks_run"`
	Batch    int    `json:"batch"`
	// Shard is the runtime shard the routing tier placed the job on.
	// Nil (omitted) in single-shard clusters, so those responses stay
	// byte-identical to the pre-router wire format; a pointer, not a
	// bare int, so shard 0 still serializes in a real cluster.
	Shard   *int    `json:"shard,omitempty"`
	QueueMS float64 `json:"queue_ms"`
	BatchMS float64 `json:"batch_ms"`
	// EnergyJ is the whole batch's modeled energy (the iteration this
	// job rode in); EnergyAttrJ is the slice attributed to this job:
	// its class's busy-state energy, split pro rata by executed tasks
	// among the batch's jobs of the same class.
	EnergyJ     float64 `json:"energy_j"`
	EnergyAttrJ float64 `json:"energy_attr_j"`
	Steals      int     `json:"steals"`
	Policy      string  `json:"policy"`
}

// outcome is what the batcher reports back to the waiting HTTP
// handler.
type outcome struct {
	status int
	err    string
	// res points into the job's own result buffer (j.res) — valid only
	// while the receiver holds a reference on the job. Callers that
	// outlive their reference (Pending.Wait) must copy it out before
	// releasing.
	res *JobResult
}

// taskSlot binds one task of a job to its kernel and corpus slice. The
// slot lives inside the pooled job and is reused across requests: the
// two method values handed to the runtime (run, cancelled) are
// allocated once when the slot array grows and never again, which is
// what keeps the per-task closure allocations of the old builder off
// the steady-state ingest path.
type taskSlot struct {
	j    *job
	kfn  func([]byte) // static kernel over data (nil when legacy is set)
	data []byte       // this task's slice of the job's corpus slab
	// legacy is the old-style self-contained payload closure, used by
	// kernels that build per-task state no slab can carry ("je" and its
	// image); allocated per request on that path only.
	legacy func()
}

func (ts *taskSlot) run() {
	j := ts.j
	j.firstStart.CompareAndSwap(0, time.Now().UnixNano())
	if ts.legacy != nil {
		ts.legacy()
	} else {
		ts.kfn(ts.data)
	}
	j.ran.Add(1)
	end := time.Now().UnixNano()
	for {
		old := j.lastEnd.Load()
		if end <= old || j.lastEnd.CompareAndSwap(old, end) {
			break
		}
	}
}

// cancelled withdraws the task if the handler cancelled the job or its
// deadline expired after the batch formed but before this task
// started. Reads the service clock, so a frozen virtual clock (trace
// replay) makes mid-batch expiry deterministic.
func (ts *taskSlot) cancelled() bool { return ts.j.expiredBy(ts.j.srv.now()) }

// job is one admitted submission. Jobs are pooled (Server.jobPool) and
// reference-counted: the submitter holds one reference, the shard that
// admits it takes another, and the job returns to the pool when the
// last reference is released.
type job struct {
	srv      *Server
	id       uint64
	seq      uint64 // admission order on its shard (stripe merge key)
	tenant   string
	req      JobRequest
	tasks    []rt.Task  // parallel to slots; reused across requests
	slots    []taskSlot // task state; method values allocated on growth only
	corpus   []byte     // one slab, Count×SizeBytes, sliced per task
	shard    int        // set at admission by the shard that accepted it
	deadline time.Time  // zero = none
	enqueued time.Time
	started  time.Time
	res      JobResult // result buffer the batcher fills (outcome.res points here)

	refs      atomic.Int32
	ran       atomic.Int64 // payloads actually executed
	cancelled atomic.Bool  // set by the handler on deadline/disconnect
	done      chan outcome // buffered; exactly one send, by the batcher

	// Span edges inside the batch, recorded by the task closures (unix
	// nanos; 0 = no payload ran). With enqueued and started above they
	// delimit the request span's phases:
	//
	//	admission ──queue──▶ batch formation ──batch wait──▶ first
	//	payload ──execute──▶ last payload ──▶ complete
	firstStart atomic.Int64
	lastEnd    atomic.Int64
}

func (j *job) expiredBy(now time.Time) bool {
	return j.cancelled.Load() || (!j.deadline.IsZero() && now.After(j.deadline))
}

// finish delivers the batcher's outcome. The handler may have stopped
// listening (its own deadline fired first); the buffered channel makes
// the send unconditional and non-blocking.
func (j *job) finish(o outcome) {
	j.done <- o
}

// retain takes an additional reference (admission).
func (j *job) retain() { j.refs.Add(1) }

// release drops one reference; the last one resets the job and puts it
// back in the server pool. Task/slot/corpus capacity is kept so a warm
// pool serves steady-state traffic with zero per-job allocations.
func (j *job) release() {
	if j.refs.Add(-1) != 0 {
		return
	}
	j.id, j.seq, j.shard = 0, 0, 0
	j.tenant = ""
	j.req = JobRequest{}
	j.deadline, j.enqueued, j.started = time.Time{}, time.Time{}, time.Time{}
	j.res = JobResult{}
	j.ran.Store(0)
	j.cancelled.Store(false)
	j.firstStart.Store(0)
	j.lastEnd.Store(0)
	for i := range j.slots {
		j.slots[i].legacy = nil
	}
	j.srv.jobPool.Put(j)
}

// getJob takes a job from the pool (or builds a fresh one) with one
// reference held by the caller.
func (s *Server) getJob() *job {
	j, _ := s.jobPool.Get().(*job)
	if j == nil {
		j = &job{srv: s, done: make(chan outcome, 1)}
	}
	// A waiter that gave up (handler deadline, disconnect) may have left
	// the batcher's outcome undelivered in the buffer; drain it so the
	// next waiter does not read a stale result.
	select {
	case <-j.done:
	default:
	}
	j.refs.Store(1)
	return j
}

// Funcs returns the servable kernel names.
func Funcs() []string {
	return []string{"sha1", "md5", "lzw", "bwc", "bzip2", "dmc", "je"}
}

// maxSizeBytes bounds the per-task corpus so a single request cannot
// pin arbitrary memory.
const maxSizeBytes = 1 << 20

// kernelSpec is a slab-friendly kernel: run executes over a corpus
// slice, fill writes that task's deterministic corpus in place. Both
// are package-level funcs, so binding one to a task allocates nothing.
type kernelSpec struct {
	run  func([]byte)
	fill func(dst []byte, seed uint64)
}

var kernelSpecs = map[string]kernelSpec{
	"sha1": {
		run:  func(data []byte) { d := kernels.SHA1(data); kernels.KeepAlive(d[:]) },
		fill: kernels.TextCorpusInto,
	},
	"md5": {
		run:  func(data []byte) { d := kernels.MD5(data); kernels.KeepAlive(d[:]) },
		fill: kernels.TextCorpusInto,
	},
	"lzw": {
		run:  func(data []byte) { kernels.KeepAlive(kernels.LZWCompress(data)) },
		fill: kernels.TextCorpusInto,
	},
	"bwc": {
		run:  func(data []byte) { kernels.KeepAlive(kernels.BWC(data)) },
		fill: kernels.TextCorpusInto,
	},
	"bzip2": {
		run: func(data []byte) {
			out, err := kernels.Bzip2Like(data, 16<<10)
			if err == nil {
				kernels.KeepAlive(out)
			}
		},
		fill: kernels.TextCorpusInto,
	},
	"dmc": {
		run:  func(data []byte) { kernels.KeepAlive(kernels.DMCCompress(data)) },
		fill: kernels.StructuredCorpusInto,
	},
}

// legacyPayload builds the self-contained closure for kernels outside
// the slab model ("je" carries an image, not a byte corpus). Corpora
// are generated up front (at submission, off the worker hot path) so
// the measured task time is the kernel itself.
func legacyPayload(fn string, seed uint64, size int) (func(), error) {
	switch fn {
	case "je":
		// Interpret size as pixel count; clamp to a sane square.
		dim := int(math.Sqrt(float64(size)))
		if dim < 16 {
			dim = 16
		}
		if dim > 512 {
			dim = 512
		}
		im := kernels.GradientImage(seed, dim, dim)
		return func() {
			out, err := kernels.EncodeJPEGish(im, 75)
			if err == nil {
				kernels.KeepAlive(out)
			}
		}, nil
	default:
		return nil, fmt.Errorf("unknown func %q (want one of %v)", fn, Funcs())
	}
}

// grow readies the job's slot and task arrays for count tasks. On
// growth every slot's two method values are (re)bound once; at steady
// state the arrays are just resliced.
func (j *job) grow(count int) {
	if cap(j.slots) >= count {
		j.slots = j.slots[:count]
		j.tasks = j.tasks[:count]
		return
	}
	j.slots = make([]taskSlot, count)
	j.tasks = make([]rt.Task, count)
	for i := range j.slots {
		ts := &j.slots[i]
		ts.j = j
		j.tasks[i] = rt.Task{Run: ts.run, Cancelled: ts.cancelled}
	}
}

// newJob validates req and builds the job with its tasks, reusing a
// pooled job when one is warm. The returned error is a client error
// (HTTP 400).
func (s *Server) newJob(req JobRequest) (*job, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.SizeBytes == 0 {
		req.SizeBytes = 4096
	}
	if req.SizeBytes < 0 || req.SizeBytes > maxSizeBytes {
		return nil, fmt.Errorf("size_bytes %d outside (0, %d]", req.SizeBytes, maxSizeBytes)
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > s.cfg.MaxBatch {
		return nil, fmt.Errorf("count %d outside (0, %d] (a job must fit in one batch)", req.Count, s.cfg.MaxBatch)
	}
	if req.Count > s.cfg.QueueDepth {
		return nil, fmt.Errorf("count %d exceeds the tenant queue depth %d", req.Count, s.cfg.QueueDepth)
	}
	if req.DeadlineMS < 0 || req.DeadlineAtMS < 0 || req.WorkHintS < 0 {
		return nil, fmt.Errorf("deadline_ms, deadline_at_ms and work_hint_s must be non-negative")
	}
	if req.DeadlineMS > 0 && req.DeadlineAtMS > 0 {
		return nil, fmt.Errorf("deadline_ms and deadline_at_ms are mutually exclusive")
	}
	spec, fast := kernelSpecs[req.Func]
	if !fast && req.Func != "je" {
		// Same precedence as the old per-task builder: every shape error
		// above outranks an unknown function name.
		return nil, fmt.Errorf("unknown func %q (want one of %v)", req.Func, Funcs())
	}

	j := s.getJob()
	j.id = atomic.AddUint64(&s.jobSeq, 1)
	j.tenant = req.Tenant
	j.req = req
	if req.DeadlineMS > 0 {
		j.deadline = s.now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	if req.DeadlineAtMS > 0 {
		j.deadline = time.UnixMilli(req.DeadlineAtMS)
	}
	j.grow(req.Count)
	if fast {
		need := req.Count * req.SizeBytes
		if cap(j.corpus) >= need {
			j.corpus = j.corpus[:need]
		} else {
			j.corpus = make([]byte, need)
		}
		for i := 0; i < req.Count; i++ {
			data := j.corpus[i*req.SizeBytes : (i+1)*req.SizeBytes]
			spec.fill(data, req.Seed+uint64(i))
			j.slots[i].kfn = spec.run
			j.slots[i].data = data
			j.slots[i].legacy = nil
			j.tasks[i].Class = req.Func
		}
		return j, nil
	}
	for i := 0; i < req.Count; i++ {
		run, err := legacyPayload(req.Func, req.Seed+uint64(i), req.SizeBytes)
		if err != nil {
			j.release()
			return nil, err
		}
		j.slots[i].kfn = nil
		j.slots[i].data = nil
		j.slots[i].legacy = run
		j.tasks[i].Class = req.Func
	}
	return j, nil
}
