package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Striped admission must be invisible: the same single-threaded
// submission sequence against an 8-stripe server and a 1-stripe
// oracle has to produce identical outcomes — the same rejections with
// the same messages, and the same batch compositions (admission seq
// merge == global FIFO).
func TestStripedAdmissionMatchesSingleStripeOracle(t *testing.T) {
	run := func(stripes int) []string {
		cfg := Config{
			Workers:     4,
			Machine:     machine.Opteron16(),
			Policy:      "eewa",
			Seed:        7,
			Obs:         obs.NewRegistry(),
			ManualFlush: true,
			MaxBatch:    16,
			QueueDepth:  24,
			MaxInFlight: 64,

			AdmissionStripes: stripes,
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer drain(t, s)

		tenants := []string{"acme", "beta", "gamma", "delta", "epsilon", "zeta"}
		var outcomes []string
		idx := 0
		for round := 0; round < 3; round++ {
			type waiting struct {
				idx int
				p   *Pending
			}
			var pend []waiting
			for i := 0; i < 40; i++ {
				req := JobRequest{
					Tenant:    tenants[idx%len(tenants)],
					Func:      "sha1",
					Count:     1 + idx%3,
					SizeBytes: 256,
					Seed:      uint64(idx),
					WorkHintS: float64(idx%5) * 1e-4,
				}
				p, rej := s.Submit(req)
				if rej != nil {
					outcomes = append(outcomes, fmt.Sprintf("%d rej %d %s", idx, rej.Status, rej.Msg))
				} else {
					pend = append(pend, waiting{idx, p})
				}
				idx++
			}
			s.Flush()
			for _, w := range pend {
				status, res, errMsg := w.p.Wait()
				if res != nil {
					outcomes = append(outcomes, fmt.Sprintf("%d st=%d batch=%d run=%d/%d", w.idx, status, res.Batch, res.TasksRun, res.Tasks))
				} else {
					outcomes = append(outcomes, fmt.Sprintf("%d st=%d err=%s", w.idx, status, errMsg))
				}
			}
		}
		return outcomes
	}

	oracle := run(1)
	striped := run(8)
	if len(oracle) != len(striped) {
		t.Fatalf("outcome counts differ: oracle %d, striped %d", len(oracle), len(striped))
	}
	for i := range oracle {
		if oracle[i] != striped[i] {
			t.Errorf("outcome %d: oracle %q, striped %q", i, oracle[i], striped[i])
		}
	}
}

// A concurrent multi-tenant submit storm through the full HTTP stack:
// every submission must resolve to exactly one of 200/429, per-tenant
// accounting must close (submitted == ok + rejected), and after drain
// the task ledger must balance — no admitted task lost or double-run
// by the striped queues. Run under -race (see the race-serve target).
func TestConcurrentSubmitStormConservesTasks(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, func(c *Config) {
		c.Obs = reg
		c.QueueDepth = 32
		c.MaxInFlight = 128
		c.MaxBatch = 32
		c.FlushEvery = 2 * time.Millisecond

		c.AdmissionStripes = 8
	})

	const (
		nTenants    = 6
		goroutines  = 18
		jobsEach    = 25
		tasksPerJob = 2
	)
	type counts struct{ submitted, ok, rejected, other int64 }
	perTenant := make([]counts, nTenants)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var local [nTenants]counts
			for i := 0; i < jobsEach; i++ {
				tn := (g + i) % nTenants
				resp, body := submit(t, ts.URL, JobRequest{
					Tenant:    fmt.Sprintf("tenant-%d", tn),
					Func:      "md5",
					Count:     tasksPerJob,
					SizeBytes: 256,
					Seed:      uint64(g*1000 + i),
				})
				local[tn].submitted++
				switch resp.StatusCode {
				case 200:
					local[tn].ok++
				case 429:
					local[tn].rejected++
				default:
					local[tn].other++
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
				}
			}
			mu.Lock()
			for tn := range local {
				perTenant[tn].submitted += local[tn].submitted
				perTenant[tn].ok += local[tn].ok
				perTenant[tn].rejected += local[tn].rejected
				perTenant[tn].other += local[tn].other
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	drain(t, s)

	var totalOK, totalSubmitted int64
	for tn := range perTenant {
		c := perTenant[tn]
		if c.submitted != c.ok+c.rejected+c.other {
			t.Errorf("tenant %d: %d submitted != %d ok + %d rejected + %d other",
				tn, c.submitted, c.ok, c.rejected, c.other)
		}
		totalOK += c.ok
		totalSubmitted += c.submitted
	}
	if totalSubmitted != goroutines*jobsEach {
		t.Fatalf("submitted %d, want %d", totalSubmitted, goroutines*jobsEach)
	}

	// Task ledger: every admitted job (no deadlines here) completes all
	// its tasks; nothing queued or in flight survives the drain.
	st := s.Stats()
	if st.Admitted != uint64(totalOK) {
		t.Errorf("admitted %d, want %d (the 200 count)", st.Admitted, totalOK)
	}
	if st.Completed != uint64(totalOK) {
		t.Errorf("completed %d, want %d", st.Completed, totalOK)
	}
	if st.Tasks != uint64(totalOK)*tasksPerJob {
		t.Errorf("tasks run %d, want %d", st.Tasks, uint64(totalOK)*tasksPerJob)
	}
	if st.Queued != 0 || st.Inflight != 0 {
		t.Errorf("post-drain backlog: queued %d, inflight %d, want 0/0", st.Queued, st.Inflight)
	}
	if st.Timeouts != 0 {
		t.Errorf("timeouts %d, want 0", st.Timeouts)
	}
}
