package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/profile"
)

func testServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers: 4,
		Machine: machine.Opteron16(),
		Policy:  "eewa",
		Seed:    7,
		Obs:     obs.NewRegistry(),
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, url string, req JobRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitRunsJob(t *testing.T) {
	s, ts := testServer(t, nil)
	resp, body := submit(t, ts.URL, JobRequest{Func: "sha1", Count: 3, SizeBytes: 2048})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 3 || res.TasksRun != 3 || res.Policy != "eewa" || res.EnergyJ <= 0 {
		t.Errorf("result %+v", res)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Completed != 1 || st.Tasks != 3 {
		t.Errorf("stats %+v", st)
	}
	drain(t, s)
}

// A burst that overflows the per-tenant queue must surface as 429s
// with a Retry-After header and eewa_serve_rejected_total increments —
// and every job that WAS admitted still completes.
func TestBackpressureBurst(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, func(c *Config) {
		c.Obs = reg
		c.QueueDepth = 8
		c.MaxInFlight = 16
		c.FlushEvery = 50 * time.Millisecond
	})

	const burst = 48
	var ok, rejected, retryAfterMissing atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := submit(t, ts.URL, JobRequest{Func: "md5", Count: 2, SizeBytes: 512, Seed: uint64(i)})
			switch resp.StatusCode {
			case 200:
				ok.Add(1)
			case 429:
				rejected.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					retryAfterMissing.Add(1)
				}
				var eb errorBody
				if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfter < 1 {
					t.Errorf("429 body %s", body)
				}
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	drain(t, s)

	if rejected.Load() == 0 {
		t.Error("burst never overflowed the queue (no 429s) — backpressure untested")
	}
	if retryAfterMissing.Load() != 0 {
		t.Errorf("%d rejections lacked Retry-After", retryAfterMissing.Load())
	}
	if ok.Load() == 0 {
		t.Error("every job was rejected — admission never succeeded")
	}
	st := s.Stats()
	if st.Admitted != uint64(ok.Load()) || st.Rejected != uint64(rejected.Load()) {
		t.Errorf("stats %+v vs ok=%d rejected=%d", st, ok.Load(), rejected.Load())
	}
	if st.Tasks != 2*uint64(ok.Load()) {
		t.Errorf("tasks_run = %d, want %d (zero lost/duplicated)", st.Tasks, 2*ok.Load())
	}
	// The metric must agree with the HTTP-observed rejections.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `eewa_serve_rejected_total{reason="tenant_queue_full"}`) &&
		!strings.Contains(buf.String(), `eewa_serve_rejected_total{reason="inflight_budget"}`) {
		t.Errorf("rejected_total not exported:\n%s", buf.String())
	}
}

// Drain mid-batch: every admitted job completes exactly once (task
// conservation, enforced by the internal/check invariants on the
// runtime), late submissions get 503, and the batcher goroutine exits.
func TestDrainMidBatchConservesTasks(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := testServer(t, func(c *Config) {
		c.Invariants = true
		c.FlushEvery = 5 * time.Millisecond
		c.MaxInFlight = 4096
		c.QueueDepth = 4096
	})

	var ok, late atomic.Int64
	var tasksOK atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				resp, body := submit(t, ts.URL, JobRequest{
					Tenant: fmt.Sprintf("t%d", g%3), Func: "sha1", Count: 4,
					SizeBytes: 16 << 10, Seed: uint64(g*100 + i),
				})
				switch resp.StatusCode {
				case 200:
					ok.Add(1)
					var res JobResult
					if err := json.Unmarshal(body, &res); err != nil {
						t.Error(err)
						continue
					}
					if res.TasksRun != res.Tasks {
						t.Errorf("drained job lost tasks: %+v", res)
					}
					tasksOK.Add(int64(res.Tasks))
				case 503:
					late.Add(1)
				default:
					t.Errorf("status %d: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	// Drain once work is genuinely in flight (polling beats a fixed
	// sleep under -race, where everything runs slower).
	waitUntil := time.Now().Add(10 * time.Second)
	for time.Now().Before(waitUntil) && s.Stats().Admitted < 8 {
		time.Sleep(2 * time.Millisecond)
	}
	drain(t, s)
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no job completed before the drain")
	}
	if late.Load() == 0 {
		t.Log("note: drain landed after the last submission (no 503s observed)")
	}
	st := s.Stats()
	if st.Completed != uint64(ok.Load()) || st.Tasks != uint64(tasksOK.Load()) {
		t.Errorf("stats %+v vs ok=%d tasksOK=%d — lost or duplicated work", st, ok.Load(), tasksOK.Load())
	}
	if vs := s.Runtime().Violations(); len(vs) != 0 {
		t.Errorf("runtime invariant violations across drain: %v", vs)
	}

	// A second drain is a no-op, and after the HTTP server closes no
	// service goroutines may linger.
	drain(t, s)
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after drain+close", before, runtime.NumGoroutine())
}

// A deadline that expires while the job is still queued must cancel it
// before any task starts: 504, eewa_serve_timeout_total, zero payloads.
func TestDeadlineExpiresWhileQueued(t *testing.T) {
	s, ts := testServer(t, func(c *Config) {
		c.FlushEvery = 400 * time.Millisecond // batcher holds the job past its deadline
	})
	start := time.Now()
	resp, body := submit(t, ts.URL, JobRequest{Func: "lzw", Count: 2, DeadlineMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if el := time.Since(start); el > 300*time.Millisecond {
		t.Errorf("504 took %v — deadline did not cancel the queued job", el)
	}
	drain(t, s)
	st := s.Stats()
	if st.Tasks != 0 {
		t.Errorf("cancelled job still ran %d tasks", st.Tasks)
	}
	if st.Timeouts == 0 {
		t.Error("timeout not counted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, ts := testServer(t, nil)
	cases := []JobRequest{
		{Func: "nope"},
		{Func: "sha1", Count: 100000},
		{Func: "sha1", SizeBytes: maxSizeBytes + 1},
		{Func: "sha1", DeadlineMS: -1},
	}
	for _, req := range cases {
		resp, body := submit(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v → status %d: %s", req, resp.StatusCode, body)
		}
	}
	// Unknown fields are rejected too (strict API).
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"func":"sha1","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field → status %d", resp.StatusCode)
	}
	drain(t, s)
}

func TestHealthzFlipsOnDrain(t *testing.T) {
	s, ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d before drain", resp.StatusCode)
	}
	drain(t, s)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d after drain", resp.StatusCode)
	}
	// And submissions now bounce with 503 + Retry-After.
	resp2, body := submit(t, ts.URL, JobRequest{Func: "sha1"})
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Errorf("post-drain submit: status %d, Retry-After %q, body %s",
			resp2.StatusCode, resp2.Header.Get("Retry-After"), body)
	}
}

// The offline-profile ingestion fix, end to end: a MaxWork=0 snapshot
// must fail server construction instead of silently configuring EEWA.
func TestNewRejectsCorruptOfflineSnapshot(t *testing.T) {
	mc := machine.Opteron16()
	bad := &profile.Snapshot{
		Freqs: []float64(mc.Freqs),
		T:     0.01,
		Classes: []profile.Class{
			{Name: "sha1", Count: 8, AvgWork: 1e-3, MaxWork: 0},
		},
	}
	_, err := New(Config{Workers: 4, Machine: mc, Policy: "eewa", Offline: bad})
	if err == nil {
		t.Fatal("corrupt offline snapshot accepted")
	}
	if !strings.Contains(err.Error(), "max work") {
		t.Errorf("error should blame max work: %v", err)
	}

	good := &profile.Snapshot{
		Freqs: []float64(mc.Freqs),
		T:     0.01,
		Classes: []profile.Class{
			{Name: "sha1", Count: 8, AvgWork: 1e-3, MaxWork: 1.2e-3},
		},
	}
	s, err := New(Config{Workers: 4, Machine: mc, Policy: "eewa", Offline: good})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, s)

	// And a non-EEWA policy with an offline profile is a loud error,
	// not a silent no-op.
	if _, err := New(Config{Workers: 4, Machine: mc, Policy: "cilk", Offline: good}); err == nil {
		t.Error("offline profile with cilk should be rejected")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, ts := testServer(t, nil)
	submit(t, ts.URL, JobRequest{Func: "dmc", SizeBytes: 1024})
	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}()
	if resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Policy != "eewa" || st.Workers != 4 || st.Admitted != 1 {
		t.Errorf("stats %+v", st)
	}
	drain(t, s)
}

// TestRequestSpansAndEnergyAttribution submits jobs from two tenants
// running different kernels and checks the span histograms, the
// per-tenant energy attribution, JobResult.EnergyAttrJ and
// LatencySummary.
func TestRequestSpansAndEnergyAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, func(c *Config) {
		c.Obs = reg
		c.FlushEvery = 5 * time.Millisecond
	})

	type sub struct {
		tenant, fn string
	}
	subs := []sub{{"acme", "sha1"}, {"acme", "lzw"}, {"globex", "sha1"}, {"globex", "dmc"}}
	var wg sync.WaitGroup
	results := make([]JobResult, len(subs))
	for i, sb := range subs {
		wg.Add(1)
		go func(i int, sb sub) {
			defer wg.Done()
			resp, body := submit(t, ts.URL, JobRequest{
				Tenant: sb.tenant, Func: sb.fn, Count: 4, SizeBytes: 4096, Seed: uint64(i),
			})
			if resp.StatusCode != 200 {
				t.Errorf("submit %v: status %d: %s", sb, resp.StatusCode, body)
				return
			}
			if err := json.Unmarshal(body, &results[i]); err != nil {
				t.Error(err)
			}
		}(i, sb)
	}
	wg.Wait()
	drain(t, s)

	totalAttr := 0.0
	for i, res := range results {
		if res.EnergyAttrJ <= 0 || res.EnergyAttrJ > res.EnergyJ {
			t.Errorf("job %d: EnergyAttrJ = %g, EnergyJ = %g", i, res.EnergyAttrJ, res.EnergyJ)
		}
		totalAttr += res.EnergyAttrJ
	}
	if total := s.Runtime().Stats().Energy; totalAttr <= 0 || totalAttr > total {
		t.Errorf("attributed %g J exceeds total %g J", totalAttr, total)
	}

	// Span histograms: every (class, tenant) child that completed a job
	// has queue and e2e observations; exec spans exist where payloads ran.
	for _, sb := range subs {
		h, ok := reg.At("eewa_serve_e2e_seconds", sb.fn, sb.tenant).(*obs.LogHistogram)
		if !ok || h.Count() == 0 {
			t.Errorf("no e2e span for %v", sb)
			continue
		}
		if q := h.Quantile(0.99); q <= 0 {
			t.Errorf("%v: e2e p99 = %g", sb, q)
		}
		if eh, ok := reg.At("eewa_serve_exec_seconds", sb.fn, sb.tenant).(*obs.LogHistogram); !ok || eh.Count() == 0 {
			t.Errorf("no exec span for %v", sb)
		}
	}

	// Tenant energy counters match the JobResult attribution.
	vec := reg.CounterVec("eewa_serve_energy_tenant_joules_total", "", "tenant")
	got := vec.With("acme").Value() + vec.With("globex").Value()
	if diff := got - totalAttr; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("tenant counters sum %g, job attributions sum %g", got, totalAttr)
	}

	// LatencySummary covers all four jobs with ordered quantiles.
	sum := s.LatencySummary()
	if sum.Jobs != uint64(len(subs)) {
		t.Errorf("summary jobs = %d, want %d", sum.Jobs, len(subs))
	}
	if !(sum.E2EP50 > 0 && sum.E2EP50 <= sum.E2EP95 && sum.E2EP95 <= sum.E2EP99) {
		t.Errorf("e2e quantiles out of order: %+v", sum)
	}
	if sum.QueueP99 < sum.QueueP50 {
		t.Errorf("queue quantiles out of order: %+v", sum)
	}

	// The spans and attribution counters reach the Prometheus export.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"# TYPE eewa_serve_e2e_seconds histogram",
		"# TYPE eewa_serve_queue_wait_seconds histogram",
		`eewa_serve_e2e_seconds_count{class="sha1",tenant="acme"}`,
		`eewa_serve_energy_tenant_joules_total{tenant="globex"}`,
		`eewa_rt_energy_class_joules_total{class="dmc"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
}
