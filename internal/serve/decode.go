package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"sync"
)

// Pooled, allocation-free request decoding for the ingest hot path.
//
// The old path built a json.Decoder over an http.MaxBytesReader per
// request — several heap objects and a reflective decode per job. This
// path reads the body into a pooled buffer and hand-parses the one
// fixed shape POST /v1/jobs accepts. The parser is deliberately
// strict: the moment it sees anything it is not certain about — an
// escape sequence, a non-ASCII byte, a float that needs slow-path
// rounding, an unknown field, malformed syntax — it bails and the body
// is re-parsed with encoding/json into a zeroed struct. The fallback
// is both the correctness net (exotic-but-valid bodies still decode,
// with identical results) and the error bank (clients keep the exact
// stdlib error strings the tests and traces pin).

// maxBodyBytes mirrors the old http.MaxBytesReader(…, 1<<16) bound.
const maxBodyBytes = 1 << 16

// errBodyTooLarge reproduces MaxBytesReader's error text, which the
// old path surfaced through the decoder verbatim.
var errBodyTooLarge = errors.New("http: request body too large")

// ingest is the pooled per-request decode state: one body buffer, one
// request struct, neither escaping to the heap between requests.
type ingest struct {
	buf []byte
	req JobRequest
}

var ingestPool = sync.Pool{New: func() any { return &ingest{buf: make([]byte, 0, 2048)} }}

func getIngest() *ingest { return ingestPool.Get().(*ingest) }

func putIngest(in *ingest) {
	in.req = JobRequest{}
	ingestPool.Put(in)
}

// readBody slurps r into the pooled buffer, stopping one byte past the
// size limit — enough to know the body overflowed without buffering an
// arbitrarily large upload.
func (in *ingest) readBody(r io.Reader) error {
	buf := in.buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF || len(buf) > maxBodyBytes {
			in.buf = buf
			return nil
		}
		if err != nil {
			in.buf = buf
			return err
		}
	}
}

// decodeJob parses the buffered body into in.req with semantics
// equivalent to the old json.NewDecoder(MaxBytesReader(body)) path:
// one JSON value, unknown fields rejected, trailing bytes ignored, and
// a body whose value does not complete inside the limit failing with
// the MaxBytesReader error text.
func (s *Server) decodeJob(in *ingest) error {
	body := in.buf
	tooLarge := len(body) > maxBodyBytes
	if tooLarge {
		// The old reader fed the decoder exactly the first 64 KiB before
		// erroring; a value that completes inside the window still
		// decodes, one that needs more input surfaces the limit error.
		body = body[:maxBodyBytes]
	}
	in.req = JobRequest{}
	if s.parseJobRequest(body, &in.req) {
		return nil
	}
	in.req = JobRequest{}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	err := dec.Decode(&in.req)
	if err == nil {
		return nil
	}
	if tooLarge && (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)) {
		return errBodyTooLarge
	}
	return err
}

// tenantTable interns tenant strings so steady-state decoding of a
// known tenant allocates nothing (map lookup keyed by string(bytes) is
// allocation-free). Bounded, so a hostile tenant stream cannot grow it
// without limit — overflow tenants just pay the one string allocation.
type tenantTable struct {
	mu sync.RWMutex
	m  map[string]string
}

const maxInternedTenants = 4096

func (t *tenantTable) intern(b []byte) string {
	t.mu.RLock()
	s, ok := t.m[string(b)]
	t.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[string]string, 64)
	}
	if len(t.m) < maxInternedTenants {
		t.m[s] = s
	}
	t.mu.Unlock()
	return s
}

// internFunc returns the canonical string for a known kernel name
// without allocating.
func internFunc(b []byte) string {
	switch string(b) {
	case "sha1":
		return "sha1"
	case "md5":
		return "md5"
	case "lzw":
		return "lzw"
	case "bwc":
		return "bwc"
	case "bzip2":
		return "bzip2"
	case "dmc":
		return "dmc"
	case "je":
		return "je"
	}
	return string(b)
}

// jparser is the strict fast parser. Every method returns ok=false to
// mean "bail to encoding/json", never to report a specific error.
type jparser struct {
	b []byte
	i int
	s *Server
}

func (p *jparser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jparser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// null consumes a literal null (stdlib semantics: null into any field
// is a no-op).
func (p *jparser) null() bool {
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "null" {
		p.i += 4
		return true
	}
	return false
}

// rawString scans a string token containing only printable ASCII and
// no escapes — the only strings the fast path accepts — and returns
// the bytes between the quotes.
func (p *jparser) rawString() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			out := p.b[start:p.i]
			p.i++
			return out, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

// number scans one strictly valid JSON number token. Invalid syntax
// (leading zeros, bare dots, missing exponent digits) bails so the
// stdlib decoder reports its canonical error.
func (p *jparser) number() (tok []byte, hasFracExp bool, ok bool) {
	start := p.i
	if p.eat('-') {
	}
	switch {
	case p.eat('0'):
		// A zero may not be followed by another digit.
		if p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			return nil, false, false
		}
	case p.i < len(p.b) && p.b[p.i] >= '1' && p.b[p.i] <= '9':
		for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			p.i++
		}
	default:
		return nil, false, false
	}
	if p.eat('.') {
		hasFracExp = true
		n := p.i
		for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			p.i++
		}
		if p.i == n {
			return nil, false, false
		}
	}
	if p.i < len(p.b) && (p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		hasFracExp = true
		p.i++
		if p.i < len(p.b) && (p.b[p.i] == '+' || p.b[p.i] == '-') {
			p.i++
		}
		n := p.i
		for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
			p.i++
		}
		if p.i == n {
			return nil, false, false
		}
	}
	return p.b[start:p.i], hasFracExp, true
}

// atoiBytes parses a decimal integer token (digits with optional '-').
func atoiBytes(tok []byte) (int64, bool) {
	i, neg := 0, false
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	if len(tok)-i > 19 {
		return 0, false
	}
	var n uint64
	for ; i < len(tok); i++ {
		n = n*10 + uint64(tok[i]-'0')
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true
	}
	if n >= 1<<63 {
		return 0, false
	}
	return int64(n), true
}

// atouBytes parses a decimal uint64 token.
func atouBytes(tok []byte) (uint64, bool) {
	if tok[0] == '-' || len(tok) > 20 {
		return 0, false
	}
	var n uint64
	for i := 0; i < len(tok); i++ {
		d := uint64(tok[i] - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// pow10tab holds the exactly representable powers of ten.
var pow10tab = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// atofBytes parses a float on the classic exact fast path: when the
// mantissa fits in 53 bits and the decimal exponent is within ±22, one
// IEEE multiply or divide by an exact power of ten is correctly
// rounded, so the result is bit-identical to strconv.ParseFloat.
// Anything outside that window bails to the stdlib decoder.
func atofBytes(tok []byte) (float64, bool) {
	i, neg := 0, false
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	var mant uint64
	dexp := 0
	seenDot := false
	for ; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= '0' && c <= '9':
			if mant > ((1<<53)-10)/10 {
				return 0, false
			}
			mant = mant*10 + uint64(c-'0')
			if seenDot {
				dexp--
			}
		case c == '.':
			seenDot = true
		case c == 'e' || c == 'E':
			rest := tok[i+1:]
			if rest[0] == '+' {
				rest = rest[1:]
			}
			e, ok := atoiBytes(rest)
			if !ok || e > 40 || e < -40 {
				return 0, false
			}
			dexp += int(e)
			i = len(tok) - 1
		}
	}
	if dexp > 22 || dexp < -22 {
		return 0, false
	}
	f := float64(mant)
	if dexp > 0 {
		f *= pow10tab[dexp]
	} else if dexp < 0 {
		f /= pow10tab[-dexp]
	}
	if neg {
		f = -f
	}
	return f, true
}

// parseJobRequest is the fast path for the one request shape the job
// endpoints accept. Returns false to fall back to encoding/json.
func (s *Server) parseJobRequest(b []byte, req *JobRequest) bool {
	p := jparser{b: b, s: s}
	p.ws()
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return true
	}
	for {
		key, ok := p.rawString()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		if !p.field(key, req) {
			return false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		// Trailing bytes after the closing brace are ignored, exactly as
		// json.Decoder.Decode reads one value and stops.
		return p.eat('}')
	}
}

// field parses one "key": value pair into req.
func (p *jparser) field(key []byte, req *JobRequest) bool {
	switch string(key) {
	case "tenant":
		if p.null() {
			return true
		}
		v, ok := p.rawString()
		if !ok {
			return false
		}
		req.Tenant = p.s.tenants.intern(v)
	case "func":
		if p.null() {
			return true
		}
		v, ok := p.rawString()
		if !ok {
			return false
		}
		req.Func = internFunc(v)
	case "size_bytes":
		return p.intField(&req.SizeBytes)
	case "count":
		return p.intField(&req.Count)
	case "seed":
		if p.null() {
			return true
		}
		tok, frac, ok := p.number()
		if !ok || frac {
			return false
		}
		v, ok := atouBytes(tok)
		if !ok {
			return false
		}
		req.Seed = v
	case "deadline_ms":
		return p.int64Field(&req.DeadlineMS)
	case "deadline_at_ms":
		return p.int64Field(&req.DeadlineAtMS)
	case "work_hint_s":
		if p.null() {
			return true
		}
		tok, _, ok := p.number()
		if !ok {
			return false
		}
		v, ok := atofBytes(tok)
		if !ok {
			return false
		}
		req.WorkHintS = v
	default:
		// Unknown field: the stdlib decoder owns the error message.
		return false
	}
	return true
}

func (p *jparser) intField(dst *int) bool {
	if p.null() {
		return true
	}
	tok, frac, ok := p.number()
	if !ok || frac {
		return false
	}
	v, ok := atoiBytes(tok)
	if !ok || int64(int(v)) != v {
		return false
	}
	*dst = int(v)
	return true
}

func (p *jparser) int64Field(dst *int64) bool {
	if p.null() {
		return true
	}
	tok, frac, ok := p.number()
	if !ok || frac {
		return false
	}
	v, ok := atoiBytes(tok)
	if !ok {
		return false
	}
	*dst = v
	return true
}
