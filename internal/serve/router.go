// Router tier: class-aware placement of admitted jobs over the
// cluster's runtime shards. The placement rule lifts the paper's
// task-class rule to cluster scope — a job class goes to the shard
// whose current plan has headroom for it, and a class no shard's plan
// knows goes to the shard with the fastest ladder (the paper's
// "unknown class → fastest group"). Backpressure-aware spillover walks
// the remaining healthy shards before rejecting, and shard-level drain
// removes a shard from every candidate order without interrupting the
// rest of the cluster.
package serve

import (
	"context"
	"sort"
)

// Routing-policy identifiers for Config.Routing (and the cluster
// sweep's routing axis — internal/sweep uses the same names).
const (
	// RouteClass is the workload-aware rule above (the default).
	RouteClass = "class"
	// RouteRR is blind round-robin over healthy shards — the baseline
	// class-aware routing is compared against.
	RouteRR = "rr"
	// RouteLeast sends every job to the healthy shard with the most
	// in-flight headroom, ignoring classes.
	RouteLeast = "least"
)

// RoutingPolicies returns the canonical routing-policy identifiers.
func RoutingPolicies() []string { return []string{RouteClass, RouteRR, RouteLeast} }

func validRouting(name string) bool {
	for _, id := range RoutingPolicies() {
		if name == id {
			return true
		}
	}
	return false
}

// ShardStats is one shard's slice of /v1/shards: admission counters,
// the classes its current plan covers, and its energy roll-up.
type ShardStats struct {
	Shard      int     `json:"shard"`
	Workers    int     `json:"workers"`
	FastestGHz float64 `json:"fastest_ghz"`
	Draining   bool    `json:"draining"`
	Queued     int     `json:"queued_tasks"`
	Inflight   int     `json:"inflight_tasks"`
	Admitted   uint64  `json:"admitted_jobs"`
	Completed  uint64  `json:"completed_jobs"`
	Timeouts   uint64  `json:"timeout_jobs"`
	Batches    uint64  `json:"batches"`
	Tasks      uint64  `json:"tasks_run"`
	Cancelled  uint64  `json:"tasks_cancelled"`
	// PlanClasses are the task classes the shard's current plan
	// allocated c-groups for (profiled in its last batch) — the router's
	// placement signal.
	PlanClasses []string `json:"plan_classes"`
	// EnergyJ is the shard's total modeled energy; EnergyAttrJ the part
	// attributed to task classes (busy-state), OverheadJ the remainder
	// (search, dry spin, barrier halt, base draw). EnergyAttrJ +
	// OverheadJ == EnergyJ.
	EnergyJ     float64 `json:"energy_j"`
	EnergyAttrJ float64 `json:"energy_attr_j"`
	OverheadJ   float64 `json:"energy_overhead_j"`
}

// RouterStats is the /v1/shards body: the routing policy, per-shard
// stats and the cluster energy roll-up.
type RouterStats struct {
	Routing string       `json:"routing"`
	Shards  []ShardStats `json:"shards"`
	Energy  EnergyRollup `json:"energy"`
}

// EnergyRollup is the cluster-wide energy account: for every shard,
// attributed + overhead equals that shard's total, and the shard
// totals sum to TotalJ — the closure invariant the eewa_check build
// verifies.
type EnergyRollup struct {
	TotalJ      float64       `json:"total_j"`
	AttributedJ float64       `json:"attributed_j"`
	OverheadJ   float64       `json:"overhead_j"`
	Shards      []ShardEnergy `json:"shards"`
}

// ShardEnergy is one shard's slice of the cluster energy roll-up.
type ShardEnergy struct {
	Shard       int     `json:"shard"`
	TotalJ      float64 `json:"total_j"`
	AttributedJ float64 `json:"attributed_j"`
	OverheadJ   float64 `json:"overhead_j"`
}

// ShardStats returns every shard's point-in-time counters.
func (s *Server) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.snapshot()
	}
	return out
}

// RouterStats returns the routing tier's view of the cluster.
func (s *Server) RouterStats() RouterStats {
	return RouterStats{
		Routing: s.cfg.Routing,
		Shards:  s.ShardStats(),
		Energy:  s.EnergyRollup(),
	}
}

// EnergyRollup sums the per-shard energy accounts into the cluster
// total.
func (s *Server) EnergyRollup() EnergyRollup {
	r := EnergyRollup{Shards: make([]ShardEnergy, len(s.shards))}
	for i, sh := range s.shards {
		sh.mu.Lock()
		se := ShardEnergy{Shard: i, TotalJ: sh.energyTotalJ, AttributedJ: sh.energyAttrJ, OverheadJ: sh.energyOverheadJ}
		sh.mu.Unlock()
		r.Shards[i] = se
		r.TotalJ += se.TotalJ
		r.AttributedJ += se.AttributedJ
		r.OverheadJ += se.OverheadJ
	}
	return r
}

// DrainShard drains one shard: it stops admitting, flushes its queue
// into final batches and leaves every candidate order, while the rest
// of the cluster keeps serving. Draining the last healthy shard leaves
// the cluster answering 503.
func (s *Server) DrainShard(ctx context.Context, shard int) error {
	if shard < 0 || shard >= len(s.shards) {
		return errShardRange(shard, len(s.shards))
	}
	return s.shards[shard].drain(ctx)
}

type errShardRangeT struct{ shard, n int }

func errShardRange(shard, n int) error { return errShardRangeT{shard, n} }
func (e errShardRangeT) Error() string {
	return "serve: shard " + itoa(e.shard) + " outside [0, " + itoa(e.n) + ")"
}

// route places an admitted job on a shard: the candidate order comes
// from the routing policy, and the first shard to accept wins
// (backpressure-aware spillover). When every candidate rejects, the
// preferred shard's rejection is returned; when every shard is
// draining, the whole cluster is.
func (s *Server) route(j *job) *Rejection {
	if s.draining.Load() {
		return &Rejection{Status: 503, Reason: "draining",
			Msg: "server is draining, not admitting new jobs"}
	}
	if j.expiredBy(s.now()) {
		// Admission fast-fail: the deadline has already passed (an
		// absolute deadline_at in the past, or a cancellation raced
		// in), so queuing the job would only burn a batch slot before
		// the batcher dropped it. Refuse it here — it must never reach
		// a shard queue. DESIGN.md §9 documents the semantics change.
		return &Rejection{Status: 504, Reason: "expired",
			Msg: "deadline already expired at admission"}
	}
	if len(s.shards) == 1 {
		// Single-shard fast path: no candidate order to build, no view
		// snapshot — the admission outcome (and every message) is
		// identical to the general path below with one healthy shard.
		sh := s.shards[0]
		if sh.draining.Load() {
			return &Rejection{Status: 503, Reason: "draining",
				Msg: "every shard is draining, not admitting new jobs"}
		}
		return sh.admit(j)
	}
	order := s.shardOrder(j.req.Func, len(j.tasks))
	if len(order) == 0 {
		return &Rejection{Status: 503, Reason: "draining",
			Msg: "every shard is draining, not admitting new jobs"}
	}
	var firstRej *Rejection
	for k, idx := range order {
		rej := s.shards[idx].admit(j)
		if rej == nil {
			s.ro.routed(idx)
			if k > 0 {
				s.ro.spilled()
			}
			return nil
		}
		if firstRej == nil || (firstRej.Status == 503 && rej.Status != 503) {
			firstRej = rej
		}
	}
	return firstRej
}

// shardOrder returns the candidate shard indices for a job of `class`
// with n tasks, best first. Draining shards never appear; with one
// shard the order is always [0], so the single-shard cluster admits
// exactly like the pre-router server.
func (s *Server) shardOrder(class string, n int) []int {
	views := make([]shardView, 0, len(s.shards))
	for _, sh := range s.shards {
		v := sh.view(class)
		if v.draining {
			continue
		}
		views = append(views, v)
	}
	if len(views) <= 1 {
		if len(views) == 0 {
			return nil
		}
		return []int{views[0].idx}
	}
	switch s.cfg.Routing {
	case RouteRR:
		start := int(s.rr.Add(1)-1) % len(views)
		order := make([]int, 0, len(views))
		for k := 0; k < len(views); k++ {
			order = append(order, views[(start+k)%len(views)].idx)
		}
		return order
	case RouteLeast:
		sort.SliceStable(views, func(a, b int) bool {
			if views[a].headroom != views[b].headroom {
				return views[a].headroom > views[b].headroom
			}
			return views[a].idx < views[b].idx
		})
	default: // RouteClass
		anyKnows := false
		for _, v := range views {
			if v.knows {
				anyKnows = true
				break
			}
		}
		sort.SliceStable(views, func(a, b int) bool {
			va, vb := views[a], views[b]
			if anyKnows {
				// Known class: its planning shards first, each by
				// headroom; spillover targets follow, also by headroom.
				if va.knows != vb.knows {
					return va.knows
				}
				if va.headroom != vb.headroom {
					return va.headroom > vb.headroom
				}
				return va.idx < vb.idx
			}
			// Class unknown cluster-wide: fastest ladder first — the
			// paper's "unknown class → fastest group" at cluster scope.
			if va.fastest != vb.fastest {
				return va.fastest > vb.fastest
			}
			if va.headroom != vb.headroom {
				return va.headroom > vb.headroom
			}
			return va.idx < vb.idx
		})
	}
	order := make([]int, len(views))
	for i, v := range views {
		order[i] = v.idx
	}
	return order
}

// itoa is strconv.Itoa for the tiny error path (avoids the import in
// this file's hot section).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
