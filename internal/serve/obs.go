package serve

import "repro/internal/obs"

// serveObs bundles the service's metric handles under the eewa_serve_*
// namespace. Like the runtime's rtObs, every handle is nil when the
// registry is nil and every method on a nil handle no-ops.
type serveObs struct {
	// admitted and inflight are the two families every submission hits;
	// they are striped so a multi-core ingest storm never serializes on
	// one cache line. They export as plain counter/gauge families.
	admitted *obs.StripedCounter
	// admittedTenant splits admissions by tenant — the per-cohort
	// admission view the traffic harness reads next to queueDepth and
	// tenantEnergy.
	admittedTenant *obs.CounterVec
	rejected       *obs.CounterVec // by reason
	timeouts       *obs.Counter
	completed      *obs.Counter
	// cancelled counts job cancellations by reason (deadline,
	// disconnect, expired_at_admission), making client disconnects
	// visible and distinguishable from deadline drops.
	cancelled *obs.CounterVec

	// queueDepth children are delta-maintained by the stripes (cluster
	// totals, exactly the values the old central aggregator published).
	queueDepth *obs.GaugeVec     // by tenant: queued tasks
	inflight   *obs.StripedGauge // admitted-but-unfinished tasks

	batches    *obs.Counter
	batchSecs  *obs.Histogram
	batchTasks *obs.Histogram
	queueSecs  *obs.Histogram

	tasksRun       *obs.Counter
	tasksCancelled *obs.Counter

	// Request-span phase distributions, keyed by task class (the kernel
	// function) and tenant. Log-bucketed: one family covers µs queue
	// waits and multi-second saturated batches alike.
	spanQueue *obs.LogHistogramVec
	spanBatch *obs.LogHistogramVec
	spanExec  *obs.LogHistogramVec
	spanE2E   *obs.LogHistogramVec

	// tenantEnergy is the per-tenant share of the runtime's class-level
	// busy energy, split pro rata by executed tasks.
	tenantEnergy *obs.CounterVec
}

// routerObs bundles the routing tier's extra metric handles under the
// eewa_serve_router_* namespace. They only exist with more than one
// shard — a single-shard server exports exactly the pre-router family
// set — and every method is safe on a nil receiver, so shard code
// calls them unconditionally.
type routerObs struct {
	routedV   *obs.CounterVec // by shard: jobs placed
	spillV    *obs.Counter    // jobs placed off their preferred shard
	inflightV *obs.GaugeVec   // by shard: queued + running tasks
	drainingV *obs.GaugeVec   // by shard: 1 while the shard drains
	energyV   *obs.CounterVec // by shard: modeled joules
}

func newRouterObs(reg *obs.Registry) *routerObs {
	return &routerObs{
		routedV: reg.CounterVec("eewa_serve_router_routed_total",
			"Jobs the routing tier placed, by destination shard.", "shard"),
		spillV: reg.Counter("eewa_serve_router_spillover_total",
			"Jobs that spilled past their preferred shard to a later candidate."),
		inflightV: reg.GaugeVec("eewa_serve_router_shard_inflight_tasks",
			"Admitted tasks not yet finished on each shard.", "shard"),
		drainingV: reg.GaugeVec("eewa_serve_router_shard_draining",
			"1 while the shard is draining, else 0.", "shard"),
		energyV: reg.CounterVec("eewa_serve_router_shard_energy_joules_total",
			"Modeled energy accumulated by each shard's runtime (joules).", "shard"),
	}
}

// shardLabel formats a shard index as a metric label.
func shardLabel(idx int) string { return itoa(idx) }

func (ro *routerObs) routed(idx int) {
	if ro == nil {
		return
	}
	ro.routedV.With(shardLabel(idx)).Inc()
}

func (ro *routerObs) spilled() {
	if ro == nil {
		return
	}
	ro.spillV.Inc()
}

func (ro *routerObs) shardInflight(idx, n int) {
	if ro == nil {
		return
	}
	ro.inflightV.With(shardLabel(idx)).Set(float64(n))
}

func (ro *routerObs) shardDraining(idx int, d bool) {
	if ro == nil {
		return
	}
	v := 0.0
	if d {
		v = 1
	}
	ro.drainingV.With(shardLabel(idx)).Set(v)
}

func (ro *routerObs) shardEnergy(idx int, joules float64) {
	if ro == nil {
		return
	}
	ro.energyV.With(shardLabel(idx)).Add(joules)
}

func newServeObs(reg *obs.Registry) serveObs {
	return serveObs{
		admitted: reg.StripedCounter("eewa_serve_admitted_total",
			"Jobs admitted into the batching queue."),
		admittedTenant: reg.CounterVec("eewa_serve_admitted_tenant_total",
			"Jobs admitted into the batching queue, by tenant.", "tenant"),
		rejected: reg.CounterVec("eewa_serve_rejected_total",
			"Jobs refused at admission, by reason (tenant_queue_full, inflight_budget, draining, invalid).",
			"reason"),
		cancelled: reg.CounterVec("eewa_serve_cancelled_jobs_total",
			"Job cancellations by reason: deadline (handler-side expiry), disconnect (client hung up), expired_at_admission (504 fast-fail).",
			"reason"),
		timeouts: reg.Counter("eewa_serve_timeout_total",
			"Jobs whose deadline expired before all tasks ran."),
		completed: reg.Counter("eewa_serve_completed_total",
			"Jobs that completed every task."),
		queueDepth: reg.GaugeVec("eewa_serve_queue_depth",
			"Queued (admitted, not yet batched) tasks per tenant.", "tenant"),
		inflight: reg.StripedGauge("eewa_serve_inflight_tasks",
			"Admitted tasks not yet finished (queued + running)."),
		batches: reg.Counter("eewa_serve_batches_total",
			"Iterations executed on the live runtime."),
		batchSecs: reg.Histogram("eewa_serve_batch_seconds",
			"Per-iteration wall-clock duration in seconds.", obs.ExpBuckets(1e-3, 2, 14)),
		batchTasks: reg.Histogram("eewa_serve_batch_tasks",
			"Tasks packed into each iteration.", obs.ExpBuckets(1, 2, 10)),
		queueSecs: reg.Histogram("eewa_serve_queue_seconds",
			"Per-job wait between admission and batch start, in seconds.", obs.ExpBuckets(1e-4, 2, 16)),
		tasksRun: reg.Counter("eewa_serve_tasks_run_total",
			"Task payloads executed."),
		tasksCancelled: reg.Counter("eewa_serve_tasks_cancelled_total",
			"Tasks withdrawn mid-batch through the cancellation hook."),
		spanQueue: reg.LogHistogramVec("eewa_serve_queue_wait_seconds",
			"Request span, queue phase: admission to batch formation.", "class", "tenant"),
		spanBatch: reg.LogHistogramVec("eewa_serve_batch_wait_seconds",
			"Request span, batch-wait phase: batch formation to the job's first payload start (planning, placement, pool wait).", "class", "tenant"),
		spanExec: reg.LogHistogramVec("eewa_serve_exec_seconds",
			"Request span, execute phase: the job's first payload start to its last payload end.", "class", "tenant"),
		spanE2E: reg.LogHistogramVec("eewa_serve_e2e_seconds",
			"Request span, end to end: admission to outcome delivery.", "class", "tenant"),
		tenantEnergy: reg.CounterVec("eewa_serve_energy_tenant_joules_total",
			"Busy-state energy attributed to each tenant's executed tasks (joules).", "tenant"),
	}
}
