package serve

import "repro/internal/obs"

// serveObs bundles the service's metric handles under the eewa_serve_*
// namespace. Like the runtime's rtObs, every handle is nil when the
// registry is nil and every method on a nil handle no-ops.
type serveObs struct {
	admitted  *obs.Counter
	rejected  *obs.CounterVec // by reason
	timeouts  *obs.Counter
	completed *obs.Counter

	queueDepth *obs.GaugeVec // by tenant: queued tasks
	inflight   *obs.Gauge    // admitted-but-unfinished tasks

	batches    *obs.Counter
	batchSecs  *obs.Histogram
	batchTasks *obs.Histogram
	queueSecs  *obs.Histogram

	tasksRun       *obs.Counter
	tasksCancelled *obs.Counter
}

func newServeObs(reg *obs.Registry) serveObs {
	return serveObs{
		admitted: reg.Counter("eewa_serve_admitted_total",
			"Jobs admitted into the batching queue."),
		rejected: reg.CounterVec("eewa_serve_rejected_total",
			"Jobs refused at admission, by reason (tenant_queue_full, inflight_budget, draining, invalid).",
			"reason"),
		timeouts: reg.Counter("eewa_serve_timeout_total",
			"Jobs whose deadline expired before all tasks ran."),
		completed: reg.Counter("eewa_serve_completed_total",
			"Jobs that completed every task."),
		queueDepth: reg.GaugeVec("eewa_serve_queue_depth",
			"Queued (admitted, not yet batched) tasks per tenant.", "tenant"),
		inflight: reg.Gauge("eewa_serve_inflight_tasks",
			"Admitted tasks not yet finished (queued + running)."),
		batches: reg.Counter("eewa_serve_batches_total",
			"Iterations executed on the live runtime."),
		batchSecs: reg.Histogram("eewa_serve_batch_seconds",
			"Per-iteration wall-clock duration in seconds.", obs.ExpBuckets(1e-3, 2, 14)),
		batchTasks: reg.Histogram("eewa_serve_batch_tasks",
			"Tasks packed into each iteration.", obs.ExpBuckets(1, 2, 10)),
		queueSecs: reg.Histogram("eewa_serve_queue_seconds",
			"Per-job wait between admission and batch start, in seconds.", obs.ExpBuckets(1e-4, 2, 16)),
		tasksRun: reg.Counter("eewa_serve_tasks_run_total",
			"Task payloads executed."),
		tasksCancelled: reg.Counter("eewa_serve_tasks_cancelled_total",
			"Tasks withdrawn mid-batch through the cancellation hook."),
	}
}
