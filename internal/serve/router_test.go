package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/rt"
	"repro/internal/xrand"
)

// ---- single-shard parity (the refactor's central promise) ----

// A one-shard routed server must be wire-identical to the pre-router
// server: no "shard" key in job results, no eewa_serve_router_* metric
// families, the raw seed on shard 0, and the old family set intact.
func TestSingleShardWireParity(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, func(c *Config) { c.Obs = reg })

	if got := s.shards[0].cfg.seed; got != 7 {
		t.Errorf("shard 0 seed = %d, want the raw config seed 7", got)
	}
	resp, body := submit(t, ts.URL, JobRequest{Func: "sha1", Count: 2, SizeBytes: 1024})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), `"shard"`) {
		t.Errorf("single-shard JobResult leaks a shard field: %s", body)
	}
	drain(t, s)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "eewa_serve_router_") {
		t.Errorf("single-shard server exports router-only families:\n%s", out)
	}
	// The pre-router family set is still there, unrenamed.
	for _, want := range []string{
		"eewa_serve_admitted_total", "eewa_serve_batches_total",
		"eewa_serve_inflight_tasks", "eewa_serve_queue_depth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export lost pre-router family %q", want)
		}
	}
}

// Two identically-configured single-shard servers must make identical
// batching decisions for the same submission sequence: same batch
// count, same tasks per batch, same profiled classes per batch.
func TestSingleShardDecisionParity(t *testing.T) {
	type batchRec struct {
		tasks   int
		classes string
	}
	run := func() []batchRec {
		var mu sync.Mutex
		var recs []batchRec
		s, ts := testServer(t, nil)
		s.shards[0].testBatchEnd = func(_ int, bs rt.BatchStats) {
			names := make([]string, 0, len(bs.Classes))
			for n := range bs.Classes {
				names = append(names, n)
			}
			// Map order is random; canonicalize.
			for i := range names {
				for k := i + 1; k < len(names); k++ {
					if names[k] < names[i] {
						names[i], names[k] = names[k], names[i]
					}
				}
			}
			mu.Lock()
			recs = append(recs, batchRec{tasks: bs.Tasks, classes: strings.Join(names, ",")})
			mu.Unlock()
		}
		for i, fn := range []string{"sha1", "lzw", "sha1", "dmc"} {
			resp, body := submit(t, ts.URL, JobRequest{Func: fn, Count: 3, SizeBytes: 2048, Seed: uint64(i)})
			if resp.StatusCode != 200 {
				t.Fatalf("submit %s: status %d: %s", fn, resp.StatusCode, body)
			}
		}
		drain(t, s)
		mu.Lock()
		defer mu.Unlock()
		return recs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("batch counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("batch %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Multi-shard seed derivation: shard 0 keeps the raw seed, shard i>0
// uses the split stream — and job results now carry the shard index.
func TestMultiShardSeedsAndShardField(t *testing.T) {
	s, ts := testServer(t, func(c *Config) { c.Shards = 3; c.Workers = 2 })
	for i, sh := range s.shards {
		want := uint64(7)
		if i > 0 {
			want = xrand.Split(7, uint64(i))
		}
		if sh.cfg.seed != want {
			t.Errorf("shard %d seed = %d, want %d", i, sh.cfg.seed, want)
		}
	}
	resp, body := submit(t, ts.URL, JobRequest{Func: "sha1", Count: 2, SizeBytes: 1024})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// Shard 0 must serialize too — the field is only omitted when the
	// cluster has a single shard, never for index 0 of a real cluster.
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Shard == nil {
		t.Errorf("multi-shard JobResult carries no shard field: %s", body)
	}
	drain(t, s)
}

// ---- routing order ----

// routedServer builds an N-shard server without starting load, for
// white-box shardOrder tests.
func routedServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{Workers: 2, Machine: machine.Opteron16(), Policy: "eewa", Seed: 1}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { drain(t, s) })
	return s
}

func setPlan(sh *shard, classes ...string) {
	sh.mu.Lock()
	sh.planClasses = map[string]struct{}{}
	for _, c := range classes {
		sh.planClasses[c] = struct{}{}
	}
	sh.mu.Unlock()
}

func setInflight(sh *shard, n int) {
	sh.inflight.Store(int64(n))
}

func TestShardOrderClassAware(t *testing.T) {
	s := routedServer(t, func(c *Config) { c.Shards = 3 })

	// Only shard 1's plan knows sha1: it leads; the spillover tail is
	// ordered by headroom (all equal here → by index).
	setPlan(s.shards[1], "sha1")
	if got := s.shardOrder("sha1", 1); got[0] != 1 {
		t.Errorf("class-aware order = %v, want shard 1 first", got)
	}

	// Shards 1 and 2 both know it; shard 2 has more headroom.
	setPlan(s.shards[2], "sha1")
	setInflight(s.shards[1], 100)
	if got := s.shardOrder("sha1", 1); got[0] != 2 || got[1] != 1 {
		t.Errorf("headroom tiebreak order = %v, want [2 1 0]", got)
	}
	setInflight(s.shards[1], 0)

	// A draining shard leaves every order.
	s.shards[2].draining.Store(true)
	for _, idx := range s.shardOrder("sha1", 1) {
		if idx == 2 {
			t.Errorf("draining shard 2 still in order %v", s.shardOrder("sha1", 1))
		}
	}
	s.shards[2].draining.Store(false)
}

// A class no shard's plan knows goes to the fastest ladder — the
// paper's "unknown class → fastest group" at cluster scope.
func TestShardOrderUnknownClassFastestLadder(t *testing.T) {
	base := machine.Opteron16()
	s := routedServer(t, func(c *Config) {
		c.Shards = 3
		c.ShardMachines = []machine.Config{
			machine.Tiered(base, 2), // slowest top rung
			machine.Tiered(base, 1),
			base, // full ladder: fastest
		}
	})
	got := s.shardOrder("never-profiled", 1)
	if got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Errorf("unknown-class order = %v, want fastest-first [2 1 0]", got)
	}
	// Once a slower shard's plan knows the class, it outranks raw speed.
	setPlan(s.shards[0], "never-profiled")
	if got := s.shardOrder("never-profiled", 1); got[0] != 0 {
		t.Errorf("known-class order = %v, want planning shard 0 first", got)
	}
}

func TestShardOrderRoundRobin(t *testing.T) {
	s := routedServer(t, func(c *Config) { c.Shards = 3; c.Routing = RouteRR })
	var starts []int
	for i := 0; i < 6; i++ {
		starts = append(starts, s.shardOrder("sha1", 1)[0])
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("rr starts = %v, want %v", starts, want)
		}
	}
}

func TestShardOrderLeastLoaded(t *testing.T) {
	s := routedServer(t, func(c *Config) { c.Shards = 3; c.Routing = RouteLeast })
	setInflight(s.shards[0], 50)
	setInflight(s.shards[1], 10)
	setInflight(s.shards[2], 90)
	got := s.shardOrder("sha1", 1)
	if got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Errorf("least order = %v, want [1 0 2]", got)
	}
	for _, sh := range s.shards {
		setInflight(sh, 0)
	}
}

// ---- spillover and rejection preference ----

// When the preferred shard's budget is full, the job spills to the
// next candidate instead of bouncing — and the spillover is counted.
func TestSpilloverPastFullShard(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, func(c *Config) {
		c.Obs = reg
		c.Shards = 2
		c.Workers = 2
	})
	// Shard 0's plan knows sha1, so it is preferred — but its in-flight
	// budget is (artificially) exhausted.
	setPlan(s.shards[0], "sha1")
	setInflight(s.shards[0], s.cfg.MaxInFlight)

	resp, body := submit(t, ts.URL, JobRequest{Func: "sha1", Count: 2, SizeBytes: 1024})
	if resp.StatusCode != 200 {
		t.Fatalf("spillover submit: status %d: %s", resp.StatusCode, body)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Shard == nil || *res.Shard != 1 {
		t.Errorf("job landed on shard %v, want spillover to 1", res.Shard)
	}
	if v := reg.Counter("eewa_serve_router_spillover_total", "").Value(); v != 1 {
		t.Errorf("spillover_total = %g, want 1", v)
	}

	// Both shards full → the preferred shard's 429 comes back, not a 503.
	setInflight(s.shards[1], s.cfg.MaxInFlight)
	resp, body = submit(t, ts.URL, JobRequest{Func: "sha1", Count: 2, SizeBytes: 1024})
	if resp.StatusCode != 429 {
		t.Errorf("cluster-full submit: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("cluster-full 429 lacks Retry-After")
	}
	setInflight(s.shards[0], 0)
	setInflight(s.shards[1], 0)
	drain(t, s)
}

// ---- shard lifecycle ----

func TestDrainShardRange(t *testing.T) {
	s := routedServer(t, func(c *Config) { c.Shards = 2 })
	ctx := context.Background()
	if err := s.DrainShard(ctx, -1); err == nil {
		t.Error("DrainShard(-1) accepted")
	}
	if err := s.DrainShard(ctx, 2); err == nil {
		t.Error("DrainShard(2) accepted on a 2-shard cluster")
	}
}

// Draining every shard individually leaves the cluster answering 503
// with Retry-After, same as a cluster-wide drain.
func TestAllShardsDraining503(t *testing.T) {
	s, ts := testServer(t, func(c *Config) { c.Shards = 2; c.Workers = 2 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		if err := s.DrainShard(ctx, i); err != nil {
			t.Fatalf("drain shard %d: %v", i, err)
		}
	}
	resp, body := submit(t, ts.URL, JobRequest{Func: "sha1", Count: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-draining submit: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("all-draining 503 lacks Retry-After")
	}
	if !strings.Contains(string(body), "every shard is draining") {
		t.Errorf("503 body should say the whole cluster drains: %s", body)
	}
}

// Satellite: the healthz drain response carries the same Retry-After
// hint the 429/503 job path sends.
func TestHealthzDrainRetryAfter(t *testing.T) {
	s, ts := testServer(t, nil)
	drain(t, s)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining healthz 503 lacks Retry-After")
	}
}

// ---- /v1/shards ----

func TestShardsEndpoint(t *testing.T) {
	s, ts := testServer(t, func(c *Config) { c.Shards = 2; c.Workers = 2; c.Routing = RouteLeast })
	submit(t, ts.URL, JobRequest{Func: "sha1", Count: 2, SizeBytes: 1024})
	resp, err := http.Get(ts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("shards status %d", resp.StatusCode)
	}
	var rs RouterStats
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Routing != RouteLeast || len(rs.Shards) != 2 {
		t.Fatalf("router stats %+v", rs)
	}
	admitted := rs.Shards[0].Admitted + rs.Shards[1].Admitted
	if admitted != 1 {
		t.Errorf("shard admitted sum = %d, want 1", admitted)
	}
	for i, sh := range rs.Shards {
		if sh.Shard != i || sh.Workers != 2 || sh.FastestGHz <= 0 {
			t.Errorf("shard %d stats %+v", i, sh)
		}
	}
	drain(t, s)
}

// ---- construction validation ----

func TestNewValidatesTopology(t *testing.T) {
	mc := machine.Opteron16()
	cases := []Config{
		{Workers: 2, Machine: mc, Shards: -1},
		{Workers: 2, Machine: mc, Routing: "bogus"},
		{Workers: 2, Machine: mc, Shards: 3, ShardMachines: []machine.Config{mc}},
		{Workers: 2, Machine: mc, Shards: 2, ShardOfflines: make([]*profile.Snapshot, 3)},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid topology accepted: %+v", i, cfg)
		}
	}
}

// ---- chaos: drain one shard mid-burst ----

// Drain shard 1 of 3 while a burst is in flight: no admitted job is
// lost or duplicated cluster-wide, the drained shard takes no further
// work, and the surviving shards absorb the rest of the burst.
func TestRouterChaosDrainShardMidBurst(t *testing.T) {
	s, ts := testServer(t, func(c *Config) {
		c.Shards = 3
		c.Workers = 2
		c.Invariants = true
		c.FlushEvery = 5 * time.Millisecond
		c.QueueDepth = 4096
		c.MaxInFlight = 4096
	})

	var ok, tasksOK atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, body := submit(t, ts.URL, JobRequest{
					Tenant: fmt.Sprintf("t%d", g%2), Func: "sha1", Count: 3,
					SizeBytes: 8 << 10, Seed: uint64(g*100 + i),
				})
				switch resp.StatusCode {
				case 200:
					ok.Add(1)
					var res JobResult
					if err := json.Unmarshal(body, &res); err != nil {
						t.Error(err)
						continue
					}
					if res.TasksRun != res.Tasks {
						t.Errorf("job lost tasks mid-chaos: %+v", res)
					}
					tasksOK.Add(int64(res.Tasks))
				case 503:
					// The router refuses only when every shard drains; two
					// stay healthy throughout.
					t.Errorf("healthy cluster refused a job: %s", body)
				default:
					t.Errorf("status %d: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}

	// Let work land, then yank shard 1 out from under the burst.
	waitUntil := time.Now().Add(10 * time.Second)
	for time.Now().Before(waitUntil) && s.Stats().Admitted < 6 {
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainShard(ctx, 1); err != nil {
		t.Fatalf("mid-burst shard drain: %v", err)
	}
	// admit() rejects under the draining flag, so shard 1's admission
	// counter is final the moment DrainShard returns.
	admitted1 := s.ShardStats()[1].Admitted
	wg.Wait()
	drain(t, s)

	if got := s.ShardStats()[1].Admitted; got != admitted1 {
		t.Errorf("drained shard 1 admitted %d more jobs after its drain completed", got-admitted1)
	}
	st := s.Stats()
	if st.Admitted != st.Completed+st.Timeouts {
		t.Errorf("job conservation broken: admitted %d ≠ completed %d + timeouts %d",
			st.Admitted, st.Completed, st.Timeouts)
	}
	if st.Completed != uint64(ok.Load()) || st.Tasks != uint64(tasksOK.Load()) {
		t.Errorf("stats %+v vs ok=%d tasksOK=%d — lost or duplicated work", st, ok.Load(), tasksOK.Load())
	}
	ss := s.ShardStats()
	if !ss[1].Draining {
		t.Error("shard 1 not marked draining in /v1/shards")
	}
	if ss[0].Admitted+ss[2].Admitted == 0 {
		t.Error("surviving shards absorbed nothing")
	}
	var sum uint64
	for _, sh := range ss {
		sum += sh.Admitted
	}
	if sum != st.Admitted {
		t.Errorf("shard admitted sum %d ≠ cluster admitted %d", sum, st.Admitted)
	}
	for i, sh := range s.shards {
		if vs := sh.rt.Violations(); len(vs) != 0 {
			t.Errorf("shard %d invariant violations: %v", i, vs)
		}
	}
}
