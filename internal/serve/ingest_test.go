package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// refDecode is the pre-pooling decode path, verbatim: MaxBytesReader
// wrapping the body, strict stdlib decoding. The fast path must agree
// with it on every byte of behavior — acceptance, the decoded request,
// and the error text.
func refDecode(body []byte) (JobRequest, error) {
	w := httptest.NewRecorder()
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, io.NopCloser(bytes.NewReader(body)), maxBodyBytes))
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	return req, err
}

func TestDecodeJobMatchesStdlib(t *testing.T) {
	s, _ := testServer(t, nil)
	t.Cleanup(func() { drain(t, s) })

	cases := []string{
		`{"func":"sha1"}`,
		`{"tenant":"acme","func":"md5","size_bytes":512,"count":3,"seed":42,"deadline_ms":100,"work_hint_s":0.25}`,
		`{"func":"lzw","deadline_at_ms":1754640000000}`,
		`{"func":"sha1","seed":18446744073709551615}`,
		`{"func":"sha1","work_hint_s":0.1}`,
		`{"func":"sha1","work_hint_s":123.456}`,
		`{"func":"sha1","work_hint_s":3}`,
		`{"func":"sha1","work_hint_s":1e-3}`,
		`{"func":"sha1","work_hint_s":2.5e-7}`,
		`{"func":"sha1","work_hint_s":-0.5}`,
		`{"func":"sha1","deadline_ms":-7}`,
		`{"tenant":"","func":"bwc","count":0}`,
		`  {  "func" : "dmc" ,  "count" : 2 }  `,
		`{"func":null,"tenant":null,"count":null}`,
		`{}`,
		// Bail-to-stdlib territory: the outcomes (and error strings)
		// still have to match the reference path exactly.
		`{"func":"sha1","bogus":1}`,
		`{"tenant":"a\"b","func":"sha1"}`,
		`{"tenant":"héllo","func":"sha1"}`,
		`{"size_bytes":1.5}`,
		`{"count":2e1}`,
		`{"seed":18446744073709551616}`,
		`{"seed":-1}`,
		`{"count":01}`,
		`{"func":"sha1",}`,
		`{"func" "sha1"}`,
		`{"func":}`,
		``,
		`[]`,
		`42`,
		`null`,
		`{"func":"sha1"} trailing garbage`,
	}
	// Oversize bodies: a valid value completed inside the window is
	// accepted either way; a value still open past the limit is the
	// MaxBytesReader error.
	cases = append(cases,
		`{"func":"sha1"}`+strings.Repeat(" ", maxBodyBytes),
		`{"tenant":"`+strings.Repeat("x", maxBodyBytes)+`","func":"sha1"}`,
	)

	for _, body := range cases {
		name := body
		if len(name) > 60 {
			name = name[:60] + "…"
		}
		wantReq, wantErr := refDecode([]byte(body))

		in := getIngest()
		if err := in.readBody(bytes.NewReader([]byte(body))); err != nil {
			putIngest(in)
			if wantErr == nil || err.Error() != wantErr.Error() {
				t.Errorf("%q: readBody err %v, want %v", name, err, wantErr)
			}
			continue
		}
		gotErr := s.decodeJob(in)
		gotReq := in.req
		putIngest(in)

		switch {
		case (gotErr == nil) != (wantErr == nil):
			t.Errorf("%q: err %v, want %v", name, gotErr, wantErr)
		case gotErr != nil && gotErr.Error() != wantErr.Error():
			t.Errorf("%q: err %q, want %q", name, gotErr, wantErr)
		case gotErr == nil && gotReq != wantReq:
			t.Errorf("%q: req %+v, want %+v", name, gotReq, wantReq)
		}
	}
}

// The steady-state decode path must be allocation-free: pooled buffer,
// pooled request struct, interned tenant and func strings.
func TestDecodeJobZeroAllocSteadyState(t *testing.T) {
	s, _ := testServer(t, nil)
	t.Cleanup(func() { drain(t, s) })

	body := []byte(`{"tenant":"acme","func":"sha1","size_bytes":256,"count":4,"seed":9,"work_hint_s":0.5}`)
	rd := bytes.NewReader(body)
	in := getIngest()
	defer putIngest(in)

	// Warm the pools and the tenant intern table.
	if err := in.readBody(rd); err != nil {
		t.Fatal(err)
	}
	if err := s.decodeJob(in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		if err := in.readBody(rd); err != nil {
			t.Fatal(err)
		}
		if err := s.decodeJob(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state decode allocates %.1f times per request, want 0", allocs)
	}
}

// refEncode renders v through writeJSON — the legacy encoder whose
// bytes the replay suite pins.
func refEncode(status int, v any) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	writeJSON(w, status, v)
	return w
}

func checkSame(t *testing.T, name string, got, want *httptest.ResponseRecorder) {
	t.Helper()
	if got.Code != want.Code {
		t.Errorf("%s: status %d, want %d", name, got.Code, want.Code)
	}
	if g, w := got.Header().Get("Content-Type"), want.Header().Get("Content-Type"); g != w {
		t.Errorf("%s: content-type %q, want %q", name, g, w)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("%s: body\n%q\nwant\n%q", name, got.Body.Bytes(), want.Body.Bytes())
	}
}

func TestWriteResultMatchesStdlib(t *testing.T) {
	shard := 2
	floats := []float64{
		0, 1, 0.1, 0.25, 123.456789, 1e-6, 9.9e-7, 1e-7, 2.5e-7,
		1e20, 9.99e20, 1e21, 3.7e22, 5e-324, math.MaxFloat64, 0.0005100220,
	}
	for _, f := range floats {
		res := &JobResult{
			Job: 12345, Tenant: "acme", Func: "sha1", Tasks: 8, TasksRun: 7,
			Batch: 42, QueueMS: f, BatchMS: f * 3, EnergyJ: f / 7, EnergyAttrJ: f,
			Steals: 3, Policy: "eewa",
		}
		got := httptest.NewRecorder()
		writeResult(got, 200, res)
		checkSame(t, "result", got, refEncode(200, res))

		res.Shard = &shard
		got = httptest.NewRecorder()
		writeResult(got, 200, res)
		checkSame(t, "result+shard", got, refEncode(200, res))
	}

	// Outside the fast subset (string needing escapes) the fallback is
	// writeJSON itself, so equality is trivial — but exercise the seam.
	res := &JobResult{Job: 1, Tenant: "a<b>&c", Func: "sha1", Policy: "eewa"}
	got := httptest.NewRecorder()
	writeResult(got, 200, res)
	checkSame(t, "result-fallback", got, refEncode(200, res))
}

func TestWriteErrorAndPartialMatchStdlib(t *testing.T) {
	s, _ := testServer(t, nil)
	t.Cleanup(func() { drain(t, s) })

	// The drain 503s are pre-rendered with the server's own Retry-After
	// (the only value production callers ever pass).
	ra := s.static.retryAfterSecs
	msgs := []struct {
		status, retry int
		msg           string
	}{
		{503, ra, "server is draining, not admitting new jobs"},
		{503, ra, "every shard is draining, not admitting new jobs"},
		{504, 0, "deadline expired"},
		{504, 0, "deadline already expired at admission"},
		{504, 0, "deadline expired while queued"},
		{429, 2, `tenant "acme" queue full (130/128 tasks)`},
		{429, 2, "in-flight budget full (513/512 tasks)"},
		{400, 0, "size_bytes 2000000 outside (0, 1048576]"},
		{400, 0, "weird message with \"quotes\" and <html> & unicode é"},
	}
	for _, m := range msgs {
		got := httptest.NewRecorder()
		s.writeError(got, m.status, m.msg, m.retry)
		checkSame(t, "error", got, refEncode(m.status, errorBody{Error: m.msg, RetryAfter: m.retry}))
	}

	res := &JobResult{Job: 9, Tenant: "beta", Func: "md5", Tasks: 4, TasksRun: 2,
		Batch: 3, QueueMS: 1.25, BatchMS: 0.5, EnergyJ: 0.125, EnergyAttrJ: 0.0625, Policy: "eewa"}
	got := httptest.NewRecorder()
	s.writePartial(got, 504, "deadline expired mid-batch", res)
	checkSame(t, "partial", got, refEncode(504, struct {
		errorBody
		Partial *JobResult `json:"partial,omitempty"`
	}{errorBody{Error: "deadline expired mid-batch"}, res}))
}

func TestBatchEndpoint(t *testing.T) {
	s, ts := testServer(t, nil)

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	// Happy path: every job completes, one response per job, in order.
	resp, body := post(`{"jobs":[
		{"tenant":"a","func":"sha1","count":2,"size_bytes":256},
		{"tenant":"b","func":"md5","count":1,"size_bytes":256}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var bres BatchResponse
	if err := json.Unmarshal(body, &bres); err != nil {
		t.Fatal(err)
	}
	if len(bres.Jobs) != 2 {
		t.Fatalf("batch items %d, want 2", len(bres.Jobs))
	}
	for i, it := range bres.Jobs {
		if it.Status != 200 || it.Result == nil || it.Result.TasksRun != 2-i {
			t.Errorf("item %d = %+v, want 200 with %d tasks run", i, it, 2-i)
		}
	}
	if bres.Jobs[0].Result.Tenant != "a" || bres.Jobs[1].Result.Tenant != "b" {
		t.Errorf("batch items out of request order: %+v", bres.Jobs)
	}

	// A mixed batch: invalid jobs get per-item 400s, the rest still
	// run; overall status reflects the worst admission signal.
	resp, body = post(`{"jobs":[
		{"func":"sha1","count":1,"size_bytes":256},
		{"func":"nope","count":1,"size_bytes":256}]}`)
	if resp.StatusCode != 400 {
		t.Fatalf("mixed batch status %d: %s", resp.StatusCode, body)
	}
	bres = BatchResponse{}
	if err := json.Unmarshal(body, &bres); err != nil {
		t.Fatal(err)
	}
	if bres.Jobs[0].Status != 200 || bres.Jobs[1].Status != 400 ||
		!strings.Contains(bres.Jobs[1].Error, `unknown func "nope"`) {
		t.Errorf("mixed batch items %+v", bres.Jobs)
	}

	// Shape errors.
	if resp, _ := post(`{"jobs":[]}`); resp.StatusCode != 400 {
		t.Errorf("empty batch status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"bogus":1}`); resp.StatusCode != 400 {
		t.Errorf("unknown-field batch status %d, want 400", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/jobs:batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch status %d, want 405", r.StatusCode)
	}

	drain(t, s)
}
