package cctable

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/xrand"
)

var ladder4 = machine.FreqLadder{2.5, 1.8, 1.3, 0.8}

// fig3Table is the exact CC matrix from the paper's Fig. 3: 4 task
// classes, 4 frequencies, 16 cores.
func fig3Table(t *testing.T) *Table {
	t.Helper()
	tab, err := FromCounts([][]int{
		{2, 3, 1, 1},
		{4, 6, 2, 2},
		{6, 9, 3, 3},
		{8, 12, 4, 4},
	}, ladder4)
	if err != nil {
		t.Fatalf("FromCounts: %v", err)
	}
	return tab
}

// TestFig3KTuple reproduces the paper's worked example: Algorithm 1 on
// the Fig. 3 table with 16 cores must select the k-tuple (1, 1, 2, 2) —
// 10 cores at F1 and 6 cores at F2.
func TestFig3KTuple(t *testing.T) {
	tab := fig3Table(t)
	tuple, ok := tab.SearchTuple(16)
	if !ok {
		t.Fatal("SearchTuple failed on the Fig. 3 instance")
	}
	want := []int{1, 1, 2, 2}
	for i := range want {
		if tuple[i] != want[i] {
			t.Fatalf("tuple = %v, want %v (paper Fig. 3)", tuple, want)
		}
	}
	if got := tab.CoresNeeded(tuple); got != 16 {
		t.Errorf("cores needed = %d, want 16 (4+6+3+3)", got)
	}
}

func TestFig3TupleIsValid(t *testing.T) {
	tab := fig3Table(t)
	tuple, _ := tab.SearchTuple(16)
	if !tab.ValidTuple(tuple, 16) {
		t.Error("Fig. 3 tuple fails ValidTuple")
	}
}

func TestSearchTupleAllFastWhenTight(t *testing.T) {
	// Classes so heavy that only F0 fits.
	tab, err := FromCounts([][]int{
		{8, 8},
		{20, 20},
	}, machine.FreqLadder{2.0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	tuple, ok := tab.SearchTuple(16)
	if !ok {
		t.Fatal("a feasible all-F0 assignment exists; search must find it")
	}
	if tuple[0] != 0 || tuple[1] != 0 {
		t.Errorf("tuple = %v, want [0 0]", tuple)
	}
}

func TestSearchTupleInfeasibleFallsBackToF0(t *testing.T) {
	tab, err := FromCounts([][]int{
		{10, 10},
		{30, 30},
	}, machine.FreqLadder{2.0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	tuple, ok := tab.SearchTuple(16) // 10+10 = 20 > 16: nothing fits
	if ok {
		t.Error("infeasible instance reported success")
	}
	for i, a := range tuple {
		if a != 0 {
			t.Errorf("fallback tuple[%d] = %d, want 0 (all-F0)", i, a)
		}
	}
}

func TestSearchPrefersSlowWhenAbundant(t *testing.T) {
	// One tiny class on a big machine: slowest frequency should win.
	tab, err := FromCounts([][]int{
		{1},
		{2},
		{3},
		{4},
	}, ladder4)
	if err != nil {
		t.Fatal(err)
	}
	tuple, ok := tab.SearchTuple(16)
	if !ok || tuple[0] != 3 {
		t.Errorf("tuple = %v ok=%v, want [3] true — slowest level when cores abound", tuple, ok)
	}
}

func TestBuildFromProfileClasses(t *testing.T) {
	classes := []profile.Class{
		{Name: "heavy", Count: 16, AvgWork: 0.5},      // 8 s total
		{Name: "light", Count: 112, AvgWork: 0.03125}, // 3.5 s total
	}
	tab, err := Build(classes, ladder4, 1.0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tab.K() != 2 || tab.R() != 4 {
		t.Fatalf("table is %d×%d, want 4×2", tab.R(), tab.K())
	}
	// CC[0][0] = ceil(8/1) = 8; CC[0][1] = ceil(3.5) = 4.
	if tab.CC[0][0] != 8 {
		t.Errorf("CC[0][0] = %d, want 8", tab.CC[0][0])
	}
	if tab.CC[0][1] != 4 {
		t.Errorf("CC[0][1] = %d, want 4", tab.CC[0][1])
	}
	// CC[3][0] = ceil(2.5/0.8 · 8) = ceil(25) = 25.
	if tab.CC[3][0] != 25 {
		t.Errorf("CC[3][0] = %d, want 25", tab.CC[3][0])
	}
	// Frac preserves the analytic value.
	if math.Abs(tab.Frac[3][0]-25.0) > 1e-9 {
		t.Errorf("Frac[3][0] = %g, want 25", tab.Frac[3][0])
	}
}

func TestBuildCeilMinimumOne(t *testing.T) {
	classes := []profile.Class{{Name: "tiny", Count: 1, AvgWork: 1e-6}}
	tab, err := Build(classes, ladder4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < tab.R(); j++ {
		if tab.CC[j][0] != 1 {
			t.Errorf("CC[%d][0] = %d, want 1 (any class needs a core)", j, tab.CC[j][0])
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	good := []profile.Class{{Name: "a", Count: 1, AvgWork: 1}}
	cases := []struct {
		name    string
		classes []profile.Class
		ladder  machine.FreqLadder
		T       float64
		want    error
	}{
		{"no classes", nil, ladder4, 1, ErrNoClasses},
		{"zero T", good, ladder4, 0, ErrIdealTime},
		{"negative T", good, ladder4, -3, ErrIdealTime},
		{"NaN T", good, ladder4, math.NaN(), ErrIdealTime},
		{"Inf T", good, ladder4, math.Inf(1), ErrIdealTime},
		{"zero count", []profile.Class{{Name: "a", Count: 0, AvgWork: 1}}, ladder4, 1, ErrClassWeight},
		{"zero weight", []profile.Class{{Name: "a", Count: 4, AvgWork: 0}}, ladder4, 1, ErrClassWeight},
		{"NaN weight", []profile.Class{{Name: "a", Count: 4, AvgWork: math.NaN()}}, ladder4, 1, ErrClassWeight},
		{"Inf weight", []profile.Class{{Name: "a", Count: 4, AvgWork: math.Inf(1)}}, ladder4, 1, ErrClassWeight},
		{"unsorted", []profile.Class{
			{Name: "a", Count: 1, AvgWork: 1},
			{Name: "b", Count: 1, AvgWork: 2},
		}, ladder4, 1, ErrUnsorted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Build(tc.classes, tc.ladder, tc.T)
			if !errors.Is(err, tc.want) {
				t.Errorf("Build error = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
	if _, err := Build(good, machine.FreqLadder{}, 1); err == nil {
		t.Error("bad ladder should error")
	}
	// A degenerate class must fail BuildGranular identically (it
	// delegates validation to Build, so perTask is always positive and
	// the T/perTask division below can never produce NaN or Inf).
	zero := []profile.Class{{Name: "a", Count: 3, AvgWork: 0}}
	if _, err := BuildGranular(zero, ladder4, 1, 16); !errors.Is(err, ErrClassWeight) {
		t.Errorf("BuildGranular(zero-weight) error = %v, want ErrClassWeight", err)
	}
	if _, err := BuildGranular(good, ladder4, 1, 0); !errors.Is(err, ErrMaxCores) {
		t.Errorf("BuildGranular(maxCores=0) error = %v, want ErrMaxCores", err)
	}
}

func TestFromCountsRejectsBadInput(t *testing.T) {
	if _, err := FromCounts([][]int{{1}}, ladder4); err == nil {
		t.Error("row count mismatch should error")
	}
	if _, err := FromCounts([][]int{{1, 2}, {1}}, machine.FreqLadder{2, 1}); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := FromCounts([][]int{{0}, {1}}, machine.FreqLadder{2, 1}); err == nil {
		t.Error("zero entry should error")
	}
	if _, err := FromCounts([][]int{{}, {}}, machine.FreqLadder{2, 1}); err == nil {
		t.Error("empty rows should error")
	}
}

func TestExhaustiveMatchesFig3Budget(t *testing.T) {
	tab := fig3Table(t)
	pm := machine.Opteron16().Power
	tuple, ok := tab.ExhaustiveSearch(16, pm)
	if !ok {
		t.Fatal("exhaustive search failed on feasible instance")
	}
	if !tab.ValidTuple(tuple, 16) {
		t.Errorf("exhaustive tuple %v invalid", tuple)
	}
	// The optimum can differ from Algorithm 1's pick but never costs more.
	bt, _ := tab.SearchTuple(16)
	if tab.EnergyScore(tuple, pm) > tab.EnergyScore(bt, pm)+1e-9 {
		t.Errorf("exhaustive score %g exceeds backtracking score %g",
			tab.EnergyScore(tuple, pm), tab.EnergyScore(bt, pm))
	}
}

func TestGreedyOnFig3(t *testing.T) {
	tab := fig3Table(t)
	tuple, ok := tab.GreedySearch(16)
	if ok && !tab.ValidTuple(tuple, 16) {
		t.Errorf("greedy returned invalid tuple %v", tuple)
	}
}

func TestStringRendering(t *testing.T) {
	tab := fig3Table(t)
	s := tab.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	// Must mention every frequency row.
	for _, want := range []string{"F0=2.5", "F3=0.8"} {
		if !contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// randomTable builds a random feasible-or-not CC table for property
// tests.
func randomTable(rng *xrand.RNG) *Table {
	k := rng.Intn(5) + 1
	classes := make([]profile.Class, k)
	work := 10.0
	for i := 0; i < k; i++ {
		classes[i] = profile.Class{
			Name:    string(rune('a' + i)),
			Count:   rng.Intn(50) + 1,
			AvgWork: work,
		}
		work *= rng.Range(0.3, 1.0) // keep descending
	}
	tab, err := Build(classes, ladder4, rng.Range(5, 500))
	if err != nil {
		panic(err)
	}
	return tab
}

// Property: whenever SearchTuple succeeds, the tuple satisfies all
// three constraints; whenever it fails, ExhaustiveSearch also finds
// nothing (Algorithm 1 is a complete search).
func TestSearchTupleSoundAndCompleteProperty(t *testing.T) {
	pm := machine.Opteron16().Power
	f := func(seed uint64, mRaw uint8) bool {
		rng := xrand.New(seed)
		tab := randomTable(rng)
		m := int(mRaw%64) + 1
		tuple, ok := tab.SearchTuple(m)
		exTuple, exOK := tab.ExhaustiveSearch(m, pm)
		if ok != exOK {
			return false // completeness violated
		}
		if ok {
			if !tab.ValidTuple(tuple, m) {
				return false // soundness violated
			}
			// Exhaustive is the optimum.
			if tab.EnergyScore(exTuple, pm) > tab.EnergyScore(tuple, pm)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: greedy success implies a valid tuple, and greedy success
// implies backtracking success (greedy is strictly weaker).
func TestGreedyWeakerProperty(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		rng := xrand.New(seed)
		tab := randomTable(rng)
		m := int(mRaw%64) + 1
		g, gok := tab.GreedySearch(m)
		bt, btok := tab.SearchTuple(m)
		_ = bt
		if gok && !tab.ValidTuple(g, m) {
			return false
		}
		if gok && !btok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CC entries grow monotonically down the ladder (slower
// frequency needs at least as many cores).
func TestCCMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tab := randomTable(xrand.New(seed))
		for i := 0; i < tab.K(); i++ {
			for j := 1; j < tab.R(); j++ {
				if tab.CC[j][i] < tab.CC[j-1][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BenchmarkSearchScaling probes the paper's O(k·r²) worst-case claim
// for Algorithm 1 across class counts and ladder depths.
func BenchmarkSearchScaling(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		for _, r := range []int{2, 4, 8} {
			name := fmt.Sprintf("k=%d,r=%d", k, r)
			b.Run(name, func(b *testing.B) {
				freqs := make(machine.FreqLadder, r)
				for j := range freqs {
					freqs[j] = 3.0 - float64(j)*(2.0/float64(r))
				}
				classes := make([]profile.Class, k)
				w := 1.0
				for i := range classes {
					classes[i] = profile.Class{Name: fmt.Sprintf("c%d", i), Count: 20, AvgWork: w}
					w *= 0.7
				}
				tab, err := Build(classes, freqs, 8.0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tab.SearchTuple(64)
				}
			})
		}
	}
}
