// Package cctable implements the paper's Core-Count (CC) table
// (Table I) and the backtracking k-tuple search (Algorithm 1) at the
// heart of EEWA's workload-aware frequency adjuster.
//
// Given k task classes TC_i(f_i, n_i, w_i) sorted by descending average
// workload, an r-level frequency ladder and the ideal iteration time T,
// the CC table entry CC[j][i] is the number of cores at frequency F_j
// needed to finish all of class i's work within T:
//
//	CC[j][i] = ceil( (F0/Fj) · n_i·w_i / T )
//
// (The paper writes the entries analytically without the ceiling; core
// counts are integral, so we round up — DESIGN.md §5 records the
// decision and the Fig. 3 test pins the observable behaviour.)
//
// A solution is a k-tuple (a_0 … a_{k-1}) meaning "run class i's tasks
// on cores at frequency F_{a_i}", subject to the paper's three
// constraints:
//
//  1. Σ CC[a_i][i] ≤ m (the machine's core count);
//  2. the search prefers low frequencies (energy);
//  3. a_i ≤ a_j for i < j (heavier classes on faster-or-equal cores).
//
// Besides the paper's backtracking algorithm the package provides an
// exhaustive minimum-energy reference and a greedy heuristic, used by
// the ablation benchmarks to quantify how close Algorithm 1 lands to
// optimal and at what cost.
package cctable

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/profile"
)

// Typed construction errors. Callers that degrade gracefully on a bad
// profile (e.g. core.Adjuster falling back to all-F0) can distinguish
// "the workload snapshot was degenerate" (ErrNoClasses, ErrClassWeight)
// from "the caller passed garbage" (ErrIdealTime, ErrUnsorted,
// ErrMaxCores) with errors.Is.
var (
	// ErrNoClasses is returned when the class list is empty.
	ErrNoClasses = errors.New("cctable: no task classes")
	// ErrIdealTime is returned when the ideal iteration time T is not a
	// positive finite number — the table's denominator would be
	// meaningless.
	ErrIdealTime = errors.New("cctable: ideal time must be positive and finite")
	// ErrClassWeight is returned when a class carries no schedulable
	// weight (Count ≤ 0, or AvgWork not a positive finite number): its
	// CC entries would be 0/0, NaN or infinite.
	ErrClassWeight = errors.New("cctable: class has no schedulable weight")
	// ErrUnsorted is returned when classes are not in descending-AvgWork
	// order, which Algorithm 1's monotonicity constraint assumes.
	ErrUnsorted = errors.New("cctable: classes not sorted by descending workload")
	// ErrMaxCores is returned by BuildGranular for a non-positive core
	// budget.
	ErrMaxCores = errors.New("cctable: maxCores must be positive")
)

// Table is a built CC table plus the inputs it was derived from.
type Table struct {
	// CC[j][i]: cores at frequency level j needed for class i (ceiled).
	CC [][]int
	// Frac[j][i]: the analytic (unrounded) entry, kept for ablation.
	Frac [][]float64
	// Classes are the k task classes, sorted by descending AvgWork.
	Classes []profile.Class
	// Ladder is the machine's frequency ladder.
	Ladder machine.FreqLadder
	// T is the ideal iteration time used as the denominator.
	T float64
	// LastSearchSteps is the number of Select attempts the most recent
	// SearchTuple call performed — the backtracking effort reported to
	// the observability layer. A memoized lookup through a Cache sets
	// it to 0 (no Select attempts ran); the cumulative count across
	// real searches lives on Cache.StepsTotal.
	LastSearchSteps int
}

// Build constructs the CC table for the given classes (which must
// already be in descending-AvgWork order, as profile.Classes returns
// them), ladder and ideal time T.
func Build(classes []profile.Class, ladder machine.FreqLadder, T float64) (*Table, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if len(classes) == 0 {
		return nil, ErrNoClasses
	}
	if T <= 0 || math.IsNaN(T) || math.IsInf(T, 0) {
		return nil, fmt.Errorf("%w: got %g", ErrIdealTime, T)
	}
	for i, c := range classes {
		if c.Count <= 0 || !(c.AvgWork > 0) || math.IsInf(c.AvgWork, 0) {
			return nil, fmt.Errorf("%w: class %d (%q) count=%d avg=%g",
				ErrClassWeight, i, c.Name, c.Count, c.AvgWork)
		}
	}
	for i := 1; i < len(classes); i++ {
		if classes[i].AvgWork > classes[i-1].AvgWork+1e-12 {
			return nil, fmt.Errorf("%w: at index %d", ErrUnsorted, i)
		}
	}
	r, k := len(ladder), len(classes)
	t := &Table{
		CC:      make([][]int, r),
		Frac:    make([][]float64, r),
		Classes: append([]profile.Class(nil), classes...),
		Ladder:  ladder,
		T:       T,
	}
	for j := 0; j < r; j++ {
		t.CC[j] = make([]int, k)
		t.Frac[j] = make([]float64, k)
		ratio := ladder.Ratio(j) // F0/Fj
		for i := 0; i < k; i++ {
			frac := ratio * classes[i].TotalWork() / T
			t.Frac[j][i] = frac
			cc := int(math.Ceil(frac - 1e-9)) // tolerance for exact-integer fracs
			if cc < 1 {
				cc = 1 // a class with any work needs at least one core
			}
			t.CC[j][i] = cc
		}
	}
	return t, nil
}

// BuildGranular constructs the CC table with a task-indivisibility
// refinement. The paper's entry ceil((F0/Fj)·n·w/T) is the divisible-
// load approximation: it assumes a class's aggregate work can be sliced
// arbitrarily across cores. Real tasks are indivisible, so a core can
// complete at most floor(T / (w·F0/Fj)) tasks of average size w within
// T, and class i therefore needs
//
//	CC[j][i] = ceil( n_i / floor(T / (w_i·F0/Fj)) )
//
// cores at level j. When even a single task does not fit within T at
// level j (floor = 0), the level is unusable for the class and the
// entry is set to m·r+1 sentinel-large so no search selects it. The two
// formulas agree when n_i ≫ CC (fine-grained classes) and diverge for
// chunky classes — exactly the regime where the divisible formula
// produces schedules that overrun T (Fig. 1(c) territory). EEWA uses
// this variant by default; the ablation bench quantifies the gap.
//
// maxCores caps the sentinel (pass the machine's core count m).
func BuildGranular(classes []profile.Class, ladder machine.FreqLadder, T float64, maxCores int) (*Table, error) {
	t, err := Build(classes, ladder, T)
	if err != nil {
		return nil, err
	}
	if maxCores <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrMaxCores, maxCores)
	}
	sentinel := maxCores*len(ladder) + 1
	for j := 0; j < t.R(); j++ {
		ratio := ladder.Ratio(j)
		for i := 0; i < t.K(); i++ {
			c := &t.Classes[i]
			// Capacity per core within T, from the average task size.
			perTask := c.AvgWork * ratio
			rounds := int(math.Floor(T/perTask + 1e-9))
			// A level is unusable when even the class's largest observed
			// task would overrun T there (MaxWork 0 = unknown, fall back
			// to the average).
			biggest := c.MaxWork
			if biggest <= 0 {
				biggest = c.AvgWork
			}
			if rounds <= 0 || biggest*ratio > T*(1+1e-9) {
				t.CC[j][i] = sentinel
				continue
			}
			granular := (c.Count + rounds - 1) / rounds // ceil(n/rounds)
			if granular > t.CC[j][i] {
				t.CC[j][i] = granular
			}
		}
	}
	return t, nil
}

// FromCounts builds a Table directly from integer core counts — used by
// tests that reproduce the paper's Fig. 3 example, where the CC matrix
// is given rather than derived.
func FromCounts(cc [][]int, ladder machine.FreqLadder) (*Table, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if len(cc) != len(ladder) {
		return nil, fmt.Errorf("cctable: %d rows for %d frequency levels", len(cc), len(ladder))
	}
	k := len(cc[0])
	if k == 0 {
		return nil, fmt.Errorf("cctable: empty rows")
	}
	t := &Table{CC: make([][]int, len(cc)), Frac: make([][]float64, len(cc)), Ladder: ladder, T: 1}
	for j := range cc {
		if len(cc[j]) != k {
			return nil, fmt.Errorf("cctable: ragged row %d", j)
		}
		t.CC[j] = append([]int(nil), cc[j]...)
		t.Frac[j] = make([]float64, k)
		for i, v := range cc[j] {
			if v < 1 {
				return nil, fmt.Errorf("cctable: entry [%d][%d] = %d < 1", j, i, v)
			}
			t.Frac[j][i] = float64(v)
		}
	}
	t.Classes = make([]profile.Class, k)
	for i := range t.Classes {
		t.Classes[i] = profile.Class{Name: fmt.Sprintf("TC%d", i), Count: 1, AvgWork: float64(k - i)}
	}
	return t, nil
}

// K returns the number of task classes (columns).
func (t *Table) K() int { return len(t.Classes) }

// R returns the number of frequency levels (rows).
func (t *Table) R() int { return len(t.Ladder) }

// CoresNeeded returns Σ CC[a_i][i] for a tuple.
func (t *Table) CoresNeeded(tuple []int) int {
	sum := 0
	for i, a := range tuple {
		sum += t.CC[a][i]
	}
	return sum
}

// ValidTuple reports whether tuple satisfies all three constraints for
// a machine with m cores.
func (t *Table) ValidTuple(tuple []int, m int) bool {
	if len(tuple) != t.K() {
		return false
	}
	prev := 0
	for _, a := range tuple {
		if a < 0 || a >= t.R() || a < prev {
			return false
		}
		prev = a
	}
	return t.CoresNeeded(tuple) <= m
}

// SearchTuple is the paper's Algorithm 1: a depth-first backtracking
// search that, for each class from heaviest to lightest, tries the
// lowest frequencies first (j from r-1 down to a[i-1]) and accepts the
// first complete assignment that fits within m cores. It returns the
// tuple and true on success; on failure (even running every class at F0
// cannot fit m cores within T) it returns the all-F0 tuple and false —
// the adjuster's documented fallback.
//
// Search state is two locals (the partial tuple and the running core
// count), so the function allocates exactly one k-slice.
func (t *Table) SearchTuple(m int) ([]int, bool) {
	k, r := t.K(), t.R()
	a := make([]int, k)
	cn := 0 // running core count, the paper's c_n
	steps := 0

	var search func(i int) bool
	search = func(i int) bool {
		if i >= k {
			return true
		}
		lo := 0
		if i > 0 {
			lo = a[i-1] // constraint 3: a_i ≥ a_{i-1} in row index
		}
		for j := r - 1; j >= lo; j-- {
			steps++
			if t.CC[j][i]+cn <= m { // Select(i, j)
				a[i] = j
				cn += t.CC[j][i]
				if search(i + 1) {
					return true
				}
				cn -= t.CC[a[i]][i] // undo, line 15
			}
		}
		return false
	}

	ok := search(0)
	t.LastSearchSteps = steps
	if ok {
		return a, true
	}
	for i := range a {
		a[i] = 0
	}
	return a, false
}

// EnergyScore estimates the relative energy of running one iteration
// under a tuple: each class's c-group of CC[a_i][i] cores runs busy for
// ~T at frequency a_i, so the score is Σ CC[a_i][i] · P_active(a_i).
// Lower is better. The score is the objective ExhaustiveSearch
// minimizes and the yardstick the ablation bench uses for Algorithm 1.
func (t *Table) EnergyScore(tuple []int, pm machine.PowerModel) float64 {
	s := 0.0
	for i, a := range tuple {
		// Best-case (package-aligned) active power at level a.
		s += float64(t.CC[a][i]) * pm.CorePower(machine.Busy, a, a, t.Ladder)
	}
	return s
}

// ExhaustiveSearch enumerates every monotone tuple that fits within m
// cores and returns the one with the minimum EnergyScore. It is
// exponential in k (r^k tuples before pruning) and exists purely as the
// optimality reference for small instances; the adjuster never calls
// it. Returns false (and the all-F0 tuple) when no tuple fits.
func (t *Table) ExhaustiveSearch(m int, pm machine.PowerModel) ([]int, bool) {
	k, r := t.K(), t.R()
	cur := make([]int, k)
	best := make([]int, k)
	bestScore := math.Inf(1)
	found := false
	cn := 0

	var walk func(i int)
	walk = func(i int) {
		if i >= k {
			if score := t.EnergyScore(cur, pm); score < bestScore {
				bestScore = score
				copy(best, cur)
				found = true
			}
			return
		}
		lo := 0
		if i > 0 {
			lo = cur[i-1]
		}
		for j := lo; j < r; j++ {
			need := t.CC[j][i]
			if cn+need > m {
				continue
			}
			cur[i] = j
			cn += need
			walk(i + 1)
			cn -= need
		}
	}
	walk(0)
	if !found {
		return make([]int, k), false
	}
	return best, true
}

// GreedySearch assigns each class, heaviest first, the slowest
// frequency whose core cost still leaves enough budget (a single
// non-backtracking pass). It can fail where Algorithm 1 succeeds; the
// ablation bench quantifies how often. Returns the all-F0 tuple and
// false on failure.
func (t *Table) GreedySearch(m int) ([]int, bool) {
	k, r := t.K(), t.R()
	a := make([]int, k)
	cn := 0
	lo := 0
	for i := 0; i < k; i++ {
		placed := false
		for j := r - 1; j >= lo; j-- {
			// Reserve at least one F0-equivalent core per remaining class
			// so the pass doesn't strand the tail.
			reserve := 0
			for rest := i + 1; rest < k; rest++ {
				reserve += t.CC[0][rest]
			}
			if cn+t.CC[j][i]+reserve <= m {
				a[i] = j
				cn += t.CC[j][i]
				lo = j
				placed = true
				break
			}
		}
		if !placed {
			return make([]int, k), false
		}
	}
	return a, true
}

// String renders the table in the layout of the paper's Table I, for
// the eewa-ktuple CLI and debugging.
func (t *Table) String() string {
	out := "      "
	for i := range t.Classes {
		out += fmt.Sprintf("%8s", t.Classes[i].Name)
	}
	out += "\n"
	for j := 0; j < t.R(); j++ {
		out += fmt.Sprintf("F%d=%.1f", j, t.Ladder[j])
		for i := 0; i < t.K(); i++ {
			out += fmt.Sprintf("%8d", t.CC[j][i])
		}
		out += "\n"
	}
	return out
}
