package cctable

import "math"

// fnv64 is the FNV-1a offset/prime pair used for fingerprinting.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for shift := 0; shift < 64; shift += 8 {
		h ^= (v >> shift) & 0xff
		h *= fnvPrime
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return fnvMix(h, uint64(len(s)))
}

// Fingerprint identifies the inputs of SearchTuple(m) on this table: the
// profile that produced it (class names, counts and exact weight bits),
// the frequency ladder, the ideal time T, the core budget m — and, to
// stay exact for tables whose entries were derived another way (FromCounts,
// memmodel's model-corrected tables), the CC matrix itself. Two tables
// with equal fingerprints run the identical backtracking search, so a
// cached tuple can stand in for re-running it.
func (t *Table) Fingerprint(m int) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(m))
	h = fnvMix(h, math.Float64bits(t.T))
	h = fnvMix(h, uint64(t.R()))
	for _, f := range t.Ladder {
		h = fnvMix(h, math.Float64bits(f))
	}
	h = fnvMix(h, uint64(t.K()))
	for i := range t.Classes {
		c := &t.Classes[i]
		h = fnvString(h, c.Name)
		h = fnvMix(h, uint64(c.Count))
		h = fnvMix(h, math.Float64bits(c.AvgWork))
		h = fnvMix(h, math.Float64bits(c.MaxWork))
	}
	for j := range t.CC {
		for _, cc := range t.CC[j] {
			h = fnvMix(h, uint64(cc))
		}
	}
	return h
}

// Cache memoizes SearchTuple results across tables keyed by Fingerprint,
// so batches whose profile (class set + weights + T) did not change skip
// the backtracking search entirely — the common case for steady-state
// workloads, where the adjuster re-derives the same plan every batch.
//
// A Cache is not safe for concurrent use; each Adjuster owns one (both
// engines plan single-threaded, at the batch barrier).
type Cache struct {
	entries map[uint64]cacheEntry
	max     int

	// Hits and Misses count lookups; StepsTotal accumulates the Select
	// attempts of every search that actually ran. Together they keep the
	// observability layer truthful when the memoized path reports
	// LastSearchSteps = 0 (a hit performs no Select attempts).
	Hits, Misses uint64
	StepsTotal   uint64
}

type cacheEntry struct {
	tuple []int
	ok    bool
}

// DefaultCacheSize bounds a plan cache built by NewCache(0). Plans are
// tiny (a k-slice), so the bound exists only to keep pathological
// profile churn from growing the map without limit.
const DefaultCacheSize = 256

// NewCache returns an empty plan cache holding at most max entries
// (DefaultCacheSize when max <= 0). When full it resets wholesale —
// cheaper than LRU bookkeeping, and a full cache of one-shot
// fingerprints has no reuse worth preserving anyway.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{entries: make(map[uint64]cacheEntry), max: max}
}

// SearchTuple returns what t.SearchTuple(m) would, consulting the cache
// first. On a hit the backtracking search is skipped, t.LastSearchSteps
// is set to 0 (no Select attempts happened on this call — the pre-fix
// code left the previous table's count dangling in metrics), and hit is
// true. On a miss the search runs and its result is memoized, including
// the infeasible outcome — an infeasible profile stays infeasible. The
// returned tuple is a fresh copy either way; callers may keep or mutate
// it.
func (c *Cache) SearchTuple(t *Table, m int) (tuple []int, ok, hit bool) {
	key := t.Fingerprint(m)
	if e, have := c.entries[key]; have {
		c.Hits++
		t.LastSearchSteps = 0
		return append([]int(nil), e.tuple...), e.ok, true
	}
	c.Misses++
	tuple, ok = t.SearchTuple(m)
	c.StepsTotal += uint64(t.LastSearchSteps)
	if len(c.entries) >= c.max {
		c.entries = make(map[uint64]cacheEntry, c.max)
	}
	c.entries[key] = cacheEntry{tuple: append([]int(nil), tuple...), ok: ok}
	return tuple, ok, false
}

// Len returns the number of memoized searches.
func (c *Cache) Len() int { return len(c.entries) }
