package cctable

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
)

func cacheClasses() []profile.Class {
	return []profile.Class{
		{Name: "heavy", Count: 4, AvgWork: 2.0, MaxWork: 2.2},
		{Name: "light", Count: 16, AvgWork: 0.5, MaxWork: 0.6},
	}
}

func cacheLadder() machine.FreqLadder { return machine.FreqLadder{2.4, 1.8, 1.2} }

func buildTable(t *testing.T, classes []profile.Class, T float64) *Table {
	t.Helper()
	tab, err := BuildGranular(classes, cacheLadder(), T, 16)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCacheHitSkipsSearchAndMatches(t *testing.T) {
	c := NewCache(0)
	tab := buildTable(t, cacheClasses(), 4)
	want, wantOK, hit := c.SearchTuple(tab, 16)
	if hit {
		t.Fatal("first lookup must miss")
	}
	if tab.LastSearchSteps == 0 {
		t.Fatal("a real search must report its Select attempts")
	}
	realSteps := tab.LastSearchSteps

	// Same profile in a freshly built table: must hit, return the same
	// tuple, and report zero steps for this call.
	tab2 := buildTable(t, cacheClasses(), 4)
	got, gotOK, hit := c.SearchTuple(tab2, 16)
	if !hit {
		t.Fatal("identical profile must hit the cache")
	}
	if gotOK != wantOK || len(got) != len(want) {
		t.Fatalf("cached result (%v, %v) != searched (%v, %v)", got, gotOK, want, wantOK)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cached tuple %v != searched %v", got, want)
		}
	}
	if tab2.LastSearchSteps != 0 {
		t.Errorf("memoized path must report LastSearchSteps = 0, got %d", tab2.LastSearchSteps)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
	if c.StepsTotal != uint64(realSteps) {
		t.Errorf("StepsTotal = %d, want %d (only real searches accumulate)", c.StepsTotal, realSteps)
	}
}

func TestCacheReturnsFreshTuple(t *testing.T) {
	c := NewCache(0)
	tab := buildTable(t, cacheClasses(), 4)
	first, _, _ := c.SearchTuple(tab, 16)
	first[0] = 99 // caller mutates its copy
	second, _, hit := c.SearchTuple(buildTable(t, cacheClasses(), 4), 16)
	if !hit {
		t.Fatal("want a hit")
	}
	if second[0] == 99 {
		t.Error("cache must not alias the tuple it hands out")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	c := NewCache(0)
	base := cacheClasses()
	if _, _, hit := c.SearchTuple(buildTable(t, base, 4), 16); hit {
		t.Fatal("first lookup must miss")
	}

	cases := []struct {
		name string
		tab  *Table
		m    int
	}{
		{"weight changed", buildTable(t, []profile.Class{
			{Name: "heavy", Count: 4, AvgWork: 2.5, MaxWork: 2.7},
			{Name: "light", Count: 16, AvgWork: 0.5, MaxWork: 0.6},
		}, 4), 16},
		{"count changed", buildTable(t, []profile.Class{
			{Name: "heavy", Count: 5, AvgWork: 2.0, MaxWork: 2.2},
			{Name: "light", Count: 16, AvgWork: 0.5, MaxWork: 0.6},
		}, 4), 16},
		{"class renamed", buildTable(t, []profile.Class{
			{Name: "heavier", Count: 4, AvgWork: 2.0, MaxWork: 2.2},
			{Name: "light", Count: 16, AvgWork: 0.5, MaxWork: 0.6},
		}, 4), 16},
		{"T changed", buildTable(t, base, 5), 16},
		{"m changed", buildTable(t, base, 4), 12},
	}
	for _, tc := range cases {
		if _, _, hit := c.SearchTuple(tc.tab, tc.m); hit {
			t.Errorf("%s: lookup hit despite a different search input", tc.name)
		}
	}
	if c.Misses != uint64(1+len(cases)) {
		t.Errorf("misses = %d, want %d", c.Misses, 1+len(cases))
	}
}

func TestCacheMemoizesInfeasible(t *testing.T) {
	c := NewCache(0)
	// One core cannot fit the heavy class within T at any level.
	classes := []profile.Class{{Name: "huge", Count: 8, AvgWork: 10, MaxWork: 10}}
	tab, err := BuildGranular(classes, cacheLadder(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, _ := c.SearchTuple(tab, 1)
	if ok {
		t.Fatal("expected an infeasible instance")
	}
	tab2, _ := BuildGranular(classes, cacheLadder(), 1, 1)
	_, ok, hit := c.SearchTuple(tab2, 1)
	if !hit || ok {
		t.Errorf("infeasible outcome must memoize (hit=%v ok=%v)", hit, ok)
	}
}

func TestCacheBound(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 40; i++ {
		classes := []profile.Class{{Name: "c", Count: i + 1, AvgWork: 1, MaxWork: 1}}
		tab, err := BuildGranular(classes, cacheLadder(), 4, 16)
		if err != nil {
			t.Fatal(err)
		}
		c.SearchTuple(tab, 16)
		if c.Len() > 4 {
			t.Fatalf("cache grew to %d entries past its bound", c.Len())
		}
	}
}

func TestFingerprintStable(t *testing.T) {
	a := buildTable(t, cacheClasses(), 4)
	b := buildTable(t, cacheClasses(), 4)
	if a.Fingerprint(16) != b.Fingerprint(16) {
		t.Error("identical inputs must fingerprint identically")
	}
	if a.Fingerprint(16) == a.Fingerprint(15) {
		t.Error("core budget must be part of the fingerprint")
	}
}
