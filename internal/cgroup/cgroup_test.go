package cgroup

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cctable"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/xrand"
)

var ladder4 = machine.FreqLadder{2.5, 1.8, 1.3, 0.8}

func fig3Table(t *testing.T) *cctable.Table {
	t.Helper()
	tab, err := cctable.FromCounts([][]int{
		{2, 3, 1, 1},
		{4, 6, 2, 2},
		{6, 9, 3, 3},
		{8, 12, 4, 4},
	}, ladder4)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFromTupleFig3(t *testing.T) {
	tab := fig3Table(t)
	tuple, ok := tab.SearchTuple(16)
	if !ok {
		t.Fatal("search failed")
	}
	asn, err := FromTuple(tuple, tab, 16)
	if err != nil {
		t.Fatalf("FromTuple: %v", err)
	}
	if err := asn.Validate(16, 4); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	// Paper: 10 cores at F1 and 6 at F2.
	if asn.U() != 2 {
		t.Fatalf("u = %d, want 2", asn.U())
	}
	if asn.Groups[0].Level != 1 || len(asn.Groups[0].Cores) != 10 {
		t.Errorf("group 0 = level %d × %d cores, want level 1 × 10", asn.Groups[0].Level, len(asn.Groups[0].Cores))
	}
	if asn.Groups[1].Level != 2 || len(asn.Groups[1].Cores) != 6 {
		t.Errorf("group 1 = level %d × %d cores, want level 2 × 6", asn.Groups[1].Level, len(asn.Groups[1].Cores))
	}
	// TC0, TC1 → fast group; TC2, TC3 → slow group.
	for i, want := range []int{0, 0, 1, 1} {
		name := tab.Classes[i].Name
		if got := asn.GroupOfClass(name); got != want {
			t.Errorf("class %s → group %d, want %d", name, got, want)
		}
	}
}

func TestLeftoverCoresJoinSlowestGroup(t *testing.T) {
	classes := []profile.Class{{Name: "a", Count: 4, AvgWork: 1}}
	tab, err := cctable.Build(classes, ladder4, 2.0) // CC[0][0]=2 … CC[3][0]=ceil(6.25)=7
	if err != nil {
		t.Fatal(err)
	}
	tuple, ok := tab.SearchTuple(16)
	if !ok {
		t.Fatal("search failed")
	}
	asn, err := FromTuple(tuple, tab, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(16, 4); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	// All 16 cores must be placed even though the class needs only 7.
	total := 0
	for _, g := range asn.Groups {
		total += len(g.Cores)
	}
	if total != 16 {
		t.Errorf("assigned %d cores, want 16", total)
	}
	// Single class → single group at the slowest feasible level.
	if asn.U() != 1 || asn.Groups[0].Level != 3 {
		t.Errorf("groups = %+v, want one group at level 3", asn.Groups)
	}
}

func TestUnknownClassGoesToFastestGroup(t *testing.T) {
	tab := fig3Table(t)
	tuple, _ := tab.SearchTuple(16)
	asn, err := FromTuple(tuple, tab, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := asn.GroupOfClass("never-seen-before"); got != 0 {
		t.Errorf("unknown class → group %d, want 0 (fastest, paper §III-B)", got)
	}
}

func TestFreqOf(t *testing.T) {
	tab := fig3Table(t)
	tuple, _ := tab.SearchTuple(16)
	asn, _ := FromTuple(tuple, tab, 16)
	// Cores 0..9 at level 1, cores 10..15 at level 2.
	if asn.FreqOf(0) != 1 || asn.FreqOf(9) != 1 {
		t.Error("fast-group cores should be at level 1")
	}
	if asn.FreqOf(10) != 2 || asn.FreqOf(15) != 2 {
		t.Error("slow-group cores should be at level 2")
	}
}

func TestFromTupleRejectsBadTuples(t *testing.T) {
	tab := fig3Table(t)
	if _, err := FromTuple([]int{0}, tab, 16); err == nil {
		t.Error("short tuple should error")
	}
	if _, err := FromTuple([]int{3, 3, 3, 3}, tab, 16); err == nil {
		t.Error("over-budget tuple should error")
	}
	if _, err := FromTuple([]int{2, 1, 1, 1}, tab, 16); err == nil {
		t.Error("non-monotone tuple should error")
	}
}

func TestAllFast(t *testing.T) {
	asn := AllFast(8, []string{"x", "y"})
	if err := asn.Validate(8, 4); err != nil {
		t.Fatalf("AllFast invalid: %v", err)
	}
	if asn.U() != 1 || asn.Groups[0].Level != 0 {
		t.Errorf("AllFast should be one group at level 0, got %+v", asn.Groups)
	}
	if asn.GroupOfClass("x") != 0 || asn.GroupOfClass("zz") != 0 {
		t.Error("every class maps to group 0 under AllFast")
	}
	for c := 0; c < 8; c++ {
		if asn.FreqOf(c) != 0 {
			t.Errorf("core %d at level %d, want 0", c, asn.FreqOf(c))
		}
	}
}

func TestPreferenceListFig5(t *testing.T) {
	// Paper Fig. 5: core in G_i → {G_i, G_{i+1}, …, G_{u-1}, G_{i-1}, …, G_0}.
	cases := []struct {
		gi, u int
		want  []int
	}{
		{0, 1, []int{0}},
		{0, 4, []int{0, 1, 2, 3}},
		{1, 4, []int{1, 2, 3, 0}},
		{2, 4, []int{2, 3, 1, 0}},
		{3, 4, []int{3, 2, 1, 0}},
	}
	for _, tc := range cases {
		got := PreferenceList(tc.gi, tc.u)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("PreferenceList(%d, %d) = %v, want %v", tc.gi, tc.u, got, tc.want)
		}
	}
}

func TestPreferenceListPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range group should panic")
		}
	}()
	PreferenceList(4, 4)
}

func TestPreferenceLists(t *testing.T) {
	lists := PreferenceLists(3)
	if len(lists) != 3 {
		t.Fatalf("got %d lists, want 3", len(lists))
	}
	if !reflect.DeepEqual(lists[1], []int{1, 2, 0}) {
		t.Errorf("lists[1] = %v, want [1 2 0]", lists[1])
	}
}

// Property: every preference list is a permutation of [0, u) that
// starts with the core's own group.
func TestPreferenceListPermutationProperty(t *testing.T) {
	f := func(giRaw, uRaw uint8) bool {
		u := int(uRaw%8) + 1
		gi := int(giRaw) % u
		l := PreferenceList(gi, u)
		if len(l) != u || l[0] != gi {
			return false
		}
		seen := make([]bool, u)
		for _, g := range l {
			if g < 0 || g >= u || seen[g] {
				return false
			}
			seen[g] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromTuple on any valid searched tuple yields a valid
// assignment that uses every core exactly once.
func TestFromTupleAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		rng := xrand.New(seed)
		m := int(mRaw%32) + 2
		k := rng.Intn(4) + 1
		classes := make([]profile.Class, k)
		w := 4.0
		for i := range classes {
			classes[i] = profile.Class{Name: string(rune('a' + i)), Count: rng.Intn(20) + 1, AvgWork: w}
			w *= rng.Range(0.4, 1.0)
		}
		tab, err := cctable.Build(classes, ladder4, rng.Range(10, 200))
		if err != nil {
			return false
		}
		tuple, ok := tab.SearchTuple(m)
		if !ok {
			return true // nothing to assign
		}
		asn, err := FromTuple(tuple, tab, m)
		if err != nil {
			return false
		}
		return asn.Validate(m, len(ladder4)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFromLevels(t *testing.T) {
	levels := []int{0, 0, 3, 3, 3, 1}
	asn, err := FromLevels(levels, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(6, 4); err != nil {
		t.Fatal(err)
	}
	if asn.U() != 3 {
		t.Fatalf("u = %d, want 3", asn.U())
	}
	// Groups in descending frequency: levels 0, 1, 3.
	if asn.Groups[0].Level != 0 || asn.Groups[1].Level != 1 || asn.Groups[2].Level != 3 {
		t.Errorf("group levels = %d,%d,%d", asn.Groups[0].Level, asn.Groups[1].Level, asn.Groups[2].Level)
	}
	if asn.FreqOf(5) != 1 {
		t.Errorf("core 5 at level %d, want 1", asn.FreqOf(5))
	}
}

func TestFromLevelsErrors(t *testing.T) {
	if _, err := FromLevels(nil, 4); err == nil {
		t.Error("no cores should error")
	}
	if _, err := FromLevels([]int{0, 7}, 4); err == nil {
		t.Error("out-of-range level should error")
	}
	if _, err := FromLevels([]int{0, -1}, 4); err == nil {
		t.Error("negative level should error")
	}
}

func TestPlacementCoresPartitionsSharedGroup(t *testing.T) {
	// Two classes forced onto one c-group: their placement slots must
	// be disjoint slices of the group.
	tab, err := cctable.Build([]profile.Class{
		{Name: "a", Count: 32, AvgWork: 0.02},
		{Name: "b", Count: 32, AvgWork: 0.01},
	}, ladder4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tuple, ok := tab.SearchTuple(16)
	if !ok {
		t.Fatal("search failed")
	}
	asn, err := FromTuple(tuple, tab, 16)
	if err != nil {
		t.Fatal(err)
	}
	sa := asn.PlacementCores("a")
	sb := asn.PlacementCores("b")
	if len(sa) == 0 || len(sb) == 0 {
		t.Fatal("empty placement slots")
	}
	seen := map[int]string{}
	for _, c := range sa {
		seen[c] = "a"
	}
	for _, c := range sb {
		if seen[c] == "a" {
			t.Fatalf("core %d in both classes' slots", c)
		}
	}
	// Slots live inside the class's own c-group.
	for _, c := range sa {
		if asn.CoreGroup[c] != asn.GroupOfClass("a") {
			t.Errorf("slot core %d outside class a's group", c)
		}
	}
}

func TestPlacementCoresFallsBackToGroup(t *testing.T) {
	asn := AllFast(8, []string{"x"})
	cores := asn.PlacementCores("x")
	if len(cores) != 8 {
		t.Errorf("AllFast placement should be the whole group, got %v", cores)
	}
	// Unknown class: fastest group.
	if got := asn.PlacementCores("ghost"); len(got) != 8 {
		t.Errorf("unknown class placement = %v", got)
	}
}
