// Package cgroup turns a k-tuple chosen by the frequency adjuster into
// the runtime structures of the paper's §III-B: *c-groups* (sets of
// cores sharing an operating frequency), the class→c-group allocation,
// and each core's *preference list* ordered by the rob-the-weaker-first
// principle (Fig. 5):
//
//	core in G_i prefers {G_i, G_{i+1}, …, G_{u-1}, G_{i-1}, …, G_0}
//
// i.e. first its own group, then strictly slower groups fastest-first,
// then faster groups slowest-first.
//
// Cores left over after satisfying the tuple's per-class core counts
// (Σ CC[a_i][i] may be < m) join the slowest selected c-group: they are
// capacity slack, and parking slack at the lowest chosen frequency is
// the energy-minimal placement (DESIGN.md §5).
package cgroup

import (
	"fmt"

	"repro/internal/cctable"
)

// Group is one c-group: a frequency level and the cores operating at it.
type Group struct {
	// Level is the frequency-ladder index the group's cores run at.
	Level int
	// Cores are the member core IDs.
	Cores []int
}

// Assignment is the complete outcome of one adjuster decision: which
// core runs at which frequency, which c-group each core belongs to, and
// which c-group each task class is allocated to.
type Assignment struct {
	// Groups are the u c-groups in descending frequency order
	// (Groups[0] is the fastest).
	Groups []Group
	// ClassGroup maps a task-class name to its c-group index.
	ClassGroup map[string]int
	// CoreGroup maps a core ID to its c-group index.
	CoreGroup []int
	// Tuple is the k-tuple that produced this assignment (empty for
	// AllFast), kept for tracing.
	Tuple []int
	// classSlots maps a class to the cores inside its c-group reserved
	// for its initial task placement — CC[a_i][i] cores each, in class
	// (tuple) order. When two classes share a c-group this keeps their
	// chunky tasks from colliding on the same pools; work stealing
	// still rebalances afterwards. Nil for AllFast/FromLevels
	// assignments.
	classSlots map[string][]int
}

// PlacementCores returns the cores a class's tasks should initially be
// distributed over: its reserved slice of its c-group when the
// assignment carries per-class core counts, otherwise the whole
// c-group.
func (a *Assignment) PlacementCores(name string) []int {
	if slots, ok := a.classSlots[name]; ok && len(slots) > 0 {
		return slots
	}
	return a.Groups[a.GroupOfClass(name)].Cores
}

// U returns the number of c-groups in use.
func (a *Assignment) U() int { return len(a.Groups) }

// GroupOfClass returns the c-group index for a class name; unknown
// classes go to the fastest group (index 0), the paper's rule for
// tasks "with no existing task class".
func (a *Assignment) GroupOfClass(name string) int {
	if g, ok := a.ClassGroup[name]; ok {
		return g
	}
	return 0
}

// FreqOf returns the frequency level of core id under this assignment.
func (a *Assignment) FreqOf(id int) int {
	return a.Groups[a.CoreGroup[id]].Level
}

// Validate checks internal consistency for m cores and r frequency
// levels.
func (a *Assignment) Validate(m, r int) error {
	if len(a.Groups) == 0 {
		return fmt.Errorf("cgroup: no groups")
	}
	if len(a.CoreGroup) != m {
		return fmt.Errorf("cgroup: CoreGroup has %d entries, want %d", len(a.CoreGroup), m)
	}
	seen := make([]bool, m)
	prevLevel := -1
	for gi, g := range a.Groups {
		if g.Level < 0 || g.Level >= r {
			return fmt.Errorf("cgroup: group %d level %d out of range", gi, g.Level)
		}
		if g.Level <= prevLevel {
			return fmt.Errorf("cgroup: groups not in descending frequency order at %d", gi)
		}
		prevLevel = g.Level
		if len(g.Cores) == 0 {
			return fmt.Errorf("cgroup: group %d is empty", gi)
		}
		for _, c := range g.Cores {
			if c < 0 || c >= m {
				return fmt.Errorf("cgroup: group %d contains invalid core %d", gi, c)
			}
			if seen[c] {
				return fmt.Errorf("cgroup: core %d in two groups", c)
			}
			seen[c] = true
			if a.CoreGroup[c] != gi {
				return fmt.Errorf("cgroup: CoreGroup[%d] = %d, want %d", c, a.CoreGroup[c], gi)
			}
		}
	}
	for c := 0; c < m; c++ {
		if !seen[c] {
			return fmt.Errorf("cgroup: core %d unassigned", c)
		}
	}
	for name, g := range a.ClassGroup {
		if g < 0 || g >= len(a.Groups) {
			return fmt.Errorf("cgroup: class %q maps to invalid group %d", name, g)
		}
	}
	return nil
}

// FromTuple builds the assignment for a k-tuple over table tab on an
// m-core machine. Core IDs are handed out in ascending order, fastest
// group first, so assignments are deterministic.
func FromTuple(tuple []int, tab *cctable.Table, m int) (*Assignment, error) {
	if len(tuple) != tab.K() {
		return nil, fmt.Errorf("cgroup: tuple has %d entries for %d classes", len(tuple), tab.K())
	}
	if !tab.ValidTuple(tuple, m) {
		return nil, fmt.Errorf("cgroup: tuple %v invalid for m=%d", tuple, m)
	}

	// Cores required per frequency level.
	coresPerLevel := make(map[int]int)
	var levels []int
	for i, a := range tuple {
		if coresPerLevel[a] == 0 {
			levels = append(levels, a)
		}
		coresPerLevel[a] += tab.CC[a][i]
	}
	// tuple is monotone non-decreasing, so `levels` is already ascending
	// (descending frequency).

	// Leftover cores join the slowest selected group.
	total := 0
	for _, n := range coresPerLevel {
		total += n
	}
	coresPerLevel[levels[len(levels)-1]] += m - total

	asn := &Assignment{
		ClassGroup: make(map[string]int, tab.K()),
		CoreGroup:  make([]int, m),
		Tuple:      append([]int(nil), tuple...),
	}
	next := 0
	levelGroup := make(map[int]int, len(levels))
	for gi, lvl := range levels {
		n := coresPerLevel[lvl]
		g := Group{Level: lvl, Cores: make([]int, 0, n)}
		for c := 0; c < n; c++ {
			g.Cores = append(g.Cores, next)
			asn.CoreGroup[next] = gi
			next++
		}
		asn.Groups = append(asn.Groups, g)
		levelGroup[lvl] = gi
	}
	for i, a := range tuple {
		asn.ClassGroup[tab.Classes[i].Name] = levelGroup[a]
	}

	// Reserve CC[a_i][i] cores of each group for each class, in tuple
	// order, so same-group classes spread over disjoint pools.
	asn.classSlots = make(map[string][]int, tab.K())
	used := make([]int, len(asn.Groups))
	for i, a := range tuple {
		gi := levelGroup[a]
		cores := asn.Groups[gi].Cores
		n := tab.CC[a][i]
		lo := used[gi]
		hi := lo + n
		if hi > len(cores) {
			hi = len(cores)
		}
		asn.classSlots[tab.Classes[i].Name] = cores[lo:hi]
		used[gi] = hi
	}
	return asn, nil
}

// AllFast returns the degenerate assignment used for the first batch
// and for infeasible instances: a single c-group containing every core
// at F0, with every known class allocated to it.
func AllFast(m int, classNames []string) *Assignment {
	g := Group{Level: 0, Cores: make([]int, m)}
	asn := &Assignment{
		Groups:     []Group{g},
		ClassGroup: make(map[string]int, len(classNames)),
		CoreGroup:  make([]int, m),
	}
	for c := 0; c < m; c++ {
		g.Cores[c] = c
	}
	asn.Groups[0] = g
	for _, n := range classNames {
		asn.ClassGroup[n] = 0
	}
	return asn
}

// FromLevels builds an assignment from an explicit per-core frequency
// level vector — the shape of the paper's Fig. 7 experiment, where the
// machine's frequencies are *frozen* to a configuration EEWA chose and
// other schedulers run on the resulting asymmetric machine. No classes
// are pre-allocated; callers fill ClassGroup (WATS) or leave it empty
// so every class maps to the fastest group.
func FromLevels(levels []int, r int) (*Assignment, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cgroup: no cores")
	}
	present := make([]bool, r)
	for c, l := range levels {
		if l < 0 || l >= r {
			return nil, fmt.Errorf("cgroup: core %d level %d out of range [0,%d)", c, l, r)
		}
		present[l] = true
	}
	asn := &Assignment{
		ClassGroup: make(map[string]int),
		CoreGroup:  make([]int, len(levels)),
	}
	levelGroup := make(map[int]int)
	for l := 0; l < r; l++ {
		if present[l] {
			levelGroup[l] = len(asn.Groups)
			asn.Groups = append(asn.Groups, Group{Level: l})
		}
	}
	for c, l := range levels {
		gi := levelGroup[l]
		asn.Groups[gi].Cores = append(asn.Groups[gi].Cores, c)
		asn.CoreGroup[c] = gi
	}
	return asn, nil
}

// PreferenceList returns the steal order for a core in c-group gi of u
// groups, per the paper's Fig. 5: own group, then slower groups in
// increasing slowness, then faster groups from nearest to fastest.
func PreferenceList(gi, u int) []int {
	if gi < 0 || gi >= u {
		panic(fmt.Sprintf("cgroup: group %d out of %d", gi, u))
	}
	out := make([]int, 0, u)
	for g := gi; g < u; g++ {
		out = append(out, g)
	}
	for g := gi - 1; g >= 0; g-- {
		out = append(out, g)
	}
	return out
}

// PreferenceLists returns the lists for all u groups, indexed by group.
func PreferenceLists(u int) [][]int {
	out := make([][]int, u)
	for gi := 0; gi < u; gi++ {
		out[gi] = PreferenceList(gi, u)
	}
	return out
}
