package task

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAtCPUBound(t *testing.T) {
	tk := Task{Work: 2.0, MemFrac: 0}
	if got := tk.TimeAt(1.0); got != 2.0 {
		t.Errorf("TimeAt(F0) = %g, want 2", got)
	}
	// At half frequency a CPU-bound task takes twice as long (paper §II).
	if got := tk.TimeAt(2.0); got != 4.0 {
		t.Errorf("TimeAt(0.5·F0) = %g, want 4", got)
	}
}

func TestTimeAtMemoryBound(t *testing.T) {
	tk := Task{Work: 2.0, MemFrac: 1.0}
	// A fully memory-bound task is frequency-insensitive.
	if got := tk.TimeAt(3.0); got != 2.0 {
		t.Errorf("memory-bound TimeAt = %g, want 2", got)
	}
	half := Task{Work: 2.0, MemFrac: 0.5}
	if got, want := half.TimeAt(2.0), 2.0*(0.5+0.5*2.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("half-bound TimeAt = %g, want %g", got, want)
	}
}

func TestBatchTotalWorkAndClasses(t *testing.T) {
	b := Batch{Tasks: []Task{
		{Class: "md5", Work: 1},
		{Class: "sha1", Work: 2},
		{Class: "md5", Work: 3},
	}}
	if got := b.TotalWork(); got != 6 {
		t.Errorf("TotalWork = %g, want 6", got)
	}
	classes := b.Classes()
	if len(classes) != 2 || classes[0] != "md5" || classes[1] != "sha1" {
		t.Errorf("Classes = %v, want [md5 sha1] in first-seen order", classes)
	}
}

func TestGenerateShape(t *testing.T) {
	speces := []ClassSpec{
		{Name: "heavy", Count: 8, MeanWork: 1.0, JitterFrac: 0.05},
		{Name: "light", Count: 120, MeanWork: 0.1, JitterFrac: 0.05},
	}
	w, err := Generate("test", 10, speces, 42)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("generated workload invalid: %v", err)
	}
	if len(w.Batches) != 10 {
		t.Fatalf("batches = %d, want 10", len(w.Batches))
	}
	if w.TotalTasks() != 10*128 {
		t.Errorf("TotalTasks = %d, want 1280", w.TotalTasks())
	}
	// Every task ID unique.
	seen := map[int]bool{}
	for _, b := range w.Batches {
		for _, tk := range b.Tasks {
			if seen[tk.ID] {
				t.Fatalf("duplicate task ID %d", tk.ID)
			}
			seen[tk.ID] = true
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	specs := []ClassSpec{{Name: "a", Count: 16, MeanWork: 0.5, JitterFrac: 0.1}}
	w1 := MustGenerate("d", 3, specs, 7)
	w2 := MustGenerate("d", 3, specs, 7)
	for bi := range w1.Batches {
		for ti := range w1.Batches[bi].Tasks {
			a, b := w1.Batches[bi].Tasks[ti], w2.Batches[bi].Tasks[ti]
			if a.Work != b.Work || a.Class != b.Class {
				t.Fatalf("same seed produced different workloads at batch %d task %d", bi, ti)
			}
		}
	}
	w3 := MustGenerate("d", 3, specs, 8)
	if w3.Batches[0].Tasks[0].Work == w1.Batches[0].Tasks[0].Work {
		t.Error("different seeds should produce different jitter")
	}
}

func TestGenerateJitterWithinBounds(t *testing.T) {
	specs := []ClassSpec{{Name: "a", Count: 200, MeanWork: 1.0, JitterFrac: 0.2}}
	w := MustGenerate("j", 5, specs, 1)
	for _, b := range w.Batches {
		for _, tk := range b.Tasks {
			if tk.Work < 0.8 || tk.Work >= 1.2 {
				t.Fatalf("work %g outside jitter bounds [0.8, 1.2)", tk.Work)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	good := []ClassSpec{{Name: "a", Count: 1, MeanWork: 1}}
	cases := []struct {
		name    string
		batches int
		specs   []ClassSpec
	}{
		{"no batches", 0, good},
		{"no specs", 1, nil},
		{"zero count", 1, []ClassSpec{{Name: "a", Count: 0, MeanWork: 1}}},
		{"zero work", 1, []ClassSpec{{Name: "a", Count: 1, MeanWork: 0}}},
		{"bad jitter", 1, []ClassSpec{{Name: "a", Count: 1, MeanWork: 1, JitterFrac: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Generate("x", tc.batches, tc.specs, 1); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestMustGeneratePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate with bad spec should panic")
		}
	}()
	MustGenerate("x", 0, nil, 1)
}

func TestValidateCatchesCorruption(t *testing.T) {
	w := MustGenerate("v", 2, []ClassSpec{{Name: "a", Count: 4, MeanWork: 1}}, 3)
	if err := w.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	w.Batches[1].Tasks[0].Work = -1
	if err := w.Validate(); err == nil {
		t.Error("negative work should be rejected")
	}
	w.Batches[1].Tasks[0].Work = 1
	w.Batches[1].Tasks[0].MemFrac = 2
	if err := w.Validate(); err == nil {
		t.Error("MemFrac > 1 should be rejected")
	}
	w.Batches[1].Tasks[0].MemFrac = 0
	w.Batches[1].Tasks[0].Class = ""
	if err := w.Validate(); err == nil {
		t.Error("empty class should be rejected")
	}
	empty := &Workload{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty workload should be rejected")
	}
	oneEmptyBatch := &Workload{Name: "e", Batches: []Batch{{}}}
	if err := oneEmptyBatch.Validate(); err == nil {
		t.Error("empty batch should be rejected")
	}
}

// Property: TotalWork equals the sum over batches of per-batch totals,
// and every batch's total work is within count·mean·(1±jitter).
func TestGenerateWorkBoundsProperty(t *testing.T) {
	f := func(seed uint64, countRaw, batchRaw uint8) bool {
		count := int(countRaw%32) + 1
		batches := int(batchRaw%5) + 1
		specs := []ClassSpec{{Name: "c", Count: count, MeanWork: 2.0, JitterFrac: 0.1}}
		w, err := Generate("p", batches, specs, seed)
		if err != nil {
			return false
		}
		for _, b := range w.Batches {
			total := b.TotalWork()
			lo := float64(count) * 2.0 * 0.9
			hi := float64(count) * 2.0 * 1.1
			if total < lo-1e-9 || total > hi+1e-9 {
				return false
			}
		}
		return math.Abs(w.TotalWork()-sumBatches(w)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sumBatches(w *Workload) float64 {
	s := 0.0
	for i := range w.Batches {
		s += w.Batches[i].TotalWork()
	}
	return s
}
