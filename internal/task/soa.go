package task

import "math"

// SoA is the struct-of-arrays view of one batch: parallel arrays
// indexed by a compact int32 task index, plus a per-batch class-id
// table. The simulator's hot path works exclusively on these arrays —
// task indices flow through the pools instead of *Task pointers, so
// the per-task working set is a few contiguous float64 reads instead
// of a pointer chase, and nothing per-task is allocated.
//
// A SoA is a reusable slab: Fill truncates and repopulates the arrays
// in place, so one SoA serves every batch of a run with amortized-zero
// allocation once capacities have grown to the largest batch.
type SoA struct {
	// ClassID[i] is task i's class id — an index into Classes.
	ClassID []int32
	// Work[i] is task i's execution time in seconds at F0.
	Work []float64
	// MemFrac[i] is the frequency-insensitive fraction of Work[i].
	MemFrac []float64
	// Miss[i] is task i's modeled cache-miss intensity.
	Miss []float64
	// Classes maps class id → class name, in first-appearance order
	// within the batch.
	Classes []string

	ids map[string]int32
}

// Len returns the number of tasks in the filled batch.
func (s *SoA) Len() int { return len(s.ClassID) }

// Fill repopulates the arrays from b, reusing existing capacity.
func (s *SoA) Fill(b *Batch) {
	if len(b.Tasks) > math.MaxInt32 {
		panic("task: batch exceeds int32 index space")
	}
	s.ClassID = s.ClassID[:0]
	s.Work = s.Work[:0]
	s.MemFrac = s.MemFrac[:0]
	s.Miss = s.Miss[:0]
	s.Classes = s.Classes[:0]
	if s.ids == nil {
		s.ids = make(map[string]int32)
	} else {
		clear(s.ids)
	}
	// lastName/lastID short-circuit the common case of runs of tasks
	// sharing a class: same-class names within a batch usually share
	// string backing, so == is a pointer compare, skipping the map hash.
	lastName, lastID := "", int32(-1)
	for i := range b.Tasks {
		t := &b.Tasks[i]
		id := lastID
		if t.Class != lastName {
			var ok bool
			id, ok = s.ids[t.Class]
			if !ok {
				id = int32(len(s.Classes))
				s.Classes = append(s.Classes, t.Class)
				s.ids[t.Class] = id
			}
			lastName, lastID = t.Class, id
		}
		s.ClassID = append(s.ClassID, id)
		s.Work = append(s.Work, t.Work)
		s.MemFrac = append(s.MemFrac, t.MemFrac)
		s.Miss = append(s.Miss, t.CacheMissIntensity)
	}
}

// TimeAt returns task i's execution time at frequency ratio F0/Fj —
// the SoA counterpart of Task.TimeAt.
func (s *SoA) TimeAt(i int32, ratio float64) float64 {
	mf := s.MemFrac[i]
	return s.Work[i] * (mf + (1-mf)*ratio)
}
