// Package task defines the task, batch and workload model shared by the
// EEWA simulator, the live runtime and the experiment harness.
//
// The paper targets *iteration-based* (batch-based) parallel programs:
// the program repeatedly launches a batch of parallel tasks (e.g. 128,
// as Cilk++ recommends), waits for the batch barrier, then launches the
// next. Tasks carry a *function name*; tasks sharing a name form a
// *task class* whose average workload EEWA profiles online.
//
// Work is expressed in seconds-at-F0: the time the task needs on a core
// running at the fastest frequency. A CPU-bound task on a core at
// frequency Fj takes Work · F0/Fj. A partially memory-bound task keeps
// MemFrac of its time frequency-insensitive:
//
//	t(j) = Work · (MemFrac + (1-MemFrac) · F0/Fj)
//
// which is the standard leading-order model and the reason the paper's
// Section IV-D excludes memory-bound applications from frequency
// scaling: the CC table assumes MemFrac ≈ 0.
package task

import (
	"fmt"

	"repro/internal/xrand"
)

// Task is one unit of parallel work.
type Task struct {
	// ID is unique within a workload; useful for tracing.
	ID int
	// Class is the task's function name (f in TC(f, n, w)).
	Class string
	// Work is the execution time in seconds on a core at F0.
	Work float64
	// MemFrac is the fraction of execution time that does not scale
	// with core frequency (0 = perfectly CPU-bound).
	MemFrac float64
	// CacheMissIntensity models the hardware counter ratio
	// cache-misses / retired-instructions the paper samples during the
	// first batch to classify tasks as memory-bound.
	CacheMissIntensity float64
	// Payload, if non-nil, is real work for the live runtime; the
	// simulator ignores it.
	Payload func()
}

// TimeAt returns the task's execution time on a core at frequency level
// j of ladder ratios, where ratio = F0/Fj.
func (t *Task) TimeAt(ratio float64) float64 {
	return t.Work * (t.MemFrac + (1-t.MemFrac)*ratio)
}

// Batch is one iteration's worth of tasks, executed between two
// barriers.
type Batch struct {
	Tasks []Task
}

// TotalWork returns the sum of the batch's Work values (seconds at F0).
func (b *Batch) TotalWork() float64 {
	sum := 0.0
	for i := range b.Tasks {
		sum += b.Tasks[i].Work
	}
	return sum
}

// Classes returns the distinct class names in the batch, in first-seen
// order.
func (b *Batch) Classes() []string {
	seen := map[string]bool{}
	var out []string
	for i := range b.Tasks {
		c := b.Tasks[i].Class
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Workload is a named sequence of batches — one complete application
// run in the paper's model.
type Workload struct {
	Name    string
	Batches []Batch
}

// TotalTasks returns the task count across all batches.
func (w *Workload) TotalTasks() int {
	n := 0
	for i := range w.Batches {
		n += len(w.Batches[i].Tasks)
	}
	return n
}

// TotalWork returns the summed Work across all batches.
func (w *Workload) TotalWork() float64 {
	sum := 0.0
	for i := range w.Batches {
		sum += w.Batches[i].TotalWork()
	}
	return sum
}

// Validate checks the workload is non-degenerate: at least one batch,
// every batch non-empty, and every task with positive work.
func (w *Workload) Validate() error {
	if len(w.Batches) == 0 {
		return fmt.Errorf("task: workload %q has no batches", w.Name)
	}
	for bi := range w.Batches {
		b := &w.Batches[bi]
		if len(b.Tasks) == 0 {
			return fmt.Errorf("task: workload %q batch %d is empty", w.Name, bi)
		}
		for ti := range b.Tasks {
			tk := &b.Tasks[ti]
			if tk.Work <= 0 {
				return fmt.Errorf("task: workload %q batch %d task %d has non-positive work %g", w.Name, bi, ti, tk.Work)
			}
			if tk.MemFrac < 0 || tk.MemFrac > 1 {
				return fmt.Errorf("task: workload %q batch %d task %d has MemFrac %g outside [0,1]", w.Name, bi, ti, tk.MemFrac)
			}
			if tk.Class == "" {
				return fmt.Errorf("task: workload %q batch %d task %d has empty class", w.Name, bi, ti)
			}
		}
	}
	return nil
}

// ClassSpec describes one task class in a synthetic workload: Count
// tasks per batch named Name, with per-task work jittered around
// MeanWork by ±JitterFrac (relative) each batch. This encodes the
// paper's core assumption that "task workloads of different iterations
// have similar patterns" while still varying between iterations.
type ClassSpec struct {
	Name               string
	Count              int
	MeanWork           float64 // seconds at F0
	JitterFrac         float64 // relative jitter per task, e.g. 0.05
	MemFrac            float64
	CacheMissIntensity float64
}

// Generate builds a deterministic synthetic workload of `batches`
// batches from the class specs, shuffling task order within each batch
// (spawn order is program-dependent in real Cilk programs, and the
// scheduler must not rely on it).
func Generate(name string, batches int, specs []ClassSpec, seed uint64) (*Workload, error) {
	if batches <= 0 {
		return nil, fmt.Errorf("task: need at least one batch, got %d", batches)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("task: need at least one class spec")
	}
	for _, s := range specs {
		if s.Count <= 0 || s.MeanWork <= 0 {
			return nil, fmt.Errorf("task: class %q needs positive count and work", s.Name)
		}
		if s.JitterFrac < 0 || s.JitterFrac >= 1 {
			return nil, fmt.Errorf("task: class %q jitter %g outside [0,1)", s.Name, s.JitterFrac)
		}
	}
	rng := xrand.New(seed)
	w := &Workload{Name: name, Batches: make([]Batch, batches)}
	id := 0
	for bi := 0; bi < batches; bi++ {
		var tasks []Task
		for _, s := range specs {
			for i := 0; i < s.Count; i++ {
				tasks = append(tasks, Task{
					ID:                 id,
					Class:              s.Name,
					Work:               rng.Jitter(s.MeanWork, s.JitterFrac),
					MemFrac:            s.MemFrac,
					CacheMissIntensity: s.CacheMissIntensity,
				})
				id++
			}
		}
		rng.Shuffle(len(tasks), func(i, j int) { tasks[i], tasks[j] = tasks[j], tasks[i] })
		w.Batches[bi] = Batch{Tasks: tasks}
	}
	return w, nil
}

// MustGenerate is Generate for static, known-good specs (presets);
// it panics on error.
func MustGenerate(name string, batches int, specs []ClassSpec, seed uint64) *Workload {
	w, err := Generate(name, batches, specs, seed)
	if err != nil {
		panic(err)
	}
	return w
}
