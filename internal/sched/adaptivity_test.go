package sched

// Adaptivity tests: the paper's EEWA rests on the assumption that
// "task workloads of different iterations have similar patterns"
// (§II-A). These tests probe what happens when that assumption bends —
// drifting workloads, phase changes, and vanishing classes — and pin
// the property that matters: the adjuster re-decides every batch, so
// EEWA follows the workload instead of diverging.

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/task"
)

// buildWorkload assembles a workload from explicit per-batch specs.
func buildWorkload(name string, perBatch [][]task.ClassSpec, seed uint64) *task.Workload {
	w := &task.Workload{Name: name}
	for bi, specs := range perBatch {
		one := task.MustGenerate(name, 1, specs, seed+uint64(bi)*7919)
		w.Batches = append(w.Batches, one.Batches[0])
	}
	return w
}

func TestEEWAFollowsGradualDrift(t *testing.T) {
	// The light class's work grows 15% per batch: configurations must
	// track it (EEWA re-profiles every batch) and the makespan must
	// stay close to a Cilk run of the same drifting workload.
	cfg := machine.Opteron16()
	var perBatch [][]task.ClassSpec
	lightWork := 0.004
	for b := 0; b < 8; b++ {
		perBatch = append(perBatch, []task.ClassSpec{
			{Name: "heavy", Count: 6, MeanWork: 0.15, JitterFrac: 0.05},
			{Name: "light", Count: 122, MeanWork: lightWork, JitterFrac: 0.05},
		})
		lightWork *= 1.15
	}
	w := buildWorkload("drift", perBatch, 3)
	cilk := mustRun(t, cfg, w, NewCilk())
	ee := mustRun(t, cfg, w, NewEEWA())
	if ee.Makespan > 1.10*cilk.Makespan {
		t.Errorf("EEWA under drift: %.4f vs cilk %.4f (>10%%)", ee.Makespan, cilk.Makespan)
	}
	if ee.Energy >= cilk.Energy {
		t.Errorf("EEWA under drift should still save energy: %.1f vs %.1f", ee.Energy, cilk.Energy)
	}
}

func TestEEWAPhaseChangeSwitchesConfig(t *testing.T) {
	// Batches 0-4: sha1-like skew (deep downscaling); batches 5-9: a
	// dense balanced mix (little headroom). The census must visibly
	// change across the phase boundary.
	cfg := machine.Opteron16()
	skew := []task.ClassSpec{
		{Name: "p1/heavy", Count: 5, MeanWork: 0.170, JitterFrac: 0.03},
		{Name: "p1/light", Count: 123, MeanWork: 0.0046, JitterFrac: 0.05},
	}
	dense := []task.ClassSpec{
		{Name: "p2/a", Count: 64, MeanWork: 0.018, JitterFrac: 0.05},
		{Name: "p2/b", Count: 64, MeanWork: 0.009, JitterFrac: 0.05},
	}
	var perBatch [][]task.ClassSpec
	for b := 0; b < 5; b++ {
		perBatch = append(perBatch, skew)
	}
	for b := 5; b < 10; b++ {
		perBatch = append(perBatch, dense)
	}
	w := buildWorkload("phase", perBatch, 5)
	res := mustRun(t, cfg, w, NewEEWA())

	// Steady skew phase: deep downscaling (many cores below F0).
	skewSlow := 0
	for lvl := 1; lvl < 4; lvl++ {
		skewSlow += res.BatchCensus[3][lvl]
	}
	if skewSlow < 8 {
		t.Errorf("skew phase census %v: want ≥8 cores below F0", res.BatchCensus[3])
	}
	// After the phase change (batch 6 reflects batch 5's profile of the
	// new mix): the config must differ from the skew phase's.
	same := true
	for lvl := 0; lvl < 4; lvl++ {
		if res.BatchCensus[3][lvl] != res.BatchCensus[7][lvl] {
			same = false
		}
	}
	if same {
		t.Errorf("census did not adapt across the phase change: %v vs %v",
			res.BatchCensus[3], res.BatchCensus[7])
	}
	// All tasks must still complete without pathological overrun.
	cilk := mustRun(t, cfg, w, NewCilk())
	if res.Makespan > 1.25*cilk.Makespan {
		t.Errorf("phase change blew the makespan: %.4f vs %.4f", res.Makespan, cilk.Makespan)
	}
}

func TestEEWANewClassGoesToFastGroup(t *testing.T) {
	// A class that first appears mid-run has no profile; the paper
	// routes unknown classes to the fastest c-group. The run must
	// complete and the makespan must stay bounded.
	cfg := machine.Opteron16()
	base := []task.ClassSpec{
		{Name: "old/heavy", Count: 6, MeanWork: 0.12, JitterFrac: 0.05},
		{Name: "old/light", Count: 110, MeanWork: 0.006, JitterFrac: 0.05},
	}
	withNew := append(append([]task.ClassSpec(nil), base...),
		task.ClassSpec{Name: "surprise", Count: 12, MeanWork: 0.03, JitterFrac: 0.05})
	perBatch := [][]task.ClassSpec{base, base, base, withNew, withNew, withNew}
	w := buildWorkload("newclass", perBatch, 9)
	res := mustRun(t, cfg, w, NewEEWA())
	cilk := mustRun(t, cfg, w, NewCilk())
	if res.Makespan > 1.2*cilk.Makespan {
		t.Errorf("surprise class degraded EEWA %.4f vs cilk %.4f", res.Makespan, cilk.Makespan)
	}
}

func TestEEWAVanishingClass(t *testing.T) {
	// A class present early disappears; the adjuster must not keep
	// reserving cores for it (its per-batch profile resets), and the
	// run completes.
	cfg := machine.Opteron16()
	both := []task.ClassSpec{
		{Name: "stay", Count: 100, MeanWork: 0.008, JitterFrac: 0.05},
		{Name: "gone", Count: 8, MeanWork: 0.10, JitterFrac: 0.05},
	}
	only := []task.ClassSpec{
		{Name: "stay", Count: 100, MeanWork: 0.008, JitterFrac: 0.05},
	}
	perBatch := [][]task.ClassSpec{both, both, only, only, only, only}
	w := buildWorkload("vanish", perBatch, 13)
	res := mustRun(t, cfg, w, NewEEWA())
	if len(res.BatchTimes) != 6 {
		t.Fatalf("expected 6 batches, got %d", len(res.BatchTimes))
	}
	// Once the heavy class is gone, the whole machine can go slow: most
	// cores should sit below F0 in the late batches.
	lateSlow := 0
	for lvl := 1; lvl < 4; lvl++ {
		lateSlow += res.BatchCensus[5][lvl]
	}
	if lateSlow < 12 {
		t.Errorf("late census %v: expected ≥12 cores below F0 once the heavy class vanished", res.BatchCensus[5])
	}
}
