// Package sched is the discrete-event execution engine for the
// scheduling policies of internal/policy (Cilk, Cilk-D, WATS, EEWA).
// All decision logic — per-batch planning, task placement, steal
// preference order, out-of-work behaviour — lives in internal/policy
// and is shared verbatim with the live goroutine runtime
// (internal/rt); this package only executes those decisions on a
// simulated machine.
//
// The engine executes one task.Workload on one machine.Machine under
// one Policy, producing a Result with makespan, wall energy, per-batch
// frequency censuses (Fig. 8), steal statistics and adjuster overhead
// (Table III). Simulations are deterministic for a given Params.Seed.
package sched

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
)

// Params are engine tuning knobs. Zero values are replaced by
// DefaultParams values in Run.
type Params struct {
	// ProbeCost is the simulated cost of checking one task pool during
	// work search (seconds).
	ProbeCost float64
	// StealCost is the extra cost of a successful remote steal
	// (seconds) — CAS plus cache-line transfer.
	StealCost float64
	// AdjusterCharge is the simulated per-batch cost of running the
	// frequency adjuster (profiling consolidation + CC table +
	// Algorithm 1). The *measured host* cost of our implementation is
	// reported separately in Result.AdjusterHostTime; the simulated
	// charge is fixed for determinism and set conservatively above the
	// measured values (Table III reports both).
	AdjusterCharge float64
	// Seed drives victim selection and placement shuffles.
	Seed uint64
	// Recorder, when non-nil, receives one span per executed task
	// (internal/trace.Recorder satisfies it). If it also implements
	// SpanRecorder, the engine additionally reports steal lead-in and
	// terminal idle intervals.
	Recorder Recorder
	// Obs, when non-nil, receives the engine's metrics: steal traffic
	// per victim c-group, probe misses, adjuster invocations and search
	// depth, per-batch frequency-level residency and energy (see
	// internal/obs). A nil registry costs one pointer check per metric
	// site and allocates nothing.
	Obs *obs.Registry
}

// Recorder receives per-task execution spans for Gantt/CSV rendering.
type Recorder interface {
	Record(core int, start, end float64, label string, level int)
}

// SpanRecorder extends Recorder with the intervals where time goes when
// a core is not executing: the probe/steal lead-in before a stolen task
// and the terminal idle wait at the batch barrier.
// internal/trace.Recorder satisfies it.
type SpanRecorder interface {
	Recorder
	RecordSteal(core int, start, end float64, victimGroup int)
	RecordIdle(core int, start, end float64)
}

// DefaultParams returns the parameters used by every experiment in the
// repository.
func DefaultParams() Params {
	return Params{
		ProbeCost:      0.2e-6,
		StealCost:      1.0e-6,
		AdjusterCharge: 2.0e-3,
		Seed:           1,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.ProbeCost <= 0 {
		p.ProbeCost = d.ProbeCost
	}
	if p.StealCost <= 0 {
		p.StealCost = d.StealCost
	}
	if p.AdjusterCharge <= 0 {
		p.AdjusterCharge = d.AdjusterCharge
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// The decision-surface types are owned by internal/policy and shared
// with the live runtime; the aliases keep this package's historical
// API for the engine's callers.
type (
	// Env is the read-only context a Policy sees when planning a batch.
	Env = policy.Env
	// Plan is a policy's decision for one batch.
	Plan = policy.Plan
	// OutOfWorkAction is what a core does once every reachable pool is
	// empty for the remainder of a batch.
	OutOfWorkAction = policy.OutOfWorkAction
	// Policy is a scheduling discipline the engine can execute.
	Policy = policy.Policy
)

// Result is everything a simulation run reports.
type Result struct {
	Policy   string
	Workload string

	// Makespan is total simulated execution time (seconds).
	Makespan float64
	// Energy is whole-machine energy (joules): cores + base draw.
	Energy float64
	// CoreEnergy excludes the base draw.
	CoreEnergy float64

	// BatchTimes are per-batch durations; BatchTimes[0] is the ideal
	// iteration time T.
	BatchTimes []float64
	// BatchCensus[bi][j] is the number of cores at frequency level j
	// during batch bi — the paper's Fig. 8.
	BatchCensus [][]int

	// Steals counts successful remote steals; Probes counts pool
	// inspections; Migrated counts tasks executed outside their
	// class's allocated c-group.
	Steals   int
	Probes   int
	Migrated int

	// AdjusterSimTime is the total simulated adjuster charge;
	// AdjusterHostTime is the measured host time of the actual
	// CC-table + backtracking implementation (Table III).
	AdjusterSimTime  float64
	AdjusterHostTime time.Duration

	// BusyTime/SpinTime/HaltTime are core-seconds summed over cores.
	BusyTime, SpinTime, HaltTime float64

	// DVFSTransitions counts frequency switches.
	DVFSTransitions int

	// MemoryBound reports whether the profiler classified the
	// application as memory-bound (EEWA then falls back to classic
	// stealing, paper §IV-D).
	MemoryBound bool

	// Profile is the final batch's workload profile with the measured
	// ideal time — reusable as an offline profile (EEWA.Offline) per
	// the paper's §IV-D.
	Profile *profile.Snapshot
}

// Utilization returns busy core-seconds divided by total core-seconds —
// the headroom EEWA converts into energy savings.
func (r *Result) Utilization() float64 {
	denom := r.BusyTime + r.SpinTime + r.HaltTime
	if denom == 0 {
		return 0
	}
	return r.BusyTime / denom
}

// String summarizes the result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%-8s %-8s makespan=%.4fs energy=%.1fJ steals=%d util=%.2f",
		r.Policy, r.Workload, r.Makespan, r.Energy, r.Steals, r.Utilization())
}
