package sched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/task"
)

// benchHotPath measures the simulator's per-task cost on a deep
// single-class backlog: 3 batches × 1024 tasks on 4 cores, the regime
// where the SoA hot path (pool pushes, indexed completion events,
// profiler refs) dominates per-batch planning. It is the profiling
// companion of eewa-benchjson's soa cells; allocs/op is per full run —
// per-task allocations are zero once the slabs have grown.
func benchHotPath(b *testing.B, p Policy) {
	cfg := machine.Generic(4)
	w := task.MustGenerate("dens", 3, []task.ClassSpec{
		{Name: "dens", Count: 1024, MeanWork: 1e-4, JitterFrac: 0.2},
	}, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, w, p, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimHotPath(b *testing.B)     { benchHotPath(b, NewCilk()) }
func BenchmarkSimHotPathEEWA(b *testing.B) { benchHotPath(b, NewEEWA()) }
