package sched

import (
	"fmt"
	"strconv"

	"repro/internal/cgroup"
	"repro/internal/deque"
	"repro/internal/event"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/task"
	"repro/internal/xrand"
)

// engineObs bundles the engine's resolved metric handles. Every field
// is nil when no registry is attached; all obs types no-op on nil
// receivers, so instrumented sites cost one pointer check when
// observability is off. The only guarded sites are the slice-indexed
// per-group counters inside the steal loops.
type engineObs struct {
	reg *obs.Registry

	stealAttempts []*obs.Counter // indexed by victim c-group
	steals        []*obs.Counter
	census        []*obs.Counter // indexed by frequency level
	probeMisses   *obs.Counter
	tasks         *obs.Counter
	migrations    *obs.Counter
	batches       *obs.Counter
	batchSeconds  *obs.Histogram
	energy        *obs.Counter
	dvfs          *obs.Counter
	adjInv        *obs.Counter
	adjOverhead   *obs.Counter
	adjHost       *obs.Counter
	planHits      *obs.Counter
	planMisses    *obs.Counter
	searchSteps   *obs.Histogram
	makespan      *obs.Gauge
	runs          *obs.Counter

	// Per-class task distributions: wait is batch start → execution
	// start, latency is batch start → completion. Children are resolved
	// once per class through class() and cached — the event loop is
	// single-threaded, so a plain map suffices and the family mutex is
	// paid once per class per run.
	taskWait  *obs.LogHistogramVec
	taskLat   *obs.LogHistogramVec
	classHist map[string]classHandles
}

// classHandles caches one class's resolved histogram children.
type classHandles struct {
	wait, lat *obs.LogHistogram
}

// class returns the cached histogram handles for a task class (zero
// handles when no registry is attached — Observe on nil no-ops).
func (o *engineObs) class(name string) classHandles {
	if o.reg == nil {
		return classHandles{}
	}
	h, ok := o.classHist[name]
	if !ok {
		h = classHandles{wait: o.taskWait.With(name), lat: o.taskLat.With(name)}
		o.classHist[name] = h
	}
	return h
}

// newEngineObs registers the simulator's metric families on reg and
// resolves fixed-cardinality children up front (victim c-groups and
// frequency levels are both bounded by the ladder length), so the hot
// path never takes the registry lock.
func newEngineObs(reg *obs.Registry, levels int) engineObs {
	if reg == nil {
		return engineObs{}
	}
	o := engineObs{
		reg:          reg,
		probeMisses:  reg.Counter("eewa_sim_probe_misses_total", "Pool inspections that found no task."),
		tasks:        reg.Counter("eewa_sim_tasks_total", "Tasks executed."),
		migrations:   reg.Counter("eewa_sim_migrations_total", "Tasks executed outside their class's allocated c-group."),
		batches:      reg.Counter("eewa_sim_batches_total", "Batches executed."),
		batchSeconds: reg.Histogram("eewa_sim_batch_seconds", "Per-batch simulated duration.", obs.ExpBuckets(1e-3, 2, 14)),
		energy:       reg.Counter("eewa_sim_energy_joules_total", "Whole-machine simulated energy."),
		dvfs:         reg.Counter("eewa_sim_dvfs_transitions_total", "Core frequency switches."),
		adjInv:       reg.Counter("eewa_sim_adjuster_invocations_total", "Batches that charged a frequency-adjuster decision."),
		adjOverhead:  reg.Counter("eewa_sim_adjuster_overhead_seconds_total", "Simulated adjuster charge."),
		adjHost:      reg.Counter("eewa_sim_adjuster_host_seconds_total", "Measured host time of adjuster decisions."),
		planHits:     reg.Counter("eewa_plan_cache_hits_total", "Adjusted plans served from the memoized tuple-search cache."),
		planMisses:   reg.Counter("eewa_plan_cache_misses_total", "Adjusted plans that ran the backtracking tuple search."),
		searchSteps:  reg.Histogram("eewa_sim_adjuster_search_steps", "Select attempts per Algorithm 1 tuple search.", obs.ExpBuckets(1, 2, 11)),
		makespan:     reg.Gauge("eewa_sim_makespan_seconds", "Makespan of the most recent run."),
		runs:         reg.Counter("eewa_sim_runs_total", "Completed simulation runs."),
		taskWait: reg.LogHistogramVec("eewa_sim_task_wait_seconds",
			"Simulated wait from batch start to execution start, by task class.", "class"),
		taskLat: reg.LogHistogramVec("eewa_sim_task_latency_seconds",
			"Simulated latency from batch start to completion, by task class.", "class"),
		classHist: map[string]classHandles{},
	}
	attemptVec := reg.CounterVec("eewa_sim_steal_attempts_total", "Remote pool probes by victim c-group.", "victim_group")
	stealVec := reg.CounterVec("eewa_sim_steals_total", "Successful remote steals by victim c-group.", "victim_group")
	censusVec := reg.CounterVec("eewa_sim_census_core_seconds_total", "Core-seconds of batch residency by frequency level (the paper's Fig. 8 census, integrated).", "level")
	for i := 0; i < levels; i++ {
		l := strconv.Itoa(i)
		o.stealAttempts = append(o.stealAttempts, attemptVec.With(l))
		o.steals = append(o.steals, stealVec.With(l))
		o.census = append(o.census, censusVec.With(l))
	}
	return o
}

// engine executes one workload under one policy. The hot path is
// struct-of-arrays: each batch is flattened into task.SoA parallel
// arrays (class id, work, memory fraction, miss intensity) and task
// *indices* flow through the pools — unsynchronized deque.Ring[int32]
// rings with the same owner-LIFO / thief-FIFO semantics as the live
// runtime's Chase–Lev deques (the deque property tests pin Ring to the
// Locked oracle). The event loop is single-threaded, so per-operation
// synchronization would buy nothing, and determinism is preserved.
//
// Nothing is allocated per task: completions are scheduled through
// event.Queue.AtIndex as bare core indices (a core runs one task at a
// time, so per-core running-task arrays carry what the completion
// needs), placement runs through policy.IndexedPlacer over class ids,
// and the profiler is fed through cached profile.ClassRef handles. The
// SoA slab, the rings and every per-core array are reused across
// batches.
type engine struct {
	cfg    machine.Config
	m      *machine.Machine
	q      *event.Queue
	prof   *profile.Profiler
	policy Policy
	params Params

	// soa holds the current batch's task arrays; ratios[j] = F0/Fj.
	soa    task.SoA
	ratios []float64

	// pools[c*u+g] — flattened task-index pools, reused across batches
	// while the plan's group count u is stable (each batch drains them
	// completely), rebuilt when u changes.
	pools []*deque.Ring[int32]
	u     int

	asn   *cgroup.Assignment
	plan  Plan
	steal *policy.StealOrder
	// walkers[core] — the per-core victim iterators, rebound to the new
	// steal order at each plan epoch so the acquire loop re-derives
	// neither the preference lists nor a fresh permutation buffer per
	// attempt.
	walkers []*policy.VictimWalker

	victimRNG []*xrand.RNG // per-core victim selection streams

	// Per-batch per-class-id state, indexed by soa class id: the
	// class's c-group under the current assignment, its profiler
	// recording handle, and its resolved histogram children. refCache
	// keeps one ClassRef per class name for the whole run (refs
	// re-resolve across profiler generations).
	classGroup []int
	classRefs  []*profile.ClassRef
	classH     []classHandles
	refCache   map[string]*profile.ClassRef

	// Per-core running-task state, valid from acquire to completion (a
	// core runs at most one task at a time). Completion and wake-up
	// events carry only a core index through event.Queue.AtIndex:
	// payload c < Cores means complete(c), payload Cores+c means
	// coreFree(c).
	runTask  []int32
	runExec  []float64
	runLead  []float64
	runLevel []int32

	remaining      int
	lastCompletion float64
	batchStart     float64

	// Observability state: spanRec mirrors params.Recorder when it also
	// captures steal/idle intervals; idleAt[c] is when core c ran out of
	// work this batch (-1 while it still has work); lastEnergy/lastDVFS
	// are the previous batch boundary's cumulative values, for deltas.
	eo         engineObs
	spanRec    SpanRecorder
	idleAt     []float64
	lastEnergy float64
	lastDVFS   int

	res *Result
}

// Run simulates workload w on machine cfg under policy p and returns
// the full Result. It validates its inputs and is deterministic for a
// given params.Seed.
func Run(cfg machine.Config, w *task.Workload, p Policy, params Params) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()

	e := &engine{
		cfg:    cfg,
		m:      machine.New(cfg),
		q:      event.New(),
		prof:   profile.New(cfg.Freqs),
		policy: p,
		params: params,
		res:    &Result{Policy: p.Name(), Workload: w.Name},
	}
	e.victimRNG = make([]*xrand.RNG, cfg.Cores)
	seedRNG := xrand.New(params.Seed)
	for c := range e.victimRNG {
		e.victimRNG[c] = seedRNG.Split()
	}
	e.eo = newEngineObs(params.Obs, len(cfg.Freqs))
	if sr, ok := params.Recorder.(SpanRecorder); ok {
		e.spanRec = sr
	}
	e.idleAt = make([]float64, cfg.Cores)
	e.ratios = make([]float64, len(cfg.Freqs))
	for j := range e.ratios {
		e.ratios[j] = cfg.Freqs.Ratio(j)
	}
	e.refCache = make(map[string]*profile.ClassRef)
	e.runTask = make([]int32, cfg.Cores)
	e.runExec = make([]float64, cfg.Cores)
	e.runLead = make([]float64, cfg.Cores)
	e.runLevel = make([]int32, cfg.Cores)
	e.q.SetIndexFn(func(v int32) {
		if c := int(v); c < cfg.Cores {
			e.complete(c)
		} else {
			e.coreFree(c - cfg.Cores)
		}
	})

	env := &Env{Cfg: cfg, AdjusterCharge: params.AdjusterCharge}
	for bi := range w.Batches {
		if err := e.runBatch(bi, &w.Batches[bi], env); err != nil {
			return nil, err
		}
		if bi == 0 {
			env.IdealTime = e.res.BatchTimes[0]
		}
	}

	now := e.q.Now()
	e.m.Sync(now)
	e.eo.makespan.Set(now)
	e.eo.runs.Inc()
	e.res.Makespan = now
	e.res.Energy = e.m.EnergyAt(now)
	e.res.CoreEnergy = e.m.CoreEnergyAt(now)
	e.res.BusyTime = e.m.TotalBusyTime()
	e.res.SpinTime = e.m.TotalSpinTime()
	e.res.HaltTime = e.m.TotalHaltTime()
	e.res.DVFSTransitions = e.m.DVFSTransitions
	e.res.MemoryBound = e.prof.MemoryBound()
	if len(e.res.BatchTimes) > 0 && e.prof.NumClasses() > 0 {
		e.res.Profile = e.prof.Snapshot(e.res.BatchTimes[0])
	}
	return e.res, nil
}

// runBatch plans, places and executes one batch.
func (e *engine) runBatch(bi int, b *task.Batch, env *Env) error {
	now := e.q.Now()

	// Barrier: everyone parks while the plan is computed.
	for c := 0; c < e.cfg.Cores; c++ {
		e.m.SetState(now, c, machine.Halted)
	}

	plan := e.policy.BeginBatch(bi, e.prof, env)
	if plan.Assignment == nil {
		return fmt.Errorf("sched: policy %s returned nil assignment for batch %d", e.policy.Name(), bi)
	}
	if err := plan.Assignment.Validate(e.cfg.Cores, len(e.cfg.Freqs)); err != nil {
		return fmt.Errorf("sched: policy %s batch %d: %w", e.policy.Name(), bi, err)
	}
	e.prof.Reset()
	e.plan = plan
	e.asn = plan.Assignment
	e.steal = policy.NewStealOrder(&e.plan, e.cfg.Cores)
	if e.walkers == nil {
		e.walkers = make([]*policy.VictimWalker, e.cfg.Cores)
		for c := range e.walkers {
			e.walkers[c] = e.steal.Walker(c)
		}
	} else {
		for c := range e.walkers {
			e.walkers[c].Bind(e.steal)
		}
	}
	e.res.AdjusterSimTime += plan.Overhead
	e.res.AdjusterHostTime += plan.HostTime

	// Charge the adjuster overhead: the master computes, workers spin
	// at the barrier (the conservative choice — it prices EEWA's
	// bookkeeping at full burn).
	if plan.Overhead > 0 {
		for c := 0; c < e.cfg.Cores; c++ {
			e.m.SetState(now, c, machine.Spinning)
		}
		now += plan.Overhead
	}

	// Apply the frequency configuration; one DVFS latency window if
	// anything changed (switches happen in parallel across cores).
	changed := false
	for c := 0; c < e.cfg.Cores; c++ {
		lvl := e.asn.FreqOf(c)
		if e.m.Freq(c) != lvl {
			e.m.SetFreq(now, c, lvl)
			changed = true
		}
	}
	if changed && e.cfg.DVFSLatency > 0 {
		for c := 0; c < e.cfg.Cores; c++ {
			e.m.SetState(now, c, machine.Halted)
		}
		now += e.cfg.DVFSLatency
	}

	census := e.m.FreqCensus()
	e.res.BatchCensus = append(e.res.BatchCensus, census)

	e.place(b)
	e.remaining = len(b.Tasks)
	e.batchStart = now
	e.lastCompletion = now
	for c := range e.idleAt {
		e.idleAt[c] = -1
	}

	// The fan-out lands in one event-queue bucket (every core wakes at
	// the same instant), so the whole batch start costs one heap touch.
	for c := 0; c < e.cfg.Cores; c++ {
		e.q.AtIndex(now, int32(e.cfg.Cores+c))
	}
	e.q.Run()

	dur := e.lastCompletion - e.batchStart
	e.res.BatchTimes = append(e.res.BatchTimes, dur)
	if e.remaining != 0 {
		return fmt.Errorf("sched: batch %d finished with %d tasks unexecuted", bi, e.remaining)
	}
	if e.spanRec != nil {
		for c, ts := range e.idleAt {
			if ts >= 0 && e.lastCompletion > ts {
				e.spanRec.RecordIdle(c, ts, e.lastCompletion)
			}
		}
	}
	e.observeBatch(bi, dur, census, plan)
	// Advance the clock to the barrier (the queue's clock stops at the
	// last event, which is the final core going idle ≈ lastCompletion).
	if _, ok := e.q.NextTime(); ok {
		panic("sched: events left after batch drain")
	}
	e.q.RunUntil(e.lastCompletion)
	return nil
}

// observeBatch publishes one batch's metrics and events; it is a no-op
// without a registry.
func (e *engine) observeBatch(bi int, dur float64, census []int, plan Plan) {
	if e.eo.reg == nil {
		return
	}
	e.eo.batches.Inc()
	e.eo.batchSeconds.Observe(dur)
	for lvl, n := range census {
		if n > 0 && lvl < len(e.eo.census) {
			e.eo.census[lvl].Add(dur * float64(n))
		}
	}
	en := e.m.EnergyAt(e.lastCompletion)
	e.eo.energy.Add(en - e.lastEnergy)
	e.lastEnergy = en
	e.eo.dvfs.Add(float64(e.m.DVFSTransitions - e.lastDVFS))
	e.lastDVFS = e.m.DVFSTransitions
	if plan.Overhead > 0 {
		e.eo.adjInv.Inc()
		e.eo.adjOverhead.Add(plan.Overhead)
		e.eo.adjHost.Add(plan.HostTime.Seconds())
		e.eo.searchSteps.Observe(float64(plan.SearchSteps))
	}
	if plan.Adjusted {
		if plan.CacheHit {
			e.eo.planHits.Inc()
		} else {
			e.eo.planMisses.Inc()
		}
	}
	if e.eo.reg.HasEvents() {
		e.eo.reg.Emit(obs.Event{
			Time: e.lastCompletion, Name: "batch", Core: -1,
			Label: e.policy.Name(), Value: dur,
		})
		if plan.Overhead > 0 {
			e.eo.reg.Emit(obs.Event{
				Time: e.batchStart, Name: "adjust", Core: -1,
				Label: fmt.Sprintf("batch %d tuple %v", bi, plan.Assignment.Tuple),
				Value: plan.Overhead,
			})
		}
	}
}

// place flattens the batch into the SoA slab, resolves the per-class
// metadata (c-group, profiler ref, histogram handles) once, and
// distributes task indices into the pools per the plan's placement
// discipline (policy.IndexedPlacer — placement-identical to the
// string-keyed Placer the live runtime shares).
func (e *engine) place(b *task.Batch) {
	e.soa.Fill(b)
	m, u := e.cfg.Cores, e.asn.U()
	// A completed batch drains every pool (runBatch errors otherwise),
	// so the rings can be reused as-is while the group count holds —
	// only a plan with a different u forces a rebuild.
	if len(e.pools) != m*u {
		e.pools = make([]*deque.Ring[int32], m*u)
		for i := range e.pools {
			e.pools[i] = deque.NewRing[int32]()
		}
	}
	e.u = u

	nc := len(e.soa.Classes)
	if cap(e.classGroup) < nc {
		e.classGroup = make([]int, nc)
		e.classRefs = make([]*profile.ClassRef, nc)
		e.classH = make([]classHandles, nc)
	}
	e.classGroup = e.classGroup[:nc]
	e.classRefs = e.classRefs[:nc]
	e.classH = e.classH[:nc]
	for cid, name := range e.soa.Classes {
		e.classGroup[cid] = e.asn.GroupOfClass(name)
		ref, ok := e.refCache[name]
		if !ok {
			ref = e.prof.Ref(name)
			e.refCache[name] = ref
		}
		e.classRefs[cid] = ref
		e.classH[cid] = e.eo.class(name)
	}

	pl := policy.NewIndexedPlacer(&e.plan, m, e.soa.Classes)
	for i, cid := range e.soa.ClassID {
		c, g := pl.Place(cid)
		e.pools[c*u+g].PushBottom(int32(i))
	}
}

// coreFree fires every time core c needs new work.
func (e *engine) coreFree(c int) {
	now := e.q.Now()
	ti, probes, stolen, victimG := e.acquire(c)
	e.res.Probes += probes
	if ti < 0 {
		e.eo.probeMisses.Add(float64(probes))
		e.idleAt[c] = now
		act := e.policy.OutOfWork(c)
		if act.FreqLevel >= 0 {
			e.m.SetFreq(now, c, act.FreqLevel)
		}
		e.m.SetState(now, c, act.State)
		return
	}
	e.eo.probeMisses.Add(float64(probes - 1))
	e.eo.tasks.Inc()
	if stolen {
		e.res.Steals++
	}
	cid := e.soa.ClassID[ti]
	if e.classGroup[cid] != e.asn.CoreGroup[c] {
		e.res.Migrated++
		e.eo.migrations.Inc()
	}

	lead := float64(probes) * e.params.ProbeCost
	if stolen {
		lead += e.params.StealCost
		if e.spanRec != nil && lead > 0 {
			e.spanRec.RecordSteal(c, now, now+lead, victimG)
		}
	}
	level := e.m.Freq(c)
	exec := e.soa.TimeAt(ti, e.ratios[level])
	e.m.SetState(now, c, machine.Busy)
	e.runTask[c], e.runExec[c], e.runLead[c], e.runLevel[c] = ti, exec, lead, int32(level)
	// One task runs per core at a time, so the completion event is just
	// the core index — an AtIndex payload: no allocation and no pointer
	// write per task.
	e.q.AtIndex(now+lead+exec, int32(c))
}

// complete fires when core c finishes its running task.
func (e *engine) complete(c int) {
	now := e.q.Now()
	ti := e.runTask[c]
	exec, lead, level := e.runExec[c], e.runLead[c], int(e.runLevel[c])
	// The core was marked Busy at acquire time, but the first `lead`
	// seconds of that interval were probe/steal overhead, not task
	// execution — the recorded span is [now-exec, now]. Charge through
	// now and reclassify the lead as Spinning so machine busy-seconds
	// equal traced span-seconds exactly. Busy and Spinning draw the same
	// power, so energy and all scheduling decisions are untouched.
	if lead > 0 {
		e.m.Sync(now)
		e.m.ReclassifyBusyAsSpin(c, lead)
	}
	cid := e.soa.ClassID[ti]
	if e.params.Recorder != nil {
		e.params.Recorder.Record(c, now-exec, now, e.soa.Classes[cid], level)
	}
	if e.eo.reg != nil {
		h := e.classH[cid]
		h.wait.Observe(now - exec - e.batchStart)
		h.lat.Observe(now - e.batchStart)
	}
	e.classRefs[cid].Record(exec, level, e.soa.Miss[ti])
	e.remaining--
	if now > e.lastCompletion {
		e.lastCompletion = now
	}
	e.coreFree(c)
}

// acquire finds the next task for core c, returning its SoA index (-1
// when every reachable pool is dry), the number of pools probed,
// whether it was a remote steal, and the victim c-group of a
// successful steal (-1 otherwise). The victim order — classic random
// stealing or the paper's rob-the-weaker-first preference walk — comes
// from the shared policy core.
func (e *engine) acquire(c int) (int32, int, bool, int) {
	probes := 0
	myG := e.asn.CoreGroup[c]
	counted := e.eo.stealAttempts != nil

	// Local pool first — both disciplines.
	probes++
	if ti, ok := e.pools[c*e.u+myG].PopBottom(); ok {
		return ti, probes, false, -1
	}

	got := int32(-1)
	victimG := -1
	e.walkers[c].ForEachVictim(e.victimRNG[c], func(v, g int) bool {
		probes++
		if counted {
			e.eo.stealAttempts[g].Inc()
		}
		ti, ok := e.pools[v*e.u+g].Steal()
		if !ok {
			return false
		}
		if counted {
			e.eo.steals[g].Inc()
		}
		got, victimG = ti, g
		return true
	})
	if got < 0 {
		return -1, probes, false, -1
	}
	return got, probes, true, victimG
}
