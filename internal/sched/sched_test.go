package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cgroup"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/task"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// newTestRNG keeps the property tests' dependency on xrand explicit.
func newTestRNG(seed uint64) *xrand.RNG { return xrand.New(seed) }

// tiny returns a small fast workload for unit tests.
func tiny(batches int) *task.Workload {
	return task.MustGenerate("tiny", batches, []task.ClassSpec{
		{Name: "a", Count: 8, MeanWork: 0.02, JitterFrac: 0.05},
		{Name: "b", Count: 24, MeanWork: 0.005, JitterFrac: 0.05},
	}, 7)
}

func mustRun(t *testing.T, cfg machine.Config, w *task.Workload, p Policy) *Result {
	t.Helper()
	res, err := Run(cfg, w, p, DefaultParams())
	if err != nil {
		t.Fatalf("Run(%s): %v", p.Name(), err)
	}
	return res
}

func TestRunValidatesInputs(t *testing.T) {
	if _, err := Run(machine.Config{}, tiny(1), NewCilk(), DefaultParams()); err == nil {
		t.Error("invalid machine should error")
	}
	if _, err := Run(machine.Opteron16(), &task.Workload{Name: "x"}, NewCilk(), DefaultParams()); err == nil {
		t.Error("invalid workload should error")
	}
}

func TestAllTasksExecuteExactlyOnce(t *testing.T) {
	cfg := machine.Opteron16()
	w := tiny(5)
	for _, p := range []Policy{NewCilk(), NewCilkD(4), NewEEWA()} {
		res := mustRun(t, cfg, w, p)
		if len(res.BatchTimes) != 5 {
			t.Errorf("%s: %d batch times, want 5", p.Name(), len(res.BatchTimes))
		}
		// Conservation: total busy time equals the sum of task times at
		// the executing frequencies; at minimum it is bounded below by
		// total work (all-F0) and above by work × max ratio.
		total := w.TotalWork()
		maxRatio := cfg.Freqs.Ratio(cfg.Freqs.Slowest())
		if res.BusyTime < total-1e-6 {
			t.Errorf("%s: busy time %g below total work %g — tasks lost", p.Name(), res.BusyTime, total)
		}
		if res.BusyTime > total*maxRatio+1e-6 {
			t.Errorf("%s: busy time %g exceeds %g — tasks double-executed?", p.Name(), res.BusyTime, total*maxRatio)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := machine.Opteron16()
	for _, mk := range []func() Policy{
		func() Policy { return NewCilk() },
		func() Policy { return NewCilkD(4) },
		func() Policy { return NewEEWA() },
	} {
		a := mustRun(t, cfg, tiny(3), mk())
		b := mustRun(t, cfg, tiny(3), mk())
		if a.Makespan != b.Makespan || a.Energy != b.Energy || a.Steals != b.Steals {
			t.Errorf("%s: same seed produced different results: %v vs %v", mk().Name(), a, b)
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	cfg := machine.Opteron16()
	p1, p2 := DefaultParams(), DefaultParams()
	p2.Seed = 99
	a, err := Run(cfg, tiny(3), NewCilk(), p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tiny(3), NewCilk(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steals == b.Steals && a.Makespan == b.Makespan {
		t.Error("different seeds should change victim selection")
	}
}

func TestCilkStaysAtF0(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(4), NewCilk())
	for bi, census := range res.BatchCensus {
		if census[0] != 16 {
			t.Errorf("batch %d census %v — Cilk must keep all cores at F0", bi, census)
		}
	}
	if res.DVFSTransitions != 0 {
		t.Errorf("Cilk made %d DVFS transitions, want 0", res.DVFSTransitions)
	}
}

func TestCilkDDownclocksIdleCores(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(4), NewCilkD(4))
	if res.DVFSTransitions == 0 {
		t.Error("Cilk-D should downclock at least one idle core")
	}
	cilk := mustRun(t, machine.Opteron16(), tiny(4), NewCilk())
	if res.Energy >= cilk.Energy {
		t.Errorf("Cilk-D energy %g should be below Cilk %g", res.Energy, cilk.Energy)
	}
	// Performance must be essentially identical (idle cores only).
	if math.Abs(res.Makespan-cilk.Makespan) > 0.02*cilk.Makespan {
		t.Errorf("Cilk-D makespan %g deviates from Cilk %g", res.Makespan, cilk.Makespan)
	}
}

func TestEEWAFirstBatchAllFast(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(4), NewEEWA())
	if res.BatchCensus[0][0] != 16 {
		t.Errorf("first batch census %v — EEWA must run batch 0 at F0", res.BatchCensus[0])
	}
}

// TestEEWAFig6Shape pins the headline claim on a real benchmark mix:
// EEWA consumes less energy than Cilk-D, which consumes less than
// Cilk, and EEWA's makespan stays within a few percent of Cilk's.
func TestEEWAFig6Shape(t *testing.T) {
	cfg := machine.Opteron16()
	b, err := workloads.ByName("md5")
	if err != nil {
		t.Fatal(err)
	}
	w := b.Workload(1)
	cilk := mustRun(t, cfg, w, NewCilk())
	cilkd := mustRun(t, cfg, w, NewCilkD(4))
	eewa := mustRun(t, cfg, w, NewEEWA())

	if !(eewa.Energy < cilkd.Energy && cilkd.Energy < cilk.Energy) {
		t.Errorf("energy ordering violated: EEWA %g, Cilk-D %g, Cilk %g",
			eewa.Energy, cilkd.Energy, cilk.Energy)
	}
	saving := 1 - eewa.Energy/cilk.Energy
	if saving < 0.08 || saving > 0.45 {
		t.Errorf("EEWA saving = %.1f%%, want within the paper-shaped band [8%%, 45%%]", 100*saving)
	}
	if eewa.Makespan > 1.06*cilk.Makespan {
		t.Errorf("EEWA makespan %g more than 6%% above Cilk %g", eewa.Makespan, cilk.Makespan)
	}
}

func TestEEWADownscalesAfterFirstBatch(t *testing.T) {
	cfg := machine.Opteron16()
	b, _ := workloads.ByName("sha1")
	res := mustRun(t, cfg, b.Workload(1), NewEEWA())
	// Paper Fig. 8: from early batches, more than half the cores sit at
	// the lowest frequency.
	for bi := 2; bi < len(res.BatchCensus); bi++ {
		slowest := res.BatchCensus[bi][len(cfg.Freqs)-1]
		if slowest <= 8 {
			t.Errorf("batch %d: only %d cores at the lowest frequency, want > 8 (Fig. 8)", bi, slowest)
		}
	}
}

func TestEEWAMemoryBoundFallback(t *testing.T) {
	cfg := machine.Opteron16()
	b := workloads.MemoryBound()
	res := mustRun(t, cfg, b.Workload(1), NewEEWA())
	if !res.MemoryBound {
		t.Fatal("profiler should classify the synthetic workload as memory-bound")
	}
	// §IV-D: EEWA must keep every batch at F0 (classic stealing).
	for bi, census := range res.BatchCensus {
		if census[0] != 16 {
			t.Errorf("batch %d census %v — memory-bound fallback must stay at F0", bi, census)
		}
	}
}

func TestEEWAInfeasibleKeepsAllFast(t *testing.T) {
	// Four cores with a dense workload: the CC table cannot fit below
	// F0, so EEWA must keep every core fast (Fig. 9's 4-core regime).
	// Three classes of similar weight: the per-class ceilings sum past
	// the four cores, so not even the all-F0 row fits.
	cfg := machine.Generic(4)
	w := task.MustGenerate("dense", 4, []task.ClassSpec{
		{Name: "x", Count: 24, MeanWork: 0.020, JitterFrac: 0.05},
		{Name: "y", Count: 24, MeanWork: 0.018, JitterFrac: 0.05},
		{Name: "z", Count: 24, MeanWork: 0.016, JitterFrac: 0.05},
	}, 3)
	eewa := NewEEWA()
	res := mustRun(t, cfg, w, eewa)
	for bi, census := range res.BatchCensus {
		if census[0] != 4 {
			t.Errorf("batch %d census %v — expected all cores at F0", bi, census)
		}
	}
	if eewa.Infeasible() == 0 {
		t.Error("expected at least one infeasible adjustment on the starved machine")
	}
	cilk := mustRun(t, cfg, w, NewCilk())
	if res.Makespan > 1.04*cilk.Makespan {
		t.Errorf("EEWA on 4 cores degrades %.1f%%, want < 4%% (paper: 0.3%%)",
			100*(res.Makespan/cilk.Makespan-1))
	}
}

func TestCilkFixedSlowerOnAsymmetric(t *testing.T) {
	cfg := machine.Opteron16()
	// Freeze a 5-fast / 11-slowest configuration.
	levels := make([]int, 16)
	for i := 5; i < 16; i++ {
		levels[i] = 3
	}
	b, _ := workloads.ByName("sha1")
	w := b.Workload(1)

	fixed, err := NewCilkFixed(levels, 4)
	if err != nil {
		t.Fatal(err)
	}
	cilkFixed := mustRun(t, cfg, w, fixed)

	wats, err := NewWATS(levels, 4)
	if err != nil {
		t.Fatal(err)
	}
	watsRes := mustRun(t, cfg, w, wats)

	eewa := mustRun(t, cfg, w, NewEEWA())

	// Fig. 7 ordering: Cilk ≫ WATS ≥≈ EEWA.
	if !(cilkFixed.Makespan > watsRes.Makespan) {
		t.Errorf("random stealing (%.4f) should be slower than WATS (%.4f) on the asymmetric machine",
			cilkFixed.Makespan, watsRes.Makespan)
	}
	if cilkFixed.Makespan < 1.1*eewa.Makespan {
		t.Errorf("Cilk on asymmetric = %.2f× EEWA, want > 1.1× (paper: 1.17–2.92×)",
			cilkFixed.Makespan/eewa.Makespan)
	}
	if watsRes.Makespan > 1.45*eewa.Makespan {
		t.Errorf("WATS = %.2f× EEWA, want < 1.45× (paper: 1.05–1.24×)",
			watsRes.Makespan/eewa.Makespan)
	}
}

func TestPreferenceStealingMigratesWhenImbalanced(t *testing.T) {
	cfg := machine.Opteron16()
	// High jitter creates per-batch imbalance that the adjuster cannot
	// predict, forcing cross-group steals.
	w := task.MustGenerate("imbalanced", 6, []task.ClassSpec{
		{Name: "h", Count: 12, MeanWork: 0.10, JitterFrac: 0.4},
		{Name: "l", Count: 116, MeanWork: 0.012, JitterFrac: 0.4},
	}, 11)
	res := mustRun(t, cfg, w, NewEEWA())
	if res.Migrated == 0 {
		t.Error("expected cross-group task migrations under heavy jitter")
	}
}

func TestStealsAndProbesCounted(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(2), NewCilk())
	if res.Steals == 0 {
		t.Error("scatter placement plus 16 cores must require steals")
	}
	if res.Probes < res.Steals {
		t.Error("every steal requires at least one probe")
	}
}

func TestAdjusterOverheadCharged(t *testing.T) {
	cfg := machine.Opteron16()
	b, _ := workloads.ByName("md5")
	w := b.Workload(1)
	res := mustRun(t, cfg, w, NewEEWA())
	if res.AdjusterSimTime <= 0 {
		t.Error("EEWA runs the adjuster; simulated overhead must be positive")
	}
	wantMax := float64(len(w.Batches)) * DefaultParams().AdjusterCharge
	if res.AdjusterSimTime > wantMax+1e-9 {
		t.Errorf("adjuster charge %g exceeds %g (once per batch)", res.AdjusterSimTime, wantMax)
	}
	if res.AdjusterHostTime <= 0 {
		t.Error("host-measured adjuster time should be positive")
	}
	// Table III: overhead below 2% of execution time.
	if pct := res.AdjusterSimTime / res.Makespan; pct > 0.02 {
		t.Errorf("overhead %.2f%% of runtime, want < 2%%", 100*pct)
	}
}

func TestEnergyConsistency(t *testing.T) {
	cfg := machine.Opteron16()
	res := mustRun(t, cfg, tiny(3), NewCilk())
	// Whole-machine energy ≥ base draw × makespan + minimum core draw.
	lower := cfg.Power.Base * res.Makespan
	if res.Energy <= lower {
		t.Errorf("energy %g below base-only floor %g", res.Energy, lower)
	}
	if res.CoreEnergy >= res.Energy {
		t.Error("core energy must be less than whole-machine energy")
	}
	// Time accounting closes: busy+spin+halt = cores × makespan.
	total := res.BusyTime + res.SpinTime + res.HaltTime
	want := float64(cfg.Cores) * res.Makespan
	if math.Abs(total-want) > 1e-6*want {
		t.Errorf("state times sum to %g, want %g", total, want)
	}
}

func TestBatchTimesSumToMakespan(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(4), NewCilk())
	sum := 0.0
	for _, bt := range res.BatchTimes {
		sum += bt
	}
	// Cilk has no adjuster overhead and no DVFS stalls, so batch times
	// account for the whole makespan.
	if math.Abs(sum-res.Makespan) > 1e-9 {
		t.Errorf("batch times sum %g != makespan %g", sum, res.Makespan)
	}
}

func TestWATSAllocateByCapacity(t *testing.T) {
	// Verified through behaviour: classes profiled in batch 0 get
	// spread so the heavy class lands on the fast group.
	cfg := machine.Opteron16()
	levels := make([]int, 16)
	for i := 8; i < 16; i++ {
		levels[i] = 3
	}
	w := task.MustGenerate("watst", 4, []task.ClassSpec{
		{Name: "heavy", Count: 16, MeanWork: 0.08, JitterFrac: 0.05},
		{Name: "light", Count: 112, MeanWork: 0.01, JitterFrac: 0.05},
	}, 5)
	wats, err := NewWATS(levels, 4)
	if err != nil {
		t.Fatal(err)
	}
	watsRes := mustRun(t, cfg, w, wats)
	fixed, err := NewCilkFixed(levels, 4)
	if err != nil {
		t.Fatal(err)
	}
	cilkRes := mustRun(t, cfg, w, fixed)
	if watsRes.Makespan >= cilkRes.Makespan {
		t.Errorf("WATS (%.4f) should beat random stealing (%.4f) on the asymmetric machine",
			watsRes.Makespan, cilkRes.Makespan)
	}
}

func TestUtilizationInUnitRange(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(3), NewCilk())
	u := res.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization %g outside (0,1]", u)
	}
}

func TestResultString(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(1), NewCilk())
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	d := DefaultParams()
	if p != d {
		t.Errorf("withDefaults() = %+v, want %+v", p, d)
	}
	custom := Params{ProbeCost: 1e-9, StealCost: 2e-9, AdjusterCharge: 3e-9, Seed: 5}
	if custom.withDefaults() != custom {
		t.Error("explicit params must not be overridden")
	}
}

func TestSingleCoreMachine(t *testing.T) {
	cfg := machine.Generic(1)
	w := task.MustGenerate("solo", 2, []task.ClassSpec{
		{Name: "a", Count: 8, MeanWork: 0.01, JitterFrac: 0},
	}, 1)
	for _, p := range []Policy{NewCilk(), NewCilkD(4), NewEEWA()} {
		res := mustRun(t, cfg, w, p)
		// One core executes everything serially: makespan ≥ total work.
		if res.Makespan < w.TotalWork() {
			t.Errorf("%s: makespan %g below serial bound %g", p.Name(), res.Makespan, w.TotalWork())
		}
	}
}

func TestSingleBatchWorkload(t *testing.T) {
	res := mustRun(t, machine.Opteron16(), tiny(1), NewEEWA())
	// With one batch there is nothing to adjust: no DVFS, no overhead.
	if res.AdjusterSimTime != 0 {
		t.Errorf("adjuster charged %g on a single-batch run", res.AdjusterSimTime)
	}
	if res.BatchCensus[0][0] != 16 {
		t.Error("single batch must run all-fast")
	}
}

func TestEEWAMemAwareExtension(t *testing.T) {
	cfg := machine.Opteron16()
	b := workloads.MemoryBound()
	w := b.Workload(1)

	fallback := mustRun(t, cfg, w, NewEEWA())
	aware := NewEEWA()
	aware.MemAware = true
	res := mustRun(t, cfg, w, aware)

	if !res.MemoryBound {
		t.Fatal("workload should classify memory-bound")
	}
	// The extension must beat the paper's fallback decisively on energy
	// at essentially unchanged makespan.
	if res.Energy > 0.9*fallback.Energy {
		t.Errorf("MemAware energy %g should be well below fallback %g", res.Energy, fallback.Energy)
	}
	if res.Makespan > 1.05*fallback.Makespan {
		t.Errorf("MemAware makespan %g degrades vs fallback %g", res.Makespan, fallback.Makespan)
	}
	// Batch 0 fast, batch 1 calibration at a uniform lower level, then
	// a stable model-based configuration (cores below F0).
	if res.BatchCensus[0][0] != 16 {
		t.Errorf("batch 0 census %v, want all-F0", res.BatchCensus[0])
	}
	if res.BatchCensus[1][0] != 0 {
		t.Errorf("batch 1 census %v, want a uniform calibration level below F0", res.BatchCensus[1])
	}
	for bi := 2; bi < len(res.BatchCensus); bi++ {
		if res.BatchCensus[bi][0] == 16 {
			t.Errorf("batch %d stayed all-F0; the model found no configuration", bi)
		}
	}
}

func TestEEWAIgnoreMemoryBoundControl(t *testing.T) {
	cfg := machine.Opteron16()
	w := workloads.MemoryBound().Workload(1)
	naive := NewEEWA()
	naive.IgnoreMemoryBound = true
	res := mustRun(t, cfg, w, naive)
	// The control applies the CPU-bound model regardless; with the
	// linear task model it is conservative (overestimates slow-level
	// times), so it must still not blow the makespan.
	cilk := mustRun(t, cfg, w, NewCilk())
	if res.Makespan > 1.10*cilk.Makespan {
		t.Errorf("naive control makespan %g vs cilk %g", res.Makespan, cilk.Makespan)
	}
	// The profiler still detects memory-boundness (the engine reports
	// it); what the knob changes is that EEWA downscales anyway.
	if !res.MemoryBound {
		t.Error("profiler should still classify the workload memory-bound")
	}
	downscaled := false
	for _, census := range res.BatchCensus[1:] {
		if census[0] < 16 {
			downscaled = true
		}
	}
	if !downscaled {
		t.Error("IgnoreMemoryBound control should still downscale cores")
	}
}

func TestEEWAOfflineProfileSkipsWarmup(t *testing.T) {
	cfg := machine.Opteron16()
	b, _ := workloads.ByName("sha1")
	w := b.Workload(1)

	// First run collects the profile online.
	first := mustRun(t, cfg, w, NewEEWA())
	if first.Profile == nil {
		t.Fatal("result should carry a reusable profile snapshot")
	}
	if err := first.Profile.Validate(cfg.Freqs); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}

	// Second run applies it offline: batch 0 is already downscaled.
	offline := NewEEWA()
	offline.Offline = first.Profile
	res := mustRun(t, cfg, w, offline)
	if res.BatchCensus[0][0] == 16 {
		t.Errorf("batch 0 census %v — offline profile should configure immediately", res.BatchCensus[0])
	}
	// Energy lands within a whisker of the online run (batch 0's idle
	// down-clocking already recovers most of the warmup waste); the
	// structural win is the immediate configuration above.
	if res.Energy > 1.02*first.Energy {
		t.Errorf("offline run energy %g should not exceed online %g by >2%%", res.Energy, first.Energy)
	}
}

func TestEEWAOfflineProfileWrongMachineIgnored(t *testing.T) {
	cfg := machine.Opteron16()
	b, _ := workloads.ByName("sha1")
	w := b.Workload(1)
	first := mustRun(t, cfg, w, NewEEWA())

	// Mutate the snapshot's ladder: it must be rejected and the run
	// must behave like a plain online run (batch 0 all-fast).
	bad := *first.Profile
	bad.Freqs = []float64{9.9, 1.0, 0.5, 0.1}
	offline := NewEEWA()
	offline.Offline = &bad
	res := mustRun(t, cfg, w, offline)
	if res.BatchCensus[0][0] != 16 {
		t.Errorf("batch 0 census %v — incompatible snapshot must be ignored", res.BatchCensus[0])
	}
}

// --- engine failure injection and edge machines ---------------------------

// badPolicy returns broken plans to exercise the engine's validation.
type badPolicy struct {
	nilAssignment bool
}

func (*badPolicy) Name() string { return "bad" }
func (p *badPolicy) BeginBatch(int, *profile.Profiler, *Env) Plan {
	if p.nilAssignment {
		return Plan{}
	}
	// An assignment missing cores: invalid for any machine.
	return Plan{Assignment: &cgroup.Assignment{
		Groups:     []cgroup.Group{{Level: 0, Cores: []int{0}}},
		ClassGroup: map[string]int{},
		CoreGroup:  []int{0},
	}}
}
func (*badPolicy) OutOfWork(int) OutOfWorkAction {
	return OutOfWorkAction{State: machine.Spinning, FreqLevel: -1}
}

func TestEngineRejectsNilAssignment(t *testing.T) {
	if _, err := Run(machine.Opteron16(), tiny(1), &badPolicy{nilAssignment: true}, DefaultParams()); err == nil {
		t.Error("nil assignment should error")
	}
}

func TestEngineRejectsInvalidAssignment(t *testing.T) {
	if _, err := Run(machine.Opteron16(), tiny(1), &badPolicy{}, DefaultParams()); err == nil {
		t.Error("invalid assignment should error")
	}
}

func TestSingleFrequencyLadder(t *testing.T) {
	// A machine with one frequency level: every policy degenerates to
	// plain work stealing and must still run correctly.
	cfg := machine.Opteron16()
	cfg.Freqs = machine.FreqLadder{2.5}
	cfg.Power.Volt = []float64{1.30}
	w := tiny(3)
	for _, p := range []Policy{NewCilk(), NewCilkD(1), NewEEWA()} {
		res := mustRun(t, cfg, w, p)
		if res.BatchCensus[0][0] != 16 {
			t.Errorf("%s: census %v", p.Name(), res.BatchCensus[0])
		}
	}
}

func TestMoreCoresThanTasks(t *testing.T) {
	cfg := machine.Opteron16()
	w := task.MustGenerate("fewtasks", 3, []task.ClassSpec{
		{Name: "only", Count: 3, MeanWork: 0.05, JitterFrac: 0.05},
	}, 1)
	for _, p := range []Policy{NewCilk(), NewEEWA()} {
		res := mustRun(t, cfg, w, p)
		// Makespan at least one task's duration, and everything ran.
		if res.Makespan <= 0.04 {
			t.Errorf("%s: makespan %g too small", p.Name(), res.Makespan)
		}
	}
}

func TestZeroDVFSLatency(t *testing.T) {
	cfg := machine.Opteron16()
	cfg.DVFSLatency = 0
	res := mustRun(t, cfg, tiny(3), NewEEWA())
	if res.Makespan <= 0 {
		t.Error("degenerate run")
	}
}

func TestHighJitterRobustness(t *testing.T) {
	// 50% jitter: the adjuster's predictions are badly wrong every
	// batch; preference stealing must still complete every task and
	// keep the makespan bounded.
	cfg := machine.Opteron16()
	w := task.MustGenerate("wild", 6, []task.ClassSpec{
		{Name: "h", Count: 10, MeanWork: 0.08, JitterFrac: 0.5},
		{Name: "l", Count: 118, MeanWork: 0.01, JitterFrac: 0.5},
	}, 3)
	cilk := mustRun(t, cfg, w, NewCilk())
	ee := mustRun(t, cfg, w, NewEEWA())
	if ee.Makespan > 1.35*cilk.Makespan {
		t.Errorf("EEWA under 50%% jitter: %.4f vs cilk %.4f (>35%% degradation)", ee.Makespan, cilk.Makespan)
	}
}

func TestRecorderSeesEveryTask(t *testing.T) {
	w := tiny(2)
	var spans int
	params := DefaultParams()
	params.Recorder = recorderFunc(func() { spans++ })
	if _, err := Run(machine.Opteron16(), w, NewEEWA(), params); err != nil {
		t.Fatal(err)
	}
	if spans != w.TotalTasks() {
		t.Errorf("recorded %d spans, want %d", spans, w.TotalTasks())
	}
}

type recorderFunc func()

func (f recorderFunc) Record(int, float64, float64, string, int) { f() }

// TestEngineInvariantsProperty fuzzes the whole simulator: random
// workloads on random machine sizes under every policy must conserve
// tasks, keep energy above the physical floor, and respect the serial
// lower bound.
func TestEngineInvariantsProperty(t *testing.T) {
	f := func(seed uint64, coresRaw, batchRaw uint8) bool {
		rng := newTestRNG(seed)
		cores := int(coresRaw%24) + 1
		batches := int(batchRaw%4) + 1
		specs := []task.ClassSpec{
			{Name: "a", Count: rng.Intn(24) + 1, MeanWork: rng.Range(0.001, 0.05), JitterFrac: 0.2},
			{Name: "b", Count: rng.Intn(48) + 1, MeanWork: rng.Range(0.001, 0.02), JitterFrac: 0.2},
		}
		w, err := task.Generate("fuzz", batches, specs, seed)
		if err != nil {
			return false
		}
		cfg := machine.Generic(cores)
		for _, p := range []Policy{NewCilk(), NewCilkD(len(cfg.Freqs)), NewEEWA()} {
			params := DefaultParams()
			params.Seed = seed ^ 0xABCD
			res, err := Run(cfg, w, p, params)
			if err != nil {
				return false
			}
			total := w.TotalWork()
			maxRatio := cfg.Freqs.Ratio(cfg.Freqs.Slowest())
			// Task conservation through busy-time bounds.
			if res.BusyTime < total-1e-6 || res.BusyTime > total*maxRatio+1e-6 {
				return false
			}
			// Serial bound: m cores cannot beat total/m at F0.
			if res.Makespan < total/float64(cores)-1e-9 {
				return false
			}
			// Physical energy floor: base power over the makespan.
			if res.Energy <= cfg.Power.Base*res.Makespan {
				return false
			}
			// Census sanity: every batch accounts for every core.
			for _, census := range res.BatchCensus {
				n := 0
				for _, c := range census {
					n += c
				}
				if n != cores {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
