package sched

import (
	"repro/internal/policy"
)

// The policy implementations moved to internal/policy so that the
// simulator and the live goroutine runtime (internal/rt) execute the
// same decision code. The aliases and constructor forwards below keep
// the engine's historical API: everything callers could do with
// sched.NewEEWA() et al. keeps working, now backed by the shared core.
type (
	// Cilk is classic random work stealing at full frequency.
	Cilk = policy.Cilk
	// CilkD is Cilk with idle cores down-clocked to the lowest level.
	CilkD = policy.CilkD
	// CilkFixed is random stealing on frozen asymmetric frequencies
	// (the Fig. 7 control).
	CilkFixed = policy.CilkFixed
	// WATS is workload-aware stealing on a fixed asymmetric
	// configuration (the paper's [9]).
	WATS = policy.WATS
	// EEWA is the paper's full scheduler.
	EEWA = policy.EEWA
)

// NewCilk returns the Cilk baseline policy.
func NewCilk() *Cilk { return policy.NewCilk() }

// NewCilkD returns the Cilk-D baseline for a machine with ladder
// length r.
func NewCilkD(r int) *CilkD { return policy.NewCilkD(r) }

// NewCilkFixed builds random stealing over frozen per-core frequency
// levels.
func NewCilkFixed(levels []int, r int) (*CilkFixed, error) {
	return policy.NewCilkFixed(levels, r)
}

// NewWATS builds the WATS policy for a machine frozen at the given
// per-core frequency levels.
func NewWATS(levels []int, r int) (*WATS, error) { return policy.NewWATS(levels, r) }

// DefaultWATSLevels is the frozen frequency configuration used when a
// caller asks for WATS without specifying one.
func DefaultWATSLevels(cores, r int) []int { return policy.DefaultWATSLevels(cores, r) }

// NewEEWA returns the EEWA policy with Algorithm 1 as the search.
func NewEEWA() *EEWA { return policy.NewEEWA() }
