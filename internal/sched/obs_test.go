package sched

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestObsIntegration runs a real EEWA simulation with a registry
// attached and checks the engine's metric families against the result
// struct, so the two reporting paths cannot drift apart silently.
func TestObsIntegration(t *testing.T) {
	cfg := machine.Opteron16()
	b, err := workloads.ByName("sha1")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ring := obs.NewRing(256)
	reg.Events = ring
	params := DefaultParams()
	params.Obs = reg
	res, err := Run(cfg, b.Workload(1), NewEEWA(), params)
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("eewa_sim_tasks_total", "").Value(); got != float64(totalTasks(b)) {
		t.Errorf("tasks_total = %g, want %d", got, totalTasks(b))
	}
	if got := reg.Counter("eewa_sim_energy_joules_total", "").Value(); !close(got, res.Energy, 1e-6) {
		t.Errorf("energy counter = %g, result = %g", got, res.Energy)
	}
	if got := reg.Gauge("eewa_sim_makespan_seconds", "").Value(); !close(got, res.Makespan, 1e-9) {
		t.Errorf("makespan gauge = %g, result = %g", got, res.Makespan)
	}
	if got := reg.Counter("eewa_sim_migrations_total", "").Value(); got != float64(res.Migrated) {
		t.Errorf("migrations = %g, result = %d", got, res.Migrated)
	}
	if got := reg.Counter("eewa_sim_dvfs_transitions_total", "").Value(); got != float64(res.DVFSTransitions) {
		t.Errorf("dvfs = %g, result = %d", got, res.DVFSTransitions)
	}
	if got := reg.Histogram("eewa_sim_batch_seconds", "", nil).Count(); got != uint64(len(res.BatchTimes)) {
		t.Errorf("batch histogram count = %d, result has %d batches", got, len(res.BatchTimes))
	}

	// Per-victim steal counters must sum to the result's steal count,
	// and steals cannot exceed attempts group by group.
	stealVec := reg.CounterVec("eewa_sim_steals_total", "", "victim_group")
	attemptVec := reg.CounterVec("eewa_sim_steal_attempts_total", "", "victim_group")
	sum := 0.0
	for g := 0; g < len(cfg.Freqs); g++ {
		lbl := []string{"0", "1", "2", "3"}[g]
		s, a := stealVec.With(lbl).Value(), attemptVec.With(lbl).Value()
		if s > a {
			t.Errorf("group %s: steals %g > attempts %g", lbl, s, a)
		}
		sum += s
	}
	if sum != float64(res.Steals) {
		t.Errorf("steal counters sum to %g, result = %d", sum, res.Steals)
	}

	// Census residency covers the task-execution window of every batch
	// (the adjuster-charge and DVFS-latency windows are excluded), so it
	// must sum to Σ batch times × cores.
	censusVec := reg.CounterVec("eewa_sim_census_core_seconds_total", "", "level")
	resid := 0.0
	for _, lbl := range []string{"0", "1", "2", "3"} {
		resid += censusVec.With(lbl).Value()
	}
	batchSum := 0.0
	for _, bt := range res.BatchTimes {
		batchSum += bt
	}
	if want := batchSum * float64(cfg.Cores); !close(resid, want, 1e-6) {
		t.Errorf("census residency = %g, want Σbatch×cores = %g", resid, want)
	}

	// The adjuster runs for every batch after the first.
	if got := reg.Counter("eewa_sim_adjuster_invocations_total", "").Value(); got != float64(len(res.BatchTimes)-1) {
		t.Errorf("adjuster invocations = %g, want %d", got, len(res.BatchTimes)-1)
	}
	if reg.Histogram("eewa_sim_adjuster_search_steps", "", nil).Sum() <= 0 {
		t.Error("search-steps histogram saw no backtracking work")
	}

	// Per-class wait/latency histograms: together the class children see
	// every executed task, latency dominates wait per class, and the
	// quantiles are positive and ordered.
	waitCount, latCount := uint64(0), uint64(0)
	for _, s := range b.Specs {
		wh, ok := reg.At("eewa_sim_task_wait_seconds", s.Name).(*obs.LogHistogram)
		if !ok {
			t.Fatalf("no wait histogram child for class %s", s.Name)
		}
		lh, ok := reg.At("eewa_sim_task_latency_seconds", s.Name).(*obs.LogHistogram)
		if !ok {
			t.Fatalf("no latency histogram child for class %s", s.Name)
		}
		waitCount += wh.Count()
		latCount += lh.Count()
		p50, p99 := lh.Quantile(0.50), lh.Quantile(0.99)
		if !(p50 > 0 && p50 <= p99) {
			t.Errorf("class %s: latency p50 = %g, p99 = %g", s.Name, p50, p99)
		}
		// A task's latency includes its wait, so per-class means order.
		if wh.Mean() > lh.Mean() {
			t.Errorf("class %s: mean wait %g > mean latency %g", s.Name, wh.Mean(), lh.Mean())
		}
	}
	if want := uint64(totalTasks(b)); waitCount != want || latCount != want {
		t.Errorf("class histogram counts = %d/%d, want %d", waitCount, latCount, want)
	}

	// The event stream carries batch and adjust events.
	names := map[string]int{}
	for _, e := range ring.Events() {
		names[e.Name]++
	}
	if names["batch"] == 0 || names["adjust"] == 0 {
		t.Errorf("event stream missing batch/adjust events: %v", names)
	}

	// And the whole registry must export cleanly.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eewa_sim_probe_misses_total") {
		t.Error("export missing probe-miss family")
	}
}

func totalTasks(b workloads.Benchmark) int {
	n := 0
	for _, s := range b.Specs {
		n += s.Count
	}
	return n * b.Batches
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
