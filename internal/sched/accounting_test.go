package sched

import (
	"math"
	"testing"

	"repro/internal/machine"
)

// sumRecorder totals the execution span-seconds the engine reports —
// the trace-side view of busy time.
type sumRecorder struct {
	busy  float64
	spans int
}

func (r *sumRecorder) Record(core int, start, end float64, label string, level int) {
	r.busy += end - start
	r.spans++
}

// The machine charges a core as Busy from acquire (after probing and
// possibly stealing) to completion, while the trace records the span
// [done-exec, done]. The engine reclassifies the probe/steal lead as
// Spinning at completion, so the two views of busy time must agree
// exactly — this pins the ISSUE 9 accounting-skew fix.
func TestTraceBusySecondsMatchMachineBusySeconds(t *testing.T) {
	cfg := machine.Opteron16()
	w := tiny(4)
	tasks := 0
	for _, b := range w.Batches {
		tasks += len(b.Tasks)
	}
	for _, p := range []Policy{NewCilk(), NewCilkD(4), NewEEWA()} {
		rec := &sumRecorder{}
		params := DefaultParams()
		params.Recorder = rec
		res, err := Run(cfg, w, p, params)
		if err != nil {
			t.Fatalf("Run(%s): %v", p.Name(), err)
		}
		if rec.spans != tasks {
			t.Errorf("%s: %d spans recorded, want %d", p.Name(), rec.spans, tasks)
		}
		// The fix only matters when leads actually occurred (probes beyond
		// the first, steals); make sure the workload exercised them.
		if res.Probes <= tasks {
			t.Errorf("%s: no probe lead exercised (probes=%d tasks=%d)", p.Name(), res.Probes, tasks)
		}
		diff := math.Abs(rec.busy - res.BusyTime)
		if diff > 1e-9*math.Max(1, rec.busy) {
			t.Errorf("%s: trace busy %g != machine busy %g (diff %g) — probe/steal lead charged as Busy outside any span",
				p.Name(), rec.busy, res.BusyTime, diff)
		}
		// The lead didn't vanish: it moved into the spin counter, and the
		// state identity busy+spin+halt == cores×makespan still closes.
		lhs := res.BusyTime + res.SpinTime + res.HaltTime
		rhs := float64(cfg.Cores) * res.Makespan
		if math.Abs(lhs-rhs) > 1e-6*rhs {
			t.Errorf("%s: state identity broken: busy+spin+halt=%g, cores*makespan=%g", p.Name(), lhs, rhs)
		}
	}
}
