// Runtime invariants: cheap algebraic checks the live runtime
// (internal/rt) evaluates at batch boundaries when invariant checking
// is enabled (Config.Invariants or the eewa_check build tag). They
// catch exactly the silent corruptions that would invalidate the
// makespan/energy comparisons against the paper: a lost or doubled
// task, wall time leaking out of the energy decomposition, and a plan
// that violates Algorithm 1's own constraints.

package check

import (
	"fmt"
	"math"

	"repro/internal/cctable"
	"repro/internal/cgroup"
)

// TaskConservation verifies that each of the batch's spawned tasks was
// executed exactly once (execs[i] is the execution count of task i).
func TaskConservation(execs []int32) []Violation {
	var vs []Violation
	for i, n := range execs {
		if n != 1 {
			vs = append(vs, Violation{
				Invariant: "task-conservation",
				Detail:    fmt.Sprintf("task %d executed %d times, want exactly 1", i, n),
			})
			if len(vs) >= 8 {
				break
			}
		}
	}
	return vs
}

// EnergyIdentity verifies one worker's wall-time decomposition:
// busy + search + dry + halt − residual must equal wall to within tol
// seconds, and the residual (time the accounting had to clip because
// the modeled components overran the measured wall) must itself stay
// under tol — a larger residual means some state is double-counted and
// the energy integral is silently wrong.
func EnergyIdentity(worker int, wall, busy, search, dry, halt, residual, tol float64) []Violation {
	var vs []Violation
	if gap := math.Abs(busy + search + dry + halt - residual - wall); gap > tol {
		vs = append(vs, Violation{
			Invariant: "energy-identity",
			Detail: fmt.Sprintf("worker %d: busy %.6g + search %.6g + dry %.6g + halt %.6g - residual %.6g deviates from wall %.6g by %.3g s",
				worker, busy, search, dry, halt, residual, wall, gap),
		})
	}
	if residual > tol {
		vs = append(vs, Violation{
			Invariant: "energy-residual",
			Detail: fmt.Sprintf("worker %d: energy accounting clipped %.3g s (states overrun wall %.6g s — double counting?)",
				worker, residual, wall),
		})
	}
	return vs
}

// PlanFeasible verifies a batch plan's assignment against the paper's
// constraints for an m-core, r-level machine: structural consistency
// (every core in exactly one c-group, groups in descending frequency
// order — cgroup.Validate), and, when the assignment carries the
// k-tuple that produced it, tuple monotonicity (a_i ≤ a_j for i < j).
func PlanFeasible(asn *cgroup.Assignment, m, r int) []Violation {
	if asn == nil {
		return []Violation{{Invariant: "plan-feasible", Detail: "batch plan has no assignment"}}
	}
	var vs []Violation
	if err := asn.Validate(m, r); err != nil {
		vs = append(vs, Violation{Invariant: "plan-feasible", Detail: err.Error()})
	}
	for i := 1; i < len(asn.Tuple); i++ {
		if asn.Tuple[i] < asn.Tuple[i-1] {
			vs = append(vs, Violation{
				Invariant: "plan-feasible",
				Detail:    fmt.Sprintf("tuple %v not monotone at %d (heavier class on slower cores)", asn.Tuple, i),
			})
			break
		}
	}
	return vs
}

// TupleFeasible verifies a k-tuple against its CC table: monotone and
// Σ CC[a_i][i] ≤ m — the two constraints Algorithm 1 must never
// violate when it reports success.
func TupleFeasible(tab *cctable.Table, tuple []int, m int) []Violation {
	var vs []Violation
	if len(tuple) != tab.K() {
		return []Violation{{
			Invariant: "plan-feasible",
			Detail:    fmt.Sprintf("tuple has %d entries for %d classes", len(tuple), tab.K()),
		}}
	}
	prev := 0
	for i, a := range tuple {
		if a < 0 || a >= tab.R() {
			vs = append(vs, Violation{
				Invariant: "plan-feasible",
				Detail:    fmt.Sprintf("tuple[%d] = %d outside ladder [0,%d)", i, a, tab.R()),
			})
			return vs
		}
		if a < prev {
			vs = append(vs, Violation{
				Invariant: "plan-feasible",
				Detail:    fmt.Sprintf("tuple %v not monotone at %d", tuple, i),
			})
		}
		prev = a
	}
	if need := tab.CoresNeeded(tuple); need > m {
		vs = append(vs, Violation{
			Invariant: "plan-feasible",
			Detail:    fmt.Sprintf("tuple %v needs %d cores, machine has %d", tuple, need, m),
		})
	}
	return vs
}
