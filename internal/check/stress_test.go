package check

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// stressBudget returns the per-run stress duration: a short slice of
// the tier-1 budget by default, or EEWA_STRESS_SECONDS when set (the
// nightly job exports 60).
func stressBudget(t *testing.T) time.Duration {
	if s := os.Getenv("EEWA_STRESS_SECONDS"); s != "" {
		secs, err := strconv.ParseFloat(s, 64)
		if err != nil || secs <= 0 {
			t.Fatalf("bad EEWA_STRESS_SECONDS=%q: %v", s, err)
		}
		return time.Duration(secs * float64(time.Second))
	}
	if testing.Short() {
		return 50 * time.Millisecond
	}
	return 300 * time.Millisecond
}

// TestStressChase is the randomized long-stress mode against the real
// lock-free deque: preemption injection plus growth/wraparound
// pressure, exactly-once conservation at every round barrier. Run
// under -race to exercise the memory-model claims end to end.
func TestStressChase(t *testing.T) {
	rep := Stress(StressConfig{
		Thieves:       4,
		Duration:      stressBudget(t),
		Seed:          7,
		PreemptEveryN: 64,
	})
	if rep.Failed() {
		for _, v := range rep.Violations {
			t.Errorf("%s", v)
		}
	}
	if rep.Rounds == 0 {
		t.Fatal("stress completed zero rounds")
	}
	if rep.Stolen == 0 {
		t.Error("stress saw zero steals — thieves never contended")
	}
	t.Logf("rounds=%d pushed=%d popped=%d stolen=%d", rep.Rounds, rep.Pushed, rep.Popped, rep.Stolen)
}

// TestStressLockedOracle runs the identical load against the mutex
// oracle — if this fails, the harness (not the deque) is broken.
func TestStressLockedOracle(t *testing.T) {
	rep := Stress(StressConfig{
		Thieves:       3,
		Duration:      stressBudget(t) / 2,
		Seed:          11,
		PreemptEveryN: 64,
		Locked:        true,
	})
	if rep.Failed() {
		for _, v := range rep.Violations {
			t.Errorf("harness self-check: %s", v)
		}
	}
}
