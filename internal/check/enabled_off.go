//go:build !eewa_check

package check

// BuildEnabled is false in default builds: the live runtime evaluates
// batch invariants only when rt.Config.Invariants is set. Build with
// -tags eewa_check to force them on everywhere.
const BuildEnabled = false
