// Randomized long-stress mode: unlike the explorer, which checks the
// *model* under every bounded schedule, Stress hammers the *real*
// internal/deque implementations under the Go scheduler, with
// preemption injection (runtime.Gosched at random points) and
// ring-growth/wraparound pressure, and checks the same conservation
// properties. Run it under -race: the explorer proves the algorithm,
// the stress run checks the transliteration.

package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/deque"
	"repro/internal/xrand"
)

// StressConfig configures one stress run.
type StressConfig struct {
	// Thieves is the number of concurrent stealing goroutines.
	Thieves int
	// Duration is the total run budget; rounds start until it expires.
	Duration time.Duration
	// Seed drives all randomness (op mix, preemption points, round
	// shapes); a fixed seed fixes the generated load, not the
	// interleavings — those stay up to the scheduler.
	Seed uint64
	// PreemptEveryN injects a runtime.Gosched about every N deque
	// operations on every goroutine (0 disables injection).
	PreemptEveryN int
	// Locked stresses the mutex oracle instead of Chase — a harness
	// self-check: the oracle must pass everything Chase must pass.
	Locked bool
}

// StressReport is the outcome of a stress run.
type StressReport struct {
	// Rounds is the number of push/drain rounds completed.
	Rounds int
	// Pushed, Popped and Stolen count operations across all rounds.
	Pushed, Popped, Stolen int64
	// Grows estimates ring growths (rounds × growth per round shape).
	Grows int
	// Violations holds conservation failures (empty on success).
	Violations []Violation
}

// Failed reports whether the stress run found any violation.
func (r *StressReport) Failed() bool { return len(r.Violations) > 0 }

// Stress runs rounds of one-owner/K-thief load against a fresh deque
// per round, alternating large rounds (thousands of values: ring
// growth, index wraparound) with tiny rounds (1–4 values: the
// single-element CAS races), and verifies after each round's barrier
// that every pushed value was delivered exactly once.
func Stress(cfg StressConfig) StressReport {
	if cfg.Thieves <= 0 {
		cfg.Thieves = 3
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 200 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rep := StressReport{}
	deadline := time.Now().Add(cfg.Duration)
	rootRNG := xrand.New(cfg.Seed)

	for round := 0; time.Now().Before(deadline); round++ {
		var n int
		if round%4 == 3 {
			n = 1 + rootRNG.Intn(4) // tiny round: single-element races
		} else {
			n = 512 + rootRNG.Intn(4096) // growth + wraparound pressure
			rep.Grows++
		}
		var d deque.Deque[int]
		if cfg.Locked {
			d = deque.NewLocked[int]()
		} else {
			d = deque.NewChase[int]()
		}
		vs := stressRound(d, n, cfg, cfg.Seed+uint64(round)*0x9E3779B97F4A7C15, &rep)
		rep.Rounds++
		if len(vs) > 0 {
			for i := range vs {
				vs[i].Detail = fmt.Sprintf("round %d (n=%d): %s", round, n, vs[i].Detail)
			}
			rep.Violations = append(rep.Violations, vs...)
			return rep // state is corrupt; later rounds would double-report
		}
	}
	return rep
}

func stressRound(d deque.Deque[int], n int, cfg StressConfig, seed uint64, rep *StressReport) []Violation {
	consumed := make([]atomic.Int32, n)
	var done atomic.Bool
	var wg sync.WaitGroup
	var popped, stolen atomic.Int64

	maybePreempt := func(rng *xrand.RNG) {
		if cfg.PreemptEveryN > 0 && rng.Intn(cfg.PreemptEveryN) == 0 {
			runtime.Gosched()
		}
	}

	for i := 0; i < cfg.Thieves; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(seed + uint64(id) + 1)
			last := -1
			record := func(v int) bool {
				consumed[v].Add(1)
				stolen.Add(1)
				// Steal order is globally monotone in push order, so it
				// is monotone per thief in particular.
				ok := v > last
				last = v
				return ok
			}
			for !done.Load() {
				maybePreempt(rng)
				if v, ok := d.Steal(); ok && !record(v) {
					return // the final exactly-once sweep will also fail loudly
				}
			}
			for { // drain after the owner stops
				v, ok := d.Steal()
				if !ok {
					return
				}
				if !record(v) {
					return
				}
			}
		}(i)
	}

	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		d.PushBottom(i)
		maybePreempt(rng)
		if rng.Intn(3) == 0 {
			if v, ok := d.PopBottom(); ok {
				consumed[v].Add(1)
				popped.Add(1)
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		consumed[v].Add(1)
		popped.Add(1)
	}
	done.Store(true)
	wg.Wait()
	for { // thieves may have lost a last-element race to nobody
		v, ok := d.Steal()
		if !ok {
			break
		}
		consumed[v].Add(1)
		stolen.Add(1)
	}

	rep.Pushed += int64(n)
	rep.Popped += popped.Load()
	rep.Stolen += stolen.Load()

	var vs []Violation
	for v := 0; v < n; v++ {
		if c := consumed[v].Load(); c != 1 {
			vs = append(vs, Violation{
				Invariant: "conservation",
				Detail:    fmt.Sprintf("value %d consumed %d times, want exactly 1", v, c),
			})
			if len(vs) >= 8 {
				break
			}
		}
	}
	if l := d.Len(); l != 0 && len(vs) == 0 {
		vs = append(vs, Violation{
			Invariant: "len-bounds",
			Detail:    fmt.Sprintf("Len = %d after full drain, want 0", l),
		})
	}
	return vs
}
