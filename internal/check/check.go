// Package check is the concurrency-correctness harness for the live
// EEWA runtime. It attacks the same failure mode from three sides:
//
//   - a deterministic *schedule explorer* (Explore): the Chase–Lev
//     deque algorithm is transliterated into resumable steps, one per
//     shared atomic access, and a context-bounded DFS enumerates the
//     interleavings of one owner and K thieves, asserting after every
//     complete execution that the outcome is linearizable against the
//     deque.Locked oracle — every pushed value delivered exactly once,
//     no phantom values, Len within bounds, steals claiming strictly
//     increasing indices. Seeded mutants (Mutations) prove the
//     explorer has teeth: each must be flagged;
//
//   - a randomized *stress mode* (Stress): the real internal/deque
//     implementations hammered under the Go scheduler with preemption
//     injection and ring-growth/wraparound pressure, checking the same
//     conservation properties — run it under -race;
//
//   - *runtime invariants* (TaskConservation, EnergyIdentity,
//     PlanFeasible, TupleFeasible): algebraic batch-boundary checks
//     internal/rt evaluates when rt.Config.Invariants is set or the
//     binary is built with -tags eewa_check, reporting failures
//     through the eewa_rt_invariant_violations_total metric.
//
// See DESIGN.md §8 for the memory-model argument the explorer encodes
// and the exploration bounds.
package check
