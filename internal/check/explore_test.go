package check

import (
	"testing"
)

// scenarios returns the exploration set used both to certify the
// correct algorithm (every scenario must pass under MutNone) and to
// catch mutants (at least one scenario must flag each mutation).
func scenarios() []Scenario {
	return []Scenario{
		// Tiny program, every interleaving: push/push/pop vs one thief.
		{
			Owner:   []Op{Push(1), Push(2), Pop()},
			Thieves: [][]Op{{StealOp()}},
			RingCap: 4,
			Preempt: -1,
		},
		// Two thieves race each other and the owner's pop for the last
		// elements — the single-element CAS triangle.
		{
			Owner:   []Op{Push(1), Push(2), Pop()},
			Thieves: [][]Op{{StealOp()}, {StealOp()}},
			RingCap: 4,
			Preempt: 2,
		},
		// Growth and index wraparound under concurrent steals: ring
		// capacity 2 forces a grow on the second and fourth push, and
		// the pop/push churn wraps slot indices while thieves hold
		// stale ring pointers.
		{
			Owner:   []Op{Push(1), Push(2), Push(3), Pop(), Push(4)},
			Thieves: [][]Op{{StealOp(), StealOp()}},
			RingCap: 2,
			Preempt: 2,
		},
		// Empty-pop then refill: exercises the bottom-restore path
		// with a thief probing throughout.
		{
			Owner:   []Op{Pop(), Push(1), Pop(), Push(2)},
			Thieves: [][]Op{{StealOp()}},
			RingCap: 2,
			Preempt: 2,
		},
	}
}

// TestExploreCorrectDeque certifies the fixed algorithm: no bounded
// interleaving of any scenario violates conservation, phantom-freedom,
// Len bounds, steal monotonicity or oracle linearizability.
func TestExploreCorrectDeque(t *testing.T) {
	for i, s := range scenarios() {
		s.Mut = MutNone
		rep := Explore(s)
		if rep.Truncated {
			t.Errorf("scenario %d: exploration truncated after %d execs", i, rep.Execs)
		}
		if rep.Failed() {
			t.Errorf("scenario %d: correct deque flagged after %d execs:", i, rep.Execs)
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
		}
		if rep.Execs < 10 {
			t.Errorf("scenario %d: only %d interleavings explored — scenario too weak", i, rep.Execs)
		}
		t.Logf("scenario %d: %d interleavings, clean", i, rep.Execs)
	}
}

// TestExplorerDetectsMutants is the harness self-test required by the
// acceptance criteria: every seeded deque mutant must be flagged by at
// least one explored interleaving of the scenario set.
func TestExplorerDetectsMutants(t *testing.T) {
	for _, mut := range Mutations() {
		caught := false
		execs := 0
		for _, s := range scenarios() {
			s.Mut = mut
			rep := Explore(s)
			execs += rep.Execs
			if rep.Failed() {
				caught = true
				t.Logf("mutant %v caught after %d execs: %s", mut, execs, rep.Violations[0])
				break
			}
		}
		if !caught {
			t.Errorf("mutant %v survived the entire scenario set (%d execs) — the harness has no teeth for it", mut, execs)
		}
	}
}

// TestExploreSequentialMutants pins that the cheap sequential paths
// alone (no concurrency) already catch the owner-side mutants, which
// keeps their regression signal independent of the preemption bound.
func TestExploreSequentialMutants(t *testing.T) {
	cases := []struct {
		mut   Mutation
		owner []Op
	}{
		{MutPopNoRestore, []Op{Pop(), Push(1)}},
		{MutGrowNoCopy, []Op{Push(1), Push(2), Push(3), Push(4)}},
	}
	for _, c := range cases {
		rep := Explore(Scenario{Owner: c.owner, RingCap: 4, Preempt: 0, Mut: c.mut})
		if !rep.Failed() {
			t.Errorf("mutant %v not caught by its sequential scenario", c.mut)
		}
	}
}

// TestExploreStealRequiresConcurrency documents that the steal mutants
// are invisible sequentially — the schedule exploration is what finds
// them, not the op programs.
func TestExploreStealRequiresConcurrency(t *testing.T) {
	for _, mut := range []Mutation{MutStealNoCAS, MutStealBottomFirst} {
		// Same programs, zero preemptions: thieves run atomically, so
		// the broken publication order can never interleave badly.
		rep := Explore(Scenario{
			Owner:   []Op{Push(1), Push(2), Pop()},
			Thieves: [][]Op{{StealOp()}, {StealOp()}},
			RingCap: 4,
			Preempt: 0,
			Mut:     mut,
		})
		if rep.Failed() {
			t.Logf("mutant %v caught even without preemptions: %s", mut, rep.Violations[0])
		}
		// And with the bound restored it must be caught (subset of
		// TestExplorerDetectsMutants, kept separate for the signal).
		rep = Explore(Scenario{
			Owner:   []Op{Push(1), Push(2), Pop()},
			Thieves: [][]Op{{StealOp()}, {StealOp()}},
			RingCap: 4,
			Preempt: 2,
			Mut:     mut,
		})
		if !rep.Failed() {
			t.Errorf("mutant %v survived 2-preemption exploration of the steal-race scenario", mut)
		}
	}
}

// TestViolationCarriesSchedule checks the failure diagnostics: a
// violation must carry the interleaving that produced it.
func TestViolationCarriesSchedule(t *testing.T) {
	rep := Explore(Scenario{
		Owner:   []Op{Push(1), Push(2)},
		Thieves: [][]Op{{StealOp()}, {StealOp()}},
		RingCap: 4,
		Preempt: 2,
		Mut:     MutStealNoCAS,
	})
	if !rep.Failed() {
		t.Fatal("steal-no-cas not caught")
	}
	v := rep.Violations[0]
	if len(v.Schedule) == 0 {
		t.Error("violation carries no schedule")
	}
	if v.String() == "" {
		t.Error("violation renders empty")
	}
}
