//go:build eewa_check

package check

// BuildEnabled reports that this binary was built with the eewa_check
// tag: the live runtime evaluates its batch invariants unconditionally
// (equivalent to rt.Config.Invariants = true everywhere).
const BuildEnabled = true
