package check

import (
	"strings"
	"testing"

	"repro/internal/cctable"
	"repro/internal/cgroup"
	"repro/internal/machine"
	"repro/internal/profile"
)

func TestTaskConservation(t *testing.T) {
	if vs := TaskConservation([]int32{1, 1, 1}); len(vs) != 0 {
		t.Errorf("clean counts flagged: %v", vs)
	}
	vs := TaskConservation([]int32{1, 0, 2})
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.Invariant != "task-conservation" {
			t.Errorf("invariant = %q", v.Invariant)
		}
	}
}

func TestEnergyIdentity(t *testing.T) {
	// Exact decomposition: clean.
	if vs := EnergyIdentity(0, 10, 4, 3, 2, 1, 0, 1e-6); len(vs) != 0 {
		t.Errorf("exact identity flagged: %v", vs)
	}
	// Residual-balanced clipping: identity holds, residual flagged.
	vs := EnergyIdentity(1, 10, 8, 3, 2, 0, 3, 1e-6)
	if len(vs) != 1 || vs[0].Invariant != "energy-residual" {
		t.Errorf("clipped accounting: got %v, want one energy-residual", vs)
	}
	// Leaked wall time: identity broken.
	vs = EnergyIdentity(2, 10, 4, 3, 0, 1, 0, 1e-6)
	if len(vs) != 1 || vs[0].Invariant != "energy-identity" {
		t.Errorf("leaky accounting: got %v, want one energy-identity", vs)
	}
}

func TestPlanFeasible(t *testing.T) {
	if vs := PlanFeasible(nil, 4, 3); len(vs) != 1 {
		t.Errorf("nil assignment: %v", vs)
	}
	asn := cgroup.AllFast(4, nil)
	if vs := PlanFeasible(asn, 4, 3); len(vs) != 0 {
		t.Errorf("all-fast flagged: %v", vs)
	}
	// Wrong machine size: structural failure.
	if vs := PlanFeasible(asn, 5, 3); len(vs) == 0 {
		t.Error("4-core assignment accepted for 5-core machine")
	}
	// Non-monotone tuple smuggled into a structurally valid assignment.
	asn.Tuple = []int{2, 1}
	vs := PlanFeasible(asn, 4, 3)
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "monotone") {
		t.Errorf("non-monotone tuple: %v", vs)
	}
}

func TestTupleFeasible(t *testing.T) {
	ladder := machine.FreqLadder{3.0, 2.0, 1.0}
	classes := []profile.Class{
		{Name: "a", Count: 8, AvgWork: 0.5},
		{Name: "b", Count: 8, AvgWork: 0.25},
	}
	tab, err := cctable.Build(classes, ladder, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	tuple, ok := tab.SearchTuple(8)
	if !ok {
		t.Fatal("no tuple for a feasible instance")
	}
	if vs := TupleFeasible(tab, tuple, 8); len(vs) != 0 {
		t.Errorf("Algorithm 1 result flagged: %v", vs)
	}
	if vs := TupleFeasible(tab, []int{2, 0}, 8); len(vs) == 0 {
		t.Error("non-monotone tuple accepted")
	}
	if vs := TupleFeasible(tab, []int{0}, 8); len(vs) == 0 {
		t.Error("short tuple accepted")
	}
	if vs := TupleFeasible(tab, []int{0, 5}, 8); len(vs) == 0 {
		t.Error("out-of-ladder tuple accepted")
	}
	if vs := TupleFeasible(tab, tuple, 1); len(vs) == 0 {
		t.Error("over-budget tuple accepted for a 1-core machine")
	}
}
