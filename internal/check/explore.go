// The schedule explorer: a context-bounded depth-first search over the
// interleavings of one owner and K thieves operating on the step-model
// deque (model.go), asserting after every complete execution that the
// outcome is linearizable against the deque.Locked oracle and that the
// conservation invariants hold.
//
// Exploration is bounded the CHESS way (Musuvathi & Qadeer, PLDI 2007):
// a context switch away from a thread that could still step costs one
// preemption, a switch at thread completion is free, and schedules with
// more than Scenario.Preempt preemptions are pruned. Work-stealing
// deque bugs are shallow — every seeded mutant here needs at most two
// preemptions to manifest — so a small bound explores the dangerous
// schedules while keeping the search inside the tier-1 test budget.

package check

import (
	"fmt"
	"sort"

	"repro/internal/deque"
)

// Scenario is one bounded exploration: fixed thread programs, an
// initial ring capacity (small, to put grow and wraparound in reach of
// short programs), a mutation, and the preemption bound.
type Scenario struct {
	// Owner is the owner thread's program (PushBottom/PopBottom only).
	Owner []Op
	// Thieves are the thief programs (Steal only).
	Thieves [][]Op
	// RingCap is the model ring's initial capacity (power of two ≥ 2).
	// Small values force growth and index wraparound early.
	RingCap int64
	// Preempt is the preemption bound; < 0 explores every interleaving.
	Preempt int
	// Mut selects a seeded bug (MutNone checks the real algorithm).
	Mut Mutation
	// MaxExecs caps the number of complete executions (0 = 4_000_000),
	// a safety net against accidentally unbounded scenarios.
	MaxExecs int
}

// Violation is one invariant failure found by the harness, with the
// schedule (sequence of thread ids, one per step) that produced it.
type Violation struct {
	// Invariant names the failed property.
	Invariant string
	// Detail is a human-readable description of the failure.
	Detail string
	// Schedule is the thread id chosen at each global step (owner = 0,
	// thief i = i+1), enough to replay the interleaving by hand.
	Schedule []int
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (schedule %v)", v.Invariant, v.Detail, v.Schedule)
}

// Report summarizes one exploration.
type Report struct {
	// Execs is the number of complete interleavings checked.
	Execs int
	// Violations holds the first failures found (exploration stops
	// after the first violating execution).
	Violations []Violation
	// Truncated reports that MaxExecs cut the search short.
	Truncated bool
}

// Failed reports whether the exploration found any violation.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// world is one node of the search: deque state, thread states, and the
// schedule prefix that led here.
type world struct {
	st      dstate
	threads []*thr
	sched   []int
	steps   int
}

func (w *world) clone() *world {
	c := &world{
		st:      w.st.clone(),
		threads: make([]*thr, len(w.threads)),
		sched:   append([]int(nil), w.sched...),
		steps:   w.steps,
	}
	for i, th := range w.threads {
		c.threads[i] = th.clone()
	}
	return c
}

// Explore runs the bounded DFS and returns the report.
func Explore(s Scenario) Report {
	if s.RingCap < 2 {
		s.RingCap = 2
	}
	if s.MaxExecs <= 0 {
		s.MaxExecs = 4_000_000
	}
	pushed := map[int64]bool{}
	for _, op := range s.Owner {
		if op.Kind == OpPush {
			if pushed[op.Val] {
				panic("check: scenario pushes duplicate value " + fmt.Sprint(op.Val))
			}
			pushed[op.Val] = true
		}
	}

	root := &world{st: newDstate(s.RingCap)}
	owner := &thr{id: 0, prog: s.Owner}
	root.threads = append(root.threads, owner)
	for i, p := range s.Thieves {
		root.threads = append(root.threads, &thr{id: i + 1, prog: p})
	}

	rep := Report{}
	var dfs func(w *world, cur, preempts int)
	dfs = func(w *world, cur, preempts int) {
		if rep.Failed() || rep.Truncated {
			return
		}
		running := 0
		for _, th := range w.threads {
			if !th.done() {
				running++
			}
		}
		if running == 0 {
			rep.Execs++
			if rep.Execs >= s.MaxExecs {
				rep.Truncated = true
			}
			if vs := checkExecution(w, pushed); len(vs) > 0 {
				rep.Violations = vs
			}
			return
		}
		curEnabled := cur >= 0 && !w.threads[cur].done()
		for id := range w.threads {
			if w.threads[id].done() {
				continue
			}
			np := preempts
			if curEnabled && id != cur {
				if s.Preempt >= 0 && preempts >= s.Preempt {
					continue // switching away from a runnable thread is a preemption
				}
				np = preempts + 1
			}
			nw := w.clone()
			th := nw.threads[id]
			th.step(&nw.st, s.Mut, nw.steps)
			nw.sched = append(nw.sched, id)
			nw.steps++
			if v := checkStep(nw); v != nil {
				rep.Execs++
				rep.Violations = append(rep.Violations, *v)
				return
			}
			dfs(nw, id, np)
			if rep.Failed() || rep.Truncated {
				return
			}
		}
	}
	dfs(root, -1, 0)
	return rep
}

// checkStep asserts the per-step bounds: bottom may transiently dip
// one below top (PopBottom's empty probe) but never further, and the
// size estimate never exceeds the number of pushes so far.
func checkStep(w *world) *Violation {
	if d := w.st.bottom - w.st.top; d < -1 {
		return &Violation{
			Invariant: "len-bounds",
			Detail:    fmt.Sprintf("bottom-top = %d (< -1): bottom under-run past the empty probe", d),
			Schedule:  append([]int(nil), w.sched...),
		}
	}
	return nil
}

// checkExecution verifies one complete interleaving:
//
//   - conservation: every pushed value is delivered exactly once,
//     counting the values still in the deque at the barrier (drained
//     by direct state inspection, so a mutant cannot hide losses
//     behind its own broken operations);
//   - no phantoms: nothing delivered that was never pushed, and no
//     hole (never-written slot) ever surfaces;
//   - steal monotonicity: successful steals claim strictly increasing
//     deque indices in linearization order — top only moves forward;
//   - linearizability: replaying every successful operation at its
//     linearization point against the deque.Locked oracle yields the
//     same values, and the oracle holds exactly the drained remainder.
func checkExecution(w *world, pushed map[int64]bool) []Violation {
	sched := append([]int(nil), w.sched...)
	var vs []Violation
	fail := func(inv, format string, args ...any) {
		vs = append(vs, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...), Schedule: sched})
	}

	// Collect successful results in linearization order.
	type ev struct {
		opResult
		thread int
	}
	var events []ev
	for _, th := range w.threads {
		for _, res := range th.results {
			if res.Ok {
				events = append(events, ev{res, th.id})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Lin < events[j].Lin })

	// Drain the final state by inspection: [top, bottom) of the
	// published ring is what a barrier would hand the next batch.
	var drained []int64
	for i := w.st.top; i < w.st.bottom; i++ {
		drained = append(drained, w.st.rings[w.st.cur].get(i))
	}

	// Conservation and phantoms.
	seen := map[int64]int{}
	for _, e := range events {
		if e.Kind == OpPush {
			continue
		}
		if e.Val == hole {
			fail("phantom", "thread %d %v delivered a never-written slot", e.thread, e.Kind)
			continue
		}
		if !pushed[e.Val] {
			fail("phantom", "thread %d delivered %d which was never pushed", e.thread, e.Val)
			continue
		}
		seen[e.Val]++
	}
	for _, v := range drained {
		if v == hole {
			fail("conservation", "deque window holds a never-written slot at the barrier")
			continue
		}
		if !pushed[v] {
			fail("phantom", "deque window holds %d which was never pushed", v)
			continue
		}
		seen[v]++
	}
	for v, n := range seen {
		if n > 1 {
			fail("conservation", "value %d delivered %d times", v, n)
		}
	}
	for v := range pushed {
		if seen[v] == 0 {
			fail("conservation", "value %d lost", v)
		}
	}

	// Steal monotonicity.
	lastIdx := int64(-1)
	for _, e := range events {
		if e.Kind != OpSteal {
			continue
		}
		if e.Idx <= lastIdx {
			fail("steal-order", "steal claimed index %d after index %d", e.Idx, lastIdx)
		}
		lastIdx = e.Idx
	}

	// Linearizability replay against the real Locked oracle.
	oracle := deque.NewLocked[int64]()
	for _, e := range events {
		switch e.Kind {
		case OpPush:
			oracle.PushBottom(e.Val)
		case OpPop:
			ov, ok := oracle.PopBottom()
			if !ok || ov != e.Val {
				fail("linearizability", "pop returned %d but oracle has %d (ok=%v) at that linearization point", e.Val, ov, ok)
			}
		case OpSteal:
			ov, ok := oracle.Steal()
			if !ok || ov != e.Val {
				fail("linearizability", "steal returned %d but oracle has %d (ok=%v) at that linearization point", e.Val, ov, ok)
			}
		}
	}
	for i := 0; ; i++ {
		ov, ok := oracle.Steal()
		if !ok {
			if i != len(drained) {
				fail("linearizability", "oracle drained %d values, deque window holds %d", i, len(drained))
			}
			break
		}
		if i >= len(drained) {
			fail("linearizability", "oracle holds extra value %d past the deque window", ov)
			break
		}
		if ov != drained[i] {
			fail("linearizability", "barrier remainder mismatch at %d: deque %d, oracle %d", i, drained[i], ov)
		}
	}
	return vs
}
