// Step-machine model of the Chase–Lev deque for the schedule explorer.
//
// The explorer cannot preempt the real internal/deque.Chase between two
// atomic instructions — Go gives us no way to single-step compiled
// code — so the algorithm is transliterated here as a *resumable step
// machine*: every shared-memory access (each atomic load, store and
// CAS of internal/deque) is one discrete step, and everything between
// two shared accesses (local arithmetic, branch decisions) is folded
// into the step that ends it. Because Go's sync/atomic operations are
// sequentially consistent, exploring all interleavings of these steps
// under a sequentially consistent interpreter covers exactly the
// behaviours the real deque can exhibit; the step boundaries below are
// annotated with the lines of deque.go they correspond to.
//
// The model is deliberately mutable into known-broken variants
// (Mutation) so the explorer can prove it has teeth: each mutant must
// be flagged by at least one explored interleaving (see
// TestExplorerDetectsMutants).

package check

import "math"

// Mutation selects a deliberately broken variant of the modeled deque.
// MutNone is the faithful transliteration of internal/deque.Chase.
type Mutation int

const (
	// MutNone is the correct algorithm.
	MutNone Mutation = iota
	// MutStealNoCAS makes Steal publish top with a plain store instead
	// of a compare-and-swap: two thieves (or a thief and the owner's
	// single-element pop) can both claim the same index.
	MutStealNoCAS
	// MutStealBottomFirst inverts Lê et al.'s load order in Steal:
	// bottom is read before top. A thief holding a stale bottom can
	// then claim an index the owner's PopBottom already took without
	// a CAS (the t < b multi-element fast path).
	MutStealBottomFirst
	// MutPopNoRestore drops the bottom-restore in PopBottom's empty
	// path: bottom decrements below top and stays there, so the next
	// push lands at a negative index and the value is never visible.
	MutPopNoRestore
	// MutGrowNoCopy publishes the doubled ring without copying the
	// live [top, bottom) window: every value pushed before the growth
	// is lost.
	MutGrowNoCopy
)

// String names the mutation for test output.
func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutStealNoCAS:
		return "steal-no-cas"
	case MutStealBottomFirst:
		return "steal-bottom-first"
	case MutPopNoRestore:
		return "pop-no-restore"
	case MutGrowNoCopy:
		return "grow-no-copy"
	default:
		return "mutation(?)"
	}
}

// Mutations returns every seeded broken variant (everything but
// MutNone) — the self-test set the harness must flag.
func Mutations() []Mutation {
	return []Mutation{MutStealNoCAS, MutStealBottomFirst, MutPopNoRestore, MutGrowNoCopy}
}

// hole marks a model ring slot that was never written — the analogue
// of a nil *T in the real atomic.Pointer ring. Delivering it is a
// phantom-value violation.
const hole = int64(math.MinInt64)

// mring mirrors deque.ring: an immutable-capacity circular buffer.
// Slots are written only by the owner; the explorer serializes steps,
// so plain values model the real atomic slots exactly.
type mring struct {
	mask  int64
	slots []int64
}

func newMring(capacity int64) mring {
	s := mring{mask: capacity - 1, slots: make([]int64, capacity)}
	for i := range s.slots {
		s.slots[i] = hole
	}
	return s
}

func (r *mring) cap() int64           { return int64(len(r.slots)) }
func (r *mring) get(i int64) int64    { return r.slots[i&r.mask] }
func (r *mring) put(i int64, v int64) { r.slots[i&r.mask] = v }

// dstate is the shared memory of the modeled deque: the top and bottom
// words plus the published ring. Old rings stay readable (rings is
// append-only) because a stalled thread may hold a stale ring register,
// exactly like a stale atomic.Pointer load of the real ring.
type dstate struct {
	top, bottom int64
	cur         int // index of the published ring in rings
	rings       []mring
}

func newDstate(ringCap int64) dstate {
	return dstate{rings: []mring{newMring(ringCap)}}
}

func (st *dstate) clone() dstate {
	c := *st
	c.rings = make([]mring, len(st.rings))
	for i, r := range st.rings {
		c.rings[i] = mring{mask: r.mask, slots: append([]int64(nil), r.slots...)}
	}
	return c
}

// OpKind is one deque operation in a thread program.
type OpKind int

const (
	// OpPush is PushBottom (owner only).
	OpPush OpKind = iota
	// OpPop is PopBottom (owner only).
	OpPop
	// OpSteal is Steal (thieves).
	OpSteal
)

// Op is one operation with its payload (pushes only).
type Op struct {
	Kind OpKind
	Val  int64
}

// Push, Pop and Steal are program-building helpers.
func Push(v int64) Op { return Op{Kind: OpPush, Val: v} }
func Pop() Op         { return Op{Kind: OpPop} }
func StealOp() Op     { return Op{Kind: OpSteal} }

// opResult records one completed operation, including the global step
// index of its linearization point so the oracle replay can order it.
type opResult struct {
	Kind OpKind
	Val  int64
	Ok   bool
	Lin  int   // global step index of the linearization point; -1 for failed ops
	Idx  int64 // deque index a successful steal claimed (monotonicity check)
}

// thr is one modeled thread: its program, the program counter inside
// the current op, and the local registers the real code would hold in
// locals across atomic accesses.
type thr struct {
	id      int
	prog    []Op
	op      int // index of the current op in prog
	pc      int // step within the current op
	t, b    int64
	ring    int // ring register: index into dstate.rings (a stale load stays stale)
	vp      int64
	lin     int // provisional linearization step (PopBottom's bottom-store)
	results []opResult
}

func (th *thr) done() bool { return th.op >= len(th.prog) }

func (th *thr) clone() *thr {
	c := *th
	c.results = append([]opResult(nil), th.results...)
	return &c
}

func (th *thr) finish(res opResult) {
	res.Kind = th.prog[th.op].Kind
	th.results = append(th.results, res)
	th.op++
	th.pc = 0
}

// step advances thread th by exactly one shared-memory access against
// st. stepIdx is the global step counter (linearization timestamps).
// The pc values mirror internal/deque/deque.go; the comments cite it.
func (th *thr) step(st *dstate, mut Mutation, stepIdx int) {
	op := th.prog[th.op]
	switch op.Kind {
	case OpPush:
		switch th.pc {
		case 0: // b := d.bottom.Load()
			th.b = st.bottom
			th.pc = 1
		case 1: // t := d.top.Load()
			th.t = st.top
			th.pc = 2
		case 2: // r := d.ring.Load(); full check is local
			th.ring = st.cur
			if th.b-th.t >= st.rings[th.ring].cap()-1 {
				th.pc = 3 // grow
			} else {
				th.pc = 4
			}
		case 3: // r = r.grow(t, b); d.ring.Store(r)
			// Allocation+copy+publish is one step: the new ring is
			// invisible to other threads until the Store, and only the
			// owner writes slots, so no interleaving can observe an
			// intermediate state.
			old := st.rings[th.ring]
			nr := newMring(old.cap() * 2)
			if mut != MutGrowNoCopy {
				for i := th.t; i < th.b; i++ {
					nr.put(i, old.get(i))
				}
			}
			st.rings = append(st.rings, nr)
			st.cur = len(st.rings) - 1
			th.ring = st.cur
			th.pc = 4
		case 4: // r.put(b, &v)
			st.rings[th.ring].put(th.b, op.Val)
			th.pc = 5
		case 5: // d.bottom.Store(b + 1) — the push's linearization point
			st.bottom = th.b + 1
			th.finish(opResult{Val: op.Val, Ok: true, Lin: stepIdx})
		}

	case OpPop:
		switch th.pc {
		case 0: // b := d.bottom.Load() - 1
			th.b = st.bottom - 1
			th.pc = 1
		case 1: // r := d.ring.Load()
			th.ring = st.cur
			th.pc = 2
		case 2: // d.bottom.Store(b) — linearization point if the
			// multi-element fast path succeeds (it claims index b)
			st.bottom = th.b
			th.lin = stepIdx
			th.pc = 3
		case 3: // t := d.top.Load(); empty check is local
			th.t = st.top
			if th.t > th.b {
				if mut == MutPopNoRestore {
					// Seeded bug: forget d.bottom.Store(t).
					th.finish(opResult{Lin: -1})
				} else {
					th.pc = 4
				}
			} else {
				th.pc = 5
			}
		case 4: // d.bottom.Store(t) — restore the empty invariant
			st.bottom = th.t
			th.finish(opResult{Lin: -1})
		case 5: // vp := r.get(b); t != b check is local
			th.vp = st.rings[th.ring].get(th.b)
			if th.t != th.b {
				th.finish(opResult{Val: th.vp, Ok: true, Lin: th.lin, Idx: th.b})
			} else {
				th.pc = 6
			}
		case 6: // won := d.top.CompareAndSwap(t, t+1)
			if st.top == th.t {
				st.top = th.t + 1
				th.lin = stepIdx // CAS success is the linearization point
				th.pc = 7
			} else {
				th.pc = 8
			}
		case 7: // d.bottom.Store(t + 1); return *vp, true
			st.bottom = th.t + 1
			th.finish(opResult{Val: th.vp, Ok: true, Lin: th.lin, Idx: th.b})
		case 8: // d.bottom.Store(t + 1); return zero, false
			st.bottom = th.t + 1
			th.finish(opResult{Lin: -1})
		}

	case OpSteal:
		switch th.pc {
		case 0: // t := d.top.Load() (mutant: bottom first)
			if mut == MutStealBottomFirst {
				th.b = st.bottom
			} else {
				th.t = st.top
			}
			th.pc = 1
		case 1: // b := d.bottom.Load(); empty check is local
			if mut == MutStealBottomFirst {
				th.t = st.top
			} else {
				th.b = st.bottom
			}
			if th.t >= th.b {
				th.finish(opResult{Lin: -1})
			} else {
				th.pc = 2
			}
		case 2: // r := d.ring.Load()
			th.ring = st.cur
			th.pc = 3
		case 3: // vp := r.get(t); nil guard (the hardened Steal)
			th.vp = st.rings[th.ring].get(th.t)
			if th.vp == hole {
				// Fixed implementation: a slot the loaded ring never
				// carried means the claim would be unsound; treat as a
				// lost race instead of CASing blind.
				th.finish(opResult{Lin: -1})
			} else {
				th.pc = 4
			}
		case 4: // d.top.CompareAndSwap(t, t+1)
			if mut == MutStealNoCAS {
				// Seeded bug: publish with a plain store, no validation.
				st.top = th.t + 1
				th.finish(opResult{Val: th.vp, Ok: true, Lin: stepIdx, Idx: th.t})
				return
			}
			if st.top == th.t {
				st.top = th.t + 1
				th.finish(opResult{Val: th.vp, Ok: true, Lin: stepIdx, Idx: th.t})
			} else {
				th.finish(opResult{Lin: -1})
			}
		}
	}
}
