// Package core implements the paper's primary contribution: the
// workload-aware frequency adjuster (§III-A). It glues the online
// profile (task classes), the CC table (Table I), the Algorithm 1
// backtracking search and the c-group construction into one decision
// procedure:
//
//	given the task classes of the last iteration and the ideal
//	iteration time T, choose a frequency level for every core and a
//	c-group for every task class such that the next iteration still
//	finishes in ≈T while drawing minimal power.
//
// Both runtimes share it: the discrete-event simulator
// (internal/sched's EEWA policy) and the live goroutine runtime
// (internal/rt). The zero-configuration entry point is NewAdjuster;
// knobs exist for the ablation studies (paper-exact divisible CC
// formula, alternative tuple searches).
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cctable"
	"repro/internal/cgroup"
	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/profile"
)

// SearchFunc selects a k-tuple from a CC table for an m-core machine.
// (*cctable.Table).SearchTuple — the paper's Algorithm 1 — is the
// default.
type SearchFunc func(t *cctable.Table, m int) ([]int, bool)

// Adjuster is the workload-aware frequency adjuster.
type Adjuster struct {
	ladder machine.FreqLadder
	cores  int

	// Search is the tuple-search algorithm (Algorithm 1 by default).
	Search SearchFunc
	// DivisibleCC selects the paper's divisible-load CC formula
	// instead of the granularity-aware default (see
	// cctable.BuildGranular).
	DivisibleCC bool

	// LastTable and LastTuple expose the most recent decision for
	// tracing and the eewa-ktuple CLI.
	LastTable *cctable.Table
	LastTuple []int
	// Infeasible counts adjustments where not even the all-F0 row fit
	// within the core budget (the adjuster then keeps every core
	// fast).
	Infeasible int
	// LastSteps is the Select-attempt count of the most recent tuple
	// search (0 for search functions that do not report it, and 0 when
	// the plan cache served the result without searching), surfaced as
	// the adjuster's backtracking-depth metric.
	LastSteps int
	// TotalSteps accumulates LastSteps across every adjustment — the
	// cumulative backtracking effort, which stays truthful when
	// individual memoized decisions report 0.
	TotalSteps uint64
	// Cache memoizes tuple-search results keyed by the CC table's
	// fingerprint (class set + weights + T + core budget), so batches
	// whose profile did not change skip the backtracking search
	// entirely. NewAdjuster installs one; set to nil to disable.
	// Overriding Search bypasses it (the ablation searches measure
	// their own cost).
	Cache *cctable.Cache
	// LastCacheHit reports whether the most recent adjustment was
	// served from Cache without running the search.
	LastCacheHit bool
	// HostTime accumulates the measured wall time spent deciding —
	// the quantity Table III reports.
	HostTime time.Duration
}

// NewAdjuster builds an adjuster for an m-core machine with the given
// frequency ladder.
func NewAdjuster(ladder machine.FreqLadder, cores int) (*Adjuster, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("core: need at least one core, got %d", cores)
	}
	a := &Adjuster{
		ladder: ladder,
		cores:  cores,
		Cache:  cctable.NewCache(0),
	}
	// The default search consults the plan cache; a profile fingerprint
	// already searched reuses its tuple and reports LastSearchSteps = 0.
	a.Search = func(t *cctable.Table, m int) ([]int, bool) {
		if a.Cache == nil {
			return t.SearchTuple(m)
		}
		tuple, ok, hit := a.Cache.SearchTuple(t, m)
		a.LastCacheHit = hit
		return tuple, ok
	}
	return a, nil
}

// AllFast returns the degenerate everyone-at-F0 assignment the
// adjuster falls back to (first batch, memory-bound applications,
// infeasible instances).
func (a *Adjuster) AllFast() *cgroup.Assignment {
	return cgroup.AllFast(a.cores, nil)
}

// Adjust decides the frequency configuration for the next iteration
// from the previous iteration's task classes (descending average
// workload, as profile.Classes returns them) and the ideal iteration
// time T (seconds). The boolean is false when the adjuster fell back
// to all-fast — because the classes were empty, T was unusable, or no
// tuple fit the core budget.
func (a *Adjuster) Adjust(classes []profile.Class, T float64) (*cgroup.Assignment, bool) {
	a.LastCacheHit = false
	if len(classes) == 0 || T <= 0 {
		return a.AllFast(), false
	}
	start := time.Now()
	defer func() { a.HostTime += time.Since(start) }()

	var tab *cctable.Table
	var err error
	if a.DivisibleCC {
		tab, err = cctable.Build(classes, a.ladder, T)
	} else {
		tab, err = cctable.BuildGranular(classes, a.ladder, T, a.cores)
	}
	if err != nil {
		return a.AllFast(), false
	}
	tuple, ok := a.Search(tab, a.cores)
	a.LastTable = tab
	a.LastTuple = tuple
	a.LastSteps = tab.LastSearchSteps
	a.TotalSteps += uint64(a.LastSteps)
	if !ok {
		a.Infeasible++
		return a.AllFast(), false
	}
	asn, err := cgroup.FromTuple(tuple, tab, a.cores)
	if err != nil {
		a.Infeasible++
		return a.AllFast(), false
	}
	return asn, true
}

// MemDecision is the outcome of a memory-aware adjustment.
type MemDecision int

const (
	// MemOK: a model-based frequency configuration was found.
	MemOK MemDecision = iota
	// MemCalibrate: the classes lack samples at a second frequency
	// level; the returned assignment runs every core at the
	// calibration level for one batch to collect them.
	MemCalibrate
	// MemFallback: modeling failed (no classes, bad T, or no feasible
	// tuple); the returned assignment is all-fast classic stealing —
	// the paper's §IV-D behaviour.
	MemFallback
)

// String implements fmt.Stringer.
func (d MemDecision) String() string {
	switch d {
	case MemOK:
		return "ok"
	case MemCalibrate:
		return "calibrate"
	case MemFallback:
		return "fallback"
	default:
		return fmt.Sprintf("MemDecision(%d)", int(d))
	}
}

// CalLevel returns the frequency level used for calibration batches:
// the middle of the ladder — far enough from F0 that the two sample
// points separate the (a, b) coefficients, but not so slow that the
// calibration batch costs a full F0/F(r-1) stretch.
func (a *Adjuster) CalLevel() int { return len(a.ladder) / 2 }

// AdjustMemAware decides the next batch's configuration for a
// memory-bound application (the paper's future-work extension; see
// internal/memmodel). It consumes the profiler directly because the
// frequency-response fit needs the raw per-level times that Eq. 1
// normalization would destroy.
func (a *Adjuster) AdjustMemAware(p *profile.Profiler, T float64) (*cgroup.Assignment, MemDecision) {
	a.LastCacheHit = false
	classes := p.Classes()
	if len(classes) == 0 || T <= 0 {
		return a.AllFast(), MemFallback
	}
	start := time.Now()
	defer func() { a.HostTime += time.Since(start) }()

	models, ok := memmodel.FitAll(p, classes, a.ladder)
	if !ok {
		// Need a second frequency sample: one uniform batch at the
		// calibration level, classic stealing so every class spreads.
		levels := make([]int, a.cores)
		for i := range levels {
			levels[i] = a.CalLevel()
		}
		asn, err := cgroup.FromLevels(levels, len(a.ladder))
		if err != nil {
			return a.AllFast(), MemFallback
		}
		return asn, MemCalibrate
	}
	sort.Slice(models, func(i, j int) bool { return models[i].TimeAt(1) > models[j].TimeAt(1) })
	tab, err := memmodel.BuildTable(models, a.ladder, T, a.cores)
	if err != nil {
		return a.AllFast(), MemFallback
	}
	tuple, ok := a.Search(tab, a.cores)
	a.LastTable = tab
	a.LastTuple = tuple
	a.LastSteps = tab.LastSearchSteps
	a.TotalSteps += uint64(a.LastSteps)
	if !ok {
		a.Infeasible++
		return a.AllFast(), MemFallback
	}
	asn, err := cgroup.FromTuple(tuple, tab, a.cores)
	if err != nil {
		a.Infeasible++
		return a.AllFast(), MemFallback
	}
	return asn, MemOK
}
