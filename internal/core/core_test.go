package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cctable"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/xrand"
)

var ladder = machine.FreqLadder{2.5, 1.8, 1.3, 0.8}

func mustAdjuster(t *testing.T, cores int) *Adjuster {
	t.Helper()
	a, err := NewAdjuster(ladder, cores)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAdjusterValidates(t *testing.T) {
	if _, err := NewAdjuster(machine.FreqLadder{}, 16); err == nil {
		t.Error("empty ladder should error")
	}
	if _, err := NewAdjuster(ladder, 0); err == nil {
		t.Error("zero cores should error")
	}
}

func TestAdjustEmptyClassesFallsBack(t *testing.T) {
	a := mustAdjuster(t, 16)
	asn, ok := a.Adjust(nil, 1.0)
	if ok {
		t.Error("empty classes must not report success")
	}
	if err := asn.Validate(16, 4); err != nil {
		t.Fatalf("fallback assignment invalid: %v", err)
	}
	if asn.U() != 1 || asn.Groups[0].Level != 0 {
		t.Error("fallback must be all-fast")
	}
}

func TestAdjustBadTimeFallsBack(t *testing.T) {
	a := mustAdjuster(t, 16)
	classes := []profile.Class{{Name: "c", Count: 10, AvgWork: 0.1}}
	if _, ok := a.Adjust(classes, 0); ok {
		t.Error("zero T must fall back")
	}
	if _, ok := a.Adjust(classes, -1); ok {
		t.Error("negative T must fall back")
	}
}

func TestAdjustDownscalesUnderutilizedWorkload(t *testing.T) {
	a := mustAdjuster(t, 16)
	// 5 chunky tasks (stay at F0) + many fine tasks (downscale): the
	// SHA-1 shape, which must produce a multi-group assignment.
	classes := []profile.Class{
		{Name: "heavy", Count: 5, AvgWork: 0.17},
		{Name: "light", Count: 123, AvgWork: 0.0046},
	}
	asn, ok := a.Adjust(classes, 0.2)
	if !ok {
		t.Fatal("expected a feasible adjustment")
	}
	if err := asn.Validate(16, 4); err != nil {
		t.Fatal(err)
	}
	if asn.U() < 2 {
		t.Fatalf("expected ≥ 2 c-groups, got %d (tuple %v)", asn.U(), a.LastTuple)
	}
	// Heavy class on the fastest selected group, light on a slower one.
	hg, lg := asn.GroupOfClass("heavy"), asn.GroupOfClass("light")
	if !(asn.Groups[hg].Level < asn.Groups[lg].Level) {
		t.Errorf("heavy at level %d, light at level %d — heavier class must be faster",
			asn.Groups[hg].Level, asn.Groups[lg].Level)
	}
}

func TestAdjustInfeasibleCountsAndFallsBack(t *testing.T) {
	a := mustAdjuster(t, 4)
	classes := []profile.Class{
		{Name: "a", Count: 24, AvgWork: 0.02},
		{Name: "b", Count: 24, AvgWork: 0.018},
		{Name: "c", Count: 24, AvgWork: 0.016},
	}
	// T chosen so each class needs ~2 cores at F0: sum 6 > 4.
	asn, ok := a.Adjust(classes, 0.3)
	if ok {
		t.Error("infeasible instance must not report success")
	}
	if a.Infeasible != 1 {
		t.Errorf("Infeasible = %d, want 1", a.Infeasible)
	}
	if asn.U() != 1 || asn.Groups[0].Level != 0 {
		t.Error("infeasible fallback must be all-fast")
	}
}

func TestAdjustRecordsHostTime(t *testing.T) {
	a := mustAdjuster(t, 16)
	classes := []profile.Class{{Name: "c", Count: 100, AvgWork: 0.01}}
	a.Adjust(classes, 0.5)
	if a.HostTime <= 0 {
		t.Error("HostTime not accumulated")
	}
	if a.LastTable == nil || a.LastTuple == nil {
		t.Error("LastTable/LastTuple not recorded")
	}
}

func TestAdjustDivisibleCCKnob(t *testing.T) {
	// A chunky class that the granular formula must keep at F0 but the
	// divisible formula happily downscales.
	classes := []profile.Class{
		{Name: "chunky", Count: 8, AvgWork: 0.15},
	}
	T := 0.3

	gran := mustAdjuster(t, 16)
	ga, gok := gran.Adjust(classes, T)
	if !gok {
		t.Fatal("granular adjustment should succeed")
	}

	div := mustAdjuster(t, 16)
	div.DivisibleCC = true
	da, dok := div.Adjust(classes, T)
	if !dok {
		t.Fatal("divisible adjustment should succeed")
	}
	// The divisible formula claims fewer cores are needed at slow
	// levels, so its chosen level is at least as slow as granular's.
	if da.Groups[da.GroupOfClass("chunky")].Level < ga.Groups[ga.GroupOfClass("chunky")].Level {
		t.Error("divisible CC should never pick a faster level than granular CC")
	}
}

func TestAdjustCustomSearch(t *testing.T) {
	a := mustAdjuster(t, 16)
	called := false
	a.Search = func(tab *cctable.Table, m int) ([]int, bool) {
		called = true
		return tab.SearchTuple(m)
	}
	a.Adjust([]profile.Class{{Name: "c", Count: 10, AvgWork: 0.05}}, 0.5)
	if !called {
		t.Error("custom search not invoked")
	}
}

// Property: Adjust never returns an invalid assignment, success or not.
func TestAdjustAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64, coresRaw, kRaw uint8) bool {
		rng := xrand.New(seed)
		cores := int(coresRaw%32) + 1
		k := int(kRaw%4) + 1
		a, err := NewAdjuster(ladder, cores)
		if err != nil {
			return false
		}
		classes := make([]profile.Class, k)
		w := rng.Range(0.05, 0.5)
		for i := range classes {
			classes[i] = profile.Class{
				Name:    string(rune('a' + i)),
				Count:   rng.Intn(60) + 1,
				AvgWork: w,
			}
			w *= rng.Range(0.3, 1.0)
		}
		asn, _ := a.Adjust(classes, rng.Range(0.05, 2.0))
		return asn.Validate(cores, len(ladder)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- memory-aware adjustment (§IV-D future work) --------------------------

// feedMemBound populates a profiler with a memory-bound class observed
// at the given levels, following t(ratio) = a + b·ratio.
func feedMemBound(p *profile.Profiler, name string, n int, a, b float64, levels ...int) {
	for _, lvl := range levels {
		ratio := ladder.Ratio(lvl)
		for i := 0; i < n; i++ {
			p.Record(name, a+b*ratio, lvl, 0.5)
		}
	}
}

func TestAdjustMemAwareCalibratesThenConfigures(t *testing.T) {
	a := mustAdjuster(t, 16)
	p := profile.New(ladder)

	// Only level-0 samples: the adjuster must ask for calibration at
	// its mid-ladder level, with every core uniform.
	feedMemBound(p, "mb", 64, 0.006, 0.004, 0)
	asn, dec := a.AdjustMemAware(p, 0.1)
	if dec != MemCalibrate {
		t.Fatalf("decision = %v, want calibrate", dec)
	}
	if err := asn.Validate(16, 4); err != nil {
		t.Fatal(err)
	}
	if asn.U() != 1 || asn.Groups[0].Level != a.CalLevel() {
		t.Errorf("calibration assignment %+v, want uniform level %d", asn.Groups, a.CalLevel())
	}

	// After the calibration batch the fit succeeds and a configuration
	// appears.
	feedMemBound(p, "mb", 64, 0.006, 0.004, a.CalLevel())
	asn2, dec2 := a.AdjustMemAware(p, 0.1)
	if dec2 != MemOK {
		t.Fatalf("decision = %v, want ok", dec2)
	}
	if err := asn2.Validate(16, 4); err != nil {
		t.Fatal(err)
	}
	// The class is 60% memory-bound; with T = 0.1 and 64 tasks of t0 =
	// 0.01 the model should allow a below-F0 level.
	if asn2.Groups[0].Level == 0 && asn2.U() == 1 {
		t.Errorf("expected downscaling, got %+v (tuple %v)", asn2.Groups, a.LastTuple)
	}
}

func TestAdjustMemAwareFallbacks(t *testing.T) {
	a := mustAdjuster(t, 16)
	p := profile.New(ladder)
	if _, dec := a.AdjustMemAware(p, 0.1); dec != MemFallback {
		t.Errorf("empty profile: decision = %v, want fallback", dec)
	}
	feedMemBound(p, "mb", 4, 0.01, 0.01, 0, 2)
	if _, dec := a.AdjustMemAware(p, -1); dec != MemFallback {
		t.Errorf("bad T: decision = %v, want fallback", dec)
	}
	// Overloaded: per-batch work far beyond 16 cores within T.
	p2 := profile.New(ladder)
	feedMemBound(p2, "x", 400, 0.05, 0.05, 0, 2)
	asn, dec := a.AdjustMemAware(p2, 0.1)
	if dec != MemFallback {
		t.Errorf("infeasible: decision = %v, want fallback", dec)
	}
	if asn.U() != 1 || asn.Groups[0].Level != 0 {
		t.Error("fallback must be all-fast")
	}
}

func TestMemDecisionString(t *testing.T) {
	if MemOK.String() != "ok" || MemCalibrate.String() != "calibrate" || MemFallback.String() != "fallback" {
		t.Error("MemDecision labels wrong")
	}
	if MemDecision(9).String() == "" {
		t.Error("unknown decision should stringify")
	}
}
