package experiments

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// Experiments are slow-ish (full benchmark runs); share results across
// assertions within each test.

func TestFig1Arithmetic(t *testing.T) {
	s := Fig1(1.0)
	if len(s) != 4 {
		t.Fatalf("got %d schedules, want 4", len(s))
	}
	a, b, c, d := s[0], s[1], s[2], s[3]
	// (a) and (b) finish at 2t; (c) and (d) at 4t.
	if a.Time != 2 || b.Time != 2 {
		t.Errorf("(a)=%g (b)=%g, want both 2t", a.Time, b.Time)
	}
	if c.Time != 4 || d.Time != 4 {
		t.Errorf("(c)=%g (d)=%g, want both 4t", c.Time, d.Time)
	}
	// (b) saves energy versus (a) at identical time — the optimum EEWA
	// targets.
	if !(b.Energy < a.Energy) {
		t.Errorf("(b) %.1fJ should undercut (a) %.1fJ", b.Energy, a.Energy)
	}
	// (c) wastes more energy than (b) (Fig. 1 discussion: 4t(p0+p1) vs
	// 2t(p0+p1)) and degrades time.
	if !(c.Energy > b.Energy) {
		t.Errorf("(c) %.1fJ should exceed (b) %.1fJ", c.Energy, b.Energy)
	}
	// (c) also exceeds (a): the paper calls it the unfortunate case.
	if !(c.Energy > a.Energy) {
		t.Errorf("(c) %.1fJ should exceed (a) %.1fJ", c.Energy, a.Energy)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 6 sweep in -short mode")
	}
	rows, err := Fig6(machine.Opteron16(), []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7 benchmarks", len(rows))
	}
	var minSave, maxSave float64 = 1, 0
	for _, r := range rows {
		if r.NormTime["Cilk"] != 1 || r.NormEnergy["Cilk"] != 1 {
			t.Errorf("%s: Cilk must normalize to 1", r.Benchmark)
		}
		// Orderings: EEWA ≤ Cilk-D ≤ Cilk in energy (small tolerance for
		// seeds where the adjuster finds nothing and EEWA ≈ Cilk-D).
		if r.NormEnergy["EEWA"] > r.NormEnergy["Cilk-D"]+0.01 {
			t.Errorf("%s: EEWA energy %.3f above Cilk-D %.3f", r.Benchmark, r.NormEnergy["EEWA"], r.NormEnergy["Cilk-D"])
		}
		if r.NormEnergy["Cilk-D"] >= 1 {
			t.Errorf("%s: Cilk-D should save energy, got %.3f", r.Benchmark, r.NormEnergy["Cilk-D"])
		}
		// Performance: EEWA within ±13%% of Cilk (the paper sees
		// +0.8–3.7%%; our deterministic placement can also run faster).
		if r.NormTime["EEWA"] < 0.85 || r.NormTime["EEWA"] > 1.06 {
			t.Errorf("%s: EEWA normalized time %.3f outside [0.85, 1.06]", r.Benchmark, r.NormTime["EEWA"])
		}
		save := 1 - r.NormEnergy["EEWA"]
		if save < minSave {
			minSave = save
		}
		if save > maxSave {
			maxSave = save
		}
	}
	// Paper band: 8.7–29.8 %. Our model spans a comparable band.
	if minSave < 0.05 {
		t.Errorf("weakest EEWA saving %.1f%%, want ≥ 5%%", 100*minSave)
	}
	if maxSave < 0.25 || maxSave > 0.45 {
		t.Errorf("strongest EEWA saving %.1f%%, want within [25%%, 45%%]", 100*maxSave)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 7 sweep in -short mode")
	}
	rows, err := Fig7(machine.Opteron16(), []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	anyBigGap := false
	for _, r := range rows {
		if len(r.Levels) != 16 {
			t.Errorf("%s: %d levels, want 16", r.Benchmark, len(r.Levels))
		}
		if r.RelTime["EEWA"] != 1 {
			t.Errorf("%s: EEWA must normalize to 1", r.Benchmark)
		}
		// Cilk must never beat WATS on the asymmetric machine by any
		// meaningful margin, and must trail EEWA.
		if r.RelTime["Cilk"] < 0.99 {
			t.Errorf("%s: random stealing at %.2f× EEWA — too fast for an oblivious scheduler", r.Benchmark, r.RelTime["Cilk"])
		}
		if r.RelTime["WATS"] > r.RelTime["Cilk"]+0.15 {
			t.Errorf("%s: WATS %.2f much slower than Cilk %.2f", r.Benchmark, r.RelTime["WATS"], r.RelTime["Cilk"])
		}
		if r.RelTime["Cilk"] > 1.5 {
			anyBigGap = true
		}
	}
	if !anyBigGap {
		t.Error("paper: Cilk reaches 2.92× EEWA on some benchmark; expected ≥ 1.5× somewhere")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(machine.Opteron16(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Census) != 10 {
		t.Fatalf("%d batches, want 10", len(res.Census))
	}
	// Batch 1: every core at the highest frequency.
	if res.Census[0][0] != 16 {
		t.Errorf("batch 1 census %v, want all 16 at F0", res.Census[0])
	}
	// Paper: from batch 3 on, 5 cores at 2.5 GHz, 11 at 0.8 GHz; and in
	// most batches more than half the cores sit at the lowest level.
	for bi := 2; bi < 10; bi++ {
		c := res.Census[bi]
		if c[0] != 5 || c[3] != 11 {
			t.Errorf("batch %d census %v, want [5 0 0 11] (Fig. 8)", bi+1, c)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 9 sweep in -short mode")
	}
	points, err := Fig9([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("got %d points, want 12 (4 sizes × 3 policies)", len(points))
	}
	get := func(cores int, policy string) Fig9Point {
		for _, p := range points {
			if p.Cores == cores && p.Policy == policy {
				return p
			}
		}
		t.Fatalf("missing point %d/%s", cores, policy)
		return Fig9Point{}
	}
	// 4 cores: no meaningful saving, tiny degradation (paper: 0.3%).
	e4 := get(4, "EEWA")
	if e4.NormEnergy < 0.97 {
		t.Errorf("4-core EEWA energy %.3f — should have almost no headroom", e4.NormEnergy)
	}
	if e4.NormTime > 1.02 {
		t.Errorf("4-core EEWA time %.3f, want ≤ 1.02 (paper: +0.3%%)", e4.NormTime)
	}
	// Savings grow with the core count.
	e8, e12, e16 := get(8, "EEWA"), get(12, "EEWA"), get(16, "EEWA")
	if !(e16.NormEnergy < e12.NormEnergy && e12.NormEnergy < e8.NormEnergy && e8.NormEnergy < e4.NormEnergy) {
		t.Errorf("EEWA savings must grow with cores: %.3f %.3f %.3f %.3f",
			e4.NormEnergy, e8.NormEnergy, e12.NormEnergy, e16.NormEnergy)
	}
	// Makespans shrink as cores grow (same workload).
	if !(get(16, "Cilk").Time < get(8, "Cilk").Time && get(8, "Cilk").Time < get(4, "Cilk").Time) {
		t.Error("Cilk makespan should shrink with more cores")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(machine.Opteron16(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Percent <= 0 || r.Percent >= 2.0 {
			t.Errorf("%s: overhead %.2f%%, paper requires < 2%%", r.Benchmark, r.Percent)
		}
		if r.HostOverhead <= 0 {
			t.Errorf("%s: host overhead not measured", r.Benchmark)
		}
		if r.SimOverhead >= r.ExecTime {
			t.Errorf("%s: overhead exceeds runtime", r.Benchmark)
		}
	}
}

func TestModalLevels(t *testing.T) {
	censuses := [][]int{
		{16, 0, 0, 0}, // warmup, skipped
		{5, 0, 0, 11},
		{5, 0, 0, 11},
		{4, 1, 0, 11},
	}
	levels := ModalLevels(censuses)
	if len(levels) != 16 {
		t.Fatalf("got %d levels, want 16", len(levels))
	}
	fast, slow := 0, 0
	for _, l := range levels {
		switch l {
		case 0:
			fast++
		case 3:
			slow++
		default:
			t.Errorf("unexpected level %d", l)
		}
	}
	if fast != 5 || slow != 11 {
		t.Errorf("modal config %d fast / %d slow, want 5/11", fast, slow)
	}
}

func TestModalLevelsSingleCensus(t *testing.T) {
	levels := ModalLevels([][]int{{2, 0, 0, 2}})
	if len(levels) != 4 {
		t.Fatalf("got %d levels, want 4", len(levels))
	}
}

func TestRenderers(t *testing.T) {
	// Smoke tests: every renderer produces non-empty output containing
	// its table title.
	if out := RenderFig1(Fig1(1)); !strings.Contains(out, "Fig. 1") {
		t.Error("RenderFig1 missing title")
	}
	res, err := Fig8(machine.Opteron16(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig8(res); !strings.Contains(out, "SHA-1") {
		t.Error("RenderFig8 missing title")
	}
	rows, err := Table3(machine.Opteron16(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable3(rows); !strings.Contains(out, "Table III") {
		t.Error("RenderTable3 missing title")
	}
}

func TestAblationGranularityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	rows, err := AblationGranularity(machine.Opteron16(), []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	// The divisible-load formula must never beat the granularity-aware
	// one on makespan by more than noise, and on sha1 (the chunkiest
	// mix) it must be dramatically slower.
	for _, r := range rows {
		if r.Benchmark == "sha1" {
			if r.Time["divisible"] < 1.5*r.Time["granular"] {
				t.Errorf("sha1: divisible CC %.3fs vs granular %.3fs — expected a large overrun",
					r.Time["divisible"], r.Time["granular"])
			}
		}
		if r.Time["granular"] > r.Time["divisible"]*1.05 {
			t.Errorf("%s: granular CC slower (%.3f vs %.3f)", r.Benchmark, r.Time["granular"], r.Time["divisible"])
		}
	}
}

func TestMemBoundExtensionShape(t *testing.T) {
	res, err := MemBound(machine.Opteron16(), []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	fbSave := 1 - res.Fallback.Energy/res.Cilk.Energy
	maSave := 1 - res.MemAware.Energy/res.Cilk.Energy
	if fbSave <= 0 {
		t.Errorf("fallback saving %.1f%%, want > 0 (idle down-clocking)", 100*fbSave)
	}
	if maSave < fbSave+0.10 {
		t.Errorf("MemAware saving %.1f%% should exceed fallback %.1f%% by ≥ 10 pts", 100*maSave, 100*fbSave)
	}
	if res.MemAware.Makespan > 1.05*res.Cilk.Makespan {
		t.Errorf("MemAware makespan %.4f degrades > 5%% vs Cilk %.4f", res.MemAware.Makespan, res.Cilk.Makespan)
	}
	if out := RenderMemBound(res); !strings.Contains(out, "MemAware") {
		t.Error("renderer missing MemAware row")
	}
}

func TestAblationSearchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	rows, err := AblationSearch(machine.Opteron16(), []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		for _, v := range []string{"backtracking", "exhaustive", "greedy"} {
			if r.Energy[v] <= 0 || r.Time[v] <= 0 {
				t.Errorf("%s/%s: degenerate result", r.Benchmark, v)
			}
		}
		// Backtracking's energy stays within 10% of the exhaustive
		// optimum on every benchmark (the paper's "near-optimal" claim).
		if r.Energy["backtracking"] > 1.10*r.Energy["exhaustive"] {
			t.Errorf("%s: backtracking %.1fJ vs exhaustive %.1fJ — not near-optimal",
				r.Benchmark, r.Energy["backtracking"], r.Energy["exhaustive"])
		}
	}
	out := RenderAblation("t", rows, []string{"backtracking", "exhaustive", "greedy"})
	if !strings.Contains(out, "backtracking") {
		t.Error("render missing variant")
	}
}

func TestAblationPackagesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	rows, err := AblationPackages([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Per-core voltage planes can only help EEWA (its groups are
		// already package-aligned; uncoupling removes residual penalty).
		if r.Energy["uncoupled"] > 1.01*r.Energy["coupled"] {
			t.Errorf("%s: uncoupled %.1fJ worse than coupled %.1fJ", r.Benchmark, r.Energy["uncoupled"], r.Energy["coupled"])
		}
	}
}

func TestRenderFig6Fig7Fig9(t *testing.T) {
	if testing.Short() {
		t.Skip("render sweep in -short mode")
	}
	rows6, err := Fig6(machine.Opteron16(), []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig6(rows6); !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "sha1") {
		t.Error("RenderFig6 incomplete")
	}
	rows7, err := Fig7(machine.Opteron16(), []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig7(rows7); !strings.Contains(out, "Fig. 7") || !strings.Contains(out, "@F") {
		t.Error("RenderFig7 incomplete")
	}
	p9, err := Fig9([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig9(p9); !strings.Contains(out, "Fig. 9") {
		t.Error("RenderFig9 incomplete")
	}
}

func TestRenderCharts(t *testing.T) {
	rows := []Fig6Row{{
		Benchmark:  "x",
		NormTime:   map[string]float64{"Cilk": 1, "Cilk-D": 1, "EEWA": 0.95},
		NormEnergy: map[string]float64{"Cilk": 1, "Cilk-D": 0.9, "EEWA": 0.7},
	}}
	out := RenderFig6Chart(rows)
	if !strings.Contains(out, "EEWA") || !strings.Contains(out, "#") {
		t.Errorf("chart output:\n%s", out)
	}
	points := []Fig9Point{{Cores: 4, Policy: "EEWA", NormEnergy: 0.5}}
	out9 := RenderFig9Chart(points)
	if !strings.Contains(out9, "4 cores") {
		t.Errorf("fig9 chart output:\n%s", out9)
	}
	// Bars clamp at both ends.
	if got := bar(-1, 1, 10, '#'); got != "" {
		t.Errorf("negative bar = %q", got)
	}
	if got := bar(5, 1, 10, '#'); len(got) != 10 {
		t.Errorf("overflow bar = %q", got)
	}
}
