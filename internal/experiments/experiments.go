// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV), plus the ablations called out in DESIGN.md.
// Each driver returns a typed result that the cmd/eewa-bench CLI and
// the repository's bench harness render; the drivers themselves never
// print.
//
// Experiment index (see DESIGN.md §4):
//
//	Fig1   — energy arithmetic of four schedules on a DVFS dual-core
//	Fig3   — the worked k-tuple example (in cctable tests; CLI renders it)
//	Fig6   — normalized time & energy, 7 benchmarks × {Cilk, Cilk-D, EEWA}
//	Fig7   — performance on frozen asymmetric configs × {Cilk, WATS, EEWA}
//	Fig8   — per-batch frequency census of SHA-1 under EEWA
//	Fig9   — DMC scalability over 4/8/12/16 cores
//	Table3 — adjuster overhead per benchmark
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cctable"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// DefaultSeeds are the seeds runs are averaged over (the paper averages
// 100 hardware runs; three simulator seeds give comparable stability at
// a fraction of the time).
var DefaultSeeds = []uint64{1, 2, 3}

// obsReg is the registry Observe installed; nil means no metrics.
var obsReg *obs.Registry

// Observe routes the engine metrics of every subsequent driver
// simulation into reg, so a CLI can snapshot a whole experiment suite
// with one registry. Pass nil to disable. Not safe to call while
// drivers are running.
func Observe(reg *obs.Registry) { obsReg = reg }

// runPolicy executes a benchmark under a policy for each seed and
// returns the per-seed results. The workload is regenerated per seed so
// jitter varies alongside victim selection.
func runPolicy(cfg machine.Config, b workloads.Benchmark, mk func() sched.Policy, seeds []uint64) ([]*sched.Result, error) {
	out := make([]*sched.Result, 0, len(seeds))
	for _, seed := range seeds {
		w := b.Workload(seed)
		params := sched.DefaultParams()
		params.Seed = seed
		params.Obs = obsReg
		res, err := sched.Run(cfg, w, mk(), params)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s seed %d: %w", b.Name, mk().Name(), seed, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func meanMakespan(rs []*sched.Result) float64 {
	xs := make([]float64, len(rs))
	for i, r := range rs {
		xs[i] = r.Makespan
	}
	return stats.Mean(xs)
}

func meanEnergy(rs []*sched.Result) float64 {
	xs := make([]float64, len(rs))
	for i, r := range rs {
		xs[i] = r.Energy
	}
	return stats.Mean(xs)
}

// --- Fig. 1 ------------------------------------------------------------

// Fig1Schedule is one of the four schedules of the paper's motivating
// example: tasks γ0 (2t) and γ1 (t) on a dual-core with levels f0 and
// 0.5·f0.
type Fig1Schedule struct {
	Name   string
	Time   float64 // units of t
	Energy float64 // joules with the model's dual-core power numbers
}

// Fig1 reproduces the §II example with the energy model instantiated on
// a two-core, two-level machine (f0 and 0.5·f0, per-core voltage
// planes so the arithmetic matches the paper's p0/p1 form). The
// returned schedules are (a)–(d) in paper order; (b) must minimize
// energy without extending time beyond 2t.
func Fig1(t float64) []Fig1Schedule {
	cfg := machine.Config{
		Name:  "dual",
		Cores: 2,
		Freqs: machine.FreqLadder{2.0, 1.0},
		Power: machine.PowerModel{
			Static:   2.0,
			DynCoeff: 12.0 / (2.0 * 1.2 * 1.2),
			Volt:     []float64{1.2, 1.0},
			HaltFrac: 0.15,
			Base:     0, // isolate the cores, as the paper's arithmetic does
		},
		PackageSize: 1,
	}

	// run executes γ0 (work 2t) on core 0 at lvl0 and γ1 (work t) on
	// core 1 at lvl1; finished cores spin at their level until the
	// barrier (the traditional-scheduler behaviour the example
	// analyzes).
	run := func(lvl0, lvl1 int) (float64, float64) {
		m := machine.New(cfg)
		m.SetFreq(0, 0, lvl0)
		m.SetFreq(0, 1, lvl1)
		t0 := 2 * t * cfg.Freqs.Ratio(lvl0)
		t1 := t * cfg.Freqs.Ratio(lvl1)
		m.SetState(0, 0, machine.Busy)
		m.SetState(0, 1, machine.Busy)
		end := t0
		if t1 > end {
			end = t1
		}
		// Charge in chronological order: the earlier finisher starts
		// spinning first.
		if t0 <= t1 {
			m.SetState(t0, 0, machine.Spinning)
			m.SetState(t1, 1, machine.Spinning)
		} else {
			m.SetState(t1, 1, machine.Spinning)
			m.SetState(t0, 0, machine.Spinning)
		}
		return end, m.EnergyAt(end)
	}

	mkSchedule := func(name string, lvl0, lvl1 int) Fig1Schedule {
		tm, e := run(lvl0, lvl1)
		return Fig1Schedule{Name: name, Time: tm / t, Energy: e}
	}
	return []Fig1Schedule{
		mkSchedule("(a) both fast", 0, 0),
		mkSchedule("(b) γ1 core slow", 0, 1),
		mkSchedule("(c) γ0 core slow", 1, 0),
		mkSchedule("(d) both slow", 1, 1),
	}
}

// --- Fig. 6 ------------------------------------------------------------

// Fig6Row is one benchmark's bar group: execution time and energy for
// each policy, normalized against Cilk.
type Fig6Row struct {
	Benchmark  string
	NormTime   map[string]float64
	NormEnergy map[string]float64
}

// Fig6Policies is the fixed policy order of the figure.
var Fig6Policies = []string{"Cilk", "Cilk-D", "EEWA"}

// Fig6 runs the seven benchmarks under Cilk, Cilk-D and EEWA on cfg and
// returns one normalized row per benchmark.
func Fig6(cfg machine.Config, seeds []uint64) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, b := range workloads.All() {
		row, err := fig6Row(cfg, b, seeds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig6Row(cfg machine.Config, b workloads.Benchmark, seeds []uint64) (Fig6Row, error) {
	mks := map[string]func() sched.Policy{
		"Cilk":   func() sched.Policy { return sched.NewCilk() },
		"Cilk-D": func() sched.Policy { return sched.NewCilkD(len(cfg.Freqs)) },
		"EEWA":   func() sched.Policy { return sched.NewEEWA() },
	}
	times := map[string]float64{}
	energies := map[string]float64{}
	for name, mk := range mks {
		rs, err := runPolicy(cfg, b, mk, seeds)
		if err != nil {
			return Fig6Row{}, err
		}
		times[name] = meanMakespan(rs)
		energies[name] = meanEnergy(rs)
	}
	row := Fig6Row{Benchmark: b.Name, NormTime: map[string]float64{}, NormEnergy: map[string]float64{}}
	for name := range mks {
		row.NormTime[name] = times[name] / times["Cilk"]
		row.NormEnergy[name] = energies[name] / energies["Cilk"]
	}
	return row, nil
}

// --- Fig. 7 ------------------------------------------------------------

// Fig7Row is one benchmark's bar group on the frozen asymmetric
// machine: execution time normalized against EEWA.
type Fig7Row struct {
	Benchmark string
	// Levels is the frozen per-core frequency configuration (EEWA's
	// modal configuration for the benchmark).
	Levels []int
	// RelTime maps policy → makespan / EEWA makespan.
	RelTime map[string]float64
}

// Fig7Policies is the fixed policy order of the figure.
var Fig7Policies = []string{"Cilk", "WATS", "EEWA"}

// Fig7 reproduces the asymmetric-machine comparison: for each
// benchmark, EEWA's most frequent frequency configuration is frozen
// into the hardware, then Cilk (random stealing) and WATS (workload-
// aware stealing, no DVFS) run on it; EEWA itself runs with DVFS
// control as usual. The paper reports Cilk at 1.17–2.92× and WATS at
// 1.05–1.24× EEWA's execution time.
func Fig7(cfg machine.Config, seeds []uint64) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, b := range workloads.All() {
		eewaRS, err := runPolicy(cfg, b, func() sched.Policy { return sched.NewEEWA() }, seeds)
		if err != nil {
			return nil, err
		}
		levels := ModalLevels(eewaRS[0].BatchCensus)
		cilkRS, err := runPolicy(cfg, b, func() sched.Policy {
			p, perr := sched.NewCilkFixed(levels, len(cfg.Freqs))
			if perr != nil {
				panic(perr)
			}
			return p
		}, seeds)
		if err != nil {
			return nil, err
		}
		watsRS, err := runPolicy(cfg, b, func() sched.Policy {
			p, perr := sched.NewWATS(levels, len(cfg.Freqs))
			if perr != nil {
				panic(perr)
			}
			return p
		}, seeds)
		if err != nil {
			return nil, err
		}
		eewaT := meanMakespan(eewaRS)
		rows = append(rows, Fig7Row{
			Benchmark: b.Name,
			Levels:    levels,
			RelTime: map[string]float64{
				"Cilk": meanMakespan(cilkRS) / eewaT,
				"WATS": meanMakespan(watsRS) / eewaT,
				"EEWA": 1.0,
			},
		})
	}
	return rows, nil
}

// ModalLevels converts the most frequent census (over batches 1..n-1 —
// batch 0 is always all-F0 warmup) into a contiguous per-core level
// assignment, the way the paper freezes "the most often used frequency
// configurations in different batches" for Fig. 7.
func ModalLevels(censuses [][]int) []int {
	counts := map[string]int{}
	keyOf := func(c []int) string { return fmt.Sprint(c) }
	var keys []string
	byKey := map[string][]int{}
	for i, c := range censuses {
		if i == 0 && len(censuses) > 1 {
			continue
		}
		k := keyOf(c)
		if counts[k] == 0 {
			keys = append(keys, k)
		}
		counts[k]++
		byKey[k] = c
	}
	sort.SliceStable(keys, func(i, j int) bool { return counts[keys[i]] > counts[keys[j]] })
	modal := byKey[keys[0]]
	var levels []int
	for lvl, n := range modal {
		for i := 0; i < n; i++ {
			levels = append(levels, lvl)
		}
	}
	return levels
}

// --- Fig. 8 ------------------------------------------------------------

// Fig8Result is the per-batch frequency census of SHA-1 under EEWA.
type Fig8Result struct {
	Freqs  machine.FreqLadder
	Census [][]int // [batch][level]
}

// Fig8 runs SHA-1 under EEWA and returns the per-batch core counts at
// each frequency. The paper's trace: batch 1 entirely at 2.5 GHz; from
// batch 3 onward 5 cores at 2.5 GHz and 11 at 0.8 GHz.
func Fig8(cfg machine.Config, seed uint64) (*Fig8Result, error) {
	b, err := workloads.ByName("sha1")
	if err != nil {
		return nil, err
	}
	rs, err := runPolicy(cfg, b, func() sched.Policy { return sched.NewEEWA() }, []uint64{seed})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Freqs: cfg.Freqs, Census: rs[0].BatchCensus}, nil
}

// --- Fig. 9 ------------------------------------------------------------

// Fig9Point is one (core count, policy) cell of the scalability study.
type Fig9Point struct {
	Cores      int
	Policy     string
	Time       float64
	Energy     float64
	NormTime   float64 // vs Cilk at the same core count
	NormEnergy float64
}

// Fig9 runs DMC under the three policies at 4, 8, 12 and 16 cores.
// The paper's shape: at 4 cores EEWA saves nothing (every core is
// needed at full speed) and costs ≈0.3 % time; savings grow with the
// core count.
func Fig9(seeds []uint64) ([]Fig9Point, error) {
	b, err := workloads.ByName("dmc")
	if err != nil {
		return nil, err
	}
	var out []Fig9Point
	for _, cores := range []int{4, 8, 12, 16} {
		cfg := machine.Generic(cores)
		mks := []struct {
			name string
			mk   func() sched.Policy
		}{
			{"Cilk", func() sched.Policy { return sched.NewCilk() }},
			{"Cilk-D", func() sched.Policy { return sched.NewCilkD(len(cfg.Freqs)) }},
			{"EEWA", func() sched.Policy { return sched.NewEEWA() }},
		}
		var cilkT, cilkE float64
		for _, m := range mks {
			rs, err := runPolicy(cfg, b, m.mk, seeds)
			if err != nil {
				return nil, err
			}
			t, e := meanMakespan(rs), meanEnergy(rs)
			if m.name == "Cilk" {
				cilkT, cilkE = t, e
			}
			out = append(out, Fig9Point{
				Cores: cores, Policy: m.name,
				Time: t, Energy: e,
				NormTime: t / cilkT, NormEnergy: e / cilkE,
			})
		}
	}
	return out, nil
}

// --- Table III ----------------------------------------------------------

// Table3Row is one benchmark's overhead accounting.
type Table3Row struct {
	Benchmark string
	// ExecTime is the simulated execution time (seconds).
	ExecTime float64
	// SimOverhead is the simulated adjuster charge included in
	// ExecTime (seconds).
	SimOverhead float64
	// HostOverhead is the measured wall time of the actual CC-table +
	// Algorithm 1 implementation across the run.
	HostOverhead time.Duration
	// Percent is SimOverhead / ExecTime × 100 — the paper's last
	// column, which stays under 2 %.
	Percent float64
}

// Table3 measures the frequency-adjuster overhead for every benchmark
// under EEWA.
func Table3(cfg machine.Config, seed uint64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, b := range workloads.All() {
		rs, err := runPolicy(cfg, b, func() sched.Policy { return sched.NewEEWA() }, []uint64{seed})
		if err != nil {
			return nil, err
		}
		r := rs[0]
		rows = append(rows, Table3Row{
			Benchmark:    b.Name,
			ExecTime:     r.Makespan,
			SimOverhead:  r.AdjusterSimTime,
			HostOverhead: r.AdjusterHostTime,
			Percent:      100 * r.AdjusterSimTime / r.Makespan,
		})
	}
	return rows, nil
}

// --- Memory-bound extension (§IV-D future work) ---------------------------

// MemBoundResult compares the handling of a memory-bound application.
type MemBoundResult struct {
	// Cilk is the baseline; Fallback is the paper's §IV-D behaviour
	// (detect and revert to classic stealing); MemAware is the
	// future-work extension (calibrate + frequency-response model).
	Cilk, Fallback, MemAware *sched.Result
}

// MemBound runs the synthetic memory-bound workload under the three
// disciplines. Expected shape: Fallback saves only what idle
// down-clocking yields; MemAware finds a model-corrected configuration
// and saves substantially more at unchanged makespan.
func MemBound(cfg machine.Config, seeds []uint64) (*MemBoundResult, error) {
	b := workloads.MemoryBound()
	out := &MemBoundResult{}
	runs := []struct {
		mk  func() sched.Policy
		dst **sched.Result
	}{
		{func() sched.Policy { return sched.NewCilk() }, &out.Cilk},
		{func() sched.Policy { return sched.NewEEWA() }, &out.Fallback},
		{func() sched.Policy {
			e := sched.NewEEWA()
			e.MemAware = true
			return e
		}, &out.MemAware},
	}
	for _, r := range runs {
		rs, err := runPolicy(cfg, b, r.mk, seeds)
		if err != nil {
			return nil, err
		}
		// Keep the first seed's full result; average scalar fields.
		res := *rs[0]
		res.Makespan = meanMakespan(rs)
		res.Energy = meanEnergy(rs)
		*r.dst = &res
	}
	return out, nil
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// AblationRow compares EEWA variants on one benchmark.
type AblationRow struct {
	Benchmark string
	// Energy maps variant → mean energy (J); Time maps variant →
	// mean makespan (s).
	Energy map[string]float64
	Time   map[string]float64
}

// AblationSearch compares Algorithm 1 against the exhaustive optimum
// and the greedy heuristic as EEWA's tuple search.
func AblationSearch(cfg machine.Config, seeds []uint64) ([]AblationRow, error) {
	variants := map[string]func() sched.Policy{
		"backtracking": func() sched.Policy { return sched.NewEEWA() },
		"exhaustive": func() sched.Policy {
			e := sched.NewEEWA()
			e.SearchFn = func(t *cctable.Table, m int) ([]int, bool) { return t.ExhaustiveSearch(m, cfg.Power) }
			return e
		},
		"greedy": func() sched.Policy {
			e := sched.NewEEWA()
			e.SearchFn = func(t *cctable.Table, m int) ([]int, bool) { return t.GreedySearch(m) }
			return e
		},
	}
	return runAblation(cfg, seeds, variants)
}

// AblationGranularity compares the granularity-aware CC table (our
// default) against the paper's divisible-load formula.
func AblationGranularity(cfg machine.Config, seeds []uint64) ([]AblationRow, error) {
	variants := map[string]func() sched.Policy{
		"granular": func() sched.Policy { return sched.NewEEWA() },
		"divisible": func() sched.Policy {
			e := sched.NewEEWA()
			e.DivisibleCC = true
			return e
		},
	}
	return runAblation(cfg, seeds, variants)
}

// AblationPackages quantifies how much of EEWA's saving comes from
// package-aligned c-groups by re-running Fig. 6 on a machine with
// per-core voltage planes.
func AblationPackages(seeds []uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, b := range workloads.All() {
		row := AblationRow{Benchmark: b.Name, Energy: map[string]float64{}, Time: map[string]float64{}}
		for name, cfg := range map[string]machine.Config{
			"coupled":   machine.Opteron16(),
			"uncoupled": machine.Uncoupled(machine.Opteron16()),
		} {
			rs, err := runPolicy(cfg, b, func() sched.Policy { return sched.NewEEWA() }, seeds)
			if err != nil {
				return nil, err
			}
			row.Energy[name] = meanEnergy(rs)
			row.Time[name] = meanMakespan(rs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runAblation(cfg machine.Config, seeds []uint64, variants map[string]func() sched.Policy) ([]AblationRow, error) {
	var rows []AblationRow
	for _, b := range workloads.All() {
		row := AblationRow{Benchmark: b.Name, Energy: map[string]float64{}, Time: map[string]float64{}}
		for name, mk := range variants {
			rs, err := runPolicy(cfg, b, mk, seeds)
			if err != nil {
				return nil, err
			}
			row.Energy[name] = meanEnergy(rs)
			row.Time[name] = meanMakespan(rs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
