package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sched"
)

// RenderFig1 formats the four-schedule example as an aligned table.
func RenderFig1(schedules []Fig1Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — four schedules of γ0 (2t) and γ1 (t) on a DVFS dual-core (t = 1 s)\n")
	fmt.Fprintf(&b, "%-20s %12s %12s\n", "schedule", "time (t)", "energy (J)")
	for _, s := range schedules {
		fmt.Fprintf(&b, "%-20s %12.2f %12.1f\n", s.Name, s.Time, s.Energy)
	}
	return b.String()
}

// RenderFig6 formats the normalized time/energy rows.
func RenderFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — normalized execution time and energy (Cilk = 1.00), 16 cores\n")
	fmt.Fprintf(&b, "%-8s", "bench")
	for _, p := range Fig6Policies {
		fmt.Fprintf(&b, " %10s", p+" t")
	}
	for _, p := range Fig6Policies {
		fmt.Fprintf(&b, " %10s", p+" E")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Benchmark)
		for _, p := range Fig6Policies {
			fmt.Fprintf(&b, " %10.3f", r.NormTime[p])
		}
		for _, p := range Fig6Policies {
			fmt.Fprintf(&b, " %10.3f", r.NormEnergy[p])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig7 formats the asymmetric-machine comparison.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — execution time on frozen asymmetric configs (EEWA = 1.00)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s   %s\n", "bench", "Cilk", "WATS", "EEWA", "frozen config (cores/level)")
	for _, r := range rows {
		census := map[int]int{}
		for _, l := range r.Levels {
			census[l]++
		}
		var cfg []string
		for lvl := 0; lvl < 8; lvl++ {
			if census[lvl] > 0 {
				cfg = append(cfg, fmt.Sprintf("%d@F%d", census[lvl], lvl))
			}
		}
		fmt.Fprintf(&b, "%-8s %10.2f %10.2f %10.2f   %s\n",
			r.Benchmark, r.RelTime["Cilk"], r.RelTime["WATS"], r.RelTime["EEWA"], strings.Join(cfg, " "))
	}
	return b.String()
}

// RenderFig8 formats the per-batch frequency census.
func RenderFig8(res *Fig8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — cores per frequency in the %d batches of SHA-1 (EEWA)\n", len(res.Census))
	fmt.Fprintf(&b, "%-8s", "batch")
	for _, f := range res.Freqs {
		fmt.Fprintf(&b, " %8.1fGHz", f)
	}
	b.WriteString("\n")
	for bi, c := range res.Census {
		fmt.Fprintf(&b, "%-8d", bi+1)
		for _, n := range c {
			fmt.Fprintf(&b, " %11d", n)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig9 formats the scalability table.
func RenderFig9(points []Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — DMC on 4/8/12/16 cores (normalized to Cilk at each size)\n")
	fmt.Fprintf(&b, "%-6s %-8s %12s %12s %10s %10s\n", "cores", "policy", "time (s)", "energy (J)", "norm t", "norm E")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d %-8s %12.4f %12.1f %10.3f %10.3f\n",
			p.Cores, p.Policy, p.Time, p.Energy, p.NormTime, p.NormEnergy)
	}
	return b.String()
}

// RenderTable3 formats the overhead table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — adjuster overhead under EEWA\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %16s %10s\n", "bench", "exec (ms)", "sim ovh (ms)", "host ovh (µs)", "percent")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %14.1f %14.1f %16.1f %9.2f%%\n",
			r.Benchmark, r.ExecTime*1e3, r.SimOverhead*1e3,
			float64(r.HostOverhead.Microseconds()), r.Percent)
	}
	return b.String()
}

// RenderMemBound formats the memory-bound extension comparison.
func RenderMemBound(res *MemBoundResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory-bound application (§IV-D): fallback vs frequency-response extension\n")
	fmt.Fprintf(&b, "%-24s %12s %12s %10s\n", "discipline", "time (s)", "energy (J)", "saving")
	rows := []struct {
		name string
		r    *sched.Result
	}{
		{"Cilk", res.Cilk},
		{"EEWA (paper fallback)", res.Fallback},
		{"EEWA (MemAware ext.)", res.MemAware},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-24s %12.4f %12.1f %9.1f%%\n",
			row.name, row.r.Makespan, row.r.Energy, 100*(1-row.r.Energy/res.Cilk.Energy))
	}
	return b.String()
}

// RenderAblation formats an ablation comparison.
func RenderAblation(title string, rows []AblationRow, variants []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s", "bench")
	for _, v := range variants {
		fmt.Fprintf(&b, " %12s", v+" E(J)")
	}
	for _, v := range variants {
		fmt.Fprintf(&b, " %12s", v+" t(s)")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Benchmark)
		for _, v := range variants {
			fmt.Fprintf(&b, " %12.1f", r.Energy[v])
		}
		for _, v := range variants {
			fmt.Fprintf(&b, " %12.4f", r.Time[v])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// bar renders a horizontal bar of the given relative length (1.0 =
// width characters), annotated with the value.
func bar(value, scale float64, width int, glyph byte) string {
	n := int(value / scale * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat(string(glyph), n)
}

// RenderFig6Chart draws the normalized-energy comparison as grouped
// horizontal bars — the visual shape of the paper's Fig. 6.
func RenderFig6Chart(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 (chart) — normalized energy, bar width = Cilk baseline\n")
	const width = 50
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\n", r.Benchmark)
		for _, p := range Fig6Policies {
			v := r.NormEnergy[p]
			fmt.Fprintf(&b, "  %-7s |%-*s| %.3f\n", p, width, bar(v, 1.0, width, '#'), v)
		}
	}
	return b.String()
}

// RenderFig9Chart draws the scalability sweep: one bar row per
// (cores, policy) of normalized energy.
func RenderFig9Chart(points []Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 (chart) — DMC normalized energy by machine size\n")
	const width = 50
	for _, p := range points {
		fmt.Fprintf(&b, "%2d cores %-7s |%-*s| %.3f\n",
			p.Cores, p.Policy, width, bar(p.NormEnergy, 1.0, width, '#'), p.NormEnergy)
	}
	return b.String()
}
