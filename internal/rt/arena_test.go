package rt

import (
	"sync/atomic"
	"testing"

	"repro/internal/machine"
)

// TestArenaBatches drives the runtime for several batches whose slabs
// all come from one TaskArena, with the internal/check invariants on:
// task conservation must hold even though every batch's Task structs
// live in recycled memory. CI runs this under -race.
func TestArenaBatches(t *testing.T) {
	rt, err := New(Config{
		Workers:    4,
		Machine:    machine.Generic(4),
		Policy:     PolicyEEWA,
		Seed:       7,
		Invariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var arena TaskArena
	var ran atomic.Int64
	const batches, per = 6, 40
	for b := 0; b < batches; b++ {
		buf := arena.Get(per)
		if len(buf) != 0 || cap(buf) < per {
			t.Fatalf("Get(%d): len %d cap %d", per, len(buf), cap(buf))
		}
		for i := 0; i < per; i++ {
			class := "even"
			if i%2 == 1 {
				class = "odd"
			}
			buf = append(buf, Task{Class: class, Run: func() {
				ran.Add(1)
				spinWork(200 + 400*(ran.Load()%3))
			}})
		}
		stats := rt.RunBatch(buf)
		if stats.Tasks != per {
			t.Fatalf("batch %d: ran %d tasks, want %d", b, stats.Tasks, per)
		}
		arena.Put(buf)
	}
	if got := ran.Load(); got != batches*per {
		t.Fatalf("payloads ran %d times, want %d", got, batches*per)
	}
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("invariant violations with arena-backed batches: %v", vs)
	}
}

// TestArenaPutDropsPayloads checks Put zeroes the used prefix so pooled
// slabs do not pin task closures.
func TestArenaPutDropsPayloads(t *testing.T) {
	var arena TaskArena
	buf := arena.Get(8)
	buf = append(buf, Task{Class: "x", Run: func() {}, Cancelled: func() bool { return false }})
	full := buf[:cap(buf)]
	arena.Put(buf)
	if full[0].Run != nil || full[0].Cancelled != nil || full[0].Class != "" {
		t.Fatal("Put left a payload reference in the slab")
	}
}

// TestArenaGrows checks a lease larger than any pooled slab still
// honours the capacity contract.
func TestArenaGrows(t *testing.T) {
	var arena TaskArena
	arena.Put(arena.Get(1))
	big := arena.Get(4 * arenaMinCap)
	if cap(big) < 4*arenaMinCap {
		t.Fatalf("cap %d < requested %d", cap(big), 4*arenaMinCap)
	}
}

// spinWork burns roughly n loop iterations of CPU so payloads have
// non-zero measurable duration without timers.
func spinWork(n int64) {
	x := uint64(n)
	for i := int64(0); i < n*50; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	sink.Store(x)
}

var sink atomic.Uint64
