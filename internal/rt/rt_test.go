package rt

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

func testConfig(workers int, p Policy) Config {
	return Config{
		Workers: workers,
		Machine: machine.Opteron16(),
		Policy:  p,
		Seed:    7,
	}
}

// spinFor burns CPU for roughly d (wall-clock busy loop — payloads
// must be CPU-bound for the throttle emulation to mean anything).
func spinFor(d time.Duration) func() {
	return func() {
		end := time.Now().Add(d)
		x := uint64(1)
		for time.Now().Before(end) {
			for i := 0; i < 1000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
			}
		}
		_ = x
	}
}

// makeBatch builds a two-class batch: a few chunky tasks and many tiny
// ones, counting executions.
func makeBatch(counter *atomic.Int64, heavy, light int, heavyDur, lightDur time.Duration) []Task {
	var tasks []Task
	for i := 0; i < heavy; i++ {
		run := spinFor(heavyDur)
		tasks = append(tasks, Task{Class: "heavy", Run: func() { run(); counter.Add(1) }})
	}
	for i := 0; i < light; i++ {
		run := spinFor(lightDur)
		tasks = append(tasks, Task{Class: "light", Run: func() { run(); counter.Add(1) }})
	}
	return tasks
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Workers: 0, Machine: machine.Opteron16()}); err == nil {
		t.Error("zero workers should error")
	}
	bad := machine.Opteron16()
	bad.Freqs = nil
	if _, err := New(Config{Workers: 2, Machine: bad}); err == nil {
		t.Error("invalid machine should error")
	}
}

func TestAllTasksExecuteOnce(t *testing.T) {
	for _, p := range Policies() {
		t.Run(p.String(), func(t *testing.T) {
			r, err := New(testConfig(4, p))
			if err != nil {
				t.Fatal(err)
			}
			var count atomic.Int64
			for b := 0; b < 3; b++ {
				tasks := makeBatch(&count, 2, 14, 2*time.Millisecond, 200*time.Microsecond)
				bs := r.RunBatch(tasks)
				if bs.Tasks != 16 {
					t.Fatalf("batch %d reported %d tasks", b, bs.Tasks)
				}
				if bs.Wall <= 0 || bs.Energy <= 0 {
					t.Fatalf("batch %d: wall %v energy %g", b, bs.Wall, bs.Energy)
				}
			}
			if got := count.Load(); got != 48 {
				t.Fatalf("%d task executions, want 48", got)
			}
			st := r.Stats()
			if st.Batches != 3 || st.Tasks != 48 {
				t.Errorf("stats %+v", st)
			}
		})
	}
}

func TestEmptyBatch(t *testing.T) {
	r, err := New(testConfig(2, PolicyCilk))
	if err != nil {
		t.Fatal(err)
	}
	bs := r.RunBatch(nil)
	if bs.Tasks != 0 || bs.Wall != 0 {
		t.Errorf("empty batch stats %+v", bs)
	}
}

func TestCilkStaysFullSpeed(t *testing.T) {
	r, err := New(testConfig(4, PolicyCilk))
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	for b := 0; b < 3; b++ {
		r.RunBatch(makeBatch(&count, 2, 14, time.Millisecond, 100*time.Microsecond))
		census := r.Census()
		if census[0] != 4 {
			t.Fatalf("batch %d census %v — Cilk must stay at F0", b, census)
		}
	}
}

func TestEEWADownscalesSkewedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent in -short mode")
	}
	// 8 workers, 2 chunky tasks + many tiny ones: after profiling, the
	// adjuster should put the light class on slow virtual cores.
	r, err := New(testConfig(8, PolicyEEWA))
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	downscaled := false
	for b := 0; b < 5; b++ {
		bs := r.RunBatch(makeBatch(&count, 2, 30, 8*time.Millisecond, 150*time.Microsecond))
		if b >= 1 {
			slow := 0
			for lvl := 1; lvl < len(bs.Census); lvl++ {
				slow += bs.Census[lvl]
			}
			if slow > 0 {
				downscaled = true
			}
		}
	}
	if !downscaled {
		t.Error("EEWA never downscaled any worker on a skewed workload")
	}
	// First batch must have been all-fast.
}

func TestFirstBatchAllFast(t *testing.T) {
	r, err := New(testConfig(4, PolicyEEWA))
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	bs := r.RunBatch(makeBatch(&count, 1, 7, time.Millisecond, 100*time.Microsecond))
	if bs.Census[0] != 4 {
		t.Errorf("first batch census %v, want all at F0", bs.Census)
	}
}

func TestStealsHappen(t *testing.T) {
	r, err := New(testConfig(4, PolicyCilk))
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	total := 0
	for b := 0; b < 3; b++ {
		bs := r.RunBatch(makeBatch(&count, 4, 28, time.Millisecond, 100*time.Microsecond))
		total += bs.Steals
	}
	if total == 0 {
		t.Error("no steals across 3 batches of 32 tasks on 4 workers")
	}
}

func TestEnergyAccountingSane(t *testing.T) {
	r, err := New(testConfig(4, PolicyCilk))
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	bs := r.RunBatch(makeBatch(&count, 2, 6, time.Millisecond, 500*time.Microsecond))
	// Energy must at least cover base power over the wall time and at
	// most full machine power over the wall time.
	pm := r.cfg.Machine.Power
	lo := pm.Base * bs.Wall.Seconds()
	hi := (pm.Base + float64(r.cfg.Workers)*pm.CorePower(machine.Busy, 0, 0, r.ladder)) * bs.Wall.Seconds() * 1.01
	if bs.Energy < lo || bs.Energy > hi {
		t.Errorf("energy %g outside [%g, %g]", bs.Energy, lo, hi)
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		PolicyCilk:  "cilk",
		PolicyCilkD: "cilk-d",
		PolicyWATS:  "wats",
		PolicyEEWA:  "eewa",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d stringifies as %q, want %q", int(p), p.String(), name)
		}
		back, err := ParsePolicy(name)
		if err != nil || back != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, back, err, p)
		}
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should stringify")
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy should reject unknown names")
	}
}

func TestWATSFrozenLevels(t *testing.T) {
	// WATS must run on its frozen asymmetric configuration from the
	// very first batch and never re-tune it.
	r, err := New(testConfig(6, PolicyWATS))
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	var first []int
	for b := 0; b < 3; b++ {
		bs := r.RunBatch(makeBatch(&count, 2, 10, time.Millisecond, 100*time.Microsecond))
		if b == 0 {
			first = bs.Levels
			slow := 0
			for _, l := range bs.Levels {
				if l > 0 {
					slow++
				}
			}
			if slow == 0 {
				t.Fatal("WATS configuration has no slow workers")
			}
			continue
		}
		for w, l := range bs.Levels {
			if l != first[w] {
				t.Fatalf("batch %d: worker %d moved to level %d (frozen at %d)", b, w, l, first[w])
			}
		}
	}
}

func TestCilkDDownclocksWhenDry(t *testing.T) {
	// With far more workers than tasks, some workers run dry and
	// Cilk-D's out-of-work action must be cheaper than Cilk's spin:
	// same workload, same seed, lower modeled energy. The dry spell
	// must be long (20 ms) so it dominates goroutine startup lag,
	// which the accounting bills as halt for both policies — under
	// -race that lag is large enough to swamp a short batch's margin.
	run := func(p Policy) float64 {
		r, err := New(testConfig(8, p))
		if err != nil {
			t.Fatal(err)
		}
		var count atomic.Int64
		var energy float64
		for b := 0; b < 2; b++ {
			bs := r.RunBatch(makeBatch(&count, 1, 1, 20*time.Millisecond, 100*time.Microsecond))
			energy += bs.Energy
		}
		return energy
	}
	cilk, cilkd := run(PolicyCilk), run(PolicyCilkD)
	if cilkd >= cilk {
		t.Errorf("Cilk-D energy %.3f J not below Cilk %.3f J despite idle workers", cilkd, cilk)
	}
}

func TestEnergyIdentityPerWorker(t *testing.T) {
	// Satellite of the invariant harness: with Invariants on, every
	// batch must decompose each worker's wall time exactly —
	// Busy + Search + Dry + Halt − Residual = Wall — and a healthy
	// runtime must record zero violations across all policies.
	for _, p := range Policies() {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(4, p)
			cfg.Invariants = true
			r, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var count atomic.Int64
			for b := 0; b < 3; b++ {
				bs := r.RunBatch(makeBatch(&count, 2, 10, 2*time.Millisecond, 200*time.Microsecond))
				if len(bs.Workers) != 4 {
					t.Fatalf("batch %d: %d worker decompositions, want 4", b, len(bs.Workers))
				}
				wall := bs.Wall.Seconds()
				var resid float64
				for w, ws := range bs.Workers {
					got := ws.Busy + ws.Search + ws.Dry + ws.Halt - ws.Residual
					if diff := got - wall; diff > 1e-9 || diff < -1e-9 {
						t.Errorf("batch %d worker %d: identity off by %g s (busy %g search %g dry %g halt %g resid %g wall %g)",
							b, w, diff, ws.Busy, ws.Search, ws.Dry, ws.Halt, ws.Residual, wall)
					}
					if ws.Residual < 0 {
						t.Errorf("batch %d worker %d: negative residual %g", b, w, ws.Residual)
					}
					resid += ws.Residual
				}
				if diff := resid - bs.Residual; diff > 1e-12 || diff < -1e-12 {
					t.Errorf("batch %d: summed residual %g != reported %g", b, resid, bs.Residual)
				}
			}
			if vs := r.Violations(); len(vs) != 0 {
				t.Errorf("healthy runtime recorded violations: %v", vs)
			}
		})
	}
}

func TestResidualExportedToObs(t *testing.T) {
	// The residual counter must exist in the registry and accumulate
	// the per-batch residual sums (typically zero, but registered and
	// exact either way).
	reg := obs.NewRegistry()
	cfg := testConfig(2, PolicyEEWA)
	cfg.Obs = reg
	cfg.Invariants = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	var want float64
	for b := 0; b < 2; b++ {
		bs := r.RunBatch(makeBatch(&count, 1, 6, 1*time.Millisecond, 100*time.Microsecond))
		want += bs.Residual
	}
	got := reg.Counter("eewa_rt_energy_residual_seconds_total", "").Value()
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("residual counter = %g, want %g", got, want)
	}
	if vs := r.Violations(); len(vs) != 0 {
		t.Errorf("violations recorded: %v", vs)
		if reg.CounterVec("eewa_rt_invariant_violations_total", "", "invariant").
			With(vs[0].Invariant).Value() == 0 {
			t.Error("violation recorded on runtime but not counted on metric")
		}
	}
}

// A task whose Cancelled hook reports true must be acquired exactly
// once but never run: conservation holds, the skip is visible in
// BatchStats.Cancelled, and the rest of the batch is unaffected.
func TestRunBatchCancelledTasksSkipPayload(t *testing.T) {
	cfg := testConfig(4, PolicyCilk)
	cfg.Invariants = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ran, skipped atomic.Int64
	var tasks []Task
	for i := 0; i < 32; i++ {
		cancel := i%4 == 0
		tasks = append(tasks, Task{
			Class: "mix",
			Run:   func() { ran.Add(1) },
			Cancelled: func() bool {
				if cancel {
					skipped.Add(1)
				}
				return cancel
			},
		})
	}
	bs := rt.RunBatch(tasks)
	if got := ran.Load(); got != 24 {
		t.Errorf("ran %d payloads, want 24", got)
	}
	if bs.Cancelled != 8 {
		t.Errorf("BatchStats.Cancelled = %d, want 8", bs.Cancelled)
	}
	if vs := rt.Violations(); len(vs) != 0 {
		t.Errorf("invariant violations with cancellation: %v", vs)
	}
}

// Hooks fire once per non-empty batch, on the caller's goroutine, with
// a stable batch index and the same stats RunBatch returns.
func TestRunBatchHooks(t *testing.T) {
	cfg := testConfig(2, PolicyCilk)
	type startRec struct{ batch, tasks int }
	var starts []startRec
	var ends []int
	var endStats []BatchStats
	cfg.Hooks = Hooks{
		BatchStart: func(batch, tasks int) { starts = append(starts, startRec{batch, tasks}) },
		BatchEnd:   func(batch int, stats BatchStats) { ends = append(ends, batch); endStats = append(endStats, stats) },
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	rt.RunBatch(makeBatch(&n, 1, 3, time.Millisecond, 100*time.Microsecond))
	rt.RunBatch(nil) // empty: no hooks
	bs := rt.RunBatch(makeBatch(&n, 1, 3, time.Millisecond, 100*time.Microsecond))
	if len(starts) != 2 || len(ends) != 2 {
		t.Fatalf("hooks fired %d/%d times, want 2/2", len(starts), len(ends))
	}
	if starts[0] != (startRec{0, 4}) || starts[1] != (startRec{1, 4}) {
		t.Errorf("BatchStart records = %+v", starts)
	}
	if ends[0] != 0 || ends[1] != 1 {
		t.Errorf("BatchEnd indices = %v", ends)
	}
	if endStats[1].Tasks != bs.Tasks || endStats[1].Wall != bs.Wall {
		t.Errorf("BatchEnd stats diverge from RunBatch return")
	}
}
