package rt

import "sync"

// TaskArena recycles the []Task slabs a submission layer builds each
// batch. Batch formation is the live runtime's steadiest allocation
// source — every flush materializes a fresh slice of Task structs whose
// closures die at the barrier — so callers that run many batches (the
// serve layer, the benchmark drivers) lease the slab instead:
//
//	buf := arena.Get(n)          // len 0, cap ≥ n
//	buf = append(buf, rt.Task{...})
//	stats := rt.RunBatch(buf)
//	arena.Put(buf)               // after batch outcomes are delivered
//
// Put zeroes the used prefix so the pooled slab drops its payload
// closures (and whatever they captured) immediately rather than at the
// arena's whim. A slab must not be Put while the batch that used it is
// still running: RunBatch takes *Task pointers into it.
//
// The zero TaskArena is ready to use and safe for concurrent Get/Put
// (sync.Pool caches slabs per-P underneath).
type TaskArena struct {
	pool sync.Pool // holds *[]Task
}

// arenaMinCap avoids pooling toy slabs that would be re-grown by the
// first real batch.
const arenaMinCap = 64

// Get leases a zero-length slab with capacity at least n.
func (a *TaskArena) Get(n int) []Task {
	if v := a.pool.Get(); v != nil {
		s := *(v.(*[]Task))
		if cap(s) >= n {
			return s[:0]
		}
		// Too small for this batch: let it go rather than pooling two
		// sizes — steady-state batch sizes converge quickly.
	}
	if n < arenaMinCap {
		n = arenaMinCap
	}
	return make([]Task, 0, n)
}

// Put returns a slab leased by Get, zeroing the elements the caller
// appended so the pool does not pin their closures. The caller must not
// touch s afterwards.
func (a *TaskArena) Put(s []Task) {
	for i := range s {
		s[i] = Task{}
	}
	s = s[:0]
	a.pool.Put(&s)
}
