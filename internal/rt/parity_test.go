package rt

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/task"
)

// recordingPolicy wraps any policy.Policy and captures every plan it
// hands out — engine-agnostic, so the same wrapper observes both the
// discrete-event simulator and the live runtime.
type recordingPolicy struct {
	inner policy.Policy
	plans []policy.Plan
}

func (p *recordingPolicy) Name() string { return p.inner.Name() }

func (p *recordingPolicy) BeginBatch(bi int, prof *profile.Profiler, env *policy.Env) policy.Plan {
	plan := p.inner.BeginBatch(bi, prof, env)
	p.plans = append(p.plans, plan)
	return plan
}

func (p *recordingPolicy) OutOfWork(c int) policy.OutOfWorkAction { return p.inner.OutOfWork(c) }

// paritySnapshot pins the workload profile both engines plan from. The
// numbers are chosen so the adjuster has a clearly feasible multi-group
// configuration on 8 cores: the heavy class needs a couple of fast
// cores, the light class fits comfortably on slow ones.
func paritySnapshot(cfg machine.Config) *profile.Snapshot {
	return &profile.Snapshot{
		Freqs: append([]float64(nil), cfg.Freqs...),
		T:     4e-3,
		Classes: []profile.Class{
			{Name: "heavy", Count: 4, AvgWork: 2e-3, MaxWork: 2.2e-3},
			{Name: "light", Count: 24, AvgWork: 2e-4, MaxWork: 2.4e-4},
		},
	}
}

// parityBatchSim builds the simulator's view of the batch: one task
// per live payload, same classes, same order.
func parityBatchSim() *task.Workload {
	var tasks []task.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, task.Task{Class: "heavy", Work: 2e-3})
	}
	for i := 0; i < 24; i++ {
		tasks = append(tasks, task.Task{Class: "light", Work: 2e-4})
	}
	for i := range tasks {
		tasks[i].ID = i
	}
	return &task.Workload{Name: "parity", Batches: []task.Batch{{Tasks: tasks}}}
}

// parityBatchLive is the live twin: identical classes and order, real
// (tiny) payloads.
func parityBatchLive() []Task {
	var tasks []Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, Task{Class: "heavy", Run: spinFor(400 * time.Microsecond)})
	}
	for i := 0; i < 24; i++ {
		tasks = append(tasks, Task{Class: "light", Run: spinFor(50 * time.Microsecond)})
	}
	return tasks
}

// TestSimLiveEEWAParity runs an identical batch-structured workload
// through the discrete-event simulator and the live goroutine runtime
// under EEWA and asserts the *decisions* match exactly: the chosen
// per-core frequency assignment, the k-tuple, the task-class→c-group
// allocation and each class's placement cores. Timing differs between
// the engines by construction (simulated seconds vs. measured wall
// time), so the profile both plans derive from is pinned with EEWA's
// offline-snapshot mode — what the test then proves is that the two
// engines execute the same policy core, which is the refactor's
// acceptance bar.
func TestSimLiveEEWAParity(t *testing.T) {
	const workers = 8
	cfg := machine.Opteron16()
	cfg.Cores = workers
	snap := paritySnapshot(cfg)
	if err := snap.Validate(cfg.Freqs); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}

	// Simulator run.
	simEEWA := policy.NewEEWA()
	simEEWA.Offline = snap
	simRec := &recordingPolicy{inner: simEEWA}
	if _, err := sched.Run(cfg, parityBatchSim(), simRec, sched.DefaultParams()); err != nil {
		t.Fatalf("sim run: %v", err)
	}

	// Live run.
	liveEEWA := policy.NewEEWA()
	liveEEWA.Offline = snap
	liveRec := &recordingPolicy{inner: liveEEWA}
	r, err := New(Config{Workers: workers, Machine: cfg, Impl: liveRec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bs := r.RunBatch(parityBatchLive())
	if bs.Tasks != 28 {
		t.Fatalf("live batch executed %d tasks, want 28", bs.Tasks)
	}

	if len(simRec.plans) != 1 || len(liveRec.plans) != 1 {
		t.Fatalf("plan counts sim=%d live=%d, want 1 each", len(simRec.plans), len(liveRec.plans))
	}
	simPlan, livePlan := simRec.plans[0], liveRec.plans[0]

	// Both engines must have invoked the adjuster (offline profile →
	// configured before the first task ran) and chosen a non-trivial
	// configuration.
	if !simPlan.Adjusted || !livePlan.Adjusted {
		t.Fatalf("adjusted: sim=%v live=%v, want both", simPlan.Adjusted, livePlan.Adjusted)
	}
	if simPlan.Assignment.U() < 2 {
		t.Fatalf("expected a multi-group configuration, got %d group(s) %v",
			simPlan.Assignment.U(), simPlan.Assignment.Tuple)
	}

	// Frequency assignment: identical level for every core.
	for c := 0; c < workers; c++ {
		if s, l := simPlan.Assignment.FreqOf(c), livePlan.Assignment.FreqOf(c); s != l {
			t.Errorf("core %d: sim level %d, live level %d", c, s, l)
		}
	}
	if !reflect.DeepEqual(simPlan.Assignment.Tuple, livePlan.Assignment.Tuple) {
		t.Errorf("tuples differ: sim %v live %v", simPlan.Assignment.Tuple, livePlan.Assignment.Tuple)
	}

	// Class→c-group allocation and per-class placement cores.
	for _, class := range []string{"heavy", "light", "unknown-class"} {
		sg := simPlan.Assignment.GroupOfClass(class)
		lg := livePlan.Assignment.GroupOfClass(class)
		if sg != lg {
			t.Errorf("class %q: sim group %d, live group %d", class, sg, lg)
			continue
		}
		if sl, ll := simPlan.Assignment.Groups[sg].Level, livePlan.Assignment.Groups[lg].Level; sl != ll {
			t.Errorf("class %q: sim group level %d, live group level %d", class, sl, ll)
		}
		if !reflect.DeepEqual(simPlan.Assignment.PlacementCores(class), livePlan.Assignment.PlacementCores(class)) {
			t.Errorf("class %q: placement cores differ: sim %v live %v",
				class, simPlan.Assignment.PlacementCores(class), livePlan.Assignment.PlacementCores(class))
		}
	}

	// The live runtime must have actually applied the assignment.
	for w := 0; w < workers; w++ {
		if bs.Levels[w] != livePlan.Assignment.FreqOf(w) {
			t.Errorf("worker %d ran at level %d, plan says %d", w, bs.Levels[w], livePlan.Assignment.FreqOf(w))
		}
	}

	// And the placement discipline the engines executed is the shared
	// Placer: replay it and check it is deterministic and in-bounds
	// for the agreed plan.
	pl := policy.NewPlacer(&simPlan, workers)
	seen := map[string]bool{}
	for _, class := range []string{"heavy", "heavy", "light", "light"} {
		c, g := pl.Place(class)
		if g != simPlan.Assignment.GroupOfClass(class) {
			t.Errorf("placer sent %q to group %d, allocation says %d", class, g, simPlan.Assignment.GroupOfClass(class))
		}
		found := false
		for _, pc := range simPlan.Assignment.PlacementCores(class) {
			if pc == c {
				found = true
			}
		}
		if !found {
			t.Errorf("placer sent %q to core %d outside its placement cores %v",
				class, c, simPlan.Assignment.PlacementCores(class))
		}
		seen[class] = true
	}
	if len(seen) != 2 {
		t.Fatal("placer replay incomplete")
	}
}

// TestSimLiveCilkParity checks the degenerate end: under Cilk both
// engines must plan the identical all-fast scatter batch every time.
func TestSimLiveCilkParity(t *testing.T) {
	const workers = 4
	cfg := machine.Opteron16()
	cfg.Cores = workers

	simRec := &recordingPolicy{inner: policy.NewCilk()}
	if _, err := sched.Run(cfg, parityBatchSim(), simRec, sched.DefaultParams()); err != nil {
		t.Fatalf("sim run: %v", err)
	}
	liveRec := &recordingPolicy{inner: policy.NewCilk()}
	r, err := New(Config{Workers: workers, Machine: cfg, Impl: liveRec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.RunBatch(parityBatchLive())

	simPlan, livePlan := simRec.plans[0], liveRec.plans[0]
	if !simPlan.ScatterAll || !livePlan.ScatterAll || !simPlan.RandomSteal || !livePlan.RandomSteal {
		t.Fatalf("Cilk plans not classic: sim %+v live %+v", simPlan, livePlan)
	}
	for c := 0; c < workers; c++ {
		if simPlan.Assignment.FreqOf(c) != 0 || livePlan.Assignment.FreqOf(c) != 0 {
			t.Fatalf("Cilk must keep every core at F0")
		}
	}
}
