package rt

import (
	"sort"
	"strconv"

	"repro/internal/obs"
)

// rtObs bundles the live runtime's metric handles. Every handle is nil
// when the registry is nil, and every method on a nil handle is a
// no-op, so the instrumented sites cost one pointer check when
// observability is off. All observations happen at batch boundaries —
// the worker hot loop reports through the pre-existing atomics and is
// never touched.
type rtObs struct {
	reg *obs.Registry

	batches   *obs.Counter
	tasks     *obs.Counter
	steals    *obs.Counter
	wallSecs  *obs.Counter
	batchSecs *obs.Histogram

	busySecs    *obs.Counter
	idleSecs    *obs.Counter
	barrierSecs *obs.Counter

	poolDepth *obs.Histogram
	dvfs      *obs.Counter
	energy    *obs.Counter
	residual  *obs.Counter

	execSecs       *obs.LogHistogramVec // per-class execution latency
	classBusy      *obs.CounterVec
	classEnergy    *obs.CounterVec
	overheadEnergy *obs.Counter

	census []*obs.Gauge // by frequency level

	adjInv     *obs.Counter
	adjHost    *obs.Counter
	planHits   *obs.Counter
	planMisses *obs.Counter
	violations *obs.CounterVec
}

func newRTObs(reg *obs.Registry, levels int) rtObs {
	o := rtObs{
		reg:     reg,
		batches: reg.Counter("eewa_rt_batches_total", "Batches executed by the live runtime."),
		tasks:   reg.Counter("eewa_rt_tasks_total", "Tasks executed by the live runtime."),
		steals:  reg.Counter("eewa_rt_steals_total", "Non-local task acquisitions in the live runtime."),
		wallSecs: reg.Counter("eewa_rt_wall_seconds_total",
			"Wall-clock seconds spent inside RunBatch."),
		batchSecs: reg.Histogram("eewa_rt_batch_seconds",
			"Per-batch wall-clock duration in seconds.", obs.ExpBuckets(1e-3, 2, 14)),
		busySecs: reg.Counter("eewa_rt_worker_busy_seconds_total",
			"Worker-seconds spent executing task payloads (duty-cycle stretched)."),
		idleSecs: reg.Counter("eewa_rt_worker_idle_seconds_total",
			"Worker-seconds spent searching for work (probe/steal/sleep)."),
		barrierSecs: reg.Counter("eewa_rt_worker_barrier_seconds_total",
			"Worker-seconds spent waiting at the batch barrier after running dry."),
		poolDepth: reg.Histogram("eewa_rt_pool_depth",
			"Tasks placed into each worker's pools at batch start.", obs.ExpBuckets(1, 2, 12)),
		dvfs: reg.Counter("eewa_rt_dvfs_transitions_total",
			"Emulated frequency-level changes applied to workers."),
		energy: reg.Counter("eewa_rt_energy_joules_total",
			"Modeled energy consumed by the live runtime (joules)."),
		residual: reg.Counter("eewa_rt_energy_residual_seconds_total",
			"Worker-seconds the energy accounting clipped because modeled states overran the measured wall (should stay ~0)."),
		execSecs: reg.LogHistogramVec("eewa_rt_task_exec_seconds",
			"Per-task execution latency (duty-cycle stretched), by task class.", "class"),
		classBusy: reg.CounterVec("eewa_rt_class_busy_seconds_total",
			"Worker-seconds executing payloads, attributed by task class.", "class"),
		classEnergy: reg.CounterVec("eewa_rt_energy_class_joules_total",
			"Busy-state energy attributed by task class (joules).", "class"),
		overheadEnergy: reg.Counter("eewa_rt_energy_overhead_joules_total",
			"Batch energy not attributable to any task class: work search, dry spin, barrier halt and base draw (joules)."),
		adjInv: reg.Counter("eewa_rt_adjuster_invocations_total",
			"Invocations of the workload-aware frequency adjuster."),
		adjHost: reg.Counter("eewa_rt_adjuster_host_seconds_total",
			"Host wall time spent inside the frequency adjuster."),
		planHits: reg.Counter("eewa_plan_cache_hits_total",
			"Adjusted plans served from the memoized tuple-search cache."),
		planMisses: reg.Counter("eewa_plan_cache_misses_total",
			"Adjusted plans that ran the backtracking tuple search."),
	}
	if reg != nil {
		censusVec := reg.GaugeVec("eewa_rt_census_workers",
			"Workers currently clocked at each frequency level.", "level")
		o.census = make([]*obs.Gauge, levels)
		for j := range o.census {
			o.census[j] = censusVec.With(strconv.Itoa(j))
		}
		o.violations = reg.CounterVec("eewa_rt_invariant_violations_total",
			"Runtime invariant violations detected by internal/check, by invariant.", "invariant")
	}
	return o
}

// execHist returns the per-class execution-latency histogram handle, or
// nil when the registry is disabled. Workers fetch it once per class
// (paying the family mutex there) and then Observe lock-free per task.
func (o *rtObs) execHist(class string) *obs.LogHistogram {
	if o.reg == nil {
		return nil
	}
	return o.execSecs.With(class)
}

// violation counts one invariant violation (no-op without a registry).
func (o *rtObs) violation(invariant string) {
	o.violations.With(invariant).Inc()
}

// observeBatch records one completed batch. depths holds the number of
// tasks placed on each worker at batch start (nil when the registry is
// disabled).
func (o *rtObs) observeBatch(bs BatchStats, busy, idle, barrier float64, depths []int) {
	if o.reg == nil {
		return
	}
	o.batches.Inc()
	o.tasks.Add(float64(bs.Tasks))
	o.steals.Add(float64(bs.Steals))
	o.wallSecs.Add(bs.Wall.Seconds())
	o.batchSecs.Observe(bs.Wall.Seconds())
	o.busySecs.Add(busy)
	o.idleSecs.Add(idle)
	o.barrierSecs.Add(barrier)
	o.energy.Add(bs.Energy)
	o.residual.Add(bs.Residual)
	if len(bs.Classes) > 0 {
		attributed := 0.0
		// Sorted iteration keeps first-registration child order (and so
		// the Prometheus export) deterministic across runs.
		names := make([]string, 0, len(bs.Classes))
		for name := range bs.Classes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			cs := bs.Classes[name]
			o.classBusy.With(name).Add(cs.BusySecs)
			o.classEnergy.With(name).Add(cs.EnergyJ)
			attributed += cs.EnergyJ
		}
		if over := bs.Energy - attributed; over > 0 {
			o.overheadEnergy.Add(over)
		}
	} else {
		o.overheadEnergy.Add(bs.Energy)
	}
	for _, d := range depths {
		o.poolDepth.Observe(float64(d))
	}
	for j, n := range bs.Census {
		if j < len(o.census) {
			o.census[j].Set(float64(n))
		}
	}
	if o.reg.HasEvents() {
		o.reg.Emit(obs.Event{Name: "rt_batch", Value: bs.Wall.Seconds()})
	}
}
