package rt

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObsIntegration runs the live runtime with a registry attached and
// cross-checks the metric families against RunStats.
func TestObsIntegration(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(4, PolicyEEWA)
	cfg.Obs = reg
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := func() []Task {
		tasks := make([]Task, 24)
		for i := range tasks {
			d := 300 * time.Microsecond
			if i < 4 {
				d = 2 * time.Millisecond
			}
			cls := "light"
			if i < 4 {
				cls = "heavy"
			}
			tasks[i] = Task{Class: cls, Run: spinFor(d)}
		}
		return tasks
	}
	for b := 0; b < 3; b++ {
		rt.RunBatch(batch())
	}
	st := rt.Stats()

	if got := reg.Counter("eewa_rt_batches_total", "").Value(); got != float64(st.Batches) {
		t.Errorf("batches = %g, stats = %d", got, st.Batches)
	}
	if got := reg.Counter("eewa_rt_tasks_total", "").Value(); got != float64(st.Tasks) {
		t.Errorf("tasks = %g, stats = %d", got, st.Tasks)
	}
	if got := reg.Counter("eewa_rt_steals_total", "").Value(); got != float64(st.Steals) {
		t.Errorf("steals = %g, stats = %d", got, st.Steals)
	}
	if got := reg.Counter("eewa_rt_energy_joules_total", "").Value(); got <= 0 || got > st.Energy+1e-9 {
		t.Errorf("energy = %g, stats = %g", got, st.Energy)
	}
	if got := reg.Histogram("eewa_rt_batch_seconds", "", nil).Count(); got != uint64(st.Batches) {
		t.Errorf("batch histogram count = %d, want %d", got, st.Batches)
	}
	// Every task was placed on some worker, so pool-depth observations
	// must sum to the task count.
	if got := reg.Histogram("eewa_rt_pool_depth", "", nil).Sum(); got != float64(st.Tasks) {
		t.Errorf("pool depth sum = %g, want %d", got, st.Tasks)
	}
	// Busy time is real work and must be positive.
	if reg.Counter("eewa_rt_worker_busy_seconds_total", "").Value() <= 0 {
		t.Error("no busy seconds recorded")
	}
	// EEWA planned before batches 2 and 3.
	if got := reg.Counter("eewa_rt_adjuster_invocations_total", "").Value(); got != 2 {
		t.Errorf("adjuster invocations = %g, want 2", got)
	}
	// Census gauges cover every worker.
	censusVec := reg.GaugeVec("eewa_rt_census_workers", "", "level")
	total := 0.0
	for _, lbl := range []string{"0", "1", "2", "3"} {
		total += censusVec.With(lbl).Value()
	}
	if total != 4 {
		t.Errorf("census gauges sum to %g, want 4 workers", total)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eewa_rt_dvfs_transitions_total") {
		t.Error("export missing DVFS family")
	}
}

// TestObsDisabled checks the runtime works identically with no
// registry (the nil path every benchmark takes).
func TestObsDisabled(t *testing.T) {
	rt, err := New(testConfig(2, PolicyCilk))
	if err != nil {
		t.Fatal(err)
	}
	bs := rt.RunBatch([]Task{{Class: "x", Run: func() {}}, {Class: "x", Run: func() {}}})
	if bs.Tasks != 2 {
		t.Errorf("tasks = %d, want 2", bs.Tasks)
	}
}

// TestClassAttribution checks BatchStats.Classes: task counts must sum
// to executed tasks, busy seconds to the workers' busy total, and the
// per-class energy must stay within the batch energy; the class
// histograms and attribution counters must reach the Prometheus export.
func TestClassAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(4, PolicyEEWA)
	cfg.Obs = reg
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 30)
	for i := range tasks {
		cls, d := "light", 200*time.Microsecond
		if i%3 == 0 {
			cls, d = "heavy", time.Millisecond
		}
		tasks[i] = Task{Class: cls, Run: spinFor(d)}
	}
	cancels := 0
	tasks[7].Cancelled = func() bool { return true }
	cancels++

	var bs BatchStats
	for b := 0; b < 2; b++ {
		bs = rt.RunBatch(tasks)
	}

	if len(bs.Classes) != 2 {
		t.Fatalf("Classes = %v, want light+heavy", bs.Classes)
	}
	gotTasks, gotBusy, gotEnergy := 0, 0.0, 0.0
	for name, cs := range bs.Classes {
		if cs.Tasks <= 0 || cs.BusySecs <= 0 || cs.EnergyJ <= 0 {
			t.Errorf("class %s: non-positive stats %+v", name, cs)
		}
		gotTasks += cs.Tasks
		gotBusy += cs.BusySecs
		gotEnergy += cs.EnergyJ
	}
	if want := bs.Tasks - bs.Cancelled; gotTasks != want {
		t.Errorf("class tasks sum = %d, want %d (tasks−cancelled)", gotTasks, want)
	}
	if bs.Cancelled != cancels {
		t.Errorf("cancelled = %d, want %d", bs.Cancelled, cancels)
	}
	busyTot := 0.0
	for _, ws := range bs.Workers {
		busyTot += ws.Busy
	}
	if diff := gotBusy - busyTot; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("class busy sum = %g, worker busy sum = %g", gotBusy, busyTot)
	}
	if gotEnergy <= 0 || gotEnergy > bs.Energy {
		t.Errorf("class energy sum = %g, batch energy = %g", gotEnergy, bs.Energy)
	}

	// The per-class latency histogram saw exactly the executed tasks.
	var histCount uint64
	for _, cls := range []string{"light", "heavy"} {
		h, ok := reg.At("eewa_rt_task_exec_seconds", cls).(*obs.LogHistogram)
		if !ok {
			t.Fatalf("no exec histogram child for %s", cls)
		}
		histCount += h.Count()
		if h.Quantile(0.99) <= 0 {
			t.Errorf("class %s: p99 = %g, want > 0", cls, h.Quantile(0.99))
		}
	}
	if want := uint64(2*len(tasks) - 2*cancels); histCount != want {
		t.Errorf("exec histogram count = %d, want %d", histCount, want)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE eewa_rt_task_exec_seconds histogram",
		`eewa_rt_task_exec_seconds_count{class="heavy"}`,
		`eewa_rt_energy_class_joules_total{class="light"}`,
		"eewa_rt_energy_overhead_joules_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	// Attributed + overhead must not exceed total modeled energy.
	attr := reg.CounterVec("eewa_rt_energy_class_joules_total", "", "class")
	over := reg.Counter("eewa_rt_energy_overhead_joules_total", "").Value()
	sum := attr.With("light").Value() + attr.With("heavy").Value() + over
	total := reg.Counter("eewa_rt_energy_joules_total", "").Value()
	if sum > total+1e-9 {
		t.Errorf("attributed+overhead = %g exceeds total energy %g", sum, total)
	}
}
