package rt

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObsIntegration runs the live runtime with a registry attached and
// cross-checks the metric families against RunStats.
func TestObsIntegration(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(4, PolicyEEWA)
	cfg.Obs = reg
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := func() []Task {
		tasks := make([]Task, 24)
		for i := range tasks {
			d := 300 * time.Microsecond
			if i < 4 {
				d = 2 * time.Millisecond
			}
			cls := "light"
			if i < 4 {
				cls = "heavy"
			}
			tasks[i] = Task{Class: cls, Run: spinFor(d)}
		}
		return tasks
	}
	for b := 0; b < 3; b++ {
		rt.RunBatch(batch())
	}
	st := rt.Stats()

	if got := reg.Counter("eewa_rt_batches_total", "").Value(); got != float64(st.Batches) {
		t.Errorf("batches = %g, stats = %d", got, st.Batches)
	}
	if got := reg.Counter("eewa_rt_tasks_total", "").Value(); got != float64(st.Tasks) {
		t.Errorf("tasks = %g, stats = %d", got, st.Tasks)
	}
	if got := reg.Counter("eewa_rt_steals_total", "").Value(); got != float64(st.Steals) {
		t.Errorf("steals = %g, stats = %d", got, st.Steals)
	}
	if got := reg.Counter("eewa_rt_energy_joules_total", "").Value(); got <= 0 || got > st.Energy+1e-9 {
		t.Errorf("energy = %g, stats = %g", got, st.Energy)
	}
	if got := reg.Histogram("eewa_rt_batch_seconds", "", nil).Count(); got != uint64(st.Batches) {
		t.Errorf("batch histogram count = %d, want %d", got, st.Batches)
	}
	// Every task was placed on some worker, so pool-depth observations
	// must sum to the task count.
	if got := reg.Histogram("eewa_rt_pool_depth", "", nil).Sum(); got != float64(st.Tasks) {
		t.Errorf("pool depth sum = %g, want %d", got, st.Tasks)
	}
	// Busy time is real work and must be positive.
	if reg.Counter("eewa_rt_worker_busy_seconds_total", "").Value() <= 0 {
		t.Error("no busy seconds recorded")
	}
	// EEWA planned before batches 2 and 3.
	if got := reg.Counter("eewa_rt_adjuster_invocations_total", "").Value(); got != 2 {
		t.Errorf("adjuster invocations = %g, want 2", got)
	}
	// Census gauges cover every worker.
	censusVec := reg.GaugeVec("eewa_rt_census_workers", "", "level")
	total := 0.0
	for _, lbl := range []string{"0", "1", "2", "3"} {
		total += censusVec.With(lbl).Value()
	}
	if total != 4 {
		t.Errorf("census gauges sum to %g, want 4 workers", total)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eewa_rt_dvfs_transitions_total") {
		t.Error("export missing DVFS family")
	}
}

// TestObsDisabled checks the runtime works identically with no
// registry (the nil path every benchmark takes).
func TestObsDisabled(t *testing.T) {
	rt, err := New(testConfig(2, PolicyCilk))
	if err != nil {
		t.Fatal(err)
	}
	bs := rt.RunBatch([]Task{{Class: "x", Run: func() {}}, {Class: "x", Run: func() {}}})
	if bs.Tasks != 2 {
		t.Errorf("tasks = %d, want 2", bs.Tasks)
	}
}
