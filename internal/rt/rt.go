// Package rt is the live work-stealing runtime: EEWA's scheduling
// algorithms running on real goroutines with lock-free Chase–Lev
// deques, executing real task payloads (e.g. the internal/kernels
// compressors and hashes).
//
// Real DVFS needs root access and specific hardware, and Go cannot pin
// goroutines to cores, so the runtime emulates frequency scaling with
// *duty-cycle throttling*: a worker logically clocked at Fj runs each
// payload at native speed and then idles for (F0/Fj − 1)× the measured
// run time, making its effective throughput Fj/F0 of a full-speed
// worker. Everything the paper's scheduler observes — execution times,
// Eq. 1 normalization, class profiles, CC tables, c-groups, preference
// stealing — is then exercised for real, under true concurrency.
// Energy is accounted from the same power model the simulator uses,
// integrated over measured wall time per (state, level).
//
// The runtime is batch-structured like the paper's programs:
//
//	rt, _ := rt.New(cfg)
//	for i := 0; i < batches; i++ {
//	    stats := rt.RunBatch(tasks)   // blocks until the barrier
//	}
//	total := rt.Stats()
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cgroup"
	"repro/internal/core"
	"repro/internal/deque"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/xrand"
)

// Task is one unit of live work.
type Task struct {
	// Class is the function name used for task-class profiling.
	Class string
	// Run is the payload, executed exactly once.
	Run func()
}

// Policy selects the scheduling discipline.
type Policy int

const (
	// PolicyCilk: classic random stealing, all workers at full speed.
	PolicyCilk Policy = iota
	// PolicyEEWA: the paper's scheduler — profile, adjust virtual
	// frequencies per batch, preference stealing.
	PolicyEEWA
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyCilk:
		return "cilk"
	case PolicyEEWA:
		return "eewa"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines ("cores").
	Workers int
	// Machine supplies the frequency ladder and power model; its core
	// count is overridden by Workers.
	Machine machine.Config
	// Policy selects Cilk or EEWA behaviour.
	Policy Policy
	// Seed drives victim selection.
	Seed uint64
	// Obs, when non-nil, receives the runtime's metrics: per-batch wall
	// time, worker busy/idle/barrier seconds, placement pool depths,
	// emulated DVFS transitions, census gauges and modeled energy (see
	// internal/obs). All observations happen at batch boundaries; the
	// worker hot loop is untouched, and a nil registry costs nothing.
	Obs *obs.Registry
}

// BatchStats summarizes one batch.
type BatchStats struct {
	// Wall is the batch's wall-clock duration.
	Wall time.Duration
	// Tasks is the number of tasks executed.
	Tasks int
	// Census is the number of workers at each frequency level.
	Census []int
	// Steals counts non-local task acquisitions.
	Steals int
	// Energy is the modeled energy for the batch (joules).
	Energy float64
}

// RunStats accumulates across batches.
type RunStats struct {
	Batches int
	Tasks   int
	Wall    time.Duration
	Energy  float64
	Steals  int
}

// Runtime executes batches of tasks under a policy.
type Runtime struct {
	cfg    Config
	ladder machine.FreqLadder
	prof   *profile.Profiler
	profMu sync.Mutex

	levels []int // per-worker frequency level for the current batch
	asn    *cgroup.Assignment

	adj        *core.Adjuster
	batchIndex int
	idealTime  time.Duration

	ro          rtObs
	lastAdjHost time.Duration

	stats RunStats
}

// New validates cfg and builds a runtime. Workers must be ≥ 1.
func New(cfg Config) (*Runtime, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("rt: need at least one worker, got %d", cfg.Workers)
	}
	mc := cfg.Machine
	mc.Cores = cfg.Workers
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	cfg.Machine = mc
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := &Runtime{
		cfg:    cfg,
		ladder: mc.Freqs,
		prof:   profile.New(mc.Freqs),
		levels: make([]int, cfg.Workers),
		asn:    cgroup.AllFast(cfg.Workers, nil),
		ro:     newRTObs(cfg.Obs, len(mc.Freqs)),
	}
	return r, nil
}

// Stats returns the accumulated run statistics.
func (r *Runtime) Stats() RunStats { return r.stats }

// Census returns the current per-level worker counts.
func (r *Runtime) Census() []int {
	census := make([]int, len(r.ladder))
	for _, l := range r.levels {
		census[l]++
	}
	return census
}

// RunBatch executes one batch of tasks and blocks until all complete.
// Between batches (when Policy is EEWA) it runs the workload-aware
// frequency adjuster on the previous batch's profile.
func (r *Runtime) RunBatch(tasks []Task) BatchStats {
	if len(tasks) == 0 {
		return BatchStats{Census: r.Census()}
	}
	r.plan()

	n := r.cfg.Workers
	u := r.asn.U()
	pools := make([][]*deque.Chase[*Task], n)
	for w := 0; w < n; w++ {
		pools[w] = make([]*deque.Chase[*Task], u)
		for g := 0; g < u; g++ {
			pools[w][g] = deque.NewChase[*Task]()
		}
	}

	// Placement: by class (over the class's reserved placement cores)
	// under EEWA after the first batch, round-robin otherwise.
	nextByClass := map[string]int{}
	nextRR := make([]int, u)
	var depths []int // per-worker placement count, metrics only
	if r.ro.reg != nil {
		depths = make([]int, n)
	}
	for i := range tasks {
		t := &tasks[i]
		var w int
		if r.cfg.Policy == PolicyEEWA && r.batchIndex > 0 {
			g := r.asn.GroupOfClass(t.Class)
			members := r.asn.PlacementCores(t.Class)
			w = members[nextByClass[t.Class]%len(members)]
			nextByClass[t.Class]++
			pools[w][g].PushBottom(t)
		} else {
			g := r.asn.CoreGroup[i%n]
			members := r.asn.Groups[g].Cores
			w = members[nextRR[g]%len(members)]
			nextRR[g]++
			pools[w][g].PushBottom(t)
		}
		if depths != nil {
			depths[w]++
		}
	}

	prefs := cgroup.PreferenceLists(u)
	var (
		steals atomic.Int64
		remain atomic.Int64
		busyNS = make([]atomic.Int64, n)
		spinNS = make([]atomic.Int64, n)
	)
	remain.Store(int64(len(tasks)))
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(r.cfg.Seed + uint64(id)*0x9E3779B97F4A7C15 + uint64(r.batchIndex))
			myG := r.asn.CoreGroup[id]
			level := r.levels[id]
			ratio := r.ladder.Ratio(level)
			spinStart := time.Now()
			for remain.Load() > 0 {
				t, stolen := acquire(pools, prefs, id, myG, rng, r.cfg.Policy == PolicyCilk, r.asn)
				if t == nil {
					// Nothing visible right now; other workers may
					// still hold unfinished tasks but pools only
					// drain, so yield briefly and re-check remain.
					time.Sleep(20 * time.Microsecond)
					continue
				}
				if stolen {
					steals.Add(1)
				}
				spinNS[id].Add(int64(time.Since(spinStart)))

				t0 := time.Now()
				t.Run()
				dur := time.Since(t0)
				// Duty-cycle throttle: stretch to dur × F0/Flevel.
				if ratio > 1 {
					time.Sleep(time.Duration(float64(dur) * (ratio - 1)))
				}
				wall := time.Duration(float64(dur) * ratio)
				busyNS[id].Add(int64(wall))

				r.profMu.Lock()
				r.prof.Record(t.Class, wall.Seconds(), level, 0)
				r.profMu.Unlock()

				remain.Add(-1)
				spinStart = time.Now()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	// Energy accounting from the shared power model: busy and spin at
	// the worker's level, the barrier-wait remainder as halted.
	pm := r.cfg.Machine.Power
	energy := pm.Base * wall.Seconds()
	var busyTot, spinTot, haltTot float64
	for w := 0; w < n; w++ {
		level := r.levels[w]
		busy := time.Duration(busyNS[w].Load()).Seconds()
		spin := time.Duration(spinNS[w].Load()).Seconds()
		halt := wall.Seconds() - busy - spin
		if halt < 0 {
			halt = 0
		}
		busyTot += busy
		spinTot += spin
		haltTot += halt
		// The live runtime has no package topology: use own-level
		// voltage (PackageSize 1 semantics).
		energy += busy * pm.CorePower(machine.Busy, level, level, r.ladder)
		energy += spin * pm.CorePower(machine.Spinning, level, level, r.ladder)
		energy += halt * pm.CorePower(machine.Halted, level, level, r.ladder)
	}

	if r.batchIndex == 0 {
		r.idealTime = wall
	}
	r.batchIndex++

	bs := BatchStats{
		Wall:   wall,
		Tasks:  len(tasks),
		Census: r.Census(),
		Steals: int(steals.Load()),
		Energy: energy,
	}
	r.stats.Batches++
	r.stats.Tasks += len(tasks)
	r.stats.Wall += wall
	r.stats.Energy += energy
	r.stats.Steals += bs.Steals
	r.ro.observeBatch(bs, busyTot, spinTot, haltTot, depths)
	return bs
}

// plan runs the frequency adjuster before a batch (EEWA only).
func (r *Runtime) plan() {
	n := r.cfg.Workers
	if r.adj == nil {
		adj, err := core.NewAdjuster(r.ladder, n)
		if err != nil {
			panic("rt: " + err.Error()) // config validated in New
		}
		r.adj = adj
	}
	if r.cfg.Policy != PolicyEEWA || r.batchIndex == 0 || r.idealTime <= 0 {
		r.asn = r.adj.AllFast()
		r.applyLevels()
		r.prof.Reset()
		return
	}
	r.profMu.Lock()
	classes := r.prof.Classes()
	r.prof.Reset()
	r.profMu.Unlock()
	asn, _ := r.adj.Adjust(classes, r.idealTime.Seconds())
	r.asn = asn
	if r.ro.reg != nil {
		r.ro.adjInv.Inc()
		r.ro.adjHost.Add((r.adj.HostTime - r.lastAdjHost).Seconds())
		r.lastAdjHost = r.adj.HostTime
	}
	r.applyLevels()
}

func (r *Runtime) applyLevels() {
	transitions := 0
	for w := range r.levels {
		next := r.asn.FreqOf(w)
		if next != r.levels[w] {
			transitions++
		}
		r.levels[w] = next
	}
	// The very first application clocks workers from their zero-value
	// level, which is not a transition.
	if r.batchIndex > 0 {
		r.ro.dvfs.Add(float64(transitions))
	}
}

// acquire finds the next task for worker id: local pool, then steals
// per the discipline. Returns nil when every reachable pool is empty
// right now.
func acquire(pools [][]*deque.Chase[*Task], prefs [][]int, id, myG int, rng *xrand.RNG, random bool, asn *cgroup.Assignment) (*Task, bool) {
	if t, ok := pools[id][myG].PopBottom(); ok {
		return t, false
	}
	if random {
		order := rng.Perm(len(pools))
		for _, v := range order {
			if v == id {
				continue
			}
			if t, ok := pools[v][asn.CoreGroup[v]].Steal(); ok {
				return t, true
			}
		}
		return nil, false
	}
	for _, g := range prefs[myG] {
		order := rng.Perm(len(pools))
		for _, v := range order {
			if v == id && g == myG {
				continue
			}
			if t, ok := pools[v][g].Steal(); ok {
				return t, true
			}
		}
	}
	return nil, false
}
