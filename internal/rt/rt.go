// Package rt is the live work-stealing runtime: EEWA's scheduling
// algorithms running on real goroutines with lock-free Chase–Lev
// deques, executing real task payloads (e.g. the internal/kernels
// compressors and hashes).
//
// All scheduling *decisions* — per-batch planning, task placement,
// steal preference order, out-of-work behaviour — come from
// internal/policy, the same code the discrete-event simulator
// executes; this package only supplies the execution substrate. All
// four policies (Cilk, Cilk-D, WATS, EEWA) therefore run live.
//
// Real DVFS needs root access and specific hardware, and Go cannot pin
// goroutines to cores, so the runtime emulates frequency scaling with
// *duty-cycle throttling*: a worker logically clocked at Fj runs each
// payload at native speed and then idles for (F0/Fj − 1)× the measured
// run time, making its effective throughput Fj/F0 of a full-speed
// worker. Everything the paper's scheduler observes — execution times,
// Eq. 1 normalization, class profiles, CC tables, c-groups, preference
// stealing — is then exercised for real, under true concurrency.
// Energy is accounted from the same power model the simulator uses,
// integrated over measured wall time per (state, level).
//
// The runtime is batch-structured like the paper's programs:
//
//	rt, _ := rt.New(cfg)
//	for i := 0; i < batches; i++ {
//	    stats := rt.RunBatch(tasks)   // blocks until the barrier
//	}
//	total := rt.Stats()
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cgroup"
	"repro/internal/check"
	"repro/internal/deque"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/xrand"
)

// Task is one unit of live work.
type Task struct {
	// Class is the function name used for task-class profiling.
	Class string
	// Run is the payload, executed exactly once.
	Run func()
	// Cancelled, when non-nil, is consulted once after the task is
	// acquired and before Run: returning true skips the payload (the
	// task still counts as acquired exactly once, so task conservation
	// holds, and it is reported in BatchStats.Cancelled). This is the
	// cancellation hook a submission layer uses to drop
	// queued-but-unstarted work whose deadline expired after the batch
	// was formed. It must be safe to call from the worker goroutine.
	Cancelled func() bool
}

// Policy selects the scheduling discipline. The values mirror the
// canonical policy set of internal/policy; String returns the
// canonical identifier ("cilk", "cilk-d", "wats", "eewa").
type Policy int

const (
	// PolicyCilk: classic random stealing, all workers at full speed.
	PolicyCilk Policy = iota
	// PolicyEEWA: the paper's scheduler — profile, adjust virtual
	// frequencies per batch, preference stealing.
	PolicyEEWA
	// PolicyCilkD: Cilk with workers that run dry down-clocking to the
	// lowest frequency until the barrier.
	PolicyCilkD
	// PolicyWATS: workload-aware stealing on a frozen asymmetric
	// configuration (policy.DefaultWATSLevels).
	PolicyWATS
)

// String returns the canonical policy identifier.
func (p Policy) String() string {
	switch p {
	case PolicyCilk:
		return policy.IDCilk
	case PolicyCilkD:
		return policy.IDCilkD
	case PolicyWATS:
		return policy.IDWATS
	case PolicyEEWA:
		return policy.IDEEWA
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a canonical policy identifier (see policy.IDs) to
// the Policy enum.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case policy.IDCilk:
		return PolicyCilk, nil
	case policy.IDCilkD:
		return PolicyCilkD, nil
	case policy.IDWATS:
		return PolicyWATS, nil
	case policy.IDEEWA:
		return PolicyEEWA, nil
	default:
		return 0, fmt.Errorf("rt: unknown policy %q (want one of %v)", name, policy.IDs())
	}
}

// Policies returns every live policy in canonical order.
func Policies() []Policy {
	return []Policy{PolicyCilk, PolicyCilkD, PolicyWATS, PolicyEEWA}
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines ("cores").
	Workers int
	// Machine supplies the frequency ladder and power model; its core
	// count is overridden by Workers.
	Machine machine.Config
	// Policy selects the scheduling discipline (ignored when Impl is
	// set).
	Policy Policy
	// Impl, when non-nil, supplies the policy implementation directly
	// — e.g. a policy.EEWA with an offline profile, or a recording
	// wrapper in the parity tests.
	Impl policy.Policy
	// Seed drives victim selection.
	Seed uint64
	// Obs, when non-nil, receives the runtime's metrics: per-batch wall
	// time, worker busy/idle/barrier seconds, placement pool depths,
	// emulated DVFS transitions, census gauges and modeled energy (see
	// internal/obs). All observations happen at batch boundaries; the
	// worker hot loop is untouched, and a nil registry costs nothing.
	Obs *obs.Registry
	// Invariants enables the internal/check batch invariants: task
	// conservation (every spawned task acquired exactly once — executed,
	// or skipped through its Cancelled hook), the per-worker energy
	// identity, and plan feasibility. Violations are collected on the
	// runtime (Violations) and counted on the
	// eewa_rt_invariant_violations_total metric. Building with
	// -tags eewa_check forces this on for every runtime.
	Invariants bool
	// Hooks receives batch-lifecycle callbacks (both run on the
	// RunBatch caller's goroutine). A zero Hooks is inert.
	Hooks Hooks
}

// Hooks are the runtime's batch-lifecycle callbacks — the submission
// hook surface a serving layer (internal/serve) builds on. BatchStart
// fires after planning, immediately before workers launch; BatchEnd
// fires after the barrier with the batch's statistics. Either field may
// be nil. Empty batches fire neither.
type Hooks struct {
	BatchStart func(batch, tasks int)
	BatchEnd   func(batch int, stats BatchStats)
}

// WorkerSecs is one worker's wall-time decomposition for a batch, in
// seconds. The accounting identity is
//
//	Busy + Search + Dry + Halt − Residual = batch wall time
//
// exactly: Halt is the barrier-wait remainder, and Residual is the
// amount the remainder had to be clipped by because the modeled states
// overran the measured wall (it should be ≈0; a large value means a
// state is double-counted and the energy integral is wrong).
type WorkerSecs struct {
	// Busy is duty-cycle-stretched payload execution at the plan level.
	Busy float64
	// Search is work-search time (probe/steal/sleep) at the plan level.
	Search float64
	// Dry is post-out-of-work spin at the policy's out-of-work level.
	Dry float64
	// Halt is the barrier-wait remainder, clipped at zero.
	Halt float64
	// Residual is the clipped overrun (accounted, never silently lost).
	Residual float64
}

// ClassStats is one task class's share of a batch: executed tasks,
// duty-cycle-stretched busy seconds, and the busy-state energy those
// seconds drew at the executing workers' frequency levels. Summed over
// classes, EnergyJ is the attributable part of BatchStats.Energy; the
// remainder (search, dry spin, barrier halt, base draw) is scheduling
// overhead no single class caused.
type ClassStats struct {
	// Tasks is the number of payloads of this class that ran (cancelled
	// tasks are not counted).
	Tasks int
	// BusySecs is the summed duty-cycle-stretched execution time.
	BusySecs float64
	// EnergyJ is the busy-state energy integral over BusySecs.
	EnergyJ float64
}

// BatchStats summarizes one batch.
type BatchStats struct {
	// Wall is the batch's wall-clock duration.
	Wall time.Duration
	// Tasks is the number of tasks executed.
	Tasks int
	// Census is the number of workers at each frequency level.
	Census []int
	// Levels is the per-worker frequency level the plan assigned for
	// the batch.
	Levels []int
	// Steals counts non-local task acquisitions.
	Steals int
	// Cancelled counts tasks skipped through their Cancelled hook.
	Cancelled int
	// Energy is the modeled energy for the batch (joules).
	Energy float64
	// Workers is the per-worker wall-time decomposition the energy was
	// integrated from.
	Workers []WorkerSecs
	// Residual is the summed per-worker accounting residual (seconds).
	Residual float64
	// Classes attributes execution time and busy energy to each task
	// class that ran in the batch — the per-class half of the energy
	// attribution the serving layer turns into per-tenant counters.
	Classes map[string]ClassStats
}

// RunStats accumulates across batches.
type RunStats struct {
	Batches int
	Tasks   int
	Wall    time.Duration
	Energy  float64
	Steals  int
}

// Runtime executes batches of tasks under a policy.
type Runtime struct {
	cfg    Config
	ladder machine.FreqLadder
	pol    policy.Policy
	prof   *profile.Profiler
	profMu sync.Mutex

	plan   policy.Plan
	asn    *cgroup.Assignment
	levels []int // per-worker frequency level for the current batch

	// pools[worker][group] — reused across batches while the worker
	// count and the plan's group count u hold (a completed batch drains
	// every deque, so only a shape change forces a rebuild). RunBatch is
	// single-caller, so no synchronization is needed between batches.
	pools [][]*deque.Chase[*Task]

	batchIndex int
	idealTime  time.Duration

	ro rtObs

	inv        bool
	violations []check.Violation

	stats RunStats
}

// New validates cfg and builds a runtime. Workers must be ≥ 1.
func New(cfg Config) (*Runtime, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("rt: need at least one worker, got %d", cfg.Workers)
	}
	mc := cfg.Machine
	mc.Cores = cfg.Workers
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	cfg.Machine = mc
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	pol := cfg.Impl
	if pol == nil {
		var err error
		pol, err = policy.New(cfg.Policy.String(), mc)
		if err != nil {
			return nil, fmt.Errorf("rt: %w", err)
		}
	}
	r := &Runtime{
		cfg:    cfg,
		ladder: mc.Freqs,
		pol:    pol,
		prof:   profile.New(mc.Freqs),
		levels: make([]int, cfg.Workers),
		asn:    cgroup.AllFast(cfg.Workers, nil),
		ro:     newRTObs(cfg.Obs, len(mc.Freqs)),
		inv:    cfg.Invariants || check.BuildEnabled,
	}
	return r, nil
}

// Stats returns the accumulated run statistics.
func (r *Runtime) Stats() RunStats { return r.stats }

// Violations returns the invariant violations collected so far (always
// empty unless Config.Invariants or the eewa_check build tag enabled
// checking). A healthy runtime returns an empty slice forever.
func (r *Runtime) Violations() []check.Violation {
	return append([]check.Violation(nil), r.violations...)
}

// record registers invariant violations on the runtime and the metrics
// registry.
func (r *Runtime) record(vs []check.Violation) {
	if len(vs) == 0 {
		return
	}
	r.violations = append(r.violations, vs...)
	for _, v := range vs {
		r.ro.violation(v.Invariant)
	}
}

// Census returns the current per-level worker counts.
func (r *Runtime) Census() []int {
	census := make([]int, len(r.ladder))
	for _, l := range r.levels {
		census[l]++
	}
	return census
}

// RunBatch executes one batch of tasks and blocks until all complete.
// Between batches the policy plans: under EEWA that means running the
// workload-aware frequency adjuster on the previous batch's profile.
func (r *Runtime) RunBatch(tasks []Task) BatchStats {
	if len(tasks) == 0 {
		return BatchStats{Census: r.Census()}
	}
	r.planBatch()
	bi := r.batchIndex // stable across the increment below
	if h := r.cfg.Hooks.BatchStart; h != nil {
		h(bi, len(tasks))
	}

	n := r.cfg.Workers
	u := r.asn.U()
	if len(r.pools) != n || len(r.pools[0]) != u {
		r.pools = make([][]*deque.Chase[*Task], n)
		for w := 0; w < n; w++ {
			r.pools[w] = make([]*deque.Chase[*Task], u)
			for g := 0; g < u; g++ {
				r.pools[w][g] = deque.NewChase[*Task]()
			}
		}
	}
	pools := r.pools

	// Placement per the plan's discipline (scatter or by class over
	// each class's reserved placement cores) — shared with the sim.
	placer := policy.NewPlacer(&r.plan, n)
	var depths []int // per-worker placement count, metrics only
	if r.ro.reg != nil {
		depths = make([]int, n)
	}
	// Task-conservation bookkeeping: execution counts indexed through a
	// read-only pointer→index map built during (single-threaded)
	// placement. Nil and untouched unless invariants are on.
	var execs []atomic.Int32
	var taskIdx map[*Task]int
	if r.inv {
		execs = make([]atomic.Int32, len(tasks))
		taskIdx = make(map[*Task]int, len(tasks))
	}
	for i := range tasks {
		t := &tasks[i]
		w, g := placer.Place(t.Class)
		pools[w][g].PushBottom(t)
		if depths != nil {
			depths[w]++
		}
		if taskIdx != nil {
			taskIdx[t] = i
		}
	}

	stealOrder := policy.NewStealOrder(&r.plan, n)
	var (
		steals    atomic.Int64
		cancelled atomic.Int64
		dvfs      atomic.Int64
		remain    atomic.Int64
		busyNS    = make([]atomic.Int64, n)
		spinNS    = make([]atomic.Int64, n) // out-of-work spin at idleLevels[w]
		idleNS    = make([]atomic.Int64, n) // work-search lead-in at levels[w]
	)
	idleLevels := make([]int, n)
	copy(idleLevels, r.levels)
	// Per-worker class attribution: each worker owns its map (no
	// contention in the hot loop); the per-class histogram handle is
	// resolved once per class per worker, after which Observe is a
	// lock-free atomic add. Folded into BatchStats.Classes at the
	// barrier.
	classAggs := make([]map[string]*classAgg, n)
	remain.Store(int64(len(tasks)))
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(r.cfg.Seed + uint64(id)*0x9E3779B97F4A7C15 + uint64(r.batchIndex))
			aggs := map[string]*classAgg{}
			classAggs[id] = aggs
			myG := r.asn.CoreGroup[id]
			level := r.levels[id]
			ratio := r.ladder.Ratio(level)
			outOfWork := false
			spinStart := time.Now()
			for remain.Load() > 0 {
				t, stolen := acquire(pools, stealOrder, id, myG, rng)
				if t == nil {
					// Every reachable pool looked empty: apply the
					// policy's out-of-work action once. Pools only
					// drain mid-batch, so from here until the barrier
					// (or until a racing steal surfaces a stray task)
					// the worker spins at the action's level — that is
					// what Cilk-D and EEWA down-clock.
					if !outOfWork {
						outOfWork = true
						idleNS[id].Add(int64(time.Since(spinStart)))
						spinStart = time.Now()
						if act := r.pol.OutOfWork(id); act.FreqLevel >= 0 && act.FreqLevel != idleLevels[id] {
							idleLevels[id] = act.FreqLevel
							dvfs.Add(1)
						}
					}
					time.Sleep(20 * time.Microsecond)
					continue
				}
				if stolen {
					steals.Add(1)
				}
				search := int64(time.Since(spinStart))
				if outOfWork {
					// A racing steal lost earlier; the worker is back.
					outOfWork = false
					spinNS[id].Add(search)
				} else {
					idleNS[id].Add(search)
				}

				if execs != nil {
					execs[taskIdx[t]].Add(1)
				}
				// Acquired-but-cancelled: the submission layer withdrew
				// the task (e.g. its deadline expired while it waited in
				// a pool). It still counts as acquired exactly once.
				if t.Cancelled != nil && t.Cancelled() {
					cancelled.Add(1)
					remain.Add(-1)
					spinStart = time.Now()
					continue
				}

				t0 := time.Now()
				t.Run()
				dur := time.Since(t0)
				// Duty-cycle throttle: stretch to dur × F0/Flevel.
				if ratio > 1 {
					time.Sleep(time.Duration(float64(dur) * (ratio - 1)))
				}
				wall := time.Duration(float64(dur) * ratio)
				busyNS[id].Add(int64(wall))
				a := aggs[t.Class]
				if a == nil {
					a = &classAgg{hist: r.ro.execHist(t.Class)}
					aggs[t.Class] = a
				}
				a.secs += wall.Seconds()
				a.tasks++
				a.hist.Observe(wall.Seconds())

				r.profMu.Lock()
				r.prof.Record(t.Class, wall.Seconds(), level, 0)
				r.profMu.Unlock()

				remain.Add(-1)
				spinStart = time.Now()
			}
			if outOfWork {
				spinNS[id].Add(int64(time.Since(spinStart)))
			} else {
				idleNS[id].Add(int64(time.Since(spinStart)))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	// Energy accounting from the shared power model: busy and
	// work-search spin at the worker's level, post-dry spin at the
	// out-of-work level the policy chose, the barrier-wait remainder
	// as halted. When the modeled states overrun the measured wall
	// (duty-cycle stretch rounding, timer overshoot) the overrun is
	// accounted as an explicit residual — clipping it silently would
	// hide search/dry double-counting from the energy identity.
	pm := r.cfg.Machine.Power
	energy := pm.Base * wall.Seconds()
	workers := make([]WorkerSecs, n)
	classes := make(map[string]ClassStats, 4)
	var busyTot, spinTot, haltTot, residTot float64
	for w := 0; w < n; w++ {
		level := r.levels[w]
		busyPower := pm.CorePower(machine.Busy, level, level, r.ladder)
		for name, a := range classAggs[w] {
			cs := classes[name]
			cs.Tasks += a.tasks
			cs.BusySecs += a.secs
			cs.EnergyJ += a.secs * busyPower
			classes[name] = cs
		}
		busy := time.Duration(busyNS[w].Load()).Seconds()
		search := time.Duration(idleNS[w].Load()).Seconds()
		dry := time.Duration(spinNS[w].Load()).Seconds()
		halt := wall.Seconds() - busy - search - dry
		var residual float64
		if halt < 0 {
			residual = -halt
			halt = 0
		}
		workers[w] = WorkerSecs{Busy: busy, Search: search, Dry: dry, Halt: halt, Residual: residual}
		busyTot += busy
		spinTot += search + dry
		haltTot += halt
		residTot += residual
		// The live runtime has no package topology: use own-level
		// voltage (PackageSize 1 semantics).
		energy += busy * busyPower
		energy += search * pm.CorePower(machine.Spinning, level, level, r.ladder)
		energy += dry * pm.CorePower(machine.Spinning, idleLevels[w], idleLevels[w], r.ladder)
		energy += halt * pm.CorePower(machine.Halted, level, level, r.ladder)
	}

	if r.batchIndex == 0 {
		r.idealTime = wall
	}
	r.batchIndex++
	r.ro.dvfs.Add(float64(dvfs.Load()))

	bs := BatchStats{
		Wall:      wall,
		Tasks:     len(tasks),
		Census:    r.Census(),
		Levels:    append([]int(nil), r.levels...),
		Steals:    int(steals.Load()),
		Cancelled: int(cancelled.Load()),
		Energy:    energy,
		Workers:   workers,
		Residual:  residTot,
		Classes:   classes,
	}
	r.stats.Batches++
	r.stats.Tasks += len(tasks)
	r.stats.Wall += wall
	r.stats.Energy += energy
	r.stats.Steals += bs.Steals
	r.ro.observeBatch(bs, busyTot, spinTot, haltTot, depths)
	if r.inv {
		r.record(check.TaskConservation(execCounts(execs)))
		// Tolerance: the identity is exact by construction up to float
		// rounding; the residual itself must stay negligible. Timer
		// quantization bounds per-interval error at well under a
		// millisecond per task, so a whole millisecond plus a small
		// fraction of the wall is a conservative ceiling.
		tol := 1e-3 + 0.01*wall.Seconds()
		for w := range workers {
			ws := workers[w]
			r.record(check.EnergyIdentity(w, wall.Seconds(), ws.Busy, ws.Search, ws.Dry, ws.Halt, ws.Residual, tol))
		}
	}
	if h := r.cfg.Hooks.BatchEnd; h != nil {
		h(bi, bs)
	}
	return bs
}

// classAgg is one worker's running attribution for one task class: the
// stretched busy seconds and task count, plus the worker's cached
// handle on the class's execution-latency histogram (nil when
// observability is off — Observe on a nil handle no-ops).
type classAgg struct {
	secs  float64
	tasks int
	hist  *obs.LogHistogram
}

// execCounts copies the atomic per-task execution counters into the
// plain slice the invariant checker takes.
func execCounts(execs []atomic.Int32) []int32 {
	out := make([]int32, len(execs))
	for i := range execs {
		out[i] = execs[i].Load()
	}
	return out
}

// planBatch asks the policy for the batch's plan (under EEWA: the
// frequency adjuster over the previous batch's profile) and applies
// the resulting assignment to the workers.
func (r *Runtime) planBatch() {
	env := &policy.Env{Cfg: r.cfg.Machine, IdealTime: r.idealTime.Seconds()}
	r.profMu.Lock()
	plan := r.pol.BeginBatch(r.batchIndex, r.prof, env)
	r.prof.Reset()
	r.profMu.Unlock()
	if plan.Assignment == nil {
		plan.Assignment = cgroup.AllFast(r.cfg.Workers, nil)
	}
	r.plan = plan
	r.asn = plan.Assignment
	if plan.Adjusted && r.ro.reg != nil {
		r.ro.adjInv.Inc()
		r.ro.adjHost.Add(plan.HostTime.Seconds())
		if plan.CacheHit {
			r.ro.planHits.Inc()
		} else {
			r.ro.planMisses.Inc()
		}
	}
	if r.inv {
		r.record(check.PlanFeasible(r.plan.Assignment, r.cfg.Workers, len(r.ladder)))
	}
	r.applyLevels()
}

func (r *Runtime) applyLevels() {
	transitions := 0
	for w := range r.levels {
		next := r.asn.FreqOf(w)
		if next != r.levels[w] {
			transitions++
		}
		r.levels[w] = next
	}
	// The very first application clocks workers from their zero-value
	// level, which is not a transition.
	if r.batchIndex > 0 {
		r.ro.dvfs.Add(float64(transitions))
	}
}

// acquire finds the next task for worker id: local pool first, then
// remote pools in the policy's victim order. Returns nil when every
// reachable pool is empty right now.
func acquire(pools [][]*deque.Chase[*Task], so *policy.StealOrder, id, myG int, rng *xrand.RNG) (*Task, bool) {
	if t, ok := pools[id][myG].PopBottom(); ok {
		return t, false
	}
	var got *Task
	so.ForEachVictim(id, rng, func(v, g int) bool {
		t, ok := pools[v][g].Steal()
		if !ok {
			return false
		}
		got = t
		return true
	})
	return got, got != nil
}
