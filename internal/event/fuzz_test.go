package event

import "testing"

// FuzzQueue interprets the input as an (op, arg) byte stream driving
// the queue and the sorted-slice oracle in lockstep — the same
// interpreter as TestQueueModelRandomized, so anything the fuzzer
// finds reproduces as a unit-test seed corpus entry. Wired into the
// nightly check-long job (see Makefile).
func FuzzQueue(f *testing.F) {
	f.Add([]byte{0, 0, 4, 0})                      // schedule, step
	f.Add([]byte{0, 3, 0, 3, 3, 0, 5, 0})          // same-time pair, cancel, batch
	f.Add([]byte{1, 2, 1, 2, 2, 5, 6, 7})          // fast events, After, RunUntil
	f.Add([]byte{0, 7, 3, 0, 0, 7, 3, 1, 4, 0})    // cancel churn
	f.Add([]byte{2, 0, 2, 0, 5, 0, 0, 1, 6, 3})    // zero-delay After + batch
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			return
		}
		m := newModel(t)
		for i := 0; i+1 < len(data); i += 2 {
			m.applyOp(data[i], data[i+1])
		}
		m.finish()
	})
}
