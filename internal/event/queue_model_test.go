package event

import (
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------------
// Contract tests for the pieces ISSUE 9 fixed: Len/Empty semantics,
// cancelled-event retention, and the batched drain path.
// ---------------------------------------------------------------------------

func TestLenReportsPendingNotHeapSize(t *testing.T) {
	q := New()
	if q.Len() != 0 || !q.Empty() {
		t.Fatalf("fresh queue: Len=%d Empty=%v, want 0,true", q.Len(), q.Empty())
	}
	e1 := q.At(1, func() {})
	q.At(1, func() {})
	q.At(2, func() {})
	if q.Len() != 3 || q.Empty() {
		t.Fatalf("after 3 At: Len=%d Empty=%v, want 3,false", q.Len(), q.Empty())
	}
	q.Cancel(e1)
	if q.Len() != 2 {
		t.Fatalf("after Cancel: Len=%d, want 2 (cancelled events are not pending)", q.Len())
	}
	q.Step()
	if q.Len() != 1 {
		t.Fatalf("after Step: Len=%d, want 1", q.Len())
	}
	q.Run()
	if q.Len() != 0 || !q.Empty() {
		t.Fatalf("after Run: Len=%d Empty=%v, want 0,true", q.Len(), q.Empty())
	}
}

// Scheduling and cancelling N far-future events must not hold N live
// slots: once cancelled events outnumber pending ones the queue
// compacts, releasing the captured closures long before their due time.
func TestCancelledEventsAreNotRetained(t *testing.T) {
	const n = 4096
	q := New()
	q.At(1e9, func() {}) // one pending survivor keeps the queue non-empty
	events := make([]*Event, n)
	for i := range events {
		events[i] = q.At(1e9+float64(i), func() {})
	}
	for _, e := range events {
		q.Cancel(e)
	}
	if got := q.slotCount(); got > compactMinCancelled+1 {
		t.Fatalf("after cancelling %d events, %d slots retained; want ≤ %d",
			n, got, compactMinCancelled+1)
	}
	if q.Len() != 1 {
		t.Fatalf("Len=%d, want 1", q.Len())
	}
	q.Run()
	if q.Fired() != 1 {
		t.Fatalf("Fired=%d, want 1", q.Fired())
	}
}

func TestCancelDuringDrainDefersCompaction(t *testing.T) {
	q := New()
	n := compactMinCancelled * 2
	events := make([]*Event, n)
	for i := range events {
		events[i] = q.At(100+float64(i), func() {})
	}
	// The triggering Cancels happen inside a firing callback, where
	// compaction must be deferred (the head bucket is mid-drain).
	q.At(1, func() {
		for _, e := range events {
			q.Cancel(e)
		}
	})
	q.Run()
	if q.Fired() != 1 {
		t.Fatalf("Fired=%d, want 1", q.Fired())
	}
	if got := q.slotCount(); got != 0 {
		t.Fatalf("%d slots retained after Run, want 0", got)
	}
}

func TestStepBatchDrainsOneTimestamp(t *testing.T) {
	q := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.At(1, func() { order = append(order, i) })
	}
	q.At(2, func() { order = append(order, 99) })
	if n := q.StepBatch(); n != 5 {
		t.Fatalf("StepBatch = %d, want 5", n)
	}
	if q.Now() != 1 {
		t.Fatalf("Now = %g, want 1", q.Now())
	}
	if len(order) != 5 {
		t.Fatalf("fired %v, want exactly the five t=1 events", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("batch fired out of FIFO order: %v", order)
		}
	}
	if n := q.StepBatch(); n != 1 {
		t.Fatalf("second StepBatch = %d, want 1", n)
	}
	if n := q.StepBatch(); n != 0 {
		t.Fatalf("StepBatch on empty queue = %d, want 0", n)
	}
}

// Events scheduled at the current instant from inside a draining batch
// must run in the same batch — the engine relies on this for same-time
// completion → coreFree cascades.
func TestStepBatchIncludesSameTimeAppends(t *testing.T) {
	q := New()
	var order []string
	q.At(1, func() {
		order = append(order, "a")
		q.At(1, func() { order = append(order, "c") })
		q.AtFast(1, func() { order = append(order, "d") })
	})
	q.At(1, func() { order = append(order, "b") })
	n := q.StepBatch()
	if n != 4 {
		t.Fatalf("StepBatch = %d, want 4 (same-time appends join the batch)", n)
	}
	want := []string{"a", "b", "c", "d"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAtFast(t *testing.T) {
	q := New()
	var order []int
	q.AtFast(2, func() { order = append(order, 2) })
	q.AtFast(1, func() { order = append(order, 1) })
	q.At(1.5, func() { order = append(order, 15) })
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	q.Run()
	want := []int{1, 15, 2}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if q.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", q.Fired())
	}
	mustPanic(t, "AtFast past", func() { q.AtFast(0, func() {}) })
	mustPanic(t, "AtFast nil fn", func() { q.AtFast(10, nil) })
}

// All three scheduling paths share per-timestamp FIFO: At, AtFast and
// AtIndex events interleaved at one instant fire in scheduling order.
func TestAtIndexInterleavesFIFO(t *testing.T) {
	q := New()
	mustPanic(t, "AtIndex before SetIndexFn", func() { q.AtIndex(1, 0) })
	var order []int
	q.SetIndexFn(func(v int32) { order = append(order, int(v)) })
	q.At(1, func() { order = append(order, 100) })
	q.AtIndex(1, 0)
	q.AtFast(1, func() { order = append(order, 101) })
	q.AtIndex(1, 1)
	q.AtIndex(2, 2)
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	if n := q.StepBatch(); n != 4 {
		t.Fatalf("StepBatch = %d, want 4", n)
	}
	q.Run()
	want := []int{100, 0, 101, 1, 2}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	mustPanic(t, "AtIndex negative payload", func() { q.AtIndex(10, -1) })
	mustPanic(t, "AtIndex past", func() { q.AtIndex(q.Now()-1, 0) })
	mustPanic(t, "SetIndexFn nil", func() { q.SetIndexFn(nil) })
}

// ---------------------------------------------------------------------------
// Model-based testing: an op interpreter drives the real queue and a
// sorted-slice oracle in lockstep, checking fire order, Len/Empty,
// Now, and NextTime after every operation. The same interpreter backs
// the randomized test here and FuzzQueue.
// ---------------------------------------------------------------------------

// oracleEv mirrors one scheduled event. Pending events live in
// insertion order; selection is (min time, earliest insertion), which
// is exactly the queue's (time, FIFO-within-time) contract.
type oracleEv struct {
	id       int
	time     float64
	fast     bool
	canceled bool
}

type model struct {
	t      *testing.T
	q      *Queue
	oracle []oracleEv
	hs     map[int]*Event
	fired  []int // ids observed from real callbacks, in fire order
	now    float64
	nextID int
}

func newModel(t *testing.T) *model {
	m := &model{t: t, q: New(), hs: map[int]*Event{}}
	// Indexed events carry their oracle id as the payload.
	m.q.SetIndexFn(func(v int32) { m.fired = append(m.fired, int(v)) })
	return m
}

func (m *model) schedule(tm float64, fast bool) {
	id := m.nextID
	m.nextID++
	fn := func() { m.fired = append(m.fired, id) }
	if fast {
		m.q.AtFast(tm, fn)
	} else {
		m.hs[id] = m.q.At(tm, fn)
	}
	m.oracle = append(m.oracle, oracleEv{id: id, time: tm, fast: fast})
}

// scheduleIndexed schedules through the pointer-free AtIndex path;
// like AtFast events, indexed events cannot be cancelled.
func (m *model) scheduleIndexed(tm float64) {
	id := m.nextID
	m.nextID++
	m.q.AtIndex(tm, int32(id))
	m.oracle = append(m.oracle, oracleEv{id: id, time: tm, fast: true})
}

// cancelNth cancels the n-th cancellable pending oracle event (mod
// count); no-op when none exist.
func (m *model) cancelNth(n int) {
	var idx []int
	for i, e := range m.oracle {
		if !e.fast && !e.canceled {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return
	}
	i := idx[n%len(idx)]
	m.oracle[i].canceled = true
	m.q.Cancel(m.hs[m.oracle[i].id])
	delete(m.hs, m.oracle[i].id)
}

// popExpected removes and returns the oracle's next event, or -1.
func (m *model) popExpected() int {
	best := -1
	for i, e := range m.oracle {
		if e.canceled {
			continue
		}
		if best < 0 || e.time < m.oracle[best].time {
			best = i
		}
	}
	if best < 0 {
		return -1
	}
	ev := m.oracle[best]
	m.oracle = append(m.oracle[:best], m.oracle[best+1:]...)
	m.now = ev.time
	return ev.id
}

func (m *model) dropCancelled() {
	w := 0
	for _, e := range m.oracle {
		if !e.canceled {
			m.oracle[w] = e
			w++
		}
	}
	m.oracle = m.oracle[:w]
}

func (m *model) step() {
	want := m.popExpected()
	got := m.q.Step()
	if want < 0 {
		if got {
			m.t.Fatalf("Step fired on an (oracle-)empty queue")
		}
		return
	}
	if !got {
		m.t.Fatalf("Step returned false with %d pending events", m.q.Len()+1)
	}
	if last := m.fired[len(m.fired)-1]; last != want {
		m.t.Fatalf("Step fired id %d, oracle expected %d", last, want)
	}
}

func (m *model) stepBatch() {
	before := len(m.fired)
	n := m.q.StepBatch()
	var want []int
	if first := m.popExpected(); first >= 0 {
		want = append(want, first)
		for {
			best := -1
			for i, e := range m.oracle {
				if e.canceled {
					continue
				}
				if e.time == m.now && (best < 0) {
					best = i
					break
				}
			}
			if best < 0 {
				break
			}
			want = append(want, m.oracle[best].id)
			m.oracle = append(m.oracle[:best], m.oracle[best+1:]...)
		}
	}
	if n != len(want) {
		m.t.Fatalf("StepBatch = %d events, oracle expected %d", n, len(want))
	}
	got := m.fired[before:]
	for i, w := range want {
		if got[i] != w {
			m.t.Fatalf("StepBatch order %v, oracle expected %v", got, want)
		}
	}
}

func (m *model) runUntil(deadline float64) {
	before := len(m.fired)
	n := m.q.RunUntil(deadline)
	var want []int
	for {
		best := -1
		for i, e := range m.oracle {
			if e.canceled || e.time > deadline {
				continue
			}
			if best < 0 || e.time < m.oracle[best].time {
				best = i
			}
		}
		if best < 0 {
			break
		}
		want = append(want, m.oracle[best].id)
		m.oracle = append(m.oracle[:best], m.oracle[best+1:]...)
	}
	m.now = deadline
	if n != len(want) {
		m.t.Fatalf("RunUntil(%g) = %d events, oracle expected %d", deadline, n, len(want))
	}
	got := m.fired[before:]
	for i, w := range want {
		if got[i] != w {
			m.t.Fatalf("RunUntil order %v, oracle expected %v", got, want)
		}
	}
}

// verify checks every observable against the oracle.
func (m *model) verify() {
	m.dropCancelled()
	if got, want := m.q.Len(), len(m.oracle); got != want {
		m.t.Fatalf("Len = %d, oracle has %d pending", got, want)
	}
	if got, want := m.q.Empty(), len(m.oracle) == 0; got != want {
		m.t.Fatalf("Empty = %v, oracle pending = %d", got, len(m.oracle))
	}
	if m.q.Now() != m.now {
		m.t.Fatalf("Now = %g, oracle clock = %g", m.q.Now(), m.now)
	}
	best := -1
	for i, e := range m.oracle {
		if best < 0 || e.time < m.oracle[best].time {
			best = i
		}
	}
	tm, ok := m.q.NextTime()
	if best < 0 {
		if ok {
			m.t.Fatalf("NextTime = %g,true on oracle-empty queue", tm)
		}
	} else if !ok || tm != m.oracle[best].time {
		m.t.Fatalf("NextTime = %g,%v, oracle head = %g", tm, ok, m.oracle[best].time)
	}
}

// applyOp interprets one fuzz/random operation. Times are drawn from a
// small grid (multiples of 0.5 ahead of now) so duplicate timestamps —
// the bucket machinery's whole point — occur constantly.
func (m *model) applyOp(op, arg byte) {
	switch op % 8 {
	case 0:
		m.schedule(m.now+float64(arg%8)*0.5, false)
	case 1:
		m.schedule(m.now+float64(arg%8)*0.5, true)
	case 2: // After: same grid, via the relative API
		id := m.nextID
		m.nextID++
		d := float64(arg%8) * 0.5
		m.hs[id] = m.q.After(d, func() { m.fired = append(m.fired, id) })
		m.oracle = append(m.oracle, oracleEv{id: id, time: m.now + d})
	case 3:
		m.cancelNth(int(arg))
	case 4:
		m.step()
	case 5:
		m.stepBatch()
	case 6:
		m.runUntil(m.now + float64(arg%8)*0.5)
	case 7:
		m.scheduleIndexed(m.now + float64(arg%8)*0.5)
	}
	m.verify()
}

func (m *model) finish() {
	for m.q.Len() > 0 {
		m.step()
		m.verify()
	}
	if len(m.oracle) != 0 {
		m.t.Fatalf("queue drained but oracle still holds %d events", len(m.oracle))
	}
}

func TestQueueModelRandomized(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newModel(t)
		ops := 200 + rng.Intn(300)
		for i := 0; i < ops; i++ {
			m.applyOp(byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
		m.finish()
	}
}
