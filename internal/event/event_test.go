package event

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFIFOAtSameTime(t *testing.T) {
	q := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(1.0, func() { order = append(order, i) })
	}
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	q := New()
	var order []float64
	times := []float64{5, 1, 3, 2, 4, 0.5}
	for _, tm := range times {
		tm := tm
		q.At(tm, func() { order = append(order, tm) })
	}
	q.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of time order: %v", order)
	}
	if q.Now() != 5 {
		t.Errorf("clock = %g, want 5", q.Now())
	}
}

func TestAfterUsesCurrentClock(t *testing.T) {
	q := New()
	var firedAt float64
	q.At(2, func() {
		q.After(3, func() { firedAt = q.Now() })
	})
	q.Run()
	if firedAt != 5 {
		t.Errorf("After fired at %g, want 5", firedAt)
	}
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	e := q.At(1, func() { fired = true })
	q.Cancel(e)
	q.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double cancel and nil cancel are no-ops.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	q := New()
	var order []int
	e1 := q.At(1, func() { order = append(order, 1) })
	q.At(2, func() { order = append(order, 2) })
	q.At(3, func() { order = append(order, 3) })
	q.Cancel(e1)
	q.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Errorf("order = %v, want [2 3]", order)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	q := New()
	if q.Step() {
		t.Error("Step on empty queue should return false")
	}
	q.At(1, func() {})
	if !q.Step() {
		t.Error("Step with pending event should return true")
	}
	if q.Step() {
		t.Error("Step after drain should return false")
	}
}

func TestRunUntil(t *testing.T) {
	q := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		q.At(tm, func() { fired = append(fired, tm) })
	}
	n := q.RunUntil(2.5)
	if n != 2 {
		t.Errorf("RunUntil executed %d events, want 2", n)
	}
	if q.Now() != 2.5 {
		t.Errorf("clock = %g, want 2.5 after RunUntil", q.Now())
	}
	q.Run()
	if len(fired) != 4 {
		t.Errorf("total fired = %d, want 4", len(fired))
	}
}

func TestRunUntilExactBoundaryInclusive(t *testing.T) {
	q := New()
	fired := false
	q.At(2, func() { fired = true })
	q.RunUntil(2)
	if !fired {
		t.Error("event at the deadline should fire")
	}
}

func TestNextTime(t *testing.T) {
	q := New()
	if _, ok := q.NextTime(); ok {
		t.Error("NextTime on empty queue should report false")
	}
	e := q.At(3, func() {})
	q.At(5, func() {})
	if tm, ok := q.NextTime(); !ok || tm != 3 {
		t.Errorf("NextTime = %g,%v want 3,true", tm, ok)
	}
	q.Cancel(e)
	if tm, ok := q.NextTime(); !ok || tm != 5 {
		t.Errorf("NextTime after cancel = %g,%v want 5,true", tm, ok)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	q := New()
	q.At(5, func() {})
	q.Run()
	mustPanic(t, "past", func() { q.At(1, func() {}) })
	mustPanic(t, "nan", func() { q.At(math.NaN(), func() {}) })
	mustPanic(t, "inf", func() { q.At(math.Inf(1), func() {}) })
	mustPanic(t, "nil fn", func() { q.At(6, nil) })
	mustPanic(t, "negative delay", func() { q.After(-1, func() {}) })
	mustPanic(t, "RunUntil past", func() { q.RunUntil(1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestFiredCounter(t *testing.T) {
	q := New()
	for i := 0; i < 7; i++ {
		q.At(float64(i), func() {})
	}
	e := q.At(100, func() {})
	q.Cancel(e)
	q.Run()
	if q.Fired() != 7 {
		t.Errorf("Fired = %d, want 7 (cancelled events don't count)", q.Fired())
	}
}

func TestCascadingSchedule(t *testing.T) {
	// An event chain where each event schedules the next models how the
	// simulator advances cores task by task.
	q := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			q.After(0.5, step)
		}
	}
	q.After(0.5, step)
	q.Run()
	if count != 100 {
		t.Errorf("chain executed %d steps, want 100", count)
	}
	if got, want := q.Now(), 50.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("clock = %g, want %g", got, want)
	}
}

// Property: for any random set of event times, execution order is a
// non-decreasing time sequence and all events fire exactly once.
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New()
		total := int(n%64) + 1
		var fired []float64
		for i := 0; i < total; i++ {
			tm := rng.Float64() * 100
			tm2 := tm
			q.At(tm, func() { fired = append(fired, tm2) })
		}
		q.Run()
		return len(fired) == total && sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
