// Package event implements the discrete-event simulation engine that
// underlies the EEWA multi-core machine model.
//
// The engine is a classic calendar queue: events are (time, callback)
// pairs ordered by a binary heap; popping an event advances the
// simulated clock to the event's timestamp and invokes its callback,
// which may schedule further events. Ties in time are broken by a
// monotonically increasing sequence number so that simulation runs are
// fully deterministic — a property every scheduler test in this
// repository relies on.
//
// Time is a float64 measured in seconds. The engine itself attaches no
// unit semantics; the machine model defines them.
package event

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The zero value is not useful; obtain
// events from Queue.At. An Event may be cancelled until it fires.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index; -1 once removed
	fn       func()
	canceled bool
}

// Time returns the simulated time at which the event is due.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e.canceled }

// Queue is a discrete-event queue with its own simulated clock.
// A Queue is not safe for concurrent use: the simulator is
// single-threaded by design (determinism beats parallel speed for a
// scheduler model of this size).
type Queue struct {
	now     float64
	nextSeq uint64
	heap    eventHeap
	fired   uint64
}

// New returns an empty queue with the clock at zero.
func New() *Queue {
	return &Queue{}
}

// Now returns the current simulated time in seconds.
func (q *Queue) Now() float64 { return q.now }

// Len returns the number of pending (non-cancelled) events.
// Cancelled events still occupy the heap until popped, so Len compensates
// by walking would be O(n); instead the queue keeps lazy deletion and Len
// reports the heap size minus nothing — callers that need an exact count
// should use Empty, which skips cancelled heads.
func (q *Queue) Len() int { return len(q.heap) }

// Fired returns the number of events executed so far; useful for
// overhead accounting and loop-bound assertions in tests.
func (q *Queue) Fired() uint64 { return q.fired }

// At schedules fn to run at absolute simulated time t and returns the
// event handle. Scheduling in the past is a programming error in a
// discrete-event model, so it panics.
func (q *Queue) At(t float64, fn func()) *Event {
	if t < q.now {
		panic(fmt.Sprintf("event: scheduling at %g before now %g", t, q.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("event: non-finite time %g", t))
	}
	if fn == nil {
		panic("event: nil callback")
	}
	e := &Event{time: t, seq: q.nextSeq, fn: fn}
	q.nextSeq++
	heap.Push(&q.heap, e)
	return e
}

// After schedules fn to run d seconds from now.
func (q *Queue) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %g", d))
	}
	return q.At(q.now+d, fn)
}

// Cancel marks e as cancelled. Cancelling an already-fired or
// already-cancelled event is a no-op, which lets callers cancel
// defensively.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
}

// Step pops and runs the next pending event, advancing the clock.
// It returns false when no events remain. Cancelled events are skipped
// silently (lazy deletion).
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		e := heap.Pop(&q.heap).(*Event)
		if e.canceled {
			continue
		}
		q.now = e.time
		q.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, advancing the clock to
// exactly deadline afterwards (even if the last event fired earlier).
// It returns the number of events executed.
func (q *Queue) RunUntil(deadline float64) int {
	if deadline < q.now {
		panic(fmt.Sprintf("event: RunUntil(%g) before now %g", deadline, q.now))
	}
	n := 0
	for {
		e := q.peek()
		if e == nil || e.time > deadline {
			break
		}
		if q.Step() {
			n++
		}
	}
	q.now = deadline
	return n
}

// peek returns the next non-cancelled event without popping it, pruning
// cancelled heads as a side effect.
func (q *Queue) peek() *Event {
	for len(q.heap) > 0 {
		e := q.heap[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&q.heap)
	}
	return nil
}

// NextTime returns the timestamp of the next pending event and true, or
// 0 and false when the queue is empty.
func (q *Queue) NextTime() (float64, bool) {
	e := q.peek()
	if e == nil {
		return 0, false
	}
	return e.time, true
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
