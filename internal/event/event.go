// Package event implements the discrete-event simulation engine that
// underlies the EEWA multi-core machine model.
//
// The engine is a calendar queue organized as *time buckets*: events
// due at the same simulated instant share a bucket, and the buckets
// are ordered by a binary heap on (time, creation seq). Popping a
// bucket advances the simulated clock to its timestamp and invokes its
// events in scheduling order, so the heap is touched once per distinct
// timestamp rather than once per event — the dominant pattern in the
// scheduler (a batch start schedules one wake-up per core at the same
// instant, and task completions cluster on quantized probe/steal
// costs). Same-time ordering is scheduling order (FIFO), which keeps
// simulation runs fully deterministic — a property every scheduler
// test in this repository relies on.
//
// Three scheduling paths exist, from coldest to hottest:
//
//   - At returns an *Event handle that can be cancelled, at the cost
//     of one handle allocation per event;
//   - AtFast stores just the callback, with no handle and no per-event
//     allocation, for callers that never cancel;
//   - AtIndex stores a bare int32 payload dispatched to the callback
//     registered with SetIndexFn. Buckets hold these as plain integers
//     — no pointer is written per event, so the hottest path (the sim
//     engine's per-task completion events, keyed by core index) incurs
//     neither allocation nor GC write-barrier traffic.
//
// The buckets themselves live in a dense arena and the heap orders
// int32 arena indices, so heap maintenance is pointer-free too: a GC
// write barrier never fires on the schedule/drain path.
//
// Time is a float64 measured in seconds. The engine itself attaches no
// unit semantics; the machine model defines them.
package event

import (
	"fmt"
	"math"
)

// Event is the cancellable handle of a scheduled callback. The zero
// value is not useful; obtain events from Queue.At. An Event may be
// cancelled until it fires.
type Event struct {
	time     float64
	canceled bool
	fired    bool
}

// Time returns the simulated time at which the event is due.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e.canceled }

// evBox holds a callback-style event's pointers outside the buckets,
// so bucket slots stay pointer-free. ev is nil for AtFast events.
type evBox struct {
	fn func()
	ev *Event
}

// bucket holds events due at one simulated instant, in scheduling
// order. A slot s ≥ 0 is an indexed event with payload s (dispatched
// to the queue's index fn); s < 0 refers to the boxed event at
// q.evs[^s]. next is the drain cursor: slots[:next] have been executed
// or skipped as cancelled.
type bucket struct {
	time  float64
	seq   uint64 // creation order; heap tie-break = FIFO across same-time buckets
	next  int
	slots []int32
}

// compactMinCancelled is the floor below which Cancel never triggers a
// compaction — tiny queues are cheaper to drain lazily than to rebuild.
const compactMinCancelled = 64

// Queue is a discrete-event queue with its own simulated clock.
// A Queue is not safe for concurrent use: the simulator is
// single-threaded by design (determinism beats parallel speed for a
// scheduler model of this size).
type Queue struct {
	now     float64
	nextSeq uint64
	fired   uint64

	// arena owns every bucket; heap is a min-heap of arena indices on
	// (time, seq), and free recycles exhausted buckets' indices. last
	// caches the most recently targeted bucket (-1 = none): the
	// engine's batch-start fan-out and same-time completion cascades
	// append straight into it. When the cache misses, a *new* bucket is
	// opened even if an older same-time bucket exists — once last moves
	// off a bucket nothing can append to it again, so every event in a
	// lower-seq bucket was scheduled before every event in a higher-seq
	// one, and the (time, seq) heap order yields global per-timestamp
	// FIFO without any timestamp index on the schedule path.
	arena []bucket
	heap  []int32
	last  int32
	free  []int32

	// evs is the box table for At/AtFast events; evFree recycles its
	// entries. ixFn dispatches AtIndex payloads.
	evs    []evBox
	evFree []int32
	ixFn   func(int32)

	// live counts pending (non-cancelled, non-fired) events; cancelled
	// counts lazily-deleted events still buried in buckets. Their sum is
	// the physical slot population the compaction threshold is measured
	// against.
	live      int
	cancelled int

	// draining guards against compacting buckets mid-drain (Cancel may
	// be called from inside a callback); the compaction is deferred to
	// the end of the Step/StepBatch that observed it.
	draining    bool
	needCompact bool
}

// New returns an empty queue with the clock at zero.
func New() *Queue {
	return &Queue{last: -1}
}

// Now returns the current simulated time in seconds.
func (q *Queue) Now() float64 { return q.now }

// Len returns the number of pending events: scheduled, not yet fired
// and not cancelled. Cancelled events are lazily deleted and may still
// occupy internal storage, but they are never counted here.
func (q *Queue) Len() int { return q.live }

// Empty reports whether no pending events remain.
func (q *Queue) Empty() bool { return q.live == 0 }

// Fired returns the number of events executed so far; useful for
// overhead accounting and loop-bound assertions in tests.
func (q *Queue) Fired() uint64 { return q.fired }

// checkTime validates a schedule request against the clock.
func (q *Queue) checkTime(t float64) {
	if t < q.now {
		panic(fmt.Sprintf("event: scheduling at %g before now %g", t, q.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("event: non-finite time %g", t))
	}
}

// bucketFor returns the arena index of a bucket accepting appends for
// timestamp t: the cached last bucket when it matches, a fresh (or
// recycled) one otherwise. The returned index is stable; pointers into
// the arena are not (it may grow on the next bucketFor).
func (q *Queue) bucketFor(t float64) int32 {
	if q.last >= 0 && q.arena[q.last].time == t {
		return q.last
	}
	var bi int32
	if n := len(q.free); n > 0 {
		bi = q.free[n-1]
		q.free = q.free[:n-1]
		b := &q.arena[bi]
		b.time, b.next = t, 0
		b.slots = b.slots[:0]
		b.seq = q.nextSeq
	} else {
		if len(q.arena) >= math.MaxInt32 {
			panic("event: bucket arena exceeds int32 index space")
		}
		bi = int32(len(q.arena))
		q.arena = append(q.arena, bucket{time: t, seq: q.nextSeq})
	}
	q.nextSeq++
	q.pushBucket(bi)
	q.last = bi
	return bi
}

// box stores a callback event in the side table and returns its slot
// encoding (^index, always negative).
func (q *Queue) box(fn func(), ev *Event) int32 {
	if fn == nil {
		panic("event: nil callback")
	}
	var i int32
	if n := len(q.evFree); n > 0 {
		i = q.evFree[n-1]
		q.evFree = q.evFree[:n-1]
		q.evs[i] = evBox{fn: fn, ev: ev}
	} else {
		i = int32(len(q.evs))
		q.evs = append(q.evs, evBox{fn: fn, ev: ev})
	}
	return ^i
}

// unbox removes and returns box i's contents, recycling the entry so
// the captured closure is released as soon as the event fires or is
// pruned.
func (q *Queue) unbox(i int32) evBox {
	b := q.evs[i]
	q.evs[i] = evBox{}
	q.evFree = append(q.evFree, i)
	return b
}

// At schedules fn to run at absolute simulated time t and returns the
// event handle. Scheduling in the past is a programming error in a
// discrete-event model, so it panics.
func (q *Queue) At(t float64, fn func()) *Event {
	q.checkTime(t)
	e := &Event{time: t}
	s := q.box(fn, e)
	bi := q.bucketFor(t)
	b := &q.arena[bi]
	b.slots = append(b.slots, s)
	q.live++
	return e
}

// AtFast schedules fn at absolute simulated time t without returning a
// handle: the event cannot be cancelled, and nothing is allocated per
// event beyond amortized table growth.
func (q *Queue) AtFast(t float64, fn func()) {
	q.checkTime(t)
	s := q.box(fn, nil)
	bi := q.bucketFor(t)
	b := &q.arena[bi]
	b.slots = append(b.slots, s)
	q.live++
}

// SetIndexFn registers the dispatch function for AtIndex events. It
// must be set before the first AtIndex call; events already scheduled
// keep firing into the newly registered function, so re-registering
// mid-run is almost certainly a bug.
func (q *Queue) SetIndexFn(fn func(int32)) {
	if fn == nil {
		panic("event: nil index dispatch")
	}
	q.ixFn = fn
}

// AtIndex schedules the payload v (≥ 0) to be dispatched to the
// SetIndexFn callback at absolute simulated time t. The event cannot
// be cancelled, and the bucket stores v as a bare integer: no
// allocation and no pointer write per event. This is the sim engine's
// per-task hot path — completions are keyed by core index.
func (q *Queue) AtIndex(t float64, v int32) {
	q.checkTime(t)
	if v < 0 {
		panic(fmt.Sprintf("event: negative index payload %d", v))
	}
	if q.ixFn == nil {
		panic("event: AtIndex before SetIndexFn")
	}
	bi := q.bucketFor(t)
	b := &q.arena[bi]
	b.slots = append(b.slots, v)
	q.live++
}

// After schedules fn to run d seconds from now.
func (q *Queue) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %g", d))
	}
	return q.At(q.now+d, fn)
}

// Cancel marks e as cancelled. Cancelling an already-fired or
// already-cancelled event is a no-op, which lets callers cancel
// defensively. Cancelled events are deleted lazily; when they come to
// outnumber the pending ones (and exceed a small floor), the queue
// compacts its buckets so abandoned callbacks do not stay pinned until
// their original due time.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled || e.fired {
		return
	}
	e.canceled = true
	q.live--
	q.cancelled++
	if q.cancelled >= compactMinCancelled && q.cancelled > q.live {
		if q.draining {
			q.needCompact = true
		} else {
			q.compact()
		}
	}
}

// canceledSlot reports whether slot s refers to a cancelled event.
func (q *Queue) canceledSlot(s int32) bool {
	if s >= 0 {
		return false
	}
	ev := q.evs[^s].ev
	return ev != nil && ev.canceled
}

// compact rebuilds every bucket without its cancelled slots, dropping
// buckets that become empty, so the closures captured by cancelled
// events are released immediately rather than at their due time.
func (q *Queue) compact() {
	q.needCompact = false
	kept := q.heap[:0]
	for _, bi := range q.heap {
		b := &q.arena[bi]
		w := 0
		for _, s := range b.slots[b.next:] {
			if q.canceledSlot(s) {
				q.unbox(^s)
				q.cancelled--
				continue
			}
			b.slots[w] = s
			w++
		}
		b.next = 0
		b.slots = b.slots[:w]
		if w == 0 {
			if q.last == bi {
				q.last = -1
			}
			q.recycle(bi)
			continue
		}
		kept = append(kept, bi)
	}
	q.heap = kept
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

// recycle returns a popped bucket's arena index to the freelist. Slots
// are bare integers — box entries are released at fire/skip time — so
// no zeroing is needed.
func (q *Queue) recycle(bi int32) {
	b := &q.arena[bi]
	b.slots = b.slots[:0]
	b.next = 0
	q.free = append(q.free, bi)
}

// popHead removes the exhausted head bucket.
func (q *Queue) popHead() {
	bi := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		q.siftDown(0)
	}
	if q.last == bi {
		q.last = -1
	}
	q.recycle(bi)
}

// headBucket returns the arena index of the bucket holding the next
// pending event, pruning cancelled slots and exhausted buckets as a
// side effect, or -1 when no events remain.
func (q *Queue) headBucket() int32 {
	for len(q.heap) > 0 {
		bi := q.heap[0]
		b := &q.arena[bi]
		for b.next < len(b.slots) {
			s := b.slots[b.next]
			if q.canceledSlot(s) {
				q.unbox(^s)
				b.next++
				q.cancelled--
				continue
			}
			return bi
		}
		q.popHead()
	}
	return -1
}

// fire executes slot s (already known non-cancelled), updating the
// fired/live counters.
func (q *Queue) fire(s int32) {
	q.live--
	q.fired++
	if s >= 0 {
		q.ixFn(s)
		return
	}
	box := q.unbox(^s)
	if box.ev != nil {
		box.ev.fired = true
	}
	box.fn()
}

// Step pops and runs the next pending event, advancing the clock.
// It returns false when no events remain. Cancelled events are skipped
// silently (lazy deletion).
func (q *Queue) Step() bool {
	bi := q.headBucket()
	if bi < 0 {
		return false
	}
	b := &q.arena[bi]
	s := b.slots[b.next]
	b.next++
	q.now = b.time
	q.draining = true
	q.fire(s)
	q.draining = false
	if q.needCompact {
		q.compact()
	}
	return true
}

// StepBatch advances the clock to the next pending timestamp and runs
// *every* event due at that instant — including events the callbacks
// schedule at the same instant while the batch drains — touching the
// heap once per bucket (usually once per distinct timestamp). It
// returns the number of events executed, 0 when the queue is empty.
func (q *Queue) StepBatch() int {
	bi := q.headBucket()
	if bi < 0 {
		return 0
	}
	t := q.arena[bi].time
	q.now = t
	n := 0
	q.draining = true
	for {
		// Appends during the drain (callbacks scheduling at q.now) land
		// either directly in this bucket (when it is still the cached
		// last bucket) — picked up by the inner loop — or in a fresh
		// same-time bucket the outer loop reaches next. The arena may
		// grow inside fire, so the bucket pointer is re-derived each
		// iteration rather than held across callbacks.
		for {
			b := &q.arena[bi]
			if b.next >= len(b.slots) {
				break
			}
			s := b.slots[b.next]
			b.next++
			if q.canceledSlot(s) {
				q.unbox(^s)
				q.cancelled--
				continue
			}
			n++
			q.fire(s)
		}
		q.popHead()
		bi = q.headBucket()
		if bi < 0 || q.arena[bi].time != t {
			break
		}
	}
	q.draining = false
	if q.needCompact {
		q.compact()
	}
	return n
}

// Run executes events until the queue is empty, draining one timestamp
// per heap touch.
func (q *Queue) Run() {
	for q.StepBatch() > 0 {
	}
}

// RunUntil executes events with time ≤ deadline, advancing the clock to
// exactly deadline afterwards (even if the last event fired earlier).
// It returns the number of events executed.
func (q *Queue) RunUntil(deadline float64) int {
	if deadline < q.now {
		panic(fmt.Sprintf("event: RunUntil(%g) before now %g", deadline, q.now))
	}
	n := 0
	for {
		bi := q.headBucket()
		if bi < 0 || q.arena[bi].time > deadline {
			break
		}
		n += q.StepBatch()
	}
	q.now = deadline
	return n
}

// NextTime returns the timestamp of the next pending event and true, or
// 0 and false when the queue is empty.
func (q *Queue) NextTime() (float64, bool) {
	bi := q.headBucket()
	if bi < 0 {
		return 0, false
	}
	return q.arena[bi].time, true
}

// slotCount returns the physical slot population across all buckets —
// pending plus lazily-deleted events. Tests use it to pin the
// cancellation-retention bound.
func (q *Queue) slotCount() int {
	n := 0
	for _, bi := range q.heap {
		b := &q.arena[bi]
		n += len(b.slots) - b.next
	}
	return n
}

// The heap orders arena indices by (time, seq): seq breaks same-time
// ties so buckets pop in creation order, which is insertion order of
// their events (see the Queue.last invariant). The sift routines are
// concrete (no container/heap interface dispatch) and swap int32
// indices, not pointers — heap maintenance never triggers a GC write
// barrier.

func (q *Queue) heapLess(a, b int32) bool {
	x, y := &q.arena[a], &q.arena[b]
	if x.time != y.time {
		return x.time < y.time
	}
	return x.seq < y.seq
}

func (q *Queue) pushBucket(bi int32) {
	q.heap = append(q.heap, bi)
	i := len(q.heap) - 1
	h := q.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.heapLess(h[r], h[l]) {
			min = r
		}
		if !q.heapLess(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
