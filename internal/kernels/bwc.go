package kernels

import (
	"encoding/binary"
	"fmt"
)

// BWC is the Burrows-Wheeler transforming compressor of the paper's
// benchmark suite: BWT → move-to-front → run-length → canonical
// Huffman, applied to the whole input as one block.
//
// Format: [4 bytes LE primary index][huffman payload], where the
// payload decodes to RLE(MTF(BWT(data))).
func BWC(data []byte) []byte {
	bwt, primary := BWT(data)
	payload := HuffmanEncode(RLE(MTF(bwt)))
	out := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(primary))
	return append(out, payload...)
}

// UnBWC inverts BWC.
func UnBWC(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("bwc: truncated header")
	}
	primary := int(binary.LittleEndian.Uint32(data))
	rle, err := HuffmanDecode(data[4:])
	if err != nil {
		return nil, fmt.Errorf("bwc: %w", err)
	}
	mtf, err := InverseRLE(rle)
	if err != nil {
		return nil, fmt.Errorf("bwc: %w", err)
	}
	bwt := InverseMTF(mtf)
	if len(bwt) == 0 {
		if primary != 0 {
			return nil, fmt.Errorf("bwc: empty payload with primary %d", primary)
		}
		return nil, nil
	}
	return InverseBWT(bwt, primary)
}

// --- Bzip2-like block compressor ---------------------------------------

// crc32Table is the IEEE 802.3 polynomial table, built at init — we
// implement CRC-32 ourselves to keep the kernel suite self-contained.
var crc32Table [256]uint32

func init() {
	const poly = 0xEDB88320
	for i := range crc32Table {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ poly
			} else {
				crc >>= 1
			}
		}
		crc32Table[i] = crc
	}
}

// CRC32 computes the IEEE CRC-32 checksum of data.
func CRC32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc32Table[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

// Bzip2BlockSize is the default block size of the bzip2-like
// compressor (real bzip2 uses 100 kB × level; blocks here are smaller
// so the parallel examples get many tasks).
const Bzip2BlockSize = 64 << 10

// Bzip2Like compresses data block-wise: each block is independently
// BWC-compressed and carries a CRC-32 of its plaintext, so blocks can
// be compressed by parallel tasks and verified on decode — the
// structure the paper's Bzip-2 benchmark parallelizes over.
//
// Container: [4 bytes LE block count] then per block:
// [4 bytes LE plain length][4 bytes LE CRC][4 bytes LE comp length][BWC bytes].
func Bzip2Like(data []byte, blockSize int) ([]byte, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("bzip2: block size must be positive, got %d", blockSize)
	}
	nblocks := (len(data) + blockSize - 1) / blockSize
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, uint32(nblocks))
	for i := 0; i < nblocks; i++ {
		lo, hi := i*blockSize, (i+1)*blockSize
		if hi > len(data) {
			hi = len(data)
		}
		block := data[lo:hi]
		comp := BWC(block)
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(block)))
		binary.LittleEndian.PutUint32(hdr[4:], CRC32(block))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(comp)))
		out = append(out, hdr[:]...)
		out = append(out, comp...)
	}
	return out, nil
}

// UnBzip2Like decompresses a Bzip2Like container, verifying every
// block's checksum.
func UnBzip2Like(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("bzip2: truncated container")
	}
	nblocks := binary.LittleEndian.Uint32(data)
	pos := 4
	var out []byte
	for i := uint32(0); i < nblocks; i++ {
		if pos+12 > len(data) {
			return nil, fmt.Errorf("bzip2: block %d header truncated", i)
		}
		plainLen := binary.LittleEndian.Uint32(data[pos:])
		crc := binary.LittleEndian.Uint32(data[pos+4:])
		compLen := binary.LittleEndian.Uint32(data[pos+8:])
		pos += 12
		if pos+int(compLen) > len(data) {
			return nil, fmt.Errorf("bzip2: block %d payload truncated", i)
		}
		block, err := UnBWC(data[pos : pos+int(compLen)])
		if err != nil {
			return nil, fmt.Errorf("bzip2: block %d: %w", i, err)
		}
		pos += int(compLen)
		if uint32(len(block)) != plainLen {
			return nil, fmt.Errorf("bzip2: block %d length %d, want %d", i, len(block), plainLen)
		}
		if CRC32(block) != crc {
			return nil, fmt.Errorf("bzip2: block %d checksum mismatch", i)
		}
		out = append(out, block...)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("bzip2: %d trailing bytes", len(data)-pos)
	}
	return out, nil
}
