package kernels

import (
	"encoding/binary"
	"fmt"
)

// Dynamic Markov Coding (Cormack & Horspool, 1987): a bit-level
// adaptive model — a finite-state machine whose states hold 0/1
// transition counts and which *clones* heavily-used states to grow
// context — driving a binary arithmetic coder. This is the paper's DMC
// benchmark kernel, implemented from the original description.

// --- binary arithmetic coder -------------------------------------------

// arithEncoder is a classic 32-bit binary arithmetic encoder with
// underflow (E3) handling.
type arithEncoder struct {
	low, high uint32
	pending   int
	w         bitWriter
}

func newArithEncoder() *arithEncoder {
	return &arithEncoder{low: 0, high: ^uint32(0)}
}

// encode narrows the interval for one bit. p1 is P(bit=1) in 1/65536
// units, clamped to (0, 1).
func (e *arithEncoder) encode(bit int, p1 uint32) {
	span := uint64(e.high) - uint64(e.low)
	split := e.low + uint32((span*uint64(p1))>>16)
	// split ∈ [low, high); bit 1 takes [low, split], bit 0 (split, high].
	if bit == 1 {
		e.high = split
	} else {
		e.low = split + 1
	}
	for {
		switch {
		case e.high < 1<<31:
			e.emit(0)
		case e.low >= 1<<31:
			e.emit(1)
			e.low -= 1 << 31
			e.high -= 1 << 31
		case e.low >= 1<<30 && e.high < 3<<30:
			e.pending++
			e.low -= 1 << 30
			e.high -= 1 << 30
		default:
			return
		}
		e.low <<= 1
		e.high = e.high<<1 | 1
	}
}

func (e *arithEncoder) emit(bit uint32) {
	e.w.write(bit, 1)
	for ; e.pending > 0; e.pending-- {
		e.w.write(bit^1, 1)
	}
}

// finish flushes the interval: two disambiguating bits plus padding.
func (e *arithEncoder) finish() []byte {
	e.pending++
	if e.low >= 1<<30 {
		e.emit(1)
	} else {
		e.emit(0)
	}
	e.w.flush()
	return e.w.out
}

// arithDecoder mirrors arithEncoder.
type arithDecoder struct {
	low, high, code uint32
	r               bitReader
}

func newArithDecoder(data []byte) *arithDecoder {
	d := &arithDecoder{low: 0, high: ^uint32(0), r: bitReader{in: data}}
	for i := 0; i < 32; i++ {
		d.code = d.code<<1 | d.readBit()
	}
	return d
}

func (d *arithDecoder) readBit() uint32 {
	b, ok := d.r.read(1)
	if !ok {
		return 0 // zero-padding past the end is part of the format
	}
	return b
}

func (d *arithDecoder) decode(p1 uint32) int {
	span := uint64(d.high) - uint64(d.low)
	split := d.low + uint32((span*uint64(p1))>>16)
	var bit int
	if d.code <= split {
		bit = 1
		d.high = split
	} else {
		d.low = split + 1
	}
	for {
		switch {
		case d.high < 1<<31:
			// nothing
		case d.low >= 1<<31:
			d.low -= 1 << 31
			d.high -= 1 << 31
			d.code -= 1 << 31
		case d.low >= 1<<30 && d.high < 3<<30:
			d.low -= 1 << 30
			d.high -= 1 << 30
			d.code -= 1 << 30
		default:
			return bit
		}
		d.low <<= 1
		d.high = d.high<<1 | 1
		d.code = d.code<<1 | d.readBit()
	}
}

// --- DMC model ----------------------------------------------------------

type dmcState struct {
	next  [2]int32
	count [2]float32
}

// dmcModel is the cloning finite-state machine. The initial machine is
// the standard byte-structured braid: 255 tree nodes per 256 chains is
// overkill for this corpus, so we use the common compact variant — a
// complete binary tree of depth 8 whose leaves feed back to the root.
type dmcModel struct {
	states []dmcState
	cur    int32
	// cloning thresholds (Cormack & Horspool's C1/C2).
	bigThresh   float32
	smallThresh float32
	maxStates   int
}

func newDMCModel() *dmcModel {
	m := &dmcModel{bigThresh: 2, smallThresh: 2, maxStates: 1 << 20}
	// Depth-8 binary tree: node i has children 2i+1, 2i+2; leaves wrap
	// to the root, giving an order-1 (within byte) initial machine.
	const depth = 8
	n := (1 << depth) - 1
	m.states = make([]dmcState, n)
	for i := 0; i < n; i++ {
		l, r := int32(2*i+1), int32(2*i+2)
		if int(l) >= n {
			l = 0
		}
		if int(r) >= n {
			r = 0
		}
		m.states[i] = dmcState{next: [2]int32{l, r}, count: [2]float32{0.2, 0.2}}
	}
	return m
}

// p1 returns P(next bit = 1) in 1/65536 units, clamped away from 0 and
// 65536 so the coder interval never collapses.
func (m *dmcModel) p1() uint32 {
	s := &m.states[m.cur]
	p := float64(s.count[1]) / float64(s.count[0]+s.count[1])
	v := uint32(p * 65536)
	if v < 1 {
		v = 1
	}
	if v > 65535 {
		v = 65535
	}
	return v
}

// update advances the machine over one observed bit, cloning the
// target state when both the traversed edge and the target are heavy.
func (m *dmcModel) update(bit int) {
	s := &m.states[m.cur]
	target := s.next[bit]
	t := &m.states[target]
	edgeCount := s.count[bit]
	targetTotal := t.count[0] + t.count[1]

	if edgeCount > m.bigThresh && targetTotal-edgeCount > m.smallThresh && len(m.states) < m.maxStates {
		// Clone: the new state inherits the target's transitions and a
		// share of its counts proportional to the edge usage.
		frac := edgeCount / targetTotal
		clone := dmcState{
			next:  t.next,
			count: [2]float32{t.count[0] * frac, t.count[1] * frac},
		}
		t.count[0] -= clone.count[0]
		t.count[1] -= clone.count[1]
		m.states = append(m.states, clone)
		target = int32(len(m.states) - 1)
		m.states[m.cur].next[bit] = target
	}

	m.states[m.cur].count[bit] += 1
	m.cur = target
}

// DMCCompress encodes data with dynamic Markov coding.
// Format: [4 bytes LE length][arithmetic-coded bits].
func DMCCompress(data []byte) []byte {
	model := newDMCModel()
	enc := newArithEncoder()
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bit := int(b>>uint(i)) & 1
			enc.encode(bit, model.p1())
			model.update(bit)
		}
	}
	payload := enc.finish()
	out := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(data)))
	return append(out, payload...)
}

// DMCDecompress inverts DMCCompress.
func DMCDecompress(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("dmc: truncated header")
	}
	n := binary.LittleEndian.Uint32(data)
	// A corrupted header must not force a giant upfront allocation; the
	// slice grows on demand if the stream really is that long.
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	model := newDMCModel()
	dec := newArithDecoder(data[4:])
	out := make([]byte, 0, capHint)
	for len(out) < int(n) {
		var b byte
		for i := 0; i < 8; i++ {
			bit := dec.decode(model.p1())
			model.update(bit)
			b = b<<1 | byte(bit)
		}
		out = append(out, b)
	}
	return out, nil
}
