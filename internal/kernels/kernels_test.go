package kernels

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// --- digest vectors ------------------------------------------------------

func TestMD5Vectors(t *testing.T) {
	// RFC 1321 appendix A.5 test suite.
	vectors := map[string]string{
		"":                           "d41d8cd98f00b204e9800998ecf8427e",
		"a":                          "0cc175b9c0f1b6a831c399e269772661",
		"abc":                        "900150983cd24fb0d6963f7d28e17f72",
		"message digest":             "f96b697d7cb7938d525a2f31aaf161d0",
		"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
		"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789":                   "d174ab98d277d9f5a5611c2c9f419d9f",
		"12345678901234567890123456789012345678901234567890123456789012345678901234567890": "57edf4a22be3c955ac49da2e2107b67a",
	}
	for msg, want := range vectors {
		got := MD5([]byte(msg))
		if hex.EncodeToString(got[:]) != want {
			t.Errorf("MD5(%q) = %x, want %s", msg, got, want)
		}
	}
}

func TestSHA1Vectors(t *testing.T) {
	// RFC 3174 / FIPS 180-1 test vectors.
	vectors := map[string]string{
		"":    "da39a3ee5e6b4b0d3255bfef95601890afd80709",
		"abc": "a9993e364706816aba3e25717850c26c9cd0d89d",
		"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq": "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
		"The quick brown fox jumps over the lazy dog":              "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
	}
	for msg, want := range vectors {
		got := SHA1([]byte(msg))
		if hex.EncodeToString(got[:]) != want {
			t.Errorf("SHA1(%q) = %x, want %s", msg, got, want)
		}
	}
}

func TestSHA1MillionA(t *testing.T) {
	if testing.Short() {
		t.Skip("million-a vector in -short mode")
	}
	msg := bytes.Repeat([]byte("a"), 1000000)
	got := SHA1(msg)
	want := "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("SHA1(1M×'a') = %x, want %s", got, want)
	}
}

func TestMD5BlockBoundaries(t *testing.T) {
	// Lengths around the 64-byte block and 56-byte padding boundary are
	// the classic off-by-one sites.
	for _, n := range []int{54, 55, 56, 57, 63, 64, 65, 119, 120, 128} {
		msg := bytes.Repeat([]byte{0xA5}, n)
		got := MD5(msg)
		// Self-consistency: a second evaluation must match, and
		// changing one byte must change the digest.
		if got != MD5(msg) {
			t.Errorf("len %d: nondeterministic digest", n)
		}
		msg[0] ^= 1
		if got == MD5(msg) {
			t.Errorf("len %d: digest ignores first byte", n)
		}
	}
}

// --- corpora --------------------------------------------------------------

// corpus returns a mix of compressible and incompressible test inputs.
func corpus() map[string][]byte {
	rng := xrand.New(2024)
	random := make([]byte, 8192)
	for i := range random {
		random[i] = byte(rng.Uint64())
	}
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	runs := bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 7, 7, 7, 1}, 500)
	structured := make([]byte, 4096)
	for i := range structured {
		structured[i] = byte(i % 17 * 13)
	}
	return map[string][]byte{
		"empty":      {},
		"single":     {42},
		"pair":       {1, 2},
		"text":       text,
		"random":     random,
		"runs":       runs,
		"structured": structured,
		"allsame":    bytes.Repeat([]byte{9}, 2000),
	}
}

// --- LZW -------------------------------------------------------------------

func TestLZWRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			comp := LZWCompress(data)
			got, err := LZWDecompress(comp)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round-trip mismatch: %d bytes in, %d out", len(data), len(got))
			}
		})
	}
}

func TestLZWCompressesText(t *testing.T) {
	text := bytes.Repeat([]byte("abcabcabcabc"), 1000)
	comp := LZWCompress(text)
	if len(comp) >= len(text)/2 {
		t.Errorf("LZW on repetitive text: %d -> %d bytes, expected >2x compression", len(text), len(comp))
	}
}

func TestLZWDictionaryReset(t *testing.T) {
	// Enough distinct digrams to overflow a 14-bit dictionary.
	rng := xrand.New(7)
	data := make([]byte, 200000)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	comp := LZWCompress(data)
	got, err := LZWDecompress(comp)
	if err != nil {
		t.Fatalf("decompress after reset: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip through dictionary reset failed")
	}
}

func TestLZWRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		got, err := LZWDecompress(LZWCompress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLZWRejectsGarbage(t *testing.T) {
	if _, err := LZWDecompress([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("garbage stream should error (starts with non-literal)")
	}
}

// --- Huffman ----------------------------------------------------------------

func TestHuffmanRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			comp := HuffmanEncode(data)
			got, err := HuffmanDecode(comp)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round-trip mismatch (%d in, %d out)", len(data), len(got))
			}
		})
	}
}

func TestHuffmanSkewedHistogram(t *testing.T) {
	// Heavily skewed frequencies produce long codes.
	var data []byte
	for s := 0; s < 16; s++ {
		data = append(data, bytes.Repeat([]byte{byte(s)}, 1<<s)...)
	}
	got, err := HuffmanDecode(HuffmanEncode(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("skewed round-trip failed")
	}
}

func TestHuffmanCompressesBiasedData(t *testing.T) {
	data := bytes.Repeat([]byte{'a', 'a', 'a', 'b'}, 4096)
	comp := HuffmanEncode(data)
	if len(comp) >= len(data)/2 {
		t.Errorf("biased data %d -> %d bytes, expected >2x compression", len(data), len(comp))
	}
}

func TestHuffmanTruncatedErrors(t *testing.T) {
	comp := HuffmanEncode([]byte("hello world hello world"))
	if _, err := HuffmanDecode(comp[:len(comp)-1]); err == nil {
		t.Error("truncated payload should error")
	}
	if _, err := HuffmanDecode(comp[:100]); err == nil {
		t.Error("truncated header should error")
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		got, err := HuffmanDecode(HuffmanEncode(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- BWT / MTF / RLE ---------------------------------------------------------

func TestBWTKnownVector(t *testing.T) {
	// Classic example: "banana" rotations sorted give BWT "nnbaaa"
	// with primary index 3.
	bwt, primary := BWT([]byte("banana"))
	if string(bwt) != "nnbaaa" {
		t.Errorf("BWT(banana) = %q, want nnbaaa", bwt)
	}
	if primary != 3 {
		t.Errorf("primary = %d, want 3", primary)
	}
}

func TestBWTRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			bwt, primary := BWT(data)
			got, err := InverseBWT(bwt, primary)
			if err != nil {
				t.Fatalf("inverse: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("BWT round-trip failed")
			}
		})
	}
}

func TestBWTPeriodicInput(t *testing.T) {
	// Periodic strings have equal rotations — the tie-handling case.
	data := bytes.Repeat([]byte("ab"), 64)
	bwt, primary := BWT(data)
	got, err := InverseBWT(bwt, primary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("periodic BWT round-trip failed")
	}
}

func TestInverseBWTBadPrimary(t *testing.T) {
	if _, err := InverseBWT([]byte("abc"), 5); err == nil {
		t.Error("out-of-range primary should error")
	}
}

func TestMTFRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			if got := InverseMTF(MTF(data)); !bytes.Equal(got, data) {
				t.Fatal("MTF round-trip failed")
			}
		})
	}
}

func TestMTFFrontLoading(t *testing.T) {
	// After BWT, repeated characters should yield many zeros.
	out := MTF([]byte("aaaabbbbaaaa"))
	zeros := 0
	for _, v := range out {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 8 {
		t.Errorf("MTF produced %d zeros of 12, want ≥ 8", zeros)
	}
}

func TestRLERoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			got, err := InverseRLE(RLE(data))
			if err != nil {
				t.Fatalf("inverse: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("RLE round-trip failed")
			}
		})
	}
}

func TestRLELongRuns(t *testing.T) {
	for _, n := range []int{4, 5, 258, 259, 260, 1000} {
		data := bytes.Repeat([]byte{7}, n)
		got, err := InverseRLE(RLE(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("run of %d failed (err=%v)", n, err)
		}
	}
}

func TestRLETruncatedErrors(t *testing.T) {
	if _, err := InverseRLE([]byte{5, 5, 5, 5}); err == nil {
		t.Error("run of 4 without count byte should error")
	}
}

func TestBWTMTFRLEProperty(t *testing.T) {
	f := func(data []byte) bool {
		bwt, primary := BWT(data)
		rt, err := InverseBWT(bwt, primary)
		if err != nil || !bytes.Equal(rt, data) {
			return false
		}
		rle, err := InverseRLE(RLE(data))
		if err != nil || !bytes.Equal(rle, data) {
			return false
		}
		return bytes.Equal(InverseMTF(MTF(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// --- BWC and Bzip2-like -------------------------------------------------------

func TestBWCRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			got, err := UnBWC(BWC(data))
			if err != nil {
				t.Fatalf("UnBWC: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("BWC round-trip failed")
			}
		})
	}
}

func TestBWCCompressesText(t *testing.T) {
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 100)
	comp := BWC(text)
	if len(comp) >= len(text)/2 {
		t.Errorf("BWC on text: %d -> %d, expected >2x compression", len(text), len(comp))
	}
}

func TestBzip2LikeRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			comp, err := Bzip2Like(data, 1024)
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnBzip2Like(comp)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("bzip2-like round-trip failed")
			}
		})
	}
}

func TestBzip2LikeDetectsCorruption(t *testing.T) {
	data := bytes.Repeat([]byte("checksum me "), 500)
	comp, err := Bzip2Like(data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte past the headers; the CRC must catch it.
	comp[len(comp)/2] ^= 0x40
	if _, err := UnBzip2Like(comp); err == nil {
		t.Error("corrupted container decompressed cleanly")
	}
}

func TestBzip2LikeBadBlockSize(t *testing.T) {
	if _, err := Bzip2Like([]byte("x"), 0); err == nil {
		t.Error("zero block size should error")
	}
}

func TestCRC32KnownVector(t *testing.T) {
	// The canonical "123456789" check value for CRC-32/IEEE.
	if got := CRC32([]byte("123456789")); got != 0xCBF43926 {
		t.Errorf("CRC32(123456789) = %08x, want CBF43926", got)
	}
	if got := CRC32(nil); got != 0 {
		t.Errorf("CRC32(nil) = %08x, want 0", got)
	}
}

// --- DMC ------------------------------------------------------------------------

func TestDMCRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		t.Run(name, func(t *testing.T) {
			got, err := DMCDecompress(DMCCompress(data))
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("DMC round-trip failed (%d in, %d out)", len(data), len(got))
			}
		})
	}
}

func TestDMCCompressesText(t *testing.T) {
	text := bytes.Repeat([]byte("dynamic markov coding adapts to its input. "), 300)
	comp := DMCCompress(text)
	if len(comp) >= len(text)/2 {
		t.Errorf("DMC on text: %d -> %d, expected >2x compression", len(text), len(comp))
	}
}

func TestDMCRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		got, err := DMCDecompress(DMCCompress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDMCTruncatedHeader(t *testing.T) {
	if _, err := DMCDecompress([]byte{1, 2}); err == nil {
		t.Error("truncated header should error")
	}
}

// --- JPEG-ish ---------------------------------------------------------------------

// testImage builds a smooth gradient with some texture — a realistic
// photographic stand-in.
func testImage(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 128 + 64*((x+y)%32)/32 + (x*y)%17 - 8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Pix[y*w+x] = byte(v)
		}
	}
	return im
}

func TestJPEGishRoundTripQuality(t *testing.T) {
	im := testImage(64, 48)
	for _, q := range []int{30, 50, 80, 95} {
		comp, err := EncodeJPEGish(im, q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		dec, err := DecodeJPEGish(comp)
		if err != nil {
			t.Fatalf("q=%d decode: %v", q, err)
		}
		psnr, err := PSNR(im, dec)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 28 {
			t.Errorf("q=%d: PSNR %.1f dB, want ≥ 28 dB", q, psnr)
		}
	}
}

func TestJPEGishQualityMonotonicity(t *testing.T) {
	im := testImage(64, 64)
	lo, _ := EncodeJPEGish(im, 20)
	hi, _ := EncodeJPEGish(im, 90)
	if len(hi) <= len(lo) {
		t.Errorf("higher quality should cost more bytes: q20=%d q90=%d", len(lo), len(hi))
	}
	decLo, _ := DecodeJPEGish(lo)
	decHi, _ := DecodeJPEGish(hi)
	psnrLo, _ := PSNR(im, decLo)
	psnrHi, _ := PSNR(im, decHi)
	if psnrHi <= psnrLo {
		t.Errorf("higher quality should reconstruct better: %.1f vs %.1f dB", psnrLo, psnrHi)
	}
}

func TestJPEGishNonMultipleOf8(t *testing.T) {
	im := testImage(37, 29) // partial edge blocks
	comp, err := EncodeJPEGish(im, 75)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJPEGish(comp)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 37 || dec.H != 29 {
		t.Errorf("decoded size %dx%d, want 37x29", dec.W, dec.H)
	}
	psnr, _ := PSNR(im, dec)
	if psnr < 25 {
		t.Errorf("edge-block PSNR %.1f dB too low", psnr)
	}
}

func TestJPEGishFlatImage(t *testing.T) {
	im := NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 100
	}
	comp, err := EncodeJPEGish(im, 50)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJPEGish(comp)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := PSNR(im, dec)
	if psnr < 40 {
		t.Errorf("flat image PSNR %.1f dB, want ≥ 40", psnr)
	}
}

func TestJPEGishErrors(t *testing.T) {
	if _, err := EncodeJPEGish(nil, 50); err == nil {
		t.Error("nil image should error")
	}
	if _, err := EncodeJPEGish(&Image{W: 3, H: 3, Pix: []byte{1}}, 50); err == nil {
		t.Error("inconsistent image should error")
	}
	if _, err := DecodeJPEGish([]byte{1, 2, 3}); err == nil {
		t.Error("truncated data should error")
	}
	a, b := NewImage(2, 2), NewImage(3, 3)
	if _, err := PSNR(a, b); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestDCTInverseIsIdentity(t *testing.T) {
	var blk, orig [64]float64
	rng := xrand.New(55)
	for i := range blk {
		blk[i] = rng.Range(-128, 128)
		orig[i] = blk[i]
	}
	fdct8(&blk)
	idct8(&blk)
	for i := range blk {
		if diff := blk[i] - orig[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("DCT/IDCT not inverse at %d: %g vs %g", i, blk[i], orig[i])
		}
	}
}

// --- package-level helpers ---------------------------------------------------------

func TestKeepAlive(t *testing.T) {
	before := Sink.Load()
	KeepAlive([]byte{1, 2, 3})
	if Sink.Load() == before {
		t.Error("KeepAlive should fold into Sink")
	}
}

// --- corpus generators -------------------------------------------------------

func TestCorpusDeterminismAndSize(t *testing.T) {
	for name, gen := range map[string]func(uint64, int) []byte{
		"text":       TextCorpus,
		"random":     RandomCorpus,
		"structured": StructuredCorpus,
	} {
		t.Run(name, func(t *testing.T) {
			a := gen(5, 4096)
			b := gen(5, 4096)
			if len(a) != 4096 {
				t.Fatalf("len = %d, want 4096", len(a))
			}
			if !bytes.Equal(a, b) {
				t.Error("same seed must give identical corpus")
			}
			c := gen(6, 4096)
			if bytes.Equal(a, c) {
				t.Error("different seeds should differ")
			}
		})
	}
}

func TestCorpusCompressibilityOrdering(t *testing.T) {
	// Text compresses well, structured moderately, random not at all —
	// the property that makes them useful as benchmark inputs.
	n := 16 << 10
	text := len(BWC(TextCorpus(1, n)))
	structured := len(BWC(StructuredCorpus(1, n)))
	random := len(BWC(RandomCorpus(1, n)))
	if !(text < structured && structured < random) {
		t.Errorf("compressed sizes text=%d structured=%d random=%d — expected strictly increasing", text, structured, random)
	}
	if random < n {
		t.Errorf("random corpus compressed below input size: %d < %d", random, n)
	}
}

func TestGradientImage(t *testing.T) {
	im := GradientImage(3, 48, 32)
	if im.W != 48 || im.H != 32 || len(im.Pix) != 48*32 {
		t.Fatalf("image shape %dx%d len %d", im.W, im.H, len(im.Pix))
	}
	comp, err := EncodeJPEGish(im, 75)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJPEGish(comp)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := PSNR(im, dec)
	if psnr < 25 {
		t.Errorf("gradient image PSNR %.1f too low", psnr)
	}
}

// --- decoder robustness on garbage inputs ------------------------------------

// TestDecodersNeverPanicOnGarbage feeds random bytes to every decoder:
// each must return (possibly wrong) output or an error — never panic.
// Claimed-length headers are truncated so a corrupted length cannot
// demand gigabytes.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	decoders := map[string]func([]byte) error{
		"lzw":     func(b []byte) error { _, err := LZWDecompress(b); return err },
		"huffman": func(b []byte) error { _, err := HuffmanDecode(b); return err },
		"bwc":     func(b []byte) error { _, err := UnBWC(b); return err },
		"bzip2":   func(b []byte) error { _, err := UnBzip2Like(b); return err },
		"rle":     func(b []byte) error { _, err := InverseRLE(b); return err },
		"jpegish": func(b []byte) error { _, err := DecodeJPEGish(b); return err },
	}
	rng := xrand.New(77)
	for name, dec := range decoders {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				n := rng.Intn(600)
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Uint64())
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("trial %d (len %d): decoder panicked: %v", trial, n, r)
						}
					}()
					_ = dec(data)
				}()
			}
		})
	}
}

// TestHuffmanHugeClaimedLength crafts a header claiming 4 GB of output
// with a tiny payload: the decoder must fail fast instead of allocating.
func TestHuffmanHugeClaimedLength(t *testing.T) {
	comp := HuffmanEncode([]byte("short"))
	// Overwrite the length header with MaxUint32.
	comp[0], comp[1], comp[2], comp[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := HuffmanDecode(comp); err == nil {
		t.Error("truncated payload with huge claimed length should error")
	}
}

// TestDMCHugeClaimedLength: DMC's arithmetic decoder pads past the end
// with zeros, so a huge claimed length decodes garbage rather than
// erroring — but it must not pre-allocate the claimed 4 GB. We bound
// the run by checking a moderate (1 MB) claim completes.
func TestDMCModerateClaimedLength(t *testing.T) {
	comp := DMCCompress([]byte("short"))
	comp[0], comp[1], comp[2], comp[3] = 0x00, 0x00, 0x01, 0x00 // claim 64 KiB
	out, err := DMCDecompress(comp)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(out) != 1<<16 {
		t.Fatalf("decoded %d bytes, want 65536", len(out))
	}
}
