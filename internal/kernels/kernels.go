// Package kernels contains from-scratch Go implementations of the
// algorithm families behind the paper's Table II benchmarks:
//
//	BWC    — Burrows-Wheeler transform + move-to-front + run-length +
//	         canonical Huffman (bwt.go, mtf.go, huffman.go, bwc.go)
//	Bzip-2 — the same pipeline applied block-wise with a container
//	         format and per-block checksums (bzip2like.go)
//	DMC    — dynamic Markov coding over a cloning bit-predictor with a
//	         binary arithmetic coder (dmc.go)
//	JE     — JPEG-style grayscale encoder: 8×8 DCT, quantization,
//	         zigzag, RLE + Huffman (jpegish.go)
//	LZW    — Lempel-Ziv-Welch with variable-width codes (lzw.go)
//	MD5    — RFC 1321 message digest (md5.go)
//	SHA-1  — RFC 3174 secure hash (sha1.go)
//
// Nothing here imports the standard library's crypto or compress
// packages: the point of the reproduction is to own every substrate
// (see the system inventory in DESIGN.md §3). The implementations are
// deliberately straightforward, CPU-bound and allocation-conscious —
// they are the task payloads of the live work-stealing runtime
// (internal/rt) and the calibration source for the simulator's
// workload mixes.
package kernels

import "sync/atomic"

// Sink prevents dead-code elimination of benchmark payloads; the live
// runtime accumulates digest bytes here-through. It is atomic because
// payloads run concurrently on the runtime's workers.
var Sink atomic.Uint64

// KeepAlive folds b into Sink so the compiler cannot elide the
// computation that produced it. Safe for concurrent use.
func KeepAlive(b []byte) {
	var acc uint64
	for _, x := range b {
		acc = acc*131 + uint64(x)
	}
	Sink.Add(acc)
}
