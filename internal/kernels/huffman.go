package kernels

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
)

// Canonical Huffman coding over the byte alphabet. The encoded format
// is self-describing:
//
//	[4 bytes LE: original length n]
//	[256 bytes: code length of each symbol (0 = unused)]
//	[bit-packed codes, MSB first]
//
// Canonical codes are reconstructed from the lengths alone, so the
// header needs no code table. Lengths are uncapped (≤ 64 in theory,
// ≤ ~40 in practice for 32-bit counts), which keeps the implementation
// honest without the length-limiting heuristics real formats need.

type huffNode struct {
	freq        uint64
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return v
}

// huffLengths computes per-symbol code lengths from frequencies.
func huffLengths(freq [256]uint64) [256]uint8 {
	var lengths [256]uint8
	h := huffHeap{}
	for s, f := range freq {
		if f > 0 {
			h = append(h, &huffNode{freq: f, sym: s})
		}
	}
	if len(h) == 0 {
		return lengths
	}
	if len(h) == 1 {
		lengths[h[0].sym] = 1 // a single symbol still needs one bit
		return lengths
	}
	heap.Init(&h)
	internalSym := 256 // tie-break ids for internal nodes
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{freq: a.freq + b.freq, sym: internalSym, left: a, right: b})
		internalSym++
	}
	root := h[0]
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.left == nil {
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical codes (shorter lengths first, then
// symbol order) from lengths.
func canonicalCodes(lengths [256]uint8) [256]uint64 {
	type sl struct {
		sym int
		l   uint8
	}
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	var codes [256]uint64
	code := uint64(0)
	prevLen := uint8(0)
	for _, s := range syms {
		code <<= (s.l - prevLen)
		codes[s.sym] = code
		code++
		prevLen = s.l
	}
	return codes
}

// HuffmanEncode compresses data with a canonical Huffman code built
// from its byte histogram.
func HuffmanEncode(data []byte) []byte {
	var freq [256]uint64
	for _, b := range data {
		freq[b]++
	}
	lengths := huffLengths(freq)
	codes := canonicalCodes(lengths)

	out := make([]byte, 0, len(data)/2+260)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	out = append(out, hdr[:]...)
	for _, l := range lengths {
		out = append(out, l)
	}
	w := bitWriter{out: out}
	for _, b := range data {
		w.write64(codes[b], uint(lengths[b]))
	}
	w.flush()
	return w.out
}

// write64 emits up to 64 bits MSB-first (bitWriter.write handles ≤ 32).
func (w *bitWriter) write64(code uint64, width uint) {
	if width > 32 {
		w.write(uint32(code>>32), width-32)
		width = 32
		code &= (1 << 32) - 1
	}
	w.write(uint32(code), width)
}

// HuffmanDecode inverts HuffmanEncode.
func HuffmanDecode(data []byte) ([]byte, error) {
	if len(data) < 4+256 {
		return nil, fmt.Errorf("huffman: header truncated (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[:4])
	var lengths [256]uint8
	copy(lengths[:], data[4:260])
	payload := data[260:]
	if n == 0 {
		return nil, nil
	}

	// Canonical decode tables: for each length, the first code and the
	// symbols in canonical order. Lengths come from the (untrusted)
	// header, so all arithmetic is done in int — a length of 255 must
	// not wrap the uint8 table sizes.
	maxLen := 0
	for _, l := range lengths {
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	if maxLen == 0 {
		return nil, fmt.Errorf("huffman: no symbols for %d bytes of output", n)
	}
	count := make([]uint32, maxLen+1)
	for _, l := range lengths {
		if l > 0 {
			count[l]++
		}
	}
	firstCode := make([]uint64, maxLen+2)
	symIndex := make([]uint32, maxLen+2) // offset into symsByLen
	var symsByLen []byte
	{
		code := uint64(0)
		offset := uint32(0)
		for l := 1; l <= maxLen; l++ {
			firstCode[l] = code
			symIndex[l] = offset
			for s := 0; s < 256; s++ {
				if int(lengths[s]) == l {
					symsByLen = append(symsByLen, byte(s))
					offset++
				}
			}
			code = (code + uint64(count[l])) << 1
		}
	}

	// Cap the preallocation: n comes from the (untrusted) header, and a
	// corrupted length must not allocate gigabytes up front. The slice
	// still grows to n if the payload really decodes that far.
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	r := bitReader{in: payload}
	for uint32(len(out)) < n {
		code := uint64(0)
		matched := false
		for l := 1; l <= maxLen; l++ {
			bit, ok := r.read(1)
			if !ok {
				return nil, fmt.Errorf("huffman: truncated payload at symbol %d/%d", len(out), n)
			}
			code = (code << 1) | uint64(bit)
			if count[l] > 0 && code < firstCode[l]+uint64(count[l]) && code >= firstCode[l] {
				idx := symIndex[l] + uint32(code-firstCode[l])
				out = append(out, symsByLen[idx])
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("huffman: invalid code at symbol %d/%d", len(out), n)
		}
	}
	return out, nil
}
