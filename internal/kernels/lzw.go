package kernels

import "fmt"

// LZW implements Lempel-Ziv-Welch compression with variable-width
// codes (9 → lzwMaxBits bits, MSB-first), dictionary reset on
// overflow. The format is self-contained: LZWDecompress inverts
// LZWCompress exactly.

const (
	lzwMinBits   = 9
	lzwMaxBits   = 14
	lzwClearCode = 256 // emitted before a dictionary reset
	lzwFirstCode = 257
)

// bitWriter packs MSB-first variable-width codes.
type bitWriter struct {
	out  []byte
	cur  uint64
	bits uint
}

func (w *bitWriter) write(code uint32, width uint) {
	w.cur = (w.cur << width) | uint64(code)
	w.bits += width
	for w.bits >= 8 {
		w.bits -= 8
		w.out = append(w.out, byte(w.cur>>w.bits))
	}
}

func (w *bitWriter) flush() {
	if w.bits > 0 {
		w.out = append(w.out, byte(w.cur<<(8-w.bits)))
		w.bits = 0
	}
	w.cur = 0
}

// bitReader unpacks MSB-first variable-width codes.
type bitReader struct {
	in   []byte
	pos  int
	cur  uint64
	bits uint
}

func (r *bitReader) read(width uint) (uint32, bool) {
	for r.bits < width {
		if r.pos >= len(r.in) {
			return 0, false
		}
		r.cur = (r.cur << 8) | uint64(r.in[r.pos])
		r.pos++
		r.bits += 8
	}
	r.bits -= width
	code := uint32(r.cur>>r.bits) & ((1 << width) - 1)
	return code, true
}

// LZWCompress encodes data. Empty input yields an empty output.
func LZWCompress(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	type key struct {
		prefix uint32
		b      byte
	}
	dict := make(map[key]uint32, 4096)
	next := uint32(lzwFirstCode)
	width := uint(lzwMinBits)

	var w bitWriter
	cur := uint32(data[0])
	for _, b := range data[1:] {
		k := key{cur, b}
		if code, ok := dict[k]; ok {
			cur = code
			continue
		}
		w.write(cur, width)
		dict[k] = next
		next++
		// Widen when the next code would not fit.
		if next > (1<<width)-1 && width < lzwMaxBits {
			width++
		}
		if next >= (1<<lzwMaxBits)-1 {
			// Dictionary full: signal a reset.
			w.write(lzwClearCode, width)
			dict = make(map[key]uint32, 4096)
			next = lzwFirstCode
			width = lzwMinBits
		}
		cur = uint32(b)
	}
	w.write(cur, width)
	w.flush()
	return w.out
}

// LZWDecompress decodes a stream produced by LZWCompress.
func LZWDecompress(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, nil
	}
	r := bitReader{in: data}
	width := uint(lzwMinBits)

	// Dictionary as (prefix code, appended byte) pairs; entries < 256
	// are literals.
	prefixes := make([]uint32, lzwFirstCode, 1<<lzwMaxBits)
	suffixes := make([]byte, lzwFirstCode, 1<<lzwMaxBits)
	reset := func() {
		prefixes = prefixes[:lzwFirstCode]
		suffixes = suffixes[:lzwFirstCode]
		width = lzwMinBits
	}

	expand := func(code uint32, buf []byte) ([]byte, error) {
		start := len(buf)
		for code >= 256 {
			if int(code) >= len(prefixes) {
				return nil, fmt.Errorf("lzw: invalid code %d", code)
			}
			buf = append(buf, suffixes[code])
			code = prefixes[code]
		}
		buf = append(buf, byte(code))
		// Reverse the appended segment (we walked leaf→root).
		for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
		return buf, nil
	}

	var out []byte
	prev, ok := r.read(width)
	if !ok {
		return nil, fmt.Errorf("lzw: truncated stream")
	}
	if prev == lzwClearCode || prev >= lzwFirstCode {
		return nil, fmt.Errorf("lzw: stream starts with non-literal code %d", prev)
	}
	out = append(out, byte(prev))

	for {
		// Mirror the encoder's widening bookkeeping: after the encoder
		// has allocated entry (len(prefixes)), its `next` counter is
		// len(prefixes)+1 relative to our state at read time.
		if uint32(len(prefixes)+1) > (1<<width)-1 && width < lzwMaxBits {
			width++
		}
		code, more := r.read(width)
		if !more {
			break
		}
		if code == lzwClearCode {
			reset()
			c, more2 := r.read(width)
			if !more2 {
				break
			}
			if c >= 256 {
				return nil, fmt.Errorf("lzw: non-literal %d after reset", c)
			}
			out = append(out, byte(c))
			prev = c
			continue
		}
		var firstByte byte
		if int(code) < len(prefixes) {
			segStart := len(out)
			var err error
			out, err = expand(code, out)
			if err != nil {
				return nil, err
			}
			firstByte = out[segStart]
		} else if int(code) == len(prefixes) {
			// The KwKwK case: the code being defined right now.
			segStart := len(out)
			var err error
			out, err = expand(prev, out)
			if err != nil {
				return nil, err
			}
			firstByte = out[segStart]
			out = append(out, firstByte)
		} else {
			return nil, fmt.Errorf("lzw: code %d ahead of dictionary (size %d)", code, len(prefixes))
		}
		prefixes = append(prefixes, prev)
		suffixes = append(suffixes, firstByte)
		if uint32(len(prefixes)) >= (1<<lzwMaxBits)-1 {
			// Encoder emitted a clear code here; it arrives next.
			continue
		}
		prev = code
	}
	return out, nil
}
