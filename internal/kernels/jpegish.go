package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
)

// JPEG-style grayscale encoder (the paper's JE benchmark family):
// 8×8 blocks → level shift → forward DCT → quantization → zigzag →
// DC delta + AC zero-run coding → canonical Huffman. The decoder
// inverts everything back to pixels, so tests can measure
// reconstruction quality (PSNR) exactly as a JPEG pipeline would.
//
// The bitstream is our own container, not ITU T.81 interchange format:
// the goal is the computational kernel, not file compatibility.

// Image is a simple grayscale raster.
type Image struct {
	W, H int
	Pix  []byte // len = W*H, row-major
}

// NewImage allocates a W×H image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the border
// (JPEG edge extension for partial blocks).
func (im *Image) At(x, y int) byte {
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// quantLuma is the Annex K luminance quantization table (quality 50).
var quantLuma = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag maps scan order → block index.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// scaledQuant returns the quantization table scaled to quality q
// (1–100), per the IJG formula.
func scaledQuant(quality int) [64]int32 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int32
	if quality < 50 {
		scale = int32(5000 / quality)
	} else {
		scale = int32(200 - 2*quality)
	}
	var out [64]int32
	for i, v := range quantLuma {
		x := (v*scale + 50) / 100
		if x < 1 {
			x = 1
		}
		if x > 255 {
			x = 255
		}
		out[i] = x
	}
	return out
}

// fdct8 performs a separable 8-point forward DCT-II on rows and
// columns of the 8×8 block (float path; the kernel is CPU-bound on
// purpose).
func fdct8(block *[64]float64) {
	var tmp [64]float64
	// Rows.
	for r := 0; r < 8; r++ {
		for u := 0; u < 8; u++ {
			sum := 0.0
			for x := 0; x < 8; x++ {
				sum += block[r*8+x] * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16)
			}
			c := 0.5
			if u == 0 {
				c = 1 / (2 * math.Sqrt2)
			}
			tmp[r*8+u] = sum * c
		}
	}
	// Columns.
	for cidx := 0; cidx < 8; cidx++ {
		for v := 0; v < 8; v++ {
			sum := 0.0
			for y := 0; y < 8; y++ {
				sum += tmp[y*8+cidx] * math.Cos((2*float64(y)+1)*float64(v)*math.Pi/16)
			}
			c := 0.5
			if v == 0 {
				c = 1 / (2 * math.Sqrt2)
			}
			block[v*8+cidx] = sum * c
		}
	}
}

// idct8 inverts fdct8.
func idct8(block *[64]float64) {
	var tmp [64]float64
	// Columns.
	for cidx := 0; cidx < 8; cidx++ {
		for y := 0; y < 8; y++ {
			sum := 0.0
			for v := 0; v < 8; v++ {
				c := 0.5
				if v == 0 {
					c = 1 / (2 * math.Sqrt2)
				}
				sum += c * block[v*8+cidx] * math.Cos((2*float64(y)+1)*float64(v)*math.Pi/16)
			}
			tmp[y*8+cidx] = sum
		}
	}
	// Rows.
	for r := 0; r < 8; r++ {
		for x := 0; x < 8; x++ {
			sum := 0.0
			for u := 0; u < 8; u++ {
				c := 0.5
				if u == 0 {
					c = 1 / (2 * math.Sqrt2)
				}
				sum += c * tmp[r*8+u] * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16)
			}
			block[r*8+x] = sum
		}
	}
}

// EncodeJPEGish compresses im at the given quality (1–100).
// Container: [W][H][quality] (4-byte LE each) + Huffman-coded symbol
// stream of DC deltas and AC (run, level) pairs, byte-serialized with
// zigzag order per block.
func EncodeJPEGish(im *Image, quality int) ([]byte, error) {
	if im == nil || im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H {
		return nil, fmt.Errorf("jpegish: invalid image")
	}
	quant := scaledQuant(quality)
	var syms []byte // symbol stream before entropy coding
	putVarint := func(v int32) {
		var buf [5]byte
		n := binary.PutVarint(buf[:], int64(v))
		syms = append(syms, buf[:n]...)
	}

	prevDC := int32(0)
	for by := 0; by < im.H; by += 8 {
		for bx := 0; bx < im.W; bx += 8 {
			var blk [64]float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = float64(im.At(bx+x, by+y)) - 128
				}
			}
			fdct8(&blk)
			var q [64]int32
			for i := 0; i < 64; i++ {
				q[i] = int32(math.Round(blk[i] / float64(quant[i])))
			}
			// DC delta.
			dc := q[0]
			putVarint(dc - prevDC)
			prevDC = dc
			// AC: (zero-run, value) pairs in zigzag order; 0xFF run
			// marks end-of-block.
			run := 0
			for s := 1; s < 64; s++ {
				v := q[zigzag[s]]
				if v == 0 {
					run++
					continue
				}
				for run > 62 {
					syms = append(syms, 62)
					putVarint(0) // long-run continuation
					run -= 63
				}
				syms = append(syms, byte(run))
				putVarint(v)
				run = 0
			}
			syms = append(syms, 0xFF) // end of block
		}
	}

	payload := HuffmanEncode(syms)
	out := make([]byte, 12, 12+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(im.W))
	binary.LittleEndian.PutUint32(out[4:], uint32(im.H))
	binary.LittleEndian.PutUint32(out[8:], uint32(quality))
	return append(out, payload...), nil
}

// DecodeJPEGish reconstructs the image from EncodeJPEGish output.
func DecodeJPEGish(data []byte) (*Image, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("jpegish: truncated header")
	}
	w := int(binary.LittleEndian.Uint32(data[0:]))
	h := int(binary.LittleEndian.Uint32(data[4:]))
	quality := int(binary.LittleEndian.Uint32(data[8:]))
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("jpegish: bad dimensions %d×%d", w, h)
	}
	syms, err := HuffmanDecode(data[12:])
	if err != nil {
		return nil, fmt.Errorf("jpegish: %w", err)
	}
	quant := scaledQuant(quality)
	im := NewImage(w, h)

	pos := 0
	getVarint := func() (int32, error) {
		v, n := binary.Varint(syms[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("jpegish: bad varint at %d", pos)
		}
		pos += n
		return int32(v), nil
	}

	prevDC := int32(0)
	for by := 0; by < h; by += 8 {
		for bx := 0; bx < w; bx += 8 {
			var q [64]int32
			delta, err := getVarint()
			if err != nil {
				return nil, err
			}
			prevDC += delta
			q[0] = prevDC
			s := 1
			for {
				if pos >= len(syms) {
					return nil, fmt.Errorf("jpegish: truncated block stream")
				}
				run := syms[pos]
				pos++
				if run == 0xFF {
					break
				}
				v, err := getVarint()
				if err != nil {
					return nil, err
				}
				s += int(run)
				if v == 0 { // long-run continuation marker
					s++
					continue
				}
				if s >= 64 {
					return nil, fmt.Errorf("jpegish: AC index %d out of block", s)
				}
				q[zigzag[s]] = v
				s++
			}
			var blk [64]float64
			for i := 0; i < 64; i++ {
				blk[i] = float64(q[i] * quant[i])
			}
			idct8(&blk)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					if bx+x >= w || by+y >= h {
						continue
					}
					v := math.Round(blk[y*8+x] + 128)
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					im.Pix[(by+y)*w+bx+x] = byte(v)
				}
			}
		}
	}
	return im, nil
}

// PSNR returns the peak signal-to-noise ratio between two same-size
// images, in dB (+Inf for identical images).
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("jpegish: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 20*math.Log10(255) - 10*math.Log10(mse), nil
}
