package kernels

import (
	"fmt"
	"sort"
)

// BWT computes the Burrows-Wheeler transform of data by sorting all n
// cyclic rotations with prefix doubling (O(n log² n), no sentinel
// needed — ranks are compared modulo n, which orders rotations
// directly). It returns the transformed bytes and the primary index
// (the row of the original string), which the inverse needs.
func BWT(data []byte) ([]byte, int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	rank := make([]int, n)
	tmp := make([]int, n)
	sa := make([]int, n)
	for i := 0; i < n; i++ {
		rank[i] = int(data[i])
		sa[i] = i
	}
	for k := 1; ; k *= 2 {
		key := func(i int) (int, int) {
			return rank[i], rank[(i+k)%n]
		}
		sort.Slice(sa, func(a, b int) bool {
			r1a, r2a := key(sa[a])
			r1b, r2b := key(sa[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			r1p, r2p := key(sa[i-1])
			r1c, r2c := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if r1p != r1c || r2p != r2c {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == n-1 || k >= n {
			break
		}
	}

	out := make([]byte, n)
	primary := 0
	for i, rot := range sa {
		// Last column: the byte preceding the rotation start.
		out[i] = data[(rot+n-1)%n]
		if rot == 0 {
			primary = i
		}
	}
	return out, primary
}

// InverseBWT reconstructs the original data from a BWT string and its
// primary index using the standard LF-mapping walk.
func InverseBWT(bwt []byte, primary int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		return nil, nil
	}
	if primary < 0 || primary >= n {
		return nil, fmt.Errorf("bwt: primary index %d out of range [0,%d)", primary, n)
	}
	// count[b]: number of bytes < b in bwt; next[i]: LF mapping.
	var count [257]int
	for _, b := range bwt {
		count[int(b)+1]++
	}
	for i := 1; i < 257; i++ {
		count[i] += count[i-1]
	}
	next := make([]int, n)
	occ := [256]int{}
	for i, b := range bwt {
		next[count[b]+occ[b]] = i
		occ[b]++
	}
	out := make([]byte, n)
	p := next[primary]
	for i := 0; i < n; i++ {
		out[i] = bwt[p]
		p = next[p]
	}
	return out, nil
}

// MTF applies the move-to-front transform: each byte is replaced by
// its current index in a self-organizing list, so recently seen bytes
// map to small values — the property the post-BWT entropy coder
// exploits.
func MTF(data []byte) []byte {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, b := range data {
		var idx int
		for j, a := range alphabet {
			if a == b {
				idx = j
				break
			}
		}
		out[i] = byte(idx)
		copy(alphabet[1:idx+1], alphabet[:idx])
		alphabet[0] = b
	}
	return out
}

// InverseMTF inverts MTF.
func InverseMTF(data []byte) []byte {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, idx := range data {
		b := alphabet[idx]
		out[i] = b
		copy(alphabet[1:int(idx)+1], alphabet[:idx])
		alphabet[0] = b
	}
	return out
}

// RLE encodes runs: any four consecutive identical bytes are followed
// by one count byte holding the number (0–255) of further repeats —
// the scheme bzip2 uses ahead of its BWT. It is unambiguous because
// the decoder, after seeing four identical bytes, always interprets
// the next byte as a count.
func RLE(data []byte) []byte {
	out := make([]byte, 0, len(data))
	i := 0
	for i < len(data) {
		b := data[i]
		run := 1
		for i+run < len(data) && data[i+run] == b && run < 4+255 {
			run++
		}
		if run < 4 {
			for j := 0; j < run; j++ {
				out = append(out, b)
			}
		} else {
			out = append(out, b, b, b, b, byte(run-4))
		}
		i += run
	}
	return out
}

// InverseRLE inverts RLE.
func InverseRLE(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)*2)
	i := 0
	for i < len(data) {
		b := data[i]
		run := 1
		for i+run < len(data) && data[i+run] == b && run < 4 {
			run++
		}
		if run == 4 {
			if i+4 >= len(data) {
				return nil, fmt.Errorf("rle: run of 4 at end without count byte")
			}
			extra := int(data[i+4])
			for j := 0; j < 4+extra; j++ {
				out = append(out, b)
			}
			i += 5
			continue
		}
		for j := 0; j < run; j++ {
			out = append(out, b)
		}
		i += run
	}
	return out, nil
}
