package kernels

import "repro/internal/xrand"

// Deterministic corpus generators shared by the examples, tests and
// benches. The three profiles bracket the benchmark suite's input
// space: natural-language-like (highly compressible), binary-random
// (incompressible) and structured (periodic, mid-compressible).

// corpusWords is the vocabulary of TextCorpus.
var corpusWords = []string{
	"energy ", "efficient ", "workload ", "aware ", "task ",
	"stealing ", "scheduler ", "frequency ", "multicore ", "dvfs ",
	"the ", "of ", "and ", "batch ", "profile ",
}

// TextCorpus returns n bytes of compressible pseudo-text,
// deterministic in seed.
func TextCorpus(seed uint64, n int) []byte {
	out := make([]byte, n)
	TextCorpusInto(out, seed)
	return out
}

// TextCorpusInto fills dst with the same bytes TextCorpus(seed,
// len(dst)) would return, without allocating — the serve ingest path
// reuses one corpus slab across pooled jobs.
func TextCorpusInto(dst []byte, seed uint64) {
	rng := xrand.New(seed)
	i := 0
	for i < len(dst) {
		i += copy(dst[i:], corpusWords[rng.Intn(len(corpusWords))])
	}
}

// RandomCorpus returns n bytes of incompressible pseudo-random data.
func RandomCorpus(seed uint64, n int) []byte {
	rng := xrand.New(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Uint64())
	}
	return out
}

// StructuredCorpus returns n bytes of periodic data with short runs —
// the profile of tabular or sensor-log inputs.
func StructuredCorpus(seed uint64, n int) []byte {
	out := make([]byte, n)
	StructuredCorpusInto(out, seed)
	return out
}

// StructuredCorpusInto fills dst with the same bytes
// StructuredCorpus(seed, len(dst)) would return, without allocating.
func StructuredCorpusInto(dst []byte, seed uint64) {
	rng := xrand.New(seed)
	i := 0
	for i < len(dst) {
		b := byte(rng.Intn(16) * 13)
		run := rng.Intn(7) + 1
		for r := 0; r < run && i < len(dst); r++ {
			dst[i] = b
			i++
		}
	}
}

// GradientImage returns a w×h grayscale test image with smooth
// gradients and mild texture — the JPEG-ish kernels' standard input.
func GradientImage(seed uint64, w, h int) *Image {
	rng := xrand.New(seed)
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 96 + 64*((x+y)%32)/32 + rng.Intn(12)
			if v > 255 {
				v = 255
			}
			im.Pix[y*w+x] = byte(v)
		}
	}
	return im
}
