package kernels

import (
	"bytes"
	"testing"
)

// benchCorpus returns compressible pseudo-text of the given size —
// the payload profile of the paper's benchmark suite.
func benchCorpus(n int) []byte { return TextCorpus(7, n) }

func BenchmarkMD5(b *testing.B) {
	data := benchCorpus(64 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum := MD5(data)
		KeepAlive(sum[:])
	}
}

func BenchmarkSHA1(b *testing.B) {
	data := benchCorpus(64 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum := SHA1(data)
		KeepAlive(sum[:])
	}
}

func BenchmarkLZWCompress(b *testing.B) {
	data := benchCorpus(64 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KeepAlive(LZWCompress(data))
	}
}

func BenchmarkLZWDecompress(b *testing.B) {
	comp := LZWCompress(benchCorpus(64 << 10))
	b.SetBytes(int64(len(comp)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := LZWDecompress(comp)
		if err != nil {
			b.Fatal(err)
		}
		KeepAlive(out)
	}
}

func BenchmarkBWT(b *testing.B) {
	data := benchCorpus(16 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, _ := BWT(data)
		KeepAlive(out)
	}
}

func BenchmarkBWC(b *testing.B) {
	data := benchCorpus(16 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KeepAlive(BWC(data))
	}
}

func BenchmarkUnBWC(b *testing.B) {
	comp := BWC(benchCorpus(16 << 10))
	b.SetBytes(int64(len(comp)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := UnBWC(comp)
		if err != nil {
			b.Fatal(err)
		}
		KeepAlive(out)
	}
}

func BenchmarkBzip2Like(b *testing.B) {
	data := benchCorpus(64 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Bzip2Like(data, 16<<10)
		if err != nil {
			b.Fatal(err)
		}
		KeepAlive(out)
	}
}

func BenchmarkDMCCompress(b *testing.B) {
	data := benchCorpus(16 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KeepAlive(DMCCompress(data))
	}
}

func BenchmarkDMCDecompress(b *testing.B) {
	comp := DMCCompress(benchCorpus(16 << 10))
	b.SetBytes(int64(len(comp)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := DMCDecompress(comp)
		if err != nil {
			b.Fatal(err)
		}
		KeepAlive(out)
	}
}

func BenchmarkJPEGishEncode(b *testing.B) {
	im := GradientImage(3, 256, 256)
	b.SetBytes(int64(len(im.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := EncodeJPEGish(im, 75)
		if err != nil {
			b.Fatal(err)
		}
		KeepAlive(out)
	}
}

func BenchmarkCRC32(b *testing.B) {
	data := benchCorpus(64 << 10)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sink.Add(uint64(CRC32(data)))
	}
}

func BenchmarkHuffmanRoundTrip(b *testing.B) {
	data := benchCorpus(64 << 10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := HuffmanDecode(HuffmanEncode(data))
		if err != nil || !bytes.Equal(out, data) {
			b.Fatal("round-trip failed")
		}
	}
}
