// Package xrand provides a small, fast, deterministic random number
// generator (splitmix64) used throughout the EEWA simulator and workload
// generators.
//
// Determinism matters here more than statistical perfection: every
// experiment in this repository must reproduce bit-identical schedules
// from the same seed so that the reported tables are stable across runs
// and machines. math/rand would also work, but carrying our own
// generator keeps the stream format frozen regardless of Go version and
// lets simulator state embed the generator by value.
package xrand

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New for clarity.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free variant is overkill at this
	// scale; simple modulo bias is < 2^-40 for the n values used here,
	// but we keep the rejection loop anyway for correctness.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, via the Box–Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// NormPos returns a strictly positive draw from the normal
// distribution with the given mean and standard deviation, by
// rejection: non-positive draws are discarded and the transform rerun.
// Work and deadline sampling must use this instead of Norm — a plain
// normal can go non-positive, and a zero-work task or zero deadline is
// invalid everywhere downstream (task.Workload.Validate rejects it,
// and a replayed trace must never carry one). The rejection loop is
// deterministic for a given generator state; callers with mean ≤ 0 or
// an extreme stddev/mean ratio still terminate via the bounded
// fallback (the magnitude of the last draw, floored at mean·1e-9 or
// stddev·1e-9, whichever is positive).
func (r *RNG) NormPos(mean, stddev float64) float64 {
	var v float64
	for i := 0; i < 128; i++ {
		v = r.Norm(mean, stddev)
		if v > 0 {
			return v
		}
	}
	// Pathological parameters (mean far below zero): fall back to a
	// positive magnitude so callers never observe a non-positive value.
	if v = math.Abs(v); v > 0 {
		return v
	}
	if mean > 0 {
		return mean * 1e-9
	}
	if stddev != 0 {
		return math.Abs(stddev) * 1e-9
	}
	return 1e-12 // degenerate (mean ≤ 0, stddev = 0): any positive constant
}

// Jitter returns base scaled by a uniform factor in
// [1-frac, 1+frac], clamped to be strictly positive. It models the
// paper's assumption that "workloads of tasks may change slightly in
// different iterations".
func (r *RNG) Jitter(base, frac float64) float64 {
	if frac <= 0 {
		return base
	}
	v := base * r.Range(1-frac, 1+frac)
	if v <= 0 {
		v = base * 0.01
	}
	return v
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new generator derived from this one, so that
// independent subsystems (e.g. each simulated core's victim selection)
// can draw without perturbing each other's streams.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Split derives the seed of an independent stream for one cell of a
// partitioned computation (e.g. one (benchmark × policy × rep) cell of
// a sweep grid) from a base seed and a stable cell identifier. The
// derivation is pure — no generator state is consumed — so every cell's
// stream is the same whether the cells run sequentially, in parallel,
// or in any order: seed the cell's RNG with Split(seed, cell) instead
// of drawing from a shared generator. The mix is the splitmix64
// finalizer over seed advanced by (cell+1) golden-ratio increments,
// i.e. cell steps ahead in the splitmix64 sequence of seed.
func Split(seed, cell uint64) uint64 {
	z := seed + (cell+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// PermInto fills p with a pseudo-random permutation of [0, len(p)),
// drawing exactly the same values from r as Perm(len(p)) — callers on
// hot paths reuse one buffer across calls without perturbing streams
// that were recorded against Perm.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
