package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.Intn(8)] = true
	}
	if len(seen) != 8 {
		t.Errorf("Intn(8) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) = %g out of bounds", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %g, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Errorf("Norm variance = %g, want ~4", variance)
	}
}

func TestJitter(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v >= 110 {
			t.Fatalf("Jitter(100, 0.1) = %g out of [90,110)", v)
		}
	}
	if got := r.Jitter(100, 0); got != 100 {
		t.Errorf("Jitter with frac 0 should return base, got %g", got)
	}
	// Jitter must always be positive even with extreme fractions.
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(1, 2); v <= 0 {
			t.Fatalf("Jitter produced non-positive %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffle(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r := New(13)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child stream must not equal the parent's continuation.
	collisions := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("Split streams collided %d/100 times", collisions)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	// Must not panic and must produce values.
	_ = r.Uint64()
	_ = r.Float64()
}

func TestSplitCellDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		for cell := uint64(0); cell < 100; cell++ {
			if Split(seed, cell) != Split(seed, cell) {
				t.Fatalf("Split(%d, %d) not deterministic", seed, cell)
			}
		}
	}
}

func TestSplitCellStreamsDistinct(t *testing.T) {
	// Streams for distinct cells of the same base seed must diverge
	// immediately, and the cell-0 stream must differ from the raw seed's.
	seen := map[uint64]uint64{New(7).Uint64(): ^uint64(0)}
	for cell := uint64(0); cell < 1000; cell++ {
		first := New(Split(7, cell)).Uint64()
		if prev, dup := seen[first]; dup {
			t.Fatalf("cells %d and %d share a first draw", prev, cell)
		}
		seen[first] = cell
	}
}

// TestSplitOrderIndependence is the property the parallel sweep relies
// on: per-cell streams derived with Split are identical no matter in
// what order (or on how many goroutines) the cells draw. Sequential
// consumption and a deliberately scrambled consumption order must
// observe the same per-cell sequences.
func TestSplitOrderIndependence(t *testing.T) {
	const cells, draws = 16, 32
	sequential := make([][]uint64, cells)
	for c := 0; c < cells; c++ {
		r := New(Split(12345, uint64(c)))
		for d := 0; d < draws; d++ {
			sequential[c] = append(sequential[c], r.Uint64())
		}
	}
	// Scrambled: interleave one draw at a time across cells in a
	// rotating order, the worst case for any hidden shared state.
	rngs := make([]*RNG, cells)
	for c := range rngs {
		rngs[c] = New(Split(12345, uint64(c)))
	}
	scrambled := make([][]uint64, cells)
	for d := 0; d < draws; d++ {
		for i := 0; i < cells; i++ {
			c := (i*5 + d) % cells
			for len(scrambled[c]) > d {
				c = (c + 1) % cells
			}
			scrambled[c] = append(scrambled[c], rngs[c].Uint64())
		}
	}
	for c := 0; c < cells; c++ {
		for d := 0; d < draws; d++ {
			if sequential[c][d] != scrambled[c][d] {
				t.Fatalf("cell %d draw %d: sequential %d != scrambled %d",
					c, d, sequential[c][d], scrambled[c][d])
			}
		}
	}
}

// TestPermIntoMatchesPerm pins the hot-path contract: PermInto must
// consume exactly the same RNG draws and produce exactly the same
// permutation as Perm, so switching an engine to the buffer-reusing
// variant cannot change any recorded schedule.
func TestPermIntoMatchesPerm(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		a, b := New(seed), New(seed)
		want := a.Perm(size)
		got := make([]int, size)
		b.PermInto(got)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		// Both generators must land in the same state.
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNormPosAlwaysPositive sweeps parameter regimes — including the
// pathological ones (negative mean, zero stddev) — and checks every
// draw is strictly positive. This is the contract that lets trace
// generation sample work and deadlines without per-caller re-clamping.
func TestNormPosAlwaysPositive(t *testing.T) {
	f := func(seed uint64, meanRaw, stddevRaw int16) bool {
		mean := float64(meanRaw) / 100
		stddev := math.Abs(float64(stddevRaw)) / 100
		r := New(seed)
		for i := 0; i < 64; i++ {
			if v := r.NormPos(mean, stddev); v <= 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNormPosMatchesNormWhenPositive pins the stream contract: while
// the underlying Norm draws stay positive, NormPos returns exactly the
// same values — so switching a positive-regime sampler from manual
// clamping to NormPos cannot perturb recorded streams.
func TestNormPosMatchesNormWhenPositive(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		want := a.Norm(100, 1) // ~100σ above zero: never non-positive
		got := b.NormPos(100, 1)
		if want != got {
			t.Fatalf("draw %d: Norm %g != NormPos %g", i, want, got)
		}
	}
}

// TestNormPosDegenerate covers the bounded-fallback path directly.
func TestNormPosDegenerate(t *testing.T) {
	r := New(1)
	if v := r.NormPos(-1e9, 0); v <= 0 {
		t.Fatalf("degenerate fallback returned %g", v)
	}
	if v := r.NormPos(-1e9, 1e-6); v <= 0 {
		t.Fatalf("negative-mean fallback returned %g", v)
	}
}
