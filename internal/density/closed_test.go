package density

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer answers every POST with a fixed status after a latency
// that can grow with concurrent callers — enough to exercise the ramp,
// the tallies, and the knee cutoff without a real serve stack.
type fakeServer struct {
	inflight atomic.Int64
	perCall  time.Duration
	crowd    time.Duration // extra latency per concurrent caller
	status   int
}

func (f *fakeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	time.Sleep(f.perCall + time.Duration(n-1)*f.crowd)
	w.WriteHeader(f.status)
}

func fastCfg(h http.Handler, clients []int) ClosedLoopConfig {
	return ClosedLoopConfig{
		NewHandler:     func() (http.Handler, func()) { return h, func() {} },
		BodyFor:        func(int) []byte { return []byte(`{}`) },
		JobsPerRequest: 1,
		TasksPerJob:    4,
		Clients:        clients,
		Warmup:         10 * time.Millisecond,
		Step:           60 * time.Millisecond,
		KneeThreshold:  3,
	}
}

func TestClosedLoopRampCompletes(t *testing.T) {
	srv := &fakeServer{perCall: 200 * time.Microsecond, status: http.StatusOK}
	res, err := ClosedLoop(fastCfg(srv, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("got %d steps, want 2 (constant latency must not knee)", len(res.Steps))
	}
	if res.KneeFound {
		t.Error("constant-latency server reported a knee")
	}
	for _, s := range res.Steps {
		if s.Jobs == 0 {
			t.Fatalf("step clients=%d completed no jobs", s.Clients)
		}
		if s.JobsPerSec <= 0 || s.NsPerJob <= 0 {
			t.Errorf("step clients=%d rate=%g ns/job=%g", s.Clients, s.JobsPerSec, s.NsPerJob)
		}
		if s.P99S < s.P50S {
			t.Errorf("step clients=%d p99 %g < p50 %g", s.Clients, s.P99S, s.P50S)
		}
	}
	if res.MaxJobsPerSec <= 0 {
		t.Fatal("no max sustained rate reported")
	}
}

func TestClosedLoopDetectsKnee(t *testing.T) {
	// Latency scales with concurrency: 1 client ~1ms, 8 clients ~15ms
	// p99 — far past the 3x threshold even with coarse sleep timers, so
	// the ramp must stop early and exclude the kneed step from the
	// sustained maximum.
	srv := &fakeServer{perCall: time.Millisecond, crowd: 2 * time.Millisecond, status: http.StatusOK}
	res, err := ClosedLoop(fastCfg(srv, []int{1, 8, 64}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.KneeFound {
		t.Fatal("scaling latency did not knee")
	}
	if res.KneeClients != 8 {
		t.Fatalf("knee at clients=%d, want 8", res.KneeClients)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("ramp ran %d steps past the knee, want 2", len(res.Steps))
	}
	if res.MaxStep != 0 {
		t.Errorf("sustained max taken from kneed step %d", res.MaxStep)
	}
}

func TestClosedLoopTalliesRejections(t *testing.T) {
	srv := &fakeServer{perCall: 100 * time.Microsecond, status: http.StatusTooManyRequests}
	res, err := ClosedLoop(fastCfg(srv, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Steps[0]
	if s.Jobs != 0 || s.Rejected == 0 {
		t.Fatalf("jobs=%d rejected=%d, want all rejected", s.Jobs, s.Rejected)
	}
	cell := s.Cell("eewa", 1, 4, 1)
	if cell.Mode != "closed" || cell.Clients != 2 || cell.Rejected != s.Rejected {
		t.Errorf("cell = %+v", cell)
	}
}

func TestClosedStepCellMapping(t *testing.T) {
	s := ClosedStep{
		Clients: 4, Jobs: 1000, WallS: 2,
		JobsPerSec: 500, NsPerJob: 2e6, AllocsPerJob: 40,
		P50S: 0.001, P95S: 0.002, P99S: 0.003,
	}
	c := s.Cell("eewa", 2, 8, 16)
	if c.Engine != "serve" || c.Shards != 2 || c.BatchSubmit != 16 {
		t.Fatalf("cell = %+v", c)
	}
	if c.Tasks != 8000 || c.RateTPS != 4000 || c.AchievedTPS != 4000 {
		t.Errorf("tasks=%d rate=%g achieved=%g", c.Tasks, c.RateTPS, c.AchievedTPS)
	}
	if c.AllocsPerJob != 40 || c.AllocsPerTask != 5 {
		t.Errorf("allocs/job=%g allocs/task=%g", c.AllocsPerJob, c.AllocsPerTask)
	}
	if axis, at := c.Axis(); axis != "clients" || at != 4 {
		t.Errorf("axis = %s@%g, want clients@4", axis, at)
	}
}
