// Package density defines the saturation/density report emitted by
// cmd/eewa-density: a grid of measurement cells (one per engine ×
// policy × sweep point) plus the detected saturation knees — the first
// sweep step where tail latency leaves the linear regime. The report
// is versioned so CI artifacts stay comparable across harness changes.
package density

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Version is the report schema version. Bump it when a field changes
// meaning; readers must reject versions they do not understand.
const Version = 1

// Cell is one measurement point of the sweep.
//
// The sweep axis differs per engine: the simulator sweeps backlog
// depth (tasks admitted per batch, Depth), the serve engine sweeps
// offered load (open-loop tasks/s, LoadTPS). Axis() picks the active
// one.
type Cell struct {
	Engine string `json:"engine"` // "sim" or "serve"
	Policy string `json:"policy"` // canonical policy id
	// Shards is the routed cluster width for serve cells (omitted when
	// 0 or 1, the pre-router shape, so old artifacts stay comparable).
	Shards int `json:"shards,omitempty"`

	Depth   int     `json:"depth"`              // backlog depth in tasks (sim axis; serve: summed MaxInFlight bound)
	LoadTPS float64 `json:"load_tps,omitempty"` // offered load in tasks/s (serve axis; 0 for sim)

	Tasks   int     `json:"tasks"`          // tasks completed in the cell
	WallS   float64 `json:"wall_s"`         // host wall time measuring the cell
	RateTPS float64 `json:"sched_rate_tps"` // scheduling rate: tasks / wall

	P50S float64 `json:"p50_s"` // task-latency quantiles (sim: simulated
	P95S float64 `json:"p95_s"` // seconds since batch start; serve: wall
	P99S float64 `json:"p99_s"` // end-to-end seconds since admission)

	AllocsPerTask float64 `json:"allocs_per_task"` // host heap allocations per task
	EnergyJ       float64 `json:"energy_j,omitempty"`
	Rejected      uint64  `json:"rejected,omitempty"` // serve: jobs refused by backpressure
}

// Axis returns the sweep-axis name and this cell's position on it.
func (c Cell) Axis() (string, float64) {
	if c.LoadTPS > 0 {
		return "load_tps", c.LoadTPS
	}
	return "depth", float64(c.Depth)
}

// Knee is the detected saturation point of one (engine, policy,
// shards) sweep: the first step whose p99 exceeds Threshold × the
// unloaded baseline (the sweep's lowest step). When no step crosses,
// Found is false and At/KneeP99 describe the last step observed.
type Knee struct {
	Engine      string  `json:"engine"`
	Policy      string  `json:"policy"`
	Shards      int     `json:"shards,omitempty"`
	Axis        string  `json:"axis"` // "depth" or "load_tps"
	At          float64 `json:"at"`   // axis value of the knee (or last step)
	Found       bool    `json:"found"`
	BaselineP99 float64 `json:"baseline_p99_s"`
	KneeP99     float64 `json:"knee_p99_s"`
	Threshold   float64 `json:"threshold"`
}

// Report is the versioned artifact (BENCH_density.json).
type Report struct {
	Version   int     `json:"version"`
	Threshold float64 `json:"knee_threshold"`
	Cells     []Cell  `json:"cells"`
	Knees     []Knee  `json:"knees"`
}

// New returns an empty report with the given knee threshold.
func New(threshold float64) *Report {
	return &Report{Version: Version, Threshold: threshold}
}

// Add appends one measurement cell.
func (r *Report) Add(c Cell) { r.Cells = append(r.Cells, c) }

// Finalize recomputes the knees from the accumulated cells.
func (r *Report) Finalize() { r.Knees = DetectKnees(r.Cells, r.Threshold) }

// DetectKnees groups cells by (engine, policy, shards), orders each
// group along its sweep axis, and finds the first step whose p99
// exceeds threshold × the group's baseline p99 (the lowest step). A
// zero Shards groups with 1 — both are the single-runtime shape.
// Groups are returned in sorted (engine, policy, shards) order so the
// artifact is deterministic.
func DetectKnees(cells []Cell, threshold float64) []Knee {
	if threshold <= 1 {
		threshold = 2 // a knee must at least exceed the baseline
	}
	type groupKey struct {
		engine, policy string
		shards         int
	}
	norm := func(c Cell) groupKey {
		sh := c.Shards
		if sh <= 1 {
			sh = 1
		}
		return groupKey{c.Engine, c.Policy, sh}
	}
	groups := map[groupKey][]Cell{}
	for _, c := range cells {
		k := norm(c)
		groups[k] = append(groups[k], c)
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].engine != keys[j].engine {
			return keys[i].engine < keys[j].engine
		}
		if keys[i].policy != keys[j].policy {
			return keys[i].policy < keys[j].policy
		}
		return keys[i].shards < keys[j].shards
	})

	var knees []Knee
	for _, k := range keys {
		g := groups[k]
		sort.SliceStable(g, func(i, j int) bool {
			_, a := g[i].Axis()
			_, b := g[j].Axis()
			return a < b
		})
		axis, at0 := g[0].Axis()
		kn := Knee{
			Engine: k.engine, Policy: k.policy, Axis: axis,
			At: at0, BaselineP99: g[0].P99S, KneeP99: g[0].P99S,
			Threshold: threshold,
		}
		if k.shards > 1 {
			kn.Shards = k.shards
		}
		for _, c := range g[1:] {
			_, at := c.Axis()
			kn.At, kn.KneeP99 = at, c.P99S
			if kn.BaselineP99 > 0 && c.P99S > threshold*kn.BaselineP99 {
				kn.Found = true
				break
			}
		}
		knees = append(knees, kn)
	}
	return knees
}

// WriteJSON emits the report (indented, trailing newline) after
// refreshing the knees.
func (r *Report) WriteJSON(w io.Writer) error {
	r.Finalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load parses a report and rejects unknown schema versions.
func Load(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("density: %w", err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("density: report version %d, want %d", r.Version, Version)
	}
	return &r, nil
}
