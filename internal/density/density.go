// Package density defines the saturation/density report emitted by
// cmd/eewa-density: a grid of measurement cells (one per engine ×
// policy × sweep point) plus the detected saturation knees — the first
// sweep step where tail latency leaves the linear regime. The report
// is versioned so CI artifacts stay comparable across harness changes.
package density

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Version is the report schema version. Bump it when a field changes
// meaning; readers must reject versions they do not understand.
const Version = 1

// Cell is one measurement point of the sweep.
//
// The sweep axis differs per engine and mode: the simulator sweeps
// backlog depth (tasks admitted per batch, Depth), the serve engine
// sweeps offered load (open-loop tasks/s, LoadTPS) or, in closed-loop
// capacity mode (Mode "closed"), concurrent clients. Axis() picks the
// active one.
type Cell struct {
	Engine string `json:"engine"` // "sim" or "serve"
	Policy string `json:"policy"` // canonical policy id
	// Shards is the routed cluster width for serve cells (omitted when
	// 0 or 1, the pre-router shape, so old artifacts stay comparable).
	Shards int `json:"shards,omitempty"`
	// Mode distinguishes serve sweeps: "" is the historical open-loop
	// load sweep (and every sim cell); "closed" is the closed-loop
	// capacity ramp, where Clients is the axis. All capacity fields
	// are omitempty, so pre-capacity artifacts parse unchanged under
	// the same schema version.
	Mode string `json:"mode,omitempty"`
	// Clients is the closed-loop concurrency of this step (each client
	// keeps exactly one request outstanding).
	Clients int `json:"clients,omitempty"`
	// BatchSubmit is the number of jobs per HTTP request in closed-loop
	// cells: 1 means one POST /v1/jobs per job, N > 1 means N jobs per
	// POST /v1/jobs:batch.
	BatchSubmit int `json:"batch_submit,omitempty"`

	Depth   int     `json:"depth"`              // backlog depth in tasks (sim axis; serve: summed MaxInFlight bound)
	LoadTPS float64 `json:"load_tps,omitempty"` // offered load in tasks/s (open-loop serve axis; 0 otherwise)

	Tasks   int     `json:"tasks"`          // tasks completed in the cell
	WallS   float64 `json:"wall_s"`         // host wall time measuring the cell
	RateTPS float64 `json:"sched_rate_tps"` // scheduling rate: tasks / wall

	// OfferedTPS and AchievedTPS label the serve throughput honestly:
	// OfferedTPS is the open-loop arrival rate the driver aimed at
	// (equal to LoadTPS; absent for closed-loop cells, which have no
	// offered rate), AchievedTPS the rate the server actually completed
	// (tasks / wall — numerically RateTPS, named for what it is). The
	// bare sched_rate_tps in old serve cells read as capacity but was
	// just the offered load echoed back whenever the server kept up.
	OfferedTPS  float64 `json:"offered_rate_tps,omitempty"`
	AchievedTPS float64 `json:"achieved_rate_tps,omitempty"`

	P50S float64 `json:"p50_s"` // task-latency quantiles (sim: simulated
	P95S float64 `json:"p95_s"` // seconds since batch start; serve: wall
	P99S float64 `json:"p99_s"` // end-to-end seconds since admission)

	AllocsPerTask float64 `json:"allocs_per_task"` // host heap allocations per task
	// Closed-loop capacity measurements, per completed job: jobs/s
	// sustained at this concurrency, heap allocations per job (driver +
	// server; the driver is pool-backed and near-zero), and wall
	// nanoseconds per job (inverse throughput).
	JobsPerSec   float64 `json:"jobs_per_sec,omitempty"`
	AllocsPerJob float64 `json:"allocs_per_job,omitempty"`
	NsPerJob     float64 `json:"ns_per_job,omitempty"`

	EnergyJ  float64 `json:"energy_j,omitempty"`
	Rejected uint64  `json:"rejected,omitempty"` // serve: jobs refused by backpressure
}

// Axis returns the sweep-axis name and this cell's position on it.
func (c Cell) Axis() (string, float64) {
	if c.Clients > 0 {
		return "clients", float64(c.Clients)
	}
	if c.LoadTPS > 0 {
		return "load_tps", c.LoadTPS
	}
	return "depth", float64(c.Depth)
}

// Knee is the detected saturation point of one (engine, policy,
// shards, mode) sweep: the first step whose p99 exceeds Threshold ×
// the unloaded baseline (the sweep's lowest step). When no step
// crosses, Found is false and At/KneeP99 describe the last step
// observed.
type Knee struct {
	Engine      string  `json:"engine"`
	Policy      string  `json:"policy"`
	Shards      int     `json:"shards,omitempty"`
	Mode        string  `json:"mode,omitempty"`
	Axis        string  `json:"axis"` // "depth", "load_tps" or "clients"
	At          float64 `json:"at"`   // axis value of the knee (or last step)
	Found       bool    `json:"found"`
	BaselineP99 float64 `json:"baseline_p99_s"`
	KneeP99     float64 `json:"knee_p99_s"`
	Threshold   float64 `json:"threshold"`
}

// Report is the versioned artifact (BENCH_density.json).
type Report struct {
	Version   int     `json:"version"`
	Threshold float64 `json:"knee_threshold"`
	Cells     []Cell  `json:"cells"`
	Knees     []Knee  `json:"knees"`
}

// New returns an empty report with the given knee threshold.
func New(threshold float64) *Report {
	return &Report{Version: Version, Threshold: threshold}
}

// Add appends one measurement cell.
func (r *Report) Add(c Cell) { r.Cells = append(r.Cells, c) }

// Finalize recomputes the knees from the accumulated cells.
func (r *Report) Finalize() { r.Knees = DetectKnees(r.Cells, r.Threshold) }

// DetectKnees groups cells by (engine, policy, shards, mode), orders
// each group along its sweep axis, and finds the first step whose p99
// exceeds threshold × the group's baseline p99 (the lowest step). A
// zero Shards groups with 1 — both are the single-runtime shape —
// and mode keeps closed-loop capacity ramps from mixing into the
// open-loop load sweep. Groups are returned in sorted (engine,
// policy, shards, mode) order so the artifact is deterministic.
func DetectKnees(cells []Cell, threshold float64) []Knee {
	if threshold <= 1 {
		threshold = 2 // a knee must at least exceed the baseline
	}
	type groupKey struct {
		engine, policy string
		shards         int
		mode           string
	}
	norm := func(c Cell) groupKey {
		sh := c.Shards
		if sh <= 1 {
			sh = 1
		}
		return groupKey{c.Engine, c.Policy, sh, c.Mode}
	}
	groups := map[groupKey][]Cell{}
	for _, c := range cells {
		k := norm(c)
		groups[k] = append(groups[k], c)
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].engine != keys[j].engine {
			return keys[i].engine < keys[j].engine
		}
		if keys[i].policy != keys[j].policy {
			return keys[i].policy < keys[j].policy
		}
		if keys[i].shards != keys[j].shards {
			return keys[i].shards < keys[j].shards
		}
		return keys[i].mode < keys[j].mode
	})

	var knees []Knee
	for _, k := range keys {
		g := groups[k]
		sort.SliceStable(g, func(i, j int) bool {
			_, a := g[i].Axis()
			_, b := g[j].Axis()
			return a < b
		})
		axis, at0 := g[0].Axis()
		kn := Knee{
			Engine: k.engine, Policy: k.policy, Mode: k.mode, Axis: axis,
			At: at0, BaselineP99: g[0].P99S, KneeP99: g[0].P99S,
			Threshold: threshold,
		}
		if k.shards > 1 {
			kn.Shards = k.shards
		}
		for _, c := range g[1:] {
			_, at := c.Axis()
			kn.At, kn.KneeP99 = at, c.P99S
			if kn.BaselineP99 > 0 && c.P99S > threshold*kn.BaselineP99 {
				kn.Found = true
				break
			}
		}
		knees = append(knees, kn)
	}
	return knees
}

// WriteJSON emits the report (indented, trailing newline) after
// refreshing the knees.
func (r *Report) WriteJSON(w io.Writer) error {
	r.Finalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load parses a report and rejects unknown schema versions.
func Load(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("density: %w", err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("density: report version %d, want %d", r.Version, Version)
	}
	return &r, nil
}
