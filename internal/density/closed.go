package density

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Closed-loop serve capacity harness.
//
// The open-loop sweep (cmd/eewa-density's owed-arrivals driver) asks
// "does the server keep up with rate R" — useful for finding the load
// knee, but its throughput column is just the offered rate echoed back
// whenever the answer is yes. This driver asks the complementary
// question: "how fast can the server go". Each of N clients keeps
// exactly one request outstanding (submit, wait, submit again), so the
// server is never idle and never buried past N requests; ramping N
// until tail latency knees finds the maximum *sustained* job rate, the
// per-job heap allocation count, and wall nanoseconds per job.
//
// The driver itself stays off the profile: request bodies are built
// once per client and replayed through a rewound bytes.Reader, the
// response writer is a reused status-only sink, and latency lands in a
// sharded log-histogram. What remains — ServeMux routing and the
// server's own ingest path — is exactly the cost being measured.

// ClosedLoopConfig drives one capacity ramp.
type ClosedLoopConfig struct {
	// NewHandler returns a fresh server handler for one ramp step and a
	// stop function that drains it. A fresh server per step keeps one
	// step's backlog from polluting the next step's latency.
	NewHandler func() (http.Handler, func())

	// Path is the submit endpoint ("/v1/jobs", or "/v1/jobs:batch" when
	// JobsPerRequest > 1).
	Path string

	// BodyFor returns the constant request body for one client. Clients
	// should carry distinct tenants so striped admission is exercised;
	// the body is built once and replayed for the whole ramp.
	BodyFor func(client int) []byte

	// JobsPerRequest is how many jobs one HTTP request submits (1 for
	// /v1/jobs, the batch size for /v1/jobs:batch).
	JobsPerRequest int

	// TasksPerJob converts completed jobs to completed tasks for the
	// density cells.
	TasksPerJob int

	// Clients is the concurrency ramp, in order. Empty picks a default
	// doubling ramp.
	Clients []int

	// Warmup runs before the measurement window of each step (JIT,
	// pools, steady queue). Step is the measurement window itself.
	Warmup time.Duration
	Step   time.Duration

	// KneeThreshold is the p99 multiple over the 1-client baseline that
	// marks saturation (<=1 picks 2).
	KneeThreshold float64
}

// ClosedStep is one measured concurrency step.
type ClosedStep struct {
	Clients      int
	Jobs         uint64 // jobs completed (HTTP 200) inside the window
	Rejected     uint64 // 429/503 responses inside the window
	Expired      uint64 // 504 responses inside the window
	Errors       uint64 // anything else (4xx decode errors, 5xx)
	WallS        float64
	JobsPerSec   float64
	NsPerJob     float64
	AllocsPerJob float64
	P50S         float64
	P95S         float64
	P99S         float64
}

// ClosedResult is the full ramp: every step, plus the detected knee
// and the maximum sustained rate at or below it.
type ClosedResult struct {
	Steps         []ClosedStep
	KneeClients   int  // first step past the p99 knee (last step if none)
	KneeFound     bool // whether any step crossed the threshold
	MaxJobsPerSec float64
	MaxStep       int // index into Steps of the max sustained rate
}

// phase values coordinate clients with the measurement window.
const (
	phaseWarmup int32 = iota
	phaseMeasure
	phaseStop
)

// clientSlot is one client's tally, padded so neighbors never share a
// cache line (clients bump these once per request).
type clientSlot struct {
	jobs     uint64
	rejected uint64
	expired  uint64
	errors   uint64
	_        [32]byte
}

// nullResponseWriter records the status code and discards the body —
// the cheapest http.ResponseWriter that still satisfies the handler.
type nullResponseWriter struct {
	hdr    http.Header
	status int
}

func (w *nullResponseWriter) Header() http.Header { return w.hdr }

func (w *nullResponseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
}

func (w *nullResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(p), nil
}

func (w *nullResponseWriter) reset() {
	w.status = 0
	clear(w.hdr)
}

// nopCloserReader rewinds instead of allocating a new body per
// request: Close is a no-op, and the driver Seeks back to 0 between
// submissions.
type nopCloserReader struct{ *bytes.Reader }

func (nopCloserReader) Close() error { return nil }

// ClosedLoop runs the ramp and returns the per-step measurements.
func ClosedLoop(cfg ClosedLoopConfig) (*ClosedResult, error) {
	if cfg.NewHandler == nil || cfg.BodyFor == nil {
		return nil, fmt.Errorf("density: closed loop needs NewHandler and BodyFor")
	}
	if cfg.Path == "" {
		cfg.Path = "/v1/jobs"
	}
	if cfg.JobsPerRequest <= 0 {
		cfg.JobsPerRequest = 1
	}
	if cfg.TasksPerJob <= 0 {
		cfg.TasksPerJob = 1
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{1, 2, 4, 8, 16, 32}
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 300 * time.Millisecond
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}
	if cfg.KneeThreshold <= 1 {
		cfg.KneeThreshold = 2
	}
	target, err := url.Parse("http://closed.loop" + cfg.Path)
	if err != nil {
		return nil, fmt.Errorf("density: closed loop path: %w", err)
	}

	res := &ClosedResult{}
	for _, n := range cfg.Clients {
		step := runClosedStep(cfg, target, n)
		res.Steps = append(res.Steps, step)
		// Stop ramping once the knee is crossed: deeper steps only
		// measure queueing, not capacity.
		base := res.Steps[0].P99S
		if base > 0 && step.P99S > cfg.KneeThreshold*base {
			res.KneeFound = true
			res.KneeClients = n
			break
		}
		res.KneeClients = n
	}
	for i, s := range res.Steps {
		past := res.KneeFound && s.Clients == res.KneeClients
		if !past && s.JobsPerSec > res.MaxJobsPerSec {
			res.MaxJobsPerSec = s.JobsPerSec
			res.MaxStep = i
		}
	}
	// A one-step ramp that immediately kneed still has to report its
	// only measurement.
	if res.MaxJobsPerSec == 0 && len(res.Steps) > 0 {
		res.MaxJobsPerSec = res.Steps[0].JobsPerSec
		res.MaxStep = 0
	}
	return res, nil
}

func runClosedStep(cfg ClosedLoopConfig, target *url.URL, clients int) ClosedStep {
	h, stop := cfg.NewHandler()
	defer stop()

	var phase atomic.Int32
	slots := make([]clientSlot, clients)
	lat := obs.NewShardedLogHistogram(0)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			body := bytes.NewReader(cfg.BodyFor(idx))
			req := &http.Request{
				Method:     http.MethodPost,
				URL:        target,
				Proto:      "HTTP/1.1",
				ProtoMajor: 1,
				ProtoMinor: 1,
				Header:     http.Header{},
				Host:       target.Host,
				Body:       nopCloserReader{body},
			}
			w := &nullResponseWriter{hdr: http.Header{}}
			slot := &slots[idx]
			for {
				before := phase.Load()
				if before == phaseStop {
					return
				}
				body.Seek(0, io.SeekStart)
				w.reset()
				start := time.Now()
				h.ServeHTTP(w, req)
				elapsed := time.Since(start)
				// Tally only requests that ran wholly inside the window.
				if before != phaseMeasure || phase.Load() != phaseMeasure {
					continue
				}
				lat.Observe(elapsed.Seconds())
				switch w.status {
				case http.StatusOK:
					slot.jobs += uint64(cfg.JobsPerRequest)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					slot.rejected += uint64(cfg.JobsPerRequest)
				case http.StatusGatewayTimeout:
					slot.expired += uint64(cfg.JobsPerRequest)
				default:
					slot.errors++
				}
			}
		}(c)
	}

	time.Sleep(cfg.Warmup)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	phase.Store(phaseMeasure)
	time.Sleep(cfg.Step)
	phase.Store(phaseStop)
	wall := time.Since(t0)
	wg.Wait()
	runtime.ReadMemStats(&m1)

	st := ClosedStep{Clients: clients, WallS: wall.Seconds()}
	for i := range slots {
		st.Jobs += slots[i].jobs
		st.Rejected += slots[i].rejected
		st.Expired += slots[i].expired
		st.Errors += slots[i].errors
	}
	st.P50S = lat.Quantile(0.50)
	st.P95S = lat.Quantile(0.95)
	st.P99S = lat.Quantile(0.99)
	if st.Jobs > 0 {
		st.JobsPerSec = float64(st.Jobs) / st.WallS
		st.NsPerJob = float64(wall.Nanoseconds()) / float64(st.Jobs)
		// Mallocs covers the window plus each client's in-flight tail
		// request — driver and server together, which is what a capacity
		// budget has to hold.
		st.AllocsPerJob = float64(m1.Mallocs-m0.Mallocs) / float64(st.Jobs)
	}
	return st
}

// Cell converts one measured step into a density cell for the report.
func (s ClosedStep) Cell(policy string, shards, tasksPerJob, batchSubmit int) Cell {
	c := Cell{
		Engine:      "serve",
		Policy:      policy,
		Mode:        "closed",
		Clients:     s.Clients,
		BatchSubmit: batchSubmit,
		Tasks:       int(s.Jobs) * tasksPerJob,
		WallS:       s.WallS,
		P50S:        s.P50S,
		P95S:        s.P95S,
		P99S:        s.P99S,
		JobsPerSec:  s.JobsPerSec,
		NsPerJob:    s.NsPerJob,
		Rejected:    s.Rejected + s.Expired,
	}
	if shards > 1 {
		c.Shards = shards
	}
	if s.WallS > 0 {
		c.RateTPS = float64(c.Tasks) / s.WallS
		c.AchievedTPS = c.RateTPS
	}
	if tasksPerJob > 0 {
		c.AllocsPerTask = s.AllocsPerJob / float64(tasksPerJob)
	}
	c.AllocsPerJob = s.AllocsPerJob
	return c
}
