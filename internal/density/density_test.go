package density

import (
	"bytes"
	"strings"
	"testing"
)

func simCells(pol string, p99s ...float64) []Cell {
	out := make([]Cell, len(p99s))
	for i, p := range p99s {
		out[i] = Cell{Engine: "sim", Policy: pol, Depth: 16 << (2 * i), P99S: p}
	}
	return out
}

func TestDetectKneeFound(t *testing.T) {
	cells := simCells("eewa", 0.001, 0.002, 0.009, 0.050)
	knees := DetectKnees(cells, 3)
	if len(knees) != 1 {
		t.Fatalf("got %d knees, want 1", len(knees))
	}
	k := knees[0]
	if !k.Found {
		t.Fatal("knee not found")
	}
	// First crossing of 3× the 0.001 baseline is the 0.009 step (depth 256).
	if k.Axis != "depth" || k.At != 256 || k.KneeP99 != 0.009 || k.BaselineP99 != 0.001 {
		t.Errorf("knee = %+v", k)
	}
}

func TestDetectKneeFlat(t *testing.T) {
	knees := DetectKnees(simCells("cilk", 0.001, 0.0012, 0.0011), 3)
	if len(knees) != 1 || knees[0].Found {
		t.Fatalf("flat sweep should find no knee: %+v", knees)
	}
	// At/KneeP99 still describe the last step for context.
	if knees[0].At != 16<<4 || knees[0].KneeP99 != 0.0011 {
		t.Errorf("unfound knee = %+v", knees[0])
	}
}

func TestDetectKneeGroupsAndOrder(t *testing.T) {
	// Two engines × two policies, interleaved and out of axis order.
	var cells []Cell
	cells = append(cells, Cell{Engine: "serve", Policy: "eewa", LoadTPS: 4000, P99S: 0.9})
	cells = append(cells, simCells("eewa", 0.001, 0.01)...)
	cells = append(cells, Cell{Engine: "serve", Policy: "eewa", LoadTPS: 500, P99S: 0.01})
	cells = append(cells, simCells("cilk", 0.001, 0.01)...)
	knees := DetectKnees(cells, 3)
	if len(knees) != 3 {
		t.Fatalf("got %d knees, want 3", len(knees))
	}
	// Sorted by (engine, policy): serve/eewa sorts after sim/cilk, sim/eewa.
	wantOrder := [][2]string{{"serve", "eewa"}, {"sim", "cilk"}, {"sim", "eewa"}}
	for i, w := range wantOrder {
		if knees[i].Engine != w[0] || knees[i].Policy != w[1] {
			t.Errorf("knees[%d] = %s/%s, want %s/%s", i, knees[i].Engine, knees[i].Policy, w[0], w[1])
		}
		if !knees[i].Found {
			t.Errorf("knees[%d] (%s/%s) not found", i, w[0], w[1])
		}
	}
	// The serve group was fed out of order; the baseline must be the
	// low-load cell.
	if knees[0].Axis != "load_tps" || knees[0].BaselineP99 != 0.01 || knees[0].At != 4000 {
		t.Errorf("serve knee = %+v", knees[0])
	}
}

func TestDetectKneeDegenerate(t *testing.T) {
	if knees := DetectKnees(nil, 3); len(knees) != 0 {
		t.Errorf("no cells should yield no knees: %+v", knees)
	}
	// A single-cell group cannot cross its own baseline.
	knees := DetectKnees(simCells("eewa", 0.5), 3)
	if len(knees) != 1 || knees[0].Found {
		t.Errorf("single cell: %+v", knees)
	}
	// A zero baseline (empty histogram) never divides by zero and never
	// fires.
	knees = DetectKnees(simCells("eewa", 0, 1, 100), 3)
	if knees[0].Found {
		t.Errorf("zero baseline must not fire: %+v", knees[0])
	}
	// Threshold ≤ 1 is clamped, not honored verbatim.
	knees = DetectKnees(simCells("eewa", 1, 1.01), 0.5)
	if knees[0].Found {
		t.Errorf("clamped threshold fired on a 1%% rise: %+v", knees[0])
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := New(3)
	for _, c := range simCells("eewa", 0.001, 0.02) {
		c.Tasks = 100
		c.WallS = 0.5
		c.RateTPS = 200
		c.AllocsPerTask = 12.5
		r.Add(c)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 1`, `"knee_threshold": 3`, `"sched_rate_tps"`, `"allocs_per_task"`, `"found": true`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 2 || len(got.Knees) != 1 || !got.Knees[0].Found {
		t.Errorf("round trip: %d cells, knees %+v", len(got.Cells), got.Knees)
	}

	// Version mismatch must be rejected.
	bad := strings.Replace(out, `"version": 1`, `"version": 99`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("version 99 accepted")
	}
}
