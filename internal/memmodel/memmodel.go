// Package memmodel implements the paper's stated future work (§IV-D):
// extending EEWA to memory-bound applications by learning each task
// class's frequency response instead of assuming pure CPU-bound
// scaling.
//
// The CC table (Table I) assumes a task's execution time scales as
// F0/Fj. Memory-bound tasks violate that: the memory-stall portion of
// their runtime is frequency-insensitive. To first order a task's time
// at frequency level j is
//
//	t(j) = a + b · (F0/Fj)
//
// where a is the frequency-insensitive (memory) component and b the
// frequency-scaled (compute) component. Two observations of a class at
// *different* frequency levels determine (a, b) exactly; more
// observations over-determine them and we fit least squares.
//
// EEWA's memory-aware mode (sched.EEWA with MemAware=true) therefore:
//
//  1. runs batch 0 at F0 (as always — this defines T and provides the
//     first sample point),
//  2. when the first batch classifies the application memory-bound,
//     runs one *calibration batch* with every core at a lower level
//     (classic stealing, so classes spread over it), providing the
//     second sample point,
//  3. from batch 2 on, builds the CC table from the fitted models via
//     BuildTable and schedules exactly as CPU-bound EEWA does.
//
// The paper proposed machine learning for this step; a two-point
// linear fit is the minimal model that is exact for the standard
// stall/compute decomposition (and for this repository's task model,
// TimeAt = Work·(MemFrac + (1−MemFrac)·ratio)).
package memmodel

import (
	"fmt"
	"math"

	"repro/internal/cctable"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Model is one class's fitted frequency response t(ratio) = A + B·ratio
// with ratio = F0/Fj ≥ 1.
type Model struct {
	Name string
	// A is the frequency-insensitive seconds per task (memory stalls).
	A float64
	// B is the frequency-scaled seconds per task at F0 (compute).
	B float64
	// Count is the number of tasks per batch observed for the class.
	Count int
	// MaxRatio is the largest single-task inflation seen relative to
	// the class average (≥ 1), used for the granularity bar.
	MaxRatio float64
}

// TimeAt returns the modeled per-task execution time at a ladder ratio.
func (m Model) TimeAt(ratio float64) float64 { return m.A + m.B*ratio }

// MemFraction returns the modeled memory-bound share of the task's
// time at F0 — a/(a+b).
func (m Model) MemFraction() float64 {
	t0 := m.A + m.B
	if t0 <= 0 {
		return 0
	}
	return m.A / t0
}

// Fit determines a class's (A, B) by least squares over the profiler's
// raw per-level averages. It needs samples at two or more distinct
// levels; with fewer it returns ok=false (the caller should schedule a
// calibration batch).
func Fit(p *profile.Profiler, name string, ladder machine.FreqLadder) (Model, bool) {
	levels := p.RawLevels(name)
	if len(levels) < 2 {
		return Model{}, false
	}
	// Least squares of t over x = ratio.
	var n, sx, sy, sxx, sxy float64
	for _, lvl := range levels {
		t, ok := p.RawAvg(name, lvl)
		if !ok {
			continue
		}
		x := ladder.Ratio(lvl)
		n++
		sx += x
		sy += t
		sxx += x * x
		sxy += x * t
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Model{}, false
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// Clamp to the physical region: negative components are jitter
	// artifacts on nearly pure CPU- or memory-bound classes.
	if a < 0 {
		a = 0
		// Recompute b as the pure-scaling slope through the samples.
		if sxx > 0 {
			b = sxy / sxx
		}
	}
	if b < 0 {
		b = 0
		a = sy / n
	}
	return Model{Name: name, A: a, B: b}, true
}

// FitAll fits every class the profiler has seen, attaching per-batch
// counts and the max/avg inflation from the normalized class view.
// Classes lacking a second frequency sample are skipped (ok=false
// overall signals a calibration batch is still needed).
func FitAll(p *profile.Profiler, classes []profile.Class, ladder machine.FreqLadder) ([]Model, bool) {
	out := make([]Model, 0, len(classes))
	for _, c := range classes {
		m, ok := Fit(p, c.Name, ladder)
		if !ok {
			return nil, false
		}
		m.Count = c.Count
		m.MaxRatio = 1
		if c.AvgWork > 0 && c.MaxWork > c.AvgWork {
			m.MaxRatio = c.MaxWork / c.AvgWork
		}
		out = append(out, m)
	}
	return out, true
}

// BuildTable constructs a granularity-aware CC table from fitted
// models: entry [j][i] is the number of cores at level j needed so
// class i's n tasks of modeled time t(ratio_j) finish within T.
func BuildTable(models []Model, ladder machine.FreqLadder, T float64, maxCores int) (*cctable.Table, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("memmodel: no models")
	}
	if T <= 0 || math.IsNaN(T) || math.IsInf(T, 0) {
		return nil, fmt.Errorf("memmodel: invalid ideal time %g", T)
	}
	if maxCores <= 0 {
		return nil, fmt.Errorf("memmodel: invalid core count %d", maxCores)
	}
	// Express the models as pseudo-classes so the table carries the
	// usual metadata (sorted by descending F0 workload).
	classes := make([]profile.Class, len(models))
	for i, m := range models {
		classes[i] = profile.Class{
			Name:    m.Name,
			Count:   m.Count,
			AvgWork: m.TimeAt(1),
			MaxWork: m.TimeAt(1) * m.MaxRatio,
		}
	}
	for i := 1; i < len(classes); i++ {
		if classes[i].AvgWork > classes[i-1].AvgWork {
			return nil, fmt.Errorf("memmodel: models not sorted by descending F0 time at %d", i)
		}
	}
	r, k := len(ladder), len(models)
	t := &cctable.Table{
		CC:      make([][]int, r),
		Frac:    make([][]float64, r),
		Classes: classes,
		Ladder:  ladder,
		T:       T,
	}
	sentinel := maxCores*r + 1
	for j := 0; j < r; j++ {
		t.CC[j] = make([]int, k)
		t.Frac[j] = make([]float64, k)
		ratio := ladder.Ratio(j)
		for i, m := range models {
			perTask := m.TimeAt(ratio)
			frac := float64(m.Count) * perTask / T
			t.Frac[j][i] = frac
			rounds := int(math.Floor(T/perTask + 1e-9))
			biggest := perTask * m.MaxRatio
			if rounds <= 0 || biggest > T*(1+1e-9) {
				t.CC[j][i] = sentinel
				continue
			}
			cc := int(math.Ceil(frac - 1e-9))
			granular := (m.Count + rounds - 1) / rounds
			if granular > cc {
				cc = granular
			}
			if cc < 1 {
				cc = 1
			}
			t.CC[j][i] = cc
		}
	}
	return t, nil
}
