package memmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/xrand"
)

var ladder = machine.FreqLadder{2.5, 1.8, 1.3, 0.8}

// recordAt feeds the profiler n tasks of class name whose true
// frequency response is t(ratio) = a + b·ratio, observed at level.
func recordAt(p *profile.Profiler, name string, n int, a, b float64, level int) {
	ratio := ladder.Ratio(level)
	for i := 0; i < n; i++ {
		p.Record(name, a+b*ratio, level, 0.5)
	}
}

func TestFitExactTwoPoints(t *testing.T) {
	p := profile.New(ladder)
	a, b := 0.006, 0.004
	recordAt(p, "c", 10, a, b, 0)
	recordAt(p, "c", 10, a, b, 2)
	m, ok := Fit(p, "c", ladder)
	if !ok {
		t.Fatal("fit failed with two levels")
	}
	if math.Abs(m.A-a) > 1e-12 || math.Abs(m.B-b) > 1e-12 {
		t.Errorf("fit = (%g, %g), want (%g, %g)", m.A, m.B, a, b)
	}
	// Extrapolation to an unseen level must be exact for linear truth.
	want := a + b*ladder.Ratio(3)
	if got := m.TimeAt(ladder.Ratio(3)); math.Abs(got-want) > 1e-12 {
		t.Errorf("TimeAt(F3) = %g, want %g", got, want)
	}
}

func TestFitNeedsTwoLevels(t *testing.T) {
	p := profile.New(ladder)
	recordAt(p, "c", 10, 0.01, 0.01, 0)
	if _, ok := Fit(p, "c", ladder); ok {
		t.Error("fit must fail with a single frequency level")
	}
	if _, ok := Fit(p, "ghost", ladder); ok {
		t.Error("fit must fail for unseen classes")
	}
}

func TestFitClampsNegativeComponents(t *testing.T) {
	p := profile.New(ladder)
	// Pure CPU-bound class (a = 0): jitter-free samples.
	recordAt(p, "cpu", 5, 0, 0.01, 0)
	recordAt(p, "cpu", 5, 0, 0.01, 3)
	m, ok := Fit(p, "cpu", ladder)
	if !ok {
		t.Fatal("fit failed")
	}
	if m.A < 0 || m.B < 0 {
		t.Errorf("components must be non-negative: (%g, %g)", m.A, m.B)
	}
	if m.MemFraction() > 1e-9 {
		t.Errorf("pure CPU class MemFraction = %g, want 0", m.MemFraction())
	}
	// Pure memory-bound class (b = 0).
	recordAt(p, "mem", 5, 0.02, 0, 0)
	recordAt(p, "mem", 5, 0.02, 0, 3)
	m2, _ := Fit(p, "mem", ladder)
	if math.Abs(m2.MemFraction()-1) > 1e-9 {
		t.Errorf("pure memory class MemFraction = %g, want 1", m2.MemFraction())
	}
}

func TestFitAll(t *testing.T) {
	p := profile.New(ladder)
	recordAt(p, "x", 8, 0.01, 0.02, 0)
	recordAt(p, "x", 8, 0.01, 0.02, 2)
	recordAt(p, "y", 16, 0.002, 0.001, 0)
	recordAt(p, "y", 16, 0.002, 0.001, 2)
	models, ok := FitAll(p, p.Classes(), ladder)
	if !ok {
		t.Fatal("FitAll failed")
	}
	if len(models) != 2 {
		t.Fatalf("got %d models, want 2", len(models))
	}
	// Counts carried over from the classes.
	for _, m := range models {
		if m.Count == 0 {
			t.Errorf("model %s has zero count", m.Name)
		}
		if m.MaxRatio < 1 {
			t.Errorf("model %s MaxRatio %g < 1", m.Name, m.MaxRatio)
		}
	}
	// One class short of samples fails the whole fit.
	recordAt(p, "z", 4, 0.01, 0.01, 0)
	if _, ok := FitAll(p, p.Classes(), ladder); ok {
		t.Error("FitAll must fail when any class lacks a second level")
	}
}

func TestBuildTableMemoryAware(t *testing.T) {
	// A memory-bound class: a = 0.7·t0. At F3 (ratio 3.125), the
	// CPU-bound model predicts t·3.125 but the true time is only
	// t·(0.7 + 0.3·3.125) = 1.64·t — the model-aware table must demand
	// correspondingly fewer cores.
	t0 := 0.01
	models := []Model{{Name: "m", A: 0.7 * t0, B: 0.3 * t0, Count: 100, MaxRatio: 1.0}}
	T := 0.1
	tab, err := BuildTable(models, ladder, T, 16)
	if err != nil {
		t.Fatal(err)
	}
	// CC at F0: ceil(100·0.01/0.1) = 10.
	if tab.CC[0][0] != 10 {
		t.Errorf("CC[0][0] = %d, want 10", tab.CC[0][0])
	}
	// CC at F3 with the true response: ceil(100·0.016375/0.1) = 17,
	// versus 32 under the naive CPU-bound scaling.
	wantT := 0.7*t0 + 0.3*t0*ladder.Ratio(3)
	wantCC := int(math.Ceil(100 * wantT / T))
	if tab.CC[3][0] != wantCC {
		t.Errorf("CC[3][0] = %d, want %d (model-corrected)", tab.CC[3][0], wantCC)
	}
	naive := int(math.Ceil(100 * t0 * ladder.Ratio(3) / T))
	if tab.CC[3][0] >= naive {
		t.Errorf("model-corrected count %d should undercut naive %d", tab.CC[3][0], naive)
	}
}

func TestBuildTableGranularityBar(t *testing.T) {
	// Single chunky task per batch whose F3 time exceeds T: level 3
	// must be barred (sentinel > maxCores).
	models := []Model{{Name: "m", A: 0, B: 0.05, Count: 1, MaxRatio: 1.0}}
	tab, err := BuildTable(models, ladder, 0.06, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tab.CC[0][0] != 1 {
		t.Errorf("CC[0][0] = %d, want 1", tab.CC[0][0])
	}
	if tab.CC[3][0] <= 16 {
		t.Errorf("CC[3][0] = %d, want sentinel (task cannot fit at F3)", tab.CC[3][0])
	}
}

func TestBuildTableErrors(t *testing.T) {
	if _, err := BuildTable(nil, ladder, 1, 16); err == nil {
		t.Error("no models should error")
	}
	m := []Model{{Name: "m", A: 0.1, B: 0.1, Count: 1, MaxRatio: 1}}
	if _, err := BuildTable(m, ladder, 0, 16); err == nil {
		t.Error("zero T should error")
	}
	if _, err := BuildTable(m, ladder, 1, 0); err == nil {
		t.Error("zero cores should error")
	}
	unsorted := []Model{
		{Name: "small", A: 0.001, B: 0.001, Count: 1, MaxRatio: 1},
		{Name: "big", A: 0.1, B: 0.1, Count: 1, MaxRatio: 1},
	}
	if _, err := BuildTable(unsorted, ladder, 1, 16); err == nil {
		t.Error("unsorted models should error")
	}
}

// Property: for any (a, b) ≥ 0 and any pair of distinct levels, Fit
// recovers the coefficients and table entries are monotone down the
// ladder.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := rng.Range(0, 0.02)
		b := rng.Range(0.001, 0.02)
		l1 := rng.Intn(len(ladder))
		l2 := rng.Intn(len(ladder))
		if l1 == l2 {
			l2 = (l1 + 1) % len(ladder)
		}
		p := profile.New(ladder)
		recordAt(p, "c", 5, a, b, l1)
		recordAt(p, "c", 5, a, b, l2)
		m, ok := Fit(p, "c", ladder)
		if !ok {
			return false
		}
		if math.Abs(m.A-a) > 1e-9 || math.Abs(m.B-b) > 1e-9 {
			return false
		}
		tab, err := BuildTable([]Model{{Name: "c", A: a, B: b, Count: 50, MaxRatio: 1}}, ladder, 1.0, 64)
		if err != nil {
			return false
		}
		for j := 1; j < len(ladder); j++ {
			if tab.CC[j][0] < tab.CC[j-1][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
