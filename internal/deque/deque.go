// Package deque provides the work-stealing double-ended queues used by
// the live EEWA runtime (the paper's task pools, Fig. 4).
//
// Two implementations share the Deque interface:
//
//   - Chase — a lock-free Chase–Lev deque (Chase & Lev, SPAA 2005, with
//     the memory-model fixes of Lê et al., PPoPP 2013). The owner pushes
//     and pops at the bottom without synchronization in the common case;
//     thieves steal from the top with a single CAS. Slots are
//     atomic.Pointer values so the implementation is exact under the Go
//     race detector.
//   - Locked — a plain mutex-protected deque, the reference
//     implementation the property tests compare against and a useful
//     baseline for the contention benchmarks.
//
// Both are LIFO for the owner (good locality: recently spawned tasks
// have hot caches) and FIFO for thieves (steal the oldest task, which
// in divide-and-conquer programs is the largest), matching MIT Cilk.
package deque

import (
	"sync"
	"sync/atomic"
)

// Deque is a work-stealing deque of values of type T.
//
// PushBottom and PopBottom may be called only by the owning worker;
// Steal may be called by any number of concurrent thieves.
type Deque[T any] interface {
	// PushBottom adds v at the bottom (owner side).
	PushBottom(v T)
	// PopBottom removes and returns the most recently pushed value.
	// ok is false when the deque is empty.
	PopBottom() (v T, ok bool)
	// Steal removes and returns the oldest value (thief side).
	// ok is false when the deque is empty or the steal lost a race.
	Steal() (v T, ok bool)
	// Len returns a point-in-time size estimate (exact when quiescent).
	Len() int
}

// --- Chase–Lev -------------------------------------------------------

const initialRingCap = 8

// ring is an immutable-capacity circular buffer; growth allocates a new
// ring and copies live elements. Slots hold *T atomically so concurrent
// owner-writes and thief-reads are well-defined.
type ring[T any] struct {
	mask  int64
	slots []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, slots: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) cap() int64        { return int64(len(r.slots)) }
func (r *ring[T]) get(i int64) *T    { return r.slots[i&r.mask].Load() }
func (r *ring[T]) put(i int64, v *T) { r.slots[i&r.mask].Store(v) }

// grow returns a ring of twice the capacity holding elements [top, bottom).
func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	nr := newRing[T](r.cap() * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// Chase is a lock-free Chase–Lev work-stealing deque.
// The zero value is not usable; call NewChase.
type Chase[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[ring[T]]
}

// NewChase returns an empty lock-free deque.
func NewChase[T any]() *Chase[T] {
	d := &Chase[T]{}
	d.ring.Store(newRing[T](initialRingCap))
	return d
}

// PushBottom adds v at the owner end. Only the owner may call it.
func (d *Chase[T]) PushBottom(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.cap()-1 {
		r = r.grow(t, b)
		d.ring.Store(r)
	}
	r.put(b, &v)
	d.bottom.Store(b + 1)
}

// PopBottom removes the newest value. Only the owner may call it.
func (d *Chase[T]) PopBottom() (T, bool) {
	var zero T
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore the invariant.
		d.bottom.Store(t)
		return zero, false
	}
	vp := r.get(b)
	if t != b {
		return *vp, true // more than one element: no race possible
	}
	// Single element: race against thieves for it.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return zero, false
	}
	return *vp, true
}

// Steal removes the oldest value. Any goroutine may call it.
//
// The operation order is load-bearing (Lê et al., PPoPP 2013, Fig. 1's
// steal): top is loaded *before* bottom, so a thief can never act on a
// bottom older than the top it validates — reading them the other way
// lets a thief holding a stale bottom CAS-claim an index the owner's
// PopBottom already took on its no-CAS fast path. The ring and slot
// are read after the emptiness check and *before* the CAS: the CAS is
// the linearization point, and it succeeds only while top is still t,
// which guarantees the slot read was of the live value (lapping slot
// t&mask requires bottom ≥ t+cap, which forces a grow first, and
// grows copy [top, bottom) into a fresh ring without ever mutating
// the published one). A slot read after a winning CAS would have no
// such guarantee. internal/check explores exactly these interleavings
// against seeded mutants of this function.
func (d *Chase[T]) Steal() (T, bool) {
	var zero T
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return zero, false
	}
	r := d.ring.Load()
	vp := r.get(t)
	if vp == nil {
		// Re-validate before claiming: a nil slot means this ring never
		// carried index t — the load raced a grow+wraparound and top
		// must already have moved past t, so the CAS below would fail.
		// Bailing out here makes that a guaranteed lost race instead of
		// leaning on the CAS to shield the dereference: any future
		// reordering of these loads would otherwise surface as a nil
		// deref that kills the worker and strands the batch.
		return zero, false
	}
	if !d.top.CompareAndSwap(t, t+1) {
		return zero, false // lost the race; caller retries elsewhere
	}
	return *vp, true
}

// Len returns a snapshot size (may be momentarily stale under
// concurrency, exact when quiescent).
func (d *Chase[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

var _ Deque[int] = (*Chase[int])(nil)

// --- Locked reference -------------------------------------------------

// Locked is a mutex-based deque with the same semantics as Chase. It is
// the property-test oracle and the contention baseline.
type Locked[T any] struct {
	mu    sync.Mutex
	items []T
}

// NewLocked returns an empty mutex-based deque.
func NewLocked[T any]() *Locked[T] {
	return &Locked[T]{}
}

// PushBottom adds v at the owner end.
func (d *Locked[T]) PushBottom(v T) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// PopBottom removes the newest value.
func (d *Locked[T]) PopBottom() (T, bool) {
	var zero T
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return zero, false
	}
	v := d.items[n-1]
	d.items[n-1] = zero // release for GC
	d.items = d.items[:n-1]
	return v, true
}

// Steal removes the oldest value.
func (d *Locked[T]) Steal() (T, bool) {
	var zero T
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return zero, false
	}
	v := d.items[0]
	d.items[0] = zero
	d.items = d.items[1:]
	return v, true
}

// Len returns the current size.
func (d *Locked[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

var _ Deque[int] = (*Locked[int])(nil)
