package deque

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestRingBasics(t *testing.T) {
	d := NewRing[int]()
	if _, ok := d.PopBottom(); ok {
		t.Error("PopBottom on empty should fail")
	}
	if _, ok := d.Steal(); ok {
		t.Error("Steal on empty should fail")
	}
	for i := 1; i <= 5; i++ {
		d.PushBottom(i)
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	if v, _ := d.Steal(); v != 1 {
		t.Errorf("Steal = %d, want 1 (FIFO end)", v)
	}
	if v, _ := d.PopBottom(); v != 5 {
		t.Errorf("PopBottom = %d, want 5 (LIFO end)", v)
	}
}

// TestRingAgainstLockedOracle is the satellite property test: random
// operation sequences — including stretches that force ring growth and
// index wraparound — must produce results identical to the Locked
// reference on every operation.
func TestRingAgainstLockedOracle(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := xrand.New(seed)
		ops := int(opsRaw%800) + 100
		r := NewRing[int]()
		l := NewLocked[int]()
		next := 0
		for i := 0; i < ops; i++ {
			// Weighted mix: pushes slightly favored so the deque deepens
			// past the initial capacity (growth), with pop/steal churn
			// advancing top far beyond the capacity (wraparound).
			switch rng.Intn(7) {
			case 0, 1, 2:
				r.PushBottom(next)
				l.PushBottom(next)
				next++
			case 3, 4:
				rv, rok := r.PopBottom()
				lv, lok := l.PopBottom()
				if rok != lok || (rok && rv != lv) {
					return false
				}
			case 5, 6:
				rv, rok := r.Steal()
				lv, lok := l.Steal()
				if rok != lok || (rok && rv != lv) {
					return false
				}
			}
			if r.Len() != l.Len() {
				return false
			}
		}
		// Drain both fully from alternating ends; tails must match too.
		for {
			rv, rok := r.Steal()
			lv, lok := l.Steal()
			if rok != lok || (rok && rv != lv) {
				return false
			}
			if !rok {
				break
			}
			rv, rok = r.PopBottom()
			lv, lok = l.PopBottom()
			if rok != lok || (rok && rv != lv) {
				return false
			}
			if !rok {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRingGrowthPreservesOrder pushes far past the initial capacity with
// the top already advanced, so growth must relocate a wrapped window.
func TestRingGrowthPreservesOrder(t *testing.T) {
	d := NewRing[int]()
	for i := 0; i < initialRingCap-2; i++ {
		d.PushBottom(i)
	}
	// Advance top so the live window wraps the ring edge after refill.
	for i := 0; i < initialRingCap/2; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("pre-grow steal = %d,%v want %d", v, ok, i)
		}
	}
	for i := initialRingCap - 2; i < 5000; i++ {
		d.PushBottom(i)
	}
	for i := initialRingCap / 2; i < 5000; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("post-grow steal = %d,%v want %d", v, ok, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after drain", d.Len())
	}
}

// TestRingWraparoundShallow keeps the deque shallow while cycling many
// times the ring capacity through it, so every slot index wraps
// repeatedly without ever growing.
func TestRingWraparoundShallow(t *testing.T) {
	d := NewRing[int]()
	rng := xrand.New(11)
	expectTop := 0
	next := 0
	depth := 0
	for next < 20000 {
		d.PushBottom(next)
		next++
		depth++
		if depth > 3 || rng.Intn(2) == 0 {
			if v, ok := d.Steal(); !ok || v != expectTop {
				t.Fatalf("steal = %d,%v want %d", v, ok, expectTop)
			}
			expectTop++
			depth--
		}
	}
	for ; expectTop < next; expectTop++ {
		if v, ok := d.Steal(); !ok || v != expectTop {
			t.Fatalf("drain steal = %d,%v want %d", v, ok, expectTop)
		}
	}
}

func TestRingStructValues(t *testing.T) {
	type payload struct{ a, b int }
	d := NewRing[payload]()
	d.PushBottom(payload{1, 2})
	v, ok := d.PopBottom()
	if !ok || v.a != 1 || v.b != 2 {
		t.Errorf("struct round-trip = %+v,%v", v, ok)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	d := NewRing[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkRingPushSteal(b *testing.B) {
	d := NewRing[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.Steal()
	}
}
