package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// both runs a subtest against each implementation.
func both(t *testing.T, fn func(t *testing.T, mk func() Deque[int])) {
	t.Helper()
	t.Run("chase", func(t *testing.T) { fn(t, func() Deque[int] { return NewChase[int]() }) })
	t.Run("locked", func(t *testing.T) { fn(t, func() Deque[int] { return NewLocked[int]() }) })
}

func TestEmpty(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		if _, ok := d.PopBottom(); ok {
			t.Error("PopBottom on empty should fail")
		}
		if _, ok := d.Steal(); ok {
			t.Error("Steal on empty should fail")
		}
		if d.Len() != 0 {
			t.Errorf("Len = %d, want 0", d.Len())
		}
	})
}

func TestOwnerLIFO(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		for i := 1; i <= 5; i++ {
			d.PushBottom(i)
		}
		for want := 5; want >= 1; want-- {
			v, ok := d.PopBottom()
			if !ok || v != want {
				t.Fatalf("PopBottom = %d,%v want %d,true", v, ok, want)
			}
		}
	})
}

func TestThiefFIFO(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		for i := 1; i <= 5; i++ {
			d.PushBottom(i)
		}
		for want := 1; want <= 5; want++ {
			v, ok := d.Steal()
			if !ok || v != want {
				t.Fatalf("Steal = %d,%v want %d,true", v, ok, want)
			}
		}
	})
}

func TestMixedEnds(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		for i := 1; i <= 4; i++ {
			d.PushBottom(i)
		}
		if v, _ := d.Steal(); v != 1 {
			t.Errorf("first steal = %d, want 1", v)
		}
		if v, _ := d.PopBottom(); v != 4 {
			t.Errorf("first pop = %d, want 4", v)
		}
		if d.Len() != 2 {
			t.Errorf("Len = %d, want 2", d.Len())
		}
	})
}

func TestSingleElementRace(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		d.PushBottom(7)
		v, ok := d.PopBottom()
		if !ok || v != 7 {
			t.Fatalf("single-element pop = %d,%v", v, ok)
		}
		// After the contested pop the deque must be reusable.
		d.PushBottom(8)
		if v, ok := d.Steal(); !ok || v != 8 {
			t.Fatalf("reuse after empty = %d,%v", v, ok)
		}
	})
}

func TestGrowth(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		const n = 10000 // forces many ring growths in Chase
		for i := 0; i < n; i++ {
			d.PushBottom(i)
		}
		if d.Len() != n {
			t.Fatalf("Len = %d, want %d", d.Len(), n)
		}
		for i := n - 1; i >= 0; i-- {
			v, ok := d.PopBottom()
			if !ok || v != i {
				t.Fatalf("pop %d = %d,%v", i, v, ok)
			}
		}
	})
}

func TestGrowthPreservesStealOrder(t *testing.T) {
	d := NewChase[int]()
	for i := 0; i < 100; i++ {
		d.PushBottom(i)
	}
	// Steal a few to advance top, then grow.
	for i := 0; i < 10; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("pre-grow steal = %d,%v want %d", v, ok, i)
		}
	}
	for i := 100; i < 5000; i++ {
		d.PushBottom(i)
	}
	for i := 10; i < 5000; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("post-grow steal = %d,%v want %d", v, ok, i)
		}
	}
}

// TestConcurrentOwnerThieves hammers one owner against many thieves and
// checks that every pushed value is consumed exactly once. Run with
// -race to exercise the memory-model claims.
func TestConcurrentOwnerThieves(t *testing.T) {
	for _, impl := range []struct {
		name string
		d    Deque[int]
	}{
		{"chase", NewChase[int]()},
		{"locked", NewLocked[int]()},
	} {
		t.Run(impl.name, func(t *testing.T) {
			d := impl.d
			const total = 100000
			const thieves = 4
			var consumed [total]atomic.Int32
			var wg sync.WaitGroup
			var done atomic.Bool

			for i := 0; i < thieves; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !done.Load() {
						if v, ok := d.Steal(); ok {
							consumed[v].Add(1)
						}
					}
					// Final drain after the owner stops.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						consumed[v].Add(1)
					}
				}()
			}

			// Owner: interleave pushes and pops.
			rng := xrand.New(1)
			for i := 0; i < total; i++ {
				d.PushBottom(i)
				if rng.Intn(3) == 0 {
					if v, ok := d.PopBottom(); ok {
						consumed[v].Add(1)
					}
				}
			}
			for {
				v, ok := d.PopBottom()
				if !ok {
					break
				}
				consumed[v].Add(1)
			}
			done.Store(true)
			wg.Wait()
			// Thieves may have grabbed the last elements after the owner
			// saw empty; drain once more.
			for {
				v, ok := d.Steal()
				if !ok {
					break
				}
				consumed[v].Add(1)
			}

			for i := 0; i < total; i++ {
				if n := consumed[i].Load(); n != 1 {
					t.Fatalf("value %d consumed %d times, want exactly 1", i, n)
				}
			}
		})
	}
}

// TestChaseAgainstOracle drives Chase and Locked with the same
// single-threaded operation sequence and requires identical results —
// Locked is trivially correct, so this pins Chase's sequential
// semantics.
func TestChaseAgainstOracle(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := xrand.New(seed)
		ops := int(opsRaw % 500)
		c := NewChase[int]()
		l := NewLocked[int]()
		next := 0
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0:
				c.PushBottom(next)
				l.PushBottom(next)
				next++
			case 1:
				cv, cok := c.PopBottom()
				lv, lok := l.PopBottom()
				if cok != lok || (cok && cv != lv) {
					return false
				}
			case 2:
				cv, cok := c.Steal()
				lv, lok := l.Steal()
				if cok != lok || (cok && cv != lv) {
					return false
				}
			}
			if c.Len() != l.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStructValues(t *testing.T) {
	type payload struct {
		a, b int
		s    string
	}
	d := NewChase[payload]()
	d.PushBottom(payload{1, 2, "x"})
	v, ok := d.PopBottom()
	if !ok || v.a != 1 || v.b != 2 || v.s != "x" {
		t.Errorf("struct round-trip = %+v,%v", v, ok)
	}
}

func BenchmarkChasePushPop(b *testing.B) {
	d := NewChase[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkLockedPushPop(b *testing.B) {
	d := NewLocked[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkChaseStealContention(b *testing.B) {
	d := NewChase[int]()
	for i := 0; i < 1<<20; i++ {
		d.PushBottom(i)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.Steal()
		}
	})
}
