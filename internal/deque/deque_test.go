package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// both runs a subtest against each implementation.
func both(t *testing.T, fn func(t *testing.T, mk func() Deque[int])) {
	t.Helper()
	t.Run("chase", func(t *testing.T) { fn(t, func() Deque[int] { return NewChase[int]() }) })
	t.Run("locked", func(t *testing.T) { fn(t, func() Deque[int] { return NewLocked[int]() }) })
}

func TestEmpty(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		if _, ok := d.PopBottom(); ok {
			t.Error("PopBottom on empty should fail")
		}
		if _, ok := d.Steal(); ok {
			t.Error("Steal on empty should fail")
		}
		if d.Len() != 0 {
			t.Errorf("Len = %d, want 0", d.Len())
		}
	})
}

func TestOwnerLIFO(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		for i := 1; i <= 5; i++ {
			d.PushBottom(i)
		}
		for want := 5; want >= 1; want-- {
			v, ok := d.PopBottom()
			if !ok || v != want {
				t.Fatalf("PopBottom = %d,%v want %d,true", v, ok, want)
			}
		}
	})
}

func TestThiefFIFO(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		for i := 1; i <= 5; i++ {
			d.PushBottom(i)
		}
		for want := 1; want <= 5; want++ {
			v, ok := d.Steal()
			if !ok || v != want {
				t.Fatalf("Steal = %d,%v want %d,true", v, ok, want)
			}
		}
	})
}

func TestMixedEnds(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		for i := 1; i <= 4; i++ {
			d.PushBottom(i)
		}
		if v, _ := d.Steal(); v != 1 {
			t.Errorf("first steal = %d, want 1", v)
		}
		if v, _ := d.PopBottom(); v != 4 {
			t.Errorf("first pop = %d, want 4", v)
		}
		if d.Len() != 2 {
			t.Errorf("Len = %d, want 2", d.Len())
		}
	})
}

func TestSingleElementRace(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		d.PushBottom(7)
		v, ok := d.PopBottom()
		if !ok || v != 7 {
			t.Fatalf("single-element pop = %d,%v", v, ok)
		}
		// After the contested pop the deque must be reusable.
		d.PushBottom(8)
		if v, ok := d.Steal(); !ok || v != 8 {
			t.Fatalf("reuse after empty = %d,%v", v, ok)
		}
	})
}

func TestGrowth(t *testing.T) {
	both(t, func(t *testing.T, mk func() Deque[int]) {
		d := mk()
		const n = 10000 // forces many ring growths in Chase
		for i := 0; i < n; i++ {
			d.PushBottom(i)
		}
		if d.Len() != n {
			t.Fatalf("Len = %d, want %d", d.Len(), n)
		}
		for i := n - 1; i >= 0; i-- {
			v, ok := d.PopBottom()
			if !ok || v != i {
				t.Fatalf("pop %d = %d,%v", i, v, ok)
			}
		}
	})
}

func TestGrowthPreservesStealOrder(t *testing.T) {
	d := NewChase[int]()
	for i := 0; i < 100; i++ {
		d.PushBottom(i)
	}
	// Steal a few to advance top, then grow.
	for i := 0; i < 10; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("pre-grow steal = %d,%v want %d", v, ok, i)
		}
	}
	for i := 100; i < 5000; i++ {
		d.PushBottom(i)
	}
	for i := 10; i < 5000; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("post-grow steal = %d,%v want %d", v, ok, i)
		}
	}
}

// TestConcurrentOwnerThieves hammers one owner against many thieves and
// checks that every pushed value is consumed exactly once. Run with
// -race to exercise the memory-model claims.
func TestConcurrentOwnerThieves(t *testing.T) {
	for _, impl := range []struct {
		name string
		d    Deque[int]
	}{
		{"chase", NewChase[int]()},
		{"locked", NewLocked[int]()},
	} {
		t.Run(impl.name, func(t *testing.T) {
			d := impl.d
			const total = 100000
			const thieves = 4
			var consumed [total]atomic.Int32
			var wg sync.WaitGroup
			var done atomic.Bool

			for i := 0; i < thieves; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !done.Load() {
						if v, ok := d.Steal(); ok {
							consumed[v].Add(1)
						}
					}
					// Final drain after the owner stops.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						consumed[v].Add(1)
					}
				}()
			}

			// Owner: interleave pushes and pops.
			rng := xrand.New(1)
			for i := 0; i < total; i++ {
				d.PushBottom(i)
				if rng.Intn(3) == 0 {
					if v, ok := d.PopBottom(); ok {
						consumed[v].Add(1)
					}
				}
			}
			for {
				v, ok := d.PopBottom()
				if !ok {
					break
				}
				consumed[v].Add(1)
			}
			done.Store(true)
			wg.Wait()
			// Thieves may have grabbed the last elements after the owner
			// saw empty; drain once more.
			for {
				v, ok := d.Steal()
				if !ok {
					break
				}
				consumed[v].Add(1)
			}

			for i := 0; i < total; i++ {
				if n := consumed[i].Load(); n != 1 {
					t.Fatalf("value %d consumed %d times, want exactly 1", i, n)
				}
			}
		})
	}
}

// TestChaseAgainstOracle drives Chase and Locked with the same
// single-threaded operation sequence and requires identical results —
// Locked is trivially correct, so this pins Chase's sequential
// semantics.
func TestChaseAgainstOracle(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := xrand.New(seed)
		ops := int(opsRaw % 500)
		c := NewChase[int]()
		l := NewLocked[int]()
		next := 0
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0:
				c.PushBottom(next)
				l.PushBottom(next)
				next++
			case 1:
				cv, cok := c.PopBottom()
				lv, lok := l.PopBottom()
				if cok != lok || (cok && cv != lv) {
					return false
				}
			case 2:
				cv, cok := c.Steal()
				lv, lok := l.Steal()
				if cok != lok || (cok && cv != lv) {
					return false
				}
			}
			if c.Len() != l.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStealGrowWraparound is the regression test for the hardened
// Steal: one owner keeps the deque shallow while pushing far past the
// ring capacity, so slot indices wrap repeatedly and periodic bursts
// force grows mid-stream — thieves holding stale ring pointers race
// every transition. Every value must still be consumed exactly once.
func TestStealGrowWraparound(t *testing.T) {
	const (
		total   = 60000
		thieves = 4
	)
	d := NewChase[int]()
	var consumed [total]atomic.Int32
	var wg sync.WaitGroup
	var done atomic.Bool

	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for !done.Load() {
				if v, ok := d.Steal(); ok {
					consumed[v].Add(1)
					if v <= last {
						t.Errorf("steal order regressed: %d after %d", v, last)
						return
					}
					last = v
				}
			}
			for {
				v, ok := d.Steal()
				if !ok {
					return
				}
				consumed[v].Add(1)
			}
		}()
	}

	rng := xrand.New(3)
	next := 0
	for next < total {
		// Mostly shallow traffic: index wraparound within the current
		// ring. The initial capacity is 8, so a few pushes at depth < 7
		// lap the ring every handful of iterations.
		d.PushBottom(next)
		next++
		if rng.Intn(3) == 0 {
			if v, ok := d.PopBottom(); ok {
				consumed[v].Add(1)
			}
		}
		// Periodic burst: overflow the ring to force a grow while the
		// thieves are mid-steal, then drain back down.
		if next%977 == 0 {
			for j := 0; j < 40 && next < total; j++ {
				d.PushBottom(next)
				next++
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		consumed[v].Add(1)
	}
	done.Store(true)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		consumed[v].Add(1)
	}

	for i := 0; i < total; i++ {
		if n := consumed[i].Load(); n != 1 {
			t.Fatalf("value %d consumed %d times, want exactly 1", i, n)
		}
	}
}

// TestPopBottomSingleElementCASLoss drives the contested single-element
// pop over and over: owner and one thief race for the last value, so
// PopBottom's CAS-loss path (top advanced under it) and CAS-win path
// both execute many times. Exactly one side must win each round and the
// deque must come back empty and reusable.
func TestPopBottomSingleElementCASLoss(t *testing.T) {
	d := NewChase[int]()
	const rounds = 20000
	var ownerWins, thiefWins int
	start := make(chan struct{})
	res := make(chan int, 1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for range start {
			if v, ok := d.Steal(); ok {
				res <- v
			} else {
				res <- -1
			}
		}
	}()

	for r := 0; r < rounds; r++ {
		d.PushBottom(r)
		start <- struct{}{}
		pv, pok := d.PopBottom()
		sv := <-res
		switch {
		case pok && sv == -1:
			if pv != r {
				t.Fatalf("round %d: owner popped %d", r, pv)
			}
			ownerWins++
		case !pok && sv == r:
			thiefWins++
		case pok && sv == r:
			t.Fatalf("round %d: both sides won the single element", r)
		default:
			// Neither side got it — only legal if it is still queued.
			if v, ok := d.PopBottom(); !ok || v != r {
				t.Fatalf("round %d: value vanished (pop=%v,%v steal=%d)", r, pv, pok, sv)
			}
			ownerWins++
		}
		if d.Len() != 0 {
			t.Fatalf("round %d: Len = %d after the race", r, d.Len())
		}
	}
	close(start)
	wg.Wait()
	if ownerWins == 0 || thiefWins == 0 {
		t.Logf("one-sided outcome: owner=%d thief=%d (scheduling-dependent, not a failure)", ownerWins, thiefWins)
	}
	t.Logf("owner wins %d, thief wins %d", ownerWins, thiefWins)
}

// TestPropertyOwnerThievesOracle is the property test comparing the two
// implementations under the same concurrent protocol: for each seed,
// one owner and N thieves run a randomized push/pop mix against Chase
// and against the Locked oracle, and both must satisfy the identical
// conservation property (every value exactly once). Run under -race,
// this pins Chase's concurrent semantics to the trivially correct
// implementation's.
func TestPropertyOwnerThievesOracle(t *testing.T) {
	impls := []struct {
		name string
		mk   func() Deque[int]
	}{
		{"chase", func() Deque[int] { return NewChase[int]() }},
		{"locked", func() Deque[int] { return NewLocked[int]() }},
	}
	for seed := uint64(1); seed <= 4; seed++ {
		for _, impl := range impls {
			d := impl.mk()
			const total = 8000
			const thieves = 3
			consumed := make([]atomic.Int32, total)
			var wg sync.WaitGroup
			var done atomic.Bool
			for i := 0; i < thieves; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for !done.Load() {
						if v, ok := d.Steal(); ok {
							consumed[v].Add(1)
						}
					}
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						consumed[v].Add(1)
					}
				}(i)
			}
			rng := xrand.New(seed)
			for i := 0; i < total; i++ {
				d.PushBottom(i)
				// Uneven mix: stretches of owner pops, stretches of
				// pure pushes (deque deepens, thieves catch up).
				if rng.Intn(5) < 2 {
					if v, ok := d.PopBottom(); ok {
						consumed[v].Add(1)
					}
				}
			}
			for {
				v, ok := d.PopBottom()
				if !ok {
					break
				}
				consumed[v].Add(1)
			}
			done.Store(true)
			wg.Wait()
			for {
				v, ok := d.Steal()
				if !ok {
					break
				}
				consumed[v].Add(1)
			}
			for i := 0; i < total; i++ {
				if n := consumed[i].Load(); n != 1 {
					t.Fatalf("%s seed %d: value %d consumed %d times, want 1", impl.name, seed, i, n)
				}
			}
			if d.Len() != 0 {
				t.Fatalf("%s seed %d: Len = %d after drain", impl.name, seed, d.Len())
			}
		}
	}
}

func TestStructValues(t *testing.T) {
	type payload struct {
		a, b int
		s    string
	}
	d := NewChase[payload]()
	d.PushBottom(payload{1, 2, "x"})
	v, ok := d.PopBottom()
	if !ok || v.a != 1 || v.b != 2 || v.s != "x" {
		t.Errorf("struct round-trip = %+v,%v", v, ok)
	}
}

func BenchmarkChasePushPop(b *testing.B) {
	d := NewChase[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkLockedPushPop(b *testing.B) {
	d := NewLocked[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkChaseStealContention(b *testing.B) {
	d := NewChase[int]()
	for i := 0; i < 1<<20; i++ {
		d.PushBottom(i)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.Steal()
		}
	})
}
