package deque

// Ring is a plain, unsynchronized growable ring buffer implementing the
// Deque interface — the task-pool implementation for single-threaded
// engines. The discrete-event simulator (internal/sched) processes one
// event at a time, so its pools are never contended; paying Locked's
// per-operation mutex there buys nothing, and on the simulator's hot
// path (one PopBottom or Steal per executed task, plus every failed
// probe) the lock/unlock pair dominates the deque work itself. Ring has
// the same owner-LIFO / thief-FIFO semantics as Chase and Locked — the
// property tests drive it against Locked as the oracle — but every
// operation is a couple of integer ops and one slot move.
//
// Ring is NOT safe for concurrent use. Concurrent engines (internal/rt)
// keep using Chase.
type Ring[T any] struct {
	// top and bottom are absolute positions, as in Chase: the live
	// window is [top, bottom) and slot i lives at slots[i&mask]. An
	// int64 cannot overflow in any realistic run (2^63 pushes).
	top    int64
	bottom int64
	mask   int64
	slots  []T
}

// NewRing returns an empty unsynchronized deque.
func NewRing[T any]() *Ring[T] {
	return &Ring[T]{mask: initialRingCap - 1, slots: make([]T, initialRingCap)}
}

// grow doubles the capacity, copying the live window [top, bottom).
func (d *Ring[T]) grow() {
	next := make([]T, len(d.slots)*2)
	nmask := int64(len(next)) - 1
	for i := d.top; i < d.bottom; i++ {
		next[i&nmask] = d.slots[i&d.mask]
	}
	d.slots = next
	d.mask = nmask
}

// PushBottom adds v at the owner end.
func (d *Ring[T]) PushBottom(v T) {
	if d.bottom-d.top == int64(len(d.slots)) {
		d.grow()
	}
	d.slots[d.bottom&d.mask] = v
	d.bottom++
}

// PopBottom removes the newest value.
func (d *Ring[T]) PopBottom() (T, bool) {
	var zero T
	if d.bottom == d.top {
		return zero, false
	}
	d.bottom--
	i := d.bottom & d.mask
	v := d.slots[i]
	d.slots[i] = zero // release for GC
	return v, true
}

// Steal removes the oldest value. Despite the Deque-interface name it
// carries no thief-safety here: it is the FIFO end of the same
// single-threaded pool.
func (d *Ring[T]) Steal() (T, bool) {
	var zero T
	if d.bottom == d.top {
		return zero, false
	}
	i := d.top & d.mask
	v := d.slots[i]
	d.slots[i] = zero
	d.top++
	return v, true
}

// Len returns the current size.
func (d *Ring[T]) Len() int { return int(d.bottom - d.top) }

var _ Deque[int] = (*Ring[int])(nil)
