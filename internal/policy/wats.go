package policy

import (
	"repro/internal/cgroup"
	"repro/internal/machine"
	"repro/internal/profile"
)

// WATS is the paper's [9] — Workload-Aware Task Scheduling for
// asymmetric multi-core machines — reconstructed as the Fig. 7
// baseline: the per-core frequency configuration is *fixed* for the
// whole run (EEWA's modal configuration, frozen), task classes are
// profiled online exactly as in EEWA, heavy classes are allocated to
// fast c-groups by computational capacity, and idle cores steal by the
// same rob-the-weaker-first preference lists. What WATS cannot do is
// re-tune frequencies between batches — the delta the paper attributes
// EEWA's remaining edge to.
type WATS struct {
	asn *cgroup.Assignment
}

// NewWATS builds the policy for a machine frozen at the given per-core
// frequency levels (r = ladder length).
func NewWATS(levels []int, r int) (*WATS, error) {
	asn, err := cgroup.FromLevels(levels, r)
	if err != nil {
		return nil, err
	}
	return &WATS{asn: asn}, nil
}

// DefaultWATSLevels is the frozen frequency configuration used when a
// caller asks for WATS without specifying one: roughly a third of the
// cores at F0 and the rest at the slowest level — the steady-state
// shape EEWA converges to on the paper's benchmarks (Fig. 8's 5-fast /
// 11-slow census on the 16-core Opteron).
func DefaultWATSLevels(cores, r int) []int {
	fast := (cores + 2) / 3
	if fast < 1 {
		fast = 1
	}
	levels := make([]int, cores)
	for i := fast; i < cores; i++ {
		levels[i] = r - 1
	}
	return levels
}

// Name implements Policy.
func (*WATS) Name() string { return "WATS" }

// BeginBatch implements Policy. The first batch has no class history,
// so tasks scatter round-robin; later batches allocate classes to
// c-groups proportionally to group capacity, heaviest classes to the
// fastest groups.
func (w *WATS) BeginBatch(bi int, prof *profile.Profiler, env *Env) Plan {
	if bi == 0 || prof.NumClasses() == 0 {
		return Plan{Assignment: w.asn, ScatterAll: true}
	}
	classes := prof.Classes()
	asn := *w.asn // shallow copy; Groups/CoreGroup shared (immutable here)
	asn.ClassGroup = allocateByCapacity(classes, w.asn, env.Cfg.Freqs)
	return Plan{Assignment: &asn}
}

// OutOfWork implements Policy: spin at the frozen frequency.
func (*WATS) OutOfWork(int) OutOfWorkAction {
	return OutOfWorkAction{State: machine.Spinning, FreqLevel: -1}
}

var _ Policy = (*WATS)(nil)

// allocateByCapacity maps classes (descending workload) onto c-groups
// (descending frequency): each class, heaviest first, goes to the group
// with the lowest projected relative load (assigned work divided by
// computational capacity Σ f_core/F0). Heavy classes therefore claim
// the fast groups while they are still empty, and no group ends up
// overloaded relative to its speed — the workload-aware placement the
// WATS baseline contributes on asymmetric machines.
func allocateByCapacity(classes []profile.Class, asn *cgroup.Assignment, ladder machine.FreqLadder) map[string]int {
	u := asn.U()
	caps := make([]float64, u)
	loads := make([]float64, u)
	for gi, g := range asn.Groups {
		caps[gi] = float64(len(g.Cores)) / ladder.Ratio(g.Level)
	}
	out := make(map[string]int, len(classes))
	for _, c := range classes {
		best, bestLoad := 0, 0.0
		for gi := 0; gi < u; gi++ {
			load := (loads[gi] + c.TotalWork()) / caps[gi]
			if gi == 0 || load < bestLoad {
				best, bestLoad = gi, load
			}
		}
		out[c.Name] = best
		loads[best] += c.TotalWork()
	}
	return out
}
