package policy

import (
	"repro/internal/cctable"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
)

// EEWA is the paper's Energy-Efficient Workload-Aware scheduler:
//
//   - batch 0 runs like classic work stealing with every core at F0 and
//     its duration becomes the ideal iteration time T;
//   - at every later batch boundary the workload-aware frequency
//     adjuster (internal/core) takes the profiled task classes, builds
//     the CC table, runs the Algorithm 1 backtracking search, and
//     converts the k-tuple into c-groups (contiguous core ranges, which
//     aligns them with the machine's voltage-plane packages) plus a
//     class→c-group allocation;
//   - within a batch the preference-based task-stealing scheduler
//     balances residual imbalance (rob-the-weaker-first, Fig. 5);
//   - if the first batch classifies the application as memory-bound
//     (§IV-D), EEWA permanently falls back to classic stealing at F0.
type EEWA struct {
	// SearchFn overrides the tuple-search algorithm (Algorithm 1 by
	// default); the ablation benches swap in ExhaustiveSearch /
	// GreedySearch.
	SearchFn core.SearchFunc
	// DivisibleCC selects the paper's divisible-load CC formula
	// instead of the granularity-aware default (ablation knob).
	DivisibleCC bool
	// MemAware enables the paper's future-work extension: instead of
	// permanently falling back to classic stealing for memory-bound
	// applications, EEWA spends one calibration batch at a lower
	// uniform frequency, fits each class's frequency response
	// t = a + b·(F0/Fj) (internal/memmodel), and schedules from the
	// model-corrected CC table.
	MemAware bool
	// IgnoreMemoryBound disables the §IV-D detection entirely,
	// applying the CPU-bound CC model regardless — the negative
	// control for the memory-bound experiments (it overruns T).
	IgnoreMemoryBound bool
	// Offline, when set, supplies a previously collected workload
	// profile (paper §IV-D last paragraph): the adjuster configures
	// frequencies before the *first* batch instead of burning an
	// all-fast warmup iteration. Later batches re-profile online as
	// usual.
	Offline *profile.Snapshot

	adj         *core.Adjuster
	memoryBound bool
	lowest      int
}

// NewEEWA returns the EEWA policy with Algorithm 1 as the search.
func NewEEWA() *EEWA { return &EEWA{} }

// Name implements Policy.
func (*EEWA) Name() string { return "EEWA" }

// Adjuster exposes the underlying frequency adjuster (nil until the
// first planned batch) for tests and the ktuple CLI.
func (e *EEWA) Adjuster() *core.Adjuster { return e.adj }

// LastTable returns the most recent CC table, if any.
func (e *EEWA) LastTable() *cctable.Table {
	if e.adj == nil {
		return nil
	}
	return e.adj.LastTable
}

// Infeasible reports how many batches fell back to all-fast because no
// tuple fit.
func (e *EEWA) Infeasible() int {
	if e.adj == nil {
		return 0
	}
	return e.adj.Infeasible
}

// BeginBatch implements Policy.
func (e *EEWA) BeginBatch(bi int, prof *profile.Profiler, env *Env) Plan {
	e.lowest = env.Cfg.Freqs.Slowest()
	if e.adj == nil {
		adj, err := core.NewAdjuster(env.Cfg.Freqs, env.Cfg.Cores)
		if err != nil {
			panic("policy: " + err.Error()) // env.Cfg was validated by the engine
		}
		adj.DivisibleCC = e.DivisibleCC
		if e.SearchFn != nil {
			adj.Search = e.SearchFn
		}
		e.adj = adj
	}

	classic := Plan{
		Assignment:  e.adj.AllFast(),
		RandomSteal: true,
		ScatterAll:  true,
	}
	if bi == 0 {
		if e.Offline != nil && e.Offline.Validate(env.Cfg.Freqs) == nil {
			// Offline profile available: configure immediately.
			hostBefore := e.adj.HostTime
			asn, ok := e.adj.Adjust(e.Offline.Classes, e.Offline.T)
			host := e.adj.HostTime - hostBefore
			if ok {
				return Plan{Assignment: asn, Overhead: env.AdjusterCharge, HostTime: host, SearchSteps: e.adj.LastSteps, Adjusted: true, CacheHit: e.adj.LastCacheHit}
			}
		}
		// No workload information yet: all cores at the highest
		// frequency; the batch duration defines T.
		return classic
	}
	if !e.IgnoreMemoryBound && (e.memoryBound || prof.MemoryBound()) {
		e.memoryBound = true
		if !e.MemAware {
			// §IV-D: the CC model does not hold for memory-bound
			// tasks; use traditional work stealing for the rest of
			// the run.
			return classic
		}
		hostBefore := e.adj.HostTime
		asn, dec := e.adj.AdjustMemAware(prof, env.IdealTime)
		host := e.adj.HostTime - hostBefore
		switch dec {
		case core.MemCalibrate:
			// One uniform slow batch, classic stealing, to sample the
			// classes at a second frequency.
			return Plan{
				Assignment:  asn,
				Overhead:    env.AdjusterCharge,
				HostTime:    host,
				Adjusted:    true,
				RandomSteal: true,
				ScatterAll:  true,
			}
		case core.MemOK:
			return Plan{Assignment: asn, Overhead: env.AdjusterCharge, HostTime: host, SearchSteps: e.adj.LastSteps, Adjusted: true, CacheHit: e.adj.LastCacheHit}
		default:
			classic.Overhead = env.AdjusterCharge
			classic.HostTime = host
			classic.Adjusted = true
			classic.CacheHit = e.adj.LastCacheHit
			return classic
		}
	}

	// With an offline profile, its measured ideal time remains the
	// performance target for the whole run: batch 0 already runs
	// downscaled, so its duration would understate T.
	T := env.IdealTime
	if e.Offline != nil && e.Offline.Validate(env.Cfg.Freqs) == nil {
		T = e.Offline.T
	}
	hostBefore := e.adj.HostTime
	asn, ok := e.adj.Adjust(prof.Classes(), T)
	host := e.adj.HostTime - hostBefore
	if !ok {
		classic.Overhead = env.AdjusterCharge
		classic.HostTime = host
		classic.Adjusted = true
		classic.CacheHit = e.adj.LastCacheHit
		return classic
	}
	return Plan{
		Assignment:  asn,
		Overhead:    env.AdjusterCharge,
		HostTime:    host,
		SearchSteps: e.adj.LastSteps,
		Adjusted:    true,
		CacheHit:    e.adj.LastCacheHit,
	}
}

// OutOfWork implements Policy: a core that has exhausted every pool
// clocks down to the lowest frequency and spins there until the
// barrier. The paper's EEWA leaves residual idle handling unspecified;
// adopting Cilk-D's down-clock for the (small) windows the frequency
// adjuster could not eliminate is strictly consistent with EEWA's goal
// and guarantees EEWA never trails Cilk-D on a workload the adjuster
// cannot improve (e.g. fully-utilized machines, the Fig. 9 4-core
// regime).
func (e *EEWA) OutOfWork(int) OutOfWorkAction {
	return OutOfWorkAction{State: machine.Spinning, FreqLevel: e.lowest}
}

var _ Policy = (*EEWA)(nil)
