package policy

import (
	"repro/internal/cgroup"
	"repro/internal/machine"
	"repro/internal/profile"
)

// --- Cilk -------------------------------------------------------------

// Cilk is classic random work stealing: every core at F0 for the whole
// run; a core with nothing to steal spins at full frequency until the
// barrier — the energy waste of Fig. 1(a).
type Cilk struct{}

// NewCilk returns the Cilk baseline policy.
func NewCilk() *Cilk { return &Cilk{} }

// Name implements Policy.
func (*Cilk) Name() string { return "Cilk" }

// BeginBatch implements Policy: all cores fast, scatter placement,
// random stealing, no overhead.
func (*Cilk) BeginBatch(_ int, _ *profile.Profiler, env *Env) Plan {
	return Plan{
		Assignment:  cgroup.AllFast(env.Cfg.Cores, nil),
		RandomSteal: true,
		ScatterAll:  true,
	}
}

// OutOfWork implements Policy: spin at the current (full) frequency.
func (*Cilk) OutOfWork(int) OutOfWorkAction {
	return OutOfWorkAction{State: machine.Spinning, FreqLevel: -1}
}

var _ Policy = (*Cilk)(nil)

// --- Cilk-D -----------------------------------------------------------

// CilkD is the paper's DVFS strawman: identical to Cilk, except that a
// core that finds no task in any pool clocks itself down to the lowest
// frequency for the rest of the batch (it keeps polling — "scaled down
// to run at the lowest frequency", §IV). On the Opteron's shared
// voltage planes this saves only the frequency-linear part of dynamic
// power while any package peer still runs fast, which is why the paper
// measures just 6.7–12.8 % savings for it.
type CilkD struct {
	lowest int
}

// NewCilkD returns the Cilk-D baseline for a machine with ladder length
// r (the lowest level is r-1).
func NewCilkD(r int) *CilkD { return &CilkD{lowest: r - 1} }

// Name implements Policy.
func (*CilkD) Name() string { return "Cilk-D" }

// BeginBatch implements Policy: like Cilk — the engine resets every
// core to F0 when applying the assignment, which models the cores
// ramping back up for the new batch.
func (*CilkD) BeginBatch(_ int, _ *profile.Profiler, env *Env) Plan {
	return Plan{
		Assignment:  cgroup.AllFast(env.Cfg.Cores, nil),
		RandomSteal: true,
		ScatterAll:  true,
	}
}

// OutOfWork implements Policy: drop to the lowest frequency, keep
// spinning.
func (c *CilkD) OutOfWork(int) OutOfWorkAction {
	return OutOfWorkAction{State: machine.Spinning, FreqLevel: c.lowest}
}

var _ Policy = (*CilkD)(nil)

// --- Cilk on a fixed asymmetric machine (Fig. 7) -----------------------

// CilkFixed is random work stealing on a machine whose per-core
// frequency levels are frozen (the Fig. 7 scenario: "frequencies of
// cores are configured by EEWA", then Cilk runs obliviously on the
// resulting asymmetric machine). Random stealing regularly lands heavy
// tasks on slow cores, which is what stretches its makespan to
// 1.17–2.92× EEWA's in the paper.
type CilkFixed struct {
	asn *cgroup.Assignment
}

// NewCilkFixed builds the policy from per-core frequency levels.
func NewCilkFixed(levels []int, r int) (*CilkFixed, error) {
	asn, err := cgroup.FromLevels(levels, r)
	if err != nil {
		return nil, err
	}
	return &CilkFixed{asn: asn}, nil
}

// Name implements Policy.
func (*CilkFixed) Name() string { return "Cilk" }

// BeginBatch implements Policy.
func (p *CilkFixed) BeginBatch(_ int, _ *profile.Profiler, _ *Env) Plan {
	return Plan{
		Assignment:  p.asn,
		RandomSteal: true,
		ScatterAll:  true,
	}
}

// OutOfWork implements Policy: spin at the frozen frequency.
func (*CilkFixed) OutOfWork(int) OutOfWorkAction {
	return OutOfWorkAction{State: machine.Spinning, FreqLevel: -1}
}

var _ Policy = (*CilkFixed)(nil)
