// Package policy is the engine-agnostic scheduling core: everything
// the paper contributes as *decisions*, with none of the machinery that
// executes them. Both execution substrates drive it —
//
//   - internal/sched, the deterministic discrete-event simulator, and
//   - internal/rt, the live goroutine runtime with Chase–Lev deques and
//     duty-cycle DVFS emulation —
//
// so the two engines cannot diverge on what the scheduler decides, only
// on how fast the decisions run.
//
// The decision surface is:
//
//   - BeginBatch — per-batch planning: profile snapshot → CC table →
//     Algorithm 1 backtracking → frequency assignment and class→c-group
//     allocation, wrapped in a Plan;
//   - Placer — initial task placement (class→c-group mapping with
//     unknown classes to the fastest group, round-robin scatter when no
//     class information exists);
//   - StealOrder — the victim probe order of an out-of-work core
//     (classic random stealing, or the paper's rob-the-weaker-first
//     preference lists, Fig. 5);
//   - OutOfWork — what a core does once every reachable pool is empty
//     for the remainder of the batch.
//
// Four policies implement it: Cilk, Cilk-D, WATS and EEWA (plus
// CilkFixed, the Fig. 7 frozen-frequency control). Each policy has one
// canonical lowercase identifier (IDs) accepted uniformly by every CLI
// and the facade, and one display name (Policy.Name) used in result
// tables.
package policy

import (
	"fmt"
	"time"

	"repro/internal/cgroup"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/xrand"
)

// Canonical policy identifiers. These are the -policy values every CLI
// accepts and the strings the facade and the live runtime use; display
// names (for tables) come from each policy's Name method.
const (
	// IDCilk is classic random work stealing at full frequency.
	IDCilk = "cilk"
	// IDCilkD is Cilk with idle cores down-clocked to the lowest level.
	IDCilkD = "cilk-d"
	// IDWATS is workload-aware stealing on a fixed asymmetric
	// configuration (the paper's [9]).
	IDWATS = "wats"
	// IDEEWA is the paper's full scheduler.
	IDEEWA = "eewa"
)

// IDs returns the canonical policy identifiers in presentation order.
func IDs() []string { return []string{IDCilk, IDCilkD, IDWATS, IDEEWA} }

// New constructs a policy from its canonical identifier for machine
// cfg. WATS freezes DefaultWATSLevels for cfg.
func New(name string, cfg machine.Config) (Policy, error) {
	switch name {
	case IDCilk:
		return NewCilk(), nil
	case IDCilkD:
		return NewCilkD(len(cfg.Freqs)), nil
	case IDWATS:
		return NewWATS(DefaultWATSLevels(cfg.Cores, len(cfg.Freqs)), len(cfg.Freqs))
	case IDEEWA:
		return NewEEWA(), nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q (want %s, %s, %s or %s)",
			name, IDCilk, IDCilkD, IDWATS, IDEEWA)
	}
}

// Env is the read-only context a Policy sees when planning a batch. It
// is engine-neutral: the simulator fills IdealTime with simulated
// seconds, the live runtime with measured wall seconds.
type Env struct {
	// Cfg is the machine configuration (the live runtime substitutes
	// its worker count for Cores).
	Cfg machine.Config
	// IdealTime is T, the duration of the first batch in seconds (0
	// while the first batch has not completed yet).
	IdealTime float64
	// AdjusterCharge is the simulated overhead a planning policy
	// should report in Plan.Overhead. The simulator sets it from its
	// Params; the live runtime leaves it zero (its adjuster cost is
	// real wall time, reported in Plan.HostTime).
	AdjusterCharge float64
}

// Plan is a policy's decision for one batch.
type Plan struct {
	// Assignment carries the frequency configuration (c-groups) and
	// the class→c-group allocation for the batch.
	Assignment *cgroup.Assignment
	// Overhead is simulated seconds charged at the batch boundary for
	// computing this plan (EEWA's adjuster; zero for the baselines and
	// in the live runtime).
	Overhead float64
	// HostTime is the real wall time the policy spent computing the
	// plan on the host (Table III).
	HostTime time.Duration
	// SearchSteps is the number of Select attempts the tuple search
	// performed for this plan (0 when no search ran) — the
	// backtracking depth surfaced to the metrics layer.
	SearchSteps int
	// Adjusted reports that the frequency adjuster ran for this plan
	// (used by the engines' adjuster-invocation metrics; Overhead may
	// legitimately be zero in the live runtime).
	Adjusted bool
	// CacheHit reports that the adjuster served this plan from its
	// memoized tuple-search cache instead of re-running the
	// backtracking search (meaningful only when Adjusted is true; the
	// engines count it on eewa_plan_cache_{hits,misses}_total).
	CacheHit bool
	// RandomSteal selects classic Cilk victim selection: each core
	// uses only its own-group pool and probes every other core's
	// own-group pool in random order, ignoring c-group structure.
	RandomSteal bool
	// ScatterAll places tasks round-robin across all cores (into each
	// core's own-group pool) instead of by class allocation — the
	// placement used when no class information exists (first batch,
	// the baselines, and EEWA's memory-bound fallback).
	ScatterAll bool
}

// OutOfWorkAction is what a core does when it has probed every pool it
// may take from and found nothing: it enters State, optionally
// re-clocking to FreqLevel (-1 keeps the current level). No work can
// arrive until the next batch, so the action holds until the barrier.
type OutOfWorkAction struct {
	State     machine.CoreState
	FreqLevel int
}

// Policy is a scheduling discipline either engine can execute.
type Policy interface {
	// Name identifies the policy in results and tables (display name;
	// the canonical CLI identifier is one of IDs).
	Name() string
	// BeginBatch plans batch bi. prof holds the classes profiled from
	// batch bi-1 (empty for bi = 0); the engine resets the profiler
	// after this call.
	BeginBatch(bi int, prof *profile.Profiler, env *Env) Plan
	// OutOfWork is consulted when a core exhausts every reachable
	// pool for the remainder of a batch.
	OutOfWork(core int) OutOfWorkAction
}

// --- Placement --------------------------------------------------------

// Placer maps one batch's tasks, in submission order, to the (core,
// c-group pool) slots the plan prescribes. Build one per batch; Place
// is not concurrency-safe (placement happens at the barrier in both
// engines).
type Placer struct {
	plan  *Plan
	cores int
	seq   int
	next  map[string]int
}

// NewPlacer builds a placer for plan on an m-core (m-worker) engine.
func NewPlacer(plan *Plan, cores int) *Placer {
	return &Placer{plan: plan, cores: cores, next: make(map[string]int)}
}

// Place returns the core and c-group pool the next task of the given
// class goes to. Scatter plans round-robin over all cores; class plans
// round-robin each class over its reserved placement cores (its
// CC-count slice of its c-group), so same-group classes start on
// disjoint pools. Unknown classes go to the fastest group, the paper's
// rule for tasks "with no existing task class".
func (pl *Placer) Place(class string) (core, group int) {
	asn := pl.plan.Assignment
	if pl.plan.ScatterAll {
		c := pl.seq % pl.cores
		pl.seq++
		return c, asn.CoreGroup[c]
	}
	g := asn.GroupOfClass(class)
	members := asn.PlacementCores(class)
	c := members[pl.next[class]%len(members)]
	pl.next[class]++
	return c, g
}

// IndexedPlacer is Placer over compact per-batch class ids instead of
// class-name strings: the group and placement-core list of every class
// are resolved once at construction, and Place is pure array indexing
// — no map operation per task. It is placement-identical to Placer for
// any id↔name bijection (TestIndexedPlacerMatchesPlacer pins this), so
// the simulator's SoA hot path can use it without perturbing
// schedules.
type IndexedPlacer struct {
	scatter   bool
	cores     int
	seq       int
	coreGroup []int
	group     []int   // per class id: its c-group
	members   [][]int // per class id: its placement cores
	next      []int   // per class id: round-robin cursor
}

// NewIndexedPlacer builds a placer for plan on an m-core engine, for a
// batch whose class id i is named classes[i]. Build one per batch.
func NewIndexedPlacer(plan *Plan, cores int, classes []string) *IndexedPlacer {
	pl := &IndexedPlacer{
		scatter:   plan.ScatterAll,
		cores:     cores,
		coreGroup: plan.Assignment.CoreGroup,
	}
	if !pl.scatter {
		n := len(classes)
		pl.group = make([]int, n)
		pl.members = make([][]int, n)
		pl.next = make([]int, n)
		for id, name := range classes {
			pl.group[id] = plan.Assignment.GroupOfClass(name)
			pl.members[id] = plan.Assignment.PlacementCores(name)
		}
	}
	return pl
}

// Place returns the core and c-group pool the next task of class id
// cid goes to, with exactly Placer.Place's discipline.
func (pl *IndexedPlacer) Place(cid int32) (core, group int) {
	if pl.scatter {
		c := pl.seq % pl.cores
		pl.seq++
		return c, pl.coreGroup[c]
	}
	m := pl.members[cid]
	c := m[pl.next[cid]%len(m)]
	pl.next[cid]++
	return c, pl.group[cid]
}

// --- Steal order ------------------------------------------------------

// StealOrder enumerates the victim pools an out-of-work core probes, in
// the plan's preference order. It is immutable after construction and
// safe for concurrent use by all workers (each worker supplies its own
// RNG).
type StealOrder struct {
	random    bool
	cores     int
	coreGroup []int
	prefs     [][]int
}

// NewStealOrder builds the steal order for plan on an m-core engine.
func NewStealOrder(plan *Plan, cores int) *StealOrder {
	return &StealOrder{
		random:    plan.RandomSteal,
		cores:     cores,
		coreGroup: plan.Assignment.CoreGroup,
		prefs:     cgroup.PreferenceLists(plan.Assignment.U()),
	}
}

// ForEachVictim calls probe(victim, group) for every remote pool core
// self may steal from, in the policy's order, stopping early when probe
// returns true (and reporting whether it did). The caller's local pool
// (self, its own group) is excluded — owners pop it directly.
//
// Random plans probe every other core's own-group pool in one random
// permutation. Preference plans walk the rob-the-weaker-first group
// list of self's c-group (Fig. 5) and probe every core's pool for that
// group in a fresh random permutation per group — exactly the paper's
// §III-B search, and byte-identical RNG consumption to the historical
// engines so simulations stay reproducible across the refactor.
//
// Each call allocates one scratch permutation. Hot paths (the engines'
// acquire loops, which run ForEachVictim once per failed local pop)
// should instead hold a per-core Walker and reuse its buffer.
func (s *StealOrder) ForEachVictim(self int, rng *xrand.RNG, probe func(victim, group int) bool) bool {
	w := VictimWalker{so: s, self: self, perm: make([]int, s.cores)}
	return w.ForEachVictim(rng, probe)
}

// VictimWalker is a per-core victim iterator bound to a StealOrder. It
// owns a reusable permutation buffer, so walking the victim order
// allocates nothing — the engines cache one walker per core and rebind
// it at each plan epoch (the plan, and with it the steal order, can
// only change at a batch boundary). A walker must only be used by its
// core's worker; distinct walkers over the same StealOrder are safe
// concurrently.
//
// RNG consumption is byte-identical to StealOrder.ForEachVictim
// (xrand.PermInto draws exactly as Perm does), so cached walkers
// reproduce the historical engines' schedules bit for bit.
type VictimWalker struct {
	so   *StealOrder
	self int
	perm []int
}

// Walker returns a victim walker for core self over this steal order.
func (s *StealOrder) Walker(self int) *VictimWalker {
	return &VictimWalker{so: s, self: self, perm: make([]int, s.cores)}
}

// Bind rebinds the walker to a new plan epoch's steal order, reusing
// the permutation buffer when the core count is unchanged.
func (w *VictimWalker) Bind(so *StealOrder) {
	w.so = so
	if len(w.perm) != so.cores {
		w.perm = make([]int, so.cores)
	}
}

// ForEachVictim walks the victim order exactly as
// StealOrder.ForEachVictim does, reusing the walker's buffer.
func (w *VictimWalker) ForEachVictim(rng *xrand.RNG, probe func(victim, group int) bool) bool {
	s := w.so
	if s.random {
		rng.PermInto(w.perm)
		for _, v := range w.perm {
			if v == w.self {
				continue
			}
			if probe(v, s.coreGroup[v]) {
				return true
			}
		}
		return false
	}
	myG := s.coreGroup[w.self]
	for _, g := range s.prefs[myG] {
		rng.PermInto(w.perm)
		for _, v := range w.perm {
			if v == w.self && g == myG {
				continue // the owner's local pool, already popped
			}
			if probe(v, g) {
				return true
			}
		}
	}
	return false
}
