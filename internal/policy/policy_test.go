package policy

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/cgroup"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/xrand"
)

func TestNewConstructsEveryCanonicalPolicy(t *testing.T) {
	cfg := machine.Opteron16()
	wantNames := map[string]string{
		IDCilk:  "Cilk",
		IDCilkD: "Cilk-D",
		IDWATS:  "WATS",
		IDEEWA:  "EEWA",
	}
	if len(IDs()) != len(wantNames) {
		t.Fatalf("IDs() = %v, want %d entries", IDs(), len(wantNames))
	}
	for _, id := range IDs() {
		p, err := New(id, cfg)
		if err != nil {
			t.Fatalf("New(%q): %v", id, err)
		}
		if p.Name() != wantNames[id] {
			t.Errorf("New(%q).Name() = %q, want %q", id, p.Name(), wantNames[id])
		}
	}
	if _, err := New("bogus", cfg); err == nil {
		t.Error("New should reject unknown identifiers")
	}
}

func TestBaselinePlans(t *testing.T) {
	cfg := machine.Opteron16()
	env := &Env{Cfg: cfg}
	prof := profile.New(cfg.Freqs)
	for _, id := range []string{IDCilk, IDCilkD} {
		p, err := New(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plan := p.BeginBatch(0, prof, env)
		if !plan.ScatterAll || !plan.RandomSteal {
			t.Errorf("%s: plan %+v, want classic scatter + random stealing", id, plan)
		}
		for c := 0; c < cfg.Cores; c++ {
			if plan.Assignment.FreqOf(c) != 0 {
				t.Errorf("%s: core %d not at F0", id, c)
			}
		}
	}
	cilk, _ := New(IDCilk, cfg)
	if act := cilk.OutOfWork(3); act.FreqLevel != -1 || act.State != machine.Spinning {
		t.Errorf("Cilk out-of-work %+v, want spin at current level", act)
	}
	cilkd, _ := New(IDCilkD, cfg)
	if act := cilkd.OutOfWork(3); act.FreqLevel != len(cfg.Freqs)-1 {
		t.Errorf("Cilk-D out-of-work %+v, want lowest level", act)
	}
}

func TestDefaultWATSLevels(t *testing.T) {
	levels := DefaultWATSLevels(16, 4)
	fast, slow := 0, 0
	for _, l := range levels {
		switch l {
		case 0:
			fast++
		case 3:
			slow++
		default:
			t.Fatalf("unexpected level %d", l)
		}
	}
	if fast != 6 || slow != 10 {
		t.Errorf("16-core split %d fast / %d slow, want 6/10", fast, slow)
	}
	if got := DefaultWATSLevels(1, 4); len(got) != 1 || got[0] != 0 {
		t.Errorf("1-core config %v, want [0]", got)
	}
}

func TestPlacerScatterRoundRobins(t *testing.T) {
	plan := &Plan{Assignment: cgroup.AllFast(4, nil), ScatterAll: true}
	pl := NewPlacer(plan, 4)
	for i := 0; i < 8; i++ {
		c, g := pl.Place("anything")
		if c != i%4 {
			t.Fatalf("task %d placed on core %d, want %d", i, c, i%4)
		}
		if g != 0 {
			t.Fatalf("task %d placed in group %d, want 0", i, g)
		}
	}
}

func TestPlacerByClassUsesPlacementCores(t *testing.T) {
	asn, err := cgroup.FromLevels([]int{0, 0, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	asn.ClassGroup["heavy"] = 0
	asn.ClassGroup["light"] = 1
	plan := &Plan{Assignment: asn}
	pl := NewPlacer(plan, 4)

	heavyCores := map[int]bool{}
	for i := 0; i < 4; i++ {
		c, g := pl.Place("heavy")
		if g != 0 {
			t.Fatalf("heavy placed in group %d", g)
		}
		heavyCores[c] = true
	}
	if !reflect.DeepEqual(heavyCores, map[int]bool{0: true, 1: true}) {
		t.Errorf("heavy cores %v, want {0,1}", heavyCores)
	}
	if c, g := pl.Place("light"); g != 1 || (c != 2 && c != 3) {
		t.Errorf("light placed on core %d group %d, want group 1 on cores {2,3}", c, g)
	}
	// Unknown classes go to the fastest group — the paper's rule.
	if _, g := pl.Place("never-profiled"); g != 0 {
		t.Errorf("unknown class placed in group %d, want fastest (0)", g)
	}
}

// collectProbes drains the full probe sequence for a worker.
func collectProbes(so *StealOrder, self int, rng *xrand.RNG) [][2]int {
	var seq [][2]int
	so.ForEachVictim(self, rng, func(v, g int) bool {
		seq = append(seq, [2]int{v, g})
		return false
	})
	return seq
}

func TestStealOrderRandomCoversEveryRemoteOnce(t *testing.T) {
	plan := &Plan{Assignment: cgroup.AllFast(6, nil), RandomSteal: true}
	so := NewStealOrder(plan, 6)
	seq := collectProbes(so, 2, xrand.New(7))
	if len(seq) != 5 {
		t.Fatalf("%d probes, want 5", len(seq))
	}
	var victims []int
	for _, p := range seq {
		if p[0] == 2 {
			t.Fatal("random order probed self")
		}
		if p[1] != 0 {
			t.Fatalf("probe %v outside own-group pool", p)
		}
		victims = append(victims, p[0])
	}
	sort.Ints(victims)
	if !reflect.DeepEqual(victims, []int{0, 1, 3, 4, 5}) {
		t.Errorf("victims %v, want every remote core once", victims)
	}
}

func TestStealOrderPreferenceIsRobTheWeakerFirst(t *testing.T) {
	// Three groups: G0 fast {0,1}, G1 mid {2,3}, G2 slow {4,5}.
	asn, err := cgroup.FromLevels([]int{0, 0, 1, 1, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Assignment: asn}
	so := NewStealOrder(plan, 6)

	// A mid-group core must probe: own group G1, then weaker G2, then
	// stronger G0 — Fig. 5's preference list — with every core's pool
	// probed within each group phase.
	seq := collectProbes(so, 2, xrand.New(7))
	if len(seq) != 17 { // 5 own-group (skip self) + 6 + 6
		t.Fatalf("%d probes, want 17", len(seq))
	}
	var phases []int
	for _, p := range seq {
		if len(phases) == 0 || phases[len(phases)-1] != p[1] {
			phases = append(phases, p[1])
		}
	}
	if !reflect.DeepEqual(phases, []int{1, 2, 0}) {
		t.Errorf("group phases %v, want [1 2 0] (own, weaker, stronger)", phases)
	}
	for i, p := range seq {
		if i < 5 && p[0] == 2 && p[1] == 1 {
			t.Error("preference order probed the caller's own local pool")
		}
	}
}

func TestStealOrderFindsTask(t *testing.T) {
	plan := &Plan{Assignment: cgroup.AllFast(4, nil), RandomSteal: true}
	so := NewStealOrder(plan, 4)
	hits := 0
	found := so.ForEachVictim(0, xrand.New(1), func(v, g int) bool {
		hits++
		return v == 3 // pretend core 3's pool yields
	})
	if !found {
		t.Error("ForEachVictim should report success")
	}
	if hits == 0 || hits > 3 {
		t.Errorf("%d probes before success, want 1..3", hits)
	}
}

func TestEEWAFirstBatchClassic(t *testing.T) {
	cfg := machine.Opteron16()
	e := NewEEWA()
	plan := e.BeginBatch(0, profile.New(cfg.Freqs), &Env{Cfg: cfg, AdjusterCharge: 2e-3})
	if !plan.ScatterAll || !plan.RandomSteal || plan.Adjusted {
		t.Errorf("first batch plan %+v, want classic unadjusted", plan)
	}
	if act := e.OutOfWork(0); act.FreqLevel != cfg.Freqs.Slowest() {
		t.Errorf("EEWA out-of-work level %d, want slowest", act.FreqLevel)
	}
}

func TestEEWAAdjustsFromProfile(t *testing.T) {
	cfg := machine.Opteron16()
	e := NewEEWA()
	prof := profile.New(cfg.Freqs)
	env := &Env{Cfg: cfg, AdjusterCharge: 2e-3}
	e.BeginBatch(0, prof, env)

	// Profile a skewed batch: few heavy tasks, many light ones.
	for i := 0; i < 8; i++ {
		prof.Record("heavy", 2e-3, 0, 0)
	}
	for i := 0; i < 64; i++ {
		prof.Record("light", 1e-4, 0, 0)
	}
	env.IdealTime = 4e-3
	plan := e.BeginBatch(1, prof, env)
	if !plan.Adjusted {
		t.Fatal("second batch should run the adjuster")
	}
	if plan.Overhead != env.AdjusterCharge {
		t.Errorf("overhead %g, want the adjuster charge %g", plan.Overhead, env.AdjusterCharge)
	}
	if plan.Assignment.U() < 2 {
		t.Errorf("adjuster kept %d group(s) for a skewed profile (tuple %v)",
			plan.Assignment.U(), plan.Assignment.Tuple)
	}
	hg := plan.Assignment.GroupOfClass("heavy")
	lg := plan.Assignment.GroupOfClass("light")
	if plan.Assignment.Groups[hg].Level > plan.Assignment.Groups[lg].Level {
		t.Errorf("heavy class on slower group (level %d) than light (level %d)",
			plan.Assignment.Groups[hg].Level, plan.Assignment.Groups[lg].Level)
	}
}

// Regression: an offline snapshot whose classes carry MaxWork == 0 (a
// hand-edited or field-dropping round trip) must never reach the
// adjuster — Snapshot.Validate rejects it, and EEWA falls back to the
// classic first batch instead of building a CC table whose
// indivisibility bound is silently disabled.
func TestEEWAOfflineRejectsZeroMaxWork(t *testing.T) {
	cfg := machine.Opteron16()
	good := &profile.Snapshot{
		Freqs: []float64(cfg.Freqs),
		T:     4e-3,
		Classes: []profile.Class{
			{Name: "heavy", Count: 8, AvgWork: 2e-3, MaxWork: 2e-3},
			{Name: "light", Count: 64, AvgWork: 1e-4, MaxWork: 1e-4},
		},
	}
	e := NewEEWA()
	e.Offline = good
	plan := e.BeginBatch(0, profile.New(cfg.Freqs), &Env{Cfg: cfg})
	if !plan.Adjusted {
		t.Fatal("valid offline snapshot should configure before batch 0")
	}

	bad := &profile.Snapshot{
		Freqs: []float64(cfg.Freqs),
		T:     good.T,
		Classes: []profile.Class{
			{Name: "heavy", Count: 8, AvgWork: 2e-3, MaxWork: 0},
			{Name: "light", Count: 64, AvgWork: 1e-4, MaxWork: 1e-4},
		},
	}
	e = NewEEWA()
	e.Offline = bad
	plan = e.BeginBatch(0, profile.New(cfg.Freqs), &Env{Cfg: cfg})
	if plan.Adjusted || !plan.ScatterAll || !plan.RandomSteal {
		t.Errorf("MaxWork=0 offline snapshot reached the adjuster: plan %+v", plan)
	}
}

// TestIndexedPlacerMatchesPlacer pins IndexedPlacer to the string-keyed
// Placer: for any plan and any id↔name bijection, the two must emit the
// same (core, group) sequence for the same class sequence. The SoA sim
// engine places through IndexedPlacer, so any divergence here would
// silently perturb schedules.
func TestIndexedPlacerMatchesPlacer(t *testing.T) {
	asn, err := cgroup.FromLevels([]int{0, 0, 1, 1, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	asn.ClassGroup["heavy"] = 0
	asn.ClassGroup["mid"] = 1
	asn.ClassGroup["light"] = 2
	plans := map[string]*Plan{
		"classes": {Assignment: asn},
		"scatter": {Assignment: cgroup.AllFast(6, nil), ScatterAll: true},
	}
	// Two bijections: first-appearance order and a reversed one — the
	// equivalence must not depend on how ids are assigned to names.
	classes := []string{"heavy", "mid", "light", "never-profiled"}
	orders := map[string][]string{
		"forward":  classes,
		"reversed": {"never-profiled", "light", "mid", "heavy"},
	}
	for planName, plan := range plans {
		for orderName, order := range orders {
			id := map[string]int32{}
			for i, name := range order {
				id[name] = int32(i)
			}
			ref := NewPlacer(plan, 6)
			idx := NewIndexedPlacer(plan, 6, order)
			rng := xrand.New(7)
			for i := 0; i < 500; i++ {
				name := classes[rng.Intn(len(classes))]
				wc, wg := ref.Place(name)
				gc, gg := idx.Place(id[name])
				if wc != gc || wg != gg {
					t.Fatalf("%s/%s task %d class %s: IndexedPlacer (%d,%d), Placer (%d,%d)",
						planName, orderName, i, name, gc, gg, wc, wg)
				}
			}
		}
	}
}
